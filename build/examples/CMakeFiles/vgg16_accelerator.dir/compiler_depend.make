# Empty compiler generated dependencies file for vgg16_accelerator.
# This may be replaced when dependencies are built.
