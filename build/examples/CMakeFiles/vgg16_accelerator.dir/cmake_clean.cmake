file(REMOVE_RECURSE
  "CMakeFiles/vgg16_accelerator.dir/vgg16_accelerator.cpp.o"
  "CMakeFiles/vgg16_accelerator.dir/vgg16_accelerator.cpp.o.d"
  "vgg16_accelerator"
  "vgg16_accelerator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vgg16_accelerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
