# Empty dependencies file for component_library.
# This may be replaced when dependencies are built.
