file(REMOVE_RECURSE
  "CMakeFiles/component_library.dir/component_library.cpp.o"
  "CMakeFiles/component_library.dir/component_library.cpp.o.d"
  "component_library"
  "component_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/component_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
