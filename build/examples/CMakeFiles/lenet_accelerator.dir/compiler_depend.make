# Empty compiler generated dependencies file for lenet_accelerator.
# This may be replaced when dependencies are built.
