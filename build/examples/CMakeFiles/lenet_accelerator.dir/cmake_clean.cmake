file(REMOVE_RECURSE
  "CMakeFiles/lenet_accelerator.dir/lenet_accelerator.cpp.o"
  "CMakeFiles/lenet_accelerator.dir/lenet_accelerator.cpp.o.d"
  "lenet_accelerator"
  "lenet_accelerator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lenet_accelerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
