file(REMOVE_RECURSE
  "CMakeFiles/test_route_fuzz.dir/test_route_fuzz.cpp.o"
  "CMakeFiles/test_route_fuzz.dir/test_route_fuzz.cpp.o.d"
  "test_route_fuzz"
  "test_route_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_route_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
