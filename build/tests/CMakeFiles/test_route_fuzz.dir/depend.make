# Empty dependencies file for test_route_fuzz.
# This may be replaced when dependencies are built.
