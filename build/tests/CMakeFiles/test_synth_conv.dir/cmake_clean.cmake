file(REMOVE_RECURSE
  "CMakeFiles/test_synth_conv.dir/test_synth_conv.cpp.o"
  "CMakeFiles/test_synth_conv.dir/test_synth_conv.cpp.o.d"
  "test_synth_conv"
  "test_synth_conv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synth_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
