# Empty dependencies file for test_synth_conv.
# This may be replaced when dependencies are built.
