file(REMOVE_RECURSE
  "CMakeFiles/test_streaming_conv.dir/test_streaming_conv.cpp.o"
  "CMakeFiles/test_streaming_conv.dir/test_streaming_conv.cpp.o.d"
  "test_streaming_conv"
  "test_streaming_conv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_streaming_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
