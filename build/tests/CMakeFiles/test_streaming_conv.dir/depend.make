# Empty dependencies file for test_streaming_conv.
# This may be replaced when dependencies are built.
