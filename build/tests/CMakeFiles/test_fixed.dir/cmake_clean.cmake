file(REMOVE_RECURSE
  "CMakeFiles/test_fixed.dir/test_fixed.cpp.o"
  "CMakeFiles/test_fixed.dir/test_fixed.cpp.o.d"
  "test_fixed"
  "test_fixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
