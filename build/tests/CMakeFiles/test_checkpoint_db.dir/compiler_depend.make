# Empty compiler generated dependencies file for test_checkpoint_db.
# This may be replaced when dependencies are built.
