file(REMOVE_RECURSE
  "CMakeFiles/test_checkpoint_db.dir/test_checkpoint_db.cpp.o"
  "CMakeFiles/test_checkpoint_db.dir/test_checkpoint_db.cpp.o.d"
  "test_checkpoint_db"
  "test_checkpoint_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checkpoint_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
