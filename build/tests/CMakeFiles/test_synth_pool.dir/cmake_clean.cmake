file(REMOVE_RECURSE
  "CMakeFiles/test_synth_pool.dir/test_synth_pool.cpp.o"
  "CMakeFiles/test_synth_pool.dir/test_synth_pool.cpp.o.d"
  "test_synth_pool"
  "test_synth_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synth_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
