# Empty dependencies file for test_synth_pool.
# This may be replaced when dependencies are built.
