file(REMOVE_RECURSE
  "CMakeFiles/test_macro_placer.dir/test_macro_placer.cpp.o"
  "CMakeFiles/test_macro_placer.dir/test_macro_placer.cpp.o.d"
  "test_macro_placer"
  "test_macro_placer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_macro_placer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
