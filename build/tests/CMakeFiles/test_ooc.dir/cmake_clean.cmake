file(REMOVE_RECURSE
  "CMakeFiles/test_ooc.dir/test_ooc.cpp.o"
  "CMakeFiles/test_ooc.dir/test_ooc.cpp.o.d"
  "test_ooc"
  "test_ooc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ooc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
