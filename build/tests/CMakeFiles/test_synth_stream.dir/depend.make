# Empty dependencies file for test_synth_stream.
# This may be replaced when dependencies are built.
