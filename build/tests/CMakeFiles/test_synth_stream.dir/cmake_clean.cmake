file(REMOVE_RECURSE
  "CMakeFiles/test_synth_stream.dir/test_synth_stream.cpp.o"
  "CMakeFiles/test_synth_stream.dir/test_synth_stream.cpp.o.d"
  "test_synth_stream"
  "test_synth_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synth_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
