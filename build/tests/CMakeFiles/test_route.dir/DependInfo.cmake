
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_route.cpp" "tests/CMakeFiles/test_route.dir/test_route.cpp.o" "gcc" "tests/CMakeFiles/test_route.dir/test_route.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flow/CMakeFiles/fpgasim_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/drc/CMakeFiles/fpgasim_drc.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/fpgasim_place.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/fpgasim_route.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/fpgasim_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/cnn/CMakeFiles/fpgasim_cnn.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/fpgasim_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fpgasim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/fpgasim_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/fpgasim_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/fpgasim_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fpgasim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
