file(REMOVE_RECURSE
  "libfpgasim_drc.a"
)
