
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/drc/drc.cpp" "src/drc/CMakeFiles/fpgasim_drc.dir/drc.cpp.o" "gcc" "src/drc/CMakeFiles/fpgasim_drc.dir/drc.cpp.o.d"
  "/root/repo/src/drc/rules_checkpoint.cpp" "src/drc/CMakeFiles/fpgasim_drc.dir/rules_checkpoint.cpp.o" "gcc" "src/drc/CMakeFiles/fpgasim_drc.dir/rules_checkpoint.cpp.o.d"
  "/root/repo/src/drc/rules_place.cpp" "src/drc/CMakeFiles/fpgasim_drc.dir/rules_place.cpp.o" "gcc" "src/drc/CMakeFiles/fpgasim_drc.dir/rules_place.cpp.o.d"
  "/root/repo/src/drc/rules_route.cpp" "src/drc/CMakeFiles/fpgasim_drc.dir/rules_route.cpp.o" "gcc" "src/drc/CMakeFiles/fpgasim_drc.dir/rules_route.cpp.o.d"
  "/root/repo/src/drc/rules_structural.cpp" "src/drc/CMakeFiles/fpgasim_drc.dir/rules_structural.cpp.o" "gcc" "src/drc/CMakeFiles/fpgasim_drc.dir/rules_structural.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/fpgasim_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/fpgasim_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fpgasim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
