file(REMOVE_RECURSE
  "CMakeFiles/fpgasim_drc.dir/drc.cpp.o"
  "CMakeFiles/fpgasim_drc.dir/drc.cpp.o.d"
  "CMakeFiles/fpgasim_drc.dir/rules_checkpoint.cpp.o"
  "CMakeFiles/fpgasim_drc.dir/rules_checkpoint.cpp.o.d"
  "CMakeFiles/fpgasim_drc.dir/rules_place.cpp.o"
  "CMakeFiles/fpgasim_drc.dir/rules_place.cpp.o.d"
  "CMakeFiles/fpgasim_drc.dir/rules_route.cpp.o"
  "CMakeFiles/fpgasim_drc.dir/rules_route.cpp.o.d"
  "CMakeFiles/fpgasim_drc.dir/rules_structural.cpp.o"
  "CMakeFiles/fpgasim_drc.dir/rules_structural.cpp.o.d"
  "libfpgasim_drc.a"
  "libfpgasim_drc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpgasim_drc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
