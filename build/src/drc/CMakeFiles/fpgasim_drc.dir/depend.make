# Empty dependencies file for fpgasim_drc.
# This may be replaced when dependencies are built.
