file(REMOVE_RECURSE
  "libfpgasim_cnn.a"
)
