file(REMOVE_RECURSE
  "CMakeFiles/fpgasim_cnn.dir/impl.cpp.o"
  "CMakeFiles/fpgasim_cnn.dir/impl.cpp.o.d"
  "CMakeFiles/fpgasim_cnn.dir/model.cpp.o"
  "CMakeFiles/fpgasim_cnn.dir/model.cpp.o.d"
  "libfpgasim_cnn.a"
  "libfpgasim_cnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpgasim_cnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
