# Empty dependencies file for fpgasim_cnn.
# This may be replaced when dependencies are built.
