file(REMOVE_RECURSE
  "libfpgasim_route.a"
)
