
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/route/router.cpp" "src/route/CMakeFiles/fpgasim_route.dir/router.cpp.o" "gcc" "src/route/CMakeFiles/fpgasim_route.dir/router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/fpgasim_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/fpgasim_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/fpgasim_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fpgasim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
