file(REMOVE_RECURSE
  "CMakeFiles/fpgasim_route.dir/router.cpp.o"
  "CMakeFiles/fpgasim_route.dir/router.cpp.o.d"
  "libfpgasim_route.a"
  "libfpgasim_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpgasim_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
