# Empty compiler generated dependencies file for fpgasim_route.
# This may be replaced when dependencies are built.
