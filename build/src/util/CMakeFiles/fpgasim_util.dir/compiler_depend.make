# Empty compiler generated dependencies file for fpgasim_util.
# This may be replaced when dependencies are built.
