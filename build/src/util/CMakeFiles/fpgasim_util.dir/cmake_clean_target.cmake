file(REMOVE_RECURSE
  "libfpgasim_util.a"
)
