file(REMOVE_RECURSE
  "CMakeFiles/fpgasim_util.dir/log.cpp.o"
  "CMakeFiles/fpgasim_util.dir/log.cpp.o.d"
  "CMakeFiles/fpgasim_util.dir/table.cpp.o"
  "CMakeFiles/fpgasim_util.dir/table.cpp.o.d"
  "CMakeFiles/fpgasim_util.dir/thread_pool.cpp.o"
  "CMakeFiles/fpgasim_util.dir/thread_pool.cpp.o.d"
  "libfpgasim_util.a"
  "libfpgasim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpgasim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
