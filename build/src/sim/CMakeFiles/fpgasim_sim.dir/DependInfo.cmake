
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/golden.cpp" "src/sim/CMakeFiles/fpgasim_sim.dir/golden.cpp.o" "gcc" "src/sim/CMakeFiles/fpgasim_sim.dir/golden.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/fpgasim_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/fpgasim_sim.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/fpgasim_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fpgasim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/fpgasim_fabric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
