file(REMOVE_RECURSE
  "libfpgasim_sim.a"
)
