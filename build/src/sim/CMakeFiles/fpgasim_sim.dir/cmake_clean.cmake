file(REMOVE_RECURSE
  "CMakeFiles/fpgasim_sim.dir/golden.cpp.o"
  "CMakeFiles/fpgasim_sim.dir/golden.cpp.o.d"
  "CMakeFiles/fpgasim_sim.dir/simulator.cpp.o"
  "CMakeFiles/fpgasim_sim.dir/simulator.cpp.o.d"
  "libfpgasim_sim.a"
  "libfpgasim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpgasim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
