# Empty compiler generated dependencies file for fpgasim_sim.
# This may be replaced when dependencies are built.
