# Empty compiler generated dependencies file for fpgasim_flow.
# This may be replaced when dependencies are built.
