file(REMOVE_RECURSE
  "CMakeFiles/fpgasim_flow.dir/build.cpp.o"
  "CMakeFiles/fpgasim_flow.dir/build.cpp.o.d"
  "CMakeFiles/fpgasim_flow.dir/checkpoint_db.cpp.o"
  "CMakeFiles/fpgasim_flow.dir/checkpoint_db.cpp.o.d"
  "CMakeFiles/fpgasim_flow.dir/compose.cpp.o"
  "CMakeFiles/fpgasim_flow.dir/compose.cpp.o.d"
  "CMakeFiles/fpgasim_flow.dir/monolithic.cpp.o"
  "CMakeFiles/fpgasim_flow.dir/monolithic.cpp.o.d"
  "CMakeFiles/fpgasim_flow.dir/ooc.cpp.o"
  "CMakeFiles/fpgasim_flow.dir/ooc.cpp.o.d"
  "CMakeFiles/fpgasim_flow.dir/preimpl.cpp.o"
  "CMakeFiles/fpgasim_flow.dir/preimpl.cpp.o.d"
  "libfpgasim_flow.a"
  "libfpgasim_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpgasim_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
