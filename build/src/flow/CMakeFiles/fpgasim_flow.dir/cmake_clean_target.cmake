file(REMOVE_RECURSE
  "libfpgasim_flow.a"
)
