# Empty dependencies file for fpgasim_timing.
# This may be replaced when dependencies are built.
