file(REMOVE_RECURSE
  "libfpgasim_timing.a"
)
