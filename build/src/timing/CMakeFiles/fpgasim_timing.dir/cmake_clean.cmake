file(REMOVE_RECURSE
  "CMakeFiles/fpgasim_timing.dir/sta.cpp.o"
  "CMakeFiles/fpgasim_timing.dir/sta.cpp.o.d"
  "libfpgasim_timing.a"
  "libfpgasim_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpgasim_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
