file(REMOVE_RECURSE
  "CMakeFiles/fpgasim_netlist.dir/checkpoint.cpp.o"
  "CMakeFiles/fpgasim_netlist.dir/checkpoint.cpp.o.d"
  "CMakeFiles/fpgasim_netlist.dir/netlist.cpp.o"
  "CMakeFiles/fpgasim_netlist.dir/netlist.cpp.o.d"
  "libfpgasim_netlist.a"
  "libfpgasim_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpgasim_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
