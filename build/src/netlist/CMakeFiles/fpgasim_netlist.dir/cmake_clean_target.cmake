file(REMOVE_RECURSE
  "libfpgasim_netlist.a"
)
