# Empty compiler generated dependencies file for fpgasim_netlist.
# This may be replaced when dependencies are built.
