
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/builder.cpp" "src/synth/CMakeFiles/fpgasim_synth.dir/builder.cpp.o" "gcc" "src/synth/CMakeFiles/fpgasim_synth.dir/builder.cpp.o.d"
  "/root/repo/src/synth/kernels.cpp" "src/synth/CMakeFiles/fpgasim_synth.dir/kernels.cpp.o" "gcc" "src/synth/CMakeFiles/fpgasim_synth.dir/kernels.cpp.o.d"
  "/root/repo/src/synth/layers.cpp" "src/synth/CMakeFiles/fpgasim_synth.dir/layers.cpp.o" "gcc" "src/synth/CMakeFiles/fpgasim_synth.dir/layers.cpp.o.d"
  "/root/repo/src/synth/streaming_conv.cpp" "src/synth/CMakeFiles/fpgasim_synth.dir/streaming_conv.cpp.o" "gcc" "src/synth/CMakeFiles/fpgasim_synth.dir/streaming_conv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/fpgasim_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fpgasim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/fpgasim_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fpgasim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
