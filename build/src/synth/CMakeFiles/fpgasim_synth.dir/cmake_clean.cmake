file(REMOVE_RECURSE
  "CMakeFiles/fpgasim_synth.dir/builder.cpp.o"
  "CMakeFiles/fpgasim_synth.dir/builder.cpp.o.d"
  "CMakeFiles/fpgasim_synth.dir/kernels.cpp.o"
  "CMakeFiles/fpgasim_synth.dir/kernels.cpp.o.d"
  "CMakeFiles/fpgasim_synth.dir/layers.cpp.o"
  "CMakeFiles/fpgasim_synth.dir/layers.cpp.o.d"
  "CMakeFiles/fpgasim_synth.dir/streaming_conv.cpp.o"
  "CMakeFiles/fpgasim_synth.dir/streaming_conv.cpp.o.d"
  "libfpgasim_synth.a"
  "libfpgasim_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpgasim_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
