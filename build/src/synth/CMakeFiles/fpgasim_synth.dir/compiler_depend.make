# Empty compiler generated dependencies file for fpgasim_synth.
# This may be replaced when dependencies are built.
