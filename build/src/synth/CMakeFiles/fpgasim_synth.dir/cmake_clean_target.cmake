file(REMOVE_RECURSE
  "libfpgasim_synth.a"
)
