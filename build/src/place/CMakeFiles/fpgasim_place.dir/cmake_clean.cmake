file(REMOVE_RECURSE
  "CMakeFiles/fpgasim_place.dir/macro_placer.cpp.o"
  "CMakeFiles/fpgasim_place.dir/macro_placer.cpp.o.d"
  "CMakeFiles/fpgasim_place.dir/place.cpp.o"
  "CMakeFiles/fpgasim_place.dir/place.cpp.o.d"
  "libfpgasim_place.a"
  "libfpgasim_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpgasim_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
