file(REMOVE_RECURSE
  "libfpgasim_place.a"
)
