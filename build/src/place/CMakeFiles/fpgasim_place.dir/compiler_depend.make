# Empty compiler generated dependencies file for fpgasim_place.
# This may be replaced when dependencies are built.
