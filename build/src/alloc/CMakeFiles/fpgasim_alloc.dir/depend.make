# Empty dependencies file for fpgasim_alloc.
# This may be replaced when dependencies are built.
