file(REMOVE_RECURSE
  "libfpgasim_alloc.a"
)
