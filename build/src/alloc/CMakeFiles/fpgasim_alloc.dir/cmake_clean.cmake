file(REMOVE_RECURSE
  "CMakeFiles/fpgasim_alloc.dir/best_fit.cpp.o"
  "CMakeFiles/fpgasim_alloc.dir/best_fit.cpp.o.d"
  "libfpgasim_alloc.a"
  "libfpgasim_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpgasim_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
