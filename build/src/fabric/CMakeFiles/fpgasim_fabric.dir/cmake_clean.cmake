file(REMOVE_RECURSE
  "CMakeFiles/fpgasim_fabric.dir/device.cpp.o"
  "CMakeFiles/fpgasim_fabric.dir/device.cpp.o.d"
  "CMakeFiles/fpgasim_fabric.dir/pblock.cpp.o"
  "CMakeFiles/fpgasim_fabric.dir/pblock.cpp.o.d"
  "libfpgasim_fabric.a"
  "libfpgasim_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpgasim_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
