file(REMOVE_RECURSE
  "libfpgasim_fabric.a"
)
