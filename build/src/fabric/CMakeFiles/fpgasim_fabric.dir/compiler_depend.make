# Empty compiler generated dependencies file for fpgasim_fabric.
# This may be replaced when dependencies are built.
