file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_cad.dir/bench_micro_cad.cpp.o"
  "CMakeFiles/bench_micro_cad.dir/bench_micro_cad.cpp.o.d"
  "bench_micro_cad"
  "bench_micro_cad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_cad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
