# Empty compiler generated dependencies file for bench_micro_cad.
# This may be replaced when dependencies are built.
