file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_portplan.dir/bench_ablation_portplan.cpp.o"
  "CMakeFiles/bench_ablation_portplan.dir/bench_ablation_portplan.cpp.o.d"
  "bench_ablation_portplan"
  "bench_ablation_portplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_portplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
