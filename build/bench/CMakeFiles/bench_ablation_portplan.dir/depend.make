# Empty dependencies file for bench_ablation_portplan.
# This may be replaced when dependencies are built.
