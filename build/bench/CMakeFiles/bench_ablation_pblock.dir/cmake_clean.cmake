file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pblock.dir/bench_ablation_pblock.cpp.o"
  "CMakeFiles/bench_ablation_pblock.dir/bench_ablation_pblock.cpp.o.d"
  "bench_ablation_pblock"
  "bench_ablation_pblock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pblock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
