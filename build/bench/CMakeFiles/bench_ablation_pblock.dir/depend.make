# Empty dependencies file for bench_ablation_pblock.
# This may be replaced when dependencies are built.
