# Empty dependencies file for bench_fig7_vgg_perf.
# This may be replaced when dependencies are built.
