# Empty dependencies file for bench_table1_model_stats.
# This may be replaced when dependencies are built.
