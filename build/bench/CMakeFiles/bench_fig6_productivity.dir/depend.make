# Empty dependencies file for bench_fig6_productivity.
# This may be replaced when dependencies are built.
