file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_productivity.dir/bench_fig6_productivity.cpp.o"
  "CMakeFiles/bench_fig6_productivity.dir/bench_fig6_productivity.cpp.o.d"
  "bench_fig6_productivity"
  "bench_fig6_productivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_productivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
