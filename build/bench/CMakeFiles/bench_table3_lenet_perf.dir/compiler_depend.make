# Empty compiler generated dependencies file for bench_table3_lenet_perf.
# This may be replaced when dependencies are built.
