file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_lenet_perf.dir/bench_table3_lenet_perf.cpp.o"
  "CMakeFiles/bench_table3_lenet_perf.dir/bench_table3_lenet_perf.cpp.o.d"
  "bench_table3_lenet_perf"
  "bench_table3_lenet_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_lenet_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
