// Static timing analysis over a placed (and optionally routed) netlist.
//
// Arrival times propagate topologically through the combinational fabric;
// every sequential-element input and output port is a timing endpoint.
// Net delays come from the router's per-sink delays when present, and from
// a placement-distance estimate otherwise (including the IO-column
// discontinuity penalty the paper discusses in Sec. V-E).
#pragma once

#include <string>
#include <vector>

#include "fabric/device.h"
#include "netlist/netlist.h"
#include "netlist/phys.h"
#include "timing/delay_model.h"

namespace fpgasim {

struct TimingResult {
  double critical_path_ns = 0.0;
  double fmax_mhz = 0.0;
  std::vector<std::string> critical_path;  // endpoint-first chain of cells
  std::size_t endpoints = 0;

  std::string summary() const;
};

/// Runs STA. `phys` may have empty routes (placement-based estimates) or
/// even no placement (pure logic-depth analysis).
TimingResult run_sta(const Netlist& netlist, const PhysState& phys, const Device& device,
                     const DelayModel& dm = DelayModel{});

/// Placement-distance wire delay estimate between two tiles.
double estimate_wire_delay(const Device& device, TileCoord from, TileCoord to,
                           const DelayModel& dm);

}  // namespace fpgasim
