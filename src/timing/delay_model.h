// Delay library for the simulated UltraScale+-class fabric (ns). Values
// are calibrated so small, well-placed components close timing in the
// 400-650 MHz band and large congested designs land around 200-400 MHz,
// the regime of the paper's Tables III / Fig. 7.
#pragma once

#include "netlist/netlist.h"

namespace fpgasim {

struct DelayModel {
  // Combinational cell delays.
  double lut = 0.12;
  double carry_base = 0.16;        // kAdd/kMax base
  double carry_per_8bits = 0.035;  // carry-chain propagation
  double max_extra = 0.12;         // compare+select mux on kMax
  double dsp_comb = 1.65;          // unpipelined DSP48 multiply

  // Sequential timing.
  double ff_clk_to_q = 0.08;
  double ff_setup = 0.05;
  double srl_clk_to_q = 0.45;
  double srl_setup = 0.08;
  double bram_clk_to_q = 0.88;
  double bram_setup = 0.30;
  double dsp_clk_to_q = 0.62;
  double dsp_setup = 0.32;

  // Wire model (used when a net has no routed delay).
  double wire_base = 0.06;
  double wire_per_tile = 0.042;
  double wire_per_fanout = 0.015;
  double wire_discontinuity = 0.38;  // each IO column crossed
  double wire_unplaced = 0.20;       // fallback for unplaced endpoints

  /// True for cells whose output is launched by the clock.
  static bool is_sequential(const Cell& cell) {
    switch (cell.type) {
      case CellType::kFf:
      case CellType::kSrl:
      case CellType::kBram:
        return true;
      case CellType::kDsp:
        return cell.stages > 0;
      default:
        return false;
    }
  }

  double comb_delay(const Cell& cell) const {
    switch (cell.type) {
      case CellType::kConst: return 0.0;
      case CellType::kLut:
      case CellType::kRelu: return lut;
      case CellType::kAdd: return carry_base + carry_per_8bits * ((cell.width + 7) / 8);
      case CellType::kMax:
        return carry_base + max_extra + carry_per_8bits * ((cell.width + 7) / 8);
      case CellType::kDsp: return dsp_comb;  // stages == 0 only
      default: return 0.0;
    }
  }

  double clk_to_q(const Cell& cell) const {
    switch (cell.type) {
      case CellType::kFf: return ff_clk_to_q;
      case CellType::kSrl: return srl_clk_to_q;
      case CellType::kBram: return bram_clk_to_q;
      case CellType::kDsp: return dsp_clk_to_q;
      default: return 0.0;
    }
  }

  double setup(const Cell& cell) const {
    switch (cell.type) {
      case CellType::kFf: return ff_setup;
      case CellType::kSrl: return srl_setup;
      case CellType::kBram: return bram_setup;
      case CellType::kDsp: return cell.stages > 0 ? dsp_setup : 0.0;
      default: return 0.0;
    }
  }
};

}  // namespace fpgasim
