#include "timing/sta.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <queue>

namespace fpgasim {

std::string TimingResult::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "critical path %.3f ns -> Fmax %.1f MHz (%zu endpoints)",
                critical_path_ns, fmax_mhz, endpoints);
  return buf;
}

double estimate_wire_delay(const Device& device, TileCoord from, TileCoord to,
                           const DelayModel& dm) {
  if (from == kUnplaced || to == kUnplaced) return dm.wire_unplaced;
  const int manhattan = std::abs(from.x - to.x) + std::abs(from.y - to.y);
  const int crossings = device.discontinuities_between(from.x, to.x);
  return dm.wire_base + dm.wire_per_tile * manhattan + dm.wire_discontinuity * crossings;
}

TimingResult run_sta(const Netlist& netlist, const PhysState& phys, const Device& device,
                     const DelayModel& dm) {
  const std::size_t num_nets = netlist.net_count();
  const std::size_t num_cells = netlist.cell_count();
  const bool have_phys = phys.cell_loc.size() == num_cells;

  // Wire delay of one (net, sink index) connection.
  auto wire_delay = [&](NetId n, std::size_t sink_idx, CellId sink_cell) -> double {
    if (have_phys && n < phys.routes.size()) {
      const RouteInfo& route = phys.routes[n];
      if (route.routed && sink_idx < route.sink_delays_ns.size()) {
        return route.sink_delays_ns[sink_idx];
      }
    }
    const Net& net = netlist.net(n);
    TileCoord from = kUnplaced, to = kUnplaced;
    if (have_phys) {
      if (net.driver != kInvalidCell) from = phys.cell_loc[net.driver];
      to = phys.cell_loc[sink_cell];
    }
    const double fanout_term = dm.wire_per_fanout * (net.sinks.size() > 1
                                                         ? static_cast<double>(net.sinks.size() - 1)
                                                         : 0.0);
    return estimate_wire_delay(device, from, to, dm) + fanout_term;
  };

  // Topological order of combinational cells (Kahn over net dependencies).
  std::vector<int> indegree(num_cells, 0);
  std::vector<CellId> order;
  order.reserve(num_cells);
  std::queue<CellId> ready;
  for (CellId c = 0; c < num_cells; ++c) {
    const Cell& cell = netlist.cell(c);
    if (DelayModel::is_sequential(cell)) continue;
    int deg = 0;
    for (NetId in : cell.inputs) {
      if (in == kInvalidNet) continue;
      const Net& net = netlist.net(in);
      if (net.driver != kInvalidCell && !DelayModel::is_sequential(netlist.cell(net.driver))) {
        ++deg;
      }
    }
    indegree[c] = deg;
    if (deg == 0) ready.push(c);
  }
  while (!ready.empty()) {
    const CellId c = ready.front();
    ready.pop();
    order.push_back(c);
    for (NetId out : netlist.cell(c).outputs) {
      if (out == kInvalidNet) continue;
      for (const auto& [sink, pin] : netlist.net(out).sinks) {
        if (DelayModel::is_sequential(netlist.cell(sink))) continue;
        if (--indegree[sink] == 0) ready.push(sink);
      }
    }
  }

  // Arrival time at each net, with predecessor tracking for the report.
  std::vector<double> arrival(num_nets, 0.0);
  std::vector<NetId> pred_net(num_nets, kInvalidNet);
  for (NetId n = 0; n < num_nets; ++n) {
    const Net& net = netlist.net(n);
    if (net.driver != kInvalidCell && DelayModel::is_sequential(netlist.cell(net.driver))) {
      arrival[n] = dm.clk_to_q(netlist.cell(net.driver));
    }
  }
  for (CellId c : order) {
    const Cell& cell = netlist.cell(c);
    if (cell.outputs.empty()) continue;
    double best = 0.0;
    NetId best_in = kInvalidNet;
    for (NetId in : cell.inputs) {
      if (in == kInvalidNet) continue;
      // Wire delay from the input net to this cell: find our sink index.
      const Net& net = netlist.net(in);
      double wd = dm.wire_unplaced;
      for (std::size_t s = 0; s < net.sinks.size(); ++s) {
        if (net.sinks[s].first == c) {
          wd = wire_delay(in, s, c);
          break;
        }
      }
      const double t = arrival[in] + wd;
      if (t > best) {
        best = t;
        best_in = in;
      }
    }
    // Every output net launches at the cell's arrival time, not just the
    // first: a multi-output cell would otherwise leave arrival 0 on its
    // remaining nets and silently shorten all paths through them.
    for (const NetId out : cell.outputs) {
      if (out == kInvalidNet) continue;
      arrival[out] = best + dm.comb_delay(cell);
      pred_net[out] = best_in;
    }
  }

  // Endpoints: sequential-cell inputs (+ output ports).
  TimingResult result;
  NetId worst_net = kInvalidNet;
  CellId worst_cell = kInvalidCell;
  for (NetId n = 0; n < num_nets; ++n) {
    const Net& net = netlist.net(n);
    for (std::size_t s = 0; s < net.sinks.size(); ++s) {
      const auto [sink, pin] = net.sinks[s];
      const Cell& cell = netlist.cell(sink);
      if (!DelayModel::is_sequential(cell)) continue;
      ++result.endpoints;
      const double t = arrival[n] + wire_delay(n, s, sink) + dm.setup(cell);
      if (t > result.critical_path_ns) {
        result.critical_path_ns = t;
        worst_net = n;
        worst_cell = sink;
      }
    }
  }
  for (const Port& port : netlist.ports()) {
    if (port.dir != PortDir::kOutput || port.net == kInvalidNet) continue;
    ++result.endpoints;
    const double t = arrival[port.net];
    if (t > result.critical_path_ns) {
      result.critical_path_ns = t;
      worst_net = port.net;
      worst_cell = kInvalidCell;
    }
  }

  if (result.critical_path_ns > 0.0) {
    result.fmax_mhz = 1000.0 / result.critical_path_ns;
    // Reconstruct the critical chain (endpoint first).
    if (worst_cell != kInvalidCell) {
      result.critical_path.push_back("endpoint: " +
                                     std::string(to_string(netlist.cell(worst_cell).type)) +
                                     " '" + netlist.cell(worst_cell).name + "'");
    }
    NetId n = worst_net;
    int guard = 0;
    while (n != kInvalidNet && guard++ < 64) {
      const Net& net = netlist.net(n);
      if (net.driver == kInvalidCell) {
        result.critical_path.push_back("input port net '" + net.name + "'");
        break;
      }
      const Cell& drv = netlist.cell(net.driver);
      result.critical_path.push_back(std::string(to_string(drv.type)) + " '" + drv.name +
                                     "'");
      if (DelayModel::is_sequential(drv)) break;
      n = pred_net[n];
    }
  }
  return result;
}

}  // namespace fpgasim
