// Model zoo: one registry of every built-in CNN topology plus the tool
// dispatch configuration (DSP budget, tile cap) each one is evaluated
// with. The CLIs (fpgalint, simdiff, fpgadb), the benches and the
// examples all resolve `--model <name>` through this table, so a new
// topology added here is immediately reachable everywhere.
#pragma once

#include <string>
#include <vector>

#include "cnn/model.h"

namespace fpgasim {

struct ZooEntry {
  const char* name = "";
  const char* description = "";
  CnnModel (*make)() = nullptr;
  long dsp_budget = 64;  // choose_implementation DSP pool
  int max_tile = 32;     // feature-map tiling cap
};

/// All built-in topologies, in registration order.
const std::vector<ZooEntry>& model_zoo();

/// Entry by name, or nullptr for an unknown model.
const ZooEntry* find_zoo_model(const std::string& name);

/// "lenet | resblock | vgg16 | ..." — for CLI usage/error text.
std::string zoo_model_names(const char* separator = " | ");

// -- topologies beyond the original three ------------------------------------

/// MobileNet-v1-style stack: conv stem, two depthwise-separable blocks
/// (dwconv + pointwise conv, the pair fused into one component by the
/// default grouping), global average pooling and an FC classifier.
CnnModel make_mobilenet_v1();

/// ResNet-18-style network: stem conv, a strided residual stage whose
/// shortcut is a 3x3/s2 projection conv (valid padding makes 1x1/s2
/// shapes unreachable), an identity residual stage, global average
/// pooling and an FC classifier. Exercises two stream forks and two adds.
CnnModel make_resnet18();

/// U-Net-style encoder/decoder: conv encoder, maxpool bottleneck conv,
/// nearest-neighbour upsample, skip concatenation with the encoder
/// feature map, decoder conv and an FC head. Exercises upsample + concat.
CnnModel make_unet();

/// Inception-style block: conv stem, a 4-way stream fork whose branches
/// (3x3 conv; 1x1->3x3 reduce; 1x1->3x3 "5x5 surrogate"; depthwise 3x3 +
/// pointwise 1x1) all map 6x6 -> 4x4 so a 4-input concat is shape-legal
/// under valid padding, then global average pooling and an FC classifier.
/// The widest fork/join in the zoo: one producer feeding four consumers
/// and a 4-way kConcat join.
CnnModel make_inception_block();

}  // namespace fpgasim
