#include "cnn/model.h"

#include <sstream>
#include <stdexcept>

#include "cnn/registry.h"
#include "util/rng.h"

namespace fpgasim {

const char* to_string(LayerKind kind) { return layer_traits(kind).keyword; }

bool is_join(LayerKind kind) { return layer_traits(kind).join; }

long Layer::weights() const {
  const auto count = layer_traits(kind).weight_count;
  return count != nullptr ? count(*this) : 0;
}

long Layer::macs() const {
  const auto count = layer_traits(kind).mac_count;
  return count != nullptr ? count(*this) : 0;
}

int CnnModel::add(Layer layer) {
  if (layer.inputs.empty() && !layer_traits(layer.kind).source && !layers_.empty()) {
    layer.inputs = {static_cast<int>(layers_.size()) - 1};
  }
  layers_.push_back(std::move(layer));
  return static_cast<int>(layers_.size()) - 1;
}

int CnnModel::find_layer(const std::string& name) const {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (layers_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<int> CnnModel::consumer_counts() const {
  std::vector<int> counts(layers_.size(), 0);
  for (const Layer& layer : layers_) {
    for (int in : layer.inputs) {
      if (in >= 0 && static_cast<std::size_t>(in) < counts.size()) {
        ++counts[static_cast<std::size_t>(in)];
      }
    }
  }
  return counts;
}

void CnnModel::infer_shapes() {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    Layer& layer = layers_[i];
    const LayerTraits& traits = layer_traits(layer.kind);
    if (traits.source) {
      if (!layer.inputs.empty()) {
        throw std::runtime_error("input layer '" + layer.name + "' cannot have inputs");
      }
      layer.in_shape = layer.out_shape;
      if (layer.out_shape.volume() <= 0) {
        throw std::runtime_error("input layer '" + layer.name + "' has no shape");
      }
      continue;
    }
    for (int in : layer.inputs) {
      if (in < 0 || static_cast<std::size_t>(in) >= i) {
        throw std::runtime_error("layer '" + layer.name + "' has no valid input edge");
      }
    }
    if (layer.inputs.empty()) {
      throw std::runtime_error("layer '" + layer.name + "' has no valid input edge");
    }
    if (!traits.join && layer.inputs.size() != 1) {
      throw std::runtime_error("layer '" + layer.name + "' (" + traits.keyword +
                               ") takes exactly one input");
    }
    layer.in_shape = layers_[static_cast<std::size_t>(layer.inputs[0])].out_shape;
    traits.infer(layers_, layer);
  }
}

CnnModel::Stats CnnModel::stats() const {
  Stats stats;
  for (const Layer& layer : layers_) {
    const StatsBucket bucket = layer_traits(layer.kind).stats_bucket;
    if (bucket == StatsBucket::kConv) {
      ++stats.conv_layers;
      stats.conv_weights += layer.weights();
      stats.conv_macs += layer.macs();
    } else if (bucket == StatsBucket::kFc) {
      ++stats.fc_layers;
      stats.fc_weights += layer.weights();
      stats.fc_macs += layer.macs();
    }
  }
  return stats;
}

CnnModel make_lenet5() {
  CnnModel model("lenet5");
  model.add(Layer{.kind = LayerKind::kInput, .name = "in", .out_shape = Shape{1, 32, 32}});
  model.add(Layer{.kind = LayerKind::kConv, .name = "conv1", .kernel = 5, .out_c = 6});
  model.add(Layer{.kind = LayerKind::kPool, .name = "pool1", .kernel = 2, .fuse_relu = true});
  model.add(Layer{.kind = LayerKind::kConv, .name = "conv2", .kernel = 5, .out_c = 16});
  model.add(Layer{.kind = LayerKind::kPool, .name = "pool2", .kernel = 2, .fuse_relu = true});
  model.add(Layer{.kind = LayerKind::kFc, .name = "fc1", .out_c = 120});
  model.add(Layer{.kind = LayerKind::kFc, .name = "fc2", .out_c = 10});
  model.infer_shapes();
  return model;
}

CnnModel make_vgg16() {
  CnnModel model("vgg16");
  model.add(Layer{.kind = LayerKind::kInput, .name = "in", .out_shape = Shape{3, 224, 224}});
  const int widths[5] = {64, 128, 256, 512, 512};
  const int convs_per_block[5] = {2, 2, 3, 3, 3};
  int conv_id = 0;
  for (int blk = 0; blk < 5; ++blk) {
    for (int i = 0; i < convs_per_block[blk]; ++i) {
      // VGG uses 'same' padding; our datapaths are valid-padding, so the
      // model keeps the canonical VGG feature-map sizes by construction:
      // we register conv as 3x3/s1 with pre-padded inputs. For weight/MAC
      // accounting this is exact.
      model.add(Layer{.kind = LayerKind::kConv,
                      .name = "conv" + std::to_string(blk + 1) + "_" + std::to_string(i + 1),
                      .kernel = 3,
                      .out_c = widths[blk],
                      .fuse_relu = true});
      ++conv_id;
    }
    model.add(Layer{.kind = LayerKind::kPool,
                    .name = "pool" + std::to_string(blk + 1),
                    .kernel = 2});
  }
  model.add(Layer{.kind = LayerKind::kFc, .name = "fc6", .out_c = 4096});
  model.add(Layer{.kind = LayerKind::kFc, .name = "fc7", .out_c = 4096});
  model.add(Layer{.kind = LayerKind::kFc, .name = "fc8", .out_c = 1000});

  // VGG uses 'same' padding, which our valid-padding shape inference does
  // not model; assign the canonical VGG shapes directly (conv preserves
  // H x W, pool halves). Weight/MAC accounting is exact either way.
  auto& layers = model.layers();
  for (std::size_t i = 0; i < layers.size(); ++i) {
    Layer& layer = layers[i];
    if (i > 0) layer.in_shape = layers[static_cast<std::size_t>(layer.input())].out_shape;
    if (layer.kind == LayerKind::kConv) {
      layer.out_shape = Shape{layer.out_c, layer.in_shape.h, layer.in_shape.w};
    } else if (layer.kind == LayerKind::kPool) {
      layer.out_shape = Shape{layer.in_shape.c, layer.in_shape.h / 2, layer.in_shape.w / 2};
    } else if (layer.kind == LayerKind::kFc) {
      layer.out_shape = Shape{layer.out_c, 1, 1};
    } else {
      layer.in_shape = layer.out_shape;  // input layer: shape already set
    }
  }
  return model;
}

CnnModel make_resblock_net() {
  CnnModel model("resblock");
  model.add(Layer{.kind = LayerKind::kInput, .name = "in", .out_shape = Shape{2, 8, 8}});
  const int c1 =
      model.add(Layer{.kind = LayerKind::kConv, .name = "c1", .kernel = 3, .out_c = 4});
  // Residual branch: two 1x1 convolutions (valid padding keeps 6x6, so the
  // element-wise add sees identical shapes on both arms).
  const int c2a = model.add(Layer{
      .kind = LayerKind::kConv, .name = "c2a", .kernel = 1, .out_c = 4, .inputs = {c1}});
  const int c2b = model.add(Layer{
      .kind = LayerKind::kConv, .name = "c2b", .kernel = 1, .out_c = 4, .inputs = {c2a}});
  const int join = model.add(
      Layer{.kind = LayerKind::kAdd, .name = "add1", .inputs = {c1, c2b}});
  model.add(Layer{.kind = LayerKind::kPool,
                  .name = "p1",
                  .kernel = 2,
                  .fuse_relu = true,
                  .inputs = {join}});
  model.add(Layer{.kind = LayerKind::kFc, .name = "f1", .out_c = 8});
  model.infer_shapes();
  return model;
}

CnnModel parse_arch_def(const std::string& text) {
  CnnModel model;
  std::istringstream stream(text);
  std::string line;
  int line_no = 0;
  auto fail = [&](const std::string& msg) {
    throw std::runtime_error("arch def line " + std::to_string(line_no) + ": " + msg);
  };
  auto register_name = [&](const std::string& name) {
    if (model.find_layer(name) != -1) fail("duplicate layer name '" + name + "'");
  };
  while (std::getline(stream, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;

    if (kind == "network") {
      std::string name;
      if (!(ls >> name)) fail("network needs a name");
      model = CnnModel(name);
      continue;
    }
    const LayerTraits* traits = layer_traits_by_keyword(kind);
    if (traits == nullptr) fail("unknown layer kind '" + kind + "'");
    Layer layer;
    layer.kind = traits->kind;
    if (traits->source) {
      layer.name = "in";
      if (!(ls >> layer.out_shape.c >> layer.out_shape.h >> layer.out_shape.w)) {
        fail("input needs: c h w");
      }
      register_name(layer.name);
      model.add(std::move(layer));
      continue;
    }

    if (!(ls >> layer.name)) fail(kind + " needs a name");
    register_name(layer.name);
    std::string token;
    while (ls >> token) {
      if (token == "relu") {
        layer.fuse_relu = true;
      } else if (token.rfind("out=", 0) == 0) {
        layer.out_c = std::stoi(token.substr(4));
      } else if (token.rfind("k=", 0) == 0) {
        layer.kernel = std::stoi(token.substr(2));
      } else if (token.rfind("f=", 0) == 0) {
        layer.kernel = std::stoi(token.substr(2));  // upsample factor
      } else if (token.rfind("s=", 0) == 0) {
        layer.stride = std::stoi(token.substr(2));
      } else if (token.rfind("from=", 0) == 0) {
        std::istringstream names(token.substr(5));
        std::string from;
        while (std::getline(names, from, ',')) {
          if (from.empty()) fail("from= has an empty layer name");
          const int idx = model.find_layer(from);
          if (idx == -1) fail("from= references unknown layer '" + from + "'");
          layer.inputs.push_back(idx);
        }
        if (layer.inputs.empty()) fail("from= needs at least one layer name");
      } else {
        fail("unknown attribute '" + token + "'");
      }
    }
    if (traits->parse_check != nullptr) {
      if (const char* err = traits->parse_check(layer)) fail(err);
    }
    if (traits->join && layer.inputs.size() < 2) {
      fail(kind + " needs from= with at least two layers");
    }
    if (!traits->join && layer.inputs.size() > 1) {
      fail(kind + " takes a single from= layer");
    }
    model.add(std::move(layer));
  }
  if (model.layers().empty() || !layer_traits(model.layers().front().kind).source) {
    throw std::runtime_error("arch def: first layer must be 'input'");
  }
  model.infer_shapes();
  return model;
}

std::string to_arch_def(const CnnModel& model) {
  std::ostringstream os;
  os << "network " << (model.name().empty() ? "cnn" : model.name()) << "\n";
  const auto& layers = model.layers();
  // `from=` is emitted whenever the predecessors differ from the implicit
  // "previous line" rule (joins always do: they have two or more).
  auto from_clause = [&](std::size_t i) -> std::string {
    const Layer& layer = layers[i];
    if (layer.inputs.size() == 1 && layer.inputs[0] == static_cast<int>(i) - 1) return "";
    std::string clause = " from=";
    for (std::size_t k = 0; k < layer.inputs.size(); ++k) {
      if (k > 0) clause += ",";
      clause += layers[static_cast<std::size_t>(layer.inputs[k])].name;
    }
    return clause;
  };
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const Layer& layer = layers[i];
    layer_traits(layer.kind).emit(os, layer, from_clause(i));
  }
  return os.str();
}

std::vector<Fixed16> synth_params(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Fixed16> params(count);
  for (Fixed16& p : params) {
    p = Fixed16::from_raw(static_cast<std::int32_t>(rng.next_int(-48, 48)));
  }
  return params;
}

std::vector<Fixed16> reference_inference(const CnnModel& model, const Tensor& input,
                                         std::uint64_t seed_base) {
  const auto& layers = model.layers();
  std::vector<Tensor> outs(layers.size());
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const Layer& layer = layers[i];
    const LayerTraits& traits = layer_traits(layer.kind);
    if (traits.source) {
      outs[i] = input;
      continue;
    }
    std::vector<const Tensor*> ins;
    ins.reserve(layer.inputs.size());
    for (int in : layer.inputs) ins.push_back(&outs[static_cast<std::size_t>(in)]);
    outs[i] = traits.golden(model, i, ins, seed_base);
    if (layer.fuse_relu && !traits.activation) outs[i] = golden_relu(outs[i]);
  }
  return outs.back().data;
}

}  // namespace fpgasim
