#include "cnn/registry.h"

#include <cassert>
#include <ostream>
#include <stdexcept>

#include "synth/layers.h"

namespace fpgasim {
namespace {

// -- shared helpers ----------------------------------------------------------

std::vector<Fixed16> layer_weights(std::size_t i, std::size_t count,
                                   std::uint64_t seed_base) {
  return synth_params(count, seed_base + i * 2);
}

std::vector<Fixed16> layer_bias(std::size_t i, std::size_t count, std::uint64_t seed_base) {
  return synth_params(count, seed_base + i * 2 + 1);
}

const Layer& at(const CnnModel& model, int i) {
  return model.layers()[static_cast<std::size_t>(i)];
}

/// Feature-map height/width the engine is built for: the tile when the
/// implementation tiles this layer, the full map otherwise.
int eff_h(const Layer& layer, const LayerImpl& li) {
  return li.tile_h > 0 ? li.tile_h : layer.in_shape.h;
}
int eff_w(const Layer& layer, const LayerImpl& li) {
  return li.tile_w > 0 ? li.tile_w : layer.in_shape.w;
}

// -- conv --------------------------------------------------------------------

void infer_conv(const std::vector<Layer>&, Layer& layer) {
  const int oh = (layer.in_shape.h - layer.kernel) / layer.stride + 1;
  const int ow = (layer.in_shape.w - layer.kernel) / layer.stride + 1;
  if (oh <= 0 || ow <= 0) {
    throw std::runtime_error("conv '" + layer.name + "' kernel larger than input");
  }
  layer.out_shape = Shape{layer.out_c, oh, ow};
}

long conv_weight_count(const Layer& layer) {
  return static_cast<long>(layer.out_c) * layer.in_shape.c * layer.kernel * layer.kernel +
         layer.out_c;
}

long conv_mac_count(const Layer& layer) {
  return static_cast<long>(layer.out_c) * layer.in_shape.c * layer.kernel * layer.kernel *
         layer.out_shape.h * layer.out_shape.w;
}

Tensor golden_conv(const CnnModel& model, std::size_t i,
                   const std::vector<const Tensor*>& ins, std::uint64_t seed_base) {
  const Layer& layer = model.layers()[i];
  const auto w = layer_weights(
      i, static_cast<std::size_t>(layer.out_c) * ins[0]->channels * layer.kernel * layer.kernel,
      seed_base);
  const auto b = layer_bias(i, static_cast<std::size_t>(layer.out_c), seed_base);
  return golden_conv2d(*ins[0], w, b, layer.out_c, layer.kernel, layer.stride);
}

Netlist synth_conv(const CnnModel& model, const ModelImpl& impl, int layer_idx,
                   bool fuse_relu, std::uint64_t seed_base) {
  const Layer& layer = at(model, layer_idx);
  const LayerImpl& li = impl.layers[static_cast<std::size_t>(layer_idx)];
  const std::uint64_t wseed = seed_base + static_cast<std::uint64_t>(layer_idx) * 2;
  ConvParams p;
  p.name = layer.name;
  p.in_c = layer.in_shape.c;
  p.out_c = layer.out_c;
  p.kernel = layer.kernel;
  p.stride = layer.stride;
  p.in_h = eff_h(layer, li);
  p.in_w = eff_w(layer, li);
  p.ic_par = li.ic_par;
  p.oc_par = li.oc_par;
  p.fuse_relu = fuse_relu || layer.fuse_relu;
  p.materialize_roms = li.materialize;
  p.weight_buffer_ocg = li.weight_buffer_ocg;
  std::vector<Fixed16> weights, bias;
  if (li.materialize) {
    weights = synth_params(
        static_cast<std::size_t>(layer.out_c) * layer.in_shape.c * layer.kernel * layer.kernel,
        wseed);
    bias = synth_params(static_cast<std::size_t>(layer.out_c), wseed + 1);
  }
  return make_conv_component(p, weights, bias);
}

LayerCycles cycles_conv(const Layer& layer, const LayerImpl& impl) {
  LayerCycles cycles;
  cycles.load = layer.in_shape.volume();
  cycles.compute = static_cast<long>(layer.out_shape.h) * layer.out_shape.w * layer.kernel *
                   layer.kernel * (layer.in_shape.c / impl.ic_par) *
                   (layer.out_c / impl.oc_par);
  cycles.drain = layer.out_shape.volume();
  return cycles;
}

// -- max pool ----------------------------------------------------------------

void infer_pool(const std::vector<Layer>&, Layer& layer) {
  if (layer.kernel <= 0 || layer.in_shape.h % layer.kernel != 0 ||
      layer.in_shape.w % layer.kernel != 0) {
    throw std::runtime_error("pool '" + layer.name + "' does not tile its input");
  }
  layer.out_shape = Shape{layer.in_shape.c, layer.in_shape.h / layer.kernel,
                          layer.in_shape.w / layer.kernel};
}

Tensor golden_pool(const CnnModel& model, std::size_t i,
                   const std::vector<const Tensor*>& ins, std::uint64_t) {
  return golden_maxpool(*ins[0], model.layers()[i].kernel);
}

Netlist synth_pool(const CnnModel& model, const ModelImpl& impl, int layer_idx,
                   bool fuse_relu, std::uint64_t) {
  const Layer& layer = at(model, layer_idx);
  const LayerImpl& li = impl.layers[static_cast<std::size_t>(layer_idx)];
  PoolParams p;
  p.name = layer.name;
  p.channels = layer.in_shape.c;
  p.kernel = layer.kernel;
  p.in_h = eff_h(layer, li);
  p.in_w = eff_w(layer, li);
  p.fuse_relu = fuse_relu || layer.fuse_relu;
  return make_pool_component(p);
}

LayerCycles cycles_pool(const Layer& layer, const LayerImpl&) {
  LayerCycles cycles;
  cycles.load = layer.in_shape.volume();
  cycles.compute = layer.out_shape.volume() * layer.kernel * layer.kernel;
  cycles.drain = layer.out_shape.volume();
  return cycles;
}

// -- relu --------------------------------------------------------------------

void infer_relu(const std::vector<Layer>&, Layer& layer) { layer.out_shape = layer.in_shape; }

Tensor golden_relu_layer(const CnnModel&, std::size_t, const std::vector<const Tensor*>& ins,
                         std::uint64_t) {
  return golden_relu(*ins[0]);
}

Netlist synth_relu(const CnnModel& model, const ModelImpl&, int layer_idx, bool,
                   std::uint64_t) {
  return make_relu_component(at(model, layer_idx).name);
}

LayerCycles cycles_relu(const Layer& layer, const LayerImpl&) {
  LayerCycles cycles;
  cycles.compute = layer.in_shape.volume();  // streaming passthrough
  return cycles;
}

// -- fc ----------------------------------------------------------------------

void infer_fc(const std::vector<Layer>&, Layer& layer) {
  layer.out_shape = Shape{layer.out_c, 1, 1};
}

long fc_weight_count(const Layer& layer) {
  return static_cast<long>(layer.out_c) * layer.in_shape.volume() + layer.out_c;
}

long fc_mac_count(const Layer& layer) {
  return static_cast<long>(layer.out_c) * layer.in_shape.volume();
}

Tensor golden_fc_layer(const CnnModel& model, std::size_t i,
                       const std::vector<const Tensor*>& ins, std::uint64_t seed_base) {
  const Layer& layer = model.layers()[i];
  const std::size_t inputs = ins[0]->data.size();
  const auto w =
      layer_weights(i, static_cast<std::size_t>(layer.out_c) * inputs, seed_base);
  const auto b = layer_bias(i, static_cast<std::size_t>(layer.out_c), seed_base);
  return Tensor{layer.out_c, 1, 1, golden_fc(ins[0]->data, w, b, layer.out_c)};
}

Netlist synth_fc(const CnnModel& model, const ModelImpl& impl, int layer_idx, bool fuse_relu,
                 std::uint64_t seed_base) {
  const Layer& layer = at(model, layer_idx);
  const LayerImpl& li = impl.layers[static_cast<std::size_t>(layer_idx)];
  const std::uint64_t wseed = seed_base + static_cast<std::uint64_t>(layer_idx) * 2;
  const int inputs = static_cast<int>(layer.in_shape.volume());
  std::vector<Fixed16> weights, bias;
  if (li.materialize) {
    weights = synth_params(static_cast<std::size_t>(layer.out_c) * inputs, wseed);
    bias = synth_params(static_cast<std::size_t>(layer.out_c), wseed + 1);
  }
  return make_fc_component(layer.name, inputs, layer.out_c, weights, bias, li.ic_par,
                           li.oc_par, li.materialize, li.weight_buffer_ocg,
                           fuse_relu || layer.fuse_relu);
}

LayerCycles cycles_fc(const Layer& layer, const LayerImpl& impl) {
  LayerCycles cycles;
  cycles.load = layer.in_shape.volume();
  cycles.compute =
      layer.in_shape.volume() / impl.ic_par * (static_cast<long>(layer.out_c) / impl.oc_par);
  cycles.drain = layer.out_c;
  return cycles;
}

// -- add / concat ------------------------------------------------------------

void infer_add(const std::vector<Layer>& layers, Layer& layer) {
  if (layer.inputs.size() < 2) {
    throw std::runtime_error("add '" + layer.name + "' needs at least two inputs");
  }
  for (int in : layer.inputs) {
    if (!(layers[static_cast<std::size_t>(in)].out_shape == layer.in_shape)) {
      throw std::runtime_error("add '" + layer.name +
                               "' inputs disagree on shape (element-wise add "
                               "requires identical tensors)");
    }
  }
  layer.out_shape = layer.in_shape;
}

void infer_concat(const std::vector<Layer>& layers, Layer& layer) {
  if (layer.inputs.size() < 2) {
    throw std::runtime_error("concat '" + layer.name + "' needs at least two inputs");
  }
  int channels = 0;
  for (int in : layer.inputs) {
    const Shape& s = layers[static_cast<std::size_t>(in)].out_shape;
    if (s.h != layer.in_shape.h || s.w != layer.in_shape.w) {
      throw std::runtime_error("concat '" + layer.name + "' inputs disagree on spatial shape");
    }
    channels += s.c;
  }
  layer.out_shape = Shape{channels, layer.in_shape.h, layer.in_shape.w};
}

Tensor golden_add_layer(const CnnModel&, std::size_t, const std::vector<const Tensor*>& ins,
                        std::uint64_t) {
  return golden_add(ins);
}

Tensor golden_concat_layer(const CnnModel&, std::size_t,
                           const std::vector<const Tensor*>& ins, std::uint64_t) {
  return golden_concat(ins);
}

Netlist synth_add(const CnnModel& model, const ModelImpl&, int layer_idx, bool fuse_relu,
                  std::uint64_t) {
  const Layer& layer = at(model, layer_idx);
  return make_add_component(layer.name, static_cast<int>(layer.in_shape.volume()),
                            static_cast<int>(layer.inputs.size()),
                            fuse_relu || layer.fuse_relu);
}

Netlist synth_concat(const CnnModel& model, const ModelImpl&, int layer_idx, bool fuse_relu,
                     std::uint64_t) {
  const Layer& layer = at(model, layer_idx);
  std::vector<int> volumes;
  volumes.reserve(layer.inputs.size());
  for (int in : layer.inputs) {
    volumes.push_back(static_cast<int>(at(model, in).out_shape.volume()));
  }
  return make_concat_component(layer.name, volumes, fuse_relu || layer.fuse_relu);
}

LayerCycles cycles_add(const Layer& layer, const LayerImpl&) {
  // Buffers one operand, then streams the sum as the others arrive.
  LayerCycles cycles;
  cycles.load = layer.in_shape.volume();
  cycles.drain = layer.out_shape.volume();
  return cycles;
}

LayerCycles cycles_concat(const Layer& layer, const LayerImpl&) {
  // Pure store-and-forward: every input element is written once and read
  // once, in channel order.
  LayerCycles cycles;
  cycles.load = layer.out_shape.volume();
  cycles.drain = layer.out_shape.volume();
  return cycles;
}

// -- depthwise conv ----------------------------------------------------------

void infer_dwconv(const std::vector<Layer>&, Layer& layer) {
  const int oh = (layer.in_shape.h - layer.kernel) / layer.stride + 1;
  const int ow = (layer.in_shape.w - layer.kernel) / layer.stride + 1;
  if (oh <= 0 || ow <= 0) {
    throw std::runtime_error("dwconv '" + layer.name + "' kernel larger than input");
  }
  layer.out_shape = Shape{layer.in_shape.c, oh, ow};
}

long dwconv_weight_count(const Layer& layer) {
  return static_cast<long>(layer.in_shape.c) * layer.kernel * layer.kernel + layer.in_shape.c;
}

long dwconv_mac_count(const Layer& layer) {
  return static_cast<long>(layer.in_shape.c) * layer.kernel * layer.kernel *
         layer.out_shape.h * layer.out_shape.w;
}

Tensor golden_dwconv(const CnnModel& model, std::size_t i,
                     const std::vector<const Tensor*>& ins, std::uint64_t seed_base) {
  const Layer& layer = model.layers()[i];
  const auto w = layer_weights(
      i, static_cast<std::size_t>(ins[0]->channels) * layer.kernel * layer.kernel, seed_base);
  const auto b = layer_bias(i, static_cast<std::size_t>(ins[0]->channels), seed_base);
  return golden_dwconv2d(*ins[0], w, b, layer.kernel, layer.stride);
}

/// A 1x1/s1 convolution directly after a depthwise stage is its pointwise
/// half; fusing them into one component removes the memory controller
/// between the MobileNet dw/pw pair.
bool pointwise_fuses_into(const Layer& pred, const Layer& layer) {
  return pred.kind == LayerKind::kDwConv && layer.kernel == 1 && layer.stride == 1;
}

Netlist synth_dwconv(const CnnModel& model, const ModelImpl& impl, int layer_idx,
                     bool fuse_relu, std::uint64_t seed_base) {
  const Layer& layer = at(model, layer_idx);
  const LayerImpl& li = impl.layers[static_cast<std::size_t>(layer_idx)];
  const std::uint64_t wseed = seed_base + static_cast<std::uint64_t>(layer_idx) * 2;
  DwConvParams p;
  p.name = layer.name;
  p.channels = layer.in_shape.c;
  p.kernel = layer.kernel;
  p.stride = layer.stride;
  p.in_h = eff_h(layer, li);
  p.in_w = eff_w(layer, li);
  p.fuse_relu = fuse_relu || layer.fuse_relu;
  const auto weights = synth_params(
      static_cast<std::size_t>(layer.in_shape.c) * layer.kernel * layer.kernel, wseed);
  const auto bias = synth_params(static_cast<std::size_t>(layer.in_shape.c), wseed + 1);
  return make_dwconv_component(p, weights, bias);
}

LayerCycles cycles_dwconv(const Layer& layer, const LayerImpl&) {
  LayerCycles cycles;
  cycles.load = layer.in_shape.volume();
  cycles.compute = static_cast<long>(layer.in_shape.c) * layer.out_shape.h *
                   layer.out_shape.w * layer.kernel * layer.kernel;
  cycles.drain = layer.out_shape.volume();
  return cycles;
}

// -- average pool / global average pool --------------------------------------

void check_pow2_window(const char* kind, const Layer& layer, int count) {
  if (count <= 0 || (count & (count - 1)) != 0 || count > 256) {
    throw std::runtime_error(std::string(kind) + " '" + layer.name +
                             "' window must be a power of two <= 256");
  }
}

void infer_avgpool(const std::vector<Layer>&, Layer& layer) {
  if (layer.kernel <= 0 || layer.in_shape.h % layer.kernel != 0 ||
      layer.in_shape.w % layer.kernel != 0) {
    throw std::runtime_error("avgpool '" + layer.name + "' does not tile its input");
  }
  check_pow2_window("avgpool", layer, layer.kernel * layer.kernel);
  layer.out_shape = Shape{layer.in_shape.c, layer.in_shape.h / layer.kernel,
                          layer.in_shape.w / layer.kernel};
}

void infer_gavgpool(const std::vector<Layer>&, Layer& layer) {
  check_pow2_window("gavgpool", layer, layer.in_shape.h * layer.in_shape.w);
  layer.out_shape = Shape{layer.in_shape.c, 1, 1};
}

Tensor golden_avgpool_layer(const CnnModel& model, std::size_t i,
                            const std::vector<const Tensor*>& ins, std::uint64_t) {
  return golden_avgpool(*ins[0], model.layers()[i].kernel);
}

Tensor golden_gavgpool_layer(const CnnModel&, std::size_t,
                             const std::vector<const Tensor*>& ins, std::uint64_t) {
  return golden_global_avgpool(*ins[0]);
}

Netlist synth_avgpool(const CnnModel& model, const ModelImpl& impl, int layer_idx,
                      bool fuse_relu, std::uint64_t) {
  const Layer& layer = at(model, layer_idx);
  const LayerImpl& li = impl.layers[static_cast<std::size_t>(layer_idx)];
  AvgPoolParams p;
  p.name = layer.name;
  p.channels = layer.in_shape.c;
  p.kernel_h = layer.kernel;
  p.kernel_w = layer.kernel;
  p.in_h = eff_h(layer, li);
  p.in_w = eff_w(layer, li);
  p.fuse_relu = fuse_relu || layer.fuse_relu;
  return make_avgpool_component(p);
}

Netlist synth_gavgpool(const CnnModel& model, const ModelImpl&, int layer_idx,
                       bool fuse_relu, std::uint64_t) {
  const Layer& layer = at(model, layer_idx);
  AvgPoolParams p;
  p.name = layer.name;
  p.channels = layer.in_shape.c;
  p.kernel_h = layer.in_shape.h;  // one window spanning the whole map
  p.kernel_w = layer.in_shape.w;
  p.in_h = layer.in_shape.h;
  p.in_w = layer.in_shape.w;
  p.fuse_relu = fuse_relu || layer.fuse_relu;
  return make_avgpool_component(p);
}

LayerCycles cycles_gavgpool(const Layer& layer, const LayerImpl&) {
  LayerCycles cycles;
  cycles.load = layer.in_shape.volume();
  cycles.compute = layer.in_shape.volume();  // one pass over every sample
  cycles.drain = layer.in_shape.c;
  return cycles;
}

// -- nearest-neighbour upsample ----------------------------------------------

void infer_upsample(const std::vector<Layer>&, Layer& layer) {
  layer.out_shape = Shape{layer.in_shape.c, layer.in_shape.h * layer.kernel,
                          layer.in_shape.w * layer.kernel};
}

Tensor golden_upsample_layer(const CnnModel& model, std::size_t i,
                             const std::vector<const Tensor*>& ins, std::uint64_t) {
  return golden_upsample_nn(*ins[0], model.layers()[i].kernel);
}

Netlist synth_upsample(const CnnModel& model, const ModelImpl&, int layer_idx,
                       bool fuse_relu, std::uint64_t) {
  const Layer& layer = at(model, layer_idx);
  return make_upsample_component(layer.name, layer.in_shape.c, layer.in_shape.h,
                                 layer.in_shape.w, layer.kernel,
                                 fuse_relu || layer.fuse_relu);
}

LayerCycles cycles_upsample(const Layer& layer, const LayerImpl&) {
  // Store-and-forward: buffer the image, then replay with replication.
  LayerCycles cycles;
  cycles.load = layer.in_shape.volume();
  cycles.drain = layer.out_shape.volume();
  return cycles;
}

// -- arch-def emitters -------------------------------------------------------

void emit_input(std::ostream& os, const Layer& layer, const std::string&) {
  os << "input " << layer.out_shape.c << " " << layer.out_shape.h << " "
     << layer.out_shape.w << "\n";
}

void emit_conv(std::ostream& os, const Layer& layer, const std::string& from) {
  os << "conv " << layer.name << " out=" << layer.out_c << " k=" << layer.kernel
     << " s=" << layer.stride << (layer.fuse_relu ? " relu" : "") << from << "\n";
}

void emit_dwconv(std::ostream& os, const Layer& layer, const std::string& from) {
  os << "dwconv " << layer.name << " k=" << layer.kernel << " s=" << layer.stride
     << (layer.fuse_relu ? " relu" : "") << from << "\n";
}

void emit_pool(std::ostream& os, const Layer& layer, const std::string& from) {
  os << "pool " << layer.name << " k=" << layer.kernel << (layer.fuse_relu ? " relu" : "")
     << from << "\n";
}

void emit_avgpool(std::ostream& os, const Layer& layer, const std::string& from) {
  os << "avgpool " << layer.name << " k=" << layer.kernel
     << (layer.fuse_relu ? " relu" : "") << from << "\n";
}

void emit_gavgpool(std::ostream& os, const Layer& layer, const std::string& from) {
  os << "gavgpool " << layer.name << (layer.fuse_relu ? " relu" : "") << from << "\n";
}

void emit_upsample(std::ostream& os, const Layer& layer, const std::string& from) {
  os << "upsample " << layer.name << " f=" << layer.kernel
     << (layer.fuse_relu ? " relu" : "") << from << "\n";
}

void emit_relu(std::ostream& os, const Layer& layer, const std::string& from) {
  os << "relu " << layer.name << from << "\n";
}

void emit_fc(std::ostream& os, const Layer& layer, const std::string& from) {
  os << "fc " << layer.name << " out=" << layer.out_c << (layer.fuse_relu ? " relu" : "")
     << from << "\n";
}

void emit_join(std::ostream& os, const Layer& layer, const std::string& from) {
  os << (layer.kind == LayerKind::kAdd ? "add" : "concat") << " " << layer.name << from
     << (layer.fuse_relu ? " relu" : "") << "\n";
}

// -- parse checks ------------------------------------------------------------

const char* check_conv(const Layer& layer) {
  return (layer.out_c <= 0 || layer.kernel <= 0) ? "conv needs out= and k=" : nullptr;
}
const char* check_dwconv(const Layer& layer) {
  return layer.kernel <= 0 ? "dwconv needs k=" : nullptr;
}
const char* check_pool(const Layer& layer) {
  return layer.kernel <= 0 ? "pool needs k=" : nullptr;
}
const char* check_avgpool(const Layer& layer) {
  return layer.kernel <= 0 ? "avgpool needs k=" : nullptr;
}
const char* check_upsample(const Layer& layer) {
  return layer.kernel <= 1 ? "upsample needs f= (>= 2)" : nullptr;
}
const char* check_fc(const Layer& layer) {
  return layer.out_c <= 0 ? "fc needs out=" : nullptr;
}

bool relu_fuses_into(const Layer&, const Layer&) { return true; }

std::vector<LayerTraits> make_registry() {
  std::vector<LayerTraits> traits(static_cast<std::size_t>(kLayerKindCount));
  {
    LayerTraits& t = traits[static_cast<std::size_t>(LayerKind::kInput)];
    t.kind = LayerKind::kInput;
    t.keyword = "input";
    t.source = true;
    t.emit = emit_input;
  }
  {
    LayerTraits& t = traits[static_cast<std::size_t>(LayerKind::kConv)];
    t.kind = LayerKind::kConv;
    t.keyword = "conv";
    t.weighted = true;
    t.uses_dsp_budget = true;
    t.stats_bucket = StatsBucket::kConv;
    t.tile = TilePolicy::kConvLike;
    t.parse_check = check_conv;
    t.emit = emit_conv;
    t.infer = infer_conv;
    t.weight_count = conv_weight_count;
    t.mac_count = conv_mac_count;
    t.fuses_into = pointwise_fuses_into;
    t.golden = golden_conv;
    t.synth = synth_conv;
    t.cycles = cycles_conv;
  }
  {
    LayerTraits& t = traits[static_cast<std::size_t>(LayerKind::kPool)];
    t.kind = LayerKind::kPool;
    t.keyword = "pool";
    t.tile = TilePolicy::kPoolAligned;
    t.parse_check = check_pool;
    t.emit = emit_pool;
    t.infer = infer_pool;
    t.golden = golden_pool;
    t.synth = synth_pool;
    t.cycles = cycles_pool;
  }
  {
    LayerTraits& t = traits[static_cast<std::size_t>(LayerKind::kRelu)];
    t.kind = LayerKind::kRelu;
    t.keyword = "relu";
    t.activation = true;
    t.emit = emit_relu;
    t.infer = infer_relu;
    t.fuses_into = relu_fuses_into;
    t.golden = golden_relu_layer;
    t.synth = synth_relu;
    t.cycles = cycles_relu;
  }
  {
    LayerTraits& t = traits[static_cast<std::size_t>(LayerKind::kFc)];
    t.kind = LayerKind::kFc;
    t.keyword = "fc";
    t.weighted = true;
    t.uses_dsp_budget = true;
    t.flatten_input = true;
    t.stats_bucket = StatsBucket::kFc;
    t.parse_check = check_fc;
    t.emit = emit_fc;
    t.infer = infer_fc;
    t.weight_count = fc_weight_count;
    t.mac_count = fc_mac_count;
    t.golden = golden_fc_layer;
    t.synth = synth_fc;
    t.cycles = cycles_fc;
  }
  {
    LayerTraits& t = traits[static_cast<std::size_t>(LayerKind::kAdd)];
    t.kind = LayerKind::kAdd;
    t.keyword = "add";
    t.join = true;
    t.emit = emit_join;
    t.infer = infer_add;
    t.golden = golden_add_layer;
    t.synth = synth_add;
    t.cycles = cycles_add;
  }
  {
    LayerTraits& t = traits[static_cast<std::size_t>(LayerKind::kConcat)];
    t.kind = LayerKind::kConcat;
    t.keyword = "concat";
    t.join = true;
    t.emit = emit_join;
    t.infer = infer_concat;
    t.golden = golden_concat_layer;
    t.synth = synth_concat;
    t.cycles = cycles_concat;
  }
  {
    LayerTraits& t = traits[static_cast<std::size_t>(LayerKind::kDwConv)];
    t.kind = LayerKind::kDwConv;
    t.keyword = "dwconv";
    t.weighted = true;  // one filter per channel, still baked into ROM
    t.stats_bucket = StatsBucket::kConv;
    t.tile = TilePolicy::kConvLike;
    t.parse_check = check_dwconv;
    t.emit = emit_dwconv;
    t.infer = infer_dwconv;
    t.weight_count = dwconv_weight_count;
    t.mac_count = dwconv_mac_count;
    t.golden = golden_dwconv;
    t.synth = synth_dwconv;
    t.cycles = cycles_dwconv;
  }
  {
    LayerTraits& t = traits[static_cast<std::size_t>(LayerKind::kAvgPool)];
    t.kind = LayerKind::kAvgPool;
    t.keyword = "avgpool";
    t.tile = TilePolicy::kPoolAligned;
    t.parse_check = check_avgpool;
    t.emit = emit_avgpool;
    t.infer = infer_avgpool;
    t.golden = golden_avgpool_layer;
    t.synth = synth_avgpool;
    t.cycles = cycles_pool;  // same sweep structure as max pool
  }
  {
    LayerTraits& t = traits[static_cast<std::size_t>(LayerKind::kGlobalAvgPool)];
    t.kind = LayerKind::kGlobalAvgPool;
    t.keyword = "gavgpool";
    t.emit = emit_gavgpool;
    t.infer = infer_gavgpool;
    t.golden = golden_gavgpool_layer;
    t.synth = synth_gavgpool;
    t.cycles = cycles_gavgpool;
  }
  {
    LayerTraits& t = traits[static_cast<std::size_t>(LayerKind::kUpsample)];
    t.kind = LayerKind::kUpsample;
    t.keyword = "upsample";
    t.parse_check = check_upsample;
    t.emit = emit_upsample;
    t.infer = infer_upsample;
    t.golden = golden_upsample_layer;
    t.synth = synth_upsample;
    t.cycles = cycles_upsample;
  }
  for (std::size_t i = 0; i < traits.size(); ++i) {
    assert(traits[i].kind == static_cast<LayerKind>(i) && "registry order mismatch");
    assert(traits[i].emit != nullptr && "every kind must serialize");
    assert((traits[i].source || traits[i].infer != nullptr) && "every kind must infer");
  }
  return traits;
}

}  // namespace

const std::vector<LayerTraits>& layer_registry() {
  static const std::vector<LayerTraits> registry = make_registry();
  return registry;
}

const LayerTraits& layer_traits(LayerKind kind) {
  return layer_registry()[static_cast<std::size_t>(kind)];
}

const LayerTraits* layer_traits_by_keyword(const std::string& keyword) {
  for (const LayerTraits& t : layer_registry()) {
    if (keyword == t.keyword) return &t;
  }
  return nullptr;
}

}  // namespace fpgasim
