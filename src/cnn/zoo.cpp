#include "cnn/zoo.h"

namespace fpgasim {

CnnModel make_mobilenet_v1() {
  CnnModel model("mobilenet");
  model.add(Layer{.kind = LayerKind::kInput, .name = "in", .out_shape = Shape{4, 8, 8}});
  model.add(Layer{
      .kind = LayerKind::kConv, .name = "c1", .kernel = 3, .out_c = 8, .fuse_relu = true});
  // Two depthwise-separable blocks. Each dw/pw pair is fused into a single
  // component by default_grouping (pointwise_fuses_into).
  model.add(Layer{.kind = LayerKind::kDwConv, .name = "dw1", .kernel = 3, .fuse_relu = true});
  model.add(Layer{
      .kind = LayerKind::kConv, .name = "pw1", .kernel = 1, .out_c = 16, .fuse_relu = true});
  model.add(Layer{.kind = LayerKind::kDwConv, .name = "dw2", .kernel = 3, .fuse_relu = true});
  model.add(Layer{
      .kind = LayerKind::kConv, .name = "pw2", .kernel = 1, .out_c = 8, .fuse_relu = true});
  model.add(Layer{.kind = LayerKind::kGlobalAvgPool, .name = "gap"});  // 2x2 window
  model.add(Layer{.kind = LayerKind::kFc, .name = "head", .out_c = 10});
  model.infer_shapes();
  return model;
}

CnnModel make_resnet18() {
  CnnModel model("resnet18");
  model.add(Layer{.kind = LayerKind::kInput, .name = "in", .out_shape = Shape{2, 11, 11}});
  const int stem = model.add(Layer{
      .kind = LayerKind::kConv, .name = "stem", .kernel = 3, .out_c = 4, .fuse_relu = true});
  // Strided stage: the shortcut is a 3x3/s2 projection conv — with valid
  // padding a 1x1/s2 conv cannot reproduce the (h-3)/2+1 main-path shape.
  const int s1a = model.add(Layer{.kind = LayerKind::kConv,
                                  .name = "s1a",
                                  .kernel = 3,
                                  .stride = 2,
                                  .out_c = 8,
                                  .fuse_relu = true,
                                  .inputs = {stem}});
  const int s1b = model.add(Layer{
      .kind = LayerKind::kConv, .name = "s1b", .kernel = 1, .out_c = 8, .inputs = {s1a}});
  const int s1p = model.add(Layer{.kind = LayerKind::kConv,
                                  .name = "s1p",
                                  .kernel = 3,
                                  .stride = 2,
                                  .out_c = 8,
                                  .inputs = {stem}});
  const int a1 = model.add(Layer{
      .kind = LayerKind::kAdd, .name = "a1", .fuse_relu = true, .inputs = {s1b, s1p}});
  // Identity stage: two 1x1 convs on the main path, bare skip.
  const int s2a = model.add(Layer{.kind = LayerKind::kConv,
                                  .name = "s2a",
                                  .kernel = 1,
                                  .out_c = 8,
                                  .fuse_relu = true,
                                  .inputs = {a1}});
  const int s2b = model.add(Layer{
      .kind = LayerKind::kConv, .name = "s2b", .kernel = 1, .out_c = 8, .inputs = {s2a}});
  model.add(Layer{
      .kind = LayerKind::kAdd, .name = "a2", .fuse_relu = true, .inputs = {s2b, a1}});
  model.add(Layer{.kind = LayerKind::kGlobalAvgPool, .name = "gap"});  // 4x4 window
  model.add(Layer{.kind = LayerKind::kFc, .name = "head", .out_c = 10});
  model.infer_shapes();
  return model;
}

CnnModel make_unet() {
  CnnModel model("unet");
  model.add(Layer{.kind = LayerKind::kInput, .name = "in", .out_shape = Shape{2, 8, 8}});
  const int e1 = model.add(Layer{
      .kind = LayerKind::kConv, .name = "e1", .kernel = 3, .out_c = 4, .fuse_relu = true});
  model.add(Layer{.kind = LayerKind::kPool, .name = "p1", .kernel = 2, .inputs = {e1}});
  model.add(Layer{
      .kind = LayerKind::kConv, .name = "b", .kernel = 1, .out_c = 8, .fuse_relu = true});
  const int u1 =
      model.add(Layer{.kind = LayerKind::kUpsample, .name = "u1", .kernel = 2});
  // Skip connection: decoder stream concatenated with the encoder map.
  model.add(Layer{.kind = LayerKind::kConcat, .name = "cat", .inputs = {u1, e1}});
  model.add(Layer{
      .kind = LayerKind::kConv, .name = "d1", .kernel = 3, .out_c = 4, .fuse_relu = true});
  model.add(Layer{.kind = LayerKind::kFc, .name = "head", .out_c = 8});
  model.infer_shapes();
  return model;
}

CnnModel make_inception_block() {
  CnnModel model("inception");
  model.add(Layer{.kind = LayerKind::kInput, .name = "in", .out_shape = Shape{4, 8, 8}});
  const int stem = model.add(Layer{
      .kind = LayerKind::kConv, .name = "stem", .kernel = 3, .out_c = 8, .fuse_relu = true});
  // Four branches off the stem (8@6x6). Valid padding means a concat
  // needs every branch at the same spatial shape, so each branch reduces
  // 6x6 -> 4x4 with exactly one 3x3 (the 1x1s are shape-preserving).
  const int b1 = model.add(Layer{.kind = LayerKind::kConv,
                                 .name = "b1",
                                 .kernel = 3,
                                 .out_c = 4,
                                 .fuse_relu = true,
                                 .inputs = {stem}});
  const int b2r = model.add(Layer{.kind = LayerKind::kConv,
                                  .name = "b2r",
                                  .kernel = 1,
                                  .out_c = 2,
                                  .fuse_relu = true,
                                  .inputs = {stem}});
  const int b2 = model.add(Layer{.kind = LayerKind::kConv,
                                 .name = "b2",
                                 .kernel = 3,
                                 .out_c = 4,
                                 .fuse_relu = true,
                                 .inputs = {b2r}});
  // "5x5 surrogate": Inception-v2-style reduction branch, narrower still.
  const int b3r = model.add(Layer{.kind = LayerKind::kConv,
                                  .name = "b3r",
                                  .kernel = 1,
                                  .out_c = 2,
                                  .fuse_relu = true,
                                  .inputs = {stem}});
  const int b3 = model.add(Layer{.kind = LayerKind::kConv,
                                 .name = "b3",
                                 .kernel = 3,
                                 .out_c = 2,
                                 .fuse_relu = true,
                                 .inputs = {b3r}});
  // Depthwise-separable branch: the dw/pw pair fuses into one component
  // under default_grouping, same as the MobileNet blocks.
  const int b4d = model.add(Layer{
      .kind = LayerKind::kDwConv, .name = "b4d", .kernel = 3, .fuse_relu = true,
      .inputs = {stem}});
  const int b4 = model.add(Layer{.kind = LayerKind::kConv,
                                 .name = "b4",
                                 .kernel = 1,
                                 .out_c = 2,
                                 .fuse_relu = true,
                                 .inputs = {b4d}});
  model.add(Layer{
      .kind = LayerKind::kConcat, .name = "cat", .inputs = {b1, b2, b3, b4}});
  model.add(Layer{.kind = LayerKind::kGlobalAvgPool, .name = "gap"});  // 4x4 window
  model.add(Layer{.kind = LayerKind::kFc, .name = "head", .out_c = 10});
  model.infer_shapes();
  return model;
}

const std::vector<ZooEntry>& model_zoo() {
  static const std::vector<ZooEntry> zoo = {
      {"lenet", "LeNet-5 (paper Table III)", make_lenet5, 64, 32},
      {"resblock", "residual block net (fork + add)", make_resblock_net, 64, 32},
      {"vgg16", "VGG-16 (tiled, streamed weights)", make_vgg16, 384, 14},
      {"mobilenet", "MobileNet-v1 style (dw/pw separable)", make_mobilenet_v1, 64, 32},
      {"resnet18", "ResNet-18 style (two residual stages)", make_resnet18, 64, 32},
      {"unet", "U-Net style (upsample + skip concat)", make_unet, 64, 32},
      {"inception", "Inception style (4-way fork -> concat)", make_inception_block, 64, 32},
  };
  return zoo;
}

const ZooEntry* find_zoo_model(const std::string& name) {
  for (const ZooEntry& entry : model_zoo()) {
    if (name == entry.name) return &entry;
  }
  return nullptr;
}

std::string zoo_model_names(const char* separator) {
  std::string names;
  for (const ZooEntry& entry : model_zoo()) {
    if (!names.empty()) names += separator;
    names += entry.name;
  }
  return names;
}

}  // namespace fpgasim
