// Layer-descriptor registry: one table entry per LayerKind carrying the
// grammar keyword, classification flags, and the per-kind behaviour the
// rest of the stack needs — shape inference, parameter/MAC accounting,
// golden reference evaluation, synthesis kernel factory, and the latency
// model. Everything that used to be a `switch (LayerKind)` dispatches
// through this table, so adding a layer kind touches exactly two places:
// its registry entry (registry.cpp) and its engine (src/synth).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cnn/impl.h"
#include "cnn/model.h"
#include "netlist/netlist.h"

namespace fpgasim {

/// Which Table-I column a layer's weights/MACs are charged to.
enum class StatsBucket { kNone, kConv, kFc };

/// Feature-map tiling rule applied by choose_implementation when the
/// input is larger than max_tile.
enum class TilePolicy {
  kNone,         // never tiled (streams, joins, global reductions)
  kConvLike,     // clip both dimensions to max_tile
  kPoolAligned,  // clip, then round down to a multiple of the window
};

struct LayerTraits {
  LayerKind kind = LayerKind::kInput;
  const char* keyword = "?";  // arch-def grammar keyword
  bool source = false;        // the model-input pseudo layer
  bool join = false;          // multi-input element-wise join (>= 2 from=)
  bool activation = false;    // pure activation, fusable into a predecessor
  bool weighted = false;      // carries synthesized parameters (`_w` in
                              // checkpoint signatures when materialized)
  bool uses_dsp_budget = false;  // participates in the MAC-share DSP split
  bool flatten_input = false;    // parallelism over the flattened volume (FC)
  StatsBucket stats_bucket = StatsBucket::kNone;
  TilePolicy tile = TilePolicy::kNone;

  /// Post-parse attribute validation: an error message ("conv needs out=
  /// and k="), or nullptr when the layer line is well-formed.
  const char* (*parse_check)(const Layer&) = nullptr;
  /// Serializes one arch-def line (including the trailing newline).
  /// `from_clause` is the pre-rendered " from=..." suffix (may be empty).
  void (*emit)(std::ostream&, const Layer&, const std::string& from_clause) = nullptr;
  /// Shape inference: in_shape is already set to the first predecessor's
  /// out_shape; fills out_shape and validates (throws std::runtime_error).
  /// Null for the source kind (handled generically).
  void (*infer)(const std::vector<Layer>& layers, Layer& layer) = nullptr;
  /// Parameter / MAC accounting; null means zero.
  long (*weight_count)(const Layer&) = nullptr;
  long (*mac_count)(const Layer&) = nullptr;
  /// Grouping: true when this layer may fuse into the tail `pred` of its
  /// predecessor group (no memory controller between them). Null = never.
  /// Used for relu-into-anything and pointwise-conv-into-dwconv fusion.
  bool (*fuses_into)(const Layer& pred, const Layer& layer) = nullptr;
  /// Golden reference evaluation of layer `i` given its input tensors (in
  /// `inputs` edge order). Applies the layer's own arithmetic only; the
  /// caller layers fuse_relu on top. Null for the source kind.
  Tensor (*golden)(const CnnModel& model, std::size_t layer_index,
                   const std::vector<const Tensor*>& ins, std::uint64_t seed_base) = nullptr;
  /// Synthesis kernel factory (component netlist for one layer). Null
  /// marks the kind not synthesizable (the source kind).
  Netlist (*synth)(const CnnModel& model, const ModelImpl& impl, int layer_index,
                   bool fuse_relu, std::uint64_t seed_base) = nullptr;
  /// Latency model contribution; null means all-zero cycles.
  LayerCycles (*cycles)(const Layer&, const LayerImpl&) = nullptr;
};

/// The full registry in LayerKind enumerator order (index == enum value).
const std::vector<LayerTraits>& layer_registry();

/// Traits of one kind (O(1) table lookup).
const LayerTraits& layer_traits(LayerKind kind);

/// Keyword -> traits, or nullptr for an unknown keyword.
const LayerTraits* layer_traits_by_keyword(const std::string& keyword);

}  // namespace fpgasim
