#include "cnn/impl.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "cnn/registry.h"

namespace fpgasim {
namespace {

/// Largest divisor of n that is <= cap.
int best_divisor(int n, int cap) {
  cap = std::min(cap, n);
  for (int d = cap; d >= 1; --d) {
    if (n % d == 0) return d;
  }
  return 1;
}

}  // namespace

ModelImpl choose_implementation(const CnnModel& model, long dsp_budget, int max_tile,
                                long rom_weight_limit) {
  ModelImpl impl;
  impl.layers.resize(model.layers().size());
  long total_macs = std::max<long>(1, model.stats().total_macs());

  for (std::size_t i = 0; i < model.layers().size(); ++i) {
    const Layer& layer = model.layers()[i];
    const LayerTraits& traits = layer_traits(layer.kind);
    LayerImpl& li = impl.layers[i];
    // Any spatial layer with a feature map too large for on-chip banks is
    // processed in tiles (the CLE sweeps the image tile by tile).
    if (traits.tile != TilePolicy::kNone &&
        (layer.in_shape.h > max_tile || layer.in_shape.w > max_tile)) {
      li.tile_h = std::min(layer.in_shape.h, max_tile);
      li.tile_w = std::min(layer.in_shape.w, max_tile);
      if (traits.tile == TilePolicy::kPoolAligned) {
        li.tile_h -= li.tile_h % layer.kernel;  // tiles must pool evenly
        li.tile_w -= li.tile_w % layer.kernel;
      }
    }
    if (!traits.uses_dsp_budget) continue;

    const long share = std::max<long>(
        1, static_cast<long>(std::llround(static_cast<double>(dsp_budget) * layer.macs() /
                                          static_cast<double>(total_macs))));
    const int in_c = traits.flatten_input ? static_cast<int>(layer.in_shape.volume())
                                          : layer.in_shape.c;
    const int out_c = layer.out_c;

    // Split the per-layer DSP allowance between input lanes and CU columns,
    // biased toward input parallelism (shorter accumulation loops).
    const int root = std::max(1, static_cast<int>(std::sqrt(static_cast<double>(share))));
    li.ic_par = best_divisor(in_c, 2 * root);
    li.oc_par = best_divisor(out_c, std::max(1, static_cast<int>(share) / li.ic_par));
    // Rebalance if the input dimension was the limiting factor.
    if (static_cast<long>(li.ic_par) * li.oc_par < share / 2) {
      li.oc_par = best_divisor(out_c, std::max(1, static_cast<int>(share) / li.ic_par));
      li.ic_par = best_divisor(in_c, std::max(1, static_cast<int>(share) / li.oc_par));
    }

    if (layer.weights() > rom_weight_limit) {
      li.materialize = false;
      li.weight_buffer_ocg = 1;
    }
  }
  return impl;
}

std::vector<std::vector<int>> default_grouping(const CnnModel& model) {
  std::vector<std::vector<int>> groups;
  const auto& layers = model.layers();
  const std::vector<int> consumers = model.consumer_counts();
  std::vector<int> group_of(layers.size(), -1);
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const Layer& layer = layers[i];
    const LayerTraits& traits = layer_traits(layer.kind);
    if (traits.source) continue;  // the streamer feeds the first component directly
    // A layer fuses into its producer's group when the registry says the
    // pair composes without a memory controller between them (relu into
    // anything, pointwise conv into depthwise), the producer has no other
    // consumer and is the tail of its group (Sec. IV-B1). A fusable layer
    // on a forked edge must stay its own component so the other branch
    // sees the un-fused stream.
    if (traits.fuses_into != nullptr && layer.inputs.size() == 1) {
      const int pred = layer.input();
      const int pred_group = pred >= 0 ? group_of[static_cast<std::size_t>(pred)] : -1;
      if (pred_group != -1 && consumers[static_cast<std::size_t>(pred)] == 1 &&
          groups[static_cast<std::size_t>(pred_group)].back() == pred &&
          traits.fuses_into(layers[static_cast<std::size_t>(pred)], layer)) {
        group_of[i] = pred_group;
        groups[static_cast<std::size_t>(pred_group)].push_back(static_cast<int>(i));
        continue;
      }
    }
    group_of[i] = static_cast<int>(groups.size());
    groups.push_back({static_cast<int>(i)});
  }
  return groups;
}

GroupGraph build_group_graph(const CnnModel& model,
                             const std::vector<std::vector<int>>& groups) {
  const auto& layers = model.layers();
  const std::vector<int> consumers = model.consumer_counts();
  std::vector<int> group_of(layers.size(), -1);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (groups[g].empty()) throw std::runtime_error("group graph: empty group");
    for (int idx : groups[g]) {
      group_of[static_cast<std::size_t>(idx)] = static_cast<int>(g);
    }
  }
  GroupGraph graph;
  graph.fanout.assign(groups.size(), 0);
  graph.output_group = -1;
  int input_consumer = -1;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const std::vector<int>& group = groups[g];
    // Non-head members must be fed exclusively by their in-group
    // predecessor: a layer whose output also leaves the group would need a
    // stream fork in the middle of a fused datapath.
    for (std::size_t m = 1; m < group.size(); ++m) {
      const Layer& layer = layers[static_cast<std::size_t>(group[m])];
      if (layer.inputs.size() != 1 || layer.inputs[0] != group[m - 1] ||
          consumers[static_cast<std::size_t>(group[m - 1])] != 1) {
        throw std::runtime_error("group graph: group splits a branch mid-edge at layer '" +
                                 layer.name + "'");
      }
    }
    const Layer& head = layers[static_cast<std::size_t>(group.front())];
    for (std::size_t port = 0; port < head.inputs.size(); ++port) {
      const int pred = head.inputs[port];
      const Layer& pred_layer = layers[static_cast<std::size_t>(pred)];
      if (layer_traits(pred_layer.kind).source) {
        if (port != 0) {
          throw std::runtime_error("group graph: model input must feed port 0 of '" +
                                   head.name + "'");
        }
        if (input_consumer != -1) {
          throw std::runtime_error("group graph: model input feeds more than one group");
        }
        input_consumer = static_cast<int>(g);
        continue;
      }
      const int pred_group = group_of[static_cast<std::size_t>(pred)];
      if (pred_group == -1 ||
          groups[static_cast<std::size_t>(pred_group)].back() != pred) {
        throw std::runtime_error("group graph: layer '" + head.name +
                                 "' consumes mid-group output of '" + pred_layer.name + "'");
      }
      graph.edges.push_back(GroupEdge{pred_group, static_cast<int>(g),
                                      static_cast<int>(port)});
      ++graph.fanout[static_cast<std::size_t>(pred_group)];
    }
    // A group tail with no consumers is the design output.
    if (consumers[static_cast<std::size_t>(group.back())] == 0) {
      if (graph.output_group != -1) {
        throw std::runtime_error("group graph: more than one terminal group");
      }
      graph.output_group = static_cast<int>(g);
    }
  }
  if (input_consumer == -1) {
    throw std::runtime_error("group graph: no group consumes the model input");
  }
  if (graph.output_group == -1) {
    throw std::runtime_error("group graph: no terminal group");
  }
  graph.input_group = input_consumer;
  return graph;
}

LayerCycles layer_cycles(const Layer& layer, const LayerImpl& impl) {
  const auto cycles = layer_traits(layer.kind).cycles;
  return cycles != nullptr ? cycles(layer, impl) : LayerCycles{};
}

ComponentLatency group_latency(const CnnModel& model, const ModelImpl& impl,
                               const std::vector<int>& group, double fmax_mhz) {
  ComponentLatency latency;
  latency.at_mhz = fmax_mhz;
  for (int idx : group) {
    const Layer& layer = model.layers()[static_cast<std::size_t>(idx)];
    if (latency.name.empty()) latency.name = layer.name;
    latency.cycles += layer_cycles(layer, impl.layers[static_cast<std::size_t>(idx)]).total();
  }
  return latency;
}

double pipeline_throughput(const CnnModel& model, const ModelImpl& impl,
                           const std::vector<std::vector<int>>& groups, double fmax_mhz) {
  long interval = 1;
  for (const auto& group : groups) {
    interval = std::max(interval, group_latency(model, impl, group, 1.0).cycles);
  }
  // cycles / (MHz * 1e6) seconds per image.
  return fmax_mhz * 1e6 / static_cast<double>(interval);
}

}  // namespace fpgasim
