// CNN model descriptions: layer graph (DFG), shape inference, weight/MAC
// accounting (Table I), the textual "CNN architecture definition" the
// pre-implemented flow consumes, and reference fixed-point inference.
#pragma once

#include <string>
#include <vector>

#include "sim/fixed.h"
#include "sim/golden.h"

namespace fpgasim {

enum class LayerKind {
  kInput,
  kConv,
  kPool,  // max pooling
  kRelu,
  kFc,
  kAdd,
  kConcat,
  kDwConv,         // depthwise convolution (one filter per channel)
  kAvgPool,        // average pooling, round-to-nearest-even
  kGlobalAvgPool,  // whole-map average per channel -> c x 1 x 1
  kUpsample,       // nearest-neighbour upsampling by `kernel`
};
inline constexpr int kLayerKindCount = 11;

const char* to_string(LayerKind kind);

/// True for the multi-input element-wise join kinds (add/concat).
bool is_join(LayerKind kind);

struct Shape {
  int c = 0, h = 0, w = 0;
  long volume() const { return static_cast<long>(c) * h * w; }
  friend bool operator==(const Shape&, const Shape&) = default;
};

struct Layer {
  LayerKind kind = LayerKind::kInput;
  std::string name;
  int kernel = 1;  // window size; the replication factor for kUpsample
  int stride = 1;
  int out_c = 0;         // conv filters / fc outputs
  bool fuse_relu = false;
  std::vector<int> inputs;  // DFG predecessors (layer indices); empty for kInput

  // Filled by CnnModel::infer_shapes(). in_shape is the first
  // predecessor's shape (joins validate the rest during inference).
  Shape in_shape, out_shape;

  long weights() const;  // parameters incl. bias
  long macs() const;     // multiply-accumulates per image

  /// First predecessor, or -1 when there is none (kInput).
  int input() const { return inputs.empty() ? -1 : inputs.front(); }

  friend bool operator==(const Layer&, const Layer&) = default;
};

class CnnModel {
 public:
  CnnModel() = default;
  explicit CnnModel(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  std::vector<Layer>& layers() { return layers_; }
  const std::vector<Layer>& layers() const { return layers_; }

  /// Appends a layer. When `layer.inputs` is empty and the layer is not an
  /// input, it is connected to the previous layer (linear chains); set
  /// `inputs` explicitly to build branching DFGs.
  int add(Layer layer);

  /// Index of the layer called `name`, or -1.
  int find_layer(const std::string& name) const;

  /// Number of DFG consumers of each layer (fan-out).
  std::vector<int> consumer_counts() const;

  /// Propagates shapes along the DFG. Throws std::runtime_error on
  /// malformed graphs (bad kernel sizes, missing input, shape-mismatched
  /// joins...).
  void infer_shapes();

  struct Stats {
    int conv_layers = 0, fc_layers = 0;
    long conv_weights = 0, conv_macs = 0;
    long fc_weights = 0, fc_macs = 0;
    long total_weights() const { return conv_weights + fc_weights; }
    long total_macs() const { return conv_macs + fc_macs; }
  };
  Stats stats() const;

  friend bool operator==(const CnnModel&, const CnnModel&) = default;

 private:
  std::string name_;
  std::vector<Layer> layers_;
};

/// LeNet-5-style network as evaluated in the paper (Table III): conv1(6@5x5)
/// -> pool+relu -> conv2(16@5x5) -> pool+relu -> fc1(120) -> fc2(10),
/// 32x32x1 input.
CnnModel make_lenet5();

/// VGG-16: 13 conv (3x3/s1) + 5 maxpool + 3 FC, 224x224x3 input.
CnnModel make_vgg16();

/// ResNet-style residual block network: conv1 -> {identity skip,
/// conv-conv bottleneck} -> add -> pool+relu -> fc. The residual branch
/// uses 1x1 convolutions so both join inputs keep the same spatial shape
/// (the datapaths are valid-padding). Exercises stream fork + element-wise
/// add end to end.
CnnModel make_resblock_net();

// -- CNN architecture definition (Sec. IV-B1) -------------------------------

/// Parses the textual architecture definition. Format (one item per line,
/// '#' comments):
///   network <name>
///   input <c> <h> <w>
///   conv <name> out=<n> k=<k> [s=<s>] [relu] [from=<name>]
///   dwconv <name> k=<k> [s=<s>] [relu] [from=<name>]
///   pool <name> k=<k> [relu] [from=<name>]
///   avgpool <name> k=<k> [relu] [from=<name>]
///   gavgpool <name> [relu] [from=<name>]
///   upsample <name> f=<factor> [relu] [from=<name>]
///   relu <name> [from=<name>]
///   fc <name> out=<n> [relu] [from=<name>]
///   add <name> from=<a>,<b>[,...] [relu]
///   concat <name> from=<a>,<b>[,...] [relu]
/// Layers connect to the previous line unless `from=` names explicit
/// predecessors (the input layer is named "in"). Throws std::runtime_error
/// with a line number on syntax errors, unknown `from=` targets and
/// duplicate layer names.
CnnModel parse_arch_def(const std::string& text);

/// Serializes a model back to the definition format (round-trips:
/// parse_arch_def(to_arch_def(m)) == m for parser-produced models).
std::string to_arch_def(const CnnModel& model);

// -- reference inference ----------------------------------------------------

/// Deterministic synthetic Q8.8 parameters (the paper hard-codes weights
/// in ROM and never trains; magnitudes stay small so fixed-point
/// saturation is not hit).
std::vector<Fixed16> synth_params(std::size_t count, std::uint64_t seed);

/// Runs the whole model on `input` with synth_params(layer seed = base+i)
/// through the golden layer implementations, walking the DFG (branches and
/// joins included). Returns the flattened output of the last layer.
std::vector<Fixed16> reference_inference(const CnnModel& model, const Tensor& input,
                                         std::uint64_t seed_base = 1000);

}  // namespace fpgasim
