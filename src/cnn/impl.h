// Implementation planning: per-layer parallelism selection (PE lanes, CU
// columns, feature-map tiling, weight storage policy), the component
// grouping step of the granularity exploration (Sec. IV-A1), and the
// analytic latency model used for Tables III / Fig. 7.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cnn/model.h"

namespace fpgasim {

/// Hardware parameters chosen for one layer.
struct LayerImpl {
  int ic_par = 1;   // input feature maps processed in parallel (PEs)
  int oc_par = 1;   // output channels computed in parallel (CU columns)
  int tile_h = 0;   // 0: process the full feature map on chip
  int tile_w = 0;
  bool materialize = true;   // weights in ROM vs streamed buffers
  int weight_buffer_ocg = 0; // buffered output groups when streaming

  long dsp_count() const { return static_cast<long>(ic_par) * oc_par; }
};

struct ModelImpl {
  std::vector<LayerImpl> layers;  // aligned with CnnModel::layers()
};

/// Distributes a DSP budget over the conv/FC layers proportionally to
/// their MAC share, picking channel-divisor parallelism, and tiles large
/// feature maps down to `max_tile`. Layers with more than
/// `rom_weight_limit` parameters switch to streamed weight buffers (the
/// VGG off-chip coefficient scheme of Sec. V-B2).
ModelImpl choose_implementation(const CnnModel& model, long dsp_budget, int max_tile = 32,
                                long rom_weight_limit = 70000);

/// Component grouping ("granularity exploration"): by default every layer
/// becomes its own component, except fusions declared in the layer
/// registry — a relu fuses into any preceding single-consumer group tail
/// (Sec. IV-B1: no memory controller needed between them) and a 1x1/s1
/// pointwise conv fuses into a preceding depthwise conv (the MobileNet
/// dw/pw pair becomes one stitched component). Branching DFGs never split
/// a branch across a group boundary mid-edge.
std::vector<std::vector<int>> default_grouping(const CnnModel& model);

// -- group-level data-flow graph --------------------------------------------

/// A stream edge between two component groups: output of `from` feeds
/// input port `to_port` of `to` (port order = the head layer's `inputs`
/// order; single-input components only use port 0).
struct GroupEdge {
  int from = -1;
  int to = -1;
  int to_port = 0;
  friend bool operator==(const GroupEdge&, const GroupEdge&) = default;
};

/// The component DAG induced by a grouping: groups are nodes, layer edges
/// that cross a group boundary become stream edges. `fanout[g]` counts the
/// outgoing edges of group g (>1 means a stream fork is required when
/// stitching). `input_group` consumes the model's kInput layer;
/// `output_group` is the unique terminal group.
struct GroupGraph {
  std::vector<GroupEdge> edges;  // sorted by (to, to_port)
  std::vector<int> fanout;       // per group
  int input_group = 0;
  int output_group = -1;
};

/// Builds and validates the group DAG. Throws std::runtime_error when a
/// grouping is not a legal topological partition: a non-head group member
/// must be fed exclusively by its in-group predecessor (single consumer),
/// the kInput layer must feed exactly one group head at port 0, and
/// exactly one group must be terminal.
GroupGraph build_group_graph(const CnnModel& model,
                             const std::vector<std::vector<int>>& groups);

/// Cycle counts of one layer under an implementation (logical, untiled
/// feature-map dimensions; tiling multiplies the sweep count but the total
/// work is identical).
struct LayerCycles {
  long load = 0, compute = 0, drain = 0;
  long total() const { return load + compute + drain; }
};
LayerCycles layer_cycles(const Layer& layer, const LayerImpl& impl);

/// Per-component and end-to-end latency at the given clock.
struct ComponentLatency {
  std::string name;
  long cycles = 0;
  double at_mhz = 0.0;
  double latency_us() const { return cycles / at_mhz; }  // cycles/MHz == us
};
ComponentLatency group_latency(const CnnModel& model, const ModelImpl& impl,
                               const std::vector<int>& group, double fmax_mhz);

/// Image-pipelined throughput: components overlap across images (each CLE
/// processes image i while its successor works on image i-1), so the
/// initiation interval is the slowest component's cycle count.
/// Returns images/second at the given clock.
double pipeline_throughput(const CnnModel& model, const ModelImpl& impl,
                           const std::vector<std::vector<int>>& groups, double fmax_mhz);

}  // namespace fpgasim
