// Negotiated-congestion (PathFinder-style) router over a coarse per-tile
// channel graph.
//
// Nodes are interconnect tiles; edges connect 4-neighbours with a fixed
// wire capacity per direction. Crossing an IO column costs extra delay
// (fabric discontinuities, Sec. V-E). Locked nets (pre-implemented
// components) keep their recorded routes and only charge edge usage; the
// inter-component routing step therefore only negotiates the unrouted
// nets, which is exactly what makes the pre-implemented flow fast.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "fabric/device.h"
#include "fabric/pblock.h"
#include "netlist/netlist.h"
#include "netlist/phys.h"
#include "timing/delay_model.h"

namespace fpgasim {

struct RouteOptions {
  int channel_capacity = 14;  // wires per tile edge per direction
  int max_iterations = 18;    // PathFinder negotiation rounds
  double present_factor = 0.7;
  double history_factor = 0.35;
  double congestion_delay_factor = 0.25;  // slowdown on saturated edges
  std::uint64_t seed = 1;
  /// Extra terminal per net (partition pins of OOC ports): net -> tile.
  std::unordered_map<NetId, TileCoord> fixed_terminals;
  /// When set, the search never leaves this rectangle (OOC flow: keep all
  /// component routing inside its pblock so relocation stays legal).
  bool bounded = false;
  Pblock region;
};

struct RouteResult {
  bool success = false;
  int iterations = 0;
  std::size_t nets_routed = 0;
  std::size_t edges_used = 0;
  int max_overuse = 0;
  double total_wirelength = 0.0;
  std::string error;
};

/// Routes every unrouted multi-terminal net in `netlist` whose endpoints
/// are placed, writing RouteInfo (edges + per-sink delays) into `phys`.
/// Locked/already-routed nets contribute their usage but are not ripped up.
/// A routed net that has gained sinks without delays (a stitched component
/// port) is extended incrementally from its existing route tree — the
/// partition-pin continuation of the inter-component routing step.
RouteResult route_design(const Device& device, const Netlist& netlist, PhysState& phys,
                         const RouteOptions& opt = RouteOptions{},
                         const DelayModel& dm = DelayModel{});

}  // namespace fpgasim
