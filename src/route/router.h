// Parallel incremental negotiated-congestion (PathFinder-style) router
// over a coarse per-tile channel graph.
//
// Nodes are interconnect tiles; edges connect 4-neighbours with a fixed
// wire capacity per direction. Crossing an IO column costs extra delay
// (fabric discontinuities, Sec. V-E). Locked nets (pre-implemented
// components) keep their recorded routes and only charge edge usage; the
// inter-component routing step therefore only negotiates the unrouted
// nets, which is exactly what makes the pre-implemented flow fast.
//
// Negotiation is *incremental*: after the first iteration only nets whose
// route trees touch an overused edge (tracked through a per-edge -> net
// reverse index) are ripped up and rerouted. Within an iteration, dirty
// nets are batched by disjoint expanded bounding boxes and the nets of a
// batch are routed concurrently on a ThreadPool; edge usage is committed
// serially in net-index order after each batch, so the result is
// byte-identical at every pool width (see DESIGN.md section 9).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "fabric/device.h"
#include "fabric/pblock.h"
#include "netlist/netlist.h"
#include "netlist/phys.h"
#include "timing/delay_model.h"
#include "util/thread_pool.h"

namespace fpgasim {

struct RouteOptions {
  int channel_capacity = 14;  // wires per tile edge per direction
  int max_iterations = 18;    // PathFinder negotiation rounds
  double present_factor = 0.7;
  double history_factor = 0.35;
  double congestion_delay_factor = 0.25;  // slowdown on saturated edges
  std::uint64_t seed = 1;
  /// Extra terminal per net (partition pins of OOC ports): net -> tile.
  std::unordered_map<NetId, TileCoord> fixed_terminals;
  /// When set, the search never leaves this rectangle (OOC flow: keep all
  /// component routing inside its pblock so relocation stays legal).
  bool bounded = false;
  Pblock region;
  /// Incremental rip-up: after iteration 1 only nets touching an overused
  /// edge are rerouted. `false` restores the legacy full rip-up (every net,
  /// every iteration) for A/B benchmarking.
  bool incremental = true;
  /// Initial expansion of the per-net A* bounding box beyond its terminals
  /// (tiles), and the extra margin granted each time congestion rips the
  /// net up again (the box grows until a detour fits).
  int bbox_margin = 3;
  int bbox_growth = 8;
  /// Pool for routing the nets of a batch concurrently; null uses the
  /// process-global pool (FPGASIM_THREADS). Any width, including 1,
  /// produces byte-identical results.
  ThreadPool* pool = nullptr;
};

/// Per-negotiation-round telemetry: the incremental router's work should
/// collapse after iteration 1 (rerouted tracks overuse, not net count).
struct RouteIterationStats {
  int nets_rerouted = 0;   // nets ripped up and rerouted this round
  long overused_edges = 0; // edges above capacity after the round
  int max_overuse = 0;
  int batches = 0;         // disjoint-bbox parallel batches this round
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
};

struct RouteResult {
  bool success = false;
  int iterations = 0;
  std::size_t nets_routed = 0;
  std::size_t edges_used = 0;
  int max_overuse = 0;
  double total_wirelength = 0.0;
  double wall_seconds = 0.0;  // whole route_design call
  double cpu_seconds = 0.0;
  std::vector<RouteIterationStats> iteration_stats;
  std::string error;

  /// One-line per-iteration digest for flow logs:
  /// "i1: 42 rerouted/7 over ..." (empty when nothing was routed).
  std::string iteration_summary() const;
};

/// Routes every unrouted multi-terminal net in `netlist` whose endpoints
/// are placed, writing RouteInfo (edges + per-sink delays) into `phys`.
/// Locked/already-routed nets contribute their usage but are not ripped up.
/// A routed net that has gained sinks without delays (a stitched component
/// port) is extended incrementally from its existing route tree — the
/// partition-pin continuation of the inter-component routing step.
RouteResult route_design(const Device& device, const Netlist& netlist, PhysState& phys,
                         const RouteOptions& opt = RouteOptions{},
                         const DelayModel& dm = DelayModel{});

}  // namespace fpgasim
