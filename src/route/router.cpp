#include "route/router.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/log.h"

namespace fpgasim {
namespace {

struct Graph {
  int w = 0, h = 0;
  RouteOptions opt;
  // Undirected edge arrays: horizontal (x,y)-(x+1,y) and vertical
  // (x,y)-(x,y+1).
  std::vector<std::int16_t> use_h, use_v;
  std::vector<float> hist_h, hist_v;
  std::vector<float> base_h, base_v;

  Graph(const Device& device, const RouteOptions& options, const DelayModel& dm)
      : w(device.width()), h(device.height()), opt(options) {
    use_h.assign(static_cast<std::size_t>(w - 1) * h, 0);
    use_v.assign(static_cast<std::size_t>(w) * (h - 1), 0);
    hist_h.assign(use_h.size(), 0.f);
    hist_v.assign(use_v.size(), 0.f);
    base_h.assign(use_h.size(), 0.f);
    base_v.assign(use_v.size(), 0.f);
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w - 1; ++x) {
        double d = dm.wire_per_tile;
        if (device.column_type(x + 1) == ColumnType::kIo) d += dm.wire_discontinuity;
        base_h[h_idx(x, y)] = static_cast<float>(d);
      }
    }
    for (int y = 0; y < h - 1; ++y) {
      for (int x = 0; x < w; ++x) {
        base_v[v_idx(x, y)] = static_cast<float>(dm.wire_per_tile);
      }
    }
  }

  std::size_t h_idx(int x, int y) const { return static_cast<std::size_t>(y) * (w - 1) + x; }
  std::size_t v_idx(int x, int y) const { return static_cast<std::size_t>(y) * w + x; }
  int node(int x, int y) const { return y * w + x; }

  /// Negotiated cost of traversing one edge in the current iteration.
  double edge_cost(bool horizontal, std::size_t idx, double pressure) const {
    const float base = horizontal ? base_h[idx] : base_v[idx];
    const float hist = horizontal ? hist_h[idx] : hist_v[idx];
    const int use = horizontal ? use_h[idx] : use_v[idx];
    const int over = std::max(0, use + 1 - opt.channel_capacity);
    return base * (1.0 + hist) * (1.0 + pressure * over);
  }

  /// Final (post-negotiation) delay of an edge including congestion slowdown.
  double edge_delay(bool horizontal, std::size_t idx) const {
    const float base = horizontal ? base_h[idx] : base_v[idx];
    const int use = horizontal ? use_h[idx] : use_v[idx];
    const double load = static_cast<double>(use) / opt.channel_capacity;
    return base * (1.0 + opt.congestion_delay_factor * load * load);
  }
};

struct PqEntry {
  double f;
  double g;
  int node;
  bool operator<(const PqEntry& o) const { return f > o.f; }  // min-heap
};

}  // namespace

RouteResult route_design(const Device& device, const Netlist& netlist, PhysState& phys,
                         const RouteOptions& opt, const DelayModel& dm) {
  RouteResult result;
  phys.resize_for(netlist);
  Graph graph(device, opt, dm);
  const int w = graph.w, h = graph.h;

  // Charge usage of locked / pre-routed nets.
  auto charge = [&](const RouteInfo& route, int delta) {
    for (const auto& [a, b] : route.edges) {
      if (a.y == b.y) {
        graph.use_h[graph.h_idx(std::min(a.x, b.x), a.y)] =
            static_cast<std::int16_t>(graph.use_h[graph.h_idx(std::min(a.x, b.x), a.y)] + delta);
      } else {
        graph.use_v[graph.v_idx(a.x, std::min(a.y, b.y))] =
            static_cast<std::int16_t>(graph.use_v[graph.v_idx(a.x, std::min(a.y, b.y))] + delta);
      }
    }
  };
  // Collect the nets to route: terminals as tile nodes.
  struct Job {
    NetId net = kInvalidNet;
    int driver_node = -1;
    std::vector<int> sink_nodes;           // deduplicated, still to reach
    std::vector<int> sink_node_of_sink;    // per netlist sink: its node
    // Partial nets (stitched component ports): the locked part of the
    // route tree plus the delays of the sinks it already serves.
    std::vector<std::pair<TileCoord, TileCoord>> seed_edges;
    std::vector<double> old_delays;
  };
  std::vector<Job> jobs;
  for (NetId n = 0; n < netlist.net_count(); ++n) {
    const Net& net = netlist.net(n);
    const RouteInfo& existing = phys.routes[n];
    const bool partial = existing.routed && existing.sink_delays_ns.size() < net.sinks.size();
    if (existing.routed && !partial) {
      charge(existing, +1);  // fully locked: usage only
      continue;
    }
    // A routing_locked net with no recorded route has nothing to preserve:
    // a component output port net has no sinks inside its checkpoint, so it
    // is only routable once stitching gives it inter-component sinks.
    if (net.sinks.empty()) continue;

    TileCoord driver_loc = kUnplaced;
    if (net.driver != kInvalidCell) {
      driver_loc = phys.cell_loc[net.driver];
    } else if (auto it = opt.fixed_terminals.find(n); it != opt.fixed_terminals.end()) {
      driver_loc = it->second;
    }
    if (driver_loc == kUnplaced) continue;  // unplaced endpoints: STA estimates

    Job job;
    job.net = n;
    job.driver_node = graph.node(driver_loc.x, driver_loc.y);
    if (partial) {
      job.seed_edges = existing.edges;
      job.old_delays = existing.sink_delays_ns;
    }
    job.sink_node_of_sink.reserve(net.sinks.size());
    for (std::size_t s = 0; s < net.sinks.size(); ++s) {
      const TileCoord loc = phys.cell_loc[net.sinks[s].first];
      if (loc == kUnplaced) {
        job.sink_node_of_sink.push_back(-1);
        continue;
      }
      const int node = graph.node(loc.x, loc.y);
      job.sink_node_of_sink.push_back(node);
      if (s < job.old_delays.size()) continue;  // already served by the seed
      if (node != job.driver_node &&
          std::find(job.sink_nodes.begin(), job.sink_nodes.end(), node) ==
              job.sink_nodes.end()) {
        job.sink_nodes.push_back(node);
      }
    }
    // Extra fixed terminal (partition pin) routes like one more sink.
    if (net.driver != kInvalidCell) {
      if (auto it = opt.fixed_terminals.find(n); it != opt.fixed_terminals.end()) {
        const int node = graph.node(it->second.x, it->second.y);
        if (node != job.driver_node &&
            std::find(job.sink_nodes.begin(), job.sink_nodes.end(), node) ==
                job.sink_nodes.end()) {
          job.sink_nodes.push_back(node);
        }
      }
    }
    jobs.push_back(std::move(job));
  }

  // Per-job routing state kept across iterations for rip-up.
  std::vector<RouteInfo> job_routes(jobs.size());

  // A* scratch (epoch-stamped to avoid per-search clears).
  std::vector<double> dist(static_cast<std::size_t>(w) * h, 0.0);
  std::vector<int> stamp(static_cast<std::size_t>(w) * h, -1);
  std::vector<int> parent(static_cast<std::size_t>(w) * h, -1);
  std::vector<int> target_stamp(static_cast<std::size_t>(w) * h, -1);
  int epoch = 0;

  auto route_job = [&](Job& job, RouteInfo& route, double pressure) {
    route.edges = job.seed_edges;
    route.sink_delays_ns.clear();
    // Grow a Steiner tree: tree nodes with accumulated delay from driver.
    std::vector<std::pair<int, double>> tree{{job.driver_node, 0.0}};
    std::vector<int> remaining = job.sink_nodes;
    std::unordered_map<int, double> tree_delay;
    tree_delay.emplace(job.driver_node, 0.0);

    // Seed with the locked part of a partial net (BFS over its edges,
    // accumulating delay outward from the driver).
    if (!job.seed_edges.empty()) {
      std::unordered_map<int, std::vector<int>> adjacency;
      for (const auto& [a, b] : job.seed_edges) {
        const int na = graph.node(a.x, a.y), nb = graph.node(b.x, b.y);
        adjacency[na].push_back(nb);
        adjacency[nb].push_back(na);
      }
      std::vector<int> frontier{job.driver_node};
      while (!frontier.empty()) {
        const int v = frontier.back();
        frontier.pop_back();
        const double dv = tree_delay[v];
        for (int u : adjacency[v]) {
          if (tree_delay.count(u)) continue;
          const int vx = v % w, vy = v / w, ux = u % w, uy = u / w;
          const bool horizontal = (vy == uy);
          const std::size_t eidx = horizontal ? graph.h_idx(std::min(vx, ux), vy)
                                              : graph.v_idx(vx, std::min(vy, uy));
          const double du = dv + graph.edge_delay(horizontal, eidx);
          tree_delay.emplace(u, du);
          tree.emplace_back(u, du);
          frontier.push_back(u);
        }
      }
    }

    while (!remaining.empty()) {
      ++epoch;
      for (int t : remaining) target_stamp[static_cast<std::size_t>(t)] = epoch;
      // Admissible A* heuristic: distance to the nearest remaining target
      // (disabled for very wide fanout where the min becomes expensive).
      const bool use_heuristic = remaining.size() <= 8;
      auto heuristic = [&](int node) -> double {
        if (!use_heuristic) return 0.0;
        const int x = node % w, y = node / w;
        int best = 1 << 30;
        for (int t : remaining) {
          best = std::min(best, std::abs(x - t % w) + std::abs(y - t / w));
        }
        return best * dm.wire_per_tile;
      };

      std::priority_queue<PqEntry> pq;
      // Multi-source: seed with every tree node at its true delay.
      for (const auto& [node, delay] : tree) {
        dist[static_cast<std::size_t>(node)] = delay;
        stamp[static_cast<std::size_t>(node)] = epoch;
        parent[static_cast<std::size_t>(node)] = -1;
        pq.push({delay + heuristic(node), delay, node});
      }

      int reached = -1;
      while (!pq.empty()) {
        const PqEntry top = pq.top();
        pq.pop();
        if (top.g > dist[static_cast<std::size_t>(top.node)] + 1e-12) continue;
        if (target_stamp[static_cast<std::size_t>(top.node)] == epoch) {
          reached = top.node;
          break;
        }
        const int x = top.node % w;
        const int y = top.node / w;
        auto relax = [&](int nx, int ny, bool horizontal, std::size_t eidx) {
          const int nn = ny * w + nx;
          const double ng = top.g + graph.edge_cost(horizontal, eidx, pressure);
          if (stamp[static_cast<std::size_t>(nn)] != epoch ||
              ng < dist[static_cast<std::size_t>(nn)] - 1e-12) {
            stamp[static_cast<std::size_t>(nn)] = epoch;
            dist[static_cast<std::size_t>(nn)] = ng;
            parent[static_cast<std::size_t>(nn)] = top.node;
            pq.push({ng + heuristic(nn), ng, nn});
          }
        };
        const int x_lo = opt.bounded ? std::max(0, opt.region.x0) : 0;
        const int x_hi = opt.bounded ? std::min(w - 1, opt.region.x1) : w - 1;
        const int y_lo = opt.bounded ? std::max(0, opt.region.y0) : 0;
        const int y_hi = opt.bounded ? std::min(h - 1, opt.region.y1) : h - 1;
        if (x + 1 <= x_hi) relax(x + 1, y, true, graph.h_idx(x, y));
        if (x - 1 >= x_lo) relax(x - 1, y, true, graph.h_idx(x - 1, y));
        if (y + 1 <= y_hi) relax(x, y + 1, false, graph.v_idx(x, y));
        if (y - 1 >= y_lo) relax(x, y - 1, false, graph.v_idx(x, y - 1));
      }
      if (reached < 0) return false;  // disconnected (cannot happen on a grid)

      // Walk back, add path edges to the tree with *delay* accumulation.
      std::vector<int> path;
      for (int v = reached; v != -1; v = parent[static_cast<std::size_t>(v)]) {
        path.push_back(v);
        if (tree_delay.count(v)) break;
      }
      std::reverse(path.begin(), path.end());
      double delay = tree_delay[path.front()];
      for (std::size_t i = 1; i < path.size(); ++i) {
        const int a = path[i - 1], b = path[i];
        const int ax = a % w, ay = a / w, bx = b % w, by = b / w;
        const bool horizontal = (ay == by);
        const std::size_t eidx = horizontal ? graph.h_idx(std::min(ax, bx), ay)
                                            : graph.v_idx(ax, std::min(ay, by));
        delay += graph.edge_delay(horizontal, eidx);
        route.edges.emplace_back(TileCoord{ax, ay}, TileCoord{bx, by});
        if (!tree_delay.count(b)) {
          tree_delay.emplace(b, delay);
          tree.emplace_back(b, delay);
        }
      }
      remaining.erase(std::remove(remaining.begin(), remaining.end(), reached),
                      remaining.end());
    }

    // Per-sink delays in netlist sink order.
    const Net& net = netlist.net(job.net);
    route.sink_delays_ns.resize(net.sinks.size(), dm.wire_unplaced);
    const double fanout_term =
        dm.wire_per_fanout *
        (net.sinks.size() > 1 ? static_cast<double>(net.sinks.size() - 1) : 0.0);
    for (std::size_t s = 0; s < net.sinks.size(); ++s) {
      if (s < job.old_delays.size()) {
        route.sink_delays_ns[s] = job.old_delays[s];  // locked internal sink
        continue;
      }
      const int node = job.sink_node_of_sink[s];
      if (node < 0) continue;
      const auto it = tree_delay.find(node);
      route.sink_delays_ns[s] =
          dm.wire_base + (it != tree_delay.end() ? it->second : 0.0) + fanout_term;
    }
    route.routed = true;
    return true;
  };

  // PathFinder negotiation.
  for (int iter = 0; iter < opt.max_iterations; ++iter) {
    const double pressure = opt.present_factor * (iter + 1);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (job_routes[j].routed) charge(job_routes[j], -1);
      job_routes[j].routed = false;
      if (!route_job(jobs[j], job_routes[j], pressure)) {
        result.error = "unroutable net #" + std::to_string(jobs[j].net);
        return result;
      }
      charge(job_routes[j], +1);
    }
    // Overuse accounting + history update.
    int max_over = 0;
    long over_edges = 0;
    auto scan = [&](std::vector<std::int16_t>& use, std::vector<float>& hist) {
      for (std::size_t e = 0; e < use.size(); ++e) {
        const int over = use[e] - opt.channel_capacity;
        if (over > 0) {
          ++over_edges;
          max_over = std::max(max_over, over);
          hist[e] += static_cast<float>(opt.history_factor * over);
        }
      }
    };
    scan(graph.use_h, graph.hist_h);
    scan(graph.use_v, graph.hist_v);
    result.iterations = iter + 1;
    result.max_overuse = max_over;
    if (over_edges == 0) break;
  }

  // Commit: recompute per-sink delays with the settled usage. During
  // negotiation each net computed its delays while its own usage was ripped
  // up and later nets were still mid-iteration, so the recorded values
  // reflect a stale congestion snapshot. Re-walk every final route tree
  // from the driver against the final use_h/use_v before committing.
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    RouteInfo& route = job_routes[j];
    const Job& job = jobs[j];
    std::unordered_map<int, double> settled;
    settled.emplace(job.driver_node, 0.0);
    if (!route.edges.empty()) {
      std::unordered_map<int, std::vector<int>> adjacency;
      for (const auto& [a, b] : route.edges) {
        const int na = graph.node(a.x, a.y), nb = graph.node(b.x, b.y);
        adjacency[na].push_back(nb);
        adjacency[nb].push_back(na);
      }
      std::vector<int> frontier{job.driver_node};
      while (!frontier.empty()) {
        const int v = frontier.back();
        frontier.pop_back();
        const double dv = settled[v];
        for (int u : adjacency[v]) {
          if (settled.count(u)) continue;
          const int vx = v % w, vy = v / w, ux = u % w, uy = u / w;
          const bool horizontal = (vy == uy);
          const std::size_t eidx = horizontal ? graph.h_idx(std::min(vx, ux), vy)
                                              : graph.v_idx(vx, std::min(vy, uy));
          settled.emplace(u, dv + graph.edge_delay(horizontal, eidx));
          frontier.push_back(u);
        }
      }
    }
    const Net& net = netlist.net(job.net);
    const double fanout_term =
        dm.wire_per_fanout *
        (net.sinks.size() > 1 ? static_cast<double>(net.sinks.size() - 1) : 0.0);
    for (std::size_t s = 0; s < net.sinks.size(); ++s) {
      if (s < job.old_delays.size()) continue;  // locked internal sink: keep
      const int node = job.sink_node_of_sink[s];
      if (node < 0) continue;  // unplaced sink: keep the fallback estimate
      const auto it = settled.find(node);
      if (it == settled.end()) continue;
      route.sink_delays_ns[s] = dm.wire_base + it->second + fanout_term;
    }
    phys.routes[job.net] = route;
    result.edges_used += route.edges.size();
    result.total_wirelength += static_cast<double>(route.edges.size());
    ++result.nets_routed;
  }
  result.success = true;
  if (result.max_overuse > 0) {
    LOG_DEBUG("router: residual overuse %d after %d iterations", result.max_overuse,
              result.iterations);
  }
  return result;
}

}  // namespace fpgasim
