#include "route/router.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <utility>

#include "util/log.h"
#include "util/timer.h"

namespace fpgasim {
namespace {

struct Graph {
  int w = 0, h = 0;
  RouteOptions opt;
  // Undirected edge arrays: horizontal (x,y)-(x+1,y) and vertical
  // (x,y)-(x,y+1).
  std::vector<std::int16_t> use_h, use_v;
  std::vector<float> hist_h, hist_v;
  std::vector<float> base_h, base_v;
  // Per-edge -> routing-job reverse index (open nets only; locked nets
  // charge usage but are never ripped up, so they are not tracked). Drives
  // incremental rip-up: an overused edge dirties exactly its user jobs.
  std::vector<std::vector<std::int32_t>> users_h, users_v;

  Graph(const Device& device, const RouteOptions& options, const DelayModel& dm)
      : w(device.width()), h(device.height()), opt(options) {
    use_h.assign(static_cast<std::size_t>(w - 1) * h, 0);
    use_v.assign(static_cast<std::size_t>(w) * (h - 1), 0);
    hist_h.assign(use_h.size(), 0.f);
    hist_v.assign(use_v.size(), 0.f);
    base_h.assign(use_h.size(), 0.f);
    base_v.assign(use_v.size(), 0.f);
    users_h.resize(use_h.size());
    users_v.resize(use_v.size());
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w - 1; ++x) {
        double d = dm.wire_per_tile;
        if (device.column_type(x + 1) == ColumnType::kIo) d += dm.wire_discontinuity;
        base_h[h_idx(x, y)] = static_cast<float>(d);
      }
    }
    for (int y = 0; y < h - 1; ++y) {
      for (int x = 0; x < w; ++x) {
        base_v[v_idx(x, y)] = static_cast<float>(dm.wire_per_tile);
      }
    }
  }

  std::size_t h_idx(int x, int y) const { return static_cast<std::size_t>(y) * (w - 1) + x; }
  std::size_t v_idx(int x, int y) const { return static_cast<std::size_t>(y) * w + x; }
  int node(int x, int y) const { return y * w + x; }

  /// Canonical (horizontal?, index) of the undirected edge a-b.
  std::pair<bool, std::size_t> edge_index(TileCoord a, TileCoord b) const {
    if (a.y == b.y) return {true, h_idx(std::min(a.x, b.x), a.y)};
    return {false, v_idx(a.x, std::min(a.y, b.y))};
  }

  /// Negotiated cost of traversing one edge in the current iteration.
  double edge_cost(bool horizontal, std::size_t idx, double pressure) const {
    const float base = horizontal ? base_h[idx] : base_v[idx];
    const float hist = horizontal ? hist_h[idx] : hist_v[idx];
    const int use = horizontal ? use_h[idx] : use_v[idx];
    const int over = std::max(0, use + 1 - opt.channel_capacity);
    return base * (1.0 + hist) * (1.0 + pressure * over);
  }

  /// Final (post-negotiation) delay of an edge including congestion slowdown.
  double edge_delay(bool horizontal, std::size_t idx) const {
    const float base = horizontal ? base_h[idx] : base_v[idx];
    const int use = horizontal ? use_h[idx] : use_v[idx];
    const double load = static_cast<double>(use) / opt.channel_capacity;
    return base * (1.0 + opt.congestion_delay_factor * load * load);
  }

  /// Usage of locked / pre-routed nets: no rip-up, so no reverse index.
  void charge_locked(const RouteInfo& route, int delta) {
    for (const auto& [a, b] : route.edges) {
      const auto [horizontal, idx] = edge_index(a, b);
      std::int16_t& use = horizontal ? use_h[idx] : use_v[idx];
      use = static_cast<std::int16_t>(use + delta);
    }
  }

  /// Usage + reverse index of an open routing job's current route.
  void charge_job(std::int32_t job, const RouteInfo& route, int delta) {
    for (const auto& [a, b] : route.edges) {
      const auto [horizontal, idx] = edge_index(a, b);
      std::int16_t& use = horizontal ? use_h[idx] : use_v[idx];
      use = static_cast<std::int16_t>(use + delta);
      std::vector<std::int32_t>& users = horizontal ? users_h[idx] : users_v[idx];
      if (delta > 0) {
        users.push_back(job);
      } else {
        users.erase(std::find(users.begin(), users.end(), job));
      }
    }
  }
};

struct PqEntry {
  double f;
  double g;
  int node;
  // Min-heap on f with a full deterministic order: ties prefer the larger
  // g (deeper, closer to the goal), then the smaller node id, so heap
  // order never depends on insertion order.
  bool operator<(const PqEntry& o) const {
    if (f != o.f) return f > o.f;
    if (g != o.g) return g < o.g;
    return node > o.node;
  }
};

/// Per-worker search scratch: flat epoch-stamped arrays over the tile
/// grid, so neither the A* search, the seed-tree walk nor the commit
/// re-walk allocates or hashes per node. One Scratch is private to one
/// net's routing at a time (leased from the ScratchPool below).
struct Scratch {
  std::vector<double> dist;      // A* best g per node        (search epoch)
  std::vector<int> visit_stamp;  // dist/parent validity
  std::vector<int> parent;
  std::vector<int> target_stamp;       // goal nodes of the search
  std::vector<int> target_dist;        // hops to nearest remaining target
  std::vector<int> target_dist_stamp;  // (search epoch)
  std::vector<double> tree_delay;      // driver->node delay   (tree epoch)
  std::vector<int> tree_stamp;
  std::vector<int> adj;                // 4 slots/node: route-tree adjacency
  std::vector<std::uint8_t> adj_count;
  std::vector<int> adj_stamp;          // (tree epoch)
  std::vector<int> frontier, next_frontier;  // BFS worklists
  std::vector<PqEntry> heap;                 // A* priority queue storage
  int epoch = 0;

  void ensure(std::size_t nodes) {
    if (dist.size() >= nodes) return;
    dist.resize(nodes);
    visit_stamp.assign(nodes, -1);
    parent.resize(nodes);
    target_stamp.assign(nodes, -1);
    target_dist.resize(nodes);
    target_dist_stamp.assign(nodes, -1);
    tree_delay.resize(nodes);
    tree_stamp.assign(nodes, -1);
    adj.resize(nodes * 4);
    adj_count.resize(nodes);
    adj_stamp.assign(nodes, -1);
  }

  /// Loads `edges` into the adjacency arrays under `tree_epoch` and walks
  /// the tree from `root`, stamping tree_delay with the accumulated edge
  /// delay. Nodes reached beyond the root are appended to `out` when set.
  void walk_tree(const Graph& g, const std::vector<std::pair<TileCoord, TileCoord>>& edges,
                 int root, int tree_epoch, std::vector<std::pair<int, double>>* out) {
    auto link = [&](int from, int to) {
      const std::size_t n = static_cast<std::size_t>(from);
      if (adj_stamp[n] != tree_epoch) {
        adj_stamp[n] = tree_epoch;
        adj_count[n] = 0;
      }
      if (adj_count[n] < 4) adj[n * 4 + adj_count[n]++] = to;
    };
    for (const auto& [a, b] : edges) {
      const int na = g.node(a.x, a.y), nb = g.node(b.x, b.y);
      link(na, nb);
      link(nb, na);
    }
    tree_stamp[static_cast<std::size_t>(root)] = tree_epoch;
    tree_delay[static_cast<std::size_t>(root)] = 0.0;
    frontier.clear();
    frontier.push_back(root);
    while (!frontier.empty()) {
      const int v = frontier.back();
      frontier.pop_back();
      const std::size_t vn = static_cast<std::size_t>(v);
      const double dv = tree_delay[vn];
      if (adj_stamp[vn] != tree_epoch) continue;  // leaf beyond the edges
      for (std::uint8_t k = 0; k < adj_count[vn]; ++k) {
        const int u = adj[vn * 4 + k];
        const std::size_t un = static_cast<std::size_t>(u);
        if (tree_stamp[un] == tree_epoch) continue;
        const int vx = v % g.w, vy = v / g.w, ux = u % g.w, uy = u / g.w;
        const bool horizontal = (vy == uy);
        const std::size_t eidx = horizontal ? g.h_idx(std::min(vx, ux), vy)
                                            : g.v_idx(vx, std::min(vy, uy));
        const double du = dv + g.edge_delay(horizontal, eidx);
        tree_stamp[un] = tree_epoch;
        tree_delay[un] = du;
        if (out != nullptr) out->emplace_back(u, du);
        frontier.push_back(u);
      }
    }
  }
};

/// Lease-based pool of Scratch instances: one per concurrently routing
/// net, reused across batches and iterations. Which physical Scratch a net
/// gets does not matter — every array is epoch-stamped.
class ScratchPool {
 public:
  explicit ScratchPool(std::size_t nodes) : nodes_(nodes) {}

  std::unique_ptr<Scratch> acquire() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!free_.empty()) {
        std::unique_ptr<Scratch> s = std::move(free_.back());
        free_.pop_back();
        return s;
      }
    }
    auto s = std::make_unique<Scratch>();
    s->ensure(nodes_);
    return s;
  }

  void release(std::unique_ptr<Scratch> s) {
    std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(std::move(s));
  }

 private:
  std::size_t nodes_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<Scratch>> free_;
};

// One net to route: terminals as tile nodes.
struct Job {
  NetId net = kInvalidNet;
  int driver_node = -1;
  std::vector<int> sink_nodes;         // deduplicated, still to reach
  std::vector<int> sink_node_of_sink;  // per netlist sink: its node
  // Partial nets (stitched component ports): the locked part of the
  // route tree plus the delays of the sinks it already serves.
  std::vector<std::pair<TileCoord, TileCoord>> seed_edges;
  std::vector<double> old_delays;
  // A* search region: the terminal/seed bounding box expanded by `margin`
  // tiles and clamped to the device (and opt.region when bounded). The
  // margin grows every time congestion rips the net up, so detours always
  // eventually fit.
  Pblock base_box;
  Pblock box;
  int margin = 0;
};

void clamp_box(Job& job, const Graph& graph) {
  Pblock b = job.base_box;
  b.x0 -= job.margin;
  b.y0 -= job.margin;
  b.x1 += job.margin;
  b.y1 += job.margin;
  b.x0 = std::max(b.x0, 0);
  b.y0 = std::max(b.y0, 0);
  b.x1 = std::min(b.x1, graph.w - 1);
  b.y1 = std::min(b.y1, graph.h - 1);
  if (graph.opt.bounded) {
    b.x0 = std::max(b.x0, graph.opt.region.x0);
    b.y0 = std::max(b.y0, graph.opt.region.y0);
    b.x1 = std::min(b.x1, graph.opt.region.x1);
    b.y1 = std::min(b.y1, graph.opt.region.y1);
  }
  job.box = b;
}

void grow_box(Job& job, int x, int y) {
  job.base_box.x0 = std::min(job.base_box.x0, x);
  job.base_box.y0 = std::min(job.base_box.y0, y);
  job.base_box.x1 = std::max(job.base_box.x1, x);
  job.base_box.y1 = std::max(job.base_box.y1, y);
}

/// Splits `worklist` (ascending job indices) into batches whose search
/// boxes are pairwise disjoint. A batch's nets read and write disjoint
/// edge sets, so routing them concurrently is exactly equivalent to
/// routing them one after another — which is what makes the parallel
/// schedule byte-identical to the serial one. Conflicting boxes serialize
/// into later batches (first-fit, probed through a coarse occupancy
/// bitmap with an exact rectangle check on coarse collisions).
std::vector<std::vector<std::size_t>> make_batches(const std::vector<Job>& jobs,
                                                   const std::vector<std::size_t>& worklist,
                                                   int w, int h) {
  constexpr int kCell = 8;                // coarse grid granularity (tiles)
  constexpr std::size_t kMaxProbe = 64;   // batches tried before opening a new one
  const int gw = (w + kCell - 1) / kCell;
  const std::size_t words = (static_cast<std::size_t>(gw) * ((h + kCell - 1) / kCell) + 63) / 64;
  struct Batch {
    std::vector<std::size_t> members;
    std::vector<Pblock> boxes;
    std::vector<std::uint64_t> bits;
  };
  std::vector<Batch> batches;
  auto for_cells = [&](const Pblock& box, auto&& fn) {
    for (int cy = box.y0 / kCell; cy <= box.y1 / kCell; ++cy) {
      for (int cx = box.x0 / kCell; cx <= box.x1 / kCell; ++cx) {
        fn(static_cast<std::size_t>(cy) * gw + cx);
      }
    }
  };
  for (std::size_t j : worklist) {
    const Pblock& box = jobs[j].box;
    Batch* home = nullptr;
    const std::size_t probe = std::min(batches.size(), kMaxProbe);
    for (std::size_t b = 0; b < probe && home == nullptr; ++b) {
      Batch& cand = batches[b];
      bool coarse_hit = false;
      for_cells(box, [&](std::size_t cell) {
        coarse_hit = coarse_hit || ((cand.bits[cell >> 6] >> (cell & 63)) & 1) != 0;
      });
      if (coarse_hit) {
        // A shared coarse cell is conservative; confirm with exact tests.
        bool overlap = false;
        for (const Pblock& other : cand.boxes) {
          if (box.overlaps(other)) {
            overlap = true;
            break;
          }
        }
        if (overlap) continue;
      }
      home = &cand;
    }
    if (home == nullptr) {
      batches.emplace_back();
      home = &batches.back();
      home->bits.assign(words, 0);
    }
    home->members.push_back(j);
    home->boxes.push_back(box);
    for_cells(box, [&](std::size_t cell) {
      home->bits[cell >> 6] |= std::uint64_t{1} << (cell & 63);
    });
  }
  std::vector<std::vector<std::size_t>> out;
  out.reserve(batches.size());
  for (Batch& b : batches) out.push_back(std::move(b.members));
  return out;
}

/// Routes one net inside its bounding box against the current usage.
/// Reads the graph, writes only `route` and `scratch` — never shared
/// state — so jobs of one batch can run on any thread in any order.
bool route_job(const Graph& graph, const Netlist& netlist, const DelayModel& dm,
               const Job& job, RouteInfo& route, double pressure, Scratch& s) {
  const int w = graph.w;
  const Pblock& box = job.box;
  route.edges = job.seed_edges;
  route.sink_delays_ns.clear();

  // Grow a Steiner tree: tree nodes with accumulated delay from driver.
  const int tree_epoch = ++s.epoch;
  std::vector<std::pair<int, double>> tree;
  tree.reserve(job.sink_nodes.size() + job.seed_edges.size() + 1);
  tree.emplace_back(job.driver_node, 0.0);
  s.tree_stamp[static_cast<std::size_t>(job.driver_node)] = tree_epoch;
  s.tree_delay[static_cast<std::size_t>(job.driver_node)] = 0.0;
  // Seed with the locked part of a partial net (delay accumulates outward
  // from the driver along its edges).
  if (!job.seed_edges.empty()) {
    s.walk_tree(graph, job.seed_edges, job.driver_node, tree_epoch, &tree);
  }

  std::vector<int> remaining = job.sink_nodes;
  while (!remaining.empty()) {
    const int search = ++s.epoch;
    for (int t : remaining) s.target_stamp[static_cast<std::size_t>(t)] = search;

    // Admissible A* heuristic: distance to the nearest remaining target.
    // Small fanouts use a direct min-scan; wide fanouts precompute a
    // nearest-target distance grid with one multi-source BFS across the
    // box (exact min-Manhattan on the unobstructed rectangle), so the
    // heuristic stays O(1) per node instead of degenerating to Dijkstra.
    const bool small_fanout = remaining.size() <= 8;
    if (!small_fanout) {
      s.frontier.clear();
      for (int t : remaining) {
        const std::size_t tn = static_cast<std::size_t>(t);
        if (s.target_dist_stamp[tn] != search) {
          s.target_dist_stamp[tn] = search;
          s.target_dist[tn] = 0;
          s.frontier.push_back(t);
        }
      }
      int level = 0;
      while (!s.frontier.empty()) {
        s.next_frontier.clear();
        ++level;
        for (int v : s.frontier) {
          const int x = v % w, y = v / w;
          auto visit = [&](int nx, int ny) {
            const std::size_t nn = static_cast<std::size_t>(ny * w + nx);
            if (s.target_dist_stamp[nn] != search) {
              s.target_dist_stamp[nn] = search;
              s.target_dist[nn] = level;
              s.next_frontier.push_back(static_cast<int>(nn));
            }
          };
          if (x + 1 <= box.x1) visit(x + 1, y);
          if (x - 1 >= box.x0) visit(x - 1, y);
          if (y + 1 <= box.y1) visit(x, y + 1);
          if (y - 1 >= box.y0) visit(x, y - 1);
        }
        s.frontier.swap(s.next_frontier);
      }
    }
    auto heuristic = [&](int node) -> double {
      const std::size_t n = static_cast<std::size_t>(node);
      if (small_fanout) {
        const int x = node % w, y = node / w;
        int best = 1 << 30;
        for (int t : remaining) {
          best = std::min(best, std::abs(x - t % w) + std::abs(y - t / w));
        }
        return best * dm.wire_per_tile;
      }
      return s.target_dist_stamp[n] == search ? s.target_dist[n] * dm.wire_per_tile : 0.0;
    };

    // Multi-source: seed with every tree node at its true delay.
    s.heap.clear();
    for (const auto& [node, delay] : tree) {
      const std::size_t n = static_cast<std::size_t>(node);
      s.dist[n] = delay;
      s.visit_stamp[n] = search;
      s.parent[n] = -1;
      s.heap.push_back({delay + heuristic(node), delay, node});
    }
    std::make_heap(s.heap.begin(), s.heap.end());

    int reached = -1;
    while (!s.heap.empty()) {
      std::pop_heap(s.heap.begin(), s.heap.end());
      const PqEntry top = s.heap.back();
      s.heap.pop_back();
      if (top.g > s.dist[static_cast<std::size_t>(top.node)] + 1e-12) continue;
      if (s.target_stamp[static_cast<std::size_t>(top.node)] == search) {
        reached = top.node;
        break;
      }
      const int x = top.node % w;
      const int y = top.node / w;
      auto relax = [&](int nx, int ny, bool horizontal, std::size_t eidx) {
        const int nn = ny * w + nx;
        const std::size_t n = static_cast<std::size_t>(nn);
        const double ng = top.g + graph.edge_cost(horizontal, eidx, pressure);
        if (s.visit_stamp[n] != search || ng < s.dist[n] - 1e-12) {
          s.visit_stamp[n] = search;
          s.dist[n] = ng;
          s.parent[n] = top.node;
          s.heap.push_back({ng + heuristic(nn), ng, nn});
          std::push_heap(s.heap.begin(), s.heap.end());
        }
      };
      if (x + 1 <= box.x1) relax(x + 1, y, true, graph.h_idx(x, y));
      if (x - 1 >= box.x0) relax(x - 1, y, true, graph.h_idx(x - 1, y));
      if (y + 1 <= box.y1) relax(x, y + 1, false, graph.v_idx(x, y));
      if (y - 1 >= box.y0) relax(x, y - 1, false, graph.v_idx(x, y - 1));
    }
    if (reached < 0) return false;  // target outside the bounded region

    // Walk back, add path edges to the tree with *delay* accumulation.
    std::vector<int> path;
    for (int v = reached; v != -1; v = s.parent[static_cast<std::size_t>(v)]) {
      path.push_back(v);
      if (s.tree_stamp[static_cast<std::size_t>(v)] == tree_epoch) break;
    }
    std::reverse(path.begin(), path.end());
    double delay = s.tree_delay[static_cast<std::size_t>(path.front())];
    for (std::size_t i = 1; i < path.size(); ++i) {
      const int a = path[i - 1], b = path[i];
      const int ax = a % w, ay = a / w, bx = b % w, by = b / w;
      const bool horizontal = (ay == by);
      const std::size_t eidx = horizontal ? graph.h_idx(std::min(ax, bx), ay)
                                          : graph.v_idx(ax, std::min(ay, by));
      delay += graph.edge_delay(horizontal, eidx);
      route.edges.emplace_back(TileCoord{ax, ay}, TileCoord{bx, by});
      const std::size_t bn = static_cast<std::size_t>(b);
      if (s.tree_stamp[bn] != tree_epoch) {
        s.tree_stamp[bn] = tree_epoch;
        s.tree_delay[bn] = delay;
        tree.emplace_back(b, delay);
      }
    }
    remaining.erase(std::remove(remaining.begin(), remaining.end(), reached),
                    remaining.end());
  }

  // Per-sink delays in netlist sink order.
  const Net& net = netlist.net(job.net);
  route.sink_delays_ns.resize(net.sinks.size(), dm.wire_unplaced);
  const double fanout_term =
      dm.wire_per_fanout *
      (net.sinks.size() > 1 ? static_cast<double>(net.sinks.size() - 1) : 0.0);
  for (std::size_t sk = 0; sk < net.sinks.size(); ++sk) {
    if (sk < job.old_delays.size()) {
      route.sink_delays_ns[sk] = job.old_delays[sk];  // locked internal sink
      continue;
    }
    const int node = job.sink_node_of_sink[sk];
    if (node < 0) continue;
    const std::size_t n = static_cast<std::size_t>(node);
    const double tree_d = s.tree_stamp[n] == tree_epoch ? s.tree_delay[n] : 0.0;
    route.sink_delays_ns[sk] = dm.wire_base + tree_d + fanout_term;
  }
  route.routed = true;
  return true;
}

}  // namespace

std::string RouteResult::iteration_summary() const {
  std::string out;
  char buf[112];
  for (std::size_t i = 0; i < iteration_stats.size(); ++i) {
    const RouteIterationStats& s = iteration_stats[i];
    std::snprintf(buf, sizeof(buf), "%si%zu: %d rerouted/%ld over/%d batches/%.2fms wall/%.2fms cpu",
                  i == 0 ? "" : "; ", i + 1, s.nets_rerouted, s.overused_edges, s.batches,
                  s.wall_seconds * 1e3, s.cpu_seconds * 1e3);
    out += buf;
  }
  return out;
}

RouteResult route_design(const Device& device, const Netlist& netlist, PhysState& phys,
                         const RouteOptions& opt, const DelayModel& dm) {
  RouteResult result;
  Stopwatch route_wall;
  CpuStopwatch route_cpu;
  phys.resize_for(netlist);
  Graph graph(device, opt, dm);
  const int w = graph.w, h = graph.h;
  const std::size_t nodes = static_cast<std::size_t>(w) * h;

  // Collect the nets to route. `sink_seen` deduplicates sink tiles in O(1)
  // per sink (stamped with the per-net sequence number), replacing the old
  // O(fanout^2) std::find scan over sink_nodes.
  std::vector<Job> jobs;
  std::vector<int> sink_seen(nodes, -1);
  int job_seq = 0;
  for (NetId n = 0; n < netlist.net_count(); ++n) {
    const Net& net = netlist.net(n);
    const RouteInfo& existing = phys.routes[n];
    const bool partial = existing.routed && existing.sink_delays_ns.size() < net.sinks.size();
    if (existing.routed && !partial) {
      graph.charge_locked(existing, +1);  // fully locked: usage only
      continue;
    }
    // A routing_locked net with no recorded route has nothing to preserve:
    // a component output port net has no sinks inside its checkpoint, so it
    // is only routable once stitching gives it inter-component sinks.
    if (net.sinks.empty()) continue;

    TileCoord driver_loc = kUnplaced;
    if (net.driver != kInvalidCell) {
      driver_loc = phys.cell_loc[net.driver];
    } else if (auto it = opt.fixed_terminals.find(n); it != opt.fixed_terminals.end()) {
      driver_loc = it->second;
    }
    if (driver_loc == kUnplaced) continue;  // unplaced endpoints: STA estimates

    ++job_seq;
    Job job;
    job.net = n;
    job.driver_node = graph.node(driver_loc.x, driver_loc.y);
    job.base_box = Pblock{driver_loc.x, driver_loc.y, driver_loc.x, driver_loc.y};
    sink_seen[static_cast<std::size_t>(job.driver_node)] = job_seq;
    if (partial) {
      job.seed_edges = existing.edges;
      job.old_delays = existing.sink_delays_ns;
      for (const auto& [a, b] : job.seed_edges) {
        grow_box(job, a.x, a.y);
        grow_box(job, b.x, b.y);
      }
    }
    job.sink_node_of_sink.reserve(net.sinks.size());
    for (std::size_t sk = 0; sk < net.sinks.size(); ++sk) {
      const TileCoord loc = phys.cell_loc[net.sinks[sk].first];
      if (loc == kUnplaced) {
        job.sink_node_of_sink.push_back(-1);
        continue;
      }
      const int node = graph.node(loc.x, loc.y);
      job.sink_node_of_sink.push_back(node);
      if (sk < job.old_delays.size()) continue;  // already served by the seed
      if (sink_seen[static_cast<std::size_t>(node)] != job_seq) {
        sink_seen[static_cast<std::size_t>(node)] = job_seq;
        job.sink_nodes.push_back(node);
        grow_box(job, loc.x, loc.y);
      }
    }
    // Extra fixed terminal (partition pin) routes like one more sink.
    if (net.driver != kInvalidCell) {
      if (auto it = opt.fixed_terminals.find(n); it != opt.fixed_terminals.end()) {
        const int node = graph.node(it->second.x, it->second.y);
        if (sink_seen[static_cast<std::size_t>(node)] != job_seq) {
          sink_seen[static_cast<std::size_t>(node)] = job_seq;
          job.sink_nodes.push_back(node);
          grow_box(job, it->second.x, it->second.y);
        }
      }
    }
    job.margin = std::max(0, opt.bbox_margin);
    clamp_box(job, graph);
    jobs.push_back(std::move(job));
  }

  // Per-job routing state kept across iterations for incremental rip-up.
  std::vector<RouteInfo> job_routes(jobs.size());
  std::vector<char> dirty(jobs.size(), 1);  // iteration 1 routes everything
  ScratchPool scratches(nodes);
  ThreadPool* pool = opt.pool;

  // PathFinder negotiation.
  for (int iter = 0; iter < opt.max_iterations; ++iter) {
    Stopwatch iter_wall;
    CpuStopwatch iter_cpu;
    const double pressure = opt.present_factor * (iter + 1);

    std::vector<std::size_t> worklist;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (dirty[j] != 0) worklist.push_back(j);
    }
    // Rip up every dirty net before any reroutes, so a batch negotiates
    // against exactly the usage the serial router would see.
    for (std::size_t j : worklist) {
      if (job_routes[j].routed) graph.charge_job(static_cast<std::int32_t>(j), job_routes[j], -1);
      job_routes[j].routed = false;
    }

    const std::vector<std::vector<std::size_t>> batches = make_batches(jobs, worklist, w, h);
    std::string error;
    for (const std::vector<std::size_t>& batch : batches) {
      // Disjoint boxes: the nets of a batch touch disjoint edge sets, so
      // routing them concurrently and committing usage afterwards in
      // net-index order is byte-identical to routing them one by one —
      // at any pool width, including 1.
      std::vector<char> ok(batch.size(), 0);
      parallel_for(
          0, batch.size(),
          [&](std::size_t k) {
            std::unique_ptr<Scratch> scratch = scratches.acquire();
            ok[k] = route_job(graph, netlist, dm, jobs[batch[k]], job_routes[batch[k]],
                              pressure, *scratch)
                        ? 1
                        : 0;
            scratches.release(std::move(scratch));
          },
          pool);
      for (std::size_t k = 0; k < batch.size(); ++k) {
        const std::size_t j = batch[k];
        if (ok[k] == 0) {
          if (error.empty()) error = "unroutable net #" + std::to_string(jobs[j].net);
          job_routes[j].routed = false;
          continue;
        }
        graph.charge_job(static_cast<std::int32_t>(j), job_routes[j], +1);
      }
      if (!error.empty()) break;
    }
    if (!error.empty()) {
      result.error = std::move(error);
      result.wall_seconds = route_wall.seconds();
      result.cpu_seconds = route_cpu.seconds();
      return result;
    }

    // Overuse accounting, history update and incremental dirty marking:
    // an overused edge dirties exactly the jobs in its reverse index.
    std::fill(dirty.begin(), dirty.end(), 0);
    int max_over = 0;
    long over_edges = 0;
    bool job_congestion = false;
    auto scan = [&](std::vector<std::int16_t>& use, std::vector<float>& hist,
                    std::vector<std::vector<std::int32_t>>& users) {
      for (std::size_t e = 0; e < use.size(); ++e) {
        const int over = use[e] - opt.channel_capacity;
        if (over > 0) {
          ++over_edges;
          max_over = std::max(max_over, over);
          hist[e] += static_cast<float>(opt.history_factor * over);
          for (std::int32_t j : users[e]) {
            dirty[static_cast<std::size_t>(j)] = 1;
            job_congestion = true;
          }
        }
      }
    };
    scan(graph.use_h, graph.hist_h, graph.users_h);
    scan(graph.use_v, graph.hist_v, graph.users_v);
    // Congestion-induced rips get a wider search box: the escape route may
    // not fit the current rectangle.
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (dirty[j] != 0) {
        jobs[j].margin += std::max(0, opt.bbox_growth);
        clamp_box(jobs[j], graph);
      }
    }
    if (!opt.incremental && over_edges > 0) std::fill(dirty.begin(), dirty.end(), 1);

    RouteIterationStats stats;
    stats.nets_rerouted = static_cast<int>(worklist.size());
    stats.overused_edges = over_edges;
    stats.max_overuse = max_over;
    stats.batches = static_cast<int>(batches.size());
    stats.wall_seconds = iter_wall.seconds();
    stats.cpu_seconds = iter_cpu.seconds();
    result.iteration_stats.push_back(stats);
    result.iterations = iter + 1;
    result.max_overuse = max_over;
    if (over_edges == 0) break;
    // Residual overuse that involves no open net (locked routes alone
    // oversubscribe an edge) cannot be negotiated away: stop early.
    if (!job_congestion) break;
  }

  // Commit: recompute per-sink delays with the settled usage. During
  // negotiation each net computed its delays while its own usage was ripped
  // up and other nets were still mid-iteration, so the recorded values
  // reflect a stale congestion snapshot. Re-walk every final route tree
  // from the driver against the final use_h/use_v before committing.
  parallel_for(
      0, jobs.size(),
      [&](std::size_t j) {
        RouteInfo& route = job_routes[j];
        const Job& job = jobs[j];
        std::unique_ptr<Scratch> scratch = scratches.acquire();
        Scratch& s = *scratch;
        const int settled_epoch = ++s.epoch;
        s.tree_stamp[static_cast<std::size_t>(job.driver_node)] = settled_epoch;
        s.tree_delay[static_cast<std::size_t>(job.driver_node)] = 0.0;
        if (!route.edges.empty()) {
          s.walk_tree(graph, route.edges, job.driver_node, settled_epoch, nullptr);
        }
        const Net& net = netlist.net(job.net);
        const double fanout_term =
            dm.wire_per_fanout *
            (net.sinks.size() > 1 ? static_cast<double>(net.sinks.size() - 1) : 0.0);
        for (std::size_t sk = 0; sk < net.sinks.size(); ++sk) {
          if (sk < job.old_delays.size()) continue;  // locked internal sink: keep
          const int node = job.sink_node_of_sink[sk];
          if (node < 0) continue;  // unplaced sink: keep the fallback estimate
          const std::size_t nn = static_cast<std::size_t>(node);
          if (s.tree_stamp[nn] != settled_epoch) continue;
          route.sink_delays_ns[sk] = dm.wire_base + s.tree_delay[nn] + fanout_term;
        }
        scratches.release(std::move(scratch));
      },
      pool);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    result.edges_used += job_routes[j].edges.size();
    result.total_wirelength += static_cast<double>(job_routes[j].edges.size());
    ++result.nets_routed;
    phys.routes[jobs[j].net] = std::move(job_routes[j]);
  }
  result.success = true;
  result.wall_seconds = route_wall.seconds();
  result.cpu_seconds = route_cpu.seconds();
  if (result.max_overuse > 0) {
    LOG_DEBUG("router: residual overuse %d after %d iterations", result.max_overuse,
              result.iterations);
  }
  return result;
}

}  // namespace fpgasim
