// Checkpoint integrity rules: partition pins on the pblock boundary and
// meta/device/physical-state consistency of a serialized component.
#include <cmath>

#include "drc/drc.h"

namespace fpgasim {
namespace drc_detail {
namespace {

class CheckpointPinsRule final : public DrcRule {
 public:
  const char* id() const override { return "cp-pins"; }
  const char* what() const override {
    return "partition pins are planned on the pblock boundary";
  }
  unsigned stages() const override { return kDrcCheckpoint; }
  DrcSeverity severity() const override { return DrcSeverity::kWarning; }

  void check(const DrcContext& ctx, DrcReport& report) const override {
    if (ctx.checkpoint == nullptr) return;
    const Checkpoint& cp = *ctx.checkpoint;
    const std::size_t num_ports = cp.netlist.ports().size();
    if (cp.port_pins.empty()) {
      if (num_ports > 0) {
        report.add({id(), DrcSeverity::kInfo,
                    "checkpoint '" + cp.netlist.name() + "' records no partition pin plan",
                    kInvalidCell, kInvalidNet});
      }
      return;
    }
    if (cp.port_pins.size() != num_ports) {
      report.add({id(), DrcSeverity::kError,
                  "checkpoint '" + cp.netlist.name() + "' records " +
                      std::to_string(cp.port_pins.size()) + " partition pins for " +
                      std::to_string(num_ports) + " ports",
                  kInvalidCell, kInvalidNet});
      return;
    }
    const Pblock& pb = cp.pblock;
    for (std::size_t p = 0; p < cp.port_pins.size(); ++p) {
      const TileCoord pin = cp.port_pins[p];
      const bool inside = pb.contains(pin.x, pin.y);
      const bool on_boundary =
          inside && (pin.x == pb.x0 || pin.x == pb.x1 || pin.y == pb.y0 || pin.y == pb.y1);
      if (!on_boundary) {
        report.add({id(), severity(),
                    "partition pin of port '" + cp.netlist.ports()[p].name + "' at (" +
                        std::to_string(pin.x) + "," + std::to_string(pin.y) + ") is " +
                        (inside ? "inside" : "outside") + " pblock " + pb.to_string() +
                        " instead of on its boundary",
                    kInvalidCell, kInvalidNet});
      }
    }
  }
};

class CheckpointMetaRule final : public DrcRule {
 public:
  const char* id() const override { return "cp-meta"; }
  const char* what() const override {
    return "checkpoint meta, pblock and physical state are mutually consistent";
  }
  unsigned stages() const override { return kDrcCheckpoint; }
  DrcSeverity severity() const override { return DrcSeverity::kError; }

  void check(const DrcContext& ctx, DrcReport& report) const override {
    if (ctx.checkpoint == nullptr) return;
    const Checkpoint& cp = *ctx.checkpoint;
    if (cp.phys.cell_loc.size() != cp.netlist.cell_count() ||
        cp.phys.routes.size() != cp.netlist.net_count()) {
      report.add({id(), severity(),
                  "checkpoint '" + cp.netlist.name() +
                      "' physical state is misaligned with its netlist",
                  kInvalidCell, kInvalidNet});
    }
    if (cp.pblock.width() <= 0 || cp.pblock.height() <= 0) {
      report.add({id(), severity(),
                  "checkpoint '" + cp.netlist.name() + "' has a degenerate pblock " +
                      cp.pblock.to_string(),
                  kInvalidCell, kInvalidNet});
    }
    if (!std::isfinite(cp.meta.fmax_mhz) || cp.meta.fmax_mhz < 0.0 ||
        !std::isfinite(cp.meta.critical_path_ns) || cp.meta.critical_path_ns < 0.0) {
      report.add({id(), severity(),
                  "checkpoint '" + cp.netlist.name() + "' records non-finite or negative QoR",
                  kInvalidCell, kInvalidNet});
    } else if (cp.meta.fmax_mhz > 0.0 && cp.meta.critical_path_ns > 0.0) {
      const double implied = 1000.0 / cp.meta.critical_path_ns;
      const double err = std::abs(implied - cp.meta.fmax_mhz) / cp.meta.fmax_mhz;
      if (err > 0.05) {
        report.add({id(), DrcSeverity::kWarning,
                    "checkpoint '" + cp.netlist.name() + "' Fmax " +
                        std::to_string(cp.meta.fmax_mhz) + " MHz disagrees with its " +
                        std::to_string(cp.meta.critical_path_ns) + " ns critical path",
                    kInvalidCell, kInvalidNet});
      }
    }
    if (ctx.device != nullptr) {
      if (!cp.meta.device.empty() && cp.meta.device != ctx.device->name()) {
        report.add({id(), severity(),
                    "checkpoint '" + cp.netlist.name() + "' was implemented for device '" +
                        cp.meta.device + "' but is being used on '" + ctx.device->name() + "'",
                    kInvalidCell, kInvalidNet});
      }
      if (!ctx.device->in_bounds(cp.pblock.x0, cp.pblock.y0) ||
          !ctx.device->in_bounds(cp.pblock.x1, cp.pblock.y1)) {
        report.add({id(), severity(),
                    "checkpoint '" + cp.netlist.name() + "' pblock " + cp.pblock.to_string() +
                        " exceeds device '" + ctx.device->name() + "' bounds",
                    kInvalidCell, kInvalidNet});
      }
    }
  }
};

}  // namespace

void register_checkpoint_rules(std::vector<const DrcRule*>& rules) {
  static const CheckpointPinsRule pins;
  static const CheckpointMetaRule meta;
  rules.push_back(&pins);
  rules.push_back(&meta);
}

}  // namespace drc_detail
}  // namespace fpgasim
