// Routing legality rules: channel-capacity overuse, locked-route conflicts
// between pre-implemented instances, pblock containment of locked routes,
// and route-tree coverage of every net terminal.
#include <algorithm>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "drc/drc.h"

namespace fpgasim {
namespace drc_detail {
namespace {

std::string edge_str(const std::pair<TileCoord, TileCoord>& e) {
  return "(" + std::to_string(e.first.x) + "," + std::to_string(e.first.y) + ")-(" +
         std::to_string(e.second.x) + "," + std::to_string(e.second.y) + ")";
}

/// Canonical 64-bit key of an undirected channel edge.
std::uint64_t edge_key(TileCoord a, TileCoord b) {
  if (b.x < a.x || (b.x == a.x && b.y < a.y)) std::swap(a, b);
  return (static_cast<std::uint64_t>(static_cast<std::uint16_t>(a.x)) << 48) |
         (static_cast<std::uint64_t>(static_cast<std::uint16_t>(a.y)) << 32) |
         (static_cast<std::uint64_t>(static_cast<std::uint16_t>(b.x)) << 16) |
         static_cast<std::uint64_t>(static_cast<std::uint16_t>(b.y));
}

std::string net_ref(const Netlist& nl, NetId n) {
  std::string s = "net #" + std::to_string(n);
  if (!nl.net(n).name.empty()) s += " ('" + nl.net(n).name + "')";
  return s;
}

/// Instance index owning `net`, or -1.
int instance_of_net(const std::vector<DrcInstance>& instances, NetId net) {
  for (std::size_t i = 0; i < instances.size(); ++i) {
    if (net >= instances[i].net_begin && net < instances[i].net_end) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

class RouteOveruseRule final : public DrcRule {
 public:
  const char* id() const override { return "route-overuse"; }
  const char* what() const override {
    return "per-edge channel usage stays within the wire capacity";
  }
  unsigned stages() const override { return kDrcRouting; }
  DrcSeverity severity() const override { return DrcSeverity::kWarning; }

  void check(const DrcContext& ctx, DrcReport& report) const override {
    if (ctx.phys == nullptr) return;
    std::unordered_map<std::uint64_t, int> usage;
    for (const RouteInfo& route : ctx.phys->routes) {
      if (!route.routed) continue;
      for (const auto& [a, b] : route.edges) usage[edge_key(a, b)] += 1;
    }
    for (const auto& [key, count] : usage) {
      if (count > ctx.channel_capacity) {
        const int ax = static_cast<std::int16_t>(key >> 48);
        const int ay = static_cast<std::int16_t>((key >> 32) & 0xFFFF);
        const int bx = static_cast<std::int16_t>((key >> 16) & 0xFFFF);
        const int by = static_cast<std::int16_t>(key & 0xFFFF);
        report.add({id(), severity(),
                    "channel edge " + edge_str({TileCoord{ax, ay}, TileCoord{bx, by}}) +
                        " carries " + std::to_string(count) + " nets (capacity " +
                        std::to_string(ctx.channel_capacity) + ")",
                    kInvalidCell, kInvalidNet});
      }
    }
  }
};

class RouteLockedConflictRule final : public DrcRule {
 public:
  const char* id() const override { return "route-locked-conflict"; }
  const char* what() const override {
    return "locked routes of distinct pre-implemented instances do not oversubscribe an edge";
  }
  unsigned stages() const override { return kDrcRouting; }
  DrcSeverity severity() const override { return DrcSeverity::kError; }

  void check(const DrcContext& ctx, DrcReport& report) const override {
    if (ctx.phys == nullptr || ctx.instances.size() < 2) return;
    const Netlist& nl = *ctx.netlist;
    struct EdgeUse {
      int count = 0;
      int first_instance = -1;
      bool multi_instance = false;
    };
    std::unordered_map<std::uint64_t, EdgeUse> usage;
    const std::size_t n_routes = std::min(ctx.phys->routes.size(),
                                          static_cast<std::size_t>(nl.net_count()));
    for (NetId n = 0; n < n_routes; ++n) {
      if (!nl.net(n).routing_locked) continue;
      const RouteInfo& route = ctx.phys->routes[n];
      if (!route.routed) continue;
      const int owner = instance_of_net(ctx.instances, n);
      if (owner < 0) continue;
      for (const auto& [a, b] : route.edges) {
        EdgeUse& use = usage[edge_key(a, b)];
        use.count += 1;
        if (use.first_instance < 0) {
          use.first_instance = owner;
        } else if (use.first_instance != owner) {
          use.multi_instance = true;
        }
      }
    }
    for (const auto& [key, use] : usage) {
      if (use.multi_instance && use.count > ctx.channel_capacity) {
        const int ax = static_cast<std::int16_t>(key >> 48);
        const int ay = static_cast<std::int16_t>((key >> 32) & 0xFFFF);
        const int bx = static_cast<std::int16_t>((key >> 16) & 0xFFFF);
        const int by = static_cast<std::int16_t>(key & 0xFFFF);
        report.add({id(), severity(),
                    "locked routes from multiple instances oversubscribe edge " +
                        edge_str({TileCoord{ax, ay}, TileCoord{bx, by}}) + " (" +
                        std::to_string(use.count) + " > capacity " +
                        std::to_string(ctx.channel_capacity) + ")",
                    kInvalidCell, kInvalidNet});
      }
    }
  }
};

class RouteEscapeRule final : public DrcRule {
 public:
  const char* id() const override { return "route-escape"; }
  const char* what() const override {
    return "locked instance-internal routes stay inside the instance pblock";
  }
  unsigned stages() const override { return kDrcRouting; }
  DrcSeverity severity() const override { return DrcSeverity::kError; }

  void check(const DrcContext& ctx, DrcReport& report) const override {
    if (ctx.phys == nullptr || ctx.instances.empty()) return;
    const Netlist& nl = *ctx.netlist;
    for (const DrcInstance& inst : ctx.instances) {
      const NetId end = std::min(inst.net_end, static_cast<NetId>(ctx.phys->routes.size()));
      for (NetId n = inst.net_begin; n < end; ++n) {
        const Net& net = nl.net(n);
        if (!net.routing_locked) continue;
        const RouteInfo& route = ctx.phys->routes[n];
        if (!route.routed || route.edges.empty()) continue;
        // Only nets whose every terminal lives inside this instance must be
        // confined: stitched stream nets legitimately leave the pblock to
        // reach the neighbouring component.
        bool internal = net.driver == kInvalidCell ||
                        (net.driver >= inst.cell_begin && net.driver < inst.cell_end);
        for (const auto& [cell, pin] : net.sinks) {
          internal = internal && cell >= inst.cell_begin && cell < inst.cell_end;
        }
        if (!internal || (net.driver == kInvalidCell && net.sinks.empty())) continue;
        for (const auto& edge : route.edges) {
          if (!inst.footprint.contains(edge.first.x, edge.first.y) ||
              !inst.footprint.contains(edge.second.x, edge.second.y)) {
            report.add({id(), severity(),
                        net_ref(nl, n) + " of instance '" + inst.name +
                            "' has locked route edge " + edge_str(edge) +
                            " outside its pblock " + inst.footprint.to_string(),
                        kInvalidCell, n});
            break;  // one finding per net is enough
          }
        }
      }
    }
  }
};

class RouteEndpointsRule final : public DrcRule {
 public:
  const char* id() const override { return "route-endpoints"; }
  const char* what() const override {
    return "route trees are well-formed and reach every placed net terminal";
  }
  unsigned stages() const override { return kDrcRouting; }
  DrcSeverity severity() const override { return DrcSeverity::kError; }

  void check(const DrcContext& ctx, DrcReport& report) const override {
    if (ctx.phys == nullptr) return;
    const Netlist& nl = *ctx.netlist;
    const PhysState& phys = *ctx.phys;
    if (phys.cell_loc.size() != nl.cell_count() || phys.routes.size() != nl.net_count()) {
      return;  // reported by place-bounds
    }
    auto tile_key = [](TileCoord t) {
      return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(t.x)) << 32) |
             static_cast<std::uint32_t>(t.y);
    };
    for (NetId n = 0; n < nl.net_count(); ++n) {
      const Net& net = nl.net(n);
      const RouteInfo& route = phys.routes[n];

      // Placed terminals of the net.
      std::vector<TileCoord> terminals;
      if (net.driver != kInvalidCell && phys.is_placed(net.driver)) {
        terminals.push_back(phys.cell_loc[net.driver]);
      }
      for (const auto& [cell, pin] : net.sinks) {
        if (cell < nl.cell_count() && phys.is_placed(cell)) {
          terminals.push_back(phys.cell_loc[cell]);
        }
      }

      if (!route.routed) {
        if (!net.sinks.empty() && terminals.size() == net.sinks.size() +
                (net.driver != kInvalidCell ? 1u : 0u) && net.driver != kInvalidCell) {
          report.add({id(), severity(),
                      net_ref(nl, n) + " has placed terminals but was left unrouted",
                      kInvalidCell, n});
        }
        continue;
      }

      if (route.sink_delays_ns.size() != net.sinks.size()) {
        report.add({id(), severity(),
                    net_ref(nl, n) + " records " + std::to_string(route.sink_delays_ns.size()) +
                        " sink delays for " + std::to_string(net.sinks.size()) + " sinks",
                    kInvalidCell, n});
      }

      bool malformed = false;
      std::unordered_set<std::uint64_t> nodes;
      for (const auto& edge : route.edges) {
        const int dx = std::abs(edge.first.x - edge.second.x);
        const int dy = std::abs(edge.first.y - edge.second.y);
        const bool adjacent = dx + dy == 1;
        const bool in_bounds = ctx.device == nullptr ||
                               (ctx.device->in_bounds(edge.first.x, edge.first.y) &&
                                ctx.device->in_bounds(edge.second.x, edge.second.y));
        if (!adjacent || !in_bounds) {
          report.add({id(), severity(),
                      net_ref(nl, n) + " has a malformed route edge " + edge_str(edge),
                      kInvalidCell, n});
          malformed = true;
          break;
        }
        nodes.insert(tile_key(edge.first));
        nodes.insert(tile_key(edge.second));
      }
      if (malformed) continue;

      if (route.edges.empty()) {
        // A zero-wire route is only legal when all terminals share a tile.
        for (std::size_t t = 1; t < terminals.size(); ++t) {
          if (!(terminals[t] == terminals[0])) {
            report.add({id(), severity(),
                        net_ref(nl, n) + " is marked routed with no edges but its terminals " +
                            "span multiple tiles",
                        kInvalidCell, n});
            break;
          }
        }
        continue;
      }
      for (const TileCoord& t : terminals) {
        if (nodes.find(tile_key(t)) == nodes.end()) {
          report.add({id(), severity(),
                      net_ref(nl, n) + " route tree does not reach its terminal at (" +
                          std::to_string(t.x) + "," + std::to_string(t.y) + ")",
                      kInvalidCell, n});
          break;  // one finding per net is enough
        }
      }
    }
  }
};

}  // namespace

void register_routing_rules(std::vector<const DrcRule*>& rules) {
  static const RouteOveruseRule overuse;
  static const RouteLockedConflictRule conflict;
  static const RouteEscapeRule escape;
  static const RouteEndpointsRule endpoints;
  rules.push_back(&overuse);
  rules.push_back(&conflict);
  rules.push_back(&escape);
  rules.push_back(&endpoints);
}

}  // namespace drc_detail
}  // namespace fpgasim
