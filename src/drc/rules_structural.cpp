// Netlist structural rules: driver uniqueness, hookup consistency, bus
// widths, combinational loops, dead nets.
#include <vector>

#include "drc/drc.h"

namespace fpgasim {
namespace drc_detail {
namespace {

std::string net_ref(const Netlist& nl, NetId n) {
  std::string s = "net #" + std::to_string(n);
  if (!nl.net(n).name.empty()) s += " ('" + nl.net(n).name + "')";
  return s;
}

std::string cell_ref(const Netlist& nl, CellId c) {
  std::string s = std::string(to_string(nl.cell(c).type)) + " cell #" + std::to_string(c);
  if (!nl.cell(c).name.empty()) s += " ('" + nl.cell(c).name + "')";
  return s;
}

/// Marks nets bound to module ports (input ports may legally be driverless).
std::vector<bool> input_port_nets(const Netlist& nl) {
  std::vector<bool> flags(nl.net_count(), false);
  for (const Port& port : nl.ports()) {
    if (port.dir == PortDir::kInput && port.net < nl.net_count()) flags[port.net] = true;
  }
  return flags;
}

class NetDriverRule final : public DrcRule {
 public:
  const char* id() const override { return "net-driver"; }
  const char* what() const override { return "every net has exactly one consistent driver"; }
  unsigned stages() const override { return kDrcStructural; }
  DrcSeverity severity() const override { return DrcSeverity::kError; }

  void check(const DrcContext& ctx, DrcReport& report) const override {
    const Netlist& nl = *ctx.netlist;
    // How many cell output pins claim each net.
    std::vector<int> driver_refs(nl.net_count(), 0);
    for (CellId c = 0; c < nl.cell_count(); ++c) {
      for (NetId out : nl.cell(c).outputs) {
        if (out != kInvalidNet && out < nl.net_count()) ++driver_refs[out];
      }
    }
    const std::vector<bool> is_input = input_port_nets(nl);
    for (NetId n = 0; n < nl.net_count(); ++n) {
      const Net& net = nl.net(n);
      if (driver_refs[n] > 1) {
        report.add({id(), severity(),
                    net_ref(nl, n) + " is driven by " + std::to_string(driver_refs[n]) +
                        " cell output pins",
                    kInvalidCell, n});
        continue;
      }
      if (net.driver == kInvalidCell) {
        if (driver_refs[n] == 1) {
          report.add({id(), severity(),
                      net_ref(nl, n) + " is claimed by a cell output pin but records no driver",
                      kInvalidCell, n});
        }
        continue;
      }
      if (net.driver >= nl.cell_count()) {
        report.add({id(), severity(), net_ref(nl, n) + " has an out-of-range driver cell",
                    kInvalidCell, n});
        continue;
      }
      const Cell& drv = nl.cell(net.driver);
      if (net.driver_pin >= drv.outputs.size() || drv.outputs[net.driver_pin] != n) {
        report.add({id(), severity(),
                    net_ref(nl, n) + " records " + cell_ref(nl, net.driver) + " pin " +
                        std::to_string(net.driver_pin) + " as driver, but that pin does not drive it",
                    net.driver, n});
      }
      if (is_input[n]) {
        report.add({id(), severity(),
                    net_ref(nl, n) + " is driven by " + cell_ref(nl, net.driver) +
                        " and by an input port",
                    net.driver, n});
      }
    }
  }
};

class NetDanglingRule final : public DrcRule {
 public:
  const char* id() const override { return "net-dangling"; }
  const char* what() const override {
    return "no undriven inputs, dangling sink references or missing required pins";
  }
  unsigned stages() const override { return kDrcStructural; }
  DrcSeverity severity() const override { return DrcSeverity::kError; }

  void check(const DrcContext& ctx, DrcReport& report) const override {
    const Netlist& nl = *ctx.netlist;
    const std::vector<bool> is_input = input_port_nets(nl);
    for (NetId n = 0; n < nl.net_count(); ++n) {
      const Net& net = nl.net(n);
      if (net.driver == kInvalidCell && !net.sinks.empty() && !is_input[n]) {
        report.add({id(), severity(),
                    net_ref(nl, n) + " has " + std::to_string(net.sinks.size()) +
                        " sinks but no driver and is not an input port",
                    kInvalidCell, n});
      }
      for (const auto& [cell, pin] : net.sinks) {
        if (cell >= nl.cell_count()) {
          report.add({id(), severity(), net_ref(nl, n) + " has an out-of-range sink cell",
                      kInvalidCell, n});
        } else if (pin >= nl.cell(cell).inputs.size() || nl.cell(cell).inputs[pin] != n) {
          report.add({id(), severity(),
                      net_ref(nl, n) + " lists " + cell_ref(nl, cell) + " pin " +
                          std::to_string(pin) + " as sink, but that pin is not connected to it",
                      cell, n});
        }
      }
    }
    for (CellId c = 0; c < nl.cell_count(); ++c) {
      const Cell& cell = nl.cell(c);
      for (NetId in : cell.inputs) {
        if (in != kInvalidNet && in >= nl.net_count()) {
          report.add({id(), severity(), cell_ref(nl, c) + " input references an out-of-range net",
                      c, kInvalidNet});
        }
      }
      for (std::uint16_t pin : required_input_pins(cell)) {
        if (pin >= cell.inputs.size() || cell.inputs[pin] == kInvalidNet) {
          report.add({id(), severity(),
                      cell_ref(nl, c) + " required input pin " + std::to_string(pin) +
                          " is unconnected",
                      c, kInvalidNet});
        }
      }
    }
  }
};

class NetWidthRule final : public DrcRule {
 public:
  const char* id() const override { return "net-width"; }
  const char* what() const override { return "bus widths agree across net connections"; }
  unsigned stages() const override { return kDrcStructural; }
  DrcSeverity severity() const override { return DrcSeverity::kError; }

  void check(const DrcContext& ctx, DrcReport& report) const override {
    const Netlist& nl = *ctx.netlist;
    for (const Port& port : nl.ports()) {
      if (port.net >= nl.net_count()) {
        report.add({id(), severity(), "port '" + port.name + "' is bound to an invalid net",
                    kInvalidCell, kInvalidNet});
        continue;
      }
      if (nl.net(port.net).width != port.width) {
        report.add({id(), severity(),
                    "port '" + port.name + "' is " + std::to_string(port.width) +
                        " bits but its net is " + std::to_string(nl.net(port.net).width),
                    kInvalidCell, port.net});
      }
    }
    for (NetId n = 0; n < nl.net_count(); ++n) {
      const Net& net = nl.net(n);
      if (net.driver == kInvalidCell || net.driver >= nl.cell_count()) continue;
      const Cell& drv = nl.cell(net.driver);
      const std::uint16_t expect = expected_output_width(drv);
      if (net.width != expect) {
        report.add({id(), severity(),
                    net_ref(nl, n) + " is " + std::to_string(net.width) + " bits but its driver " +
                        cell_ref(nl, net.driver) + " produces " + std::to_string(expect),
                    net.driver, n});
      }
    }
    // Data operand pins of registers, shift registers, adders, max and
    // ReLU cells must not be driven by a *wider* net (silent truncation).
    // Narrower nets are fine — the fabric zero-extends implicitly, which
    // the synthesized address arithmetic relies on.
    for (CellId c = 0; c < nl.cell_count(); ++c) {
      const Cell& cell = nl.cell(c);
      std::vector<std::uint16_t> data_pins;
      switch (cell.type) {
        case CellType::kFf:
        case CellType::kSrl:
        case CellType::kRelu:
          data_pins = {0};
          break;
        case CellType::kAdd:
        case CellType::kMax:
          data_pins = {0, 1};
          break;
        default:
          continue;
      }
      for (std::uint16_t pin : data_pins) {
        if (pin >= cell.inputs.size()) continue;
        const NetId in = cell.inputs[pin];
        if (in == kInvalidNet || in >= nl.net_count()) continue;
        if (nl.net(in).width > cell.width) {
          report.add({id(), severity(),
                      cell_ref(nl, c) + " data pin " + std::to_string(pin) + " is " +
                          std::to_string(cell.width) + " bits but " + net_ref(nl, in) +
                          " is " + std::to_string(nl.net(in).width) + " (truncation)",
                      c, in});
        }
      }
    }
  }
};

class CombLoopRule final : public DrcRule {
 public:
  const char* id() const override { return "comb-loop"; }
  const char* what() const override {
    return "no combinational cycles through LUT/ADD/MAX/RELU logic";
  }
  unsigned stages() const override { return kDrcStructural; }
  DrcSeverity severity() const override { return DrcSeverity::kError; }

  void check(const DrcContext& ctx, DrcReport& report) const override {
    const Netlist& nl = *ctx.netlist;
    // Iterative DFS over the cell graph restricted to combinational cells.
    enum : std::uint8_t { kWhite, kGrey, kBlack };
    std::vector<std::uint8_t> color(nl.cell_count(), kWhite);
    std::vector<std::pair<CellId, std::size_t>> stack;  // (cell, next successor index)
    // successor lists are materialized lazily per cell via nets.
    auto successors = [&](CellId c) {
      std::vector<CellId> succ;
      for (NetId out : nl.cell(c).outputs) {
        if (out == kInvalidNet || out >= nl.net_count()) continue;
        for (const auto& [sink, pin] : nl.net(out).sinks) {
          if (sink < nl.cell_count() && is_combinational(nl.cell(sink))) {
            succ.push_back(sink);
          }
        }
      }
      return succ;
    };
    std::vector<std::vector<CellId>> succ_cache(nl.cell_count());
    for (CellId root = 0; root < nl.cell_count(); ++root) {
      if (color[root] != kWhite || !is_combinational(nl.cell(root))) continue;
      color[root] = kGrey;
      succ_cache[root] = successors(root);
      stack.emplace_back(root, 0);
      while (!stack.empty()) {
        auto& [c, next] = stack.back();
        if (next < succ_cache[c].size()) {
          const CellId s = succ_cache[c][next++];
          if (color[s] == kGrey) {
            report.add({id(), severity(),
                        "combinational loop through " + cell_ref(nl, s) + " (reached from " +
                            cell_ref(nl, c) + ")",
                        s, kInvalidNet});
            // Break the cycle for reporting purposes and keep scanning.
            color[s] = kBlack;
          } else if (color[s] == kWhite) {
            color[s] = kGrey;
            succ_cache[s] = successors(s);
            stack.emplace_back(s, 0);
          }
        } else {
          color[c] = kBlack;
          succ_cache[c].clear();
          succ_cache[c].shrink_to_fit();
          stack.pop_back();
        }
      }
    }
  }
};

class DeadNetRule final : public DrcRule {
 public:
  const char* id() const override { return "net-dead"; }
  const char* what() const override {
    return "no orphaned nets (typically left behind by alias_net)";
  }
  unsigned stages() const override { return kDrcStructural; }
  DrcSeverity severity() const override { return DrcSeverity::kWarning; }

  void check(const DrcContext& ctx, DrcReport& report) const override {
    const Netlist& nl = *ctx.netlist;
    std::vector<bool> port_ref(nl.net_count(), false);
    for (const Port& port : nl.ports()) {
      if (port.net < nl.net_count()) port_ref[port.net] = true;
    }
    for (NetId n = 0; n < nl.net_count(); ++n) {
      const Net& net = nl.net(n);
      if (net.driver == kInvalidCell && net.sinks.empty() && !port_ref[n]) {
        report.add({id(), severity(), net_ref(nl, n) + " has no driver, sinks or port binding",
                    kInvalidCell, n});
      }
    }
  }
};

}  // namespace

void register_structural_rules(std::vector<const DrcRule*>& rules) {
  static const NetDriverRule net_driver;
  static const NetDanglingRule net_dangling;
  static const NetWidthRule net_width;
  static const CombLoopRule comb_loop;
  static const DeadNetRule net_dead;
  rules.push_back(&net_driver);
  rules.push_back(&net_dangling);
  rules.push_back(&net_width);
  rules.push_back(&comb_loop);
  rules.push_back(&net_dead);
}

}  // namespace drc_detail
}  // namespace fpgasim
