// Design rule checker: static analysis over a Netlist + PhysState +
// pblock context. Plays the role of Vivado's DRC as the correctness
// backstop of the pre-implemented flow — relocated, stitched checkpoints
// are only trusted after an independent pass verifies that the composed
// design is well-formed (structure), legally placed (column/tile
// capacities, pblock containment) and legally routed (channel capacities,
// locked-route conflicts, terminal coverage).
//
// Rules are registered in a global registry (see drc_rules()); each rule
// declares the flow stages it applies to and a default severity. A rule
// can be waived by id through DrcOptions; waived findings are still
// recorded but never count as errors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fabric/device.h"
#include "fabric/pblock.h"
#include "netlist/checkpoint.h"
#include "netlist/netlist.h"
#include "netlist/phys.h"

namespace fpgasim {

enum class DrcSeverity : std::uint8_t { kInfo = 0, kWarning = 1, kError = 2 };

const char* to_string(DrcSeverity severity);

/// Which flow stage(s) a rule is meaningful at (bitmask).
enum DrcStage : unsigned {
  kDrcStructural = 1u << 0,  // netlist only
  kDrcPlacement = 1u << 1,   // needs PhysState (+ Device)
  kDrcRouting = 1u << 2,     // needs PhysState (+ Device)
  kDrcCheckpoint = 1u << 3,  // needs Checkpoint
  kDrcAllStages = 0xFu,
};

/// One pre-implemented component instance inside a composed design:
/// the contiguous cell/net ranges merge() assigned to it plus its
/// (relocated) pblock footprint. Mirrors ComposedDesign::Instance without
/// depending on the flow layer.
struct DrcInstance {
  std::string name;
  Pblock footprint;
  CellId cell_begin = 0;
  CellId cell_end = 0;
  NetId net_begin = 0;
  NetId net_end = 0;
};

/// Everything a rule may look at. Only `netlist` is mandatory; rules skip
/// silently when the context they need is absent (e.g. placement rules
/// without a device).
struct DrcContext {
  const Netlist* netlist = nullptr;
  const PhysState* phys = nullptr;
  const Device* device = nullptr;
  const Checkpoint* checkpoint = nullptr;
  std::vector<DrcInstance> instances;
  int channel_capacity = 14;  // routing overuse threshold (RouteOptions)
  int tile_spill_radius = 3;  // tiles a wide cell may legally spread over
};

struct DrcViolation {
  std::string rule;  // rule id
  DrcSeverity severity = DrcSeverity::kError;
  std::string message;
  CellId cell = kInvalidCell;  // offending cell when applicable
  NetId net = kInvalidNet;     // offending net when applicable
  bool waived = false;

  std::string to_string() const;
};

struct DrcOptions {
  /// Rule ids whose findings are recorded but excluded from error/warning
  /// counts (per-rule waivers).
  std::vector<std::string> waived_rules;
  /// Cap on recorded violations per rule; further findings are counted in
  /// DrcReport::suppressed but not stored.
  std::size_t max_violations_per_rule = 64;
};

class DrcReport {
 public:
  void add(DrcViolation violation);

  bool clean() const { return errors_ == 0; }
  std::size_t errors() const { return errors_; }
  std::size_t warnings() const { return warnings_; }
  std::size_t infos() const { return infos_; }
  std::size_t waived() const { return waived_; }
  std::size_t suppressed() const { return suppressed_; }
  std::size_t rules_run() const { return rules_run_; }
  const std::vector<DrcViolation>& violations() const { return violations_; }

  /// One-line "DRC: 2 errors, 1 warning (16 rules)" digest.
  std::string summary() const;
  /// Full multi-line listing (summary + every recorded violation).
  std::string to_string() const;

  /// Violations recorded against `rule` (waived included).
  std::vector<const DrcViolation*> by_rule(const std::string& rule) const;

 private:
  friend DrcReport run_drc(const DrcContext&, unsigned, const DrcOptions&);
  std::vector<DrcViolation> violations_;
  std::size_t errors_ = 0;
  std::size_t warnings_ = 0;
  std::size_t infos_ = 0;
  std::size_t waived_ = 0;
  std::size_t suppressed_ = 0;
  std::size_t rules_run_ = 0;
};

/// A single design rule. Stateless; check() appends findings to the report.
class DrcRule {
 public:
  virtual ~DrcRule() = default;
  virtual const char* id() const = 0;
  virtual const char* what() const = 0;  // one-line description
  virtual unsigned stages() const = 0;   // DrcStage bitmask
  virtual DrcSeverity severity() const = 0;
  virtual void check(const DrcContext& ctx, DrcReport& report) const = 0;
};

/// The global rule registry (stable order, built once).
const std::vector<const DrcRule*>& drc_rules();

/// Runs every registered rule whose stages() intersects `stages`.
DrcReport run_drc(const DrcContext& ctx, unsigned stages = kDrcAllStages,
                  const DrcOptions& opt = {});

/// Structural subset over a bare netlist (compose gate, checkpoint load).
DrcReport run_structural_drc(const Netlist& netlist, const DrcOptions& opt = {});

/// Full check of one checkpoint: structural + placement/routing bounded by
/// its pblock + checkpoint-integrity rules. `device` may be null (rules
/// needing it are skipped, e.g. after a bare load_checkpoint).
DrcReport run_checkpoint_drc(const Checkpoint& checkpoint, const Device* device = nullptr,
                             const DrcOptions& opt = {});

/// Throws std::runtime_error with the report listing when !report.clean().
void enforce_drc(const DrcReport& report, const std::string& where);

// -- shared helpers used by the rule implementations ------------------------
namespace drc_detail {

// Cell-semantics helpers (expected_output_width, is_combinational,
// required_input_pins) moved to netlist/netlist.h so lint and DRC share
// one definition; unqualified uses below resolve through fpgasim::.

/// Instance index owning `cell`, or -1 (binary search over the ranges).
int instance_of_cell(const std::vector<DrcInstance>& instances, CellId cell);

void register_structural_rules(std::vector<const DrcRule*>& rules);
void register_placement_rules(std::vector<const DrcRule*>& rules);
void register_routing_rules(std::vector<const DrcRule*>& rules);
void register_checkpoint_rules(std::vector<const DrcRule*>& rules);

}  // namespace drc_detail

}  // namespace fpgasim
