#include "drc/drc.h"

#include <algorithm>
#include <stdexcept>

namespace fpgasim {

const char* to_string(DrcSeverity severity) {
  switch (severity) {
    case DrcSeverity::kInfo: return "INFO";
    case DrcSeverity::kWarning: return "WARNING";
    case DrcSeverity::kError: return "ERROR";
  }
  return "?";
}

std::string DrcViolation::to_string() const {
  std::string s = std::string(fpgasim::to_string(severity)) + " [" + rule + "] " + message;
  if (waived) s += " (waived)";
  return s;
}

void DrcReport::add(DrcViolation violation) {
  if (violation.waived) {
    ++waived_;
  } else {
    switch (violation.severity) {
      case DrcSeverity::kInfo: ++infos_; break;
      case DrcSeverity::kWarning: ++warnings_; break;
      case DrcSeverity::kError: ++errors_; break;
    }
  }
  violations_.push_back(std::move(violation));
}

std::string DrcReport::summary() const {
  std::string s = "DRC: " + std::to_string(errors_) + " error" + (errors_ == 1 ? "" : "s") +
                  ", " + std::to_string(warnings_) + " warning" + (warnings_ == 1 ? "" : "s");
  if (infos_ > 0) s += ", " + std::to_string(infos_) + " info";
  if (waived_ > 0) s += ", " + std::to_string(waived_) + " waived";
  if (suppressed_ > 0) s += ", " + std::to_string(suppressed_) + " suppressed";
  s += " (" + std::to_string(rules_run_) + " rules)";
  return s;
}

std::string DrcReport::to_string() const {
  std::string s = summary();
  for (const DrcViolation& v : violations_) {
    s += "\n  " + v.to_string();
  }
  return s;
}

std::vector<const DrcViolation*> DrcReport::by_rule(const std::string& rule) const {
  std::vector<const DrcViolation*> out;
  for (const DrcViolation& v : violations_) {
    if (v.rule == rule) out.push_back(&v);
  }
  return out;
}

const std::vector<const DrcRule*>& drc_rules() {
  static const std::vector<const DrcRule*> rules = [] {
    std::vector<const DrcRule*> r;
    drc_detail::register_structural_rules(r);
    drc_detail::register_placement_rules(r);
    drc_detail::register_routing_rules(r);
    drc_detail::register_checkpoint_rules(r);
    return r;
  }();
  return rules;
}

DrcReport run_drc(const DrcContext& ctx, unsigned stages, const DrcOptions& opt) {
  if (ctx.netlist == nullptr) {
    throw std::invalid_argument("run_drc: context has no netlist");
  }
  DrcReport report;
  for (const DrcRule* rule : drc_rules()) {
    if ((rule->stages() & stages) == 0) continue;
    const bool waived = std::find(opt.waived_rules.begin(), opt.waived_rules.end(),
                                  rule->id()) != opt.waived_rules.end();
    DrcReport local;
    rule->check(ctx, local);
    ++report.rules_run_;
    std::size_t kept = 0;
    for (DrcViolation& v : local.violations_) {
      if (kept == opt.max_violations_per_rule) {
        report.suppressed_ += local.violations_.size() - kept;
        break;
      }
      ++kept;
      v.waived = waived;
      report.add(std::move(v));
    }
  }
  return report;
}

DrcReport run_structural_drc(const Netlist& netlist, const DrcOptions& opt) {
  DrcContext ctx;
  ctx.netlist = &netlist;
  return run_drc(ctx, kDrcStructural, opt);
}

DrcReport run_checkpoint_drc(const Checkpoint& checkpoint, const Device* device,
                             const DrcOptions& opt) {
  DrcContext ctx;
  ctx.netlist = &checkpoint.netlist;
  ctx.phys = &checkpoint.phys;
  ctx.device = device;
  ctx.checkpoint = &checkpoint;
  // The whole checkpoint is one instance confined to its pblock: the
  // placement/routing containment rules then express relocation legality.
  DrcInstance inst;
  inst.name = checkpoint.netlist.name();
  inst.footprint = checkpoint.pblock;
  inst.cell_begin = 0;
  inst.cell_end = static_cast<CellId>(checkpoint.netlist.cell_count());
  inst.net_begin = 0;
  inst.net_end = static_cast<NetId>(checkpoint.netlist.net_count());
  ctx.instances.push_back(std::move(inst));
  return run_drc(ctx, kDrcAllStages, opt);
}

void enforce_drc(const DrcReport& report, const std::string& where) {
  if (report.clean()) return;
  throw std::runtime_error("DRC failed (" + where + "): " + report.to_string());
}

namespace drc_detail {

int instance_of_cell(const std::vector<DrcInstance>& instances, CellId cell) {
  for (std::size_t i = 0; i < instances.size(); ++i) {
    if (cell >= instances[i].cell_begin && cell < instances[i].cell_end) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace drc_detail

}  // namespace fpgasim
