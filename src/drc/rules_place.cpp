// Placement legality rules: physical-state alignment, device bounds,
// pblock containment of relocated instances, instance overlap and
// resource over-subscription.
#include <algorithm>

#include "drc/drc.h"

namespace fpgasim {
namespace drc_detail {
namespace {

std::string loc_str(TileCoord loc) {
  return "(" + std::to_string(loc.x) + "," + std::to_string(loc.y) + ")";
}

class PlaceBoundsRule final : public DrcRule {
 public:
  const char* id() const override { return "place-bounds"; }
  const char* what() const override {
    return "physical state aligned with the netlist; placed cells in bounds; locked cells placed";
  }
  unsigned stages() const override { return kDrcPlacement; }
  DrcSeverity severity() const override { return DrcSeverity::kError; }

  void check(const DrcContext& ctx, DrcReport& report) const override {
    if (ctx.phys == nullptr) return;
    const Netlist& nl = *ctx.netlist;
    const PhysState& phys = *ctx.phys;
    if (phys.cell_loc.size() != nl.cell_count() || phys.routes.size() != nl.net_count()) {
      report.add({id(), severity(),
                  "physical state is misaligned with the netlist (" +
                      std::to_string(phys.cell_loc.size()) + " locations for " +
                      std::to_string(nl.cell_count()) + " cells, " +
                      std::to_string(phys.routes.size()) + " routes for " +
                      std::to_string(nl.net_count()) + " nets)",
                  kInvalidCell, kInvalidNet});
      return;  // index-based checks below would be unsafe
    }
    for (CellId c = 0; c < nl.cell_count(); ++c) {
      const TileCoord loc = phys.cell_loc[c];
      if (loc == kUnplaced) {
        if (nl.cell(c).placement_locked) {
          report.add({id(), severity(),
                      "cell #" + std::to_string(c) + " ('" + nl.cell(c).name +
                          "') is placement-locked but unplaced",
                      c, kInvalidNet});
        }
        continue;
      }
      if (ctx.device != nullptr && !ctx.device->in_bounds(loc.x, loc.y)) {
        report.add({id(), severity(),
                    "cell #" + std::to_string(c) + " ('" + nl.cell(c).name + "') is placed at " +
                        loc_str(loc) + ", outside the device",
                    c, kInvalidNet});
      }
    }
  }
};

class PlaceEscapeRule final : public DrcRule {
 public:
  const char* id() const override { return "place-escape"; }
  const char* what() const override {
    return "cells of a relocated instance stay inside its pblock footprint";
  }
  unsigned stages() const override { return kDrcPlacement; }
  DrcSeverity severity() const override { return DrcSeverity::kError; }

  void check(const DrcContext& ctx, DrcReport& report) const override {
    if (ctx.phys == nullptr || ctx.instances.empty()) return;
    const PhysState& phys = *ctx.phys;
    for (const DrcInstance& inst : ctx.instances) {
      for (CellId c = inst.cell_begin; c < inst.cell_end && c < phys.cell_loc.size(); ++c) {
        const TileCoord loc = phys.cell_loc[c];
        if (loc == kUnplaced) continue;
        if (!inst.footprint.contains(loc.x, loc.y)) {
          report.add({id(), severity(),
                      "cell #" + std::to_string(c) + " of instance '" + inst.name +
                          "' is placed at " + loc_str(loc) + ", outside its pblock " +
                          inst.footprint.to_string(),
                      c, kInvalidNet});
        }
      }
    }
  }
};

class PlaceOverlapRule final : public DrcRule {
 public:
  const char* id() const override { return "place-overlap"; }
  const char* what() const override { return "locked instance pblocks do not overlap"; }
  unsigned stages() const override { return kDrcPlacement; }
  DrcSeverity severity() const override { return DrcSeverity::kError; }

  void check(const DrcContext& ctx, DrcReport& report) const override {
    for (std::size_t i = 0; i < ctx.instances.size(); ++i) {
      for (std::size_t j = i + 1; j < ctx.instances.size(); ++j) {
        if (ctx.instances[i].footprint.overlaps(ctx.instances[j].footprint)) {
          report.add({id(), severity(),
                      "instances '" + ctx.instances[i].name + "' " +
                          ctx.instances[i].footprint.to_string() + " and '" +
                          ctx.instances[j].name + "' " + ctx.instances[j].footprint.to_string() +
                          " overlap",
                      kInvalidCell, kInvalidNet});
        }
      }
    }
  }
};

class PlaceOveruseRule final : public DrcRule {
 public:
  const char* id() const override { return "place-overuse"; }
  const char* what() const override {
    return "aggregate cell footprints fit their pblock / device resources";
  }
  unsigned stages() const override { return kDrcPlacement; }
  DrcSeverity severity() const override { return DrcSeverity::kError; }

  void check(const DrcContext& ctx, DrcReport& report) const override {
    if (ctx.device == nullptr) return;
    const Netlist& nl = *ctx.netlist;
    const ResourceVec total = nl.stats().resources;
    if (!total.fits_in(ctx.device->total())) {
      report.add({id(), severity(),
                  "design needs " + total.to_string() + " but device '" + ctx.device->name() +
                      "' provides " + ctx.device->total().to_string(),
                  kInvalidCell, kInvalidNet});
    }
    for (const DrcInstance& inst : ctx.instances) {
      ResourceVec demand;
      for (CellId c = inst.cell_begin; c < inst.cell_end && c < nl.cell_count(); ++c) {
        demand += Netlist::cell_footprint(nl.cell(c));
      }
      const ResourceVec cap = pblock_resources(*ctx.device, inst.footprint);
      if (!demand.fits_in(cap)) {
        report.add({id(), severity(),
                    "instance '" + inst.name + "' needs " + demand.to_string() +
                        " but its pblock " + inst.footprint.to_string() + " provides " +
                        cap.to_string(),
                    kInvalidCell, kInvalidNet});
      }
    }
  }
};

class PlaceTileCrowdingRule final : public DrcRule {
 public:
  const char* id() const override { return "place-tile-crowding"; }
  const char* what() const override {
    return "per-tile demand is satisfiable within the legal spill radius";
  }
  unsigned stages() const override { return kDrcPlacement; }
  DrcSeverity severity() const override { return DrcSeverity::kWarning; }

  void check(const DrcContext& ctx, DrcReport& report) const override {
    if (ctx.phys == nullptr || ctx.device == nullptr) return;
    const Netlist& nl = *ctx.netlist;
    const PhysState& phys = *ctx.phys;
    if (phys.cell_loc.size() != nl.cell_count()) return;  // reported by place-bounds
    const Device& device = *ctx.device;
    const int w = device.width(), h = device.height();
    // Replays the tile-assignment accounting: every cell takes capacity
    // from an expanding ring around its anchor tile (wide macro-cells
    // legally spread over adjacent tiles). A cell whose footprint cannot
    // be satisfied within tile_spill_radius indicates a crowded region.
    std::vector<ResourceVec> remaining(static_cast<std::size_t>(w) * h);
    for (int x = 0; x < w; ++x) {
      for (int y = 0; y < h; ++y) {
        remaining[static_cast<std::size_t>(y) * w + x] = device.tile_capacity(x, y);
      }
    }
    for (CellId c = 0; c < nl.cell_count(); ++c) {
      const TileCoord loc = phys.cell_loc[c];
      if (loc == kUnplaced || !device.in_bounds(loc.x, loc.y)) continue;
      ResourceVec left = Netlist::cell_footprint(nl.cell(c));
      if (left.is_zero()) continue;
      for (int radius = 0; radius <= ctx.tile_spill_radius && !left.is_zero(); ++radius) {
        const int x_lo = std::max(0, loc.x - radius), x_hi = std::min(w - 1, loc.x + radius);
        const int y_lo = std::max(0, loc.y - radius), y_hi = std::min(h - 1, loc.y + radius);
        for (int x = x_lo; x <= x_hi && !left.is_zero(); ++x) {
          for (int y = y_lo; y <= y_hi && !left.is_zero(); ++y) {
            if (radius > 0 && x != x_lo && x != x_hi && y != y_lo && y != y_hi) continue;
            ResourceVec& have = remaining[static_cast<std::size_t>(y) * w + x];
            const ResourceVec take{std::min(left.lut, have.lut), std::min(left.ff, have.ff),
                                   std::min(left.carry, have.carry), std::min(left.dsp, have.dsp),
                                   std::min(left.bram, have.bram)};
            if (take.is_zero()) continue;
            have -= take;
            left -= take;
          }
        }
      }
      if (!left.is_zero()) {
        report.add({id(), severity(),
                    "cell #" + std::to_string(c) + " ('" + nl.cell(c).name + "') at " +
                        loc_str(loc) + " cannot satisfy " + left.to_string() + " within " +
                        std::to_string(ctx.tile_spill_radius) + " tiles of its anchor",
                    c, kInvalidNet});
      }
    }
  }
};

}  // namespace

void register_placement_rules(std::vector<const DrcRule*>& rules) {
  static const PlaceBoundsRule bounds;
  static const PlaceEscapeRule escape;
  static const PlaceOverlapRule overlap;
  static const PlaceOveruseRule overuse;
  static const PlaceTileCrowdingRule crowding;
  rules.push_back(&bounds);
  rules.push_back(&escape);
  rules.push_back(&overlap);
  rules.push_back(&overuse);
  rules.push_back(&crowding);
}

}  // namespace drc_detail
}  // namespace fpgasim
