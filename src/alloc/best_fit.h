// Off-chip memory allocator: Best-Fit with Coalescing (paper Sec. V-B2).
//
// Memory is divided into blocks managed by a doubly-linked block list; each
// block records its base address, size and use state. Allocation picks the
// smallest free block that fits (best fit, splitting the remainder);
// freeing coalesces with free neighbours, providing defragmentation. Used
// by the VGG example to lay out coefficient data and layer I/O buffers in
// the simulated DDR.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace fpgasim {

class BestFitAllocator {
 public:
  explicit BestFitAllocator(std::uint64_t capacity_bytes, std::uint64_t alignment = 64);

  /// Allocates `size` bytes; returns the base address or nullopt when no
  /// free block fits.
  std::optional<std::uint64_t> allocate(std::uint64_t size);

  /// Frees a previously allocated base address; throws std::invalid_argument
  /// for unknown or double-freed addresses.
  void free(std::uint64_t base);

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t used_bytes() const { return used_; }
  std::uint64_t free_bytes() const { return capacity_ - used_; }
  std::size_t block_count() const;
  std::size_t free_block_count() const;
  /// Largest free block (0 if none): fragmentation indicator.
  std::uint64_t largest_free_block() const;

  /// Internal consistency check (sizes sum to capacity, links sane,
  /// no two adjacent free blocks). Empty result == healthy.
  std::vector<std::string> check() const;

 private:
  struct Block {
    std::uint64_t base = 0;
    std::uint64_t size = 0;
    bool in_use = false;
    std::int32_t prev = -1;
    std::int32_t next = -1;
    bool live = true;  // slot reuse marker
  };

  std::int32_t new_block();

  std::uint64_t capacity_;
  std::uint64_t alignment_;
  std::uint64_t used_ = 0;
  std::vector<Block> blocks_;
  std::vector<std::int32_t> free_slots_;
  std::int32_t head_ = -1;
};

}  // namespace fpgasim
