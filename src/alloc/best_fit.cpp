#include "alloc/best_fit.h"

#include <stdexcept>

namespace fpgasim {

BestFitAllocator::BestFitAllocator(std::uint64_t capacity_bytes, std::uint64_t alignment)
    : capacity_(capacity_bytes), alignment_(alignment == 0 ? 1 : alignment) {
  Block whole;
  whole.base = 0;
  whole.size = capacity_;
  blocks_.push_back(whole);
  head_ = 0;
}

std::int32_t BestFitAllocator::new_block() {
  if (!free_slots_.empty()) {
    const std::int32_t slot = free_slots_.back();
    free_slots_.pop_back();
    blocks_[static_cast<std::size_t>(slot)] = Block{};
    return slot;
  }
  blocks_.push_back(Block{});
  return static_cast<std::int32_t>(blocks_.size() - 1);
}

std::optional<std::uint64_t> BestFitAllocator::allocate(std::uint64_t size) {
  if (size == 0) size = 1;
  size = (size + alignment_ - 1) / alignment_ * alignment_;

  // Best fit: smallest free block that still fits.
  std::int32_t best = -1;
  for (std::int32_t i = head_; i != -1; i = blocks_[static_cast<std::size_t>(i)].next) {
    const Block& blk = blocks_[static_cast<std::size_t>(i)];
    if (blk.in_use || blk.size < size) continue;
    if (best == -1 || blk.size < blocks_[static_cast<std::size_t>(best)].size) best = i;
  }
  if (best == -1) return std::nullopt;

  Block& blk = blocks_[static_cast<std::size_t>(best)];
  if (blk.size > size) {
    // Split: tail remains free.
    const std::int32_t tail = new_block();
    Block& chosen = blocks_[static_cast<std::size_t>(best)];  // re-fetch (realloc)
    Block& rest = blocks_[static_cast<std::size_t>(tail)];
    rest.base = chosen.base + size;
    rest.size = chosen.size - size;
    rest.in_use = false;
    rest.prev = best;
    rest.next = chosen.next;
    if (chosen.next != -1) blocks_[static_cast<std::size_t>(chosen.next)].prev = tail;
    chosen.next = tail;
    chosen.size = size;
  }
  Block& chosen = blocks_[static_cast<std::size_t>(best)];
  chosen.in_use = true;
  used_ += chosen.size;
  return chosen.base;
}

void BestFitAllocator::free(std::uint64_t base) {
  std::int32_t idx = -1;
  for (std::int32_t i = head_; i != -1; i = blocks_[static_cast<std::size_t>(i)].next) {
    if (blocks_[static_cast<std::size_t>(i)].base == base) {
      idx = i;
      break;
    }
  }
  if (idx == -1 || !blocks_[static_cast<std::size_t>(idx)].in_use) {
    throw std::invalid_argument("BestFitAllocator::free: bad address " + std::to_string(base));
  }
  Block& blk = blocks_[static_cast<std::size_t>(idx)];
  blk.in_use = false;
  used_ -= blk.size;

  // Coalesce with the next block.
  if (blk.next != -1 && !blocks_[static_cast<std::size_t>(blk.next)].in_use) {
    const std::int32_t nxt = blk.next;
    Block& nb = blocks_[static_cast<std::size_t>(nxt)];
    blk.size += nb.size;
    blk.next = nb.next;
    if (nb.next != -1) blocks_[static_cast<std::size_t>(nb.next)].prev = idx;
    nb.live = false;
    free_slots_.push_back(nxt);
  }
  // Coalesce with the previous block.
  if (blk.prev != -1 && !blocks_[static_cast<std::size_t>(blk.prev)].in_use) {
    const std::int32_t prv = blk.prev;
    Block& pb = blocks_[static_cast<std::size_t>(prv)];
    pb.size += blk.size;
    pb.next = blk.next;
    if (blk.next != -1) blocks_[static_cast<std::size_t>(blk.next)].prev = prv;
    blk.live = false;
    free_slots_.push_back(idx);
  }
}

std::size_t BestFitAllocator::block_count() const {
  std::size_t n = 0;
  for (std::int32_t i = head_; i != -1; i = blocks_[static_cast<std::size_t>(i)].next) ++n;
  return n;
}

std::size_t BestFitAllocator::free_block_count() const {
  std::size_t n = 0;
  for (std::int32_t i = head_; i != -1; i = blocks_[static_cast<std::size_t>(i)].next) {
    if (!blocks_[static_cast<std::size_t>(i)].in_use) ++n;
  }
  return n;
}

std::uint64_t BestFitAllocator::largest_free_block() const {
  std::uint64_t best = 0;
  for (std::int32_t i = head_; i != -1; i = blocks_[static_cast<std::size_t>(i)].next) {
    const Block& blk = blocks_[static_cast<std::size_t>(i)];
    if (!blk.in_use && blk.size > best) best = blk.size;
  }
  return best;
}

std::vector<std::string> BestFitAllocator::check() const {
  std::vector<std::string> problems;
  std::uint64_t cursor = 0;
  std::int32_t prev = -1;
  bool prev_free = false;
  for (std::int32_t i = head_; i != -1; i = blocks_[static_cast<std::size_t>(i)].next) {
    const Block& blk = blocks_[static_cast<std::size_t>(i)];
    if (!blk.live) problems.push_back("dead block in list");
    if (blk.base != cursor) problems.push_back("gap/overlap at " + std::to_string(blk.base));
    if (blk.prev != prev) problems.push_back("bad prev link at " + std::to_string(blk.base));
    if (!blk.in_use && prev_free) {
      problems.push_back("uncoalesced free blocks at " + std::to_string(blk.base));
    }
    prev_free = !blk.in_use;
    cursor += blk.size;
    prev = i;
  }
  if (cursor != capacity_) problems.push_back("sizes do not sum to capacity");
  return problems;
}

}  // namespace fpgasim
