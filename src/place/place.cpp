#include "place/place.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/log.h"
#include "util/rng.h"

namespace fpgasim {
namespace {

/// Scalarizes an overflow vector for the annealer's penalty term. Hard
/// blocks weigh far more than fabric cells: a DSP has nowhere else to go.
double overflow_penalty(const ResourceVec& used, const ResourceVec& cap) {
  auto over = [](std::int64_t u, std::int64_t c) {
    return static_cast<double>(std::max<std::int64_t>(0, u - c));
  };
  return over(used.lut, cap.lut) * 1.0 + over(used.ff, cap.ff) * 0.5 +
         over(used.carry, cap.carry) * 4.0 + over(used.dsp, cap.dsp) * 60.0 +
         over(used.bram, cap.bram) * 40.0;
}

struct BinGrid {
  int bins_x = 0;
  int bins_y = 0;
  std::vector<ResourceVec> capacity;

  int bin_of_tile(const SaOptions& opt, int x, int y) const {
    const int bx = (x - opt.region.x0) / opt.bin_tiles;
    const int by = (y - opt.region.y0) / opt.bin_tiles;
    return by * bins_x + bx;
  }
};

BinGrid make_bins(const Device& device, const SaOptions& opt) {
  BinGrid grid;
  grid.bins_x = (opt.region.width() + opt.bin_tiles - 1) / opt.bin_tiles;
  grid.bins_y = (opt.region.height() + opt.bin_tiles - 1) / opt.bin_tiles;
  grid.capacity.assign(static_cast<std::size_t>(grid.bins_x) * grid.bins_y, ResourceVec{});
  for (int x = opt.region.x0; x <= std::min(opt.region.x1, device.width() - 1); ++x) {
    for (int y = opt.region.y0; y <= std::min(opt.region.y1, device.height() - 1); ++y) {
      ResourceVec cap = device.tile_capacity(x, y);
      grid.capacity[static_cast<std::size_t>(grid.bin_of_tile(opt, x, y))] += cap;
    }
  }
  if (opt.fill_limit < 1.0) {
    for (ResourceVec& cap : grid.capacity) {
      cap.lut = static_cast<std::int64_t>(cap.lut * opt.fill_limit);
      cap.ff = static_cast<std::int64_t>(cap.ff * opt.fill_limit);
      cap.carry = std::max<std::int64_t>(1, static_cast<std::int64_t>(cap.carry * opt.fill_limit));
      // Hard blocks are not derated; they are all-or-nothing sites.
    }
  }
  return grid;
}

}  // namespace

TileCoord SaResult::bin_center(const SaOptions& opt, int bin) const {
  const int bx = bin % bins_x;
  const int by = bin / bins_x;
  return TileCoord{opt.region.x0 + bx * opt.bin_tiles + opt.bin_tiles / 2,
                   opt.region.y0 + by * opt.bin_tiles + opt.bin_tiles / 2};
}

SaResult place_sa(const Device& device, const std::vector<PlaceItem>& items,
                  const std::vector<PlaceNet>& nets, const SaOptions& opt) {
  const BinGrid grid = make_bins(device, opt);
  const int num_bins = grid.bins_x * grid.bins_y;
  if (num_bins <= 0) throw std::runtime_error("place_sa: empty region");

  SaResult result;
  result.bins_x = grid.bins_x;
  result.bins_y = grid.bins_y;
  result.item_bin.assign(items.size(), 0);

  // Sanity: total demand must fit the (underated) region at all.
  ResourceVec total_demand, total_cap;
  for (const PlaceItem& item : items) total_demand += item.res;
  for (const ResourceVec& cap : grid.capacity) total_cap += cap;
  if (!total_demand.fits_in(total_cap)) {
    throw std::runtime_error("place_sa: demand " + total_demand.to_string() +
                             " exceeds region capacity " + total_cap.to_string());
  }

  std::vector<ResourceVec> usage(static_cast<std::size_t>(num_bins));

  // Initial placement: fixed items first, then size-descending greedy scan.
  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), 0);
  auto item_size = [&](std::size_t i) {
    const ResourceVec& r = items[i].res;
    return r.lut + r.ff / 2 + r.carry * 4 + r.dsp * 60 + r.bram * 40;
  };
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return item_size(a) > item_size(b); });

  for (std::size_t i = 0; i < items.size(); ++i) {
    if (!items[i].fixed) continue;
    // Coordinates outside the region would map to a negative or
    // out-of-range bin index and corrupt usage/item_bin.
    if (!opt.region.contains(items[i].fixed_x, items[i].fixed_y)) {
      throw std::runtime_error(
          "place_sa: fixed item #" + std::to_string(i) + " pinned at (" +
          std::to_string(items[i].fixed_x) + ", " + std::to_string(items[i].fixed_y) +
          ") outside placement region " + opt.region.to_string());
    }
    const int bin = grid.bin_of_tile(opt, items[i].fixed_x, items[i].fixed_y);
    result.item_bin[i] = bin;
    usage[static_cast<std::size_t>(bin)] += items[i].res;
  }
  int cursor = 0;
  for (std::size_t i : order) {
    if (items[i].fixed) continue;
    int chosen = -1;
    for (int attempt = 0; attempt < num_bins; ++attempt) {
      const int bin = (cursor + attempt) % num_bins;
      const ResourceVec tentative = usage[static_cast<std::size_t>(bin)] + items[i].res;
      if (tentative.fits_in(grid.capacity[static_cast<std::size_t>(bin)])) {
        chosen = bin;
        break;
      }
    }
    if (chosen < 0) chosen = cursor % num_bins;  // overfill; annealer fixes it
    result.item_bin[i] = chosen;
    usage[static_cast<std::size_t>(chosen)] += items[i].res;
    cursor = chosen + 1;
  }

  // Item -> nets index.
  std::vector<std::vector<std::int32_t>> item_nets(items.size());
  for (std::size_t n = 0; n < nets.size(); ++n) {
    for (std::int32_t item : nets[n].items) {
      item_nets[static_cast<std::size_t>(item)].push_back(static_cast<std::int32_t>(n));
    }
  }

  auto net_hpwl = [&](const PlaceNet& net) {
    int min_x = 1 << 30, max_x = -(1 << 30), min_y = 1 << 30, max_y = -(1 << 30);
    for (std::int32_t item : net.items) {
      const int bin = result.item_bin[static_cast<std::size_t>(item)];
      const int bx = bin % grid.bins_x;
      const int by = bin / grid.bins_x;
      min_x = std::min(min_x, bx);
      max_x = std::max(max_x, bx);
      min_y = std::min(min_y, by);
      max_y = std::max(max_y, by);
    }
    if (net.items.empty()) return 0.0;
    return net.weight * (max_x - min_x + max_y - min_y) * opt.bin_tiles;
  };

  auto bin_penalty = [&](int bin) {
    return overflow_penalty(usage[static_cast<std::size_t>(bin)],
                            grid.capacity[static_cast<std::size_t>(bin)]);
  };

  double hpwl = 0.0;
  for (const PlaceNet& net : nets) hpwl += net_hpwl(net);
  double penalty = 0.0;
  for (int b = 0; b < num_bins; ++b) penalty += bin_penalty(b);
  constexpr double kLambda = 6.0;

  Rng rng(opt.seed);
  std::vector<std::size_t> movable;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (!items[i].fixed) movable.push_back(i);
  }
  if (movable.empty() || num_bins == 1) {
    result.final_hpwl = hpwl;
    result.final_cost = hpwl + kLambda * penalty;
    return result;
  }

  const std::size_t total_moves =
      static_cast<std::size_t>(opt.moves_per_item * static_cast<double>(movable.size())) + 1;
  const int stages = 48;
  const std::size_t moves_per_stage = total_moves / stages + 1;

  auto try_move = [&](std::size_t item, int to_bin, double temperature) {
    const int from_bin = result.item_bin[item];
    if (from_bin == to_bin) return false;
    double before = kLambda * (bin_penalty(from_bin) + bin_penalty(to_bin));
    for (std::int32_t n : item_nets[item]) before += net_hpwl(nets[static_cast<std::size_t>(n)]);

    usage[static_cast<std::size_t>(from_bin)] -= items[item].res;
    usage[static_cast<std::size_t>(to_bin)] += items[item].res;
    result.item_bin[item] = to_bin;

    double after = kLambda * (bin_penalty(from_bin) + bin_penalty(to_bin));
    for (std::int32_t n : item_nets[item]) after += net_hpwl(nets[static_cast<std::size_t>(n)]);

    const double dc = after - before;
    if (dc <= 0.0 || rng.next_double() < std::exp(-dc / temperature)) return true;
    usage[static_cast<std::size_t>(to_bin)] -= items[item].res;
    usage[static_cast<std::size_t>(from_bin)] += items[item].res;
    result.item_bin[item] = from_bin;
    return false;
  };

  // Temperature calibration.
  double avg_dc = 1.0;
  {
    double sum = 0.0;
    int samples = 0;
    for (int s = 0; s < 64; ++s) {
      const std::size_t item = movable[rng.next_below(movable.size())];
      const int to_bin = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(num_bins)));
      const int from_bin = result.item_bin[item];
      if (from_bin == to_bin) continue;
      double before = kLambda * (bin_penalty(from_bin) + bin_penalty(to_bin));
      for (std::int32_t n : item_nets[item])
        before += net_hpwl(nets[static_cast<std::size_t>(n)]);
      usage[static_cast<std::size_t>(from_bin)] -= items[item].res;
      usage[static_cast<std::size_t>(to_bin)] += items[item].res;
      result.item_bin[item] = to_bin;
      double after = kLambda * (bin_penalty(from_bin) + bin_penalty(to_bin));
      for (std::int32_t n : item_nets[item])
        after += net_hpwl(nets[static_cast<std::size_t>(n)]);
      usage[static_cast<std::size_t>(to_bin)] -= items[item].res;
      usage[static_cast<std::size_t>(from_bin)] += items[item].res;
      result.item_bin[item] = from_bin;
      sum += std::abs(after - before);
      ++samples;
    }
    if (samples > 0) avg_dc = std::max(1e-6, sum / samples);
  }
  // initial_accept outside (0, 1) — including NaN — would make the start
  // temperature infinite/NaN and acceptance degenerate.
  double initial_accept = opt.initial_accept;
  if (!(initial_accept > 0.0 && initial_accept < 1.0)) {
    LOG_WARN("place_sa: initial_accept %.3f outside (0, 1); clamping", opt.initial_accept);
    initial_accept = initial_accept >= 1.0 ? 0.999 : 1e-3;
  }
  double temperature = avg_dc / -std::log(initial_accept);
  double window = std::max(grid.bins_x, grid.bins_y);

  for (int stage = 0; stage < stages; ++stage) {
    std::size_t accepted = 0;
    for (std::size_t m = 0; m < moves_per_stage; ++m) {
      const std::size_t item = movable[rng.next_below(movable.size())];
      const int from_bin = result.item_bin[item];
      const int fx = from_bin % grid.bins_x;
      const int fy = from_bin / grid.bins_x;
      const int wi = std::max(1, static_cast<int>(window));
      const int tx = std::clamp(fx + static_cast<int>(rng.next_int(-wi, wi)), 0,
                                grid.bins_x - 1);
      const int ty = std::clamp(fy + static_cast<int>(rng.next_int(-wi, wi)), 0,
                                grid.bins_y - 1);
      if (try_move(item, ty * grid.bins_x + tx, temperature)) ++accepted;
      ++result.moves;
    }
    const double accept_rate =
        static_cast<double>(accepted) / static_cast<double>(moves_per_stage);
    temperature *= (accept_rate > 0.5 ? 0.7 : 0.92);
    window = std::max(1.0, window * 0.93);
  }

  // Final greedy descent (zero temperature) pass.
  for (std::size_t i = 0; i < movable.size(); ++i) {
    const std::size_t item = movable[i];
    const int from_bin = result.item_bin[item];
    const int fx = from_bin % grid.bins_x;
    const int fy = from_bin / grid.bins_x;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int tx = std::clamp(fx + dx, 0, grid.bins_x - 1);
        const int ty = std::clamp(fy + dy, 0, grid.bins_y - 1);
        try_move(item, ty * grid.bins_x + tx, 1e-9);
      }
    }
  }

  hpwl = 0.0;
  for (const PlaceNet& net : nets) hpwl += net_hpwl(net);
  penalty = 0.0;
  for (int b = 0; b < num_bins; ++b) penalty += bin_penalty(b);
  result.final_hpwl = hpwl;
  result.final_cost = hpwl + kLambda * penalty;
  if (penalty > 0.0) {
    LOG_DEBUG("place_sa: residual overfill penalty %.1f (resolved by tile assignment spill)",
              penalty);
  }
  return result;
}

Clustering cluster_netlist(const Netlist& netlist, int target_size) {
  Clustering clustering;
  clustering.cell_cluster.assign(netlist.cell_count(), -1);
  if (target_size <= 1) {
    for (std::size_t c = 0; c < netlist.cell_count(); ++c) {
      clustering.cell_cluster[c] = static_cast<std::int32_t>(c);
    }
    clustering.num_clusters = netlist.cell_count();
    return clustering;
  }

  constexpr std::size_t kFanoutCap = 16;  // skip broadcast nets when walking
  std::int32_t next_cluster = 0;
  std::vector<CellId> frontier;
  for (CellId seed = 0; seed < netlist.cell_count(); ++seed) {
    if (clustering.cell_cluster[seed] != -1) continue;
    int count = 0;
    frontier.clear();
    frontier.push_back(seed);
    clustering.cell_cluster[seed] = next_cluster;
    while (!frontier.empty() && count < target_size) {
      const CellId c = frontier.back();
      frontier.pop_back();
      ++count;
      const Cell& cell = netlist.cell(c);
      auto visit_net = [&](NetId n) {
        if (n == kInvalidNet) return;
        const Net& net = netlist.net(n);
        if (net.sinks.size() > kFanoutCap) return;
        auto visit_cell = [&](CellId other) {
          if (count + static_cast<int>(frontier.size()) >= target_size) return;
          if (clustering.cell_cluster[other] == -1) {
            clustering.cell_cluster[other] = next_cluster;
            frontier.push_back(other);
          }
        };
        if (net.driver != kInvalidCell) visit_cell(net.driver);
        for (const auto& [sink, pin] : net.sinks) visit_cell(sink);
      };
      for (NetId in : cell.inputs) visit_net(in);
      for (NetId out : cell.outputs) visit_net(out);
    }
    // Anything left in the frontier already carries this cluster id.
    ++next_cluster;
  }
  clustering.num_clusters = static_cast<std::size_t>(next_cluster);
  return clustering;
}

void build_place_model(const Netlist& netlist, const Clustering& clustering,
                       std::vector<PlaceItem>& items, std::vector<PlaceNet>& nets) {
  items.assign(clustering.num_clusters, PlaceItem{});
  for (CellId c = 0; c < netlist.cell_count(); ++c) {
    items[static_cast<std::size_t>(clustering.cell_cluster[c])].res +=
        Netlist::cell_footprint(netlist.cell(c));
  }
  nets.clear();
  std::vector<std::int32_t> scratch;
  for (NetId n = 0; n < netlist.net_count(); ++n) {
    const Net& net = netlist.net(n);
    scratch.clear();
    if (net.driver != kInvalidCell) {
      scratch.push_back(clustering.cell_cluster[net.driver]);
    }
    for (const auto& [sink, pin] : net.sinks) {
      scratch.push_back(clustering.cell_cluster[sink]);
    }
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    if (scratch.size() < 2) continue;
    PlaceNet pnet;
    pnet.items = scratch;
    // Very wide nets (clock-enable style broadcasts) get damped weight so
    // they do not dominate HPWL.
    pnet.weight = scratch.size() > 8 ? 0.25 : 1.0;
    nets.push_back(std::move(pnet));
  }
}

void assign_cells_to_tiles(const Device& device, const Netlist& netlist,
                           const Clustering& clustering, const SaResult& placement,
                           const SaOptions& opt, PhysState& phys) {
  phys.resize_for(netlist);

  // Remaining capacity per tile in the region.
  const int rw = opt.region.width();
  const int rh = opt.region.height();
  std::vector<ResourceVec> remaining(static_cast<std::size_t>(rw) * rh);
  for (int x = 0; x < rw; ++x) {
    for (int y = 0; y < rh; ++y) {
      const int gx = opt.region.x0 + x;
      const int gy = opt.region.y0 + y;
      if (device.in_bounds(gx, gy)) {
        remaining[static_cast<std::size_t>(y) * rw + x] = device.tile_capacity(gx, gy);
      }
    }
  }
  auto rem_at = [&](int gx, int gy) -> ResourceVec& {
    return remaining[static_cast<std::size_t>(gy - opt.region.y0) * rw + (gx - opt.region.x0)];
  };

  for (CellId c = 0; c < netlist.cell_count(); ++c) {
    const Cell& cell = netlist.cell(c);
    const ResourceVec need = Netlist::cell_footprint(cell);
    const int bin = placement.item_bin[static_cast<std::size_t>(
        clustering.cell_cluster[c])];
    const TileCoord center = placement.bin_center(opt, bin);
    if (need.is_zero()) {
      phys.cell_loc[c] = TileCoord{std::clamp(center.x, opt.region.x0, opt.region.x1),
                                   std::clamp(center.y, opt.region.y0, opt.region.y1)};
      continue;
    }
    // A wide macro-cell (24-bit register, carry chain) spans several
    // adjacent tiles: take capacity from an expanding ring around the bin
    // center and anchor the cell at the first contributing tile.
    ResourceVec left = need;
    TileCoord anchor = kUnplaced;
    const int max_radius = std::max(device.width(), device.height());
    for (int radius = 0; radius <= max_radius && !left.is_zero(); ++radius) {
      const int x_lo = std::max(opt.region.x0, center.x - radius);
      const int x_hi = std::min({opt.region.x1, device.width() - 1, center.x + radius});
      const int y_lo = std::max(opt.region.y0, center.y - radius);
      const int y_hi = std::min({opt.region.y1, device.height() - 1, center.y + radius});
      for (int gx = x_lo; gx <= x_hi && !left.is_zero(); ++gx) {
        for (int gy = y_lo; gy <= y_hi && !left.is_zero(); ++gy) {
          // Only the ring boundary (interior was covered at lower radii).
          if (radius > 0 && gx != x_lo && gx != x_hi && gy != y_lo && gy != y_hi) continue;
          ResourceVec& have = rem_at(gx, gy);
          ResourceVec take{std::min(left.lut, have.lut), std::min(left.ff, have.ff),
                           std::min(left.carry, have.carry), std::min(left.dsp, have.dsp),
                           std::min(left.bram, have.bram)};
          if (take.is_zero()) continue;
          have -= take;
          left -= take;
          if (anchor == kUnplaced) anchor = TileCoord{gx, gy};
        }
      }
    }
    if (!left.is_zero()) {
      throw std::runtime_error("assign_cells_to_tiles: region out of capacity for cell '" +
                               cell.name + "' (needs " + need.to_string() + ", short " +
                               left.to_string() + ")");
    }
    phys.cell_loc[c] = anchor;
  }
}

}  // namespace fpgasim
