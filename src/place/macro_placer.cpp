#include "place/macro_placer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/log.h"
#include "util/rng.h"

namespace fpgasim {
namespace {

TileCoord center_of(const Pblock& block) {
  return TileCoord{(block.x0 + block.x1) / 2, (block.y0 + block.y1) / 2};
}

/// Eq. (1): HPWL between component centers, weighted per net.
double timing_cost(const std::vector<MacroNet>& nets, const std::vector<Pblock>& placed,
                   const std::vector<bool>& is_placed) {
  double cost = 0.0;
  for (const MacroNet& net : nets) {
    int min_x = 1 << 30, max_x = -(1 << 30), min_y = 1 << 30, max_y = -(1 << 30);
    int present = 0;
    for (std::int32_t item : net.items) {
      if (!is_placed[static_cast<std::size_t>(item)]) continue;
      const TileCoord c = center_of(placed[static_cast<std::size_t>(item)]);
      min_x = std::min(min_x, c.x);
      max_x = std::max(max_x, c.x);
      min_y = std::min(min_y, c.y);
      max_y = std::max(max_y, c.y);
      ++present;
    }
    if (present >= 2) cost += net.weight * ((max_x - min_x) + (max_y - min_y));
  }
  return cost;
}

/// Eq. (2)/(3): counts tiles covered by the bounding boxes of more than one
/// inter-component net (routing demand piling up in the same region),
/// normalized by the total covered area.
double congestion_cost(const std::vector<MacroNet>& nets, const std::vector<Pblock>& placed,
                       const std::vector<bool>& is_placed, const Device& device) {
  // Coarse 8x8-tile congestion grid keeps this O(area / 64).
  constexpr int kGrid = 8;
  const int gw = (device.width() + kGrid - 1) / kGrid;
  const int gh = (device.height() + kGrid - 1) / kGrid;
  std::vector<int> cover(static_cast<std::size_t>(gw) * gh, 0);
  int boxes = 0;
  for (const MacroNet& net : nets) {
    int min_x = 1 << 30, max_x = -(1 << 30), min_y = 1 << 30, max_y = -(1 << 30);
    int present = 0;
    for (std::int32_t item : net.items) {
      if (!is_placed[static_cast<std::size_t>(item)]) continue;
      const TileCoord c = center_of(placed[static_cast<std::size_t>(item)]);
      min_x = std::min(min_x, c.x);
      max_x = std::max(max_x, c.x);
      min_y = std::min(min_y, c.y);
      max_y = std::max(max_y, c.y);
      ++present;
    }
    if (present < 2) continue;
    ++boxes;
    for (int gx = min_x / kGrid; gx <= max_x / kGrid; ++gx) {
      for (int gy = min_y / kGrid; gy <= max_y / kGrid; ++gy) {
        ++cover[static_cast<std::size_t>(gy) * gw + gx];
      }
    }
  }
  if (boxes == 0) return 0.0;
  double overlaps = 0.0, covered = 0.0;
  for (int c : cover) {
    if (c > 0) covered += 1.0;
    if (c > 1) overlaps += c - 1;
  }
  return covered > 0.0 ? overlaps / covered : 0.0;
}

}  // namespace

MacroPlaceResult place_macros(const Device& device, const std::vector<MacroItem>& items,
                              const std::vector<MacroNet>& nets,
                              const MacroPlaceOptions& opt) {
  MacroPlaceResult result;
  const std::size_t n = items.size();
  result.offsets.assign(n, {0, 0});
  result.placed.assign(n, Pblock{});
  if (n == 0) {
    result.success = true;
    return result;
  }

  // Legal anchors per item (column-compatible, parity preserving).
  std::vector<std::vector<std::pair<int, int>>> anchors(n);
  for (std::size_t i = 0; i < n; ++i) {
    anchors[i] = relocation_offsets(device, items[i].footprint);
    if (anchors[i].empty()) {
      result.error = "component '" + items[i].name + "' has no legal anchor";
      return result;
    }
  }

  // BFS order over the DFG from item 0 (Algorithm 1).
  std::vector<std::vector<std::int32_t>> adj(n);
  for (const MacroNet& net : nets) {
    for (std::size_t a = 0; a < net.items.size(); ++a) {
      for (std::size_t b = a + 1; b < net.items.size(); ++b) {
        adj[static_cast<std::size_t>(net.items[a])].push_back(net.items[b]);
        adj[static_cast<std::size_t>(net.items[b])].push_back(net.items[a]);
      }
    }
  }
  std::vector<std::int32_t> bfs;
  std::vector<bool> seen(n, false);
  for (std::size_t root = 0; root < n; ++root) {
    if (seen[root]) continue;
    std::size_t head = bfs.size();
    bfs.push_back(static_cast<std::int32_t>(root));
    seen[root] = true;
    while (head < bfs.size()) {
      const std::int32_t v = bfs[head++];
      for (std::int32_t w : adj[static_cast<std::size_t>(v)]) {
        if (!seen[static_cast<std::size_t>(w)]) {
          seen[static_cast<std::size_t>(w)] = true;
          bfs.push_back(w);
        }
      }
    }
  }

  std::vector<bool> is_placed(n, false);
  std::vector<int> anchor_cursor(n, 0);  // next candidate to try on backtrack
  Rng rng(opt.seed);

  // Ranks anchors for item `i`. Mode 0: distance to the centroid of its
  // placed neighbours (timing-driven). Mode 1/2: bottom-left / left-bottom
  // packing order (dense restarts when the greedy fragments the die).
  auto rank_anchors = [&](std::size_t i, int mode) {
    TileCoord target{device.width() / 2, device.height() / 2};
    int neighbours = 0;
    long sx = 0, sy = 0;
    for (const MacroNet& net : nets) {
      bool mine = false;
      for (std::int32_t item : net.items) mine |= (item == static_cast<std::int32_t>(i));
      if (!mine) continue;
      for (std::int32_t item : net.items) {
        if (item == static_cast<std::int32_t>(i) ||
            !is_placed[static_cast<std::size_t>(item)]) {
          continue;
        }
        const TileCoord c = center_of(result.placed[static_cast<std::size_t>(item)]);
        sx += c.x;
        sy += c.y;
        ++neighbours;
      }
    }
    if (neighbours > 0) {
      target = TileCoord{static_cast<int>(sx / neighbours), static_cast<int>(sy / neighbours)};
    }
    std::vector<std::pair<int, int>>& list = anchors[i];
    const TileCoord base = center_of(items[i].footprint);
    std::stable_sort(list.begin(), list.end(), [&](const auto& a, const auto& b) {
      if (mode == 1) {
        return std::pair(a.second, a.first) < std::pair(b.second, b.first);
      }
      if (mode == 2) {
        return a < b;
      }
      const int da = std::abs(base.x + a.first - target.x) + std::abs(base.y + a.second - target.y);
      const int db = std::abs(base.x + b.first - target.x) + std::abs(base.y + b.second - target.y);
      return da < db;
    });
  };

  auto place_one = [&](std::size_t i, int skip_best, int mode) -> bool {
    rank_anchors(i, mode);
    const auto& cand = anchors[i];
    const int limit = std::min<int>(static_cast<int>(cand.size()), opt.max_candidates);
    double best_cost = std::numeric_limits<double>::infinity();
    int best_idx = -1;
    int valid = 0;  // non-overlapping anchors encountered
    for (int k = 0; k < limit; ++k) {
      const Pblock moved = items[i].footprint.translated(cand[static_cast<std::size_t>(k)].first,
                                                         cand[static_cast<std::size_t>(k)].second);
      bool overlap = false;
      for (std::size_t j = 0; j < n && !overlap; ++j) {
        if (is_placed[j] && moved.overlaps(result.placed[j])) overlap = true;
      }
      if (overlap) continue;
      // Backtracking: genuinely skip the choices already tried so retries
      // explore new anchors instead of re-picking the same one.
      if (valid++ < skip_best) continue;
      result.placed[i] = moved;
      is_placed[i] = true;
      const double tc = timing_cost(nets, result.placed, is_placed);
      const double cc = congestion_cost(nets, result.placed, is_placed, device);
      is_placed[i] = false;
      const double cost = opt.timing_weight * tc + opt.congestion_weight * cc;
      if (cost < best_cost) {
        best_cost = cost;
        best_idx = k;
      }
      if (valid > skip_best + 24) break;  // bounded scan past the cursor
    }
    if (best_idx < 0) return false;
    result.offsets[i] = anchors[i][static_cast<std::size_t>(best_idx)];
    result.placed[i] = items[i].footprint.translated(result.offsets[i].first,
                                                     result.offsets[i].second);
    is_placed[i] = true;
    return true;
  };

  // Last-resort packer: first-fit decreasing by area, bottom-left anchors,
  // no cost gate. Used only when every cost-driven attempt fragments the
  // die; guarantees a placement whenever one is greedily packable.
  auto first_fit_decreasing = [&]() -> bool {
    std::fill(is_placed.begin(), is_placed.end(), false);
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return items[a].footprint.area() > items[b].footprint.area();
    });
    for (std::size_t i : order) {
      std::vector<std::pair<int, int>> cand = anchors[i];
      std::sort(cand.begin(), cand.end(), [](const auto& a, const auto& b) {
        return std::pair(a.second, a.first) < std::pair(b.second, b.first);
      });
      bool placed = false;
      for (const auto& [dx, dy] : cand) {
        const Pblock moved = items[i].footprint.translated(dx, dy);
        bool overlap = false;
        for (std::size_t j = 0; j < n && !overlap; ++j) {
          if (is_placed[j] && moved.overlaps(result.placed[j])) overlap = true;
        }
        if (overlap) continue;
        result.placed[i] = moved;
        result.offsets[i] = {dx, dy};
        is_placed[i] = true;
        placed = true;
        break;
      }
      if (!placed) {
        result.error = "macro placement failed for '" + items[i].name + "'";
        return false;
      }
    }
    return true;
  };

  // Main BFS placement loop with bounded unplace-and-retry; on outright
  // failure, restart with a denser packing order (bottom-left skyline),
  // and finally fall back to pure packing.
  for (int mode = 0; mode < 4; ++mode) {
    if (mode == 3) {
      if (!first_fit_decreasing()) return result;
      result.timing_cost = timing_cost(nets, result.placed, is_placed);
      result.congestion_cost = congestion_cost(nets, result.placed, is_placed, device);
      result.success = true;
      result.error.clear();
      LOG_DEBUG("place_macros: fell back to first-fit packing (%d backtracks)",
                result.backtracks);
      return result;
    }
    std::fill(is_placed.begin(), is_placed.end(), false);
    std::fill(anchor_cursor.begin(), anchor_cursor.end(), 0);
    double threshold = opt.accept_threshold;
    bool failed = false;
    std::string fail_component;
    for (std::size_t pos = 0; pos < bfs.size();) {
      const std::size_t i = static_cast<std::size_t>(bfs[pos]);
      const bool ok = place_one(i, anchor_cursor[i], mode);
      if (ok) {
        const double tc = timing_cost(nets, result.placed, is_placed);
        const double cc = congestion_cost(nets, result.placed, is_placed, device);
        const double cost =
            opt.timing_weight * tc / std::max<std::size_t>(1, pos + 1) +
            opt.congestion_weight * cc;
        if (cost <= threshold || pos == 0) {
          ++pos;
          continue;
        }
        is_placed[i] = false;  // cost gate failed: treat as placement failure
      }
      if (result.backtracks >= opt.max_backtracks * (mode + 1) || pos == 0) {
        threshold *= 1.5;  // relax the gate rather than fail outright
        ++result.backtracks;
        if (result.backtracks > opt.max_backtracks * (mode + 1) + 16) {
          failed = true;
          fail_component = items[i].name;
          break;
        }
        continue;
      }
      // Backtrack: unplace the previous component and advance its cursor.
      ++result.backtracks;
      const std::size_t prev = static_cast<std::size_t>(bfs[pos - 1]);
      is_placed[prev] = false;
      ++anchor_cursor[prev];
      anchor_cursor[i] = 0;
      --pos;
    }
    if (!failed) {
      result.timing_cost = timing_cost(nets, result.placed, is_placed);
      result.congestion_cost = congestion_cost(nets, result.placed, is_placed, device);
      result.success = true;
      result.error.clear();
      return result;
    }
    result.error = "macro placement failed for '" + fail_component + "'";
  }
  return result;
}

}  // namespace fpgasim
