#include "place/macro_placer.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <tuple>

#include "place/macro_cost.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace fpgasim {
namespace {

/// Tile-occupancy bitmap (one bit per tile, 64 columns per word): O(1)-ish
/// rectangle overlap probes independent of how many components are placed,
/// updated on every place/unplace. Replaces the O(n) pairwise pblock scan.
/// A per-band summary (the OR of kBandRows rows) lets a probe dismiss or
/// confirm whole bands with one word test; only the partial bands at the
/// rectangle's top and bottom edges ever descend to individual rows.
class OccupancyGrid {
 public:
  OccupancyGrid(int width, int height)
      : width_(width),
        height_(height),
        words_((width + 63) / 64),
        bits_(static_cast<std::size_t>(words_) * height_, 0),
        bands_(static_cast<std::size_t>(words_) * ((height + kBandRows - 1) / kBandRows), 0) {}

  void fill(const Pblock& block, bool set) {
    const auto [x0, x1, y0, y1] = clamp(block);
    if (x0 > x1 || y0 > y1) return;
    for (int y = y0; y <= y1; ++y) {
      std::uint64_t* row = &bits_[static_cast<std::size_t>(y) * words_];
      for (int w = x0 / 64; w <= x1 / 64; ++w) {
        if (set) {
          row[w] |= range_mask(w, x0, x1);
        } else {
          row[w] &= ~range_mask(w, x0, x1);
        }
      }
    }
    for (int b = y0 / kBandRows; b <= y1 / kBandRows; ++b) {
      const int rows_end = std::min(height_, (b + 1) * kBandRows);
      for (int w = x0 / 64; w <= x1 / 64; ++w) {
        std::uint64_t merged = 0;
        for (int y = b * kBandRows; y < rows_end; ++y) {
          merged |= bits_[static_cast<std::size_t>(y) * words_ + w];
        }
        bands_[static_cast<std::size_t>(b) * words_ + w] = merged;
      }
    }
  }

  bool overlaps(const Pblock& block) const {
    const auto [x0, x1, y0, y1] = clamp(block);
    if (x0 > x1 || y0 > y1) return false;
    for (int b = y0 / kBandRows; b <= y1 / kBandRows; ++b) {
      const int band_y0 = b * kBandRows;
      const int band_y1 = std::min(height_ - 1, band_y0 + kBandRows - 1);
      const bool whole_band = y0 <= band_y0 && band_y1 <= y1;
      const std::uint64_t* band = &bands_[static_cast<std::size_t>(b) * words_];
      for (int w = x0 / 64; w <= x1 / 64; ++w) {
        if ((band[w] & range_mask(w, x0, x1)) == 0) continue;
        // The band holds a bit in range: exact when the probe spans the
        // full band, otherwise check the covered rows individually.
        if (whole_band) return true;
        for (int y = std::max(y0, band_y0); y <= std::min(y1, band_y1); ++y) {
          if ((bits_[static_cast<std::size_t>(y) * words_ + w] & range_mask(w, x0, x1)) != 0) {
            return true;
          }
        }
      }
    }
    return false;
  }

 private:
  static constexpr int kBandRows = 8;
  struct Clamped {
    int x0, x1, y0, y1;
  };
  Clamped clamp(const Pblock& block) const {
    return Clamped{std::max(0, block.x0), std::min(width_ - 1, block.x1),
                   std::max(0, block.y0), std::min(height_ - 1, block.y1)};
  }
  /// Bits of word `w` covered by the column range [x0, x1].
  static std::uint64_t range_mask(int w, int x0, int x1) {
    const int lo = std::max(x0 - w * 64, 0);
    const int hi = std::min(x1 - w * 64, 63);
    return (~0ULL >> (63 - hi)) & (~0ULL << lo);
  }

  int width_;
  int height_;
  int words_;
  std::vector<std::uint64_t> bits_;
  std::vector<std::uint64_t> bands_;  // per-band OR of its rows' words
};

/// Contiguous run of one dx column inside an item's anchors_lb list
/// (entries share `dx`, ascending dy). Lets the centroid ranking walk a
/// column outward from any target row without scanning the whole list.
struct AnchorColumn {
  int dx = 0;
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
};

/// Inputs shared (read-only) by every start.
struct StartInputs {
  const Device* device = nullptr;
  const std::vector<MacroItem>* items = nullptr;
  const std::vector<MacroNet>* nets = nullptr;
  const MacroPlaceOptions* opt = nullptr;
  std::vector<std::vector<std::pair<int, int>>> anchors;     // relocation_offsets
  std::vector<std::vector<std::pair<int, int>>> anchors_bl;  // bottom-left order
  std::vector<std::vector<std::pair<int, int>>> anchors_lb;  // left-bottom order
  std::vector<std::vector<AnchorColumn>> columns;            // over anchors_lb
  std::vector<std::vector<std::int32_t>> adj;                // DFG adjacency
  std::vector<std::int32_t> bfs;                             // base BFS order
};

/// Everything one independent start produces. The winner's fields are
/// copied into the MacroPlaceResult; the counters are aggregated from all
/// starts in start order.
struct StartOutcome {
  bool success = false;
  std::vector<std::pair<int, int>> offsets;
  std::vector<Pblock> placed;
  double timing = 0.0;
  double congestion = 0.0;
  int backtracks = 0;
  long cost_evals = 0;
  long nets_touched = 0;
  long overlap_tests = 0;
};

/// BFS over the DFG from item 0, lower-index roots first (Algorithm 1).
std::vector<std::int32_t> bfs_order(const std::vector<std::vector<std::int32_t>>& adj,
                                    std::size_t root_rotation) {
  const std::size_t n = adj.size();
  std::vector<std::int32_t> bfs;
  bfs.reserve(n);
  std::vector<bool> seen(n, false);
  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t root = (r + root_rotation) % n;
    if (seen[root]) continue;
    std::size_t head = bfs.size();
    bfs.push_back(static_cast<std::int32_t>(root));
    seen[root] = true;
    while (head < bfs.size()) {
      const std::int32_t v = bfs[head++];
      for (std::int32_t w : adj[static_cast<std::size_t>(v)]) {
        if (!seen[static_cast<std::size_t>(w)]) {
          seen[static_cast<std::size_t>(w)] = true;
          bfs.push_back(w);
        }
      }
    }
  }
  return bfs;
}

/// splitmix64 finalizer; decorrelates anchor tie-breaks across starts.
std::uint32_t mix_tie(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<std::uint32_t>(x);
}

/// One fully independent placement attempt. `start` selects the variant:
/// starts 0..2 are the centroid / bottom-left / left-bottom ranking modes
/// over the base BFS order; starts >= 3 are seed-perturbed — BFS from a
/// rotated root over shuffled adjacency, with hashed anchor tie-order.
/// Depends only on (inputs, start), never on scheduling, so any pool width
/// reproduces the same outcome.
StartOutcome run_start(const StartInputs& in, int start) {
  const Device& device = *in.device;
  const std::vector<MacroItem>& items = *in.items;
  const std::vector<MacroNet>& nets = *in.nets;
  const MacroPlaceOptions& opt = *in.opt;
  const std::size_t n = items.size();
  const int mode = start < 3 ? start : 0;
  const std::uint64_t salt = opt.seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(start);

  StartOutcome out;
  out.offsets.assign(n, {0, 0});
  out.placed.assign(n, Pblock{});

  // All starts share the precomputed read-only anchor lists; perturbed
  // starts diversify via their BFS order and anchor tie-break hash.
  std::vector<std::int32_t> order = in.bfs;
  if (start >= 3) {
    Rng rng(salt);
    std::vector<std::vector<std::int32_t>> adj = in.adj;
    for (auto& list : adj) std::shuffle(list.begin(), list.end(), rng);
    order = bfs_order(adj, static_cast<std::size_t>(start) % n);
  }

  MacroCostModel kernel(device, nets, n, opt.incremental);
  OccupancyGrid occ(device.width(), device.height());
  std::vector<int> anchor_cursor(n, 0);  // next candidate to try on backtrack

  // Centroid ranking (mode 0) enumerates candidates in ascending Manhattan
  // distance to the placed-neighbour centroid via a k-way merge over
  // per-column frontiers: each dx column of anchors_lb contributes its two
  // dy cursors (below / at-or-above the target row) to a min-heap, and
  // every consumed candidate advances one cursor. The per-attempt cost is
  // a binary search per column plus a heap op per candidate actually
  // scanned — never a pass over the full anchor list. The order is the
  // deterministic total order (distance, tie, anchors_lb index); tie == 0
  // for the three base starts, a per-start hash for perturbed ones.
  struct Frontier {
    int dist;
    std::uint32_t tie;
    std::uint32_t pos;  // index into anchors_lb[i]
    std::uint32_t col;  // column whose cursor this entry is
    int dir;            // -1: walking dy downward, +1: upward
  };
  const auto frontier_after = [](const Frontier& a, const Frontier& b) {  // min-heap
    return std::tie(a.dist, a.tie, a.pos) > std::tie(b.dist, b.tie, b.pos);
  };
  std::vector<Frontier> frontier;  // scratch, reused across place_one calls
  std::vector<int> col_dist;       // scratch |column x - target x|

  auto anchor_tie = [&](std::size_t i, std::uint32_t pos) -> std::uint32_t {
    return start >= 3 ? mix_tie(salt ^ (static_cast<std::uint64_t>(i) << 32) ^ pos) : 0;
  };

  auto centroid_target = [&](std::size_t i) {
    TileCoord target{device.width() / 2, device.height() / 2};
    int neighbours = 0;
    long sx = 0, sy = 0;
    for (std::int32_t net : kernel.incidence()[i]) {
      for (std::int32_t item : nets[static_cast<std::size_t>(net)].items) {
        if (item == static_cast<std::int32_t>(i) ||
            !kernel.is_placed()[static_cast<std::size_t>(item)]) {
          continue;
        }
        const TileCoord c = macro_center(kernel.placed()[static_cast<std::size_t>(item)]);
        sx += c.x;
        sy += c.y;
        ++neighbours;
      }
    }
    if (neighbours > 0) {
      target = TileCoord{static_cast<int>(sx / neighbours), static_cast<int>(sy / neighbours)};
    }
    return target;
  };

  // Evaluated costs of the accepted anchor, reported so the BFS loop's
  // acceptance gate reuses them instead of recomputing the design cost.
  struct Best {
    double cost = std::numeric_limits<double>::infinity();
    double timing = 0.0;
    double congestion = 0.0;
    std::pair<int, int> anchor{0, 0};
    bool found = false;
  };

  auto place_one = [&](std::size_t i, int skip_best, Best& best) -> bool {
    const std::vector<std::pair<int, int>>& cand =
        mode == 1 ? in.anchors_bl[i] : in.anchors_lb[i];
    const std::vector<AnchorColumn>& cols = in.columns[i];
    const int ncols = static_cast<int>(cols.size());
    int want_dx = 0, want_dy = 0;           // target, in anchor-offset coordinates
    int act_left = -1, act_right = ncols;   // next column to activate per side
    if (mode == 0) {
      const TileCoord target = centroid_target(i);
      const TileCoord base = macro_center(items[i].footprint);
      want_dx = target.x - base.x;
      want_dy = target.y - base.y;
      frontier.clear();
      col_dist.resize(cols.size());
      act_right = static_cast<int>(
          std::lower_bound(cols.begin(), cols.end(), want_dx,
                           [](const AnchorColumn& c, int dx) { return c.dx < dx; }) -
          cols.begin());
      act_left = act_right - 1;
    }
    // Columns activate lazily, nearest dx first: a column only joins the
    // merge once the heap minimum reaches its x-distance, so a scan that
    // stops after a few dozen candidates never touches the far columns.
    auto activate = [&](int c) {
      col_dist[static_cast<std::size_t>(c)] = std::abs(cols[static_cast<std::size_t>(c)].dx - want_dx);
      const AnchorColumn& column = cols[static_cast<std::size_t>(c)];
      const auto begin = cand.begin() + column.begin;
      const auto end = cand.begin() + column.end;
      const auto it = std::lower_bound(
          begin, end, want_dy,
          [](const std::pair<int, int>& a, int y) { return a.second < y; });
      const int cd = col_dist[static_cast<std::size_t>(c)];
      if (it != begin) {
        const auto pos = static_cast<std::uint32_t>(it - 1 - cand.begin());
        frontier.push_back(Frontier{cd + (want_dy - cand[pos].second), anchor_tie(i, pos),
                                    pos, static_cast<std::uint32_t>(c), -1});
        std::push_heap(frontier.begin(), frontier.end(), frontier_after);
      }
      if (it != end) {
        const auto pos = static_cast<std::uint32_t>(it - cand.begin());
        frontier.push_back(Frontier{cd + (cand[pos].second - want_dy), anchor_tie(i, pos),
                                    pos, static_cast<std::uint32_t>(c), +1});
        std::push_heap(frontier.begin(), frontier.end(), frontier_after);
      }
    };
    const int limit = std::min<int>(static_cast<int>(cand.size()), opt.max_candidates);
    std::size_t cursor = 0;  // modes 1/2: next entry of the static order
    auto next = [&]() -> const std::pair<int, int>* {
      if (mode == 0) {
        // A column with x-distance <= the current heap minimum could hold
        // an equal-or-better candidate, so it must activate before we pop.
        for (;;) {
          const int dl = act_left >= 0 ? std::abs(cols[static_cast<std::size_t>(act_left)].dx - want_dx)
                                       : std::numeric_limits<int>::max();
          const int dr = act_right < ncols
                             ? std::abs(cols[static_cast<std::size_t>(act_right)].dx - want_dx)
                             : std::numeric_limits<int>::max();
          if (std::min(dl, dr) == std::numeric_limits<int>::max() ||
              (!frontier.empty() && frontier.front().dist < std::min(dl, dr))) {
            break;
          }
          if (dl <= dr) {
            activate(act_left--);
          } else {
            activate(act_right++);
          }
        }
        std::pop_heap(frontier.begin(), frontier.end(), frontier_after);
        const Frontier f = frontier.back();
        frontier.pop_back();
        const AnchorColumn& column = cols[f.col];
        if (f.dir < 0 ? f.pos > column.begin : f.pos + 1 < column.end) {
          const std::uint32_t pos = f.dir < 0 ? f.pos - 1 : f.pos + 1;
          frontier.push_back(Frontier{col_dist[f.col] + std::abs(cand[pos].second - want_dy),
                                      anchor_tie(i, pos), pos, f.col, f.dir});
          std::push_heap(frontier.begin(), frontier.end(), frontier_after);
        }
        return &cand[f.pos];
      }
      return &cand[cursor++];
    };
    best = Best{};
    int valid = 0;       // non-overlapping anchors encountered
    bool probed = false;  // item i currently sits at the last probed anchor
    for (int k = 0; k < limit; ++k) {
      const std::pair<int, int>& offset = *next();
      const Pblock moved = items[i].footprint.translated(offset.first, offset.second);
      ++out.overlap_tests;
      if (occ.overlaps(moved)) continue;
      // Backtracking: genuinely skip the choices already tried so retries
      // explore new anchors instead of re-picking the same one.
      if (valid++ < skip_best) continue;
      // Move the item from the previous candidate instead of a full
      // place/unplace round trip: consecutive candidates are spatially
      // adjacent, so the incremental kernel's box diffs stay tiny.
      kernel.place(i, moved);
      probed = true;
      const MacroCostTotals t = kernel.totals();
      const double cost = opt.timing_weight * t.timing + opt.congestion_weight * t.congestion;
      if (cost < best.cost) best = Best{cost, t.timing, t.congestion, offset, true};
      if (valid > skip_best + 24) break;  // bounded scan past the cursor
    }
    if (!best.found) {
      if (probed) kernel.unplace(i);
      return false;
    }
    out.offsets[i] = best.anchor;
    out.placed[i] = items[i].footprint.translated(out.offsets[i].first, out.offsets[i].second);
    kernel.place(i, out.placed[i]);  // move from the last probe to the winner
    occ.fill(out.placed[i], true);
    return true;
  };

  // BFS placement loop with bounded unplace-and-retry and a relaxing
  // acceptance threshold.
  double threshold = opt.accept_threshold;
  bool failed = false;
  for (std::size_t pos = 0; pos < order.size();) {
    const std::size_t i = static_cast<std::size_t>(order[pos]);
    Best best;
    const bool ok = place_one(i, anchor_cursor[i], best);
    if (ok) {
      const double gate =
          opt.timing_weight * best.timing / static_cast<double>(std::max<std::size_t>(1, pos + 1)) +
          opt.congestion_weight * best.congestion;
      if (gate <= threshold || pos == 0) {
        ++pos;
        continue;
      }
      // Cost gate failed: treat as placement failure.
      kernel.unplace(i);
      occ.fill(out.placed[i], false);
    }
    if (out.backtracks >= opt.max_backtracks || pos == 0) {
      threshold *= 1.5;  // relax the gate rather than fail outright
      ++out.backtracks;
      if (out.backtracks > opt.max_backtracks + 16) {
        failed = true;
        break;
      }
      continue;
    }
    // Backtrack: unplace the previous component and advance its cursor.
    ++out.backtracks;
    const std::size_t prev = static_cast<std::size_t>(order[pos - 1]);
    kernel.unplace(prev);
    occ.fill(out.placed[prev], false);
    ++anchor_cursor[prev];
    anchor_cursor[i] = 0;
    --pos;
  }
  if (!failed) {
    const MacroCostTotals t = kernel.totals();
    out.timing = t.timing;
    out.congestion = t.congestion;
    out.success = true;
  }
  out.cost_evals = kernel.cost_evals();
  out.nets_touched = kernel.nets_touched();
  return out;
}

/// Last-resort packer: first-fit decreasing by area over the precomputed
/// bottom-left anchor orders, no cost gate. Used only when every
/// cost-driven start fails; guarantees a placement whenever one is
/// greedily packable.
bool first_fit_decreasing(const StartInputs& in, MacroPlaceResult& result) {
  const std::vector<MacroItem>& items = *in.items;
  const std::size_t n = items.size();
  OccupancyGrid occ(in.device->width(), in.device->height());
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto area_a = items[a].footprint.area();
    const auto area_b = items[b].footprint.area();
    return area_a != area_b ? area_a > area_b : a < b;
  });
  for (std::size_t i : order) {
    bool placed = false;
    for (const auto& [dx, dy] : in.anchors_bl[i]) {
      const Pblock moved = items[i].footprint.translated(dx, dy);
      ++result.stats.overlap_tests;
      if (occ.overlaps(moved)) continue;
      result.placed[i] = moved;
      result.offsets[i] = {dx, dy};
      occ.fill(moved, true);
      placed = true;
      break;
    }
    if (!placed) {
      result.error = "macro placement failed for '" + items[i].name + "'";
      return false;
    }
  }
  return true;
}

}  // namespace

std::string PlaceStats::summary() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "%d starts (winner %d%s), %ld cost evals, %ld nets touched, "
                "%ld overlap tests, %.3fs wall / %.3fs cpu, backtracks [",
                starts, winner_start, used_fallback ? ", fallback" : "", cost_evals,
                nets_touched, overlap_tests, wall_seconds, cpu_seconds);
  std::string s = buf;
  for (std::size_t i = 0; i < backtracks_per_start.size(); ++i) {
    if (i > 0) s += ' ';
    s += std::to_string(backtracks_per_start[i]);
  }
  s += ']';
  return s;
}

MacroPlaceResult place_macros(const Device& device, const std::vector<MacroItem>& items,
                              const std::vector<MacroNet>& nets,
                              const MacroPlaceOptions& opt) {
  MacroPlaceResult result;
  Stopwatch wall;
  CpuStopwatch cpu;
  const std::size_t n = items.size();
  result.offsets.assign(n, {0, 0});
  result.placed.assign(n, Pblock{});
  if (n == 0) {
    result.success = true;
    return result;
  }

  StartInputs in;
  in.device = &device;
  in.items = &items;
  in.nets = &nets;
  in.opt = &opt;

  // Legal anchors per item (column-compatible, parity preserving), plus
  // the two static packing orders — computed once, shared by every start
  // and by the fallback packer.
  in.anchors.resize(n);
  in.anchors_bl.resize(n);
  in.anchors_lb.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    in.anchors[i] = relocation_offsets(device, items[i].footprint);
    if (in.anchors[i].empty()) {
      result.error = "component '" + items[i].name + "' has no legal anchor";
      return result;
    }
    in.anchors_bl[i] = in.anchors[i];
    std::sort(in.anchors_bl[i].begin(), in.anchors_bl[i].end(),
              [](const auto& a, const auto& b) {
                return std::pair(a.second, a.first) < std::pair(b.second, b.first);
              });
    in.anchors_lb[i] = in.anchors[i];
    std::sort(in.anchors_lb[i].begin(), in.anchors_lb[i].end());
  }

  // Column index over anchors_lb: runs of equal dx, ascending dy. The
  // centroid ranking's frontier merge walks these instead of re-sorting
  // anchors per attempt.
  in.columns.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& lb = in.anchors_lb[i];
    for (std::uint32_t k = 0; k < lb.size(); ++k) {
      if (in.columns[i].empty() || in.columns[i].back().dx != lb[k].first) {
        in.columns[i].push_back(AnchorColumn{lb[k].first, k, k + 1});
      } else {
        in.columns[i].back().end = k + 1;
      }
    }
  }

  in.adj.resize(n);
  for (const MacroNet& net : nets) {
    for (std::size_t a = 0; a < net.items.size(); ++a) {
      for (std::size_t b = a + 1; b < net.items.size(); ++b) {
        in.adj[static_cast<std::size_t>(net.items[a])].push_back(net.items[b]);
        in.adj[static_cast<std::size_t>(net.items[b])].push_back(net.items[a]);
      }
    }
  }
  in.bfs = bfs_order(in.adj, 0);

  // Independent starts in parallel; each outcome is keyed by its index, so
  // every pool width produces the same winner.
  const int starts = 3 + std::max(0, opt.perturbed_starts);
  std::vector<StartOutcome> outcomes(static_cast<std::size_t>(starts));
  parallel_for(
      0, static_cast<std::size_t>(starts),
      [&](std::size_t s) { outcomes[s] = run_start(in, static_cast<int>(s)); }, opt.pool);

  result.stats.starts = starts;
  int winner = -1;
  double winner_cost = std::numeric_limits<double>::infinity();
  for (int s = 0; s < starts; ++s) {
    const StartOutcome& out = outcomes[static_cast<std::size_t>(s)];
    result.stats.cost_evals += out.cost_evals;
    result.stats.nets_touched += out.nets_touched;
    result.stats.overlap_tests += out.overlap_tests;
    result.stats.backtracks_per_start.push_back(out.backtracks);
    if (!out.success) continue;
    const double cost =
        opt.timing_weight * out.timing + opt.congestion_weight * out.congestion;
    if (winner < 0 || cost < winner_cost) {
      winner = s;
      winner_cost = cost;
    }
  }

  if (winner >= 0) {
    StartOutcome& out = outcomes[static_cast<std::size_t>(winner)];
    result.offsets = std::move(out.offsets);
    result.placed = std::move(out.placed);
    result.timing_cost = out.timing;
    result.congestion_cost = out.congestion;
    result.backtracks = out.backtracks;
    result.stats.winner_start = winner;
    result.success = true;
  } else {
    // Every cost-driven start failed: pure packing fallback.
    for (const StartOutcome& out : outcomes) result.backtracks += out.backtracks;
    if (!first_fit_decreasing(in, result)) {
      result.stats.wall_seconds = wall.seconds();
      result.stats.cpu_seconds = cpu.seconds();
      return result;
    }
    const std::vector<bool> all_placed(n, true);
    const MacroCostTotals t = full_macro_costs(device, nets, result.placed, all_placed);
    result.timing_cost = t.timing;
    result.congestion_cost = t.congestion;
    result.stats.used_fallback = true;
    result.success = true;
    result.error.clear();
    LOG_DEBUG("place_macros: fell back to first-fit packing (%d backtracks)",
              result.backtracks);
  }
  result.stats.wall_seconds = wall.seconds();
  result.stats.cpu_seconds = cpu.seconds();
  return result;
}

}  // namespace fpgasim
