#include "place/macro_cost.h"

#include <algorithm>
#include <limits>

namespace fpgasim {
namespace {

/// Bounding box over the centers of the placed items of one net.
struct NetBox {
  int min_x = std::numeric_limits<int>::max();
  int max_x = std::numeric_limits<int>::min();
  int min_y = std::numeric_limits<int>::max();
  int max_y = std::numeric_limits<int>::min();
  int present = 0;

  void add(const TileCoord& c) {
    min_x = std::min(min_x, c.x);
    max_x = std::max(max_x, c.x);
    min_y = std::min(min_y, c.y);
    max_y = std::max(max_y, c.y);
    ++present;
  }
};

NetBox net_box(const MacroNet& net, const std::vector<Pblock>& placed,
               const std::vector<bool>& is_placed) {
  NetBox box;
  for (std::int32_t item : net.items) {
    if (!is_placed[static_cast<std::size_t>(item)]) continue;
    box.add(macro_center(placed[static_cast<std::size_t>(item)]));
  }
  return box;
}

}  // namespace

MacroCostTotals full_macro_costs(const Device& device, const std::vector<MacroNet>& nets,
                                 const std::vector<Pblock>& placed,
                                 const std::vector<bool>& is_placed) {
  MacroCostTotals totals;
  // Eq. (1): HPWL between component centers, weighted per net. Summed
  // into four stripes by net index (net n into stripe n % 4, absent nets
  // adding exactly 0.0), reduced as (s0+s1)+(s2+s3) — the incremental
  // kernel performs the identical sequence of additions, so the two paths
  // agree bit for bit.
  double stripes[4] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t n = 0; n < nets.size(); ++n) {
    const NetBox box = net_box(nets[n], placed, is_placed);
    stripes[n & 3] +=
        box.present >= 2
            ? nets[n].weight * ((box.max_x - box.min_x) + (box.max_y - box.min_y))
            : 0.0;
  }
  totals.timing = (stripes[0] + stripes[1]) + (stripes[2] + stripes[3]);
  // Eq. (2)/(3): tiles covered by more than one net bounding box,
  // normalized by the total covered area, on a coarse grid.
  const int gw = (device.width() + kMacroCostGrid - 1) / kMacroCostGrid;
  const int gh = (device.height() + kMacroCostGrid - 1) / kMacroCostGrid;
  std::vector<int> cover(static_cast<std::size_t>(gw) * gh, 0);
  int boxes = 0;
  for (const MacroNet& net : nets) {
    const NetBox box = net_box(net, placed, is_placed);
    if (box.present < 2) continue;
    ++boxes;
    for (int gx = box.min_x / kMacroCostGrid; gx <= box.max_x / kMacroCostGrid; ++gx) {
      for (int gy = box.min_y / kMacroCostGrid; gy <= box.max_y / kMacroCostGrid; ++gy) {
        ++cover[static_cast<std::size_t>(gy) * gw + gx];
      }
    }
  }
  if (boxes == 0) return totals;
  double overlaps = 0.0, covered = 0.0;
  for (int c : cover) {
    if (c > 0) covered += 1.0;
    if (c > 1) overlaps += c - 1;
  }
  totals.congestion = covered > 0.0 ? overlaps / covered : 0.0;
  return totals;
}

MacroCostModel::MacroCostModel(const Device& device, const std::vector<MacroNet>& nets,
                               std::size_t item_count, bool incremental)
    : device_(&device),
      nets_(&nets),
      incremental_(incremental),
      placed_(item_count),
      is_placed_(item_count, false),
      incidence_(item_count),
      present_(nets.size(), 0),
      box_(nets.size()),
      contribution_(nets.size(), 0.0),
      gw_((device.width() + kMacroCostGrid - 1) / kMacroCostGrid),
      gh_((device.height() + kMacroCostGrid - 1) / kMacroCostGrid),
      cover_(static_cast<std::size_t>(gw_) * gh_, 0) {
  for (std::size_t n = 0; n < nets.size(); ++n) {
    for (std::int32_t item : nets[n].items) {
      auto& list = incidence_[static_cast<std::size_t>(item)];
      const auto net_index = static_cast<std::int32_t>(n);
      if (std::find(list.begin(), list.end(), net_index) == list.end()) {
        list.push_back(net_index);
      }
    }
  }
}

void MacroCostModel::place(std::size_t item, const Pblock& at) {
  placed_[item] = at;
  is_placed_[item] = true;
  if (!incremental_) return;
  for (std::int32_t net : incidence_[item]) refresh_net(net);
}

void MacroCostModel::unplace(std::size_t item) {
  is_placed_[item] = false;
  if (!incremental_) return;
  for (std::int32_t net : incidence_[item]) refresh_net(net);
}

void MacroCostModel::refresh_net(std::int32_t net) {
  ++nets_touched_;
  const std::size_t idx = static_cast<std::size_t>(net);
  const MacroNet& macro_net = (*nets_)[idx];
  const NetBox nb = net_box(macro_net, placed_, is_placed_);
  present_[idx] = nb.present;
  GridBox next;  // stays empty when the net has fewer than two placed items
  if (nb.present >= 2) {
    contribution_[idx] =
        macro_net.weight * ((nb.max_x - nb.min_x) + (nb.max_y - nb.min_y));
    next = GridBox{nb.min_x / kMacroCostGrid, nb.max_x / kMacroCostGrid,
                   nb.min_y / kMacroCostGrid, nb.max_y / kMacroCostGrid};
  } else {
    contribution_[idx] = 0.0;
  }
  GridBox& prev = box_[idx];
  if (prev == next) return;
  // Candidate moves usually shift a box by a cell or two; touching only
  // the symmetric difference keeps the grid update proportional to the
  // change instead of the box area.
  update_difference(prev, next, -1);
  update_difference(next, prev, +1);
  boxes_ += static_cast<int>(!next.empty()) - static_cast<int>(!prev.empty());
  prev = next;
}

void MacroCostModel::update_rect(const GridBox& rect, int delta) {
  for (int gy = rect.y0; gy <= rect.y1; ++gy) {
    int* row = &cover_[static_cast<std::size_t>(gy) * gw_];
    for (int gx = rect.x0; gx <= rect.x1; ++gx) {
      int& cell = row[gx];
      if (delta > 0) {
        if (cell == 0) {
          ++covered_;
        } else {
          ++overlap_units_;
        }
        ++cell;
      } else {
        --cell;
        if (cell == 0) {
          --covered_;
        } else {
          --overlap_units_;
        }
      }
    }
  }
}

void MacroCostModel::update_difference(const GridBox& a, const GridBox& b, int delta) {
  if (a.empty()) return;
  const int ix0 = std::max(a.x0, b.x0), ix1 = std::min(a.x1, b.x1);
  const int iy0 = std::max(a.y0, b.y0), iy1 = std::min(a.y1, b.y1);
  if (b.empty() || ix0 > ix1 || iy0 > iy1) {
    update_rect(a, delta);
    return;
  }
  // Rows of `a` below and above the intersection, then the left/right
  // strips alongside it — four disjoint rectangles covering a \ b.
  if (a.y0 < iy0) update_rect(GridBox{a.x0, a.x1, a.y0, iy0 - 1}, delta);
  if (a.y1 > iy1) update_rect(GridBox{a.x0, a.x1, iy1 + 1, a.y1}, delta);
  if (a.x0 < ix0) update_rect(GridBox{a.x0, ix0 - 1, iy0, iy1}, delta);
  if (a.x1 > ix1) update_rect(GridBox{ix1 + 1, a.x1, iy0, iy1}, delta);
}

MacroCostTotals MacroCostModel::totals() {
  ++cost_evals_;
  if (!incremental_) {
    nets_touched_ += static_cast<long>(nets_->size());
    return full_macro_costs(*device_, *nets_, placed_, is_placed_);
  }
  MacroCostTotals totals;
  // Same four-stripe summation as the full path: net n adds into stripe
  // n % 4 in ascending net order (an exact 0.0 when fewer than two items
  // are placed), reduced as (s0+s1)+(s2+s3) — bit-identical doubles, and
  // the stripes break the FP latency chain of a flat sum.
  double stripes[4] = {0.0, 0.0, 0.0, 0.0};
  const double* c = contribution_.data();
  const std::size_t size = contribution_.size();
  std::size_t n = 0;
  for (; n + 4 <= size; n += 4) {
    stripes[0] += c[n];
    stripes[1] += c[n + 1];
    stripes[2] += c[n + 2];
    stripes[3] += c[n + 3];
  }
  for (; n < size; ++n) stripes[n & 3] += c[n];
  totals.timing = (stripes[0] + stripes[1]) + (stripes[2] + stripes[3]);
  if (boxes_ > 0 && covered_ > 0) {
    totals.congestion = static_cast<double>(overlap_units_) / static_cast<double>(covered_);
  }
  return totals;
}

}  // namespace fpgasim
