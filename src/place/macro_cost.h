// Cost models for the relocation placer (paper Sec. IV-B4, Eqs. (1)-(3)).
//
// Two evaluation paths with bit-identical results:
//   - full_macro_costs(): recomputes timing (HPWL) and congestion (coarse
//     tile-coverage overlap) over every net from scratch — the seed
//     placer's evaluation path, kept as the A/B reference;
//   - MacroCostModel: an incremental kernel that maintains an item->net
//     incidence index, per-net cached bounding boxes and a persistent
//     coarse coverage grid, so placing/unplacing an item touches only the
//     nets incident to it (and only the grid cells its box actually
//     gained or lost). totals() then sums cached per-net contributions and
//     reads integer coverage counters, reproducing the full recompute bit
//     for bit: integer bboxes/counters, and both paths perform the same
//     striped sequence of double additions in ascending net index (absent
//     nets contribute exactly 0.0).
//
// Precondition shared with the seed path: placed footprints lie on the
// device (their centers index the coverage grid unclamped) and net
// weights are non-negative.
#pragma once

#include <cstdint>
#include <vector>

#include "fabric/device.h"
#include "place/macro_placer.h"

namespace fpgasim {

/// Coarse congestion-grid cell size in tiles (Eq. (2) discretization).
inline constexpr int kMacroCostGrid = 8;

inline TileCoord macro_center(const Pblock& block) {
  return TileCoord{(block.x0 + block.x1) / 2, (block.y0 + block.y1) / 2};
}

struct MacroCostTotals {
  double timing = 0.0;      // Eq. (1): weighted inter-component HPWL
  double congestion = 0.0;  // Eq. (3): normalized coverage overlap
};

/// Full recompute over all nets and a freshly built coverage grid. Nets
/// with fewer than two placed items contribute exactly 0.0 (no bbox
/// sentinels leak into the cost).
MacroCostTotals full_macro_costs(const Device& device, const std::vector<MacroNet>& nets,
                                 const std::vector<Pblock>& placed,
                                 const std::vector<bool>& is_placed);

class MacroCostModel {
 public:
  /// `incremental == false` keeps the same place/unplace interface but
  /// routes totals() through full_macro_costs (the A/B baseline).
  MacroCostModel(const Device& device, const std::vector<MacroNet>& nets,
                 std::size_t item_count, bool incremental);

  /// Marks `item` placed at `at`, refreshing the incident nets' caches.
  void place(std::size_t item, const Pblock& at);
  /// Marks `item` unplaced, refreshing the incident nets' caches.
  void unplace(std::size_t item);

  /// Current costs of the placed subset; counts as one cost evaluation.
  MacroCostTotals totals();

  const std::vector<Pblock>& placed() const { return placed_; }
  const std::vector<bool>& is_placed() const { return is_placed_; }
  /// Net indices each item participates in (deduplicated, net order).
  const std::vector<std::vector<std::int32_t>>& incidence() const { return incidence_; }

  long cost_evals() const { return cost_evals_; }
  long nets_touched() const { return nets_touched_; }

 private:
  /// Inclusive coverage-grid rectangle; empty when x0 > x1.
  struct GridBox {
    int x0 = 0, x1 = -1, y0 = 0, y1 = -1;
    bool empty() const { return x0 > x1; }
    friend bool operator==(const GridBox&, const GridBox&) = default;
  };

  void refresh_net(std::int32_t net);
  void update_rect(const GridBox& rect, int delta);
  /// Applies `delta` to the cells of `a` that are not in `b`.
  void update_difference(const GridBox& a, const GridBox& b, int delta);

  const Device* device_;
  const std::vector<MacroNet>* nets_;
  bool incremental_;
  std::vector<Pblock> placed_;
  std::vector<bool> is_placed_;
  std::vector<std::vector<std::int32_t>> incidence_;
  std::vector<int> present_;          // placed item occurrences per net
  std::vector<GridBox> box_;          // covered grid cells per net
  std::vector<double> contribution_;  // weight * HPWL (0.0 when present < 2)
  int gw_ = 0, gh_ = 0;
  std::vector<int> cover_;   // persistent coarse coverage grid
  int boxes_ = 0;            // nets currently contributing a box
  long covered_ = 0;         // grid cells with cover > 0
  long overlap_units_ = 0;   // sum of (cover - 1) over cells with cover > 1
  long cost_evals_ = 0;
  long nets_touched_ = 0;
};

}  // namespace fpgasim
