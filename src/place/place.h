// Placement engines.
//
// * SaPlacer: simulated-annealing min-HPWL placement of items (cells or
//   clusters) onto a bin grid with per-resource capacities. Used both by
//   the monolithic baseline flow (whole device, clustered) and by the OOC
//   function-optimization flow (single-tile bins inside a pblock).
// * cluster_netlist: connectivity-driven clustering for large flat designs.
// * assign_cells_to_tiles: refine an item placement into per-cell tile
//   coordinates for STA and routing.
#pragma once

#include <cstdint>
#include <vector>

#include "fabric/device.h"
#include "fabric/pblock.h"
#include "netlist/netlist.h"
#include "netlist/phys.h"

namespace fpgasim {

/// One placeable object (a cell or a cluster of cells).
struct PlaceItem {
  ResourceVec res;
  bool fixed = false;  // pre-assigned bin (port terminals, locked cells)
  int fixed_x = -1;    // tile coords when fixed
  int fixed_y = -1;
};

/// Connectivity between items: each net lists the item ids it touches.
/// Weight scales its HPWL contribution (e.g. timing criticality).
struct PlaceNet {
  std::vector<std::int32_t> items;
  double weight = 1.0;
};

struct SaOptions {
  Pblock region;            // placement area (tile coords)
  int bin_tiles = 1;        // bin edge length in tiles
  double moves_per_item = 160.0;
  double initial_accept = 0.35;  // loose start temperature calibration
  double fill_limit = 1.0;       // fraction of bin capacity usable
  std::uint64_t seed = 1;
};

struct SaResult {
  std::vector<int> item_bin;  // bin index per item
  int bins_x = 0;
  int bins_y = 0;
  double final_cost = 0.0;
  double final_hpwl = 0.0;
  std::size_t moves = 0;

  /// Center tile of a bin.
  TileCoord bin_center(const SaOptions& opt, int bin) const;
};

/// Runs annealing. Items marked fixed are pinned to the bin containing
/// (fixed_x, fixed_y). Throws std::runtime_error if the region cannot hold
/// the items at all.
SaResult place_sa(const Device& device, const std::vector<PlaceItem>& items,
                  const std::vector<PlaceNet>& nets, const SaOptions& opt);

// ---------------------------------------------------------------------------

struct Clustering {
  std::vector<std::int32_t> cell_cluster;  // cluster id per cell
  std::size_t num_clusters = 0;
};

/// Groups cells into connectivity-coherent clusters of roughly
/// `target_size` cells (BFS seeding over the netlist graph). DSP and BRAM
/// cells are kept in the clusters of their neighbours.
Clustering cluster_netlist(const Netlist& netlist, int target_size);

/// Builds the item/net model for place_sa from a netlist + clustering.
/// Pass an identity clustering (target_size == 1) for cell-level placement.
void build_place_model(const Netlist& netlist, const Clustering& clustering,
                       std::vector<PlaceItem>& items, std::vector<PlaceNet>& nets);

/// Distributes each cell into a concrete tile inside its item's bin,
/// respecting tile capacities; spills to the nearest tile with space.
/// Fills phys.cell_loc (resizing it for the netlist first).
void assign_cells_to_tiles(const Device& device, const Netlist& netlist,
                           const Clustering& clustering, const SaResult& placement,
                           const SaOptions& opt, PhysState& phys);

}  // namespace fpgasim
