// Relocation placer for pre-implemented components (paper Sec. IV-B4,
// Algorithm 1, Eqs. (1)-(3)).
//
// Each component arrives placed-and-routed inside its pblock; legal
// positions are the column-compatible anchors computed by the fabric
// layer. Components are placed in BFS order over the architecture DFG; an
// anchor is accepted when the combined timing (HPWL) and congestion
// (tile-overlap) cost is below threshold, otherwise previously placed
// components are unplaced and retried (bounded backtracking).
//
// The placer runs several independent starts (the three anchor-ranking
// modes plus seed-perturbed BFS orders) concurrently on the work-stealing
// ThreadPool; the winner is selected by a deterministic (success, cost,
// start index) key, so results are byte-identical at any pool width.
// Candidate anchors are evaluated with an incremental cost kernel
// (place/macro_cost.h) and an O(1) tile-occupancy overlap test; the seed
// full-recompute path stays available behind `incremental = false` and
// produces bit-identical placements.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fabric/device.h"
#include "fabric/pblock.h"

namespace fpgasim {

class ThreadPool;

struct MacroItem {
  std::string name;
  Pblock footprint;  // at the coordinates the component was implemented in
};

/// Component-level connection (stream edges of the DFG).
struct MacroNet {
  std::vector<std::int32_t> items;
  double weight = 1.0;
};

struct MacroPlaceOptions {
  std::uint64_t seed = 1;
  double timing_weight = 1.0;
  double congestion_weight = 24.0;
  double accept_threshold = 48.0;  // per-component cost gate (Sec. IV-B4)
  int max_candidates = 1600;       // anchors evaluated per component
  int max_backtracks = 96;         // unplace-and-retry budget per start
  /// Incremental cost kernel; false selects the seed full-recompute path
  /// (A/B reference — placements and costs are bit-identical either way).
  bool incremental = true;
  /// Seed-perturbed BFS starts run in addition to the 3 ranking modes.
  int perturbed_starts = 3;
  /// Multi-start concurrency (the global pool when null). Any width
  /// yields byte-identical results; width 1 runs the starts serially.
  ThreadPool* pool = nullptr;
};

/// Placement observability: work counters aggregated over every start (in
/// start order, so they are deterministic at any pool width).
struct PlaceStats {
  long cost_evals = 0;     // candidate cost evaluations (kernel totals())
  long nets_touched = 0;   // per-net cost-cache refreshes / full-path scans
  long overlap_tests = 0;  // occupancy-grid rectangle probes
  int starts = 0;          // multi-start attempts
  int winner_start = -1;   // winning start index (-1: packing fallback)
  bool used_fallback = false;  // first-fit-decreasing produced the result
  std::vector<int> backtracks_per_start;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;

  /// One-line rendering for the flow logs.
  std::string summary() const;
};

struct MacroPlaceResult {
  bool success = false;
  std::vector<std::pair<int, int>> offsets;  // (dx, dy) per item
  std::vector<Pblock> placed;                // translated footprints
  double timing_cost = 0.0;      // Eq. (1): sum of inter-component HPWL
  double congestion_cost = 0.0;  // Eq. (3): normalized overlap coefficient
  int backtracks = 0;            // backtracks of the winning start
  PlaceStats stats;
  std::string error;
};

MacroPlaceResult place_macros(const Device& device, const std::vector<MacroItem>& items,
                              const std::vector<MacroNet>& nets,
                              const MacroPlaceOptions& opt = MacroPlaceOptions{});

}  // namespace fpgasim
