// Relocation placer for pre-implemented components (paper Sec. IV-B4,
// Algorithm 1, Eqs. (1)-(3)).
//
// Each component arrives placed-and-routed inside its pblock; legal
// positions are the column-compatible anchors computed by the fabric
// layer. Components are placed in BFS order over the architecture DFG; an
// anchor is accepted when the combined timing (HPWL) and congestion
// (tile-overlap) cost is below threshold, otherwise previously placed
// components are unplaced and retried (bounded backtracking).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fabric/device.h"
#include "fabric/pblock.h"

namespace fpgasim {

struct MacroItem {
  std::string name;
  Pblock footprint;  // at the coordinates the component was implemented in
};

/// Component-level connection (stream edges of the DFG).
struct MacroNet {
  std::vector<std::int32_t> items;
  double weight = 1.0;
};

struct MacroPlaceOptions {
  std::uint64_t seed = 1;
  double timing_weight = 1.0;
  double congestion_weight = 24.0;
  double accept_threshold = 48.0;  // per-component cost gate (Sec. IV-B4)
  int max_candidates = 1600;       // anchors evaluated per component
  int max_backtracks = 96;
};

struct MacroPlaceResult {
  bool success = false;
  std::vector<std::pair<int, int>> offsets;  // (dx, dy) per item
  std::vector<Pblock> placed;                // translated footprints
  double timing_cost = 0.0;      // Eq. (1): sum of inter-component HPWL
  double congestion_cost = 0.0;  // Eq. (3): normalized overlap coefficient
  int backtracks = 0;
  std::string error;
};

MacroPlaceResult place_macros(const Device& device, const std::vector<MacroItem>& items,
                              const std::vector<MacroNet>& nets,
                              const MacroPlaceOptions& opt = MacroPlaceOptions{});

}  // namespace fpgasim
