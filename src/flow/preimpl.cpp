#include "flow/preimpl.h"

#include <iterator>
#include <stdexcept>

#include "flow/build.h"
#include "sim/compiled.h"
#include "util/log.h"
#include "util/timer.h"

namespace fpgasim {

PreImplReport run_preimpl_flow(const Device& device, const ComponentGraph& graph,
                               ComposedDesign& out, const PreImplOptions& opt) {
  if (graph.nodes.empty()) throw std::invalid_argument("run_preimpl_flow: empty graph");
  const int output_node =
      graph.output_node >= 0 ? graph.output_node : static_cast<int>(graph.nodes.size()) - 1;
  PreImplReport report;
  Stopwatch total;
  CpuStopwatch total_cpu;

  // DRC gate: verifies the design between stages and throws on errors.
  const auto drc_gate = [&](unsigned stages, DrcReport& into, const char* where) {
    if (!opt.drc) return;
    Stopwatch watch;
    DrcContext ctx;
    ctx.netlist = &out.netlist;
    ctx.phys = &out.phys;
    ctx.device = &device;
    ctx.instances = out.drc_instances();
    ctx.channel_capacity = opt.route.channel_capacity;
    into = run_drc(ctx, stages, opt.drc_options);
    report.drc_seconds += watch.seconds();
    enforce_drc(into, where);
  };

  // Architecture composition: fill black boxes, insert the stream nets.
  Stopwatch stage;
  Composer composer("preimpl_top");
  for (std::size_t i = 0; i < graph.nodes.size(); ++i) {
    const Checkpoint* node = graph.nodes[i];
    composer.add_instance(*node,
                          i < graph.names.size() ? graph.names[i]
                                                 : "inst" + std::to_string(i),
                          i);
    report.function_opt_seconds += node->meta.implement_seconds;
    if (node->meta.fmax_mhz > 0.0 &&
        (report.slowest_component_mhz == 0.0 ||
         node->meta.fmax_mhz < report.slowest_component_mhz)) {
      report.slowest_component_mhz = node->meta.fmax_mhz;
      report.slowest_component = node->netlist.name();
    }
  }
  for (const StreamEdge& e : graph.edges) {
    composer.connect(e.from, e.to, e.to_port, e.from_port);
  }
  composer.expose_input(graph.input_node);
  composer.expose_output(output_node);
  out = std::move(composer).finish();
  report.stitch_seconds = stage.seconds();
  drc_gate(kDrcStructural, report.drc_compose, "preimpl after compose");

  // Component placement: relocation of locked pblocks (Algorithm 1).
  stage.restart();
  MacroPlaceOptions macro_opt = opt.macro;
  macro_opt.seed = opt.seed;
  report.macro = place_macros(device, out.macro_items(), out.macro_nets, macro_opt);
  if (!report.macro.success) {
    throw std::runtime_error("pre-implemented flow: " + report.macro.error);
  }
  for (std::size_t i = 0; i < out.instances.size(); ++i) {
    out.translate_instance(i, report.macro.offsets[i].first,
                           report.macro.offsets[i].second);
  }
  report.place_seconds = stage.seconds();
  LOG_DEBUG("preimpl place: %s", report.macro.stats.summary().c_str());
  drc_gate(kDrcStructural | kDrcPlacement, report.drc_place, "preimpl after placement");

  // Inter-component routing: only the stitched nets are open; everything
  // inside the components is locked and merely charges wire usage.
  stage.restart();
  RouteOptions route_opt = opt.route;
  route_opt.seed = opt.seed;
  report.route = route_design(device, out.netlist, out.phys, route_opt);
  if (!report.route.success) {
    throw std::runtime_error("pre-implemented flow: routing failed: " + report.route.error);
  }
  report.route_seconds = stage.seconds();
  LOG_DEBUG("preimpl route: %zu nets, %d iterations [%s]", report.route.nets_routed,
            report.route.iterations, report.route.iteration_summary().c_str());
  drc_gate(kDrcStructural | kDrcPlacement | kDrcRouting, report.drc, "preimpl after routing");

  if (opt.lint) {
    // fpgalint gate: dataflow analysis over the final composed netlist,
    // stitch-boundary aware through the instance ranges.
    stage.restart();
    lint::LintOptions lint_opt = opt.lint_options;
    lint_opt.instances.clear();
    for (const ComposedDesign::Instance& inst : out.instances) {
      lint_opt.instances.push_back(
          {inst.name, inst.cell_offset, inst.cell_end, inst.net_offset, inst.net_end});
    }
    report.lint = lint::run(out.netlist, lint_opt);
    report.lint_seconds = stage.seconds();
    LOG_DEBUG("preimpl lint: %s (%.3fs wall, %.3fs cpu)", report.lint.summary().c_str(),
              report.lint.wall_seconds, report.lint.cpu_seconds);
    lint::enforce(report.lint, "preimpl after routing");
  }

  if (opt.compiled_verify) {
    // Compiled-verify gate: A/B the final composed netlist through the
    // levelized bit-parallel simulator against the interpreter oracle on
    // a sample of the 64-wide batch. Any bit divergence aborts the flow.
    stage.restart();
    static constexpr int kVerifyLanes[] = {0, 21, 42, 63};
    const std::string diff = compare_compiled_vs_interpreter(
        out.netlist, opt.compiled_verify_cycles, opt.seed, kVerifyLanes);
    report.compiled_verify_seconds = stage.seconds();
    report.compiled_verify_ok = diff.empty();
    if (!diff.empty()) {
      throw std::runtime_error("preimpl compiled-verify: " + diff);
    }
    LOG_DEBUG("preimpl compiled-verify: ok, %d cycles x %zu lanes (%.3fs)",
              opt.compiled_verify_cycles, std::size(kVerifyLanes),
              report.compiled_verify_seconds);
  }

  stage.restart();
  report.timing = run_sta(out.netlist, out.phys, device);
  report.sta_seconds = stage.seconds();

  report.stats = out.netlist.stats();
  report.total_seconds = total.seconds();
  report.total_cpu_seconds = total_cpu.seconds();
  LOG_DEBUG("preimpl '%s': %s, %.2fs online (stitch %.0f%%, place %.2f, route %.2f)",
            out.netlist.name().c_str(), report.timing.summary().c_str(),
            report.total_seconds, report.stitch_fraction() * 100.0, report.place_seconds,
            report.route_seconds);
  return report;
}

PreImplReport run_preimpl_flow(const Device& device,
                               const std::vector<const Checkpoint*>& chain,
                               const std::vector<std::string>& instance_names,
                               ComposedDesign& out, const PreImplOptions& opt) {
  ComponentGraph graph;
  graph.nodes = chain;
  graph.names = instance_names;
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    graph.edges.push_back(StreamEdge{static_cast<int>(i), static_cast<int>(i + 1), 0, 0});
  }
  return run_preimpl_flow(device, graph, out, opt);
}

PreImplReport run_preimpl_cnn(const Device& device, const CnnModel& model,
                              const ModelImpl& impl,
                              const std::vector<std::vector<int>>& groups,
                              const CheckpointDb& db, ComposedDesign& out,
                              const PreImplOptions& opt, std::uint64_t seed_base) {
  return run_preimpl_cnn(
      device, model, impl, groups,
      [&db](const std::string& key) { return db.get(key); }, out, opt, seed_base);
}

PreImplReport run_preimpl_cnn(const Device& device, const CnnModel& model,
                              const ModelImpl& impl,
                              const std::vector<std::vector<int>>& groups,
                              const ComponentLookup& lookup, ComposedDesign& out,
                              const PreImplOptions& opt, std::uint64_t seed_base) {
  // Component extraction + matching (BFS over the DFG): every group and
  // every required stream fork must resolve to a pre-built checkpoint.
  const GroupGraph group_graph = build_group_graph(model, groups);
  const ComponentDfg dfg = expand_group_graph(group_graph);
  ComponentGraph graph;
  for (std::size_t n = 0; n < dfg.nodes.size(); ++n) {
    const ComponentDfg::Node& node = dfg.nodes[n];
    if (node.group_index >= 0) {
      const std::vector<int>& group = groups[static_cast<std::size_t>(node.group_index)];
      const std::string key = group_signature(model, impl, group, seed_base);
      const Checkpoint* checkpoint = lookup(key);
      if (checkpoint == nullptr) {
        // Spell out which layers the unmatched group contains: the
        // signature alone is too opaque to act on.
        std::string layers;
        for (int idx : group) {
          const Layer& layer = model.layers()[static_cast<std::size_t>(idx)];
          if (!layers.empty()) layers += ", ";
          layers += layer.name;
          layers += " (";
          layers += to_string(layer.kind);
          layers += ")";
        }
        throw std::runtime_error("component matching failed for group [" + layers +
                                 "]: no checkpoint for '" + key +
                                 "' (run prepare_component_db first)");
      }
      graph.nodes.push_back(checkpoint);
      graph.names.push_back(checkpoint->netlist.name());
    } else {
      const std::string key = fork_signature(node.branches);
      const Checkpoint* checkpoint = lookup(key);
      if (checkpoint == nullptr) {
        throw std::runtime_error("component matching failed: no checkpoint for the " +
                                 std::to_string(node.branches) + "-way stream fork '" +
                                 key + "' (run prepare_component_db first)");
      }
      graph.nodes.push_back(checkpoint);
      // Fork checkpoints are shared across fan-out sites; suffix the node
      // index so instance names stay unique.
      graph.names.push_back(checkpoint->netlist.name() + "_" + std::to_string(n));
    }
  }
  graph.edges = dfg.edges;
  graph.input_node = dfg.input_node;
  graph.output_node = dfg.output_node;
  return run_preimpl_flow(device, graph, out, opt);
}

}  // namespace fpgasim
