#include "flow/monolithic.h"

#include <algorithm>
#include <iterator>
#include <stdexcept>

#include "place/place.h"
#include "sim/compiled.h"
#include "util/log.h"
#include "util/timer.h"

namespace fpgasim {
namespace {

TileCoord midpoint(TileCoord a, TileCoord b) {
  return TileCoord{(a.x + b.x) / 2, (a.y + b.y) / 2};
}

}  // namespace

MonoReport run_monolithic_flow(const Device& device, Netlist& netlist, PhysState& phys,
                               const MonoOptions& opt) {
  MonoReport report;
  Stopwatch total;
  CpuStopwatch total_cpu;

  // DRC gate: verifies the design between stages and throws on errors.
  const auto drc_gate = [&](unsigned stages, DrcReport& into, const char* where) {
    if (!opt.drc) return;
    Stopwatch watch;
    DrcContext ctx;
    ctx.netlist = &netlist;
    ctx.phys = &phys;
    ctx.device = &device;
    ctx.channel_capacity = opt.route.channel_capacity;
    into = run_drc(ctx, stages, opt.drc_options);
    report.drc_seconds += watch.seconds();
    enforce_drc(into, where);
  };

  // Clustering + placement over the whole device.
  Stopwatch stage;
  const Clustering clustering = cluster_netlist(netlist, opt.cluster_size);
  std::vector<PlaceItem> items;
  std::vector<PlaceNet> nets;
  build_place_model(netlist, clustering, items, nets);
  report.cluster_seconds = stage.seconds();

  stage.restart();
  SaOptions sa;
  // Like a commercial placer, pack the design into a region sized to its
  // demand instead of scattering it across the die.
  const ResourceVec demand = netlist.stats().resources;
  const ResourceVec padded{demand.lut * 3 / 2 + 64, demand.ff * 3 / 2 + 64,
                           demand.carry * 3 / 2 + 8, demand.dsp * 5 / 4 + 1,
                           demand.bram * 5 / 4 + 1};
  const auto region = find_min_pblock(device, padded);
  sa.region = region.has_value() ? *region
                                 : Pblock{0, 0, device.width() - 1, device.height() - 1};
  sa.bin_tiles = 4;
  sa.moves_per_item = opt.moves_per_item;
  sa.seed = opt.seed;
  const SaResult placement = place_sa(device, items, nets, sa);
  assign_cells_to_tiles(device, netlist, clustering, placement, sa, phys);
  report.place_seconds = stage.seconds();
  drc_gate(kDrcStructural | kDrcPlacement, report.drc_place, "monolithic after placement");

  // Full routing.
  stage.restart();
  RouteOptions route_opt = opt.route;
  route_opt.seed = opt.seed;
  report.route = route_design(device, netlist, phys, route_opt);
  report.route_seconds = stage.seconds();
  LOG_DEBUG("monolithic route: %zu nets, %d iterations [%s]", report.route.nets_routed,
            report.route.iterations, report.route.iteration_summary().c_str());

  stage.restart();
  report.timing = run_sta(netlist, phys, device);
  report.sta_seconds = stage.seconds();

  if (opt.phys_opt) {
    stage.restart();
    // Pass 1: register insertion on wire-dominated connections. The
    // threshold keys off the achieved critical path: connections whose
    // wire delay alone eats most of the clock period get a pipeline FF at
    // the route midpoint (increases registers and latency, recovers Fmax;
    // Sec. V-E of the paper observes exactly this trade).
    const double threshold = std::max(0.8, 0.40 * report.timing.critical_path_ns);
    const std::size_t insert_cap = std::max<std::size_t>(64, netlist.net_count() / 50);
    struct Insertion {
      NetId net;
      std::size_t sink_index;
    };
    std::vector<Insertion> insertions;
    for (NetId n = 0; n < netlist.net_count() && insertions.size() < insert_cap; ++n) {
      const RouteInfo& route = phys.routes[n];
      if (!route.routed) continue;
      for (std::size_t s = 0; s < route.sink_delays_ns.size(); ++s) {
        if (route.sink_delays_ns[s] > threshold) {
          insertions.push_back({n, s});
          break;  // one insertion per net is enough to split the route
        }
      }
    }
    for (const Insertion& ins : insertions) {
      Net& net = netlist.net(ins.net);
      if (ins.sink_index >= net.sinks.size()) continue;
      const auto [sink_cell, sink_pin] = net.sinks[ins.sink_index];
      const TileCoord driver_loc =
          net.driver != kInvalidCell ? phys.cell_loc[net.driver] : kUnplaced;
      const TileCoord sink_loc = phys.cell_loc[sink_cell];

      Cell ff;
      ff.type = CellType::kFf;
      ff.width = net.width;
      ff.name = "physopt_ff";
      const CellId ff_id = netlist.add_cell(std::move(ff));
      const NetId piped = netlist.add_net(net.width, "physopt_net");
      // Rewire: net -> FF -> sink.
      netlist.net(ins.net).sinks.erase(netlist.net(ins.net).sinks.begin() +
                                       static_cast<std::ptrdiff_t>(ins.sink_index));
      netlist.connect_input(ff_id, 0, ins.net);
      netlist.connect_output(ff_id, 0, piped);
      netlist.cell(sink_cell).inputs[sink_pin] = piped;
      netlist.net(piped).sinks.emplace_back(sink_cell, sink_pin);

      phys.resize_for(netlist);
      phys.cell_loc[ff_id] = (driver_loc == kUnplaced || sink_loc == kUnplaced)
                                 ? sink_loc
                                 : midpoint(driver_loc, sink_loc);
      phys.routes[ins.net] = RouteInfo{};  // reroute the modified net
      ++report.inserted_ffs;
    }

    // Pass 2: driver replication on very wide fanout (LUT replication the
    // way commercial phys_opt duplicates registers/LUTs on spread designs).
    const std::size_t cell_count_snapshot = netlist.cell_count();
    for (CellId c = 0; c < cell_count_snapshot; ++c) {
      // Copy up front: add_cell below may reallocate the cell vector.
      const Cell cell = netlist.cell(c);
      if (cell.type != CellType::kLut || cell.outputs.empty() ||
          cell.outputs[0] == kInvalidNet) {
        continue;
      }
      const NetId out = cell.outputs[0];
      if (netlist.net(out).sinks.size() <= static_cast<std::size_t>(opt.replication_fanout)) {
        continue;
      }
      // Clone the driver; move the second half of the sinks to the clone.
      Cell clone = cell;
      clone.name += "_rep";
      clone.outputs.clear();
      clone.inputs.clear();
      const CellId clone_id = netlist.add_cell(std::move(clone));
      for (std::size_t pin = 0; pin < cell.inputs.size(); ++pin) {
        const NetId in = cell.inputs[pin];
        if (in != kInvalidNet) {
          netlist.connect_input(clone_id, static_cast<std::uint16_t>(pin), in);
          phys.routes[in] = RouteInfo{};  // gained a sink: reroute
        }
      }
      const NetId out2 = netlist.add_net(netlist.net(out).width, cell.name + "_rep");
      netlist.connect_output(clone_id, 0, out2);
      Net& original = netlist.net(out);
      const std::size_t half = original.sinks.size() / 2;
      for (std::size_t s = half; s < original.sinks.size(); ++s) {
        const auto [sink_cell, sink_pin] = original.sinks[s];
        netlist.cell(sink_cell).inputs[sink_pin] = out2;
        netlist.net(out2).sinks.emplace_back(sink_cell, sink_pin);
      }
      original.sinks.resize(half);
      phys.resize_for(netlist);
      phys.cell_loc[clone_id] = phys.cell_loc[c];
      phys.routes[out] = RouteInfo{};
      ++report.replicated_drivers;
    }

    // Incremental reroute of the modified nets + final STA.
    if (report.inserted_ffs > 0 || report.replicated_drivers > 0) {
      RouteOptions rr = opt.route;
      rr.seed = opt.seed + 1;
      report.route = route_design(device, netlist, phys, rr);
      report.timing = run_sta(netlist, phys, device);
    }
    report.phys_opt_seconds = stage.seconds();
  }

  drc_gate(kDrcStructural | kDrcPlacement | kDrcRouting, report.drc,
           "monolithic after routing");

  if (opt.lint) {
    stage.restart();
    report.lint = lint::run(netlist, opt.lint_options);
    report.lint_seconds = stage.seconds();
    LOG_DEBUG("monolithic lint: %s (%.3fs wall, %.3fs cpu)", report.lint.summary().c_str(),
              report.lint.wall_seconds, report.lint.cpu_seconds);
    lint::enforce(report.lint, "monolithic after routing");
  }

  if (opt.compiled_verify) {
    // Compiled-verify gate: A/B the final (post-phys-opt) netlist through
    // the compiled bit-parallel simulator against the interpreter oracle.
    stage.restart();
    static constexpr int kVerifyLanes[] = {0, 21, 42, 63};
    const std::string diff = compare_compiled_vs_interpreter(
        netlist, opt.compiled_verify_cycles, opt.seed, kVerifyLanes);
    report.compiled_verify_seconds = stage.seconds();
    report.compiled_verify_ok = diff.empty();
    if (!diff.empty()) {
      throw std::runtime_error("monolithic compiled-verify: " + diff);
    }
    LOG_DEBUG("monolithic compiled-verify: ok, %d cycles x %zu lanes (%.3fs)",
              opt.compiled_verify_cycles, std::size(kVerifyLanes),
              report.compiled_verify_seconds);
  }

  report.stats = netlist.stats();
  report.total_seconds = total.seconds();
  report.total_cpu_seconds = total_cpu.seconds();
  LOG_DEBUG("monolithic '%s': %s, %.2fs total (place %.2f route %.2f physopt %.2f)",
            netlist.name().c_str(), report.timing.summary().c_str(), report.total_seconds,
            report.place_seconds, report.route_seconds, report.phys_opt_seconds);
  return report;
}

}  // namespace fpgasim
