// Architecture optimization (paper Sec. IV-B): the fully automated stage
// that turns a chain of pre-implemented checkpoints into a working
// accelerator — component extraction/matching against the database,
// black-box stitching, relocation placement (Alg. 1) and inter-component
// routing. Stage wall times feed Fig. 6 (and the 5%/9% stitching share).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cnn/impl.h"
#include "cnn/model.h"
#include "fabric/device.h"
#include "flow/checkpoint_db.h"
#include "flow/compose.h"
#include "lint/lint.h"
#include "place/macro_placer.h"
#include "route/router.h"
#include "timing/sta.h"

namespace fpgasim {

struct PreImplOptions {
  std::uint64_t seed = 1;
  MacroPlaceOptions macro;
  RouteOptions route;
  bool drc = true;         // run the DRC gate after compose/place/route
  DrcOptions drc_options;  // waivers forwarded to every gate
  /// Opt-in fpgalint gate: dataflow static analysis (comb loops, dead
  /// logic, const/X propagation, stitch-boundary widths) over the final
  /// composed netlist. Throws on error findings.
  bool lint = false;
  lint::LintOptions lint_options;  // waivers; instances filled by the flow
  /// Opt-in compiled-verify gate: A/B the final composed netlist through
  /// the compiled bit-parallel simulator against the interpreter oracle
  /// (sampled lanes of a 64-wide batch, seeded random stimulus). Throws
  /// on any bit divergence.
  bool compiled_verify = false;
  int compiled_verify_cycles = 24;
};

struct PreImplReport {
  // Architecture-optimization stage times (online).
  double stitch_seconds = 0.0;  // extraction + matching + composition
  double place_seconds = 0.0;   // component relocation placement
  double route_seconds = 0.0;   // inter-component routing
  double sta_seconds = 0.0;
  double total_seconds = 0.0;      // wall time of the online stage
  double total_cpu_seconds = 0.0;  // process CPU time over the same span
  // Offline function-optimization time recorded in the checkpoints used
  // (performed exactly once per unique component; reported separately).
  double function_opt_seconds = 0.0;

  NetlistStats stats;
  TimingResult timing;
  RouteResult route;
  MacroPlaceResult macro;

  // DRC gate results (all empty when PreImplOptions::drc is false).
  double drc_seconds = 0.0;
  DrcReport drc_compose;  // structural subset, after stitching
  DrcReport drc_place;    // + placement legality, after relocation
  DrcReport drc;          // full check, after inter-component routing

  // fpgalint gate result over the final composed netlist (empty when
  // PreImplOptions::lint is false); lint_seconds also counts inside
  // total_seconds like the DRC gate.
  double lint_seconds = 0.0;
  lint::LintReport lint;

  // Compiled-verify gate (false/0 when PreImplOptions::compiled_verify is
  // off; the gate throws on divergence, so a finished flow implies ok).
  double compiled_verify_seconds = 0.0;
  bool compiled_verify_ok = false;

  double slowest_component_mhz = 0.0;
  std::string slowest_component;

  /// The paper's observation: stitching is a small share of the flow.
  double stitch_fraction() const {
    return total_seconds > 0.0 ? stitch_seconds / total_seconds : 0.0;
  }
};

/// A component DAG of pre-implemented checkpoints, ready to stitch:
/// node i is instantiated as `names[i]` (falls back to "inst<i>" when the
/// name list is short), `edges` are the stream edges, `input_node` /
/// `output_node` expose the design boundary (`output_node == -1` means the
/// last node). Checkpoints must stay alive through the flow.
struct ComponentGraph {
  std::vector<const Checkpoint*> nodes;
  std::vector<std::string> names;
  std::vector<StreamEdge> edges;
  int input_node = 0;
  int output_node = -1;
};

/// Runs the pre-implemented flow over a component DAG: black-box stitching
/// along the stream edges, relocation placement over the real DFG
/// macro-nets, inter-component routing, STA — each stage DRC-gated. The
/// composed design is returned through `out` for further use (simulation,
/// inspection).
PreImplReport run_preimpl_flow(const Device& device, const ComponentGraph& graph,
                               ComposedDesign& out, const PreImplOptions& opt = {});

/// Chain-shaped wrapper for linear designs: equivalent to a ComponentGraph
/// whose edges connect consecutive checkpoints.
PreImplReport run_preimpl_flow(const Device& device,
                               const std::vector<const Checkpoint*>& chain,
                               const std::vector<std::string>& instance_names,
                               ComposedDesign& out, const PreImplOptions& opt = {});

/// Component source for run_preimpl_cnn: resolves a database key
/// (group_signature / fork_signature) to a pre-implemented checkpoint, or
/// nullptr when no match exists. Returned pointers must stay alive through
/// the flow (the CheckpointDb overload guarantees this; a CheckpointStore
/// client pins the shared_ptrs for the session).
using ComponentLookup = std::function<const Checkpoint*(const std::string& key)>;

/// CNN front end: matches each group (and the stream forks of branching
/// models) against the database (component matching, BFS over the DFG) and
/// runs the flow over the resulting component graph.
PreImplReport run_preimpl_cnn(const Device& device, const CnnModel& model,
                              const ModelImpl& impl,
                              const std::vector<std::vector<int>>& groups,
                              const CheckpointDb& db, ComposedDesign& out,
                              const PreImplOptions& opt = {},
                              std::uint64_t seed_base = 1000);

/// Same flow with an arbitrary component source (the CompileService
/// resolves against the content-addressed CheckpointStore through this).
PreImplReport run_preimpl_cnn(const Device& device, const CnnModel& model,
                              const ModelImpl& impl,
                              const std::vector<std::vector<int>>& groups,
                              const ComponentLookup& lookup, ComposedDesign& out,
                              const PreImplOptions& opt = {},
                              std::uint64_t seed_base = 1000);

}  // namespace fpgasim
