// Bridges CNN models to the synthesis generators: builds per-group
// component netlists (granularity exploration output), computes component
// signatures for database reuse, and pre-populates the checkpoint database
// (the offline function-optimization stage).
#pragma once

#include <string>
#include <vector>

#include "cnn/impl.h"
#include "cnn/model.h"
#include "flow/checkpoint_db.h"
#include "flow/compose.h"
#include "flow/ooc.h"
#include "netlist/netlist.h"
#include "util/thread_pool.h"

namespace fpgasim {

/// The component DAG the flows instantiate: group nodes plus stream-fork
/// nodes inserted wherever a group output fans out (each output stream
/// drives exactly one consumer after expansion). Node indices below the
/// group count are groups, appended nodes are forks.
struct ComponentDfg {
  struct Node {
    int group_index = -1;  // index into the grouping, or -1 for a fork
    int branches = 0;      // fork nodes: number of output streams
  };
  std::vector<Node> nodes;
  std::vector<StreamEdge> edges;
  int input_node = 0;
  int output_node = 0;
};

/// Expands a validated GroupGraph into the instantiable DFG by inserting
/// 1-to-N stream forks on every multi-consumer group output. Deterministic:
/// fork nodes are appended in ascending source-group order.
ComponentDfg expand_group_graph(const GroupGraph& graph);

/// Checkpoint-database key of a 1-to-N stream fork (forks are model- and
/// weight-independent, so all designs share them).
std::string fork_signature(int branches);

/// Synthesizes the netlist of one component group (conv/pool/fc layers,
/// relus fused). Weight seeds follow reference_inference so functional
/// simulation of the composed accelerator matches the golden model.
Netlist build_group_netlist(const CnnModel& model, const ModelImpl& impl,
                            const std::vector<int>& group, std::uint64_t seed_base = 1000);

/// Signature used as the checkpoint-database key. Identical layer
/// configurations (e.g. VGG's replicated 3x3 convolutions) share one
/// signature and therefore one pre-implemented checkpoint.
std::string group_signature(const CnnModel& model, const ModelImpl& impl,
                            const std::vector<int>& group, std::uint64_t seed_base = 1000);

/// One component a grouping needs from the database/store: either a layer
/// group (`group` non-null, pointing into the caller's grouping — which
/// must outlive the request) or a model-independent 1-to-N stream fork.
/// `key` is the database/store signature (group_signature/fork_signature).
struct ComponentRequest {
  std::string key;
  const std::vector<int>* group = nullptr;
  int fork_branches = 0;  // > 0 for stream forks
};

/// Enumerates the unique components `groups` needs, in deterministic
/// order: group components in grouping order (first occurrence of a
/// signature wins; replicated layers collapse to one request), then — for
/// branching models — the stream forks of the group DAG in ascending
/// source-group order. This is the single source of truth for "what must
/// exist before the pre-implemented flow can stitch": both
/// prepare_component_db and the CompileService plan from it.
std::vector<ComponentRequest> component_requests(const CnnModel& model,
                                                 const ModelImpl& impl,
                                                 const std::vector<std::vector<int>>& groups,
                                                 std::uint64_t seed_base = 1000);

/// Synthesizes the netlist of one request (group or stream fork).
Netlist build_component_netlist(const CnnModel& model, const ModelImpl& impl,
                                const ComponentRequest& request,
                                std::uint64_t seed_base = 1000);

/// Wall/CPU accounting of one prepare_component_db run. CPU-seconds sum
/// over all workers; wall/cpu diverge exactly when the build parallelizes.
struct DbBuildReport {
  std::size_t implemented = 0;  // cache misses actually built
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  std::size_t threads = 1;  // pool width used
};

/// Ensures every group of `groups` has a checkpoint in `db`, implementing
/// the missing ones OOC — in parallel across components on `pool` (the
/// global pool when null; a width-1 pool builds serially). For branching
/// models the stream forks required by the group DAG are implemented and
/// stored too (after the group components, keyed by fork_signature). Each
/// component's seed derives from its dedup index alone, so the resulting
/// database is bit-identical for every pool width. Returns the number of
/// components actually implemented (cache misses), also recorded in
/// `report` with wall/CPU times when non-null.
std::size_t prepare_component_db(const Device& device, const CnnModel& model,
                                 const ModelImpl& impl,
                                 const std::vector<std::vector<int>>& groups,
                                 CheckpointDb& db, const OocOptions& ooc = {},
                                 std::uint64_t seed_base = 1000,
                                 ThreadPool* pool = nullptr,
                                 DbBuildReport* report = nullptr);

/// Synthesizes the whole model as one flat netlist (the baseline flow's
/// input): all group netlists (plus stream forks for branching models)
/// stitched along the component DAG.
Netlist build_flat_netlist(const CnnModel& model, const ModelImpl& impl,
                           const std::vector<std::vector<int>>& groups,
                           std::uint64_t seed_base = 1000);

}  // namespace fpgasim
