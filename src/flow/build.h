// Bridges CNN models to the synthesis generators: builds per-group
// component netlists (granularity exploration output), computes component
// signatures for database reuse, and pre-populates the checkpoint database
// (the offline function-optimization stage).
#pragma once

#include <string>
#include <vector>

#include "cnn/impl.h"
#include "cnn/model.h"
#include "flow/checkpoint_db.h"
#include "flow/ooc.h"
#include "netlist/netlist.h"
#include "util/thread_pool.h"

namespace fpgasim {

/// Synthesizes the netlist of one component group (conv/pool/fc layers,
/// relus fused). Weight seeds follow reference_inference so functional
/// simulation of the composed accelerator matches the golden model.
Netlist build_group_netlist(const CnnModel& model, const ModelImpl& impl,
                            const std::vector<int>& group, std::uint64_t seed_base = 1000);

/// Signature used as the checkpoint-database key. Identical layer
/// configurations (e.g. VGG's replicated 3x3 convolutions) share one
/// signature and therefore one pre-implemented checkpoint.
std::string group_signature(const CnnModel& model, const ModelImpl& impl,
                            const std::vector<int>& group, std::uint64_t seed_base = 1000);

/// Wall/CPU accounting of one prepare_component_db run. CPU-seconds sum
/// over all workers; wall/cpu diverge exactly when the build parallelizes.
struct DbBuildReport {
  std::size_t implemented = 0;  // cache misses actually built
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  std::size_t threads = 1;  // pool width used
};

/// Ensures every group of `groups` has a checkpoint in `db`, implementing
/// the missing ones OOC — in parallel across components on `pool` (the
/// global pool when null; a width-1 pool builds serially). Each component's
/// seed derives from its dedup index alone, so the resulting database is
/// bit-identical for every pool width. Returns the number of components
/// actually implemented (cache misses), also recorded in `report` with
/// wall/CPU times when non-null.
std::size_t prepare_component_db(const Device& device, const CnnModel& model,
                                 const ModelImpl& impl,
                                 const std::vector<std::vector<int>>& groups,
                                 CheckpointDb& db, const OocOptions& ooc = {},
                                 std::uint64_t seed_base = 1000,
                                 ThreadPool* pool = nullptr,
                                 DbBuildReport* report = nullptr);

/// Synthesizes the whole model as one flat netlist (the baseline flow's
/// input): all group netlists chained.
Netlist build_flat_netlist(const CnnModel& model, const ModelImpl& impl,
                           const std::vector<std::vector<int>>& groups,
                           std::uint64_t seed_base = 1000);

}  // namespace fpgasim
