// Compile-as-a-service (DESIGN.md §14): admits many concurrent
// `run_preimpl_flow` sessions against one content-addressed
// CheckpointStore. Component resolution is a three-level ladder — LRU
// cache, on-disk store, build — and identical in-flight builds are
// deduplicated: the second session requesting a component blocks on the
// first's future instead of rebuilding. Misses of one session are batched
// into a single pool submission (parallel_for over the owned builds).
//
// Determinism contract: a component's OOC seed derives from its content
// hash alone (never from arrival order, session index or pool width), so
// a given (signature, fabric) pair maps to byte-identical checkpoint
// files no matter which session, process or thread width built it first.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cnn/impl.h"
#include "cnn/model.h"
#include "fabric/device.h"
#include "flow/ooc.h"
#include "flow/preimpl.h"
#include "flow/store.h"
#include "util/thread_pool.h"

namespace fpgasim {

struct ServiceOptions {
  /// Function-optimization knobs for component builds. The seed field is
  /// a base that is mixed with each component's content hash; see
  /// component_seed().
  OocOptions ooc;
  /// Pool the batched component builds run on (global pool when null).
  ThreadPool* pool = nullptr;
};

class CompileService {
 public:
  CompileService(const Device& device, CheckpointStore& store, ServiceOptions opt = {});

  CompileService(const CompileService&) = delete;
  CompileService& operator=(const CompileService&) = delete;

  struct SessionResult {
    PreImplReport report;
    ComposedDesign design;
    std::size_t components = 0;   // unique components the model needs
    std::size_t store_hits = 0;   // resolved from cache/disk, no build
    std::size_t built = 0;        // built (and persisted) by this session
    std::size_t dedup_waits = 0;  // waited on another session's build
    double ensure_seconds = 0.0;  // component resolution incl. builds
    double flow_seconds = 0.0;    // stitch + place + route + STA
    double wall_seconds = 0.0;
  };

  /// One compile session: resolves every component the grouping needs
  /// (cache -> disk -> deduplicated build), then runs the pre-implemented
  /// flow. Thread-safe; any number of sessions may run concurrently. Must
  /// not be called from a worker of the build pool (a session blocks on
  /// futures its own pool may be executing).
  SessionResult compile(const CnnModel& model, const ModelImpl& impl,
                        const std::vector<std::vector<int>>& groups,
                        const PreImplOptions& opt = {}, std::uint64_t seed_base = 1000);

  /// Process-wide counters across all sessions of this service.
  struct Stats {
    std::uint64_t sessions = 0;
    std::uint64_t components_resolved = 0;
    std::uint64_t store_hits = 0;
    std::uint64_t built = 0;
    std::uint64_t dedup_waits = 0;
  };
  Stats stats() const;

  const Device& device() const { return device_; }
  CheckpointStore& store() const { return store_; }

  /// The content-derived component build seed: base.seed mixed with the
  /// component's 128-bit content hash. Arrival order never enters.
  static std::uint64_t component_seed(const OocOptions& base, const Hash128& hash);

 private:
  const Device& device_;
  CheckpointStore& store_;
  ServiceOptions opt_;

  std::mutex inflight_mutex_;
  std::map<Hash128, std::shared_future<std::shared_ptr<const Checkpoint>>> inflight_;

  std::atomic<std::uint64_t> sessions_{0}, resolved_{0}, store_hits_{0}, built_{0},
      dedup_waits_{0};
};

/// Stable fingerprint of a composed design: the 128-bit content hash of
/// its serialized checkpoint bytes (netlist + physical state). Two runs
/// produced byte-identical designs iff their fingerprints match; used by
/// the service bench/tests to assert determinism across thread widths.
std::string design_fingerprint(const ComposedDesign& design);

}  // namespace fpgasim
