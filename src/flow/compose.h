// Architecture composition: instantiates pre-implemented checkpoints as
// filled black boxes inside a top-level design and stitches their stream
// interfaces by inserting nets into the netlist (Sec. IV-B3).
#pragma once

#include <string>
#include <vector>

#include "drc/drc.h"
#include "fabric/pblock.h"
#include "netlist/checkpoint.h"
#include "netlist/netlist.h"
#include "netlist/phys.h"
#include "place/macro_placer.h"

namespace fpgasim {

/// Rewires every sink of `driverless` (an input-port net with no driver)
/// onto `driven`, merging the two nets. The driverless net becomes dead.
void alias_net(Netlist& netlist, NetId driverless, NetId driven);

/// Physical-state aware overload: additionally discards any stale locked
/// route of the dead net so its orphaned wires stop charging channel
/// capacity (and stop confusing routing DRC).
void alias_net(Netlist& netlist, PhysState& phys, NetId driverless, NetId driven);

struct ComposedDesign {
  Netlist netlist;
  PhysState phys;

  struct Instance {
    std::string name;
    std::size_t source = 0;     // index of the checkpoint it was filled from
    CellId cell_offset = 0;
    CellId cell_end = 0;
    NetId net_offset = 0;
    NetId net_end = 0;
    Pblock footprint;           // as implemented (pre-relocation)
  };
  std::vector<Instance> instances;

  /// Component-level DFG edges for the relocation placer.
  std::vector<MacroNet> macro_nets;

  /// Translates one instance's placement and routes by (dx, dy).
  void translate_instance(std::size_t index, int dx, int dy);

  /// MacroItem view of the instances.
  std::vector<MacroItem> macro_items() const;

  /// DrcInstance view of the instances (current footprints), for run_drc.
  std::vector<DrcInstance> drc_instances() const;
};

/// Builds compositions. Checkpoints passed to add_instance must stay alive
/// until finish().
class Composer {
 public:
  explicit Composer(std::string top_name);

  /// Adds a black-box instance filled with `checkpoint`; returns its index.
  int add_instance(const Checkpoint& checkpoint, const std::string& instance_name,
                   std::size_t source_index = 0);

  /// Stream-connects instance `from` to instance `to`:
  /// out_data/out_valid -> in_data/in_valid, in_ready -> out_ready.
  void connect(int from, int to);

  /// Exposes `instance`'s input stream as top-level ports
  /// (in_data/in_valid/in_ready).
  void expose_input(int instance);
  /// Exposes `instance`'s output stream as top-level ports.
  void expose_output(int instance);

  /// Finalizes the composition. Runs the structural DRC subset over the
  /// stitched netlist and throws on errors ("net-dangling" is waived:
  /// unexposed stream inputs are legally driverless until expose_*()).
  ComposedDesign finish() &&;

 private:
  NetId port_net(int instance, const std::string& port_name) const;

  ComposedDesign design_;
  std::vector<std::vector<Port>> instance_ports_;  // offset-adjusted copies
};

/// Convenience: functionally stitches a linear chain of *unimplemented*
/// netlists into one flat netlist with the standard stream interface.
/// Used to form multi-layer components ahead of OOC implementation.
Netlist stitch_chain(const std::vector<const Netlist*>& stages, const std::string& name);

}  // namespace fpgasim
