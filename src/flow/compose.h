// Architecture composition: instantiates pre-implemented checkpoints as
// filled black boxes inside a top-level design and stitches their stream
// interfaces by inserting nets into the netlist (Sec. IV-B3).
#pragma once

#include <string>
#include <vector>

#include "drc/drc.h"
#include "fabric/pblock.h"
#include "netlist/checkpoint.h"
#include "netlist/netlist.h"
#include "netlist/phys.h"
#include "place/macro_placer.h"

namespace fpgasim {

/// A stream edge of a component DAG: output stream `from_port` of node
/// `from` feeds input stream `to_port` of node `to`. Port k maps to the
/// stream_port_name() port group ("in_data"/"in2_data"/...).
struct StreamEdge {
  int from = -1;
  int to = -1;
  int from_port = 0;
  int to_port = 0;
  friend bool operator==(const StreamEdge&, const StreamEdge&) = default;
};

/// Rewires every sink of `driverless` (an input-port net with no driver)
/// onto `driven`, merging the two nets. The driverless net becomes dead.
void alias_net(Netlist& netlist, NetId driverless, NetId driven);

/// Physical-state aware overload: additionally discards any stale locked
/// route of the dead net so its orphaned wires stop charging channel
/// capacity (and stop confusing routing DRC).
void alias_net(Netlist& netlist, PhysState& phys, NetId driverless, NetId driven);

struct ComposedDesign {
  Netlist netlist;
  PhysState phys;

  struct Instance {
    std::string name;
    std::size_t source = 0;     // index of the checkpoint it was filled from
    CellId cell_offset = 0;
    CellId cell_end = 0;
    NetId net_offset = 0;
    NetId net_end = 0;
    Pblock footprint;           // as implemented (pre-relocation)
  };
  std::vector<Instance> instances;

  /// Component-level DFG edges for the relocation placer.
  std::vector<MacroNet> macro_nets;

  /// Translates one instance's placement and routes by (dx, dy).
  void translate_instance(std::size_t index, int dx, int dy);

  /// MacroItem view of the instances.
  std::vector<MacroItem> macro_items() const;

  /// DrcInstance view of the instances (current footprints), for run_drc.
  std::vector<DrcInstance> drc_instances() const;
};

/// Builds compositions. Checkpoints passed to add_instance must stay alive
/// until finish().
class Composer {
 public:
  explicit Composer(std::string top_name);

  /// Adds a black-box instance filled with `checkpoint`; returns its index.
  int add_instance(const Checkpoint& checkpoint, const std::string& instance_name,
                   std::size_t source_index = 0);

  /// Stream-connects output stream `from_port` of instance `from` to input
  /// stream `to_port` of instance `to`: out_data/out_valid ->
  /// in_data/in_valid, in_ready -> out_ready. Each output stream drives at
  /// most one consumer and each input stream has at most one producer;
  /// violating either throws (fan-out needs an explicit stream fork
  /// component, see make_stream_fork).
  void connect(int from, int to, int to_port = 0, int from_port = 0);

  /// Exposes `instance`'s still-unconnected input streams as top-level
  /// ports (in_data/in_valid/in_ready, then in2_*, ...).
  void expose_input(int instance);
  /// Exposes `instance`'s still-unconnected output streams as top-level
  /// ports.
  void expose_output(int instance);

  /// Finalizes the composition. Runs the structural DRC subset over the
  /// stitched netlist and throws on errors ("net-dangling" is waived:
  /// unexposed stream inputs are legally driverless until expose_*()).
  ComposedDesign finish() &&;

 private:
  NetId port_net(int instance, const std::string& port_name) const;
  bool has_port(int instance, const std::string& port_name) const;

  ComposedDesign design_;
  std::vector<std::vector<Port>> instance_ports_;  // offset-adjusted copies
  std::vector<std::pair<int, int>> used_outputs_;  // (instance, stream index)
  std::vector<std::pair<int, int>> used_inputs_;
};

/// Convenience: functionally stitches a linear chain of *unimplemented*
/// netlists into one flat netlist with the standard stream interface.
/// Used to form multi-layer components ahead of OOC implementation.
Netlist stitch_chain(const std::vector<const Netlist*>& stages, const std::string& name);

/// Functionally stitches an *unimplemented* component DAG into one flat
/// netlist: every edge is aliased like stitch_chain's neighbor stitching,
/// the unconnected input streams of `input_stage` and output streams of
/// `output_stage` become the top-level stream interface. For a linear
/// chain this reduces to stitch_chain exactly.
Netlist stitch_graph(const std::vector<const Netlist*>& stages,
                     const std::vector<StreamEdge>& edges, int input_stage,
                     int output_stage, const std::string& name);

}  // namespace fpgasim
