#include "flow/store.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "drc/drc.h"
#include "lint/lint.h"
#include "util/log.h"

namespace fpgasim {
namespace {

namespace fs = std::filesystem;

constexpr const char* kLayoutTag = "fpgasim-store-v1";
constexpr const char* kIndexName = "index.tsv";
constexpr std::size_t kDefaultCacheBytes = 256u << 20;  // 256 MiB

std::size_t resolve_cache_bytes(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("FPGASIM_STORE_CACHE_BYTES")) {
    char* end = nullptr;
    const long long parsed = std::strtoll(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  return kDefaultCacheBytes;
}

std::string resolve_dir(const std::string& requested) {
  if (!requested.empty()) return requested;
  if (const char* env = std::getenv("FPGASIM_STORE_DIR")) return env;
  return {};
}

std::size_t file_bytes(const std::string& path) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  return ec ? 0 : static_cast<std::size_t>(size);
}

}  // namespace

std::string fabric_signature(const Device& device) {
  std::ostringstream os;
  os << device.name() << "/" << device.width() << "x" << device.height() << "/cr"
     << device.clock_region_height() << "/";
  for (int x = 0; x < device.width(); ++x) {
    os << "CDBI"[static_cast<int>(device.column_type(x))];
  }
  return os.str();
}

std::size_t approx_checkpoint_bytes(const Checkpoint& cp) {
  const Netlist& nl = cp.netlist;
  std::size_t bytes = sizeof(Checkpoint);
  bytes += nl.cell_count() * (sizeof(Cell) + 4 * sizeof(NetId));
  for (NetId n = 0; n < nl.net_count(); ++n) {
    bytes += sizeof(Net) + nl.net(n).sinks.size() * sizeof(std::pair<CellId, std::uint16_t>);
  }
  for (const Port& port : nl.ports()) bytes += sizeof(Port) + port.name.size();
  for (std::size_t r = 0; r < nl.rom_count(); ++r) {
    bytes += nl.rom(static_cast<std::int32_t>(r)).size() * sizeof(std::uint64_t);
  }
  bytes += cp.phys.cell_loc.size() * sizeof(TileCoord);
  for (const RouteInfo& route : cp.phys.routes) {
    bytes += sizeof(RouteInfo) + route.edges.size() * sizeof(std::pair<TileCoord, TileCoord>) +
             route.sink_delays_ns.size() * sizeof(double);
  }
  bytes += cp.port_pins.size() * sizeof(TileCoord);
  return bytes;
}

Hash128 CheckpointStore::content_hash(const std::string& key, const std::string& fabric) {
  return Hasher().str(kLayoutTag).str(key).str(fabric).digest();
}

CheckpointStore::CheckpointStore(StoreOptions opt)
    : dir_(resolve_dir(opt.dir)),
      cache_budget_(resolve_cache_bytes(opt.cache_bytes)),
      lint_(opt.lint) {
  const std::size_t shard_count = opt.shards > 0 ? opt.shards : 1;
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (dir_.empty()) return;

  fs::create_directories(dir_);
  // Replay the append-only index. Malformed lines (a torn append from a
  // crashed writer) and duplicate hashes (last wins) are tolerated; an
  // entry whose file vanished is kept in the map and surfaces through
  // stats().missing_files rather than throwing here.
  std::ifstream in(dir_ + "/" + kIndexName);
  std::string line;
  std::size_t malformed = 0;
  while (std::getline(in, line)) {
    const std::size_t tab1 = line.find('\t');
    const std::size_t tab2 = tab1 == std::string::npos ? std::string::npos
                                                       : line.find('\t', tab1 + 1);
    if (tab1 != 32 || tab2 == std::string::npos) {
      ++malformed;
      continue;
    }
    IndexEntry entry;
    const std::string hex = line.substr(0, 32);
    bool ok = true;
    entry.hash = Hash128{};
    for (int i = 0; i < 32 && ok; ++i) {
      const char c = hex[static_cast<std::size_t>(i)];
      int v = -1;
      if (c >= '0' && c <= '9') v = c - '0';
      else if (c >= 'a' && c <= 'f') v = c - 'a' + 10;
      else ok = false;
      if (!ok) break;
      if (i < 16) entry.hash.hi = (entry.hash.hi << 4) | static_cast<std::uint64_t>(v);
      else entry.hash.lo = (entry.hash.lo << 4) | static_cast<std::uint64_t>(v);
    }
    if (!ok) {
      ++malformed;
      continue;
    }
    entry.key = line.substr(tab1 + 1, tab2 - tab1 - 1);
    entry.fabric = line.substr(tab2 + 1);
    entry.path = entry_path(entry.hash);
    index_[entry.hash] = std::move(entry);
  }
  if (malformed > 0) {
    LOG_WARN("checkpoint store '%s': skipped %zu malformed index line(s)", dir_.c_str(),
             malformed);
  }
}

std::string CheckpointStore::entry_path(const Hash128& hash) const {
  return dir_ + "/" + hash.hex() + ".fdcp";
}

CheckpointStore::Shard& CheckpointStore::shard_for(const Hash128& hash) const {
  return *shards_[static_cast<std::size_t>(hash.lo % shards_.size())];
}

std::shared_ptr<const Checkpoint> CheckpointStore::cache_find(const Hash128& hash) {
  Shard& shard = shard_for(hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.map.find(hash);
  if (it == shard.map.end()) return nullptr;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // touch
  return it->second->checkpoint;
}

std::shared_ptr<const Checkpoint> CheckpointStore::cache_insert(
    const Hash128& hash, std::shared_ptr<const Checkpoint> cp) {
  Shard& shard = shard_for(hash);
  const std::size_t bytes = approx_checkpoint_bytes(*cp);
  const std::size_t budget = cache_budget_ / shards_.size();
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.map.find(hash);
  if (it != shard.map.end()) {
    // A racing loader got here first; keep its entry (the bytes are
    // identical by the determinism contract).
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->checkpoint;
  }
  shard.lru.push_front(CacheEntry{hash, std::move(cp), bytes});
  shard.map[hash] = shard.lru.begin();
  shard.bytes += bytes;
  // Evict from the cold end until the shard is back under budget; the
  // entry just inserted is always retained so an oversized checkpoint
  // still caches (once).
  while (shard.bytes > budget && shard.lru.size() > 1) {
    const CacheEntry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.map.erase(victim.hash);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  return shard.lru.front().checkpoint;
}

bool CheckpointStore::contains(const std::string& key, const Device& device) const {
  const Hash128 hash = content_hash(key, fabric_signature(device));
  {
    Shard& shard = shard_for(hash);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.map.count(hash) != 0) return true;
  }
  std::lock_guard<std::mutex> lock(index_mutex_);
  return index_.count(hash) != 0;
}

std::shared_ptr<const Checkpoint> CheckpointStore::load_entry(const Hash128& hash,
                                                              const std::string& key) {
  // Deduplicate concurrent loads of one entry: the first caller
  // deserializes and gates; everyone else blocks on its future. Combined
  // with the LRU this yields "deserialized + gated at most once per
  // process" while the entry stays resident.
  std::shared_future<std::shared_ptr<const Checkpoint>> future;
  std::promise<std::shared_ptr<const Checkpoint>> promise;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    const auto it = inflight_loads_.find(hash);
    if (it != inflight_loads_.end()) {
      future = it->second;
    } else {
      future = promise.get_future().share();
      inflight_loads_[hash] = future;
      owner = true;
    }
  }
  if (!owner) return future.get();

  std::shared_ptr<const Checkpoint> result;
  std::exception_ptr error;
  try {
    const std::string path = entry_path(hash);
    Checkpoint cp = load_checkpoint(path);
    // Same gates as CheckpointDb::load_dir: a store entry only becomes
    // usable content if it passes the checkpoint DRC (device-dependent
    // rules run at use time) and, opt-in, fpgalint.
    enforce_drc(run_checkpoint_drc(cp), "store load '" + key + "' (" + path + ")");
    if (lint_) {
      lint::enforce(lint::run(cp.netlist), "store load '" + key + "' (" + path + ")");
    }
    disk_loads_.fetch_add(1, std::memory_order_relaxed);
    result = cache_insert(hash, std::make_shared<const Checkpoint>(std::move(cp)));
  } catch (...) {
    error = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    inflight_loads_.erase(hash);
  }
  if (error) {
    promise.set_exception(error);
    std::rethrow_exception(error);
  }
  promise.set_value(result);
  return result;
}

std::shared_ptr<const Checkpoint> CheckpointStore::get(const std::string& key,
                                                       const Device& device) {
  const Hash128 hash = content_hash(key, fabric_signature(device));
  if (auto cached = cache_find(hash)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return cached;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (dir_.empty()) return nullptr;
  {
    std::lock_guard<std::mutex> lock(index_mutex_);
    if (index_.count(hash) == 0) return nullptr;
  }
  return load_entry(hash, key);
}

void CheckpointStore::append_index_line(const IndexEntry& entry) {
  std::ofstream out(dir_ + "/" + kIndexName, std::ios::app);
  out << entry.hash.hex() << '\t' << entry.key << '\t' << entry.fabric << '\n';
  out.flush();
  if (!out) {
    throw std::runtime_error("checkpoint store: cannot append index in " + dir_);
  }
}

std::shared_ptr<const Checkpoint> CheckpointStore::put(const std::string& key,
                                                       const Device& device,
                                                       Checkpoint checkpoint) {
  const std::string fabric = fabric_signature(device);
  const Hash128 hash = content_hash(key, fabric);
  auto shared = std::make_shared<const Checkpoint>(std::move(checkpoint));
  if (!dir_.empty()) {
    bool known;
    {
      std::lock_guard<std::mutex> lock(index_mutex_);
      known = index_.count(hash) != 0;
    }
    if (!known) {
      // Atomic publish: serialize to a private temp file, rename into the
      // content-addressed name (rename is atomic within the directory),
      // then append the index line. A crash between the two leaves an
      // orphan file that stats() reports and a re-put heals.
      const std::string tmp = dir_ + "/tmp-" + hash.hex() + "-" +
                              std::to_string(tmp_counter_.fetch_add(1)) + ".part";
      save_checkpoint(tmp, *shared);
      std::error_code ec;
      fs::rename(tmp, entry_path(hash), ec);
      if (ec) {
        fs::remove(tmp, ec);
        throw std::runtime_error("checkpoint store: cannot publish entry for '" + key +
                                 "': " + ec.message());
      }
      IndexEntry entry;
      entry.hash = hash;
      entry.key = key;
      entry.fabric = fabric;
      entry.path = entry_path(hash);
      std::lock_guard<std::mutex> lock(index_mutex_);
      if (index_.count(hash) == 0) {
        append_index_line(entry);
        index_[hash] = std::move(entry);
        puts_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  } else {
    puts_.fetch_add(1, std::memory_order_relaxed);
  }
  return cache_insert(hash, std::move(shared));
}

std::vector<CheckpointStore::IndexEntry> CheckpointStore::index_entries() const {
  std::vector<IndexEntry> entries;
  {
    std::lock_guard<std::mutex> lock(index_mutex_);
    entries.reserve(index_.size());
    for (const auto& [hash, entry] : index_) entries.push_back(entry);
  }
  for (IndexEntry& entry : entries) entry.bytes = file_bytes(entry.path);
  return entries;
}

std::size_t CheckpointStore::remove_unreferenced(const std::vector<Hash128>& keep) {
  if (dir_.empty()) return 0;
  std::lock_guard<std::mutex> index_lock(index_mutex_);
  std::map<Hash128, bool> keep_set;
  for (const Hash128& hash : keep) keep_set[hash] = true;
  std::size_t removed = 0;
  for (auto it = index_.begin(); it != index_.end();) {
    if (keep_set.count(it->first) != 0) {
      ++it;
      continue;
    }
    std::error_code ec;
    fs::remove(it->second.path, ec);
    Shard& shard = shard_for(it->first);
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      const auto cached = shard.map.find(it->first);
      if (cached != shard.map.end()) {
        shard.bytes -= cached->second->bytes;
        shard.lru.erase(cached->second);
        shard.map.erase(cached);
      }
    }
    it = index_.erase(it);
    ++removed;
  }
  // Rewrite the index atomically so dropped entries stay dropped.
  const std::string tmp = dir_ + "/" + kIndexName + ".rewrite";
  {
    std::ofstream out(tmp, std::ios::trunc);
    for (const auto& [hash, entry] : index_) {
      out << hash.hex() << '\t' << entry.key << '\t' << entry.fabric << '\n';
    }
    if (!out) throw std::runtime_error("checkpoint store: index rewrite failed in " + dir_);
  }
  fs::rename(tmp, dir_ + "/" + kIndexName);
  return removed;
}

StoreStats CheckpointStore::stats() const {
  StoreStats s;
  s.cache_budget = cache_budget_;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.disk_loads = disk_loads_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.puts = puts_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    s.cache_entries += shard->lru.size();
    s.cache_bytes += shard->bytes;
  }
  std::lock_guard<std::mutex> lock(index_mutex_);
  s.entries = index_.size();
  for (const auto& [hash, entry] : index_) {
    const std::size_t bytes = file_bytes(entry.path);
    if (bytes == 0 && !fs::exists(entry.path)) ++s.missing_files;
    s.disk_bytes += bytes;
  }
  if (!dir_.empty() && fs::is_directory(dir_)) {
    for (const auto& file : fs::directory_iterator(dir_)) {
      if (file.path().extension() != ".fdcp") continue;
      const std::string stem = file.path().stem().string();
      bool indexed = false;
      for (const auto& [hash, entry] : index_) {
        if (hash.hex() == stem) {
          indexed = true;
          break;
        }
      }
      if (!indexed) ++s.orphan_files;
    }
  }
  return s;
}

}  // namespace fpgasim
