// Function optimization (paper Sec. IV-A): implements one component
// out-of-context — minimal column-aware pblock, partition-pin port
// planning on the pblock boundary, cell-level placement, pblock-bounded
// routing, STA — explores several strategies, locks the winner and emits a
// checkpoint.
#pragma once

#include <cstdint>

#include "fabric/device.h"
#include "lint/lint.h"
#include "netlist/checkpoint.h"
#include "route/router.h"
#include "timing/sta.h"

namespace fpgasim {

struct OocOptions {
  std::uint64_t seed = 1;
  int strategies = 3;            // performance-exploration attempts
  double pblock_slack = 1.25;    // resource margin inside the pblock
  int pblock_max_width = 31;     // width cap (columns) for relocatability
  double moves_per_item = 220.0; // SA effort (per cell)
  bool port_planning = true;     // partition pins on the boundary (ablation B)
  bool lock = true;              // logic locking of the winner (ablation C)
  RouteOptions route;
  /// Opt-in fpgalint gate: statically analyze the implemented component
  /// before it enters the database (a silent defect in one checkpoint
  /// replicates into every network built from it). Throws on error
  /// findings; the report rides along in OocResult::lint.
  bool lint = false;
  lint::LintOptions lint_options;
};

struct OocResult {
  Checkpoint checkpoint;
  TimingResult timing;
  RouteResult route;
  double seconds = 0.0;      // function-optimization wall time
  double cpu_seconds = 0.0;  // process CPU time over the same span
  int strategy = 0;          // winning exploration strategy index
  lint::LintReport lint;     // empty unless OocOptions::lint
};

/// Implements `netlist` OOC on `device`. Throws std::runtime_error when no
/// pblock can satisfy the component's resources.
OocResult implement_ooc(const Device& device, Netlist netlist, const OocOptions& opt = {});

}  // namespace fpgasim
