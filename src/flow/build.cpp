#include "flow/build.h"

#include <mutex>
#include <sstream>
#include <stdexcept>

#include "cnn/registry.h"
#include "drc/drc.h"
#include "flow/compose.h"
#include "synth/layers.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace fpgasim {
namespace {

/// True if group[pos + 1] is an activation layer to fuse into group[pos].
bool fused_relu_follows(const CnnModel& model, const std::vector<int>& group,
                        std::size_t pos) {
  if (pos + 1 >= group.size()) return false;
  const Layer& next = model.layers()[static_cast<std::size_t>(group[pos + 1])];
  return layer_traits(next.kind).activation;
}

Netlist build_layer(const CnnModel& model, const ModelImpl& impl, int layer_idx,
                    bool fuse_relu, std::uint64_t seed_base) {
  const Layer& layer = model.layers()[static_cast<std::size_t>(layer_idx)];
  const auto synth = layer_traits(layer.kind).synth;
  if (synth == nullptr) {
    throw std::runtime_error("build_layer: layer '" + layer.name + "' is not synthesizable");
  }
  return synth(model, impl, layer_idx, fuse_relu, seed_base);
}

/// True when any layer output feeds more than one consumer: only then does
/// the model need the group-DAG machinery (chains keep the historical,
/// byte-identical path).
bool model_branches(const CnnModel& model) {
  for (int count : model.consumer_counts()) {
    if (count > 1) return true;
  }
  return false;
}

}  // namespace

ComponentDfg expand_group_graph(const GroupGraph& graph) {
  ComponentDfg dfg;
  const std::size_t group_count = graph.fanout.size();
  dfg.nodes.resize(group_count);
  for (std::size_t g = 0; g < group_count; ++g) {
    dfg.nodes[g].group_index = static_cast<int>(g);
  }
  for (std::size_t g = 0; g < group_count; ++g) {
    // Outgoing edges of g in stored (to, to_port) order.
    std::vector<GroupEdge> out;
    for (const GroupEdge& e : graph.edges) {
      if (e.from == static_cast<int>(g)) out.push_back(e);
    }
    if (out.size() <= 1) {
      for (const GroupEdge& e : out) {
        dfg.edges.push_back(StreamEdge{e.from, e.to, 0, e.to_port});
      }
      continue;
    }
    const int fork = static_cast<int>(dfg.nodes.size());
    ComponentDfg::Node node;
    node.branches = static_cast<int>(out.size());
    dfg.nodes.push_back(node);
    dfg.edges.push_back(StreamEdge{static_cast<int>(g), fork, 0, 0});
    for (std::size_t b = 0; b < out.size(); ++b) {
      dfg.edges.push_back(
          StreamEdge{fork, out[b].to, static_cast<int>(b), out[b].to_port});
    }
  }
  dfg.input_node = graph.input_group;
  dfg.output_node = graph.output_group;
  return dfg;
}

std::string fork_signature(int branches) {
  return "fork_x" + std::to_string(branches) + "_w" + std::to_string(kDataW);
}

Netlist build_group_netlist(const CnnModel& model, const ModelImpl& impl,
                            const std::vector<int>& group, std::uint64_t seed_base) {
  std::vector<Netlist> stages;
  std::string name;
  for (std::size_t pos = 0; pos < group.size(); ++pos) {
    const Layer& layer = model.layers()[static_cast<std::size_t>(group[pos])];
    if (layer_traits(layer.kind).activation && pos > 0) continue;  // fused into predecessor
    const bool fuse = fused_relu_follows(model, group, pos);
    stages.push_back(build_layer(model, impl, group[pos], fuse, seed_base));
    if (!name.empty()) name += "+";
    name += layer.name;
    if (fuse) name += "_relu";
  }
  if (stages.size() == 1) {
    stages[0].set_name(name);
    return std::move(stages[0]);
  }
  std::vector<const Netlist*> pointers;
  pointers.reserve(stages.size());
  for (const Netlist& stage : stages) pointers.push_back(&stage);
  return stitch_chain(pointers, name);
}

std::string group_signature(const CnnModel& model, const ModelImpl& impl,
                            const std::vector<int>& group, std::uint64_t seed_base) {
  std::ostringstream os;
  for (std::size_t pos = 0; pos < group.size(); ++pos) {
    const Layer& layer = model.layers()[static_cast<std::size_t>(group[pos])];
    const LayerImpl& li = impl.layers[static_cast<std::size_t>(group[pos])];
    const LayerTraits& traits = layer_traits(layer.kind);
    if (pos > 0) os << "__";
    if (traits.join) {
      // Joins are weight-free; their identity is the kind plus every input
      // shape (port order matters for concat) and the output channels.
      os << to_string(layer.kind);
      for (int in : layer.inputs) {
        const Shape& s = model.layers()[static_cast<std::size_t>(in)].out_shape;
        os << "_i" << s.c << "x" << s.h << "x" << s.w;
      }
      os << "_o" << layer.out_shape.c;
      if (layer.fuse_relu || fused_relu_follows(model, group, pos)) os << "_r";
      continue;
    }
    os << to_string(layer.kind) << "_i" << layer.in_shape.c << "x" << layer.in_shape.h << "x"
       << layer.in_shape.w << "_o" << layer.out_c << "_k" << layer.kernel << "s"
       << layer.stride << "_p" << li.ic_par << "x" << li.oc_par;
    if (li.tile_h > 0) os << "_t" << li.tile_h << "x" << li.tile_w;
    if (layer.fuse_relu || fused_relu_follows(model, group, pos)) os << "_r";
    // Materialized ROMs bake layer-specific weights into the checkpoint,
    // so the seed becomes part of the identity.
    if (traits.weighted && li.materialize) {
      os << "_w" << seed_base + static_cast<std::uint64_t>(group[pos]) * 2;
    }
  }
  return os.str();
}

std::vector<ComponentRequest> component_requests(const CnnModel& model,
                                                 const ModelImpl& impl,
                                                 const std::vector<std::vector<int>>& groups,
                                                 std::uint64_t seed_base) {
  // Deduplicate signatures: replicated layers collapse to one request.
  std::vector<ComponentRequest> requests;
  const auto queued = [&requests](const std::string& key) {
    for (const ComponentRequest& other : requests) {
      if (other.key == key) return true;
    }
    return false;
  };
  for (const auto& group : groups) {
    std::string key = group_signature(model, impl, group, seed_base);
    if (queued(key)) continue;
    requests.push_back(ComponentRequest{std::move(key), &group, 0});
  }
  // Branching models additionally need the stream forks of the group DAG;
  // they are appended after the group keys so chain databases keep their
  // historical build order (and bytes) exactly.
  if (model_branches(model)) {
    const GroupGraph graph = build_group_graph(model, groups);
    for (int fanout : graph.fanout) {
      if (fanout <= 1) continue;
      std::string key = fork_signature(fanout);
      if (queued(key)) continue;
      requests.push_back(ComponentRequest{std::move(key), nullptr, fanout});
    }
  }
  return requests;
}

Netlist build_component_netlist(const CnnModel& model, const ModelImpl& impl,
                                const ComponentRequest& request,
                                std::uint64_t seed_base) {
  if (request.fork_branches > 0) {
    return make_stream_fork(request.key, request.fork_branches);
  }
  if (request.group == nullptr) {
    throw std::invalid_argument("build_component_netlist: request '" + request.key +
                                "' has neither a group nor fork branches");
  }
  return build_group_netlist(model, impl, *request.group, seed_base);
}

std::size_t prepare_component_db(const Device& device, const CnnModel& model,
                                 const ModelImpl& impl,
                                 const std::vector<std::vector<int>>& groups,
                                 CheckpointDb& db, const OocOptions& ooc,
                                 std::uint64_t seed_base, ThreadPool* pool,
                                 DbBuildReport* report) {
  std::vector<ComponentRequest> missing;
  for (ComponentRequest& request : component_requests(model, impl, groups, seed_base)) {
    if (!db.contains(request.key)) missing.push_back(std::move(request));
  }

  // Function optimization is embarrassingly parallel across components.
  // Each seed derives from the dedup index i alone, never from execution
  // order, so every pool width yields bit-identical checkpoints.
  if (pool == nullptr) pool = &ThreadPool::global();
  Stopwatch wall;
  CpuStopwatch cpu;
  std::mutex db_mutex;
  parallel_for(
      0, missing.size(),
      [&](std::size_t i) {
        Netlist netlist = build_component_netlist(model, impl, missing[i], seed_base);
        OocOptions local = ooc;
        local.seed = ooc.seed + i * 131;
        OocResult result = implement_ooc(device, std::move(netlist), local);
        // Gate every freshly implemented component on a full checkpoint DRC
        // before it becomes reusable database content.
        enforce_drc(run_checkpoint_drc(result.checkpoint, &device),
                    "prepare_component_db '" + missing[i].key + "'");
        std::lock_guard<std::mutex> lock(db_mutex);
        db.put(missing[i].key, std::move(result.checkpoint));
      },
      pool);
  if (report != nullptr) {
    report->implemented = missing.size();
    report->wall_seconds = wall.seconds();
    report->cpu_seconds = cpu.seconds();
    report->threads = pool->size();
  }
  return missing.size();
}

Netlist build_flat_netlist(const CnnModel& model, const ModelImpl& impl,
                           const std::vector<std::vector<int>>& groups,
                           std::uint64_t seed_base) {
  if (!model_branches(model)) {
    // Historical chain path, byte-identical with earlier releases.
    std::vector<Netlist> components;
    components.reserve(groups.size());
    for (const auto& group : groups) {
      components.push_back(build_group_netlist(model, impl, group, seed_base));
    }
    std::vector<const Netlist*> pointers;
    pointers.reserve(components.size());
    for (const Netlist& component : components) pointers.push_back(&component);
    return stitch_chain(pointers, model.name() + "_flat");
  }
  const GroupGraph graph = build_group_graph(model, groups);
  const ComponentDfg dfg = expand_group_graph(graph);
  std::vector<Netlist> components;
  components.reserve(dfg.nodes.size());
  for (const ComponentDfg::Node& node : dfg.nodes) {
    if (node.group_index >= 0) {
      components.push_back(build_group_netlist(
          model, impl, groups[static_cast<std::size_t>(node.group_index)], seed_base));
    } else {
      components.push_back(make_stream_fork(fork_signature(node.branches), node.branches));
    }
  }
  std::vector<const Netlist*> pointers;
  pointers.reserve(components.size());
  for (const Netlist& component : components) pointers.push_back(&component);
  return stitch_graph(pointers, dfg.edges, dfg.input_node, dfg.output_node,
                      model.name() + "_flat");
}

}  // namespace fpgasim
