#include "flow/build.h"

#include <mutex>
#include <sstream>
#include <stdexcept>

#include "drc/drc.h"
#include "flow/compose.h"
#include "synth/layers.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace fpgasim {
namespace {

/// True if group[pos + 1] is a relu layer to fuse into group[pos].
bool fused_relu_follows(const CnnModel& model, const std::vector<int>& group,
                        std::size_t pos) {
  if (pos + 1 >= group.size()) return false;
  return model.layers()[static_cast<std::size_t>(group[pos + 1])].kind == LayerKind::kRelu;
}

Netlist build_layer(const CnnModel& model, const ModelImpl& impl, int layer_idx,
                    bool fuse_relu, std::uint64_t seed_base) {
  const Layer& layer = model.layers()[static_cast<std::size_t>(layer_idx)];
  const LayerImpl& li = impl.layers[static_cast<std::size_t>(layer_idx)];
  const std::uint64_t wseed = seed_base + static_cast<std::uint64_t>(layer_idx) * 2;

  switch (layer.kind) {
    case LayerKind::kConv: {
      ConvParams p;
      p.name = layer.name;
      p.in_c = layer.in_shape.c;
      p.out_c = layer.out_c;
      p.kernel = layer.kernel;
      p.stride = layer.stride;
      p.in_h = li.tile_h > 0 ? li.tile_h : layer.in_shape.h;
      p.in_w = li.tile_w > 0 ? li.tile_w : layer.in_shape.w;
      p.ic_par = li.ic_par;
      p.oc_par = li.oc_par;
      p.fuse_relu = fuse_relu || layer.fuse_relu;
      p.materialize_roms = li.materialize;
      p.weight_buffer_ocg = li.weight_buffer_ocg;
      std::vector<Fixed16> weights, bias;
      if (li.materialize) {
        weights = synth_params(
            static_cast<std::size_t>(layer.out_c) * layer.in_shape.c * layer.kernel *
                layer.kernel,
            wseed);
        bias = synth_params(static_cast<std::size_t>(layer.out_c), wseed + 1);
      }
      return make_conv_component(p, weights, bias);
    }
    case LayerKind::kFc: {
      const int inputs = static_cast<int>(layer.in_shape.volume());
      std::vector<Fixed16> weights, bias;
      if (li.materialize) {
        weights = synth_params(static_cast<std::size_t>(layer.out_c) * inputs, wseed);
        bias = synth_params(static_cast<std::size_t>(layer.out_c), wseed + 1);
      }
      return make_fc_component(layer.name, inputs, layer.out_c, weights, bias, li.ic_par,
                               li.oc_par, li.materialize, li.weight_buffer_ocg);
    }
    case LayerKind::kPool: {
      PoolParams p;
      p.name = layer.name;
      p.channels = layer.in_shape.c;
      p.kernel = layer.kernel;
      p.in_h = li.tile_h > 0 ? li.tile_h : layer.in_shape.h;
      p.in_w = li.tile_w > 0 ? li.tile_w : layer.in_shape.w;
      p.fuse_relu = fuse_relu || layer.fuse_relu;
      return make_pool_component(p);
    }
    case LayerKind::kRelu:
      return make_relu_component(layer.name);
    case LayerKind::kInput:
      break;
  }
  throw std::runtime_error("build_layer: layer '" + layer.name + "' is not synthesizable");
}

}  // namespace

Netlist build_group_netlist(const CnnModel& model, const ModelImpl& impl,
                            const std::vector<int>& group, std::uint64_t seed_base) {
  std::vector<Netlist> stages;
  std::string name;
  for (std::size_t pos = 0; pos < group.size(); ++pos) {
    const Layer& layer = model.layers()[static_cast<std::size_t>(group[pos])];
    if (layer.kind == LayerKind::kRelu && pos > 0) continue;  // fused into predecessor
    const bool fuse = fused_relu_follows(model, group, pos);
    stages.push_back(build_layer(model, impl, group[pos], fuse, seed_base));
    if (!name.empty()) name += "+";
    name += layer.name;
    if (fuse) name += "_relu";
  }
  if (stages.size() == 1) {
    stages[0].set_name(name);
    return std::move(stages[0]);
  }
  std::vector<const Netlist*> pointers;
  pointers.reserve(stages.size());
  for (const Netlist& stage : stages) pointers.push_back(&stage);
  return stitch_chain(pointers, name);
}

std::string group_signature(const CnnModel& model, const ModelImpl& impl,
                            const std::vector<int>& group, std::uint64_t seed_base) {
  std::ostringstream os;
  for (std::size_t pos = 0; pos < group.size(); ++pos) {
    const Layer& layer = model.layers()[static_cast<std::size_t>(group[pos])];
    const LayerImpl& li = impl.layers[static_cast<std::size_t>(group[pos])];
    if (pos > 0) os << "__";
    os << to_string(layer.kind) << "_i" << layer.in_shape.c << "x" << layer.in_shape.h << "x"
       << layer.in_shape.w << "_o" << layer.out_c << "_k" << layer.kernel << "s"
       << layer.stride << "_p" << li.ic_par << "x" << li.oc_par;
    if (li.tile_h > 0) os << "_t" << li.tile_h << "x" << li.tile_w;
    if (layer.fuse_relu || fused_relu_follows(model, group, pos)) os << "_r";
    // Materialized ROMs bake layer-specific weights into the checkpoint,
    // so the seed becomes part of the identity.
    if ((layer.kind == LayerKind::kConv || layer.kind == LayerKind::kFc) && li.materialize) {
      os << "_w" << seed_base + static_cast<std::uint64_t>(group[pos]) * 2;
    }
  }
  return os.str();
}

std::size_t prepare_component_db(const Device& device, const CnnModel& model,
                                 const ModelImpl& impl,
                                 const std::vector<std::vector<int>>& groups,
                                 CheckpointDb& db, const OocOptions& ooc,
                                 std::uint64_t seed_base, ThreadPool* pool,
                                 DbBuildReport* report) {
  // Deduplicate signatures first: replicated layers are implemented once.
  std::vector<std::string> missing_keys;
  std::vector<const std::vector<int>*> missing_groups;
  for (const auto& group : groups) {
    std::string key = group_signature(model, impl, group, seed_base);
    if (db.contains(key)) continue;
    bool queued = false;
    for (const std::string& other : missing_keys) queued |= (other == key);
    if (queued) continue;
    missing_keys.push_back(std::move(key));
    missing_groups.push_back(&group);
  }

  // Function optimization is embarrassingly parallel across components.
  // Each seed derives from the dedup index i alone, never from execution
  // order, so every pool width yields bit-identical checkpoints.
  if (pool == nullptr) pool = &ThreadPool::global();
  Stopwatch wall;
  CpuStopwatch cpu;
  std::mutex db_mutex;
  parallel_for(
      0, missing_keys.size(),
      [&](std::size_t i) {
        Netlist netlist = build_group_netlist(model, impl, *missing_groups[i], seed_base);
        OocOptions local = ooc;
        local.seed = ooc.seed + i * 131;
        OocResult result = implement_ooc(device, std::move(netlist), local);
        // Gate every freshly implemented component on a full checkpoint DRC
        // before it becomes reusable database content.
        enforce_drc(run_checkpoint_drc(result.checkpoint, &device),
                    "prepare_component_db '" + missing_keys[i] + "'");
        std::lock_guard<std::mutex> lock(db_mutex);
        db.put(missing_keys[i], std::move(result.checkpoint));
      },
      pool);
  if (report != nullptr) {
    report->implemented = missing_keys.size();
    report->wall_seconds = wall.seconds();
    report->cpu_seconds = cpu.seconds();
    report->threads = pool->size();
  }
  return missing_keys.size();
}

Netlist build_flat_netlist(const CnnModel& model, const ModelImpl& impl,
                           const std::vector<std::vector<int>>& groups,
                           std::uint64_t seed_base) {
  std::vector<Netlist> components;
  components.reserve(groups.size());
  for (const auto& group : groups) {
    components.push_back(build_group_netlist(model, impl, group, seed_base));
  }
  std::vector<const Netlist*> pointers;
  pointers.reserve(components.size());
  for (const Netlist& component : components) pointers.push_back(&component);
  Netlist flat = stitch_chain(pointers, model.name() + "_flat");
  return flat;
}

}  // namespace fpgasim
