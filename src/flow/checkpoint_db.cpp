#include "flow/checkpoint_db.h"

#include <cctype>
#include <filesystem>

#include "drc/drc.h"
#include "lint/lint.h"
#include "util/hash.h"

namespace fpgasim {

void CheckpointDb::put(const std::string& key, Checkpoint checkpoint) {
  entries_[key] = std::move(checkpoint);
}

const Checkpoint* CheckpointDb::get(const std::string& key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::string> CheckpointDb::keys() const {
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, value] : entries_) keys.push_back(key);
  return keys;
}

double CheckpointDb::total_implement_seconds() const {
  double total = 0.0;
  for (const auto& [key, checkpoint] : entries_) {
    total += checkpoint.meta.implement_seconds;
  }
  return total;
}

namespace {

std::string sanitize(const std::string& key) {
  std::string out = key;
  for (char& c : out) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-')) c = '_';
  }
  return out;
}

/// Filename stem for a database key. Clean keys map to themselves (the
/// historical, byte-stable layout); keys that sanitization would mangle
/// get a content-hash suffix so two distinct keys can never collapse onto
/// the same file (a collision silently overwrote one checkpoint before).
std::string key_filename(const std::string& key) {
  std::string stem = sanitize(key);
  if (stem != key) stem += "-h" + hash128(key).hex().substr(0, 16);
  return stem;
}

}  // namespace

void CheckpointDb::save_dir(const std::string& dir) const {
  std::filesystem::create_directories(dir);
  for (const auto& [key, checkpoint] : entries_) {
    save_checkpoint(dir + "/" + key_filename(key) + ".fdcp", checkpoint);
  }
}

std::size_t CheckpointDb::load_dir(const std::string& dir, bool lint) {
  std::size_t loaded = 0;
  if (!std::filesystem::is_directory(dir)) return 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".fdcp") continue;
    Checkpoint checkpoint = load_checkpoint(entry.path().string());
    // A checkpoint only enters the component database if it passes DRC
    // (no device context here: device-dependent rules run at use time),
    // and — opt-in — the fpgalint dataflow gate.
    enforce_drc(run_checkpoint_drc(checkpoint), "load " + entry.path().string());
    if (lint) {
      lint::enforce(lint::run(checkpoint.netlist), "load " + entry.path().string());
    }
    entries_[entry.path().stem().string()] = std::move(checkpoint);
    ++loaded;
  }
  return loaded;
}

}  // namespace fpgasim
