#include "flow/ooc.h"

#include <cmath>
#include <stdexcept>

#include "place/place.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/timer.h"

namespace fpgasim {
namespace {

ResourceVec scale(const ResourceVec& res, double factor) {
  auto up = [factor](std::int64_t v) {
    return static_cast<std::int64_t>(std::ceil(static_cast<double>(v) * factor));
  };
  return ResourceVec{up(res.lut), up(res.ff), up(res.carry), up(res.dsp), up(res.bram)};
}

/// Partition-pin planning: spreads input ports along the west edge and
/// output ports along the east edge of the pblock (dataflow direction).
/// With planning disabled, pins land pseudo-randomly inside the pblock
/// (the failure mode Sec. IV-A2 warns about).
std::vector<TileCoord> plan_partition_pins(const Netlist& netlist, const Pblock& pblock,
                                           bool planned, std::uint64_t seed) {
  std::vector<TileCoord> pins(netlist.ports().size());
  Rng rng(seed);
  int in_count = 0, out_count = 0;
  for (const Port& port : netlist.ports()) {
    (port.dir == PortDir::kInput ? in_count : out_count) += 1;
  }
  int in_idx = 0, out_idx = 0;
  for (std::size_t p = 0; p < netlist.ports().size(); ++p) {
    const Port& port = netlist.ports()[p];
    if (!planned) {
      pins[p] = TileCoord{
          pblock.x0 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(
                          pblock.width()))),
          pblock.y0 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(
                          pblock.height())))};
      continue;
    }
    if (port.dir == PortDir::kInput) {
      const int y = pblock.y0 + (pblock.height() * (2 * in_idx + 1)) / (2 * in_count);
      pins[p] = TileCoord{pblock.x0, y};
      ++in_idx;
    } else {
      const int y = pblock.y0 + (pblock.height() * (2 * out_idx + 1)) / (2 * out_count);
      pins[p] = TileCoord{pblock.x1, y};
      ++out_idx;
    }
  }
  return pins;
}

}  // namespace

OocResult implement_ooc(const Device& device, Netlist netlist, const OocOptions& opt) {
  Stopwatch watch;
  CpuStopwatch cpu_watch;
  const NetlistStats stats = netlist.stats();
  const ResourceVec need = scale(stats.resources, opt.pblock_slack);

  static constexpr double kAspects[] = {1.0, 2.2, 0.45, 3.5, 0.28};
  OocResult best;
  bool have_best = false;

  for (int s = 0; s < opt.strategies; ++s) {
    const double aspect = kAspects[s % (sizeof(kAspects) / sizeof(kAspects[0]))];
    const auto pblock = find_min_pblock(device, need, aspect, opt.pblock_max_width);
    if (!pblock) {
      if (s == 0) {
        throw std::runtime_error("implement_ooc: component '" + netlist.name() +
                                 "' does not fit the device (" + need.to_string() + ")");
      }
      continue;
    }

    const std::vector<TileCoord> pins =
        plan_partition_pins(netlist, *pblock, opt.port_planning, opt.seed + s);

    // Cell-level placement model plus fixed partition-pin terminals.
    const Clustering identity = cluster_netlist(netlist, 1);
    std::vector<PlaceItem> items;
    std::vector<PlaceNet> nets;
    build_place_model(netlist, identity, items, nets);
    for (std::size_t p = 0; p < netlist.ports().size(); ++p) {
      const Port& port = netlist.ports()[p];
      PlaceItem pin_item;
      pin_item.fixed = true;
      pin_item.fixed_x = pins[p].x;
      pin_item.fixed_y = pins[p].y;
      const std::int32_t pin_id = static_cast<std::int32_t>(items.size());
      items.push_back(pin_item);
      // Tie the pin to the cells on the port net.
      PlaceNet tether;
      tether.items.push_back(pin_id);
      const Net& net = netlist.net(port.net);
      if (net.driver != kInvalidCell) tether.items.push_back(static_cast<std::int32_t>(net.driver));
      for (const auto& [cell, pin] : net.sinks) {
        tether.items.push_back(static_cast<std::int32_t>(cell));
      }
      tether.weight = 2.0;
      nets.push_back(std::move(tether));
    }

    SaOptions sa;
    sa.region = *pblock;
    sa.bin_tiles = 1;
    sa.moves_per_item = opt.moves_per_item;
    sa.seed = opt.seed * 977 + static_cast<std::uint64_t>(s);
    const SaResult placement = place_sa(device, items, nets, sa);

    PhysState phys;
    assign_cells_to_tiles(device, netlist, identity, placement, sa, phys);

    RouteOptions route_opt = opt.route;
    route_opt.bounded = true;
    route_opt.region = *pblock;
    route_opt.seed = sa.seed;
    for (std::size_t p = 0; p < netlist.ports().size(); ++p) {
      route_opt.fixed_terminals[netlist.ports()[p].net] = pins[p];
    }
    const RouteResult route = route_design(device, netlist, phys, route_opt);
    if (!route.success) {
      LOG_WARN("ooc '%s' strategy %d: routing failed (%s)", netlist.name().c_str(), s,
               route.error.c_str());
      continue;
    }
    const TimingResult timing = run_sta(netlist, phys, device);

    if (!have_best || timing.fmax_mhz > best.timing.fmax_mhz) {
      have_best = true;
      best.timing = timing;
      best.route = route;
      best.strategy = s;
      best.checkpoint.phys = std::move(phys);
      best.checkpoint.pblock = *pblock;
      best.checkpoint.port_pins = pins;
    }
  }
  if (!have_best) {
    throw std::runtime_error("implement_ooc: no strategy succeeded for '" + netlist.name() +
                             "'");
  }

  if (opt.lock) netlist.lock_all();
  best.checkpoint.netlist = std::move(netlist);
  best.seconds = watch.seconds();
  best.cpu_seconds = cpu_watch.seconds();
  best.checkpoint.meta.fmax_mhz = best.timing.fmax_mhz;
  best.checkpoint.meta.critical_path_ns = best.timing.critical_path_ns;
  best.checkpoint.meta.implement_seconds = best.seconds;
  best.checkpoint.meta.strategy = "aspect_" + std::to_string(best.strategy);
  best.checkpoint.meta.device = device.name();
  if (opt.lint) {
    // Static-analysis gate before the checkpoint can enter the database.
    best.lint = lint::run(best.checkpoint.netlist, opt.lint_options);
    lint::enforce(best.lint, "ooc '" + best.checkpoint.netlist.name() + "'");
  }
  LOG_DEBUG("ooc '%s': %s in %.2fs (strategy %d, %s)",
            best.checkpoint.netlist.name().c_str(), best.timing.summary().c_str(),
            best.seconds, best.strategy, best.checkpoint.pblock.to_string().c_str());
  return best;
}

}  // namespace fpgasim
