#include "flow/service.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "drc/drc.h"
#include "flow/build.h"
#include "util/log.h"
#include "util/timer.h"

namespace fpgasim {

CompileService::CompileService(const Device& device, CheckpointStore& store,
                               ServiceOptions opt)
    : device_(device), store_(store), opt_(opt) {}

std::uint64_t CompileService::component_seed(const OocOptions& base, const Hash128& hash) {
  return Hasher().u64(base.seed).u64(hash.hi).u64(hash.lo).digest().lo;
}

CompileService::SessionResult CompileService::compile(
    const CnnModel& model, const ModelImpl& impl,
    const std::vector<std::vector<int>>& groups, const PreImplOptions& opt,
    std::uint64_t seed_base) {
  SessionResult session;
  Stopwatch wall;
  const std::string fabric = fabric_signature(device_);

  // Plan: the unique components this model needs, in deterministic order.
  const std::vector<ComponentRequest> requests =
      component_requests(model, impl, groups, seed_base);
  session.components = requests.size();

  // Resolution ladder per component: LRU/disk via the store, else claim
  // the in-flight slot (first claimer builds) or collect the future of
  // whoever claimed it first.
  std::vector<std::shared_ptr<const Checkpoint>> resolved(requests.size());
  struct Claim {
    std::size_t index;
    Hash128 hash;
    std::promise<std::shared_ptr<const Checkpoint>> promise;
  };
  std::vector<Claim> owned;
  std::vector<std::pair<std::size_t, std::shared_future<std::shared_ptr<const Checkpoint>>>>
      waits;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (auto hit = store_.get(requests[i].key, device_)) {
      resolved[i] = std::move(hit);
      ++session.store_hits;
      continue;
    }
    const Hash128 hash = CheckpointStore::content_hash(requests[i].key, fabric);
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    const auto it = inflight_.find(hash);
    if (it != inflight_.end()) {
      waits.emplace_back(i, it->second);
      ++session.dedup_waits;
    } else {
      Claim claim;
      claim.index = i;
      claim.hash = hash;
      inflight_[hash] = claim.promise.get_future().share();
      owned.push_back(std::move(claim));
    }
  }

  // Build every owned miss as one batched pool submission. Seeds are
  // content-derived, so the resulting checkpoints are byte-identical for
  // any pool width, session interleaving or request order. A failed build
  // is recorded (never thrown mid-batch): every claimed promise must be
  // fulfilled — with the value or the exception — or waiters in other
  // sessions would be stranded on a slot nobody owns anymore.
  std::atomic<std::size_t> built_here{0}, healed_hits{0};
  std::vector<std::exception_ptr> build_errors(owned.size());
  parallel_for(
      0, owned.size(),
      [&](std::size_t c) {
        Claim& claim = owned[c];
        const ComponentRequest& request = requests[claim.index];
        const auto release = [&](std::shared_ptr<const Checkpoint> value,
                                 std::exception_ptr error) {
          {
            std::lock_guard<std::mutex> lock(inflight_mutex_);
            inflight_.erase(claim.hash);
          }
          if (error) {
            claim.promise.set_exception(error);
          } else {
            claim.promise.set_value(std::move(value));
          }
        };
        try {
          // Heal the claim/put race: the store may have gained the entry
          // between our miss and the claim (another service instance, or
          // a put that landed after our get).
          if (auto hit = store_.get(request.key, device_)) {
            resolved[claim.index] = hit;
            healed_hits.fetch_add(1, std::memory_order_relaxed);
            release(std::move(hit), nullptr);
            return;
          }
          Netlist netlist = build_component_netlist(model, impl, request, seed_base);
          OocOptions local = opt_.ooc;
          local.seed = component_seed(opt_.ooc, claim.hash);
          OocResult result = implement_ooc(device_, std::move(netlist), local);
          // Same gate as prepare_component_db: a freshly built component
          // must pass the full checkpoint DRC before it becomes shared
          // database content.
          enforce_drc(run_checkpoint_drc(result.checkpoint, &device_),
                      "compile service build '" + request.key + "'");
          auto shared = store_.put(request.key, device_, std::move(result.checkpoint));
          resolved[claim.index] = shared;
          built_here.fetch_add(1, std::memory_order_relaxed);
          release(std::move(shared), nullptr);
        } catch (...) {
          build_errors[c] = std::current_exception();
          release(nullptr, build_errors[c]);
        }
      },
      opt_.pool);
  session.built = built_here.load();
  session.store_hits += healed_hits.load();
  for (const std::exception_ptr& error : build_errors) {
    if (error) std::rethrow_exception(error);
  }

  // Collect the components other sessions were already building; their
  // exceptions (a failed build) propagate to every waiter.
  for (auto& [index, future] : waits) resolved[index] = future.get();
  session.ensure_seconds = wall.seconds();

  // Re-entrant flow stage: everything the flow needs rides in locals, the
  // pinned shared_ptrs keep the checkpoints alive for the session.
  std::unordered_map<std::string, const Checkpoint*> by_key;
  by_key.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    by_key[requests[i].key] = resolved[i].get();
  }
  Stopwatch flow_watch;
  session.report = run_preimpl_cnn(
      device_, model, impl, groups,
      [&by_key](const std::string& key) -> const Checkpoint* {
        const auto it = by_key.find(key);
        return it == by_key.end() ? nullptr : it->second;
      },
      session.design, opt, seed_base);
  session.flow_seconds = flow_watch.seconds();
  session.wall_seconds = wall.seconds();

  sessions_.fetch_add(1, std::memory_order_relaxed);
  resolved_.fetch_add(session.components, std::memory_order_relaxed);
  store_hits_.fetch_add(session.store_hits, std::memory_order_relaxed);
  built_.fetch_add(session.built, std::memory_order_relaxed);
  dedup_waits_.fetch_add(session.dedup_waits, std::memory_order_relaxed);
  LOG_DEBUG("compile session '%s': %zu components (%zu hit, %zu built, %zu waited), "
            "%.3fs ensure + %.3fs flow",
            model.name().c_str(), session.components, session.store_hits, session.built,
            session.dedup_waits, session.ensure_seconds, session.flow_seconds);
  return session;
}

CompileService::Stats CompileService::stats() const {
  Stats s;
  s.sessions = sessions_.load(std::memory_order_relaxed);
  s.components_resolved = resolved_.load(std::memory_order_relaxed);
  s.store_hits = store_hits_.load(std::memory_order_relaxed);
  s.built = built_.load(std::memory_order_relaxed);
  s.dedup_waits = dedup_waits_.load(std::memory_order_relaxed);
  return s;
}

std::string design_fingerprint(const ComposedDesign& design) {
  // Serialize through the canonical .fdcp writer (a temp file; the format
  // has no in-memory sink) and hash the bytes.
  static std::atomic<std::uint64_t> counter{0};
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("fpgasim-fp-" + std::to_string(::getpid()) + "-" +
        std::to_string(counter.fetch_add(1)) + ".fdcp"))
          .string();
  Checkpoint cp;
  cp.netlist = design.netlist;
  cp.phys = design.phys;
  save_checkpoint(path, cp);
  std::ifstream in(path, std::ios::binary);
  std::ostringstream bytes;
  bytes << in.rdbuf();
  std::filesystem::remove(path);
  return hash128(bytes.str()).hex();
}

}  // namespace fpgasim
