#include "flow/compose.h"

#include "synth/layers.h"

#include <stdexcept>

namespace fpgasim {

void alias_net(Netlist& netlist, NetId driverless, NetId driven) {
  if (driverless == driven) return;
  Net& dead = netlist.net(driverless);
  if (dead.driver != kInvalidCell) {
    throw std::runtime_error("alias_net: net '" + dead.name + "' has a driver");
  }
  Net& live = netlist.net(driven);
  for (const auto& [cell, pin] : dead.sinks) {
    netlist.cell(cell).inputs[pin] = driven;
    live.sinks.emplace_back(cell, pin);
  }
  dead.sinks.clear();
}

void alias_net(Netlist& netlist, PhysState& phys, NetId driverless, NetId driven) {
  alias_net(netlist, driverless, driven);
  if (driverless != driven && driverless < phys.routes.size()) {
    phys.routes[driverless] = RouteInfo{};
  }
}

void ComposedDesign::translate_instance(std::size_t index, int dx, int dy) {
  const Instance& inst = instances[index];
  for (CellId c = inst.cell_offset; c < inst.cell_end; ++c) {
    TileCoord& loc = phys.cell_loc[c];
    if (loc == kUnplaced) continue;
    loc.x += dx;
    loc.y += dy;
  }
  for (NetId n = inst.net_offset; n < inst.net_end; ++n) {
    for (auto& [a, b] : phys.routes[n].edges) {
      a.x += dx;
      a.y += dy;
      b.x += dx;
      b.y += dy;
    }
  }
  instances[index].footprint = inst.footprint.translated(dx, dy);
}

std::vector<MacroItem> ComposedDesign::macro_items() const {
  std::vector<MacroItem> items;
  items.reserve(instances.size());
  for (const Instance& inst : instances) {
    items.push_back(MacroItem{inst.name, inst.footprint});
  }
  return items;
}

std::vector<DrcInstance> ComposedDesign::drc_instances() const {
  std::vector<DrcInstance> out;
  out.reserve(instances.size());
  for (const Instance& inst : instances) {
    out.push_back(DrcInstance{inst.name, inst.footprint, inst.cell_offset, inst.cell_end,
                              inst.net_offset, inst.net_end});
  }
  return out;
}

Composer::Composer(std::string top_name) { design_.netlist.set_name(std::move(top_name)); }

int Composer::add_instance(const Checkpoint& checkpoint, const std::string& instance_name,
                           std::size_t source_index) {
  const auto [cell_offset, net_offset] = design_.netlist.merge(checkpoint.netlist);
  design_.phys.append(checkpoint.phys);

  ComposedDesign::Instance inst;
  inst.name = instance_name;
  inst.source = source_index;
  inst.cell_offset = cell_offset;
  inst.cell_end = static_cast<CellId>(design_.netlist.cell_count());
  inst.net_offset = net_offset;
  inst.net_end = static_cast<NetId>(design_.netlist.net_count());
  inst.footprint = checkpoint.pblock;
  design_.instances.push_back(inst);

  std::vector<Port> ports = checkpoint.netlist.ports();
  for (Port& port : ports) port.net += net_offset;
  instance_ports_.push_back(std::move(ports));
  return static_cast<int>(design_.instances.size()) - 1;
}

NetId Composer::port_net(int instance, const std::string& port_name) const {
  for (const Port& port : instance_ports_[static_cast<std::size_t>(instance)]) {
    if (port.name == port_name) return port.net;
  }
  throw std::runtime_error("composer: instance '" +
                           design_.instances[static_cast<std::size_t>(instance)].name +
                           "' has no port '" + port_name + "'");
}

void Composer::connect(int from, int to) {
  // Data/valid flow downstream; ready flows back upstream.
  alias_net(design_.netlist, design_.phys, port_net(to, "in_data"), port_net(from, "out_data"));
  alias_net(design_.netlist, design_.phys, port_net(to, "in_valid"), port_net(from, "out_valid"));
  alias_net(design_.netlist, design_.phys, port_net(from, "out_ready"), port_net(to, "in_ready"));
  design_.macro_nets.push_back(MacroNet{{from, to}, 1.0});
}

void Composer::expose_input(int instance) {
  Netlist& nl = design_.netlist;
  nl.add_port(Port{"in_data", PortDir::kInput, kDataW, port_net(instance, "in_data")});
  nl.add_port(Port{"in_valid", PortDir::kInput, 1, port_net(instance, "in_valid")});
  nl.add_port(Port{"in_ready", PortDir::kOutput, 1, port_net(instance, "in_ready")});
}

void Composer::expose_output(int instance) {
  Netlist& nl = design_.netlist;
  nl.add_port(
      Port{"out_data", PortDir::kOutput, kDataW, port_net(instance, "out_data")});
  nl.add_port(Port{"out_valid", PortDir::kOutput, 1, port_net(instance, "out_valid")});
  nl.add_port(Port{"out_ready", PortDir::kInput, 1, port_net(instance, "out_ready")});
}

ComposedDesign Composer::finish() && {
  // Gate the stitched netlist on the structural DRC subset before handing
  // it to placement. Unexposed stream inputs are legally driverless until
  // expose_input()/expose_output(), so net-dangling is waived here; the
  // flow-level gates re-run it unwaived after the boundary is exposed.
  DrcOptions opt;
  opt.waived_rules = {"net-dangling"};
  enforce_drc(run_structural_drc(design_.netlist, opt), "compose");
  return std::move(design_);
}

Netlist stitch_chain(const std::vector<const Netlist*>& stages, const std::string& name) {
  Netlist top(name);
  std::vector<std::vector<Port>> ports;
  PhysState unused;
  for (const Netlist* stage : stages) {
    const auto [cell_offset, net_offset] = top.merge(*stage);
    (void)cell_offset;
    std::vector<Port> adjusted = stage->ports();
    for (Port& port : adjusted) port.net += net_offset;
    ports.push_back(std::move(adjusted));
  }
  auto find = [&](std::size_t stage, const std::string& port_name) -> NetId {
    for (const Port& port : ports[stage]) {
      if (port.name == port_name) return port.net;
    }
    throw std::runtime_error("stitch_chain: stage missing port '" + port_name + "'");
  };
  for (std::size_t s = 0; s + 1 < stages.size(); ++s) {
    alias_net(top, find(s + 1, "in_data"), find(s, "out_data"));
    alias_net(top, find(s + 1, "in_valid"), find(s, "out_valid"));
    alias_net(top, find(s, "out_ready"), find(s + 1, "in_ready"));
  }
  top.add_port(Port{"in_data", PortDir::kInput, kDataW, find(0, "in_data")});
  top.add_port(Port{"in_valid", PortDir::kInput, 1, find(0, "in_valid")});
  top.add_port(Port{"in_ready", PortDir::kOutput, 1, find(0, "in_ready")});
  const std::size_t last = stages.size() - 1;
  top.add_port(Port{"out_data", PortDir::kOutput, kDataW, find(last, "out_data")});
  top.add_port(Port{"out_valid", PortDir::kOutput, 1, find(last, "out_valid")});
  top.add_port(Port{"out_ready", PortDir::kInput, 1, find(last, "out_ready")});
  return top;
}

}  // namespace fpgasim
