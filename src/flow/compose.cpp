#include "flow/compose.h"

#include "synth/layers.h"

#include <stdexcept>
#include <utility>

namespace fpgasim {

void alias_net(Netlist& netlist, NetId driverless, NetId driven) {
  if (driverless == driven) return;
  Net& dead = netlist.net(driverless);
  if (dead.driver != kInvalidCell) {
    throw std::runtime_error("alias_net: net '" + dead.name + "' has a driver");
  }
  Net& live = netlist.net(driven);
  for (const auto& [cell, pin] : dead.sinks) {
    netlist.cell(cell).inputs[pin] = driven;
    live.sinks.emplace_back(cell, pin);
  }
  dead.sinks.clear();
}

void alias_net(Netlist& netlist, PhysState& phys, NetId driverless, NetId driven) {
  alias_net(netlist, driverless, driven);
  if (driverless != driven && driverless < phys.routes.size()) {
    phys.routes[driverless] = RouteInfo{};
  }
}

void ComposedDesign::translate_instance(std::size_t index, int dx, int dy) {
  const Instance& inst = instances[index];
  for (CellId c = inst.cell_offset; c < inst.cell_end; ++c) {
    TileCoord& loc = phys.cell_loc[c];
    if (loc == kUnplaced) continue;
    loc.x += dx;
    loc.y += dy;
  }
  for (NetId n = inst.net_offset; n < inst.net_end; ++n) {
    for (auto& [a, b] : phys.routes[n].edges) {
      a.x += dx;
      a.y += dy;
      b.x += dx;
      b.y += dy;
    }
  }
  instances[index].footprint = inst.footprint.translated(dx, dy);
}

std::vector<MacroItem> ComposedDesign::macro_items() const {
  std::vector<MacroItem> items;
  items.reserve(instances.size());
  for (const Instance& inst : instances) {
    items.push_back(MacroItem{inst.name, inst.footprint});
  }
  return items;
}

std::vector<DrcInstance> ComposedDesign::drc_instances() const {
  std::vector<DrcInstance> out;
  out.reserve(instances.size());
  for (const Instance& inst : instances) {
    out.push_back(DrcInstance{inst.name, inst.footprint, inst.cell_offset, inst.cell_end,
                              inst.net_offset, inst.net_end});
  }
  return out;
}

Composer::Composer(std::string top_name) { design_.netlist.set_name(std::move(top_name)); }

int Composer::add_instance(const Checkpoint& checkpoint, const std::string& instance_name,
                           std::size_t source_index) {
  const auto [cell_offset, net_offset] = design_.netlist.merge(checkpoint.netlist);
  design_.phys.append(checkpoint.phys);

  ComposedDesign::Instance inst;
  inst.name = instance_name;
  inst.source = source_index;
  inst.cell_offset = cell_offset;
  inst.cell_end = static_cast<CellId>(design_.netlist.cell_count());
  inst.net_offset = net_offset;
  inst.net_end = static_cast<NetId>(design_.netlist.net_count());
  inst.footprint = checkpoint.pblock;
  design_.instances.push_back(inst);

  std::vector<Port> ports = checkpoint.netlist.ports();
  for (Port& port : ports) port.net += net_offset;
  instance_ports_.push_back(std::move(ports));
  return static_cast<int>(design_.instances.size()) - 1;
}

NetId Composer::port_net(int instance, const std::string& port_name) const {
  for (const Port& port : instance_ports_[static_cast<std::size_t>(instance)]) {
    if (port.name == port_name) return port.net;
  }
  throw std::runtime_error("composer: instance '" +
                           design_.instances[static_cast<std::size_t>(instance)].name +
                           "' has no port '" + port_name + "'");
}

bool Composer::has_port(int instance, const std::string& port_name) const {
  for (const Port& port : instance_ports_[static_cast<std::size_t>(instance)]) {
    if (port.name == port_name) return true;
  }
  return false;
}

void Composer::connect(int from, int to, int to_port, int from_port) {
  const auto out_key = std::make_pair(from, from_port);
  const auto in_key = std::make_pair(to, to_port);
  for (const auto& used : used_outputs_) {
    if (used == out_key) {
      throw std::runtime_error(
          "composer: output stream " + std::to_string(from_port) + " of instance '" +
          design_.instances[static_cast<std::size_t>(from)].name +
          "' already drives a consumer; stream fan-out needs an explicit fork "
          "component (make_stream_fork)");
    }
  }
  for (const auto& used : used_inputs_) {
    if (used == in_key) {
      throw std::runtime_error(
          "composer: input stream " + std::to_string(to_port) + " of instance '" +
          design_.instances[static_cast<std::size_t>(to)].name + "' already has a producer");
    }
  }
  used_outputs_.push_back(out_key);
  used_inputs_.push_back(in_key);
  // Data/valid flow downstream; ready flows back upstream.
  alias_net(design_.netlist, design_.phys,
            port_net(to, stream_port_name("in", to_port, "data")),
            port_net(from, stream_port_name("out", from_port, "data")));
  alias_net(design_.netlist, design_.phys,
            port_net(to, stream_port_name("in", to_port, "valid")),
            port_net(from, stream_port_name("out", from_port, "valid")));
  alias_net(design_.netlist, design_.phys,
            port_net(from, stream_port_name("out", from_port, "ready")),
            port_net(to, stream_port_name("in", to_port, "ready")));
  design_.macro_nets.push_back(MacroNet{{from, to}, 1.0});
}

void Composer::expose_input(int instance) {
  Netlist& nl = design_.netlist;
  if (!has_port(instance, "in_data")) port_net(instance, "in_data");  // throws
  for (int k = 0; has_port(instance, stream_port_name("in", k, "data")); ++k) {
    bool used = false;
    for (const auto& key : used_inputs_) used |= key == std::make_pair(instance, k);
    if (used) continue;
    nl.add_port(Port{stream_port_name("in", k, "data"), PortDir::kInput, kDataW,
                     port_net(instance, stream_port_name("in", k, "data"))});
    nl.add_port(Port{stream_port_name("in", k, "valid"), PortDir::kInput, 1,
                     port_net(instance, stream_port_name("in", k, "valid"))});
    nl.add_port(Port{stream_port_name("in", k, "ready"), PortDir::kOutput, 1,
                     port_net(instance, stream_port_name("in", k, "ready"))});
  }
}

void Composer::expose_output(int instance) {
  Netlist& nl = design_.netlist;
  if (!has_port(instance, "out_data")) port_net(instance, "out_data");  // throws
  for (int k = 0; has_port(instance, stream_port_name("out", k, "data")); ++k) {
    bool used = false;
    for (const auto& key : used_outputs_) used |= key == std::make_pair(instance, k);
    if (used) continue;
    nl.add_port(Port{stream_port_name("out", k, "data"), PortDir::kOutput, kDataW,
                     port_net(instance, stream_port_name("out", k, "data"))});
    nl.add_port(Port{stream_port_name("out", k, "valid"), PortDir::kOutput, 1,
                     port_net(instance, stream_port_name("out", k, "valid"))});
    nl.add_port(Port{stream_port_name("out", k, "ready"), PortDir::kInput, 1,
                     port_net(instance, stream_port_name("out", k, "ready"))});
  }
}

ComposedDesign Composer::finish() && {
  // Gate the stitched netlist on the structural DRC subset before handing
  // it to placement. Unexposed stream inputs are legally driverless until
  // expose_input()/expose_output(), so net-dangling is waived here; the
  // flow-level gates re-run it unwaived after the boundary is exposed.
  DrcOptions opt;
  opt.waived_rules = {"net-dangling"};
  enforce_drc(run_structural_drc(design_.netlist, opt), "compose");
  return std::move(design_);
}

Netlist stitch_chain(const std::vector<const Netlist*>& stages, const std::string& name) {
  std::vector<StreamEdge> edges;
  for (std::size_t s = 0; s + 1 < stages.size(); ++s) {
    edges.push_back(StreamEdge{static_cast<int>(s), static_cast<int>(s + 1), 0, 0});
  }
  return stitch_graph(stages, edges, 0, static_cast<int>(stages.size()) - 1, name);
}

Netlist stitch_graph(const std::vector<const Netlist*>& stages,
                     const std::vector<StreamEdge>& edges, int input_stage,
                     int output_stage, const std::string& name) {
  Netlist top(name);
  std::vector<std::vector<Port>> ports;
  for (const Netlist* stage : stages) {
    const auto [cell_offset, net_offset] = top.merge(*stage);
    (void)cell_offset;
    std::vector<Port> adjusted = stage->ports();
    for (Port& port : adjusted) port.net += net_offset;
    ports.push_back(std::move(adjusted));
  }
  auto maybe_find = [&](int stage, const std::string& port_name) -> NetId {
    for (const Port& port : ports[static_cast<std::size_t>(stage)]) {
      if (port.name == port_name) return port.net;
    }
    return kInvalidNet;
  };
  auto find = [&](int stage, const std::string& port_name) -> NetId {
    const NetId net = maybe_find(stage, port_name);
    if (net == kInvalidNet) {
      throw std::runtime_error("stitch_graph: stage missing port '" + port_name + "'");
    }
    return net;
  };
  for (const StreamEdge& e : edges) {
    alias_net(top, find(e.to, stream_port_name("in", e.to_port, "data")),
              find(e.from, stream_port_name("out", e.from_port, "data")));
    alias_net(top, find(e.to, stream_port_name("in", e.to_port, "valid")),
              find(e.from, stream_port_name("out", e.from_port, "valid")));
    alias_net(top, find(e.from, stream_port_name("out", e.from_port, "ready")),
              find(e.to, stream_port_name("in", e.to_port, "ready")));
  }
  auto is_connected_input = [&](int stage, int port) {
    for (const StreamEdge& e : edges) {
      if (e.to == stage && e.to_port == port) return true;
    }
    return false;
  };
  auto is_connected_output = [&](int stage, int port) {
    for (const StreamEdge& e : edges) {
      if (e.from == stage && e.from_port == port) return true;
    }
    return false;
  };
  for (int k = 0; maybe_find(input_stage, stream_port_name("in", k, "data")) != kInvalidNet;
       ++k) {
    if (is_connected_input(input_stage, k)) continue;
    top.add_port(Port{stream_port_name("in", k, "data"), PortDir::kInput, kDataW,
                      find(input_stage, stream_port_name("in", k, "data"))});
    top.add_port(Port{stream_port_name("in", k, "valid"), PortDir::kInput, 1,
                      find(input_stage, stream_port_name("in", k, "valid"))});
    top.add_port(Port{stream_port_name("in", k, "ready"), PortDir::kOutput, 1,
                      find(input_stage, stream_port_name("in", k, "ready"))});
  }
  for (int k = 0;
       maybe_find(output_stage, stream_port_name("out", k, "data")) != kInvalidNet; ++k) {
    if (is_connected_output(output_stage, k)) continue;
    top.add_port(Port{stream_port_name("out", k, "data"), PortDir::kOutput, kDataW,
                      find(output_stage, stream_port_name("out", k, "data"))});
    top.add_port(Port{stream_port_name("out", k, "valid"), PortDir::kOutput, 1,
                      find(output_stage, stream_port_name("out", k, "valid"))});
    top.add_port(Port{stream_port_name("out", k, "ready"), PortDir::kInput, 1,
                      find(output_stage, stream_port_name("out", k, "ready"))});
  }
  return top;
}

}  // namespace fpgasim
