// Database of pre-built checkpoints (paper Fig. 3, "Database of pre-built
// checkpoints"). Keyed by a component signature so identical layers are
// implemented exactly once and reused across networks; optionally persists
// to a directory of .fdcp files.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "netlist/checkpoint.h"

namespace fpgasim {

class CheckpointDb {
 public:
  bool contains(const std::string& key) const { return entries_.count(key) != 0; }

  /// Stores (or replaces) a checkpoint under `key`.
  void put(const std::string& key, Checkpoint checkpoint);

  /// Fetches a checkpoint; nullptr when absent.
  const Checkpoint* get(const std::string& key) const;

  std::size_t size() const { return entries_.size(); }
  std::vector<std::string> keys() const;

  /// Total offline function-optimization time recorded in the database.
  double total_implement_seconds() const;

  /// Persists every entry as <dir>/<key>.fdcp. Keys that are not already
  /// filename-clean are sanitized and suffixed with a short content hash
  /// of the original key, keeping the key -> filename mapping injective
  /// (two distinct keys can never overwrite each other's file).
  void save_dir(const std::string& dir) const;
  /// Loads every *.fdcp in `dir`; returns the number loaded. Every
  /// checkpoint is DRC-gated; with `lint` true it must additionally come
  /// back clean from the fpgalint dataflow analyzer (throws on error
  /// findings) — the defense against a silently-defective checkpoint
  /// replicating into every composed network.
  std::size_t load_dir(const std::string& dir, bool lint = false);

 private:
  std::map<std::string, Checkpoint> entries_;
};

}  // namespace fpgasim
