// Content-addressed persistent checkpoint store (DESIGN.md §14): the
// paper's "database of pre-built checkpoints" (Fig. 3) turned into a
// cross-process artifact. Entries are keyed by a 128-bit content hash of
// (component signature, fabric signature); the on-disk layout is an
// append-friendly index file plus one immutable `.fdcp` per entry, written
// atomically (temp file + rename). An in-memory sharded LRU cache with a
// configurable byte budget makes repeated gets cheap: a checkpoint is
// deserialized — and DRC/lint-gated — at most once per process while it
// stays resident.
#pragma once

#include <atomic>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fabric/device.h"
#include "netlist/checkpoint.h"
#include "util/hash.h"

namespace fpgasim {

/// Stable identity of the fabric a checkpoint was implemented against:
/// device name, column layout and clock-region geometry. Part of the
/// content hash — the same component signature on a different fabric is a
/// different store entry (relocation anchors would not line up).
std::string fabric_signature(const Device& device);

struct StoreOptions {
  /// On-disk root directory. Empty selects the FPGASIM_STORE_DIR
  /// environment variable; when that is unset too, the store runs
  /// memory-only (the cache is then authoritative, and an eviction loses
  /// the entry — fine for tests, not for a shared database).
  std::string dir;
  /// In-memory cache byte budget. 0 selects FPGASIM_STORE_CACHE_BYTES
  /// (bytes) when set, else 256 MiB. The budget is split evenly across
  /// the shards; a shard always retains at least its most recent entry.
  std::size_t cache_bytes = 0;
  /// Cache shard count (each shard has its own mutex + LRU list).
  std::size_t shards = 8;
  /// Opt-in fpgalint gate on disk loads (the DRC gate always runs).
  bool lint = false;
};

struct StoreStats {
  std::size_t entries = 0;        // on-disk index entries
  std::size_t disk_bytes = 0;     // sum of entry file sizes
  std::size_t orphan_files = 0;   // *.fdcp present on disk but not indexed
  std::size_t missing_files = 0;  // indexed but file absent
  std::size_t cache_entries = 0;
  std::size_t cache_bytes = 0;
  std::size_t cache_budget = 0;
  std::uint64_t hits = 0;        // gets served from the in-memory cache
  std::uint64_t misses = 0;      // gets that had to go to disk (or failed)
  std::uint64_t disk_loads = 0;  // deserialize + gate round trips
  std::uint64_t evictions = 0;   // LRU entries dropped over budget
  std::uint64_t puts = 0;        // new entries persisted
};

/// Rough in-memory footprint of a checkpoint (structural payload; used
/// for the cache byte accounting). Deterministic for a given checkpoint.
std::size_t approx_checkpoint_bytes(const Checkpoint& checkpoint);

class CheckpointStore {
 public:
  explicit CheckpointStore(StoreOptions opt = {});

  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;

  /// The content hash: Hasher over a layout tag, the component signature
  /// and the fabric signature. Entry filenames are `<hex>.fdcp`.
  static Hash128 content_hash(const std::string& key, const std::string& fabric);

  struct IndexEntry {
    Hash128 hash;
    std::string key;     // component signature
    std::string fabric;  // fabric signature
    std::string path;    // entry file path ("" when memory-only)
    std::size_t bytes = 0;
  };

  /// True when the entry exists (in cache or on disk).
  bool contains(const std::string& key, const Device& device) const;

  /// Fetches a checkpoint; nullptr when absent. Cache hits are lock-brief
  /// pointer copies; misses deserialize from disk exactly once per
  /// process (concurrent loads of the same entry are deduplicated), DRC
  /// gate the bytes (plus fpgalint when StoreOptions::lint), then insert
  /// into the LRU. Throws when a present entry fails to load or gate.
  std::shared_ptr<const Checkpoint> get(const std::string& key, const Device& device);

  /// Persists a checkpoint (atomic temp-file + rename, then an index
  /// append) and inserts it into the cache. Content-addressed: a put of
  /// an already-present hash is a no-op beyond refreshing the cache (the
  /// determinism contract makes the bytes identical). Returns the cached
  /// pointer.
  std::shared_ptr<const Checkpoint> put(const std::string& key, const Device& device,
                                        Checkpoint checkpoint);

  /// Snapshot of the on-disk index, sorted by hash. bytes is the current
  /// file size (0 when the file is missing).
  std::vector<IndexEntry> index_entries() const;

  /// Removes every on-disk entry whose hash is not in `keep` (cache
  /// included) and rewrites the index file atomically. Returns the number
  /// of entries removed.
  std::size_t remove_unreferenced(const std::vector<Hash128>& keep);

  StoreStats stats() const;
  const std::string& dir() const { return dir_; }
  bool persistent() const { return !dir_.empty(); }

 private:
  struct CacheEntry {
    Hash128 hash;
    std::shared_ptr<const Checkpoint> checkpoint;
    std::size_t bytes = 0;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<CacheEntry> lru;  // front = most recently used
    std::map<Hash128, std::list<CacheEntry>::iterator> map;
    std::size_t bytes = 0;
  };

  Shard& shard_for(const Hash128& hash) const;
  std::shared_ptr<const Checkpoint> cache_find(const Hash128& hash);
  std::shared_ptr<const Checkpoint> cache_insert(const Hash128& hash,
                                                 std::shared_ptr<const Checkpoint> cp);
  std::shared_ptr<const Checkpoint> load_entry(const Hash128& hash, const std::string& key);
  std::string entry_path(const Hash128& hash) const;
  void append_index_line(const IndexEntry& entry);

  std::string dir_;
  std::size_t cache_budget_ = 0;
  bool lint_ = false;

  mutable std::mutex index_mutex_;
  std::map<Hash128, IndexEntry> index_;

  std::mutex inflight_mutex_;
  std::map<Hash128, std::shared_future<std::shared_ptr<const Checkpoint>>> inflight_loads_;

  mutable std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> hits_{0}, misses_{0}, disk_loads_{0}, evictions_{0}, puts_{0};
  std::atomic<std::uint64_t> tmp_counter_{0};
};

}  // namespace fpgasim
