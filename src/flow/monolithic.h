// The traditional "classic" flow the paper compares against: flat
// synthesis, clustering, whole-device SA placement, full routing, physical
// optimization (register insertion + driver replication on failing paths),
// final STA. Stage wall times are recorded for the productivity
// comparisons (Fig. 6 / Fig. 1a).
#pragma once

#include <cstdint>

#include "drc/drc.h"
#include "fabric/device.h"
#include "lint/lint.h"
#include "netlist/netlist.h"
#include "netlist/phys.h"
#include "route/router.h"
#include "timing/sta.h"

namespace fpgasim {

struct MonoOptions {
  std::uint64_t seed = 1;
  int cluster_size = 24;
  double moves_per_item = 160.0;
  bool phys_opt = true;
  int replication_fanout = 48;  // duplicate drivers above this fanout
  RouteOptions route;
  bool drc = true;         // run the DRC gate after placement and routing
  DrcOptions drc_options;  // waivers forwarded to every gate
  /// Opt-in fpgalint gate over the final (post-phys-opt) netlist.
  bool lint = false;
  lint::LintOptions lint_options;
  /// Opt-in compiled-verify gate: A/B the final netlist through the
  /// compiled bit-parallel simulator against the interpreter oracle.
  /// Throws on any bit divergence.
  bool compiled_verify = false;
  int compiled_verify_cycles = 24;
};

struct MonoReport {
  double cluster_seconds = 0.0;
  double place_seconds = 0.0;
  double route_seconds = 0.0;
  double phys_opt_seconds = 0.0;
  double sta_seconds = 0.0;
  double total_seconds = 0.0;      // wall time
  double total_cpu_seconds = 0.0;  // process CPU time over the same span

  NetlistStats stats;        // post-phys-opt
  TimingResult timing;
  RouteResult route;
  std::size_t inserted_ffs = 0;
  std::size_t replicated_drivers = 0;

  // DRC gate results (all empty when MonoOptions::drc is false).
  double drc_seconds = 0.0;
  DrcReport drc_place;  // structural + placement, after SA placement
  DrcReport drc;        // full check, after routing + phys_opt

  // fpgalint gate result (empty when MonoOptions::lint is false).
  double lint_seconds = 0.0;
  lint::LintReport lint;

  // Compiled-verify gate (false/0 when MonoOptions::compiled_verify off).
  double compiled_verify_seconds = 0.0;
  bool compiled_verify_ok = false;
};

/// Runs the baseline flow in place: `netlist` gains phys-opt cells and
/// `phys` receives placement + routing.
MonoReport run_monolithic_flow(const Device& device, Netlist& netlist, PhysState& phys,
                               const MonoOptions& opt = {});

}  // namespace fpgasim
