// 16-bit fixed-point numerics (Q8.8) matching the paper's "fixed 16"
// precision. All datapaths — golden models, DSP behavioural model and the
// CNN reference inference — share these exact semantics so netlist
// simulation can be compared bit-for-bit against golden outputs.
#pragma once

#include <algorithm>
#include <cstdint>

namespace fpgasim {

inline constexpr int kFixedFrac = 8;  // Q8.8

struct Fixed16 {
  std::int16_t raw = 0;

  static Fixed16 from_raw(std::int32_t r) {
    r = std::clamp<std::int32_t>(r, INT16_MIN, INT16_MAX);
    return Fixed16{static_cast<std::int16_t>(r)};
  }
  static Fixed16 from_double(double v) {
    return from_raw(static_cast<std::int32_t>(v * (1 << kFixedFrac)));
  }
  double to_double() const { return static_cast<double>(raw) / (1 << kFixedFrac); }

  friend Fixed16 operator+(Fixed16 a, Fixed16 b) {
    return from_raw(static_cast<std::int32_t>(a.raw) + b.raw);
  }
  friend Fixed16 operator-(Fixed16 a, Fixed16 b) {
    return from_raw(static_cast<std::int32_t>(a.raw) - b.raw);
  }
  /// Multiply with product >> 8, i.e. the DSP48 P-port bit-select used by
  /// the generated MAC units (truncation, not rounding).
  friend Fixed16 operator*(Fixed16 a, Fixed16 b) {
    const std::int32_t p = static_cast<std::int32_t>(a.raw) * b.raw;
    return from_raw(p >> kFixedFrac);
  }
  friend bool operator==(Fixed16, Fixed16) = default;
  friend auto operator<=>(Fixed16 a, Fixed16 b) { return a.raw <=> b.raw; }
};

inline Fixed16 fixed_max(Fixed16 a, Fixed16 b) { return a.raw >= b.raw ? a : b; }
inline Fixed16 fixed_relu(Fixed16 a) { return a.raw > 0 ? a : Fixed16{0}; }

/// Sign-extends the low `width` bits of v.
inline std::int64_t sext(std::uint64_t v, int width) {
  if (width >= 64) return static_cast<std::int64_t>(v);
  const std::uint64_t mask = (width == 64) ? ~0ULL : ((1ULL << width) - 1);
  v &= mask;
  const std::uint64_t sign = 1ULL << (width - 1);
  return static_cast<std::int64_t>((v ^ sign)) - static_cast<std::int64_t>(sign);
}

inline std::uint64_t mask_width(std::uint64_t v, int width) {
  return width >= 64 ? v : (v & ((1ULL << width) - 1));
}

/// Round-to-nearest-even signed division, `den > 0`: the integer nearest
/// to num/den, ties resolved toward the even quotient (IEEE-style). This
/// is the average-pool division rule; for power-of-two denominators it is
/// bit-exact with the avgpool engine's arithmetic-shift + adjust divider.
/// Safe across the whole int64 range: the tie test never forms 2*|r|, and
/// |num % den| < den <= INT64_MAX so no negation can overflow.
inline std::int64_t div_rne(std::int64_t num, std::int64_t den) {
  std::int64_t q = num / den;             // truncates toward zero
  const std::int64_t r = num % den;       // same sign as num, |r| < den
  if (r == 0) return q;
  const std::int64_t mag = r < 0 ? -r : r;
  const std::int64_t rest = den - mag;    // distance to the away-from-zero quotient
  const bool away = mag > rest || (mag == rest && (q & 1) != 0);
  if (away) q += num > 0 ? 1 : -1;
  return q;
}

}  // namespace fpgasim
