// Levelized functional simulator for bus-level netlists.
//
// Combinational cells (CONST/LUT/ADD/MAX/RELU and DSP with 0 pipeline
// stages) are evaluated in topological order; sequential cells (FF, SRL,
// BRAM sync read, pipelined DSP) update on step(). Used by the test suite
// to prove that the synthesis generators produce functionally correct
// hardware against the golden models.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace fpgasim {

class Simulator {
 public:
  /// Builds evaluation order. Throws std::runtime_error on combinational
  /// loops or undriven nets with sinks that are not module inputs.
  explicit Simulator(const Netlist& netlist);

  /// Drives a module input port. Value is masked to the port width. The
  /// combinational fabric is NOT re-settled here: settling is deferred to
  /// the next observation (get_output/peek_net) or step(), so driving a
  /// k-port interface costs k stores, not k full fabric sweeps.
  void set_input(const std::string& port_name, std::uint64_t value);

  /// Advances one clock cycle: sequential capture -> commit -> settle.
  void step();

  /// Runs n clock cycles.
  void run(int n) {
    for (int i = 0; i < n; ++i) step();
  }

  /// Reads a module output port (settling pending input changes first).
  std::uint64_t get_output(const std::string& port_name) const;

  /// Raw net value (debug / white-box tests; settles pending changes).
  std::uint64_t peek_net(NetId net) const {
    settle_if_dirty();
    return values_[net];
  }

  std::uint64_t cycle() const { return cycle_; }

  /// Number of full combinational sweeps performed so far (white-box
  /// counter for the lazy-settle contract: O(observations), not
  /// O(set_input calls)).
  std::size_t settles() const { return settles_; }

 private:
  void settle() const;  // propagate combinational logic
  void settle_if_dirty() const {
    if (dirty_) settle();
  }
  std::uint64_t eval_cell(CellId cell_id) const;
  std::uint64_t in_val(const Cell& cell, std::size_t pin) const;

  const Netlist& netlist_;
  // Logically const-observable state: reads settle lazily.
  mutable std::vector<std::uint64_t> values_;  // per net
  mutable bool dirty_ = false;                 // input changed since last settle
  mutable std::size_t settles_ = 0;
  std::vector<CellId> comb_order_;            // topological
  std::vector<CellId> seq_cells_;
  std::vector<std::deque<std::uint64_t>> pipes_;   // per cell (SRL/DSP/FF state)
  std::vector<std::vector<std::uint64_t>> mems_;   // per BRAM cell
  std::vector<std::int32_t> state_index_;          // cell -> pipes_/mems_ slot
  std::uint64_t cycle_ = 0;
};

}  // namespace fpgasim
