// Compiled levelized bit-parallel simulator.
//
// Where sim/simulator.h interprets the netlist cell-by-cell (one test
// vector at a time, per-eval pin resolution, std::deque sequential state),
// CompiledSim compiles a Netlist ONCE into a flat execution plan and then
// evaluates kLanes (64) independent test vectors per pass:
//
//   - the combinational fabric becomes a topologically *levelized*
//     schedule of fixed-size ops with pre-resolved input/output state
//     slots (no per-eval std::min, no branching on inputs.size(), no
//     name lookups);
//   - every net's value lives in one contiguous 64-wide word group of a
//     single flat array (lane-major: slot = net * kLanes + lane), so each
//     op kernel is a tight 64-iteration loop the compiler vectorizes;
//   - sequential state (FF/SRL pipes, DSP pipeline stages, BRAM
//     memories) is packed into flat arrays laid out at compile time —
//     read-only BRAMs (ROMs) keep a single lane-shared copy;
//   - constant cells are folded into the initial state and dropped from
//     the schedule.
//
// Semantics are pinned by the sim/eval.h contract; the interpreter stays
// the A/B oracle (see compare_compiled_vs_interpreter and
// tests/test_sim_compiled.cpp). Evaluation is single-threaded and
// deterministic: identical results at any FPGASIM_THREADS width.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace fpgasim {

class CompiledSim {
 public:
  /// Number of independent test vectors evaluated per pass.
  static constexpr std::size_t kLanes = 64;

  /// Compiles the netlist. Throws std::runtime_error on combinational
  /// loops (same contract as the interpreter).
  explicit CompiledSim(const Netlist& netlist);

  // -- port resolution (do once, drive by index) ----------------------------
  /// Index for set_inputs(); throws when `name` is not an input port.
  int input_index(const std::string& name) const;
  /// Index for get_outputs(); throws when `name` is not an output port.
  int output_index(const std::string& name) const;

  // -- batch driver API -----------------------------------------------------
  /// Drives an input port: lanes[l] becomes the port value of test vector
  /// l (masked to the port width). Fewer than kLanes entries leave the
  /// remaining lanes unchanged.
  void set_inputs(int input, std::span<const std::uint64_t> lanes);
  void set_inputs(const std::string& name, std::span<const std::uint64_t> lanes) {
    set_inputs(input_index(name), lanes);
  }
  /// Broadcasts one value to every lane of an input port.
  void set_inputs(int input, std::uint64_t value_all_lanes);

  /// Advances one clock cycle for all lanes: settle -> capture -> commit
  /// -> settle, the same two-phase edge as Simulator::step().
  void step();
  void run(int n) {
    for (int i = 0; i < n; ++i) step();
  }

  /// Reads an output port into lanes[0..min(size, kLanes)).
  void get_outputs(int output, std::span<std::uint64_t> lanes) const;
  void get_outputs(const std::string& name, std::span<std::uint64_t> lanes) const {
    get_outputs(output_index(name), lanes);
  }
  std::uint64_t get_output(int output, std::size_t lane) const;

  /// Raw net value of one lane (debug / white-box tests).
  std::uint64_t peek_net(NetId net, std::size_t lane) const;

  std::uint64_t cycle() const { return cycle_; }

  // -- compiled-plan statistics --------------------------------------------
  std::size_t comb_ops() const { return ops_.size(); }
  std::size_t seq_ops() const { return seq_.size(); }
  /// Number of levels in the levelized schedule (independent cells share
  /// a level; the schedule runs levels in order).
  std::size_t levels() const { return level_begin_.empty() ? 0 : level_begin_.size() - 1; }
  /// Total elements of packed state (net values + pipes + memories).
  std::size_t state_words() const {
    return state32_.size() + state64_.size() + pipe32_.size() + pipe64_.size() +
           mem32_.size() + mem64_.size();
  }
  /// Bytes per lane element: 4 when the whole design fits 32-bit lanes.
  std::size_t lane_bytes() const { return narrow_ ? 4 : 8; }

 private:
  // Compiled combinational opcode: CellType x LutOp flattened, constants
  // folded out. kCopy duplicates a value to an extra output pin.
  enum class Op : std::uint8_t {
    kAnd, kOr, kXor, kNot, kMux2, kEq, kLtU, kPass, kTruth6,
    kAdd, kSub, kMax, kRelu, kDsp,
  };

  struct CombOp {
    Op op = Op::kPass;
    std::uint16_t width = 1;
    std::uint32_t a = 0, b = 0, c = 0;  // input slot bases (kZeroSlot when absent)
    std::uint32_t out = 0;              // output slot base
    std::uint64_t mask = ~0ULL;         // precomputed mask_width(., width)
    std::uint64_t init = 0;             // truth table / DSP shift
    std::uint32_t fan_begin = 0, fan_count = 0;  // extra output slot bases
    std::uint32_t in_begin = 0, in_count = 0;    // kTruth6 input slot bases
  };

  // Sequential plan entry. Every kind owns a pipe of `depth` 64-wide
  // groups in pipe_state_, addressed as a ring: logical slot s (0 =
  // newest, depth-1 = the visible tail) lives at physical slot
  // (seq_head_[i] + s) % depth, so an all-lanes-enabled commit is O(1)
  // like the interpreter's deque rotate instead of an O(depth) shift.
  // kBram additionally owns a memory region in mem_state_.
  struct SeqOp {
    CellType type = CellType::kFf;
    bool has_ce = false;
    bool has_we = false;
    bool mem_shared = false;  // ROM without write port: one lane-shared copy
    std::uint16_t width = 1;
    std::uint32_t d = 0;      // capture slot base (FF/SRL d, DSP hidden MAC slot)
    std::uint32_t ce = 0;
    std::uint32_t capture = 0;  // kDsp: index into dsp_capture_
    std::uint32_t waddr = 0, wdata = 0, we = 0, raddr = 0;  // kBram
    std::uint32_t pipe_base = 0, depth = 1;
    std::uint32_t mem_base = 0, mem_depth = 0;
    std::uint64_t mask = ~0ULL;
    std::uint32_t fan_begin = 0, fan_count = 0;  // ALL connected output slot bases
  };

  struct PortPlan {
    std::string name;
    std::uint32_t slot = 0;  // net slot base
    std::uint16_t width = 1;
  };

  void settle() const;  // one levelized sweep over all 64 lanes
  // Outside of step(), state only goes stale through set_inputs(), and the
  // post-edge settle keeps everything else current — so the lazy re-settle
  // only has to run the ops downstream of input ports (cone_ops_), not the
  // whole fabric.
  void settle_if_dirty() const;
  // The evaluation core is templated on the lane word: when every cell
  // and port fits 32 bits (the CNN accelerators do — Q8.8 datapaths with
  // 24-bit accumulators), lanes are stored as uint32_t, halving the
  // memory traffic of the lane-major arrays and doubling the lanes per
  // vector register. Wide or unknown designs use the general uint64_t
  // engine. The choice is made once at compile time from the netlist;
  // the public API always speaks uint64_t and converts at the port
  // boundary. DSP MACs always use 64-bit intermediates (exact for any
  // operand width the narrow engine admits).
  template <typename W> void init_state(const Netlist& netlist, std::size_t state_elems,
                                        std::size_t pipe_elems, std::size_t mem_elems,
                                        std::size_t ring_elems);
  template <typename W> void settle_impl(const std::vector<CombOp>& ops) const;
  template <typename W> void step_impl();
  template <typename W> void eval_op(const CombOp& op) const;
  template <typename W> std::vector<W>& state_vec() const;
  template <typename W> std::vector<W>& pipe_vec();
  template <typename W> std::vector<W>& mem_vec();
  template <typename W> std::vector<W>& next_vec();
  template <typename W> std::vector<W>& ring_vec();

  std::vector<CombOp> ops_;            // levelized order
  std::vector<std::size_t> level_begin_;  // ops_ index of each level + end sentinel
  std::vector<CombOp> cone_ops_;       // ops downstream of input ports, in ops_ order
  std::vector<CombOp> dsp_capture_;    // per-edge MAC captures (not in settle)
  std::vector<SeqOp> seq_;
  std::vector<std::uint32_t> fanout_;  // extra/all output slot bases
  std::vector<std::uint32_t> truth_inputs_;

  // Lane state, (net_count + hidden + 1) * kLanes elements; exactly one
  // of each 32/64 pair is allocated, chosen by narrow_. Logically
  // const-observable: reads settle pending input changes first.
  mutable std::vector<std::uint32_t> state32_;
  mutable std::vector<std::uint64_t> state64_;
  mutable bool dirty_ = false;
  bool narrow_ = false;
  std::vector<std::uint32_t> pipe32_, mem32_, next32_, ring32_;
  std::vector<std::uint64_t> pipe64_, mem64_, next64_, ring64_;
  std::vector<std::uint32_t> seq_head_;  // ring head (physical slot of logical 0)
  std::vector<std::uint64_t> seq_en_;    // phase-1 enable bitmasks (bit = lane)

  std::vector<PortPlan> inputs_;
  std::vector<PortPlan> outputs_;

  std::size_t net_count_ = 0;
  std::uint64_t cycle_ = 0;
  std::string name_;
};

/// A/B oracle check. Drives `netlist` through the compiled simulator with
/// `cycles` cycles of seeded random stimulus (kLanes independent vectors,
/// every input port re-randomized each cycle), then replays each lane in
/// `lanes_to_check` (empty = all lanes) through the interpreter and
/// compares every output port on every cycle, pre- and post-edge.
/// Returns the empty string when bit-identical, else a description of the
/// first divergence.
std::string compare_compiled_vs_interpreter(const Netlist& netlist, int cycles,
                                            std::uint64_t seed,
                                            std::span<const int> lanes_to_check = {});

}  // namespace fpgasim
