// Compiled levelized bit-parallel simulator, split into an immutable
// shared *plan* and cheap per-worker *contexts*.
//
// Where sim/simulator.h interprets the netlist cell-by-cell (one test
// vector at a time, per-eval pin resolution, std::deque sequential state),
// SimPlan compiles a Netlist ONCE into a flat execution plan and a
// SimContext evaluates kLanes (64) independent test vectors per pass:
//
//   - the combinational fabric becomes a topologically *levelized*
//     schedule of fixed-size ops with pre-resolved input/output state
//     slots (no per-eval std::min, no branching on inputs.size(), no
//     name lookups);
//   - every net's value lives in one contiguous 64-wide word group of a
//     single flat arena (lane-major: slot = net * kLanes + lane), so each
//     op kernel is a tight 64-iteration loop the compiler vectorizes;
//   - sequential state (FF/SRL pipes, DSP pipeline stages, BRAM
//     memories) is packed into the same arena, laid out at compile time —
//     read-only BRAMs (ROMs) keep a single copy in the PLAN, shared by
//     every context (a VGG weight set is ~hundreds of MB; contexts stay
//     a few MB each);
//   - constant cells are folded into the plan's initial state image and
//     dropped from the schedule.
//
// The plan/state split is what makes traffic-scale serving cheap: compile
// once, then instantiate N contexts whose construction cost is one arena
// allocation plus an initial-image copy — no re-levelization. Contexts are
// fully independent (the plan is immutable after compile), so N of them
// can run on N threads with no synchronization; each context's arena is
// cache-line aligned so parallel contexts never false-share. reset()
// returns a context to the plan's initial state *reusing* its arena
// allocation — the per-batch path of src/sim/engine allocates nothing.
//
// Semantics are pinned by the sim/eval.h contract; the interpreter stays
// the A/B oracle (see compare_compiled_vs_interpreter and
// tests/test_sim_compiled.cpp). Evaluation of one context is
// single-threaded and deterministic: identical results at any
// FPGASIM_THREADS width.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "util/aligned.h"

namespace fpgasim {

/// Immutable compiled execution plan: levelized schedule, slot layout,
/// port tables, shared ROM images and the initial state image. Thread-safe
/// to share (const after construction); one plan serves any number of
/// concurrent SimContexts.
class SimPlan {
 public:
  /// Number of independent test vectors evaluated per pass.
  static constexpr std::size_t kLanes = 64;

  /// Compiles the netlist. Throws std::runtime_error on combinational
  /// loops (same contract as the interpreter).
  explicit SimPlan(const Netlist& netlist);

  /// Convenience: compile into the shared-ownership form every multi-
  /// context consumer wants.
  static std::shared_ptr<const SimPlan> compile(const Netlist& netlist) {
    return std::make_shared<const SimPlan>(netlist);
  }

  /// Process-wide count of plan compilations — the reuse oracle: benches
  /// and tests assert a measurement loop compiled exactly one plan.
  static std::uint64_t plans_compiled();

  const std::string& name() const { return name_; }

  // -- port resolution (do once, drive by index) ----------------------------
  /// Index for set_inputs(); throws when `name` is not an input port.
  int input_index(const std::string& name) const;
  /// Index for get_outputs(); throws when `name` is not an output port.
  int output_index(const std::string& name) const;
  std::size_t input_count() const { return inputs_.size(); }
  std::size_t output_count() const { return outputs_.size(); }
  const std::string& input_name(std::size_t i) const { return inputs_[i].name; }
  const std::string& output_name(std::size_t i) const { return outputs_[i].name; }

  // -- compiled-plan statistics ----------------------------------------------
  std::size_t comb_ops() const { return ops_.size(); }
  std::size_t seq_ops() const { return seq_.size(); }
  /// Number of levels in the levelized schedule (independent cells share
  /// a level; the schedule runs levels in order).
  std::size_t levels() const { return level_begin_.empty() ? 0 : level_begin_.size() - 1; }
  /// Bytes per lane element: 4 when the whole design fits 32-bit lanes.
  std::size_t lane_bytes() const { return narrow_ ? 4 : 8; }
  /// Elements held once in the plan and shared by all contexts (ROMs).
  std::size_t shared_words() const { return rom32_.size() + rom64_.size(); }
  /// Arena elements each context owns privately (nets + pipes + writable
  /// memories + scratch).
  std::size_t context_words() const { return layout_.total; }
  /// Nets in the compiled design (slot = net * kLanes + lane).
  std::size_t net_count() const { return net_count_; }

 private:
  friend class SimContext;

  // Compiled combinational opcode: CellType x LutOp flattened, constants
  // folded out.
  enum class Op : std::uint8_t {
    kAnd, kOr, kXor, kNot, kMux2, kEq, kLtU, kPass, kTruth6,
    kAdd, kSub, kMax, kRelu, kDsp,
  };

  struct CombOp {
    Op op = Op::kPass;
    std::uint16_t width = 1;
    std::uint32_t a = 0, b = 0, c = 0;  // input slot bases (kZeroSlot when absent)
    std::uint32_t out = 0;              // output slot base
    std::uint64_t mask = ~0ULL;         // precomputed mask_width(., width)
    std::uint64_t init = 0;             // truth table / DSP shift
    std::uint32_t fan_begin = 0, fan_count = 0;  // extra output slot bases
    std::uint32_t in_begin = 0, in_count = 0;    // kTruth6 input slot bases
  };

  // Sequential plan entry. Every kind owns a pipe of `depth` 64-wide
  // groups in the context's pipe section, addressed as a ring: logical
  // slot s (0 = newest, depth-1 = the visible tail) lives at physical slot
  // (seq_head_[i] + s) % depth, so an all-lanes-enabled commit is O(1)
  // like the interpreter's deque rotate instead of an O(depth) shift.
  // kBram additionally owns a memory region: lane-shared ROMs live in the
  // plan (rom32_/rom64_), writable memories in the context arena.
  struct SeqOp {
    CellType type = CellType::kFf;
    bool has_ce = false;
    bool has_we = false;
    bool mem_shared = false;  // ROM without write port: one plan-shared copy
    std::uint16_t width = 1;
    std::uint32_t d = 0;      // capture slot base (FF/SRL d, DSP hidden MAC slot)
    std::uint32_t ce = 0;
    std::uint32_t capture = 0;  // kDsp: index into dsp_capture_
    std::uint32_t waddr = 0, wdata = 0, we = 0, raddr = 0;  // kBram
    std::uint32_t pipe_base = 0, depth = 1;
    std::uint32_t mem_base = 0, mem_depth = 0;  // into rom (shared) or wmem
    std::uint64_t mask = ~0ULL;
    std::uint32_t fan_begin = 0, fan_count = 0;  // ALL connected output slot bases
  };

  struct PortPlan {
    std::string name;
    std::uint32_t slot = 0;  // net slot base
    std::uint16_t width = 1;
  };

  // Per-context arena layout, element offsets (lane words). Every section
  // starts on a cache-line boundary so two contexts — and the hot state /
  // pipe sections within one — never straddle a shared line.
  struct ArenaLayout {
    std::size_t state = 0;  // net values + hidden DSP slots + zero group
    std::size_t pipe = 0;   // ring-buffer pipes
    std::size_t next = 0;   // phase-1 capture scratch
    std::size_t ring = 0;   // CE-divergence normalize scratch
    std::size_t wmem = 0;   // writable BRAM contents
    std::size_t total = 0;
    std::size_t state_elems = 0, pipe_elems = 0, next_elems = 0, ring_elems = 0,
                wmem_elems = 0;
  };

  template <typename W> void build_init_images(const Netlist& netlist);
  template <typename W> const std::vector<W>& rom_vec() const {
    if constexpr (sizeof(W) == 4) return rom32_; else return rom64_;
  }
  template <typename W> const std::vector<W>& init_state_vec() const {
    if constexpr (sizeof(W) == 4) return init_state32_; else return init_state64_;
  }
  template <typename W> const std::vector<W>& init_wmem_vec() const {
    if constexpr (sizeof(W) == 4) return init_wmem32_; else return init_wmem64_;
  }

  std::vector<CombOp> ops_;            // levelized order
  std::vector<std::size_t> level_begin_;  // ops_ index of each level + end sentinel
  std::vector<CombOp> cone_ops_;       // ops downstream of input ports, in ops_ order
  std::vector<CombOp> dsp_capture_;    // per-edge MAC captures (not in settle)
  std::vector<SeqOp> seq_;
  std::vector<std::uint32_t> fanout_;  // extra/all output slot bases
  std::vector<std::uint32_t> truth_inputs_;

  // Initial state image: zeros with constants folded in. Contexts copy it
  // on construction and on reset().
  std::vector<std::uint32_t> init_state32_;
  std::vector<std::uint64_t> init_state64_;
  // Shared read-only memories (ROMs), one copy for every context.
  std::vector<std::uint32_t> rom32_;
  std::vector<std::uint64_t> rom64_;
  // Initial contents of writable memories (ROM-preloaded, else zero).
  std::vector<std::uint32_t> init_wmem32_;
  std::vector<std::uint64_t> init_wmem64_;

  std::vector<PortPlan> inputs_;
  std::vector<PortPlan> outputs_;

  ArenaLayout layout_;
  std::size_t net_count_ = 0;
  bool narrow_ = false;
  std::string name_;
};

/// One evaluation context over a shared plan: the mutable lane state. The
/// construction cost is state-only (one cache-aligned arena allocation +
/// the plan's initial-image copy); reset() reuses the allocation. Not
/// thread-safe per instance — use one context per worker.
class SimContext {
 public:
  static constexpr std::size_t kLanes = SimPlan::kLanes;

  explicit SimContext(std::shared_ptr<const SimPlan> plan);

  const SimPlan& plan() const { return *plan_; }
  const std::shared_ptr<const SimPlan>& plan_ptr() const { return plan_; }

  /// Returns to the plan's initial state (cycle 0, pipes flushed, writable
  /// memories re-imaged) without reallocating the arena.
  void reset();
  /// Number of reset() calls since construction (engine telemetry).
  std::size_t resets() const { return resets_; }

  // -- batch driver API -----------------------------------------------------
  /// Drives an input port: lanes[l] becomes the port value of test vector
  /// l (masked to the port width). Fewer than kLanes entries leave the
  /// remaining lanes unchanged.
  void set_inputs(int input, std::span<const std::uint64_t> lanes);
  void set_inputs(const std::string& name, std::span<const std::uint64_t> lanes) {
    set_inputs(plan_->input_index(name), lanes);
  }
  /// Broadcasts one value to every lane of an input port.
  void set_inputs(int input, std::uint64_t value_all_lanes);

  /// Batch-amortized frame path: drives EVERY input port from one
  /// port-major buffer (frame[i * kLanes + l] = port i, lane l) with a
  /// single dirty transition — the serving engine's hot path.
  void set_input_frame(std::span<const std::uint64_t> frame);
  /// Reads every output port into one port-major buffer.
  void get_output_frame(std::span<std::uint64_t> frame) const;

  /// Advances one clock cycle for all lanes: settle -> capture -> commit
  /// -> settle, the same two-phase edge as Simulator::step().
  void step();
  void run(int n) {
    for (int i = 0; i < n; ++i) step();
  }

  /// Reads an output port into lanes[0..min(size, kLanes)).
  void get_outputs(int output, std::span<std::uint64_t> lanes) const;
  void get_outputs(const std::string& name, std::span<std::uint64_t> lanes) const {
    get_outputs(plan_->output_index(name), lanes);
  }
  std::uint64_t get_output(int output, std::size_t lane) const;

  /// Raw net value of one lane (debug / white-box tests).
  std::uint64_t peek_net(NetId net, std::size_t lane) const;

  /// FNV-style fold over every net's value in every lane (settles pending
  /// inputs first). A long-latency accelerator may not raise an output
  /// port for thousands of cycles, so serving checksums fold this full
  /// datapath digest at batch end — any diverging net anywhere in the
  /// fabric changes it.
  std::uint64_t state_digest() const;

  std::uint64_t cycle() const { return cycle_; }

 private:
  void settle() const;  // one levelized sweep over all 64 lanes
  // Outside of step(), state only goes stale through set_inputs(), and the
  // post-edge settle keeps everything else current — so the lazy re-settle
  // only has to run the ops downstream of input ports (cone_ops_), not the
  // whole fabric.
  void settle_if_dirty() const;
  template <typename W> void reset_impl();
  template <typename W> void settle_impl(const std::vector<SimPlan::CombOp>& ops) const;
  template <typename W> void step_impl();
  template <typename W> void eval_op(const SimPlan::CombOp& op) const;
  // Arena section bases. The evaluation core is templated on the lane
  // word: when every cell and port fits 32 bits (the CNN accelerators do —
  // Q8.8 datapaths with 24-bit accumulators), lanes are stored as
  // uint32_t, halving the memory traffic of the lane-major arrays and
  // doubling the lanes per vector register. Wide or unknown designs use
  // the general uint64_t engine. The choice was made at plan compile time;
  // the public API always speaks uint64_t and converts at the port
  // boundary. DSP MACs always use 64-bit intermediates.
  template <typename W> W* arena() const {
    if constexpr (sizeof(W) == 4) return const_cast<std::uint32_t*>(arena32_.data());
    else return const_cast<std::uint64_t*>(arena64_.data());
  }
  template <typename W> W* state_base() const { return arena<W>() + plan_->layout_.state; }
  template <typename W> W* pipe_base() const { return arena<W>() + plan_->layout_.pipe; }
  template <typename W> W* next_base() const { return arena<W>() + plan_->layout_.next; }
  template <typename W> W* ring_base() const { return arena<W>() + plan_->layout_.ring; }
  template <typename W> W* wmem_base() const { return arena<W>() + plan_->layout_.wmem; }

  std::shared_ptr<const SimPlan> plan_;
  // One cache-aligned allocation per context: net state, pipes, capture
  // scratch, ring scratch and writable memories, each section itself
  // cache-line aligned (exactly one of the two is allocated, by lane
  // width). Logically const-observable: reads settle pending inputs first.
  CacheAlignedVector<std::uint32_t> arena32_;
  CacheAlignedVector<std::uint64_t> arena64_;
  std::vector<std::uint32_t> seq_head_;  // ring head (physical slot of logical 0)
  std::vector<std::uint64_t> seq_en_;    // phase-1 enable bitmasks (bit = lane)
  mutable bool dirty_ = false;
  std::uint64_t cycle_ = 0;
  std::size_t resets_ = 0;
};

/// Single-context convenience facade with the pre-split CompiledSim API:
/// compiles a private plan from a netlist, or wraps a shared plan (the
/// multi-context path — construction is then state-only).
class CompiledSim {
 public:
  static constexpr std::size_t kLanes = SimPlan::kLanes;

  explicit CompiledSim(const Netlist& netlist) : CompiledSim(SimPlan::compile(netlist)) {}
  explicit CompiledSim(std::shared_ptr<const SimPlan> plan)
      : plan_(std::move(plan)), ctx_(plan_) {}

  const std::shared_ptr<const SimPlan>& plan() const { return plan_; }
  SimContext& context() { return ctx_; }

  // -- port resolution ------------------------------------------------------
  int input_index(const std::string& name) const { return plan_->input_index(name); }
  int output_index(const std::string& name) const { return plan_->output_index(name); }

  // -- batch driver API -----------------------------------------------------
  void set_inputs(int input, std::span<const std::uint64_t> lanes) {
    ctx_.set_inputs(input, lanes);
  }
  void set_inputs(const std::string& name, std::span<const std::uint64_t> lanes) {
    ctx_.set_inputs(name, lanes);
  }
  void set_inputs(int input, std::uint64_t value_all_lanes) {
    ctx_.set_inputs(input, value_all_lanes);
  }
  void set_input_frame(std::span<const std::uint64_t> frame) { ctx_.set_input_frame(frame); }
  void get_output_frame(std::span<std::uint64_t> frame) const { ctx_.get_output_frame(frame); }

  void step() { ctx_.step(); }
  void run(int n) { ctx_.run(n); }
  void reset() { ctx_.reset(); }

  void get_outputs(int output, std::span<std::uint64_t> lanes) const {
    ctx_.get_outputs(output, lanes);
  }
  void get_outputs(const std::string& name, std::span<std::uint64_t> lanes) const {
    ctx_.get_outputs(name, lanes);
  }
  std::uint64_t get_output(int output, std::size_t lane) const {
    return ctx_.get_output(output, lane);
  }
  std::uint64_t peek_net(NetId net, std::size_t lane) const {
    return ctx_.peek_net(net, lane);
  }
  std::uint64_t cycle() const { return ctx_.cycle(); }

  // -- compiled-plan statistics --------------------------------------------
  std::size_t comb_ops() const { return plan_->comb_ops(); }
  std::size_t seq_ops() const { return plan_->seq_ops(); }
  std::size_t levels() const { return plan_->levels(); }
  /// Total elements of packed state: this context's arena plus the
  /// plan-shared ROM image.
  std::size_t state_words() const { return plan_->context_words() + plan_->shared_words(); }
  std::size_t lane_bytes() const { return plan_->lane_bytes(); }

 private:
  std::shared_ptr<const SimPlan> plan_;
  SimContext ctx_;
};

/// A/B oracle check. Drives `netlist` through the compiled simulator with
/// `cycles` cycles of seeded random stimulus (kLanes independent vectors,
/// every input port re-randomized each cycle), then replays each lane in
/// `lanes_to_check` (empty = all lanes) through the interpreter and
/// compares every output port on every cycle, pre- and post-edge.
/// Returns the empty string when bit-identical, else a description of the
/// first divergence. When `plan` is given it is reused (no recompilation);
/// it must have been compiled from `netlist`.
std::string compare_compiled_vs_interpreter(const Netlist& netlist, int cycles,
                                            std::uint64_t seed,
                                            std::span<const int> lanes_to_check = {},
                                            std::shared_ptr<const SimPlan> plan = nullptr);

}  // namespace fpgasim
