// Pure combinational cell evaluation, shared between the interpreter
// (sim/simulator.cpp) and the lint constant folder (lint/analyze_values.cpp)
// so "what does this cell compute" has exactly one definition. Sequential
// cells (FF/SRL/BRAM, pipelined DSP) are not handled here; callers model
// their state explicitly.
#pragma once

#include <cstdint>

#include "netlist/netlist.h"
#include "sim/fixed.h"

namespace fpgasim {

/// Maximum number of input pins any combinational primitive reads
/// (LutOp::kTruth6 consumes up to six single-bit operands).
inline constexpr std::size_t kMaxCombPins = 6;

namespace sim_detail {

inline std::int64_t clamp_signed(std::int64_t v, int width) {
  const std::int64_t hi = (1LL << (width - 1)) - 1;
  const std::int64_t lo = -(1LL << (width - 1));
  if (v > hi) return hi;
  if (v < lo) return lo;
  return v;
}

}  // namespace sim_detail

/// Evaluates one combinational cell given the settled values of its input
/// pins. `pins[i]` is the value on input pin i; missing/unconnected pins
/// must be passed as 0 (the interpreter's in_val convention). `n` is the
/// number of valid entries in `pins` (>= the pins the cell actually reads,
/// extra entries are ignored). Sequential cells return 0.
inline std::uint64_t eval_comb_cell(const Cell& cell, const std::uint64_t* pins,
                                    std::size_t n) {
  const int w = cell.width;
  const auto pin = [&](std::size_t i) -> std::uint64_t { return i < n ? pins[i] : 0; };
  const std::uint64_t a = pin(0);
  const std::uint64_t b = pin(1);
  switch (cell.type) {
    case CellType::kConst:
      return mask_width(cell.init, w);
    case CellType::kLut:
      switch (cell.op) {
        case LutOp::kAnd: return mask_width(a & b, w);
        case LutOp::kOr: return mask_width(a | b, w);
        case LutOp::kXor: return mask_width(a ^ b, w);
        case LutOp::kNot: return mask_width(~a, w);
        case LutOp::kMux2: return mask_width((pin(2) & 1) ? b : a, w);
        case LutOp::kEq: return a == b ? 1 : 0;
        case LutOp::kLtU: return a < b ? 1 : 0;
        case LutOp::kPass: return mask_width(a, w);
        case LutOp::kTruth6: {
          std::uint64_t index = 0;
          for (std::size_t i = 0; i < cell.inputs.size() && i < kMaxCombPins; ++i) {
            index |= (pin(i) & 1) << i;
          }
          return (cell.init >> index) & 1;
        }
      }
      return 0;
    case CellType::kAdd: {
      const bool sub = (cell.init & 1) != 0;
      return mask_width(sub ? a - b : a + b, w);
    }
    case CellType::kMax: {
      const std::int64_t sa = sext(a, w);
      const std::int64_t sb = sext(b, w);
      return mask_width(static_cast<std::uint64_t>(sa >= sb ? sa : sb), w);
    }
    case CellType::kRelu: {
      const std::int64_t sa = sext(a, w);
      return mask_width(static_cast<std::uint64_t>(sa > 0 ? sa : 0), w);
    }
    case CellType::kDsp: {
      const int shift = static_cast<int>(cell.init & 0x3f);
      const std::int64_t prod =
          sim_detail::clamp_signed((sext(a, w) * sext(b, w)) >> shift, w);
      const std::int64_t sum = sim_detail::clamp_signed(prod + sext(pin(2), w), w);
      return mask_width(static_cast<std::uint64_t>(sum), w);
    }
    case CellType::kFf:
    case CellType::kSrl:
    case CellType::kBram:
      return 0;  // sequential cells are not evaluated here
  }
  return 0;
}

}  // namespace fpgasim
