// The simulation semantics contract: one definition of "what does this
// cell compute", shared by the interpreter (sim/simulator.cpp), the
// compiled bit-parallel simulator (sim/compiled.cpp) and the lint constant
// folder (lint/analyze_values.cpp). Combinational cells are evaluated by
// eval_comb_cell(); sequential cells keep their state in the caller, but
// the *shape* of that state (pipeline depth, pin roles, update order) is
// pinned down here so the two simulators stay bit-identical oracles of
// each other:
//
//   kFf   pins: [0]=d, [1]=clock enable (optional). 1-deep pipe; on step()
//         the pipe captures mask_width(d) when enabled, output = pipe tail.
//   kSrl  pins: [0]=d, [1]=clock enable (optional). `depth`-deep pipe,
//         shifts as one unit when enabled (output = d delayed by depth
//         enabled cycles).
//   kDsp  (stages > 0) pins as eval_comb_cell; `stages`-deep pipe always
//         enabled, capturing the combinational MAC value.
//   kBram pins: [0]=write address (also read address when pin 3 absent),
//         [1]=wdata, [2]=we, [3]=read address. Read-first: the 1-deep
//         output pipe captures mem[raddr] *before* the write lands; both
//         happen on step(). Out-of-range reads return 0, out-of-range
//         writes are dropped. rom_id >= 0 preloads the memory.
//
// step() is a two-phase edge: every sequential cell's next value is
// captured from the settled fabric first, then all pipes commit, then the
// combinational fabric re-settles. Multi-output cells fan the single
// evaluated value out to every connected output pin.
#pragma once

#include <cstdint>

#include "netlist/netlist.h"
#include "sim/fixed.h"

namespace fpgasim {

/// Maximum number of input pins any combinational primitive reads
/// (LutOp::kTruth6 consumes up to six single-bit operands).
inline constexpr std::size_t kMaxCombPins = 6;

/// True when the cell holds clocked state (updates on step(), not during
/// settle): FF, SRL, BRAM, and DSPs with internal pipeline registers.
inline bool is_sequential_cell(const Cell& cell) {
  switch (cell.type) {
    case CellType::kFf:
    case CellType::kSrl:
    case CellType::kBram:
      return true;
    case CellType::kDsp:
      return cell.stages > 0;
    default:
      return false;
  }
}

/// Depth of a sequential cell's output pipeline (always >= 1; the BRAM
/// pipe is the registered read value).
inline std::size_t seq_pipe_depth(const Cell& cell) {
  std::size_t depth = 1;
  if (cell.type == CellType::kSrl) depth = cell.depth;
  if (cell.type == CellType::kDsp) depth = cell.stages;
  return depth < 1 ? 1 : depth;
}

namespace sim_detail {

inline std::int64_t clamp_signed(std::int64_t v, int width) {
  // Width >= 64 buses already saturate at the int64 range; shifting by
  // width-1 == 63 would overflow (UB), so pass the value through.
  if (width >= 64) return v;
  const std::int64_t hi = (1LL << (width - 1)) - 1;
  const std::int64_t lo = -hi - 1;
  if (v > hi) return hi;
  if (v < lo) return lo;
  return v;
}

}  // namespace sim_detail

/// Evaluates one combinational cell given the settled values of its input
/// pins. `pins[i]` is the value on input pin i; missing/unconnected pins
/// must be passed as 0 (the interpreter's in_val convention). `n` is the
/// number of valid entries in `pins` (>= the pins the cell actually reads,
/// extra entries are ignored). Sequential cells return 0.
inline std::uint64_t eval_comb_cell(const Cell& cell, const std::uint64_t* pins,
                                    std::size_t n) {
  const int w = cell.width;
  const auto pin = [&](std::size_t i) -> std::uint64_t { return i < n ? pins[i] : 0; };
  const std::uint64_t a = pin(0);
  const std::uint64_t b = pin(1);
  switch (cell.type) {
    case CellType::kConst:
      return mask_width(cell.init, w);
    case CellType::kLut:
      switch (cell.op) {
        case LutOp::kAnd: return mask_width(a & b, w);
        case LutOp::kOr: return mask_width(a | b, w);
        case LutOp::kXor: return mask_width(a ^ b, w);
        case LutOp::kNot: return mask_width(~a, w);
        case LutOp::kMux2: return mask_width((pin(2) & 1) ? b : a, w);
        case LutOp::kEq: return a == b ? 1 : 0;
        case LutOp::kLtU: return a < b ? 1 : 0;
        case LutOp::kPass: return mask_width(a, w);
        case LutOp::kTruth6: {
          std::uint64_t index = 0;
          for (std::size_t i = 0; i < cell.inputs.size() && i < kMaxCombPins; ++i) {
            index |= (pin(i) & 1) << i;
          }
          return (cell.init >> index) & 1;
        }
      }
      return 0;
    case CellType::kAdd: {
      const bool sub = (cell.init & 1) != 0;
      return mask_width(sub ? a - b : a + b, w);
    }
    case CellType::kMax: {
      const std::int64_t sa = sext(a, w);
      const std::int64_t sb = sext(b, w);
      return mask_width(static_cast<std::uint64_t>(sa >= sb ? sa : sb), w);
    }
    case CellType::kRelu: {
      const std::int64_t sa = sext(a, w);
      return mask_width(static_cast<std::uint64_t>(sa > 0 ? sa : 0), w);
    }
    case CellType::kDsp: {
      const int shift = static_cast<int>(cell.init & 0x3f);
      // Multiply and accumulate wrap in the unsigned domain: for wide
      // operands the mathematical product exceeds int64, and signed
      // overflow is UB — two's-complement wrap is the defined (and
      // hardware-accurate) semantics both simulators share.
      const std::int64_t raw = static_cast<std::int64_t>(
          static_cast<std::uint64_t>(sext(a, w)) *
          static_cast<std::uint64_t>(sext(b, w)));
      const std::int64_t prod = sim_detail::clamp_signed(raw >> shift, w);
      const std::int64_t sum = sim_detail::clamp_signed(
          static_cast<std::int64_t>(static_cast<std::uint64_t>(prod) +
                                    static_cast<std::uint64_t>(sext(pin(2), w))),
          w);
      return mask_width(static_cast<std::uint64_t>(sum), w);
    }
    case CellType::kFf:
    case CellType::kSrl:
    case CellType::kBram:
      return 0;  // sequential cells are not evaluated here
  }
  return 0;
}

}  // namespace fpgasim
