#include "sim/engine/engine.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "sim/simulator.h"
#include "util/aligned.h"
#include "util/hash.h"
#include "util/rng.h"

namespace fpgasim {
namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::size_t env_contexts() {
  const char* env = std::getenv("FPGASIM_ENGINE_CONTEXTS");
  if (env == nullptr) return 0;
  const long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<std::size_t>(v) : 0;
}

}  // namespace

std::uint64_t engine_shard_seed(std::uint64_t seed, std::uint64_t shard) {
  return splitmix64(seed ^ splitmix64(shard));
}

std::uint64_t EngineStats::fingerprint() const {
  const Hash128 h = Hasher()
                        .u64(vectors)
                        .u64(lane_cycles)
                        .u64(checksum)
                        .u64(oracle_checks)
                        .u64(batches)
                        .digest();
  return h.hi ^ h.lo;
}

// Per-shard stat slot: written by exactly one worker, on its own cache
// line, merged after the barrier — the hot path takes no lock and shares
// no line.
struct alignas(kCacheLineBytes) InferenceEngine::Shard {
  std::uint64_t vectors = 0;
  std::uint64_t lane_cycles = 0;
  std::uint64_t checksum = 0;
  std::uint64_t oracle_checks = 0;
  std::uint64_t oracle_failures = 0;
  std::string failure;  // empty unless this shard's audit diverged
};

InferenceEngine::InferenceEngine(const Netlist& netlist, EngineOptions options,
                                 ThreadPool* pool)
    : InferenceEngine(netlist, SimPlan::compile(netlist), options, pool) {}

InferenceEngine::InferenceEngine(const Netlist& netlist,
                                 std::shared_ptr<const SimPlan> plan,
                                 EngineOptions options, ThreadPool* pool)
    : netlist_(netlist), plan_(std::move(plan)), opt_(options), pool_(pool) {
  if (opt_.cycles_per_batch < 1) {
    throw std::runtime_error("engine: cycles_per_batch must be >= 1");
  }
  std::size_t n = opt_.contexts;
  if (n == 0) n = env_contexts();
  if (n == 0) n = pool_ != nullptr ? pool_->size() : ThreadPool::default_width();
  n = std::clamp<std::size_t>(n, 1, kMaxContexts);
  contexts_.reserve(n);
  in_frames_.resize(n);
  out_frames_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    contexts_.push_back(std::make_unique<SimContext>(plan_));
    in_frames_[i].assign(plan_->input_count() * kLanes, 0);
    out_frames_[i].assign(plan_->output_count() * kLanes, 0);
  }
  free_mask_.store(n >= 64 ? ~0ULL : ((1ULL << n) - 1), std::memory_order_relaxed);
}

std::size_t InferenceEngine::acquire_context() {
  for (;;) {
    std::uint64_t mask = free_mask_.load(std::memory_order_acquire);
    while (mask != 0) {
      const auto idx = static_cast<std::size_t>(std::countr_zero(mask));
      if (free_mask_.compare_exchange_weak(mask, mask & ~(1ULL << idx),
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
        return idx;
      }
      // CAS refreshed `mask`; retry on the updated view.
    }
    // All contexts busy (more workers than contexts): let a holder finish.
    std::this_thread::yield();
  }
}

void InferenceEngine::release_context(std::size_t idx) {
  free_mask_.fetch_or(1ULL << idx, std::memory_order_acq_rel);
}

void InferenceEngine::run_shard(std::size_t shard_index, int cycles, Shard& out) {
  const std::size_t ci = acquire_context();
  SimContext& ctx = *contexts_[ci];
  std::vector<std::uint64_t>& in_frame = in_frames_[ci];
  std::vector<std::uint64_t>& out_frame = out_frames_[ci];
  ctx.reset();

  const std::size_t in_count = plan_->input_count();
  const std::size_t out_count = plan_->output_count();
  const bool audited =
      opt_.check_every != 0 && shard_index % opt_.check_every == 0;
  const auto audit_lane =
      static_cast<std::size_t>((opt_.check_every != 0
                                    ? shard_index / opt_.check_every
                                    : 0) % kLanes);
  // Audited shards record one lane's full stimulus/response trajectory for
  // the interpreter replay below.
  std::vector<std::uint64_t> audit_stim;
  std::vector<std::uint64_t> audit_out;
  if (audited) {
    audit_stim.reserve(static_cast<std::size_t>(cycles) * in_count);
    audit_out.reserve(static_cast<std::size_t>(cycles) * out_count);
  }

  Rng rng(engine_shard_seed(opt_.seed, shard_index));
  std::uint64_t checksum = 0;
  for (int cycle = 0; cycle < cycles; ++cycle) {
    for (std::uint64_t& v : in_frame) v = rng();
    ctx.set_input_frame(in_frame);
    ctx.step();
    ctx.get_output_frame(out_frame);
    for (const std::uint64_t v : out_frame) checksum = (checksum ^ v) * kFnvPrime;
    if (audited) {
      for (std::size_t i = 0; i < in_count; ++i) {
        audit_stim.push_back(in_frame[i * kLanes + audit_lane]);
      }
      for (std::size_t o = 0; o < out_count; ++o) {
        audit_out.push_back(out_frame[o * kLanes + audit_lane]);
      }
    }
  }
  // End-of-batch full-state digest: a deep accelerator pipeline may not
  // raise an output port within one batch, so the output-frame fold alone
  // would checksum nothing but zeros. Folding every net of every lane
  // makes the checksum (and the width-identity fingerprint built on it)
  // sensitive to the whole datapath.
  checksum = (checksum ^ ctx.state_digest()) * kFnvPrime;
  // Audited shards also snapshot the audit lane's final per-net state for
  // the interpreter comparison below (must copy before the context is
  // released to another shard).
  const std::size_t net_count = plan_->net_count();
  std::vector<std::uint64_t> audit_nets;
  if (audited) {
    audit_nets.resize(net_count);
    for (std::size_t n = 0; n < net_count; ++n) {
      audit_nets[n] = ctx.peek_net(static_cast<NetId>(n), audit_lane);
    }
  }
  release_context(ci);

  out.vectors = static_cast<std::uint64_t>(cycles) * kLanes;
  out.lane_cycles = out.vectors;
  out.checksum = checksum;

  if (!audited) return;
  // Interpreter oracle: replay the audited lane vector-for-vector and
  // compare every output port on every cycle.
  out.oracle_checks = 1;
  Simulator oracle(netlist_);
  for (int cycle = 0; cycle < cycles; ++cycle) {
    for (std::size_t i = 0; i < in_count; ++i) {
      oracle.set_input(plan_->input_name(i),
                       audit_stim[static_cast<std::size_t>(cycle) * in_count + i]);
    }
    oracle.step();
    for (std::size_t o = 0; o < out_count; ++o) {
      const std::uint64_t want = oracle.get_output(plan_->output_name(o));
      std::uint64_t have = audit_out[static_cast<std::size_t>(cycle) * out_count + o];
      if (opt_.corrupt_oracle) have ^= 1;
      if (want != have) {
        out.oracle_failures = 1;
        out.failure = "shard " + std::to_string(shard_index) + " lane " +
                      std::to_string(audit_lane) + " cycle " + std::to_string(cycle) +
                      " port '" + plan_->output_name(o) + "': interpreter " +
                      std::to_string(want) + ", compiled " + std::to_string(have);
        return;
      }
    }
  }
  // Deep check: every net of the audited lane at end of batch, so the A/B
  // bites even while the design's outputs are still in their pipeline
  // latency shadow.
  for (std::size_t n = 0; n < net_count; ++n) {
    const std::uint64_t want = oracle.peek_net(static_cast<NetId>(n));
    std::uint64_t have = audit_nets[n];
    if (opt_.corrupt_oracle) have ^= 1;
    if (want != have) {
      out.oracle_failures = 1;
      out.failure = "shard " + std::to_string(shard_index) + " lane " +
                    std::to_string(audit_lane) + " net " + std::to_string(n) +
                    " (end of batch): interpreter " + std::to_string(want) +
                    ", compiled " + std::to_string(have);
      return;
    }
  }
}

EngineStats InferenceEngine::serve(std::uint64_t total_vectors) {
  const auto per_batch = static_cast<std::uint64_t>(opt_.cycles_per_batch) * kLanes;
  const std::uint64_t batches = std::max<std::uint64_t>(1, (total_vectors + per_batch - 1) / per_batch);

  std::vector<Shard> shards(static_cast<std::size_t>(batches));
  const auto t0 = std::chrono::steady_clock::now();
  parallel_for(
      0, static_cast<std::size_t>(batches),
      [&](std::size_t b) { run_shard(b, opt_.cycles_per_batch, shards[b]); }, pool_);
  const auto t1 = std::chrono::steady_clock::now();

  // Deterministic merge: fold the per-shard slots in shard order. The
  // checksum merge is order-sensitive (Hasher stream), so a wrong-order
  // merge — not just a wrong value — changes the fingerprint.
  EngineStats stats;
  stats.batches = batches;
  Hasher chk;
  for (const Shard& s : shards) {
    stats.vectors += s.vectors;
    stats.lane_cycles += s.lane_cycles;
    stats.oracle_checks += s.oracle_checks;
    stats.oracle_failures += s.oracle_failures;
    if (!s.failure.empty() && stats.first_failure.empty()) {
      stats.first_failure = s.failure;
    }
    chk.u64(s.checksum);
  }
  const Hash128 folded = chk.digest();
  stats.checksum = folded.hi ^ folded.lo;
  stats.contexts = contexts_.size();
  stats.threads = pool_ != nullptr ? pool_->size() : ThreadPool::global().size();
  std::size_t resets = 0;
  for (const auto& ctx : contexts_) resets += ctx->resets();
  stats.resets = resets;
  stats.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  if (stats.wall_seconds > 0) {
    stats.vectors_per_sec = static_cast<double>(stats.vectors) / stats.wall_seconds;
    stats.lane_cycles_per_sec =
        static_cast<double>(stats.lane_cycles) / stats.wall_seconds;
  }
  return stats;
}

}  // namespace fpgasim
