// Traffic-scale inference engine: serves batched 64-lane vector streams
// through a compiled design across the work-stealing thread pool.
//
// The serving model sits directly on the plan/state split in
// sim/compiled.h: the netlist is compiled ONCE into an immutable SimPlan,
// and the engine owns a small pool of SimContexts (per-worker lane state,
// construction cost state-only). A request stream of `total_vectors`
// inference vectors is sharded at 64-lane-batch granularity: one shard =
// one freshly reset context driven `cycles_per_batch` clock cycles with
// per-cycle re-randomized stimulus, i.e. kLanes x cycles_per_batch vectors
// (a *vector* is one input frame on one lane for one cycle). Shards run
// under parallel_for; each writes a private cache-line-aligned stat slot
// (no locks, no false sharing), and the slots are merged sequentially in
// shard order after the barrier.
//
// Determinism contract (inherits util/thread_pool.h's): a shard's work is
// a pure function of its shard index — stimulus comes from an Rng seeded
// by mix(seed, shard), contexts are reset to the plan's initial state
// before use, and the merge folds stats in shard order. Every pool width
// (FPGASIM_THREADS 1, 2, 8, ...) therefore produces byte-identical
// EngineStats up to wall-clock fields; EngineStats::fingerprint() hashes
// exactly the width-invariant subset.
//
// Statistical golden-model agreement: every `check_every`-th shard also
// replays one rotating lane of its whole batch through the interpreter
// (sim/simulator.h, the semantics oracle) and compares every output port
// on every cycle — a continuous A/B audit at ~1/(64*check_every) of the
// serving cost, in the spirit of the compiled/interpreter cross-check
// that gates the flow tests.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/compiled.h"
#include "util/thread_pool.h"

namespace fpgasim {

struct EngineOptions {
  /// Simulation contexts to instantiate. 0 selects the
  /// FPGASIM_ENGINE_CONTEXTS environment variable when set to a positive
  /// integer, else the serving pool's width. Clamped to [1, 64].
  std::size_t contexts = 0;
  /// Clock cycles per shard; one shard serves kLanes * cycles_per_batch
  /// vectors. Larger batches amortize the context reset.
  int cycles_per_batch = 32;
  /// Interpreter A/B audit every N-th shard (rotating lane). 0 disables.
  std::size_t check_every = 64;
  /// Stimulus seed; shard s draws from Rng(mix(seed, s)).
  std::uint64_t seed = 1;
  /// Test hook: corrupts the compiled-side value inside every oracle
  /// comparison, so each audited shard must report a failure (proves the
  /// statistical check actually bites).
  bool corrupt_oracle = false;
};

struct EngineStats {
  std::uint64_t batches = 0;
  std::uint64_t vectors = 0;      // total inference vectors served
  std::uint64_t lane_cycles = 0;  // vectors, counted as lane-clock-cycles
  std::uint64_t checksum = 0;     // order-sensitive fold of every output value
  std::uint64_t oracle_checks = 0;
  std::uint64_t oracle_failures = 0;
  std::string first_failure;  // first divergence, in shard order
  std::size_t contexts = 0;
  std::size_t threads = 0;
  std::size_t resets = 0;  // context resets (== batches; telemetry)
  double wall_seconds = 0.0;
  double vectors_per_sec = 0.0;
  double lane_cycles_per_sec = 0.0;

  /// Width-invariant digest: hashes the result fields that the
  /// determinism contract pins (vectors, lane_cycles, checksum,
  /// oracle_checks, batches) and none of the timing/sizing fields.
  /// Identical across FPGASIM_THREADS widths and context counts.
  std::uint64_t fingerprint() const;

  bool ok() const { return oracle_failures == 0 && batches > 0; }
};

/// Multi-context serving engine over one compiled plan.
class InferenceEngine {
 public:
  static constexpr std::size_t kLanes = SimPlan::kLanes;
  static constexpr std::size_t kMaxContexts = 64;  // free-list is one u64 bitmask

  /// Compiles `netlist` once (or adopts `plan` when given — zero
  /// compilations). The netlist reference must outlive the engine: the
  /// interpreter oracle replays against it.
  InferenceEngine(const Netlist& netlist, EngineOptions options = {},
                  ThreadPool* pool = nullptr);
  InferenceEngine(const Netlist& netlist, std::shared_ptr<const SimPlan> plan,
                  EngineOptions options = {}, ThreadPool* pool = nullptr);

  const SimPlan& plan() const { return *plan_; }
  std::size_t context_count() const { return contexts_.size(); }

  /// Serves at least `total_vectors` inference vectors (rounded up to
  /// whole 64-lane batches) and returns the merged, deterministic stats.
  /// Thread-safe against itself only through external serialization; one
  /// serve() call internally fans out across the pool.
  EngineStats serve(std::uint64_t total_vectors);

 private:
  struct Shard;  // per-shard aligned stat slot (engine.cpp)

  std::size_t acquire_context();
  void release_context(std::size_t idx);
  void run_shard(std::size_t shard_index, int cycles, Shard& out);

  const Netlist& netlist_;
  std::shared_ptr<const SimPlan> plan_;
  EngineOptions opt_;
  ThreadPool* pool_;  // nullptr = ThreadPool::global()
  std::vector<std::unique_ptr<SimContext>> contexts_;
  // Per-context scratch frames (input/output port-major buffers), reused
  // across every batch the context serves — the steady-state serve loop
  // performs no allocation.
  std::vector<std::vector<std::uint64_t>> in_frames_;
  std::vector<std::vector<std::uint64_t>> out_frames_;
  std::atomic<std::uint64_t> free_mask_{0};  // bit set = context free
};

/// splitmix64-style shard seed derivation (exposed for tests that
/// reproduce a shard's stimulus independently).
std::uint64_t engine_shard_seed(std::uint64_t seed, std::uint64_t shard);

}  // namespace fpgasim
