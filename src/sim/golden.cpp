#include "sim/golden.h"

#include <cassert>

namespace fpgasim {

Tensor golden_conv2d(const Tensor& input, const std::vector<Fixed16>& weights,
                     const std::vector<Fixed16>& bias, int out_channels, int kernel,
                     int stride) {
  const int out_h = (input.height - kernel) / stride + 1;
  const int out_w = (input.width - kernel) / stride + 1;
  assert(weights.size() == static_cast<std::size_t>(out_channels) * input.channels * kernel *
                               kernel);
  assert(bias.size() == static_cast<std::size_t>(out_channels));
  Tensor out = Tensor::zeros(out_channels, out_h, out_w);
  for (int oc = 0; oc < out_channels; ++oc) {
    for (int oy = 0; oy < out_h; ++oy) {
      for (int ox = 0; ox < out_w; ++ox) {
        Fixed16 acc = bias[static_cast<std::size_t>(oc)];
        for (int ic = 0; ic < input.channels; ++ic) {
          for (int ky = 0; ky < kernel; ++ky) {
            for (int kx = 0; kx < kernel; ++kx) {
              const Fixed16 w =
                  weights[static_cast<std::size_t>(((oc * input.channels + ic) * kernel + ky) *
                                                       kernel +
                                                   kx)];
              const Fixed16 v = input.at(ic, oy * stride + ky, ox * stride + kx);
              acc = acc + w * v;
            }
          }
        }
        out.at(oc, oy, ox) = acc;
      }
    }
  }
  return out;
}

Tensor golden_maxpool(const Tensor& input, int kernel) {
  const int out_h = input.height / kernel;
  const int out_w = input.width / kernel;
  Tensor out = Tensor::zeros(input.channels, out_h, out_w);
  for (int c = 0; c < input.channels; ++c) {
    for (int oy = 0; oy < out_h; ++oy) {
      for (int ox = 0; ox < out_w; ++ox) {
        Fixed16 best = input.at(c, oy * kernel, ox * kernel);
        for (int ky = 0; ky < kernel; ++ky) {
          for (int kx = 0; kx < kernel; ++kx) {
            best = fixed_max(best, input.at(c, oy * kernel + ky, ox * kernel + kx));
          }
        }
        out.at(c, oy, ox) = best;
      }
    }
  }
  return out;
}

namespace {

/// RNE mean of one rectangular window; the sum is exact in int64 so the
/// division sees the same value as the engine's 24-bit accumulator.
Fixed16 window_mean(const Tensor& input, int c, int y0, int x0, int kh, int kw) {
  std::int64_t sum = 0;
  for (int ky = 0; ky < kh; ++ky) {
    for (int kx = 0; kx < kw; ++kx) {
      sum += input.at(c, y0 + ky, x0 + kx).raw;
    }
  }
  // The mean of int16 values is itself in int16 range, so no clamp fires.
  return Fixed16::from_raw(
      static_cast<std::int32_t>(div_rne(sum, static_cast<std::int64_t>(kh) * kw)));
}

}  // namespace

Tensor golden_avgpool(const Tensor& input, int kernel) {
  const int out_h = input.height / kernel;
  const int out_w = input.width / kernel;
  Tensor out = Tensor::zeros(input.channels, out_h, out_w);
  for (int c = 0; c < input.channels; ++c) {
    for (int oy = 0; oy < out_h; ++oy) {
      for (int ox = 0; ox < out_w; ++ox) {
        out.at(c, oy, ox) = window_mean(input, c, oy * kernel, ox * kernel, kernel, kernel);
      }
    }
  }
  return out;
}

Tensor golden_global_avgpool(const Tensor& input) {
  Tensor out = Tensor::zeros(input.channels, 1, 1);
  for (int c = 0; c < input.channels; ++c) {
    out.at(c, 0, 0) = window_mean(input, c, 0, 0, input.height, input.width);
  }
  return out;
}

Tensor golden_dwconv2d(const Tensor& input, const std::vector<Fixed16>& weights,
                       const std::vector<Fixed16>& bias, int kernel, int stride) {
  const int out_h = (input.height - kernel) / stride + 1;
  const int out_w = (input.width - kernel) / stride + 1;
  assert(weights.size() ==
         static_cast<std::size_t>(input.channels) * kernel * kernel);
  assert(bias.size() == static_cast<std::size_t>(input.channels));
  Tensor out = Tensor::zeros(input.channels, out_h, out_w);
  for (int c = 0; c < input.channels; ++c) {
    for (int oy = 0; oy < out_h; ++oy) {
      for (int ox = 0; ox < out_w; ++ox) {
        Fixed16 acc = bias[static_cast<std::size_t>(c)];
        for (int ky = 0; ky < kernel; ++ky) {
          for (int kx = 0; kx < kernel; ++kx) {
            const Fixed16 w =
                weights[static_cast<std::size_t>((c * kernel + ky) * kernel + kx)];
            acc = acc + w * input.at(c, oy * stride + ky, ox * stride + kx);
          }
        }
        out.at(c, oy, ox) = acc;
      }
    }
  }
  return out;
}

Tensor golden_upsample_nn(const Tensor& input, int factor) {
  Tensor out = Tensor::zeros(input.channels, input.height * factor, input.width * factor);
  for (int c = 0; c < input.channels; ++c) {
    for (int y = 0; y < out.height; ++y) {
      for (int x = 0; x < out.width; ++x) {
        out.at(c, y, x) = input.at(c, y / factor, x / factor);
      }
    }
  }
  return out;
}

Tensor golden_relu(const Tensor& input) {
  Tensor out = input;
  for (Fixed16& v : out.data) v = fixed_relu(v);
  return out;
}

std::vector<Fixed16> golden_fc(const std::vector<Fixed16>& input,
                               const std::vector<Fixed16>& weights,
                               const std::vector<Fixed16>& bias, int outputs) {
  assert(weights.size() == static_cast<std::size_t>(outputs) * input.size());
  assert(bias.size() == static_cast<std::size_t>(outputs));
  std::vector<Fixed16> out(static_cast<std::size_t>(outputs));
  for (int o = 0; o < outputs; ++o) {
    Fixed16 acc = bias[static_cast<std::size_t>(o)];
    for (std::size_t i = 0; i < input.size(); ++i) {
      acc = acc + weights[static_cast<std::size_t>(o) * input.size() + i] * input[i];
    }
    out[static_cast<std::size_t>(o)] = acc;
  }
  return out;
}

Tensor golden_add(const std::vector<const Tensor*>& inputs) {
  assert(inputs.size() >= 2);
  Tensor out = *inputs.front();
  for (std::size_t k = 1; k < inputs.size(); ++k) {
    const Tensor& in = *inputs[k];
    assert(in.data.size() == out.data.size());
    for (std::size_t i = 0; i < out.data.size(); ++i) {
      out.data[i] = out.data[i] + in.data[i];  // Fixed16::+ saturates
    }
  }
  return out;
}

Tensor golden_concat(const std::vector<const Tensor*>& inputs) {
  assert(inputs.size() >= 2);
  int channels = 0;
  for (const Tensor* in : inputs) {
    assert(in->height == inputs.front()->height && in->width == inputs.front()->width);
    channels += in->channels;
  }
  Tensor out{channels, inputs.front()->height, inputs.front()->width, {}};
  out.data.reserve(static_cast<std::size_t>(channels) * out.height * out.width);
  for (const Tensor* in : inputs) {
    out.data.insert(out.data.end(), in->data.begin(), in->data.end());
  }
  return out;
}

}  // namespace fpgasim
