#include "sim/simulator.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "sim/eval.h"
#include "sim/fixed.h"

namespace fpgasim {
namespace {

// The interpreter and the compiled simulator must agree on what counts as
// clocked state; the shared predicate lives in the sim/eval.h contract.
bool is_sequential(const Cell& cell) { return is_sequential_cell(cell); }

}  // namespace

Simulator::Simulator(const Netlist& netlist) : netlist_(netlist) {
  values_.assign(netlist_.net_count(), 0);
  state_index_.assign(netlist_.cell_count(), -1);

  // Collect sequential cells and allocate their state.
  for (CellId c = 0; c < netlist_.cell_count(); ++c) {
    const Cell& cell = netlist_.cell(c);
    if (!is_sequential(cell)) continue;
    seq_cells_.push_back(c);
    if (cell.type == CellType::kBram) {
      state_index_[c] = static_cast<std::int32_t>(mems_.size());
      std::vector<std::uint64_t> mem(cell.bram_depth, 0);
      if (cell.rom_id >= 0) {
        const auto& rom = netlist_.rom(cell.rom_id);
        for (std::size_t i = 0; i < mem.size() && i < rom.size(); ++i) {
          mem[i] = mask_width(rom[i], cell.width);
        }
      }
      mems_.push_back(std::move(mem));
      // BRAM also needs a 1-deep pipe for the registered read value.
      pipes_.emplace_back(1, 0);
    } else {
      state_index_[c] = static_cast<std::int32_t>(pipes_.size());
      pipes_.emplace_back(seq_pipe_depth(cell), 0);
    }
  }

  // Topological order of combinational cells (Kahn).
  std::vector<int> indegree(netlist_.cell_count(), 0);
  std::vector<CellId> comb_cells;
  for (CellId c = 0; c < netlist_.cell_count(); ++c) {
    const Cell& cell = netlist_.cell(c);
    if (is_sequential(cell)) continue;
    comb_cells.push_back(c);
    for (NetId in : cell.inputs) {
      if (in == kInvalidNet) continue;
      const Net& net = netlist_.net(in);
      if (net.driver != kInvalidCell && !is_sequential(netlist_.cell(net.driver))) {
        ++indegree[c];
      }
    }
  }
  std::queue<CellId> ready;
  for (CellId c : comb_cells) {
    if (indegree[c] == 0) ready.push(c);
  }
  while (!ready.empty()) {
    const CellId c = ready.front();
    ready.pop();
    comb_order_.push_back(c);
    for (NetId out : netlist_.cell(c).outputs) {
      if (out == kInvalidNet) continue;
      for (const auto& [sink, pin] : netlist_.net(out).sinks) {
        if (is_sequential(netlist_.cell(sink))) continue;
        if (--indegree[sink] == 0) ready.push(sink);
      }
    }
  }
  if (comb_order_.size() != comb_cells.size()) {
    throw std::runtime_error("simulator: combinational loop in netlist '" + netlist_.name() +
                             "'");
  }

  // Sequential outputs start at 0; settle the combinational fabric.
  settle();
}

std::uint64_t Simulator::in_val(const Cell& cell, std::size_t pin) const {
  if (pin >= cell.inputs.size() || cell.inputs[pin] == kInvalidNet) return 0;
  return values_[cell.inputs[pin]];
}

std::uint64_t Simulator::eval_cell(CellId cell_id) const {
  const Cell& cell = netlist_.cell(cell_id);
  std::uint64_t pins[kMaxCombPins] = {};
  const std::size_t n = std::min(cell.inputs.size(), kMaxCombPins);
  for (std::size_t i = 0; i < n; ++i) pins[i] = in_val(cell, i);
  return eval_comb_cell(cell, pins, n);
}

void Simulator::settle() const {
  for (CellId c : comb_order_) {
    const Cell& cell = netlist_.cell(c);
    if (cell.outputs.empty()) continue;
    const std::uint64_t v = eval_cell(c);
    // One evaluated value fanned out to every connected output pin.
    for (NetId out : cell.outputs) {
      if (out != kInvalidNet) values_[out] = v;
    }
  }
  dirty_ = false;
  ++settles_;
}

void Simulator::set_input(const std::string& port_name, std::uint64_t value) {
  const Port* port = netlist_.find_port(port_name);
  if (port == nullptr || port->dir != PortDir::kInput) {
    throw std::runtime_error("simulator: no input port '" + port_name + "'");
  }
  const std::uint64_t masked = mask_width(value, port->width);
  if (values_[port->net] != masked) {
    values_[port->net] = masked;
    dirty_ = true;  // settled lazily on the next observation or step()
  }
}

std::uint64_t Simulator::get_output(const std::string& port_name) const {
  const Port* port = netlist_.find_port(port_name);
  if (port == nullptr || port->dir != PortDir::kOutput) {
    throw std::runtime_error("simulator: no output port '" + port_name + "'");
  }
  settle_if_dirty();
  return values_[port->net];
}

void Simulator::step() {
  settle_if_dirty();  // phase 1 must read a settled fabric
  // Phase 1: capture next states from the settled fabric.
  std::vector<std::uint64_t> next(seq_cells_.size(), 0);
  std::vector<bool> enabled(seq_cells_.size(), true);
  for (std::size_t i = 0; i < seq_cells_.size(); ++i) {
    const Cell& cell = netlist_.cell(seq_cells_[i]);
    switch (cell.type) {
      case CellType::kFf:
      case CellType::kSrl: {
        next[i] = mask_width(in_val(cell, 0), cell.width);
        if (cell.inputs.size() > 1 && cell.inputs[1] != kInvalidNet) {
          enabled[i] = (in_val(cell, 1) & 1) != 0;
        }
        break;
      }
      case CellType::kDsp:
        next[i] = eval_cell(seq_cells_[i]);
        break;
      case CellType::kBram: {
        // Dual-port: pin0 = write address (also read when pin3 absent),
        // pin1 = wdata, pin2 = we, pin3 = read address.
        const std::uint64_t waddr = in_val(cell, 0);
        const bool has_raddr = cell.inputs.size() > 3 && cell.inputs[3] != kInvalidNet;
        const std::uint64_t raddr = has_raddr ? in_val(cell, 3) : waddr;
        auto& mem = mems_[static_cast<std::size_t>(state_index_[seq_cells_[i]])];
        next[i] = raddr < mem.size() ? mem[raddr] : 0;  // read-first
        const bool we =
            cell.inputs.size() > 2 && cell.inputs[2] != kInvalidNet && (in_val(cell, 2) & 1);
        if (we && waddr < mem.size()) mem[waddr] = mask_width(in_val(cell, 1), cell.width);
        break;
      }
      default:
        break;
    }
  }

  // Phase 2: commit. pipes_ was filled in seq_cells_ order (one per cell).
  for (std::size_t i = 0; i < seq_cells_.size(); ++i) {
    const CellId id = seq_cells_[i];
    const Cell& cell = netlist_.cell(id);
    std::deque<std::uint64_t>& pipe = pipes_[i];
    if (enabled[i]) {
      pipe.push_front(next[i]);
      pipe.pop_back();
    }
    for (NetId out : cell.outputs) {
      if (out != kInvalidNet) values_[out] = pipe.back();
    }
  }

  // Phase 3: settle combinational logic on the new state.
  settle();
  ++cycle_;
}

}  // namespace fpgasim
