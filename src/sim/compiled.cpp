#include "sim/compiled.h"

#include <algorithm>
#include <atomic>
#include <queue>
#include <stdexcept>

#include "sim/eval.h"
#include "sim/fixed.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace fpgasim {
namespace {

constexpr std::size_t kLanes = SimPlan::kLanes;

std::uint64_t width_mask(int width) {
  return width >= 64 ? ~0ULL : ((1ULL << width) - 1);
}

std::atomic<std::uint64_t> g_plans_compiled{0};

}  // namespace

std::uint64_t SimPlan::plans_compiled() {
  return g_plans_compiled.load(std::memory_order_relaxed);
}

SimPlan::SimPlan(const Netlist& netlist) : name_(netlist.name()) {
  net_count_ = netlist.net_count();
  const auto slot_of = [](NetId n) { return static_cast<std::uint32_t>(n * kLanes); };

  // Hidden slot groups: one per pipelined DSP (its combinational MAC value,
  // computed during settle, captured by the pipe on step), plus a single
  // always-zero group that unconnected input pins resolve to.
  std::vector<std::uint32_t> dsp_hidden(netlist.cell_count(), 0);
  std::size_t hidden = 0;
  for (CellId c = 0; c < netlist.cell_count(); ++c) {
    const Cell& cell = netlist.cell(c);
    if (cell.type == CellType::kDsp && cell.stages > 0) {
      dsp_hidden[c] = static_cast<std::uint32_t>((net_count_ + hidden) * kLanes);
      ++hidden;
    }
  }
  const auto zero_slot = static_cast<std::uint32_t>((net_count_ + hidden) * kLanes);
  const std::size_t state_elems = (net_count_ + hidden + 1) * kLanes;

  const auto pin_slot = [&](const Cell& cell, std::size_t pin) -> std::uint32_t {
    if (pin >= cell.inputs.size() || cell.inputs[pin] == kInvalidNet) return zero_slot;
    return slot_of(cell.inputs[pin]);
  };

  // Schedule nodes: combinational cells minus constants. Kahn over
  // comb->comb edges detects loops and yields a topological order; levels
  // are the longest-path depth, so cells within a level are independent.
  // (Pipelined-DSP MAC captures are NOT part of the settle schedule: they
  // are only needed once per clock edge, so they evaluate in step()
  // phase 1 against the already-settled fabric — the interpreter likewise
  // computes each MAC once per cycle.)
  struct Node {
    CellId cell;
  };
  std::vector<Node> nodes;
  std::vector<std::int32_t> comb_node(netlist.cell_count(), -1);
  for (CellId c = 0; c < netlist.cell_count(); ++c) {
    const Cell& cell = netlist.cell(c);
    if (cell.type == CellType::kConst || is_sequential_cell(cell)) continue;
    comb_node[c] = static_cast<std::int32_t>(nodes.size());
    nodes.push_back({c});
  }

  std::vector<int> indegree(nodes.size(), 0);
  for (const Node& node : nodes) {
    const Cell& cell = netlist.cell(node.cell);
    for (NetId in : cell.inputs) {
      if (in == kInvalidNet) continue;
      const Net& net = netlist.net(in);
      if (net.driver != kInvalidCell && comb_node[net.driver] >= 0) {
        ++indegree[static_cast<std::size_t>(comb_node[node.cell])];
      }
    }
  }
  std::vector<int> level(nodes.size(), 0);
  std::queue<std::size_t> ready;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (indegree[i] == 0) ready.push(i);
  }
  std::size_t processed = 0;
  int max_level = -1;
  while (!ready.empty()) {
    const std::size_t i = ready.front();
    ready.pop();
    ++processed;
    max_level = std::max(max_level, level[i]);
    for (NetId out : netlist.cell(nodes[i].cell).outputs) {
      if (out == kInvalidNet) continue;
      for (const auto& [sink, pin] : netlist.net(out).sinks) {
        (void)pin;
        const std::int32_t j = comb_node[sink];
        if (j < 0) continue;
        level[static_cast<std::size_t>(j)] =
            std::max(level[static_cast<std::size_t>(j)], level[i] + 1);
        if (--indegree[static_cast<std::size_t>(j)] == 0) {
          ready.push(static_cast<std::size_t>(j));
        }
      }
    }
  }
  if (processed != nodes.size()) {
    throw std::runtime_error("compiled sim: combinational loop in netlist '" + name_ + "'");
  }

  // Stable (level, cell-id) order: deterministic and levelized.
  std::vector<std::size_t> order(nodes.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    if (level[x] != level[y]) return level[x] < level[y];
    return nodes[x].cell < nodes[y].cell;
  });

  level_begin_.assign(static_cast<std::size_t>(max_level + 2), 0);
  for (std::size_t i : order) {
    const Node& node = nodes[i];
    const Cell& cell = netlist.cell(node.cell);

    CombOp op;
    op.width = cell.width;
    op.mask = width_mask(cell.width);
    op.init = cell.init;
    op.a = pin_slot(cell, 0);
    op.b = pin_slot(cell, 1);
    op.c = pin_slot(cell, 2);

    {
      switch (cell.type) {
        case CellType::kLut:
          switch (cell.op) {
            case LutOp::kAnd: op.op = Op::kAnd; break;
            case LutOp::kOr: op.op = Op::kOr; break;
            case LutOp::kXor: op.op = Op::kXor; break;
            case LutOp::kNot: op.op = Op::kNot; break;
            case LutOp::kMux2: op.op = Op::kMux2; break;
            case LutOp::kEq: op.op = Op::kEq; break;
            case LutOp::kLtU: op.op = Op::kLtU; break;
            case LutOp::kPass: op.op = Op::kPass; break;
            case LutOp::kTruth6: {
              op.op = Op::kTruth6;
              op.in_begin = static_cast<std::uint32_t>(truth_inputs_.size());
              const std::size_t n = std::min(cell.inputs.size(), kMaxCombPins);
              for (std::size_t p = 0; p < n; ++p) truth_inputs_.push_back(pin_slot(cell, p));
              op.in_count = static_cast<std::uint32_t>(n);
              break;
            }
          }
          break;
        case CellType::kAdd:
          op.op = (cell.init & 1) != 0 ? Op::kSub : Op::kAdd;
          break;
        case CellType::kMax: op.op = Op::kMax; break;
        case CellType::kRelu: op.op = Op::kRelu; break;
        case CellType::kDsp: op.op = Op::kDsp; break;  // stages == 0
        default:
          continue;  // unreachable: consts folded, sequentials below
      }
      // Primary output plus explicit fan-out of any further output pins.
      std::uint32_t primary = zero_slot;
      bool have_primary = false;
      for (NetId out : cell.outputs) {
        if (out == kInvalidNet) continue;
        if (!have_primary) {
          primary = slot_of(out);
          have_primary = true;
        } else {
          if (op.fan_count == 0) op.fan_begin = static_cast<std::uint32_t>(fanout_.size());
          fanout_.push_back(slot_of(out));
          ++op.fan_count;
        }
      }
      if (!have_primary) continue;  // nothing observable
      op.out = primary;
    }
    level_begin_[static_cast<std::size_t>(level[i]) + 1] += 1;
    ops_.push_back(op);
  }
  // Prefix-sum the per-level counts into [begin, end) offsets.
  for (std::size_t l = 1; l < level_begin_.size(); ++l) {
    level_begin_[l] += level_begin_[l - 1];
  }

  // One MAC-capture op per pipelined DSP, evaluated once per clock edge in
  // step() phase 1 (the fabric is settled there, so no levelization
  // needed); the result lands in the DSP's hidden slot.
  for (CellId c = 0; c < netlist.cell_count(); ++c) {
    const Cell& cell = netlist.cell(c);
    if (cell.type != CellType::kDsp || cell.stages == 0) continue;
    CombOp op;
    op.op = Op::kDsp;
    op.width = cell.width;
    op.mask = width_mask(cell.width);
    op.init = cell.init;
    op.a = pin_slot(cell, 0);
    op.b = pin_slot(cell, 1);
    op.c = pin_slot(cell, 2);
    op.out = dsp_hidden[c];
    dsp_capture_.push_back(op);
  }

  // Sequential plan, in cell order (deterministic; order is semantically
  // irrelevant thanks to the two-phase edge). The memory address space is
  // split at compile time: read-only BRAMs (no write port) hold
  // lane-invariant contents, so one copy lives in the PLAN and is shared
  // by every context (a VGG coefficient set would otherwise cost 64x per
  // context); writable memories get a lane-major copy in each context's
  // arena.
  std::size_t pipe_words = 0;
  std::size_t rom_words = 0;
  std::size_t wmem_words = 0;
  std::uint32_t capture_index = 0;
  for (CellId c = 0; c < netlist.cell_count(); ++c) {
    const Cell& cell = netlist.cell(c);
    if (!is_sequential_cell(cell)) continue;

    SeqOp sq;
    sq.type = cell.type;
    sq.width = cell.width;
    sq.mask = width_mask(cell.width);
    sq.depth = static_cast<std::uint32_t>(seq_pipe_depth(cell));
    sq.pipe_base = static_cast<std::uint32_t>(pipe_words);
    pipe_words += sq.depth * kLanes;

    switch (cell.type) {
      case CellType::kFf:
      case CellType::kSrl:
        sq.d = pin_slot(cell, 0);
        sq.has_ce = cell.inputs.size() > 1 && cell.inputs[1] != kInvalidNet;
        if (sq.has_ce) sq.ce = slot_of(cell.inputs[1]);
        break;
      case CellType::kDsp:
        sq.d = dsp_hidden[c];  // MAC value computed by the capture op
        sq.capture = capture_index++;
        break;
      case CellType::kBram: {
        sq.waddr = pin_slot(cell, 0);
        sq.wdata = pin_slot(cell, 1);
        sq.has_we = cell.inputs.size() > 2 && cell.inputs[2] != kInvalidNet;
        if (sq.has_we) sq.we = slot_of(cell.inputs[2]);
        const bool has_raddr = cell.inputs.size() > 3 && cell.inputs[3] != kInvalidNet;
        sq.raddr = has_raddr ? slot_of(cell.inputs[3]) : sq.waddr;
        sq.mem_depth = cell.bram_depth;
        sq.mem_shared = !sq.has_we;
        if (sq.mem_shared) {
          sq.mem_base = static_cast<std::uint32_t>(rom_words);
          rom_words += sq.mem_depth;
        } else {
          sq.mem_base = static_cast<std::uint32_t>(wmem_words);
          wmem_words += static_cast<std::size_t>(sq.mem_depth) * kLanes;
        }
        break;
      }
      default:
        break;
    }

    for (NetId out : cell.outputs) {
      if (out == kInvalidNet) continue;
      if (sq.fan_count == 0) sq.fan_begin = static_cast<std::uint32_t>(fanout_.size());
      fanout_.push_back(slot_of(out));
      ++sq.fan_count;
    }
    seq_.push_back(sq);
  }
  std::uint32_t max_depth = 1;
  for (const SeqOp& sq : seq_) max_depth = std::max(max_depth, sq.depth);

  // Port tables (name -> slot, resolved once).
  for (const Port& port : netlist.ports()) {
    PortPlan plan{port.name, slot_of(port.net), port.width};
    (port.dir == PortDir::kInput ? inputs_ : outputs_).push_back(plan);
  }

  // Input cone: the subset of comb ops transitively downstream of input
  // ports. After a clock edge the whole fabric is settled, and only
  // set_inputs() can invalidate it — so the lazy pre-edge re-settle runs
  // just these ops instead of the full schedule (the bulk of a datapath
  // hangs off registers and memories, not directly off input pins).
  {
    std::vector<char> in_cone(state_elems / kLanes, 0);
    for (const PortPlan& in : inputs_) in_cone[in.slot / kLanes] = 1;
    for (const CombOp& op : ops_) {
      bool hit = in_cone[op.a / kLanes] || in_cone[op.b / kLanes] ||
                 in_cone[op.c / kLanes];
      for (std::uint32_t j = 0; !hit && j < op.in_count; ++j) {
        hit = in_cone[truth_inputs_[op.in_begin + j] / kLanes] != 0;
      }
      if (!hit) continue;
      cone_ops_.push_back(op);
      in_cone[op.out / kLanes] = 1;
      for (std::uint32_t f = 0; f < op.fan_count; ++f) {
        in_cone[fanout_[op.fan_begin + f] / kLanes] = 1;
      }
    }
  }

  // Lane word selection: 32-bit lanes when every value in the design fits
  // (DSP MACs use 64-bit intermediates either way, so any shift is safe),
  // else the general 64-bit engine.
  narrow_ = true;
  for (CellId c = 0; c < netlist.cell_count(); ++c) {
    if (netlist.cell(c).width > 32) narrow_ = false;
  }
  for (const Port& port : netlist.ports()) {
    if (port.width > 32) narrow_ = false;
  }

  // Per-context arena layout. Every section is a whole number of 64-wide
  // lane groups, so each starts cache-line aligned regardless of lane
  // width; align_elems guards the invariant if a section ever stops being
  // group-granular.
  const std::size_t elem_bytes = narrow_ ? 4 : 8;
  layout_.state_elems = state_elems;
  layout_.pipe_elems = pipe_words;
  layout_.next_elems = seq_.size() * kLanes;
  layout_.ring_elems = static_cast<std::size_t>(max_depth) * kLanes;
  layout_.wmem_elems = wmem_words;
  layout_.state = 0;
  layout_.pipe = layout_.state + align_elems(layout_.state_elems, elem_bytes);
  layout_.next = layout_.pipe + align_elems(layout_.pipe_elems, elem_bytes);
  layout_.ring = layout_.next + align_elems(layout_.next_elems, elem_bytes);
  layout_.wmem = layout_.ring + align_elems(layout_.ring_elems, elem_bytes);
  layout_.total = layout_.wmem + align_elems(layout_.wmem_elems, elem_bytes);

  if (narrow_) {
    build_init_images<std::uint32_t>(netlist);
  } else {
    build_init_images<std::uint64_t>(netlist);
  }
  g_plans_compiled.fetch_add(1, std::memory_order_relaxed);
}

template <typename W>
void SimPlan::build_init_images(const Netlist& netlist) {
  constexpr bool kNarrowW = sizeof(W) == 4;
  auto& init_state = [this]() -> std::vector<W>& {
    if constexpr (kNarrowW) return init_state32_; else return init_state64_;
  }();
  auto& rom = [this]() -> std::vector<W>& {
    if constexpr (kNarrowW) return rom32_; else return rom64_;
  }();
  auto& init_wmem = [this]() -> std::vector<W>& {
    if constexpr (kNarrowW) return init_wmem32_; else return init_wmem64_;
  }();
  init_state.assign(layout_.state_elems, 0);
  init_wmem.assign(layout_.wmem_elems, 0);

  // Fold constants into the initial state image; they never change, so
  // contexts inherit them on construction and reset.
  for (CellId c = 0; c < netlist.cell_count(); ++c) {
    const Cell& cell = netlist.cell(c);
    if (cell.type != CellType::kConst) continue;
    const W v = static_cast<W>(mask_width(cell.init, cell.width));
    for (NetId out : cell.outputs) {
      if (out == kInvalidNet) continue;
      std::fill_n(&init_state[out * kLanes], kLanes, v);
    }
  }

  // ROM preloads: read-only memories into the shared plan image, writable
  // ROM-initialized memories into the per-context initial image.
  std::size_t rom_total = 0;
  for (const SeqOp& sq : seq_) {
    if (sq.mem_shared) rom_total += sq.mem_depth;
  }
  rom.assign(rom_total, 0);
  std::size_t si = 0;
  for (CellId c = 0; c < netlist.cell_count(); ++c) {
    const Cell& cell = netlist.cell(c);
    if (!is_sequential_cell(cell)) continue;
    SeqOp& sq = seq_[si++];
    if (cell.type != CellType::kBram || cell.rom_id < 0) continue;
    const auto& image = netlist.rom(cell.rom_id);
    for (std::size_t i = 0; i < sq.mem_depth && i < image.size(); ++i) {
      const W v = static_cast<W>(mask_width(image[i], cell.width));
      if (sq.mem_shared) {
        rom[sq.mem_base + i] = v;
      } else {
        std::fill_n(&init_wmem[sq.mem_base + i * kLanes], kLanes, v);
      }
    }
  }
}

int SimPlan::input_index(const std::string& name) const {
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    if (inputs_[i].name == name) return static_cast<int>(i);
  }
  throw std::runtime_error("compiled sim: no input port '" + name + "'");
}

int SimPlan::output_index(const std::string& name) const {
  for (std::size_t i = 0; i < outputs_.size(); ++i) {
    if (outputs_[i].name == name) return static_cast<int>(i);
  }
  throw std::runtime_error("compiled sim: no output port '" + name + "'");
}

SimContext::SimContext(std::shared_ptr<const SimPlan> plan) : plan_(std::move(plan)) {
  const SimPlan& p = *plan_;
  if (p.narrow_) {
    arena32_.resize(p.layout_.total);
    reset_impl<std::uint32_t>();
  } else {
    arena64_.resize(p.layout_.total);
    reset_impl<std::uint64_t>();
  }
}

void SimContext::reset() {
  ++resets_;
  if (plan_->narrow_) reset_impl<std::uint32_t>();
  else reset_impl<std::uint64_t>();
}

template <typename W>
void SimContext::reset_impl() {
  const SimPlan& p = *plan_;
  // Re-image state + writable memories, flush pipes and scratch — all into
  // the existing arena, no reallocation (the serving engine resets a
  // context per batch).
  const auto& init_state = p.init_state_vec<W>();
  std::copy(init_state.begin(), init_state.end(), state_base<W>());
  std::fill_n(pipe_base<W>(), p.layout_.pipe_elems, W{0});
  std::fill_n(next_base<W>(), p.layout_.next_elems, W{0});
  std::fill_n(ring_base<W>(), p.layout_.ring_elems, W{0});
  const auto& init_wmem = p.init_wmem_vec<W>();
  std::copy(init_wmem.begin(), init_wmem.end(), wmem_base<W>());
  seq_head_.assign(p.seq_.size(), 0);
  seq_en_.assign(p.seq_.size(), 0);
  cycle_ = 0;
  settle();
}

void SimContext::set_inputs(int input, std::span<const std::uint64_t> lanes) {
  const SimPlan::PortPlan& port = plan_->inputs_[static_cast<std::size_t>(input)];
  const std::uint64_t m = width_mask(port.width);
  const std::size_t n = std::min(lanes.size(), kLanes);
  if (plan_->narrow_) {
    std::uint32_t* v = state_base<std::uint32_t>() + port.slot;
    for (std::size_t l = 0; l < n; ++l) v[l] = static_cast<std::uint32_t>(lanes[l] & m);
  } else {
    std::uint64_t* v = state_base<std::uint64_t>() + port.slot;
    for (std::size_t l = 0; l < n; ++l) v[l] = lanes[l] & m;
  }
  dirty_ = true;
}

void SimContext::set_inputs(int input, std::uint64_t value_all_lanes) {
  const SimPlan::PortPlan& port = plan_->inputs_[static_cast<std::size_t>(input)];
  const std::uint64_t v = value_all_lanes & width_mask(port.width);
  if (plan_->narrow_) {
    std::fill_n(state_base<std::uint32_t>() + port.slot, kLanes,
                static_cast<std::uint32_t>(v));
  } else {
    std::fill_n(state_base<std::uint64_t>() + port.slot, kLanes, v);
  }
  dirty_ = true;
}

void SimContext::set_input_frame(std::span<const std::uint64_t> frame) {
  const auto& inputs = plan_->inputs_;
  if (plan_->narrow_) {
    std::uint32_t* state = state_base<std::uint32_t>();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const std::uint64_t m = width_mask(inputs[i].width);
      const std::uint64_t* src = frame.data() + i * kLanes;
      std::uint32_t* v = state + inputs[i].slot;
      for (std::size_t l = 0; l < kLanes; ++l) v[l] = static_cast<std::uint32_t>(src[l] & m);
    }
  } else {
    std::uint64_t* state = state_base<std::uint64_t>();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const std::uint64_t m = width_mask(inputs[i].width);
      const std::uint64_t* src = frame.data() + i * kLanes;
      std::uint64_t* v = state + inputs[i].slot;
      for (std::size_t l = 0; l < kLanes; ++l) v[l] = src[l] & m;
    }
  }
  dirty_ = true;
}

void SimContext::get_output_frame(std::span<std::uint64_t> frame) const {
  settle_if_dirty();
  const auto& outputs = plan_->outputs_;
  if (plan_->narrow_) {
    const std::uint32_t* state = state_base<std::uint32_t>();
    for (std::size_t o = 0; o < outputs.size(); ++o) {
      const std::uint32_t* v = state + outputs[o].slot;
      std::uint64_t* dst = frame.data() + o * kLanes;
      for (std::size_t l = 0; l < kLanes; ++l) dst[l] = v[l];
    }
  } else {
    const std::uint64_t* state = state_base<std::uint64_t>();
    for (std::size_t o = 0; o < outputs.size(); ++o) {
      std::copy_n(state + outputs[o].slot, kLanes, frame.data() + o * kLanes);
    }
  }
}

void SimContext::get_outputs(int output, std::span<std::uint64_t> lanes) const {
  settle_if_dirty();
  const SimPlan::PortPlan& port = plan_->outputs_[static_cast<std::size_t>(output)];
  const std::size_t n = std::min(lanes.size(), kLanes);
  if (plan_->narrow_) {
    const std::uint32_t* v = state_base<std::uint32_t>() + port.slot;
    for (std::size_t l = 0; l < n; ++l) lanes[l] = v[l];
  } else {
    const std::uint64_t* v = state_base<std::uint64_t>() + port.slot;
    for (std::size_t l = 0; l < n; ++l) lanes[l] = v[l];
  }
}

std::uint64_t SimContext::get_output(int output, std::size_t lane) const {
  settle_if_dirty();
  const std::uint32_t slot = plan_->outputs_[static_cast<std::size_t>(output)].slot;
  return plan_->narrow_ ? state_base<std::uint32_t>()[slot + lane]
                        : state_base<std::uint64_t>()[slot + lane];
}

std::uint64_t SimContext::peek_net(NetId net, std::size_t lane) const {
  settle_if_dirty();
  return plan_->narrow_ ? state_base<std::uint32_t>()[net * kLanes + lane]
                        : state_base<std::uint64_t>()[net * kLanes + lane];
}

std::uint64_t SimContext::state_digest() const {
  settle_if_dirty();
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;  // FNV-1a 64
  const std::size_t words = plan_->net_count_ * kLanes;
  std::uint64_t h = 0xcbf29ce484222325ULL;
  if (plan_->narrow_) {
    const std::uint32_t* s = state_base<std::uint32_t>();
    for (std::size_t i = 0; i < words; ++i) h = (h ^ s[i]) * kPrime;
  } else {
    const std::uint64_t* s = state_base<std::uint64_t>();
    for (std::size_t i = 0; i < words; ++i) h = (h ^ s[i]) * kPrime;
  }
  return h;
}

template <typename W>
void SimContext::eval_op(const SimPlan::CombOp& op) const {
  // Signed intermediates for compare/relu: 32-bit suffices for 32-bit
  // lanes (values are masked to <= 32 bits), 64-bit otherwise. The DSP
  // MAC always widens to 64-bit (see Op::kDsp below).
  using SW = std::conditional_t<sizeof(W) == 4, std::int32_t, std::int64_t>;
  using UW = std::make_unsigned_t<SW>;
  constexpr int kSWBits = sizeof(SW) * 8;
  using Op = SimPlan::Op;
  // Sign-extend a w-bit lane value: shift left in the unsigned domain
  // (never overflows), arithmetic shift back.
  const auto sx = [](W v, int k) {
    return static_cast<SW>(static_cast<UW>(v) << k) >> k;
  };
  W* state = state_base<W>();
  const W* a = state + op.a;
  const W* b = state + op.b;
  const W* c = state + op.c;
  W* o = state + op.out;
  const W m = static_cast<W>(op.mask);
  const int w = op.width;
  switch (op.op) {
    case Op::kAnd:
      for (std::size_t l = 0; l < kLanes; ++l) o[l] = static_cast<W>(a[l] & b[l] & m);
      break;
    case Op::kOr:
      for (std::size_t l = 0; l < kLanes; ++l) o[l] = static_cast<W>((a[l] | b[l]) & m);
      break;
    case Op::kXor:
      for (std::size_t l = 0; l < kLanes; ++l) o[l] = static_cast<W>((a[l] ^ b[l]) & m);
      break;
    case Op::kNot:
      for (std::size_t l = 0; l < kLanes; ++l) o[l] = static_cast<W>(~a[l] & m);
      break;
    case Op::kMux2:
      for (std::size_t l = 0; l < kLanes; ++l) {
        o[l] = static_cast<W>(((c[l] & 1) != 0 ? b[l] : a[l]) & m);
      }
      break;
    case Op::kEq:
      for (std::size_t l = 0; l < kLanes; ++l) o[l] = a[l] == b[l] ? 1 : 0;
      break;
    case Op::kLtU:
      for (std::size_t l = 0; l < kLanes; ++l) o[l] = a[l] < b[l] ? 1 : 0;
      break;
    case Op::kPass:
      for (std::size_t l = 0; l < kLanes; ++l) o[l] = static_cast<W>(a[l] & m);
      break;
    case Op::kTruth6: {
      const std::uint32_t* tin = &plan_->truth_inputs_[op.in_begin];
      const std::uint64_t table = op.init;
      for (std::size_t l = 0; l < kLanes; ++l) {
        std::uint64_t index = 0;
        for (std::uint32_t j = 0; j < op.in_count; ++j) {
          index |= static_cast<std::uint64_t>(state[tin[j] + l] & 1) << j;
        }
        o[l] = static_cast<W>((table >> index) & 1);
      }
      break;
    }
    case Op::kAdd:
      for (std::size_t l = 0; l < kLanes; ++l) {
        o[l] = static_cast<W>((a[l] + b[l]) & m);
      }
      break;
    case Op::kSub:
      for (std::size_t l = 0; l < kLanes; ++l) {
        o[l] = static_cast<W>((a[l] - b[l]) & m);
      }
      break;
    case Op::kMax: {
      const int k = kSWBits - w;
      for (std::size_t l = 0; l < kLanes; ++l) {
        const SW sa = sx(a[l], k);
        const SW sb = sx(b[l], k);
        o[l] = static_cast<W>(static_cast<W>(sa >= sb ? sa : sb) & m);
      }
      break;
    }
    case Op::kRelu: {
      const int k = kSWBits - w;
      for (std::size_t l = 0; l < kLanes; ++l) {
        const SW sa = sx(a[l], k);
        o[l] = static_cast<W>(static_cast<W>(sa > 0 ? sa : 0) & m);
      }
      break;
    }
    case Op::kDsp: {
      const int shift = static_cast<int>(op.init & 0x3f);
      if (w >= 64) {  // sext and clamp are identities at full width
        for (std::size_t l = 0; l < kLanes; ++l) {
          // Unsigned-domain wrap multiply/add, matching eval_comb_cell.
          const std::int64_t prod =
              static_cast<std::int64_t>(static_cast<std::uint64_t>(a[l]) *
                                        static_cast<std::uint64_t>(b[l])) >> shift;
          o[l] = static_cast<W>(static_cast<std::uint64_t>(prod) +
                                static_cast<std::uint64_t>(c[l]));
        }
        break;
      }
      // Fast path: a 16x16 MAC fits int32 exactly (|product| <= 2^30)
      // when the post-multiply shift keeps the int32 shift defined; int32
      // lanes vectorize ~4x denser than the general int64 path below.
      if (w <= 16 && shift <= 30) {
        const int k32 = 32 - w;
        const auto sx32 = [](W v, int kk) {
          return static_cast<std::int32_t>(static_cast<std::uint32_t>(v) << kk) >> kk;
        };
        const std::int32_t hi32 = (std::int32_t{1} << (w - 1)) - 1;
        const std::int32_t lo32 = -hi32 - 1;
        for (std::size_t l = 0; l < kLanes; ++l) {
          const std::int32_t sa = sx32(static_cast<W>(a[l] & m), k32);
          const std::int32_t sb = sx32(static_cast<W>(b[l] & m), k32);
          const std::int32_t sc = sx32(static_cast<W>(c[l] & m), k32);
          std::int32_t prod = (sa * sb) >> shift;
          prod = prod > hi32 ? hi32 : prod < lo32 ? lo32 : prod;
          std::int32_t sum = prod + sc;
          sum = sum > hi32 ? hi32 : sum < lo32 ? lo32 : sum;
          o[l] = static_cast<W>(static_cast<std::uint32_t>(sum) & op.mask);
        }
        break;
      }
      // General: 64-bit intermediates (a 32x32 MAC overflows int32), with
      // hoisted sign-extension shift and branchless clamps so the 64-lane
      // loop vectorizes; semantics identical to eval_comb_cell.
      const int k = 64 - w;
      const auto sx64 = [](W v, int kk) {
        return static_cast<std::int64_t>(static_cast<std::uint64_t>(v) << kk) >> kk;
      };
      const std::int64_t hi = (std::int64_t{1} << (w - 1)) - 1;
      const std::int64_t lo = -hi - 1;
      for (std::size_t l = 0; l < kLanes; ++l) {
        const std::int64_t sa = sx64(a[l], k);
        const std::int64_t sb = sx64(b[l], k);
        const std::int64_t sc = sx64(c[l], k);
        // Wrap multiply in the unsigned domain (w up to 63 overflows int64).
        std::int64_t prod = static_cast<std::int64_t>(
                                static_cast<std::uint64_t>(sa) *
                                static_cast<std::uint64_t>(sb)) >> shift;
        prod = prod > hi ? hi : prod < lo ? lo : prod;
        std::int64_t sum = prod + sc;
        sum = sum > hi ? hi : sum < lo ? lo : sum;
        o[l] = static_cast<W>(static_cast<std::uint64_t>(sum) & op.mask);
      }
      break;
    }
  }
  for (std::uint32_t f = 0; f < op.fan_count; ++f) {
    std::copy_n(o, kLanes, state + plan_->fanout_[op.fan_begin + f]);
  }
}

void SimContext::settle() const {
  if (plan_->narrow_) settle_impl<std::uint32_t>(plan_->ops_);
  else settle_impl<std::uint64_t>(plan_->ops_);
}

void SimContext::settle_if_dirty() const {
  if (!dirty_) return;
  if (plan_->narrow_) settle_impl<std::uint32_t>(plan_->cone_ops_);
  else settle_impl<std::uint64_t>(plan_->cone_ops_);
}

template <typename W>
void SimContext::settle_impl(const std::vector<SimPlan::CombOp>& ops) const {
  for (const SimPlan::CombOp& op : ops) eval_op<W>(op);
  dirty_ = false;
}

void SimContext::step() {
  if (plan_->narrow_) step_impl<std::uint32_t>();
  else step_impl<std::uint64_t>();
}

template <typename W>
void SimContext::step_impl() {
  settle_if_dirty();  // phase 1 must read a settled fabric
  const SimPlan& p = *plan_;
  W* state = state_base<W>();
  W* pipe_state = pipe_base<W>();
  W* seq_next = next_base<W>();
  W* ring_scratch = ring_base<W>();
  W* wmem_state = wmem_base<W>();
  const W* rom_state = p.rom_vec<W>().data();

  // Phase 1: capture next values and enables for every sequential op.
  for (std::size_t i = 0; i < p.seq_.size(); ++i) {
    const SimPlan::SeqOp& sq = p.seq_[i];
    W* next = &seq_next[i * kLanes];
    std::uint64_t en = ~0ULL;
    if (sq.has_ce) {
      const W* ce = state + sq.ce;
      en = 0;
      for (std::size_t l = 0; l < kLanes; ++l) {
        en |= static_cast<std::uint64_t>(ce[l] & 1) << l;
      }
    }
    seq_en_[i] = en;

    switch (sq.type) {
      case CellType::kFf:
      case CellType::kSrl: {
        const W* d = state + sq.d;
        const W mask = static_cast<W>(sq.mask);
        for (std::size_t l = 0; l < kLanes; ++l) next[l] = static_cast<W>(d[l] & mask);
        break;
      }
      case CellType::kDsp: {
        // Compute the MAC once per edge against the settled fabric (the
        // capture is not part of the settle schedule).
        eval_op<W>(p.dsp_capture_[sq.capture]);
        std::copy_n(state + sq.d, kLanes, next);
        break;
      }
      case CellType::kBram: {
        const W* raddr = state + sq.raddr;
        if (sq.mem_shared) {
          const W* mem = sq.mem_depth > 0 ? rom_state + sq.mem_base : nullptr;
          for (std::size_t l = 0; l < kLanes; ++l) {
            next[l] = raddr[l] < sq.mem_depth ? mem[raddr[l]] : 0;
          }
        } else {
          for (std::size_t l = 0; l < kLanes; ++l) {
            next[l] = raddr[l] < sq.mem_depth
                          ? wmem_state[sq.mem_base + raddr[l] * kLanes + l]
                          : 0;
          }
          // Read-first within the cell: the write lands after the capture.
          const W* we = state + sq.we;
          const W* waddr = state + sq.waddr;
          const W* wdata = state + sq.wdata;
          const W mask = static_cast<W>(sq.mask);
          for (std::size_t l = 0; l < kLanes; ++l) {
            if ((we[l] & 1) != 0 && waddr[l] < sq.mem_depth) {
              wmem_state[sq.mem_base + waddr[l] * kLanes + l] =
                  static_cast<W>(wdata[l] & mask);
            }
          }
        }
        break;
      }
      default:
        break;
    }
  }

  // Phase 2: commit pipes and drive every connected output pin. The pipe
  // is a ring (logical slot s at physical (head + s) % depth): the common
  // all-lanes-enabled commit retreats the head and writes one group —
  // O(1) in depth, matching the interpreter's deque rotate.
  for (std::size_t i = 0; i < p.seq_.size(); ++i) {
    const SimPlan::SeqOp& sq = p.seq_[i];
    const W* next = &seq_next[i * kLanes];
    const std::uint64_t en = seq_en_[i];
    if (sq.depth == 1) {
      // Depth-1 pipes (plain FFs, BRAM output registers): the driven state
      // slots themselves are the storage — commit straight from the
      // capture, skipping the pipe write + tail read round-trip.
      if (en == ~0ULL) {
        for (std::uint32_t f = 0; f < sq.fan_count; ++f) {
          std::copy_n(next, kLanes, state + p.fanout_[sq.fan_begin + f]);
        }
      } else if (en != 0) {
        for (std::uint32_t f = 0; f < sq.fan_count; ++f) {
          W* dst = state + p.fanout_[sq.fan_begin + f];
          for (std::size_t l = 0; l < kLanes; ++l) {
            if ((en >> l) & 1) dst[l] = next[l];
          }
        }
      }
      continue;
    }
    W* pipe = &pipe_state[sq.pipe_base];
    std::uint32_t& head = seq_head_[i];
    if (en == ~0ULL) {
      head = head == 0 ? sq.depth - 1 : head - 1;
      std::copy_n(next, kLanes, &pipe[head * kLanes]);
    } else if (en != 0) {
      // Lanes diverge on CE: normalize the ring to head = 0, then shift
      // with an enable blend (a shared head cannot represent per-lane
      // rotation). Rare — only CE-gated pipes with divergent lane inputs.
      if (head != 0) {
        for (std::uint32_t s = 0; s < sq.depth; ++s) {
          const std::uint32_t phys = head + s < sq.depth ? head + s : head + s - sq.depth;
          std::copy_n(&pipe[phys * kLanes], kLanes, &ring_scratch[s * kLanes]);
        }
        std::copy_n(ring_scratch, static_cast<std::size_t>(sq.depth) * kLanes, pipe);
        head = 0;
      }
      for (std::uint32_t s = sq.depth - 1; s > 0; --s) {
        W* dst = &pipe[s * kLanes];
        const W* src = &pipe[(s - 1) * kLanes];
        for (std::size_t l = 0; l < kLanes; ++l) {
          if ((en >> l) & 1) dst[l] = src[l];
        }
      }
      for (std::size_t l = 0; l < kLanes; ++l) {
        if ((en >> l) & 1) pipe[l] = next[l];
      }
    }
    const std::uint32_t tail =
        head + sq.depth - 1 < sq.depth ? head + sq.depth - 1 : head - 1;
    const W* tail_group = &pipe[tail * kLanes];
    for (std::uint32_t f = 0; f < sq.fan_count; ++f) {
      std::copy_n(tail_group, kLanes, state + p.fanout_[sq.fan_begin + f]);
    }
  }

  // Phase 3: re-settle the combinational fabric on the new state.
  settle();
  ++cycle_;
}

std::string compare_compiled_vs_interpreter(const Netlist& netlist, int cycles,
                                            std::uint64_t seed,
                                            std::span<const int> lanes_to_check,
                                            std::shared_ptr<const SimPlan> plan) {
  constexpr std::size_t lanes = SimPlan::kLanes;
  std::vector<const Port*> ins;
  std::vector<const Port*> outs;
  for (const Port& port : netlist.ports()) {
    (port.dir == PortDir::kInput ? ins : outs).push_back(&port);
  }

  // Seeded stimulus: every input port of every lane re-randomized each
  // cycle (values masked by set_input on both sides).
  Rng rng(seed);
  std::vector<std::uint64_t> stim(static_cast<std::size_t>(cycles) * ins.size() * lanes);
  for (std::uint64_t& v : stim) v = rng();
  const auto stim_at = [&](int cycle, std::size_t in, std::size_t lane) {
    return stim[(static_cast<std::size_t>(cycle) * ins.size() + in) * lanes + lane];
  };

  // Compiled pass: record every output, pre-edge (after inputs settle) and
  // post-edge (after step, before the next cycle's inputs).
  if (!plan) plan = SimPlan::compile(netlist);
  CompiledSim cs(plan);
  std::vector<int> in_idx(ins.size());
  std::vector<int> out_idx(outs.size());
  for (std::size_t i = 0; i < ins.size(); ++i) in_idx[i] = cs.input_index(ins[i]->name);
  for (std::size_t i = 0; i < outs.size(); ++i) out_idx[i] = cs.output_index(outs[i]->name);
  std::vector<std::uint64_t> got(static_cast<std::size_t>(cycles) * outs.size() * lanes * 2);
  const auto got_at = [&](int cycle, std::size_t out, std::size_t lane,
                          int phase) -> std::uint64_t& {
    return got[((static_cast<std::size_t>(cycle) * outs.size() + out) * lanes + lane) * 2 +
               static_cast<std::size_t>(phase)];
  };
  for (int cycle = 0; cycle < cycles; ++cycle) {
    for (std::size_t i = 0; i < ins.size(); ++i) {
      cs.set_inputs(in_idx[i],
                    std::span<const std::uint64_t>(
                        &stim[(static_cast<std::size_t>(cycle) * ins.size() + i) * lanes],
                        lanes));
    }
    for (std::size_t o = 0; o < outs.size(); ++o) {
      for (std::size_t l = 0; l < lanes; ++l) got_at(cycle, o, l, 0) = cs.get_output(out_idx[o], l);
    }
    cs.step();
    for (std::size_t o = 0; o < outs.size(); ++o) {
      for (std::size_t l = 0; l < lanes; ++l) got_at(cycle, o, l, 1) = cs.get_output(out_idx[o], l);
    }
  }

  // Interpreter oracle: replay each requested lane's trajectory.
  std::vector<int> check(lanes_to_check.begin(), lanes_to_check.end());
  if (check.empty()) {
    for (std::size_t l = 0; l < lanes; ++l) check.push_back(static_cast<int>(l));
  }
  for (const int lane : check) {
    Simulator sim(netlist);
    for (int cycle = 0; cycle < cycles; ++cycle) {
      for (std::size_t i = 0; i < ins.size(); ++i) {
        sim.set_input(ins[i]->name, stim_at(cycle, i, static_cast<std::size_t>(lane)));
      }
      for (int phase = 0; phase < 2; ++phase) {
        if (phase == 1) sim.step();
        for (std::size_t o = 0; o < outs.size(); ++o) {
          const std::uint64_t want = sim.get_output(outs[o]->name);
          const std::uint64_t have =
              got_at(cycle, o, static_cast<std::size_t>(lane), phase);
          if (want != have) {
            return "divergence in '" + netlist.name() + "': cycle " +
                   std::to_string(cycle) + (phase == 0 ? " pre-edge" : " post-edge") +
                   ", port '" + outs[o]->name + "', lane " + std::to_string(lane) +
                   ": interpreter " + std::to_string(want) + ", compiled " +
                   std::to_string(have);
          }
        }
      }
    }
  }
  return {};
}

}  // namespace fpgasim
