// Golden (reference) CNN layer implementations in plain C++ with the same
// Q8.8 fixed-point semantics as the generated hardware. Used to validate
// netlist simulation and as the functional reference for the CNN library.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/fixed.h"

namespace fpgasim {

/// Channel-major tensor: data[c][y * width + x].
struct Tensor {
  int channels = 0;
  int height = 0;
  int width = 0;
  std::vector<Fixed16> data;  // size == channels * height * width

  Fixed16& at(int c, int y, int x) {
    return data[static_cast<std::size_t>((c * height + y) * width + x)];
  }
  Fixed16 at(int c, int y, int x) const {
    return data[static_cast<std::size_t>((c * height + y) * width + x)];
  }
  static Tensor zeros(int channels, int height, int width) {
    Tensor t{channels, height, width, {}};
    t.data.resize(static_cast<std::size_t>(channels) * height * width);
    return t;
  }
};

/// Valid-padding 2D convolution with square kernel and unit stride unless
/// given. weights layout: [out_c][in_c][k*k]; bias per out channel.
Tensor golden_conv2d(const Tensor& input, const std::vector<Fixed16>& weights,
                     const std::vector<Fixed16>& bias, int out_channels, int kernel,
                     int stride = 1);

/// Non-overlapping k x k max pooling.
Tensor golden_maxpool(const Tensor& input, int kernel);

/// Non-overlapping k x k average pooling. The Q8.8 window sum is divided
/// with round-to-nearest-even (div_rne), matching the avgpool engine's
/// shift-and-adjust divider bit for bit.
Tensor golden_avgpool(const Tensor& input, int kernel);

/// Global average pooling: one RNE mean per channel, output shape c x 1 x 1.
Tensor golden_global_avgpool(const Tensor& input);

/// Valid-padding depthwise convolution: channel c of the output is channel
/// c of the input convolved with its own k x k filter. weights layout
/// [c][ky][kx]; bias per channel.
Tensor golden_dwconv2d(const Tensor& input, const std::vector<Fixed16>& weights,
                       const std::vector<Fixed16>& bias, int kernel, int stride = 1);

/// Nearest-neighbour upsampling by an integer factor: every input pixel is
/// replicated into a factor x factor block (U-Net style decoders).
Tensor golden_upsample_nn(const Tensor& input, int factor);

Tensor golden_relu(const Tensor& input);

/// Fully-connected layer; weights layout [out][in], bias per output.
std::vector<Fixed16> golden_fc(const std::vector<Fixed16>& input,
                               const std::vector<Fixed16>& weights,
                               const std::vector<Fixed16>& bias, int outputs);

/// Element-wise saturating sum of >= 2 identically-shaped tensors (the
/// join of a residual connection).
Tensor golden_add(const std::vector<const Tensor*>& inputs);

/// Channel concatenation of >= 2 tensors with equal spatial shape (the
/// join of an inception-style branch); channel-major layout means the
/// inputs are simply appended in order.
Tensor golden_concat(const std::vector<const Tensor*>& inputs);

}  // namespace fpgasim
