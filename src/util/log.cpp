#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace fpgasim {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DBG";
    case LogLevel::kInfo: return "INF";
    case LogLevel::kWarn: return "WRN";
    case LogLevel::kError: return "ERR";
    default: return "???";
  }
}

const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const char* file, int line, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  char buf[2048];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s %s:%d] %s\n", level_tag(level), basename_of(file), line, buf);
}

}  // namespace fpgasim
