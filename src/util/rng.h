// Deterministic PRNG (xoshiro256**) used throughout the CAD stack so every
// flow run is reproducible from a seed. Satisfies UniformRandomBitGenerator.
#pragma once

#include <cstdint>

namespace fpgasim {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the 4-word state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) { return (*this)() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

 private:
  static std::uint64_t rotl(std::uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }

  std::uint64_t state_[4];
};

}  // namespace fpgasim
