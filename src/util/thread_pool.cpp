#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace fpgasim {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn, ThreadPool* pool) {
  if (begin >= end) return;
  if (pool == nullptr) pool = &ThreadPool::global();
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, pool->size() * 4);
  if (chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  const std::size_t per_chunk = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * per_chunk;
    const std::size_t hi = std::min(end, lo + per_chunk);
    if (lo >= hi) break;
    futures.push_back(pool->submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  // Wait for every chunk before rethrowing: tasks capture `fn` by
  // reference, so no worker may touch it after we return.
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace fpgasim
