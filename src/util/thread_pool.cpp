#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <string>

namespace fpgasim {
namespace {

/// Identity of the current thread inside its owning pool, if any.
struct WorkerIdentity {
  const ThreadPool* pool = nullptr;
  std::size_t index = 0;
};
thread_local WorkerIdentity tls_worker;

}  // namespace

std::size_t ThreadPool::default_width() {
  if (const char* env = std::getenv("FPGASIM_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(ThreadPoolOptions opt) {
  const std::size_t threads = opt.threads > 0 ? opt.threads : default_width();
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) queues_.push_back(std::make_unique<Queue>());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true);
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

bool ThreadPool::on_worker_thread() const { return tls_worker.pool == this; }

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  // A worker pushes onto its own deque back (depth-first, cache-warm);
  // external submitters round-robin across deques.
  const std::size_t target = on_worker_thread()
                                 ? tls_worker.index
                                 : next_.fetch_add(1, std::memory_order_relaxed) %
                                       queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(packaged));
  }
  pending_.fetch_add(1);
  cv_.notify_one();
  return future;
}

bool ThreadPool::try_pop(std::size_t self, std::packaged_task<void()>& out) {
  const std::size_t n = queues_.size();
  for (std::size_t k = 0; k < n; ++k) {
    Queue& queue = *queues_[(self + k) % n];
    std::lock_guard<std::mutex> lock(queue.mutex);
    if (queue.tasks.empty()) continue;
    if (k == 0) {  // own deque: LIFO end
      out = std::move(queue.tasks.back());
      queue.tasks.pop_back();
    } else {  // steal: FIFO end, the oldest (largest) work
      out = std::move(queue.tasks.front());
      queue.tasks.pop_front();
    }
    pending_.fetch_sub(1);
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  tls_worker = WorkerIdentity{this, self};
  for (;;) {
    std::packaged_task<void()> task;
    if (try_pop(self, task)) {
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    cv_.wait(lock, [this] { return stop_.load() || pending_.load() > 0; });
    if (stop_.load() && pending_.load() == 0) return;
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn, ThreadPool* pool) {
  if (begin >= end) return;
  if (pool == nullptr) pool = &ThreadPool::global();
  const std::size_t n = end - begin;
  // Serial path: a width-1 pool must reproduce the plain loop exactly, and
  // a worker thread must never block on futures of its own pool (the tasks
  // could be queued behind the blocked worker).
  if (n == 1 || pool->size() <= 1 || pool->on_worker_thread()) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  // Iteration-level work stealing: every participant claims the next index
  // from a shared counter, so uneven iteration costs balance out.
  std::atomic<std::size_t> next{begin};
  auto run = [&fn, &next, end] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= end) return;
      fn(i);
    }
  };
  const std::size_t helpers = std::min(pool->size(), n - 1);
  std::vector<std::future<void>> futures;
  futures.reserve(helpers);
  for (std::size_t i = 0; i < helpers; ++i) futures.push_back(pool->submit(run));
  // The calling thread participates instead of sleeping on the futures.
  std::exception_ptr first_error;
  try {
    run();
  } catch (...) {
    first_error = std::current_exception();
  }
  // Wait for every helper before rethrowing: tasks capture `fn` and `next`
  // by reference, so no worker may touch them after we return.
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace fpgasim
