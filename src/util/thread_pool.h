// Fixed-size thread pool with a blocking task queue, plus a parallel_for
// helper. Used to pre-implement independent CNN components concurrently
// (the paper's function-optimization stage is embarrassingly parallel).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fpgasim {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the returned future reports completion/exceptions.
  std::future<void> submit(std::function<void()> task);

  std::size_t size() const { return workers_.size(); }

  /// Process-wide shared pool.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Runs fn(i) for i in [begin, end) across the pool; blocks until done.
/// Exceptions from iterations are rethrown (first one wins).
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  ThreadPool* pool = nullptr);

}  // namespace fpgasim
