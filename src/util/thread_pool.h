// Work-stealing thread pool plus a parallel_for helper. Used to
// pre-implement independent CNN components concurrently (the paper's
// function-optimization stage is embarrassingly parallel).
//
// Determinism contract: the pool only schedules; any result computed
// through parallel_for must depend on the iteration index alone (seeds
// derived from the index, outputs keyed by the index), never on execution
// order. Under that contract every pool width produces bit-identical
// results, and width 1 executes the iterations inline, in order, on the
// calling thread — exactly the serial loop.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace fpgasim {

struct ThreadPoolOptions {
  /// Worker count. 0 selects the FPGASIM_THREADS environment variable when
  /// it is set to a positive integer, else hardware_concurrency (min 1).
  std::size_t threads = 0;
};

class ThreadPool {
 public:
  explicit ThreadPool(ThreadPoolOptions opt = {});
  explicit ThreadPool(std::size_t threads) : ThreadPool(ThreadPoolOptions{threads}) {}
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the returned future reports completion/exceptions.
  /// From a worker thread the task lands on that worker's own deque (depth
  /// first); idle workers steal from the opposite end of other deques.
  std::future<void> submit(std::function<void()> task);

  std::size_t size() const { return workers_.size(); }

  /// True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const;

  /// Resolved automatic width: FPGASIM_THREADS when set, else
  /// hardware_concurrency (min 1).
  static std::size_t default_width();

  /// Process-wide shared pool (width: default_width()).
  static ThreadPool& global();

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::packaged_task<void()>> tasks;
  };

  void worker_loop(std::size_t self);
  bool try_pop(std::size_t self, std::packaged_task<void()>& out);

  std::vector<std::unique_ptr<Queue>> queues_;  // one deque per worker
  std::vector<std::thread> workers_;
  std::mutex sleep_mutex_;
  std::condition_variable cv_;
  std::atomic<std::size_t> pending_{0};  // queued, not yet popped
  std::atomic<std::size_t> next_{0};     // round-robin for external submits
  std::atomic<bool> stop_{false};
};

/// Runs fn(i) for i in [begin, end) across the pool; blocks until done.
/// Iterations are claimed from a shared counter (work stealing at the
/// iteration level), so per-iteration cost imbalance does not serialize.
/// Exceptions from iterations are rethrown (first one wins). On a width-1
/// pool — or when called from inside a pool worker — the loop runs inline,
/// serially and in index order, on the calling thread.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  ThreadPool* pool = nullptr);

}  // namespace fpgasim
