// Small synchronization helpers for multi-session harnesses: a one-shot
// countdown latch (align N session threads on a common start line so a
// throughput measurement times steady-state concurrency, not thread
// spawn skew). Kept dependency-free; semantics follow std::latch.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace fpgasim {

class Latch {
 public:
  explicit Latch(std::ptrdiff_t count) : count_(count) {}

  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  /// Decrements the counter; at zero, releases every waiter.
  void count_down() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ > 0 && --count_ == 0) cv_.notify_all();
  }

  /// Blocks until the counter reaches zero.
  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return count_ == 0; });
  }

  /// count_down() + wait(): the usual "everyone ready, go" barrier.
  void arrive_and_wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (count_ > 0 && --count_ == 0) {
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [this] { return count_ == 0; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::ptrdiff_t count_;
};

}  // namespace fpgasim
