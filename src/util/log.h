// Lightweight leveled logger. Thread-safe; writes to stderr.
//
// Usage:
//   LOG_INFO("placed %zu cells in %.2fs", n, secs);
//   fpgasim::set_log_level(fpgasim::LogLevel::kWarn);
#pragma once

#include <cstdarg>

namespace fpgasim {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that will be emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style log emission; prefer the LOG_* macros below.
void log_message(LogLevel level, const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));

}  // namespace fpgasim

#define LOG_DEBUG(...) ::fpgasim::log_message(::fpgasim::LogLevel::kDebug, __FILE__, __LINE__, __VA_ARGS__)
#define LOG_INFO(...) ::fpgasim::log_message(::fpgasim::LogLevel::kInfo, __FILE__, __LINE__, __VA_ARGS__)
#define LOG_WARN(...) ::fpgasim::log_message(::fpgasim::LogLevel::kWarn, __FILE__, __LINE__, __VA_ARGS__)
#define LOG_ERROR(...) ::fpgasim::log_message(::fpgasim::LogLevel::kError, __FILE__, __LINE__, __VA_ARGS__)
