// Wall-clock stopwatch used for productivity (compile-time) measurements,
// plus a process-CPU stopwatch so parallel stages can report both
// wall-seconds and CPU-seconds (their ratio is the effective parallelism).
#pragma once

#include <chrono>
#include <ctime>

namespace fpgasim {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last restart.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// CPU-time stopwatch: seconds of processor time consumed by the whole
/// process (summed over all threads) since construction / last restart.
class CpuStopwatch {
 public:
  CpuStopwatch() : start_(now()) {}

  void restart() { start_ = now(); }

  double seconds() const { return now() - start_; }

 private:
  static double now() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
    timespec ts;
    if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
      return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
    }
#endif
    return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
  }

  double start_;
};

}  // namespace fpgasim
