// Wall-clock stopwatch used for productivity (compile-time) measurements.
#pragma once

#include <chrono>

namespace fpgasim {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last restart.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fpgasim
