#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace fpgasim {

void Table::set_header(std::vector<std::string> header) { header_ = std::move(header); }

void Table::add_row(std::vector<std::string> row) {
  if (!header_.empty() && row.size() > header_.size()) row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) widths[i] = std::max(widths[i], row[i].size());
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto emit_row = [&](std::ostringstream& os, const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << " " << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };

  std::ostringstream os;
  std::size_t total = 1;
  for (std::size_t w : widths) total += w + 3;
  os << "\n== " << title_ << " ==\n";
  os << std::string(total, '-') << "\n";
  if (!header_.empty()) {
    emit_row(os, header_);
    os << std::string(total, '-') << "\n";
  }
  for (const auto& row : rows_) emit_row(os, row);
  os << std::string(total, '-') << "\n";
  return os.str();
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ",";
      os << escape(row[i]);
    }
    os << "\n";
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace fpgasim
