// ASCII table printer used by the benchmark harnesses to emit the paper's
// tables/figures as aligned rows on stdout (and optionally as CSV).
#pragma once

#include <string>
#include <vector>

namespace fpgasim {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the column headers; must be called before adding rows.
  void set_header(std::vector<std::string> header);

  /// Appends a row; cells beyond the header width are dropped.
  void add_row(std::vector<std::string> row);

  /// Renders the table with box-drawing separators.
  std::string to_string() const;

  /// Renders the table in RFC-4180-ish CSV (title omitted).
  std::string to_csv() const;

  /// Prints to stdout.
  void print() const;

  const std::string& title() const { return title_; }
  std::size_t row_count() const { return rows_.size(); }

  /// Convenience numeric formatting helpers.
  static std::string fmt(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 2);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fpgasim
