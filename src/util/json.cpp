#include "util/json.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

namespace fpgasim {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::pre_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted its separator
  }
  if (!first_.empty()) {
    if (first_.back() != 0) {
      first_.back() = 0;
    } else {
      out_ += ", ";
    }
  }
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  out_ += '{';
  first_.push_back(1);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  out_ += '[';
  first_.push_back(1);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  pre_value();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\": ";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& s) {
  pre_value();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* s) { return value(std::string(s)); }

JsonWriter& JsonWriter::value(double v) {
  pre_value();
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(long v) {
  pre_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(int v) { return value(static_cast<long>(v)); }

JsonWriter& JsonWriter::value(std::size_t v) {
  pre_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  pre_value();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::raw(const std::string& r) {
  pre_value();
  out_ += r;
  return *this;
}

namespace {

/// Splits the top level of a JSON object into (key, raw value) pairs.
/// Values are kept as verbatim text; strings and nesting are respected.
/// Returns false on anything that does not look like a JSON object.
bool split_top_level(const std::string& text,
                     std::vector<std::pair<std::string, std::string>>* out) {
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) != 0) ++i;
  };
  skip_ws();
  if (i >= text.size() || text[i] != '{') return false;
  ++i;
  for (;;) {
    skip_ws();
    if (i >= text.size()) return false;
    if (text[i] == '}') return true;
    if (text[i] == ',') {
      ++i;
      continue;
    }
    if (text[i] != '"') return false;
    // Key string (escapes respected).
    std::string key;
    ++i;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) key += text[i++];
      key += text[i++];
    }
    if (i >= text.size()) return false;
    ++i;  // closing quote
    skip_ws();
    if (i >= text.size() || text[i] != ':') return false;
    ++i;
    skip_ws();
    // Value: scan with depth counting, string-aware.
    const std::size_t start = i;
    int depth = 0;
    bool in_string = false;
    for (; i < text.size(); ++i) {
      const char c = text[i];
      if (in_string) {
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          in_string = false;
        }
        continue;
      }
      if (c == '"') {
        in_string = true;
      } else if (c == '{' || c == '[') {
        ++depth;
      } else if (c == '}' || c == ']') {
        if (depth == 0) break;  // closing brace of the top-level object
        --depth;
      } else if (c == ',' && depth == 0) {
        break;
      }
    }
    std::string value = text.substr(start, i - start);
    while (!value.empty() && std::isspace(static_cast<unsigned char>(value.back())) != 0) {
      value.pop_back();
    }
    out->emplace_back(std::move(key), std::move(value));
  }
}

}  // namespace

bool update_json_file(const std::string& path, const std::string& key,
                      const std::string& raw_value) {
  std::vector<std::pair<std::string, std::string>> entries;
  {
    std::ifstream in(path);
    if (in) {
      std::stringstream buffer;
      buffer << in.rdbuf();
      std::vector<std::pair<std::string, std::string>> parsed;
      if (split_top_level(buffer.str(), &parsed)) entries = std::move(parsed);
    }
  }
  bool replaced = false;
  for (auto& [k, v] : entries) {
    if (k == key) {
      v = raw_value;
      replaced = true;
      break;
    }
  }
  if (!replaced) entries.emplace_back(key, raw_value);

  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "{\n";
  for (std::size_t e = 0; e < entries.size(); ++e) {
    out << "  \"" << entries[e].first << "\": " << entries[e].second;
    if (e + 1 < entries.size()) out << ',';
    out << '\n';
  }
  out << "}\n";
  return out.good();
}

}  // namespace fpgasim
