// Minimal JSON output support for machine-readable benchmark results
// (BENCH_*.json). Two pieces:
//   - JsonWriter: an emitter with automatic comma placement, enough for
//     nested objects/arrays of numbers and strings;
//   - update_json_file(): read-modify-write of one top-level key in a JSON
//     object file, so several bench binaries can merge their sections into
//     a single BENCH_route.json without a JSON dependency.
#pragma once

#include <string>
#include <vector>

namespace fpgasim {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  /// Object member key; must be followed by exactly one value/container.
  JsonWriter& key(const std::string& k);
  JsonWriter& value(const std::string& s);
  JsonWriter& value(const char* s);
  JsonWriter& value(double v);
  JsonWriter& value(long v);
  JsonWriter& value(int v);
  JsonWriter& value(std::size_t v);
  JsonWriter& value(bool b);
  /// Pre-rendered JSON inserted verbatim (caller guarantees validity).
  JsonWriter& raw(const std::string& r);

  const std::string& str() const { return out_; }

 private:
  void pre_value();
  std::string out_;
  std::vector<char> first_;  // per open container: no element emitted yet?
  bool pending_key_ = false;
};

/// Escapes a string for embedding in JSON (quotes not included).
std::string json_escape(const std::string& s);

/// Replaces (or adds) the top-level `key` of the JSON object stored at
/// `path` with `raw_value` (pre-rendered JSON) and writes the file back.
/// A missing or malformed file is treated as an empty object. Only
/// one-level key extraction is performed; nested values are kept verbatim.
/// Returns false when the file cannot be written.
bool update_json_file(const std::string& path, const std::string& key,
                      const std::string& raw_value);

}  // namespace fpgasim
