// Cache-line-aligned storage helpers for the multi-context simulation
// engine: per-worker lane-state arenas and per-shard statistic slots are
// allocated on 64-byte boundaries so two workers never share a cache
// line (false sharing turns an embarrassingly parallel stat update into
// a coherence ping-pong).
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace fpgasim {

/// Size of one cache line / the arena shard alignment, in bytes.
inline constexpr std::size_t kCacheLineBytes = 64;

/// Minimal std::allocator drop-in that over-aligns every allocation.
template <typename T, std::size_t Align = kCacheLineBytes>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "alignment must be a power of two covering alignof(T)");

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}  // NOLINT

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };
  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) { return true; }
};

/// Vector whose buffer starts on a cache-line boundary.
template <typename T>
using CacheAlignedVector = std::vector<T, AlignedAllocator<T>>;

/// Rounds an element count up so the next section of an arena starts on a
/// cache-line boundary (elements of size `elem_bytes`).
inline constexpr std::size_t align_elems(std::size_t count, std::size_t elem_bytes) {
  const std::size_t per_line = kCacheLineBytes / elem_bytes;
  return (count + per_line - 1) / per_line * per_line;
}

}  // namespace fpgasim
