// Stable content hashing for the checkpoint store: a streaming 128-bit
// hash (two independent FNV-1a-style lanes, splitmix-finalized) over the
// component identity (kind + params + seed + fabric signature). The value
// is part of the on-disk format — entry filenames are the hex digest — so
// the byte-for-byte definition here must never change once databases
// exist; bump the store's layout version instead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace fpgasim {

struct Hash128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Hash128&, const Hash128&) = default;
  friend bool operator<(const Hash128& a, const Hash128& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }

  /// 32 lowercase hex characters, hi lane first.
  std::string hex() const {
    static const char* digits = "0123456789abcdef";
    std::string out(32, '0');
    for (int i = 0; i < 16; ++i) out[15 - i] = digits[(hi >> (4 * i)) & 0xF];
    for (int i = 0; i < 16; ++i) out[31 - i] = digits[(lo >> (4 * i)) & 0xF];
    return out;
  }
};

/// Streaming hasher. Deterministic across platforms: input is consumed
/// byte-wise, multi-byte integers are fed little-endian through u64().
class Hasher {
 public:
  Hasher& bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      h1_ = (h1_ ^ p[i]) * kPrime1;
      h2_ = (h2_ ^ p[i]) * kPrime2;
    }
    return *this;
  }
  /// Length-prefixed so ("ab","c") never collides with ("a","bc").
  Hasher& str(const std::string& s) {
    u64(s.size());
    return bytes(s.data(), s.size());
  }
  Hasher& u64(std::uint64_t v) {
    unsigned char buf[8];
    for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
    return bytes(buf, sizeof(buf));
  }

  Hash128 digest() const { return Hash128{finalize(h1_), finalize(h2_ ^ h1_)}; }

 private:
  static constexpr std::uint64_t kPrime1 = 0x100000001b3ULL;   // FNV-1a 64 prime
  static constexpr std::uint64_t kPrime2 = 0x9e3779b97f4a7c15ULL | 1;

  static std::uint64_t finalize(std::uint64_t z) {  // splitmix64 finalizer
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t h1_ = 0xcbf29ce484222325ULL;  // FNV-1a 64 offset basis
  std::uint64_t h2_ = 0x6a09e667f3bcc908ULL;  // sqrt(2) fractional bits
};

/// One-shot convenience over a string.
inline Hash128 hash128(const std::string& s) { return Hasher().str(s).digest(); }

}  // namespace fpgasim
