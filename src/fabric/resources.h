// Resource accounting vector: LUTs, flip-flops, carry chains, DSP48 slices
// and BRAM36 blocks. Used for tile capacities, netlist footprints, pblock
// budgets and utilization reports.
#pragma once

#include <cstdint>
#include <string>

namespace fpgasim {

struct ResourceVec {
  std::int64_t lut = 0;
  std::int64_t ff = 0;
  std::int64_t carry = 0;
  std::int64_t dsp = 0;
  std::int64_t bram = 0;

  ResourceVec& operator+=(const ResourceVec& o) {
    lut += o.lut;
    ff += o.ff;
    carry += o.carry;
    dsp += o.dsp;
    bram += o.bram;
    return *this;
  }
  ResourceVec& operator-=(const ResourceVec& o) {
    lut -= o.lut;
    ff -= o.ff;
    carry -= o.carry;
    dsp -= o.dsp;
    bram -= o.bram;
    return *this;
  }
  friend ResourceVec operator+(ResourceVec a, const ResourceVec& b) { return a += b; }
  friend ResourceVec operator-(ResourceVec a, const ResourceVec& b) { return a -= b; }
  friend ResourceVec operator*(ResourceVec a, std::int64_t k) {
    a.lut *= k;
    a.ff *= k;
    a.carry *= k;
    a.dsp *= k;
    a.bram *= k;
    return a;
  }
  friend bool operator==(const ResourceVec&, const ResourceVec&) = default;

  /// True if every component of *this is <= the corresponding one in cap.
  bool fits_in(const ResourceVec& cap) const {
    return lut <= cap.lut && ff <= cap.ff && carry <= cap.carry && dsp <= cap.dsp &&
           bram <= cap.bram;
  }

  bool is_zero() const { return *this == ResourceVec{}; }

  std::string to_string() const {
    return "lut=" + std::to_string(lut) + " ff=" + std::to_string(ff) +
           " carry=" + std::to_string(carry) + " dsp=" + std::to_string(dsp) +
           " bram=" + std::to_string(bram);
  }
};

}  // namespace fpgasim
