// Simulated columnar FPGA fabric in the style of Xilinx UltraScale+.
//
// The device is a W x H grid of tiles. Each column carries a single
// resource type (CLB, DSP, BRAM or IO), mirroring the column-wise
// replication of resources on real UltraScale parts: the property the
// paper's pre-implemented relocation depends on. IO columns interrupt the
// fabric ("fabric discontinuities", Sec. V-E of the paper) and carry a wire
// delay penalty in the routing model. Clock regions tile the grid
// vertically; relocation anchors preserve column signature and row parity.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fabric/resources.h"

namespace fpgasim {

enum class ColumnType : std::uint8_t { kClb = 0, kDsp = 1, kBram = 2, kIo = 3 };

const char* to_string(ColumnType type);

struct TileCoord {
  int x = 0;
  int y = 0;
  friend bool operator==(const TileCoord&, const TileCoord&) = default;
};

class Device {
 public:
  /// Builds a device from an explicit column layout. rows must be a
  /// multiple of clock_region_height.
  Device(std::string name, std::vector<ColumnType> columns, int rows,
         int clock_region_height);

  const std::string& name() const { return name_; }
  int width() const { return static_cast<int>(columns_.size()); }
  int height() const { return rows_; }
  int clock_region_height() const { return cr_height_; }
  int clock_region_rows() const { return rows_ / cr_height_; }

  ColumnType column_type(int x) const { return columns_[static_cast<std::size_t>(x)]; }
  bool in_bounds(int x, int y) const { return x >= 0 && x < width() && y >= 0 && y < rows_; }

  /// Capacity of a single tile. DSP/BRAM sites occupy every other row of
  /// their column (one site per two tiles), matching the coarser vertical
  /// pitch of hard blocks on real fabric.
  ResourceVec tile_capacity(int x, int y) const;

  /// Total device capacity (cached at construction).
  const ResourceVec& total() const { return total_; }

  /// True when column x is an IO column (fabric discontinuity).
  bool is_discontinuity(int x) const { return column_type(x) == ColumnType::kIo; }

  /// Number of IO columns strictly between x0 and x1 (any order).
  int discontinuities_between(int x0, int x1) const;

  /// All x offsets dx such that shifting a window of columns
  /// [x0, x0+w) by dx lands on an identical column-type signature.
  /// Includes dx == 0. Used by the relocation placer.
  std::vector<int> compatible_column_offsets(int x0, int w) const;

  std::string describe() const;

 private:
  std::string name_;
  std::vector<ColumnType> columns_;
  int rows_;
  int cr_height_;
  ResourceVec total_;
  std::vector<int> io_prefix_;  // io_prefix_[x] = #IO columns in [0, x)
};

/// ~xcku5p-scale device calibrated to the paper's Table II utilization
/// percentages: 173 CLB columns (332,160 LUT / 664,320 FF), 23 DSP columns
/// (2,760 DSP48), 18 BRAM columns (2,160 BRAM36), 2 IO columns; 240 rows,
/// clock regions of height 60.
Device make_xcku5p_sim();

/// Small device for unit tests: 24 columns x 32 rows, clock region 16.
Device make_tiny_device();

}  // namespace fpgasim
