#include "fabric/pblock.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace fpgasim {

std::string Pblock::to_string() const {
  return "pblock[x" + std::to_string(x0) + ":" + std::to_string(x1) + " y" + std::to_string(y0) +
         ":" + std::to_string(y1) + "]";
}

ResourceVec pblock_resources(const Device& device, const Pblock& pblock) {
  ResourceVec total;
  for (int x = std::max(0, pblock.x0); x <= std::min(device.width() - 1, pblock.x1); ++x) {
    for (int y = std::max(0, pblock.y0); y <= std::min(device.height() - 1, pblock.y1); ++y) {
      total += device.tile_capacity(x, y);
    }
  }
  return total;
}

namespace {

// prefix[x][y] = capacity of column x over rows [0, y).
std::vector<std::vector<ResourceVec>> column_prefix_sums(const Device& device) {
  std::vector<std::vector<ResourceVec>> prefix(
      static_cast<std::size_t>(device.width()),
      std::vector<ResourceVec>(static_cast<std::size_t>(device.height()) + 1));
  for (int x = 0; x < device.width(); ++x) {
    for (int y = 0; y < device.height(); ++y) {
      prefix[static_cast<std::size_t>(x)][static_cast<std::size_t>(y) + 1] =
          prefix[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)] +
          device.tile_capacity(x, y);
    }
  }
  return prefix;
}

}  // namespace

std::optional<Pblock> find_min_pblock(const Device& device, const ResourceVec& need,
                                      double aspect_pref, int max_width) {
  const auto prefix = column_prefix_sums(device);
  auto column_window = [&](int x, int y0, int h) {
    return prefix[static_cast<std::size_t>(x)][static_cast<std::size_t>(y0 + h)] -
           prefix[static_cast<std::size_t>(x)][static_cast<std::size_t>(y0)];
  };

  std::optional<Pblock> best;
  double best_score = std::numeric_limits<double>::infinity();

  // Candidate heights: even (site-parity-preserving) sizes, coarser as they
  // grow; capped at the device height.
  std::vector<int> heights;
  for (int h : {2, 4, 6, 8, 10, 12, 16, 20, 24, 30, 40, 48, 60, 80, 120, 160, 240}) {
    if (h <= device.height()) heights.push_back(h);
  }
  const int y_step = std::max(2, device.clock_region_height() / 4);

  for (int h : heights) {
    if (best && h > 2 * best->height()) break;  // taller shapes cannot win
    for (int y0 = 0; y0 + h <= device.height(); y0 += y_step) {
      ResourceVec have;
      int x1 = -1;  // rightmost column currently in the window (inclusive)
      for (int x0 = 0; x0 < device.width(); ++x0) {
        if (x1 < x0 - 1) {
          x1 = x0 - 1;
          have = ResourceVec{};
        }
        // Grow right edge until the requirement fits (sliding window).
        while (!need.fits_in(have) && x1 + 1 < device.width() &&
               (max_width <= 0 || x1 - x0 + 1 < max_width)) {
          ++x1;
          have += column_window(x1, y0, h);
        }
        if (!need.fits_in(have)) {
          if (max_width <= 0) break;  // no window starting >= x0 can fit
          have -= column_window(x0, y0, h);
          continue;  // width-capped: slide the whole window right
        }
        const Pblock cand{x0, y0, x1, y0 + h - 1};
        const double aspect = static_cast<double>(cand.width()) / cand.height();
        const double aspect_penalty = std::abs(std::log(aspect / aspect_pref)) * 0.15;
        const double disc_penalty =
            device.discontinuities_between(x0, x1 + 1) > 0 ? 0.5 : 0.0;
        const double score =
            static_cast<double>(cand.area()) * (1.0 + aspect_penalty + disc_penalty);
        if (score < best_score) {
          best_score = score;
          best = cand;
        }
        // Slide: drop column x0 before advancing the left edge.
        have -= column_window(x0, y0, h);
      }
    }
  }
  return best;
}

std::vector<std::pair<int, int>> relocation_offsets(const Device& device, const Pblock& pblock) {
  std::vector<std::pair<int, int>> anchors;
  const std::vector<int> dxs = device.compatible_column_offsets(pblock.x0, pblock.width());
  for (int dx : dxs) {
    const int dy_min = -pblock.y0;
    const int dy_start = dy_min + ((dy_min % 2 + 2) % 2);  // round up to even
    for (int dy = dy_start; pblock.y1 + dy < device.height(); dy += 2) {
      anchors.emplace_back(dx, dy);
    }
  }
  return anchors;
}

}  // namespace fpgasim
