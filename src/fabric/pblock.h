// Rectangular physical regions (Vivado "pblocks"). A pre-implemented
// component is placed and routed entirely inside its pblock; relocation
// moves the whole pblock to a column-compatible anchor elsewhere on the
// device.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fabric/device.h"
#include "fabric/resources.h"

namespace fpgasim {

struct Pblock {
  int x0 = 0;
  int y0 = 0;
  int x1 = 0;  // inclusive
  int y1 = 0;  // inclusive

  int width() const { return x1 - x0 + 1; }
  int height() const { return y1 - y0 + 1; }
  std::int64_t area() const { return static_cast<std::int64_t>(width()) * height(); }
  bool contains(int x, int y) const { return x >= x0 && x <= x1 && y >= y0 && y <= y1; }
  bool overlaps(const Pblock& o) const {
    return x0 <= o.x1 && o.x0 <= x1 && y0 <= o.y1 && o.y0 <= y1;
  }
  Pblock translated(int dx, int dy) const { return Pblock{x0 + dx, y0 + dy, x1 + dx, y1 + dy}; }
  friend bool operator==(const Pblock&, const Pblock&) = default;

  std::string to_string() const;
};

/// Sum of tile capacities inside the rectangle.
ResourceVec pblock_resources(const Device& device, const Pblock& pblock);

/// Finds the smallest (by area) pblock anchored anywhere on the device that
/// provides at least `need` resources, preferring shapes whose aspect ratio
/// is close to `aspect_pref` (width/height) and that span no fabric
/// discontinuity. `max_width` (0 = unbounded) caps the pblock width in
/// columns: narrow pblocks leave more disjoint relocation bands on the die,
/// which is what makes dense compositions packable. Grows column-aligned
/// windows; returns nullopt only when the device cannot satisfy `need`.
std::optional<Pblock> find_min_pblock(const Device& device, const ResourceVec& need,
                                      double aspect_pref = 1.0, int max_width = 0);

/// All anchor translations (dx, dy) where the pblock lands in-bounds on a
/// column-compatible window with matching row parity (sites line up), i.e.
/// every legal relocation of a component implemented in `pblock`.
std::vector<std::pair<int, int>> relocation_offsets(const Device& device, const Pblock& pblock);

}  // namespace fpgasim
