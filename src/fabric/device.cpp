#include "fabric/device.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace fpgasim {

const char* to_string(ColumnType type) {
  switch (type) {
    case ColumnType::kClb: return "CLB";
    case ColumnType::kDsp: return "DSP";
    case ColumnType::kBram: return "BRAM";
    case ColumnType::kIo: return "IO";
  }
  return "?";
}

Device::Device(std::string name, std::vector<ColumnType> columns, int rows,
               int clock_region_height)
    : name_(std::move(name)),
      columns_(std::move(columns)),
      rows_(rows),
      cr_height_(clock_region_height) {
  assert(rows_ > 0 && cr_height_ > 0 && rows_ % cr_height_ == 0);
  io_prefix_.resize(columns_.size() + 1, 0);
  for (std::size_t x = 0; x < columns_.size(); ++x) {
    io_prefix_[x + 1] = io_prefix_[x] + (columns_[x] == ColumnType::kIo ? 1 : 0);
  }
  for (int x = 0; x < width(); ++x) {
    for (int y = 0; y < rows_; ++y) total_ += tile_capacity(x, y);
  }
}

ResourceVec Device::tile_capacity(int x, int y) const {
  switch (column_type(x)) {
    case ColumnType::kClb:
      return ResourceVec{.lut = 8, .ff = 16, .carry = 1};
    case ColumnType::kDsp:
      return (y % 2 == 0) ? ResourceVec{.dsp = 1} : ResourceVec{};
    case ColumnType::kBram:
      return (y % 2 == 0) ? ResourceVec{.bram = 1} : ResourceVec{};
    case ColumnType::kIo:
      return ResourceVec{};
  }
  return ResourceVec{};
}

int Device::discontinuities_between(int x0, int x1) const {
  if (x0 > x1) std::swap(x0, x1);
  x0 = std::clamp(x0, 0, width());
  x1 = std::clamp(x1, 0, width());
  return io_prefix_[static_cast<std::size_t>(x1)] - io_prefix_[static_cast<std::size_t>(x0)];
}

std::vector<int> Device::compatible_column_offsets(int x0, int w) const {
  std::vector<int> offsets;
  if (w <= 0 || x0 < 0 || x0 + w > width()) return offsets;
  for (int nx = 0; nx + w <= width(); ++nx) {
    bool match = true;
    for (int i = 0; i < w; ++i) {
      if (columns_[static_cast<std::size_t>(nx + i)] !=
          columns_[static_cast<std::size_t>(x0 + i)]) {
        match = false;
        break;
      }
    }
    if (match) offsets.push_back(nx - x0);
  }
  return offsets;
}

std::string Device::describe() const {
  int clb = 0, dsp = 0, bram = 0, io = 0;
  for (ColumnType c : columns_) {
    switch (c) {
      case ColumnType::kClb: ++clb; break;
      case ColumnType::kDsp: ++dsp; break;
      case ColumnType::kBram: ++bram; break;
      case ColumnType::kIo: ++io; break;
    }
  }
  std::ostringstream os;
  os << name_ << ": " << width() << "x" << height() << " tiles, columns CLB=" << clb
     << " DSP=" << dsp << " BRAM=" << bram << " IO=" << io << ", capacity " << total_.to_string();
  return os.str();
}

namespace {

// Spreads `count` special columns of `type` evenly across a layout that is
// CLB by default. Occupied slots shift right to the next free column.
void scatter_columns(std::vector<ColumnType>& cols, ColumnType type, int count) {
  const int n = static_cast<int>(cols.size());
  for (int i = 0; i < count; ++i) {
    int pos = static_cast<int>((static_cast<double>(i) + 0.5) * n / count);
    while (pos < n && cols[static_cast<std::size_t>(pos)] != ColumnType::kClb) ++pos;
    if (pos >= n) {
      pos = 0;
      while (pos < n && cols[static_cast<std::size_t>(pos)] != ColumnType::kClb) ++pos;
    }
    assert(pos < n);
    cols[static_cast<std::size_t>(pos)] = type;
  }
}

}  // namespace

Device make_xcku5p_sim() {
  // 216 columns in a periodic 10-column unit [C C D C C C C B C C]:
  // the column-wise replication of real UltraScale fabric, which is what
  // makes wide pre-implemented pblocks relocatable (identical signatures
  // repeat every unit). Two IO columns at ~1/3 and ~2/3 of the die are the
  // fabric discontinuities the paper blames for VGG's datapath stretch.
  std::vector<ColumnType> cols(216, ColumnType::kClb);
  for (std::size_t x = 0; x < cols.size(); ++x) {
    switch (x % 10) {
      case 2: cols[x] = ColumnType::kDsp; break;
      case 7: cols[x] = ColumnType::kBram; break;
      default: break;
    }
  }
  cols[75] = ColumnType::kIo;
  cols[145] = ColumnType::kIo;
  return Device("xcku5p_sim", std::move(cols), /*rows=*/240, /*clock_region_height=*/60);
}

Device make_tiny_device() {
  std::vector<ColumnType> cols(24, ColumnType::kClb);
  cols[12] = ColumnType::kIo;
  scatter_columns(cols, ColumnType::kDsp, 3);
  scatter_columns(cols, ColumnType::kBram, 2);
  return Device("tiny_test", std::move(cols), /*rows=*/32, /*clock_region_height=*/16);
}

}  // namespace fpgasim
