// Design checkpoints (the paper's DCP files): a locked, placed and routed
// component netlist together with its pblock and achieved QoR. Serialized
// to a compact binary `.fdcp` format so the component database survives
// across runs, mirroring RapidWright's DCP database.
#pragma once

#include <string>

#include "fabric/pblock.h"
#include "netlist/netlist.h"
#include "netlist/phys.h"

namespace fpgasim {

struct CheckpointMeta {
  double fmax_mhz = 0.0;
  double critical_path_ns = 0.0;
  double implement_seconds = 0.0;  // function-optimization wall time
  std::string strategy;            // winning exploration strategy label
  std::string device;              // device the pblock refers to
};

struct Checkpoint {
  Netlist netlist;
  PhysState phys;
  Pblock pblock;
  CheckpointMeta meta;
  /// Planned partition-pin tile of each module port (aligned with
  /// Netlist::ports(); empty when no pin plan was recorded).
  std::vector<TileCoord> port_pins;
};

/// Writes `checkpoint` to `path`. Throws std::runtime_error on IO failure.
void save_checkpoint(const std::string& path, const Checkpoint& checkpoint);

/// Reads a checkpoint written by save_checkpoint. Throws std::runtime_error
/// on IO failure, format mismatch or a malformed/truncated file: every
/// length field is bounds-checked against the bytes actually present,
/// enums are range-checked, and the loaded netlist must pass structural
/// validation with a physical state aligned to it.
Checkpoint load_checkpoint(const std::string& path);

}  // namespace fpgasim
