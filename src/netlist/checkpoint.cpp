#include "netlist/checkpoint.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace fpgasim {
namespace {

constexpr std::uint32_t kMagic = 0x46444350;  // "FDCP"
constexpr std::uint32_t kVersion = 3;         // v3 added partition pins
constexpr std::uint32_t kMinVersion = 2;      // v2 files (no pin plan) still load

class Writer {
 public:
  explicit Writer(const std::string& path) : out_(path, std::ios::binary) {
    if (!out_) throw std::runtime_error("cannot open for write: " + path);
  }
  void u8(std::uint8_t v) { raw(&v, sizeof(v)); }
  void u16(std::uint16_t v) { raw(&v, sizeof(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void i32(std::int32_t v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  void check() const {
    if (!out_) throw std::runtime_error("checkpoint write failed");
  }

 private:
  void raw(const void* data, std::size_t size) {
    out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
  }
  std::ofstream out_;
};

/// Bounds-checked reader: never trusts a length field further than the
/// bytes actually left in the file, so a corrupted header cannot trigger
/// a multi-gigabyte allocation or a silent short read.
class Reader {
 public:
  explicit Reader(const std::string& path) : in_(path, std::ios::binary), path_(path) {
    if (!in_) throw std::runtime_error("cannot open for read: " + path);
    in_.seekg(0, std::ios::end);
    remaining_ = static_cast<std::uint64_t>(in_.tellg());
    in_.seekg(0, std::ios::beg);
  }
  std::uint8_t u8() { return read<std::uint8_t>(); }
  std::uint16_t u16() { return read<std::uint16_t>(); }
  std::uint32_t u32() { return read<std::uint32_t>(); }
  std::uint64_t u64() { return read<std::uint64_t>(); }
  std::int32_t i32() { return read<std::int32_t>(); }
  double f64() { return read<double>(); }
  std::string str() {
    const std::uint32_t len = u32();
    if (len > remaining_) fail("string length exceeds file size");
    std::string s(len, '\0');
    raw(s.data(), len);
    return s;
  }
  /// Reads an element count and rejects it unless `count * min_elem_bytes`
  /// bytes are still available.
  std::uint32_t count(std::size_t min_elem_bytes) {
    const std::uint32_t n = u32();
    if (static_cast<std::uint64_t>(n) * min_elem_bytes > remaining_) {
      fail("element count exceeds file size");
    }
    return n;
  }
  std::uint64_t remaining() const { return remaining_; }
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("malformed fdcp file (" + why + "): " + path_);
  }

 private:
  template <typename T>
  T read() {
    T v{};
    raw(&v, sizeof(v));
    return v;
  }
  void raw(void* data, std::size_t size) {
    if (size > remaining_) fail("truncated");
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
    if (!in_) fail("truncated");
    remaining_ -= size;
  }
  std::ifstream in_;
  std::string path_;
  std::uint64_t remaining_ = 0;
};

}  // namespace

void save_checkpoint(const std::string& path, const Checkpoint& cp) {
  Writer w(path);
  w.u32(kMagic);
  w.u32(kVersion);
  w.str(cp.netlist.name());

  const Netlist& nl = cp.netlist;
  w.u32(static_cast<std::uint32_t>(nl.cell_count()));
  for (CellId c = 0; c < nl.cell_count(); ++c) {
    const Cell& cell = nl.cell(c);
    w.u8(static_cast<std::uint8_t>(cell.type));
    w.u8(static_cast<std::uint8_t>(cell.op));
    w.u16(cell.width);
    w.u16(cell.depth);
    w.u8(cell.stages);
    w.u8(cell.placement_locked ? 1 : 0);
    w.u32(cell.bram_depth);
    w.u64(cell.init);
    w.i32(cell.rom_id);
    w.u32(static_cast<std::uint32_t>(cell.inputs.size()));
    for (NetId in : cell.inputs) w.u32(in);
    w.u32(static_cast<std::uint32_t>(cell.outputs.size()));
    for (NetId out : cell.outputs) w.u32(out);
    w.str(cell.name);
  }
  w.u32(static_cast<std::uint32_t>(nl.net_count()));
  for (NetId n = 0; n < nl.net_count(); ++n) {
    const Net& net = nl.net(n);
    w.u32(net.driver);
    w.u16(net.driver_pin);
    w.u16(net.width);
    w.u8(net.routing_locked ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(net.sinks.size()));
    for (const auto& [cell, pin] : net.sinks) {
      w.u32(cell);
      w.u16(pin);
    }
    w.str(net.name);
  }
  w.u32(static_cast<std::uint32_t>(nl.ports().size()));
  for (const Port& port : nl.ports()) {
    w.str(port.name);
    w.u8(static_cast<std::uint8_t>(port.dir));
    w.u16(port.width);
    w.u32(port.net);
  }
  w.u32(static_cast<std::uint32_t>(nl.rom_count()));
  for (std::size_t r = 0; r < nl.rom_count(); ++r) {
    const auto& rom = nl.rom(static_cast<std::int32_t>(r));
    w.u32(static_cast<std::uint32_t>(rom.size()));
    for (std::uint64_t word : rom) w.u64(word);
  }

  // Physical state.
  w.u32(static_cast<std::uint32_t>(cp.phys.cell_loc.size()));
  for (const TileCoord& loc : cp.phys.cell_loc) {
    w.i32(loc.x);
    w.i32(loc.y);
  }
  w.u32(static_cast<std::uint32_t>(cp.phys.routes.size()));
  for (const RouteInfo& route : cp.phys.routes) {
    w.u8(route.routed ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(route.edges.size()));
    for (const auto& [a, b] : route.edges) {
      w.i32(a.x);
      w.i32(a.y);
      w.i32(b.x);
      w.i32(b.y);
    }
    w.u32(static_cast<std::uint32_t>(route.sink_delays_ns.size()));
    for (double d : route.sink_delays_ns) w.f64(d);
  }

  w.i32(cp.pblock.x0);
  w.i32(cp.pblock.y0);
  w.i32(cp.pblock.x1);
  w.i32(cp.pblock.y1);
  w.f64(cp.meta.fmax_mhz);
  w.f64(cp.meta.critical_path_ns);
  w.f64(cp.meta.implement_seconds);
  w.str(cp.meta.strategy);
  w.str(cp.meta.device);
  w.u32(static_cast<std::uint32_t>(cp.port_pins.size()));
  for (const TileCoord& pin : cp.port_pins) {
    w.i32(pin.x);
    w.i32(pin.y);
  }
  w.check();
}

Checkpoint load_checkpoint(const std::string& path) {
  Reader r(path);
  if (r.u32() != kMagic) throw std::runtime_error("not an fdcp file: " + path);
  const std::uint32_t version = r.u32();
  if (version < kMinVersion || version > kVersion) {
    throw std::runtime_error("fdcp version mismatch (got " + std::to_string(version) +
                             ", support " + std::to_string(kMinVersion) + ".." +
                             std::to_string(kVersion) + "): " + path);
  }

  Checkpoint cp;
  cp.netlist.set_name(r.str());
  Netlist& nl = cp.netlist;

  const std::uint32_t num_cells = r.count(24);  // fixed fields per serialized cell
  for (std::uint32_t c = 0; c < num_cells; ++c) {
    Cell cell;
    const std::uint8_t type = r.u8();
    if (type > static_cast<std::uint8_t>(CellType::kBram)) r.fail("cell type out of range");
    cell.type = static_cast<CellType>(type);
    const std::uint8_t op = r.u8();
    if (op > static_cast<std::uint8_t>(LutOp::kTruth6)) r.fail("lut op out of range");
    cell.op = static_cast<LutOp>(op);
    cell.width = r.u16();
    cell.depth = r.u16();
    cell.stages = r.u8();
    cell.placement_locked = r.u8() != 0;
    cell.bram_depth = r.u32();
    cell.init = r.u64();
    cell.rom_id = r.i32();
    cell.inputs.resize(r.count(sizeof(std::uint32_t)));
    for (NetId& in : cell.inputs) in = r.u32();
    cell.outputs.resize(r.count(sizeof(std::uint32_t)));
    for (NetId& out : cell.outputs) out = r.u32();
    cell.name = r.str();
    nl.add_cell(std::move(cell));
  }
  const std::uint32_t num_nets = r.count(13);  // fixed fields per serialized net
  for (std::uint32_t n = 0; n < num_nets; ++n) {
    const NetId id = nl.add_net(1);
    Net& net = nl.net(id);
    net.driver = r.u32();
    net.driver_pin = r.u16();
    net.width = r.u16();
    net.routing_locked = r.u8() != 0;
    net.sinks.resize(r.count(sizeof(std::uint32_t) + sizeof(std::uint16_t)));
    for (auto& [cell, pin] : net.sinks) {
      cell = r.u32();
      pin = r.u16();
    }
    net.name = r.str();
  }
  const std::uint32_t num_ports = r.count(11);  // fixed fields per serialized port
  for (std::uint32_t p = 0; p < num_ports; ++p) {
    Port port;
    port.name = r.str();
    const std::uint8_t dir = r.u8();
    if (dir > static_cast<std::uint8_t>(PortDir::kOutput)) r.fail("port direction out of range");
    port.dir = static_cast<PortDir>(dir);
    port.width = r.u16();
    port.net = r.u32();
    if (port.net >= nl.net_count()) r.fail("port bound to out-of-range net");
    nl.add_port(std::move(port));
  }
  const std::uint32_t num_roms = r.count(sizeof(std::uint32_t));
  for (std::uint32_t i = 0; i < num_roms; ++i) {
    std::vector<std::uint64_t> rom(r.count(sizeof(std::uint64_t)));
    for (std::uint64_t& word : rom) word = r.u64();
    nl.add_rom(std::move(rom));
  }

  cp.phys.cell_loc.resize(r.count(2 * sizeof(std::int32_t)));
  for (TileCoord& loc : cp.phys.cell_loc) {
    loc.x = r.i32();
    loc.y = r.i32();
  }
  cp.phys.routes.resize(r.count(9));  // fixed fields per serialized route
  for (RouteInfo& route : cp.phys.routes) {
    route.routed = r.u8() != 0;
    route.edges.resize(r.count(4 * sizeof(std::int32_t)));
    for (auto& [a, b] : route.edges) {
      a.x = r.i32();
      a.y = r.i32();
      b.x = r.i32();
      b.y = r.i32();
    }
    route.sink_delays_ns.resize(r.count(sizeof(double)));
    for (double& d : route.sink_delays_ns) d = r.f64();
  }

  cp.pblock.x0 = r.i32();
  cp.pblock.y0 = r.i32();
  cp.pblock.x1 = r.i32();
  cp.pblock.y1 = r.i32();
  cp.meta.fmax_mhz = r.f64();
  cp.meta.critical_path_ns = r.f64();
  cp.meta.implement_seconds = r.f64();
  cp.meta.strategy = r.str();
  cp.meta.device = r.str();
  if (version >= 3) {
    cp.port_pins.resize(r.count(2 * sizeof(std::int32_t)));
    for (TileCoord& pin : cp.port_pins) {
      pin.x = r.i32();
      pin.y = r.i32();
    }
  }
  if (r.remaining() != 0) r.fail("trailing bytes");

  // A checkpoint is only usable if the payload is self-consistent: the
  // physical state must align with the netlist and the netlist itself
  // must be structurally valid.
  if (cp.phys.cell_loc.size() != nl.cell_count() || cp.phys.routes.size() != nl.net_count()) {
    r.fail("physical state misaligned with netlist");
  }
  if (!cp.port_pins.empty() && cp.port_pins.size() != nl.ports().size()) {
    r.fail("partition pin plan misaligned with ports");
  }
  const std::vector<std::string> problems = nl.validate();
  if (!problems.empty()) {
    r.fail("invalid netlist: " + problems.front());
  }
  return cp;
}

}  // namespace fpgasim
