// Bus-level technology-mapped netlist.
//
// Cells are primitive macro-cells (w-bit LUT logic, registers, SRL shift
// registers, carry-chain adders/comparators, DSP48 multiply-accumulate,
// BRAM) with calibrated fabric footprints (see DESIGN.md #6). Nets are
// multi-bit buses with one driver and many sinks. This is the layer that
// plays the role of a post-synthesis Vivado netlist: placement locks,
// routing locks and checkpoint serialization all operate on it.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "fabric/resources.h"

namespace fpgasim {

using CellId = std::uint32_t;
using NetId = std::uint32_t;
inline constexpr CellId kInvalidCell = std::numeric_limits<CellId>::max();
inline constexpr NetId kInvalidNet = std::numeric_limits<NetId>::max();

/// Primitive macro-cell kinds. Each maps onto fabric resources via
/// cell_footprint().
enum class CellType : std::uint8_t {
  kConst,   // constant driver, no fabric cost
  kLut,     // w-bit combinational logic (op from LutOp)
  kFf,      // w-bit register with clock enable
  kSrl,     // w-bit shift register, `depth` stages (LUT-based SRL16)
  kAdd,     // w-bit add/sub on the carry chain
  kMax,     // w-bit signed max (comparator + mux), max-pool primitive
  kRelu,    // w-bit ReLU (sign-select mux)
  kDsp,     // DSP48: P = A*B (+ C), `stages` internal pipeline registers
  kBram,    // sync-read memory, `depth` x w bits, optional ROM init
};

const char* to_string(CellType type);

/// Combinational operation of a kLut cell.
enum class LutOp : std::uint8_t {
  kAnd,
  kOr,
  kXor,
  kNot,
  kMux2,     // inputs: a, b, sel(1 bit) -> sel ? b : a
  kEq,       // 1-bit output: a == b
  kLtU,      // 1-bit output: a < b (unsigned)
  kPass,     // buffer
  kTruth6,   // <=6 single-bit inputs, 64-bit truth table in `init`
};

const char* to_string(LutOp op);

struct Cell {
  CellType type = CellType::kLut;
  LutOp op = LutOp::kPass;
  std::uint16_t width = 1;     // bus width of the primary output
  std::uint16_t depth = 0;     // kSrl: stages; kBram: log not needed, raw depth
  std::uint8_t stages = 0;     // kDsp: internal pipeline registers (0..3)
  bool placement_locked = false;
  std::uint32_t bram_depth = 0;  // kBram only (depth may exceed 16 bits)
  std::uint64_t init = 0;        // kConst value / kTruth6 table
  std::int32_t rom_id = -1;      // kBram: index into Netlist::rom_contents
  std::vector<NetId> inputs;     // semantics depend on type (see generators)
  std::vector<NetId> outputs;    // almost always exactly one
  std::string name;
};

struct Net {
  CellId driver = kInvalidCell;        // kInvalidCell: driven by a module input port
  std::uint16_t driver_pin = 0;        // output index on the driver
  std::uint16_t width = 1;
  bool routing_locked = false;         // pre-implemented (locked) route
  std::vector<std::pair<CellId, std::uint16_t>> sinks;  // (cell, input pin)
  std::string name;
};

enum class PortDir : std::uint8_t { kInput, kOutput };

/// Module boundary connection; OOC components expose stream-style
/// source/sink interfaces through these.
struct Port {
  std::string name;
  PortDir dir = PortDir::kInput;
  std::uint16_t width = 1;
  NetId net = kInvalidNet;
};

/// Expected width of `cell`'s output pin (kEq/kLtU LUTs are 1-bit flags,
/// everything else drives a cell.width-wide bus).
std::uint16_t expected_output_width(const Cell& cell);

/// True when the cell computes combinationally from its inputs (its output
/// can participate in a combinational loop).
bool is_combinational(const Cell& cell);

/// Input pins that must be connected for the cell to be well-formed.
std::vector<std::uint16_t> required_input_pins(const Cell& cell);

/// Aggregate statistics used by the resource-utilization experiments.
struct NetlistStats {
  std::size_t cells = 0;
  std::size_t nets = 0;
  std::size_t ports = 0;
  ResourceVec resources;
};

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // -- construction ---------------------------------------------------------
  NetId add_net(std::uint16_t width, std::string name = {});
  CellId add_cell(Cell cell);
  std::size_t add_port(Port port);
  /// Registers BRAM ROM contents; returns rom_id for Cell::rom_id.
  std::int32_t add_rom(std::vector<std::uint64_t> words);

  /// Connects `net` as input pin `pin` of `cell` (appends sink).
  void connect_input(CellId cell, std::uint16_t pin, NetId net);
  /// Declares `cell`'s output pin `pin` as the driver of `net`.
  void connect_output(CellId cell, std::uint16_t pin, NetId net);

  // -- access ---------------------------------------------------------------
  std::size_t cell_count() const { return cells_.size(); }
  std::size_t net_count() const { return nets_.size(); }
  Cell& cell(CellId id) { return cells_[id]; }
  const Cell& cell(CellId id) const { return cells_[id]; }
  Net& net(NetId id) { return nets_[id]; }
  const Net& net(NetId id) const { return nets_[id]; }
  std::vector<Port>& ports() { return ports_; }
  const std::vector<Port>& ports() const { return ports_; }
  const Port* find_port(const std::string& name) const;
  const std::vector<std::uint64_t>& rom(std::int32_t rom_id) const {
    return roms_[static_cast<std::size_t>(rom_id)];
  }
  std::size_t rom_count() const { return roms_.size(); }

  /// Fabric footprint of one cell.
  static ResourceVec cell_footprint(const Cell& cell);

  /// Whole-netlist statistics.
  NetlistStats stats() const;

  /// Locks placement of every cell and routing of every net
  /// ("logic locking" in the paper's performance-exploration step).
  void lock_all();

  /// Structural validation: every net has a driver or is a module input,
  /// pin indices are consistent, port nets exist. Returns a list of
  /// human-readable problems (empty == valid).
  std::vector<std::string> validate() const;

  /// Removes every cell that is unreachable backward from an output port
  /// and every net left with neither reader nor port binding, compacting
  /// ids in stable (ascending) order. Behaviour-preserving: only logic
  /// with no observable effect is dropped. Returns the number of cells
  /// removed. Must run before placement/routing state exists — PhysState
  /// vectors indexed by the old ids are not remapped.
  std::size_t prune_dead();

  /// Appends a deep copy of `other` into this netlist.
  /// Returns the (cell, net) index offsets assigned to the copied design.
  /// Ports of `other` are NOT copied; the caller binds them explicitly
  /// (this is the checkpoint "black-box fill" primitive).
  std::pair<CellId, NetId> merge(const Netlist& other);

 private:
  std::string name_;
  std::vector<Cell> cells_;
  std::vector<Net> nets_;
  std::vector<Port> ports_;
  std::vector<std::vector<std::uint64_t>> roms_;
};

}  // namespace fpgasim
