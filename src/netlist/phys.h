// Physical implementation state attached to a netlist: cell placements and
// routed nets. Translation-invariant so a locked component can be relocated
// to any column-compatible anchor without re-place/re-route.
#pragma once

#include <vector>

#include "fabric/device.h"
#include "netlist/netlist.h"

namespace fpgasim {

inline constexpr TileCoord kUnplaced{-1, -1};

/// Routed tree of one net: occupied channel edges plus per-sink delays
/// (aligned with Net::sinks). Delays are invariant under translation.
struct RouteInfo {
  bool routed = false;
  std::vector<std::pair<TileCoord, TileCoord>> edges;
  std::vector<double> sink_delays_ns;
};

struct PhysState {
  std::vector<TileCoord> cell_loc;  // aligned with Netlist cells
  std::vector<RouteInfo> routes;    // aligned with Netlist nets

  void resize_for(const Netlist& netlist) {
    cell_loc.resize(netlist.cell_count(), kUnplaced);
    routes.resize(netlist.net_count());
  }

  bool is_placed(CellId cell) const {
    return !(cell_loc[cell] == kUnplaced);
  }

  /// Shifts every placed cell and routed edge by (dx, dy).
  void translate(int dx, int dy) {
    for (TileCoord& loc : cell_loc) {
      if (loc == kUnplaced) continue;
      loc.x += dx;
      loc.y += dy;
    }
    for (RouteInfo& route : routes) {
      for (auto& [a, b] : route.edges) {
        a.x += dx;
        a.y += dy;
        b.x += dx;
        b.y += dy;
      }
    }
  }

  /// Appends `other` (aligned with a netlist that was merge()d into ours).
  void append(const PhysState& other) {
    cell_loc.insert(cell_loc.end(), other.cell_loc.begin(), other.cell_loc.end());
    routes.insert(routes.end(), other.routes.begin(), other.routes.end());
  }
};

}  // namespace fpgasim
