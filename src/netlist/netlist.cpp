#include "netlist/netlist.h"

#include <algorithm>

namespace fpgasim {

const char* to_string(CellType type) {
  switch (type) {
    case CellType::kConst: return "CONST";
    case CellType::kLut: return "LUT";
    case CellType::kFf: return "FF";
    case CellType::kSrl: return "SRL";
    case CellType::kAdd: return "ADD";
    case CellType::kMax: return "MAX";
    case CellType::kRelu: return "RELU";
    case CellType::kDsp: return "DSP48";
    case CellType::kBram: return "BRAM";
  }
  return "?";
}

const char* to_string(LutOp op) {
  switch (op) {
    case LutOp::kAnd: return "AND";
    case LutOp::kOr: return "OR";
    case LutOp::kXor: return "XOR";
    case LutOp::kNot: return "NOT";
    case LutOp::kMux2: return "MUX2";
    case LutOp::kEq: return "EQ";
    case LutOp::kLtU: return "LTU";
    case LutOp::kPass: return "PASS";
    case LutOp::kTruth6: return "TRUTH6";
  }
  return "?";
}

std::uint16_t expected_output_width(const Cell& cell) {
  if (cell.type == CellType::kLut && (cell.op == LutOp::kEq || cell.op == LutOp::kLtU)) {
    return 1;
  }
  return cell.width;
}

bool is_combinational(const Cell& cell) {
  switch (cell.type) {
    case CellType::kLut:
    case CellType::kAdd:
    case CellType::kMax:
    case CellType::kRelu:
      return true;
    case CellType::kDsp:
      return cell.stages == 0;  // unpipelined DSP48 is a combinational MAC
    case CellType::kConst:
    case CellType::kFf:
    case CellType::kSrl:
    case CellType::kBram:
      return false;
  }
  return false;
}

std::vector<std::uint16_t> required_input_pins(const Cell& cell) {
  switch (cell.type) {
    case CellType::kConst:
      return {};
    case CellType::kLut:
      // kNot/kPass are unary; everything else consumes two operands
      // (kMux2's select, pin 2, is also mandatory).
      if (cell.op == LutOp::kNot || cell.op == LutOp::kPass) return {0};
      if (cell.op == LutOp::kMux2) return {0, 1, 2};
      return {0, 1};
    case CellType::kAdd:
    case CellType::kMax:
      return {0, 1};
    case CellType::kDsp:
      return {0, 1};  // C addend is optional
    case CellType::kFf:
    case CellType::kSrl:
    case CellType::kRelu:
      return {0};  // clock enable (pin 1) is optional
    case CellType::kBram:
      return {0};  // write port / read address are optional (ROM mode)
  }
  return {};
}

NetId Netlist::add_net(std::uint16_t width, std::string name) {
  Net net;
  net.width = width;
  net.name = std::move(name);
  nets_.push_back(std::move(net));
  return static_cast<NetId>(nets_.size() - 1);
}

CellId Netlist::add_cell(Cell cell) {
  cells_.push_back(std::move(cell));
  return static_cast<CellId>(cells_.size() - 1);
}

std::size_t Netlist::add_port(Port port) {
  ports_.push_back(std::move(port));
  return ports_.size() - 1;
}

std::int32_t Netlist::add_rom(std::vector<std::uint64_t> words) {
  roms_.push_back(std::move(words));
  return static_cast<std::int32_t>(roms_.size() - 1);
}

void Netlist::connect_input(CellId cell, std::uint16_t pin, NetId net) {
  Cell& c = cells_[cell];
  if (c.inputs.size() <= pin) c.inputs.resize(pin + 1, kInvalidNet);
  c.inputs[pin] = net;
  nets_[net].sinks.emplace_back(cell, pin);
}

void Netlist::connect_output(CellId cell, std::uint16_t pin, NetId net) {
  Cell& c = cells_[cell];
  if (c.outputs.size() <= pin) c.outputs.resize(pin + 1, kInvalidNet);
  c.outputs[pin] = net;
  nets_[net].driver = cell;
  nets_[net].driver_pin = pin;
}

const Port* Netlist::find_port(const std::string& name) const {
  for (const Port& port : ports_) {
    if (port.name == name) return &port;
  }
  return nullptr;
}

ResourceVec Netlist::cell_footprint(const Cell& cell) {
  const std::int64_t w = cell.width;
  switch (cell.type) {
    case CellType::kConst:
      return {};
    case CellType::kLut:
      // kMux2 costs one LUT per bit (LUT6 fits a 2:1 mux); comparators and
      // wide gates likewise one LUT level per bit.
      return {.lut = w};
    case CellType::kFf:
      return {.ff = w};
    case CellType::kSrl: {
      // SRL16: 16 stages per LUT per bit.
      const std::int64_t per_bit = (cell.depth + 15) / 16;
      return {.lut = per_bit * w};
    }
    case CellType::kAdd:
      return {.lut = w, .carry = (w + 7) / 8};
    case CellType::kMax:
      // Compare (carry chain) plus select mux.
      return {.lut = 2 * w, .carry = (w + 7) / 8};
    case CellType::kRelu:
      return {.lut = w};
    case CellType::kDsp:
      return {.dsp = 1};
    case CellType::kBram: {
      const std::int64_t bits = static_cast<std::int64_t>(cell.bram_depth) * w;
      return {.bram = std::max<std::int64_t>(1, (bits + 36 * 1024 - 1) / (36 * 1024))};
    }
  }
  return {};
}

NetlistStats Netlist::stats() const {
  NetlistStats stats;
  stats.cells = cells_.size();
  stats.nets = nets_.size();
  stats.ports = ports_.size();
  for (const Cell& cell : cells_) stats.resources += cell_footprint(cell);
  return stats;
}

void Netlist::lock_all() {
  for (Cell& cell : cells_) cell.placement_locked = true;
  for (Net& net : nets_) net.routing_locked = true;
}

std::vector<std::string> Netlist::validate() const {
  std::vector<std::string> problems;
  std::vector<bool> is_input_port_net(nets_.size(), false);
  for (const Port& port : ports_) {
    if (port.net == kInvalidNet || port.net >= nets_.size()) {
      problems.push_back("port '" + port.name + "' has invalid net");
      continue;
    }
    if (port.dir == PortDir::kInput) is_input_port_net[port.net] = true;
    if (nets_[port.net].width != port.width) {
      problems.push_back("port '" + port.name + "' width mismatch with its net");
    }
  }
  for (NetId n = 0; n < nets_.size(); ++n) {
    const Net& net = nets_[n];
    if (net.driver == kInvalidCell) {
      if (!is_input_port_net[n] && !net.sinks.empty()) {
        problems.push_back("net #" + std::to_string(n) + " ('" + net.name +
                           "') has sinks but no driver");
      }
    } else if (net.driver >= cells_.size()) {
      problems.push_back("net #" + std::to_string(n) + " has out-of-range driver");
    } else {
      const Cell& drv = cells_[net.driver];
      if (net.driver_pin >= drv.outputs.size() || drv.outputs[net.driver_pin] != n) {
        problems.push_back("net #" + std::to_string(n) + " driver pin inconsistent");
      }
    }
    for (const auto& [cell, pin] : net.sinks) {
      if (cell >= cells_.size()) {
        problems.push_back("net #" + std::to_string(n) + " has out-of-range sink");
      } else if (pin >= cells_[cell].inputs.size() || cells_[cell].inputs[pin] != n) {
        problems.push_back("net #" + std::to_string(n) + " sink pin inconsistent");
      }
    }
  }
  for (CellId c = 0; c < cells_.size(); ++c) {
    const Cell& cell = cells_[c];
    for (NetId in : cell.inputs) {
      if (in != kInvalidNet && in >= nets_.size()) {
        problems.push_back("cell #" + std::to_string(c) + " input net out of range");
      }
    }
    if (cell.type == CellType::kBram && cell.rom_id >= 0 &&
        static_cast<std::size_t>(cell.rom_id) >= roms_.size()) {
      problems.push_back("cell #" + std::to_string(c) + " rom_id out of range");
    }
  }
  return problems;
}

std::size_t Netlist::prune_dead() {
  // Backward reachability from output-port nets: a cell is live when it
  // drives a live net; every input of a live cell is live.
  std::vector<bool> net_live(nets_.size(), false);
  std::vector<bool> cell_live(cells_.size(), false);
  std::vector<NetId> worklist;
  for (const Port& port : ports_) {
    if (port.dir == PortDir::kOutput && port.net != kInvalidNet &&
        port.net < nets_.size() && !net_live[port.net]) {
      net_live[port.net] = true;
      worklist.push_back(port.net);
    }
  }
  while (!worklist.empty()) {
    const NetId n = worklist.back();
    worklist.pop_back();
    const CellId driver = nets_[n].driver;
    if (driver == kInvalidCell || driver >= cells_.size() || cell_live[driver]) continue;
    cell_live[driver] = true;
    for (const NetId in : cells_[driver].inputs) {
      if (in != kInvalidNet && in < nets_.size() && !net_live[in]) {
        net_live[in] = true;
        worklist.push_back(in);
      }
    }
  }
  // A live cell's outputs stay even when unread (the cell exists, so its
  // output nets must); input-port nets stay because they are interface.
  for (CellId c = 0; c < cells_.size(); ++c) {
    if (!cell_live[c]) continue;
    for (const NetId out : cells_[c].outputs) {
      if (out != kInvalidNet && out < nets_.size()) net_live[out] = true;
    }
  }
  for (const Port& port : ports_) {
    if (port.net != kInvalidNet && port.net < nets_.size()) net_live[port.net] = true;
  }

  // Stable compaction maps (old id -> new id).
  std::vector<CellId> cell_map(cells_.size(), kInvalidCell);
  std::vector<NetId> net_map(nets_.size(), kInvalidNet);
  CellId next_cell = 0;
  for (CellId c = 0; c < cells_.size(); ++c) {
    if (cell_live[c]) cell_map[c] = next_cell++;
  }
  NetId next_net = 0;
  for (NetId n = 0; n < nets_.size(); ++n) {
    if (net_live[n]) net_map[n] = next_net++;
  }
  const std::size_t removed = cells_.size() - next_cell;
  if (removed == 0 && next_net == nets_.size()) return 0;

  std::vector<Cell> cells;
  cells.reserve(next_cell);
  for (CellId c = 0; c < cells_.size(); ++c) {
    if (!cell_live[c]) continue;
    Cell cell = std::move(cells_[c]);
    for (NetId& in : cell.inputs) {
      if (in != kInvalidNet && in < net_map.size()) in = net_map[in];
    }
    for (NetId& out : cell.outputs) {
      if (out != kInvalidNet && out < net_map.size()) out = net_map[out];
    }
    cells.push_back(std::move(cell));
  }
  std::vector<Net> nets;
  nets.reserve(next_net);
  for (NetId n = 0; n < nets_.size(); ++n) {
    if (!net_live[n]) continue;
    Net net = std::move(nets_[n]);
    if (net.driver != kInvalidCell && net.driver < cell_map.size()) {
      net.driver = cell_map[net.driver];  // dead driver -> kInvalidCell
    }
    std::vector<std::pair<CellId, std::uint16_t>> sinks;
    sinks.reserve(net.sinks.size());
    for (const auto& [cell, pin] : net.sinks) {
      if (cell < cell_map.size() && cell_map[cell] != kInvalidCell) {
        sinks.emplace_back(cell_map[cell], pin);
      }
    }
    net.sinks = std::move(sinks);
    nets.push_back(std::move(net));
  }
  cells_ = std::move(cells);
  nets_ = std::move(nets);
  for (Port& port : ports_) {
    if (port.net != kInvalidNet && port.net < net_map.size()) port.net = net_map[port.net];
  }
  return removed;
}

std::pair<CellId, NetId> Netlist::merge(const Netlist& other) {
  const CellId cell_offset = static_cast<CellId>(cells_.size());
  const NetId net_offset = static_cast<NetId>(nets_.size());
  const std::int32_t rom_offset = static_cast<std::int32_t>(roms_.size());

  roms_.insert(roms_.end(), other.roms_.begin(), other.roms_.end());

  cells_.reserve(cells_.size() + other.cells_.size());
  for (const Cell& src : other.cells_) {
    Cell cell = src;
    for (NetId& in : cell.inputs) {
      if (in != kInvalidNet) in += net_offset;
    }
    for (NetId& out : cell.outputs) {
      if (out != kInvalidNet) out += net_offset;
    }
    if (cell.rom_id >= 0) cell.rom_id += rom_offset;
    cells_.push_back(std::move(cell));
  }
  nets_.reserve(nets_.size() + other.nets_.size());
  for (const Net& src : other.nets_) {
    Net net = src;
    if (net.driver != kInvalidCell) net.driver += cell_offset;
    for (auto& [cell, pin] : net.sinks) cell += cell_offset;
    nets_.push_back(std::move(net));
  }
  return {cell_offset, net_offset};
}

}  // namespace fpgasim
