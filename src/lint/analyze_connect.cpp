// Connectivity hygiene: driver/fanout conflicts, floating required inputs
// and bus-width agreement at cell ports — and, when the caller passes the
// composed design's instance ranges, width agreement across the stitch
// boundaries between pre-implemented components (where a silent mismatch
// would corrupt every network built from the database).
#include <string>
#include <vector>

#include "lint/lint.h"

namespace fpgasim {
namespace lint {
namespace detail {
namespace {

/// Instance index owning `cell`, or -1. Instances come from merge() and are
/// contiguous, so a linear scan over a handful of components is fine.
int instance_of(const std::vector<Instance>& instances, CellId cell) {
  for (std::size_t i = 0; i < instances.size(); ++i) {
    if (cell >= instances[i].cell_begin && cell < instances[i].cell_end) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace

void analyze_connectivity(const Netlist& nl, const LintOptions& opt, Emitter& out) {
  std::vector<bool> is_input_port(nl.net_count(), false);
  for (const Port& port : nl.ports()) {
    if (port.dir == PortDir::kInput && port.net < nl.net_count()) {
      is_input_port[port.net] = true;
    }
  }

  // -- lint-multi-driver ----------------------------------------------------
  out.rule("lint-multi-driver");
  std::vector<int> driver_refs(nl.net_count(), 0);
  for (CellId c = 0; c < nl.cell_count(); ++c) {
    for (NetId o : nl.cell(c).outputs) {
      if (o != kInvalidNet && o < nl.net_count()) ++driver_refs[o];
    }
  }
  for (NetId n = 0; n < nl.net_count(); ++n) {
    if (driver_refs[n] > 1) {
      out.emit(net_ref(nl, n) + " is driven by " + std::to_string(driver_refs[n]) +
                   " cell output pins",
               kInvalidCell, n);
    } else if (driver_refs[n] == 1 && is_input_port[n]) {
      out.emit(net_ref(nl, n) + " is driven by both a cell output and an input port",
               kInvalidCell, n);
    }
  }

  // -- lint-floating-input --------------------------------------------------
  out.rule("lint-floating-input");
  for (CellId c = 0; c < nl.cell_count(); ++c) {
    const Cell& cell = nl.cell(c);
    for (const std::uint16_t pin : required_input_pins(cell)) {
      if (pin >= cell.inputs.size() || cell.inputs[pin] == kInvalidNet) {
        out.emit(cell_ref(nl, c) + " required input pin " + std::to_string(pin) +
                     " is unconnected",
                 c, kInvalidNet);
        continue;
      }
      const NetId in = cell.inputs[pin];
      if (in >= nl.net_count()) {
        out.emit(cell_ref(nl, c) + " required input pin " + std::to_string(pin) +
                     " references an out-of-range net",
                 c, kInvalidNet);
        continue;
      }
      if (nl.net(in).driver == kInvalidCell && !is_input_port[in]) {
        out.emit(cell_ref(nl, c) + " required input pin " + std::to_string(pin) +
                     " floats: " + net_ref(nl, in) + " has no driver and is not an input port",
                 c, in);
      }
    }
  }

  // -- lint-width-mismatch --------------------------------------------------
  out.rule("lint-width-mismatch");
  for (const Port& port : nl.ports()) {
    if (port.net >= nl.net_count()) {
      out.emit("port '" + port.name + "' is bound to an out-of-range net");
      continue;
    }
    if (nl.net(port.net).width != port.width) {
      out.emit("port '" + port.name + "' is " + std::to_string(port.width) +
                   " bits but its net is " + std::to_string(nl.net(port.net).width),
               kInvalidCell, port.net);
    }
  }
  for (NetId n = 0; n < nl.net_count(); ++n) {
    const Net& net = nl.net(n);
    if (net.driver == kInvalidCell || net.driver >= nl.cell_count()) continue;
    const std::uint16_t expect = expected_output_width(nl.cell(net.driver));
    if (net.width != expect) {
      out.emit(net_ref(nl, n) + " is " + std::to_string(net.width) + " bits but its driver " +
                   cell_ref(nl, net.driver) + " produces " + std::to_string(expect),
               net.driver, n);
    }
  }
  // Data operand pins must not silently truncate a wider net (narrower is
  // fine: the fabric zero-extends, which synthesized address arithmetic
  // relies on). At a stitch boundary between two composed components even
  // a legal-inside-a-component width change is reported: the stream buses
  // of matched components must agree exactly.
  for (CellId c = 0; c < nl.cell_count(); ++c) {
    const Cell& cell = nl.cell(c);
    std::vector<std::uint16_t> data_pins;
    switch (cell.type) {
      case CellType::kFf:
      case CellType::kSrl:
      case CellType::kRelu:
        data_pins = {0};
        break;
      case CellType::kAdd:
      case CellType::kMax:
        data_pins = {0, 1};
        break;
      default:
        continue;
    }
    for (const std::uint16_t pin : data_pins) {
      if (pin >= cell.inputs.size()) continue;
      const NetId in = cell.inputs[pin];
      if (in == kInvalidNet || in >= nl.net_count()) continue;
      const Net& net = nl.net(in);
      if (net.width > cell.width) {
        out.emit(cell_ref(nl, c) + " data pin " + std::to_string(pin) + " is " +
                     std::to_string(cell.width) + " bits but " + net_ref(nl, in) + " is " +
                     std::to_string(net.width) + " (truncation)",
                 c, in);
        continue;
      }
      if (net.width == cell.width || opt.instances.empty()) continue;
      if (net.driver == kInvalidCell || net.driver >= nl.cell_count()) continue;
      const int from = instance_of(opt.instances, net.driver);
      const int to = instance_of(opt.instances, c);
      if (from >= 0 && to >= 0 && from != to) {
        out.emit("stitch boundary '" + opt.instances[static_cast<std::size_t>(from)].name +
                     "' -> '" + opt.instances[static_cast<std::size_t>(to)].name + "': " +
                     net_ref(nl, in) + " is " + std::to_string(net.width) + " bits but " +
                     cell_ref(nl, c) + " data pin " + std::to_string(pin) + " expects " +
                     std::to_string(cell.width),
                 c, in);
      }
    }
  }
}

}  // namespace detail
}  // namespace lint
}  // namespace fpgasim
