// Forward 3-valued (0/1/X) constant- and X-propagation. Every net carries
// an abstract value from the lattice
//
//       Bot  <  Const(c)  <  Ext  <  X
//
// where Bot = not yet computed (dead/loop-only logic keeps it), Const(c) =
// provably the full-bus constant c on every cycle, Ext = driven and
// well-defined but input-dependent, X = may expose uninitialized state.
// join(Const(a), Const(b!=a)) = Ext; everything else is rank-max. The
// transfer functions are monotone and the lattice has height 3, so the
// chaotic iteration below terminates even on netlists with combinational
// loops (their nets simply stay Bot).
//
// Seeds: input ports are Ext (unknown but driven), kConst cells their
// value, a BRAM with neither ROM contents nor a write port is the X
// source (its power-up contents are never defined), and floating inputs
// are X. Registers model reset: an FF/SRL output is join(Const(0), input)
// — the reset state dominates only until the first load, so an X on the
// data input escapes into state and propagates (the paper-flow risk this
// pass exists to catch).
//
// Findings: lint-stuck-net (net constant at fixpoint without a kConst
// driver), lint-const-lut (the constant net's driver is a foldable LUT)
// and lint-x-escape (an output port's net is X; the message names the
// originating source).
#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include "lint/lint.h"
#include "sim/eval.h"

namespace fpgasim {
namespace lint {
namespace detail {
namespace {

enum class Kind : std::uint8_t { kBot = 0, kConst = 1, kExt = 2, kX = 3 };

struct AbsVal {
  Kind kind = Kind::kBot;
  std::uint64_t value = 0;        // kConst only
  NetId origin = kInvalidNet;     // kX only: net that introduced the X

  friend bool operator==(const AbsVal& a, const AbsVal& b) {
    if (a.kind != b.kind) return false;
    if (a.kind == Kind::kConst) return a.value == b.value;
    if (a.kind == Kind::kX) return a.origin == b.origin;
    return true;
  }
};

AbsVal bot() { return {}; }
AbsVal constant(std::uint64_t v, int width) {
  return {Kind::kConst, mask_width(v, width), kInvalidNet};
}
AbsVal ext() { return {Kind::kExt, 0, kInvalidNet}; }
AbsVal unknown(NetId origin) { return {Kind::kX, 0, origin}; }

AbsVal join(const AbsVal& a, const AbsVal& b) {
  if (a.kind == b.kind) {
    if (a.kind == Kind::kConst && a.value != b.value) return ext();
    if (a.kind == Kind::kX) return a;  // first origin wins (deterministic)
    return a;
  }
  const AbsVal& hi = a.kind > b.kind ? a : b;
  return hi;
}

/// The abstract evaluator for one cell. `pin(i)` is the abstract value on
/// input pin i; missing optional pins read as Const(0) (the interpreter's
/// convention), missing required pins as X.
class CellEval {
 public:
  CellEval(const Netlist& nl, const std::vector<AbsVal>& values) : nl_(nl), values_(values) {}

  AbsVal output(CellId id) const {
    const Cell& cell = nl_.cell(id);
    switch (cell.type) {
      case CellType::kConst:
        return constant(cell.init, cell.width);
      case CellType::kFf:
      case CellType::kSrl: {
        const AbsVal in = pin(cell, 0, id);
        const AbsVal en = pin(cell, 1, id);
        // Clock-enable stuck low: the register never leaves reset.
        if (connected(cell, 1) && en.kind == Kind::kConst && (en.value & 1) == 0) {
          return constant(0, cell.width);
        }
        if (in.kind == Kind::kBot) return bot();
        return join(constant(0, cell.width), in);
      }
      case CellType::kBram:
        return bram_read(cell, id);
      case CellType::kDsp:
        if (cell.stages > 0) {
          const AbsVal mac = comb(cell, id);
          if (mac.kind == Kind::kBot) return bot();
          return join(constant(0, cell.width), mac);
        }
        return comb(cell, id);
      default:
        return comb(cell, id);
    }
  }

 private:
  bool connected(const Cell& cell, std::size_t i) const {
    return i < cell.inputs.size() && cell.inputs[i] != kInvalidNet &&
           cell.inputs[i] < nl_.net_count();
  }

  /// Abstract value on input pin i. Required-but-missing pins are X, with
  /// the cell's own output net as origin (there is no source net to name).
  AbsVal pin(const Cell& cell, std::size_t i, CellId id) const {
    if (connected(cell, i)) return values_[cell.inputs[i]];
    for (const std::uint16_t req : required_input_pins(cell)) {
      if (req == i) {
        const NetId self = !cell.outputs.empty() && cell.outputs[0] != kInvalidNet &&
                                   cell.outputs[0] < nl_.net_count()
                               ? cell.outputs[0]
                               : kInvalidNet;
        (void)id;
        return unknown(self);
      }
    }
    return constant(0, 64);
  }

  AbsVal bram_read(const Cell& cell, CellId id) const {
    const bool writable = connected(cell, 2);
    if (cell.rom_id >= 0 && cell.rom_id < static_cast<std::int32_t>(nl_.rom_count())) {
      // ROM contents are defined; uninitialized words and out-of-range
      // reads return 0 (read-first model). Constant only if every word is.
      const auto& rom = nl_.rom(cell.rom_id);
      std::uint64_t first = 0;
      bool all_equal = true;
      for (std::size_t i = 0; i < rom.size() && i < cell.bram_depth; ++i) {
        const std::uint64_t w = mask_width(rom[i], cell.width);
        if (i == 0) {
          first = w;
        } else if (w != first) {
          all_equal = false;
          break;
        }
      }
      if (rom.size() < cell.bram_depth && first != 0) all_equal = false;
      AbsVal value = all_equal && !rom.empty() ? constant(first, cell.width) : ext();
      if (writable) value = join(value, pin(cell, 1, id));
      return value;
    }
    if (writable) {
      // RAM written at runtime: contents are the initial zeros or data that
      // went through the write port.
      const AbsVal wdata = pin(cell, 1, id);
      if (wdata.kind == Kind::kBot) return bot();
      return join(constant(0, cell.width), wdata);
    }
    // Neither ROM contents nor a write port: reads expose whatever the
    // memory powered up with. This is the uninitialized-state source.
    const NetId self = !cell.outputs.empty() && cell.outputs[0] != kInvalidNet &&
                               cell.outputs[0] < nl_.net_count()
                           ? cell.outputs[0]
                           : kInvalidNet;
    return unknown(self);
  }

  AbsVal comb(const Cell& cell, CellId id) const {
    const std::size_t read = cell.type == CellType::kLut && cell.op == LutOp::kTruth6
                                 ? std::min(cell.inputs.size(), kMaxCombPins)
                                 : (cell.type == CellType::kDsp ? 3
                                    : cell.type == CellType::kLut && cell.op == LutOp::kMux2
                                        ? 3
                                        : 2);
    AbsVal in[kMaxCombPins];
    bool any_bot = false;
    bool all_const = true;
    for (std::size_t i = 0; i < read; ++i) {
      in[i] = pin(cell, i, id);
      if (in[i].kind == Kind::kBot) any_bot = true;
      if (in[i].kind != Kind::kConst) all_const = false;
    }
    if (all_const) {
      std::uint64_t pins[kMaxCombPins] = {};
      for (std::size_t i = 0; i < read; ++i) pins[i] = in[i].value;
      return constant(eval_comb_cell(cell, pins, read),
                      expected_output_width(cell));
    }
    if (cell.type == CellType::kLut) {
      const AbsVal folded = lut_masks(cell, in, read);
      if (folded.kind != Kind::kBot) return folded;
    }
    if (any_bot) return bot();
    // No masking applies: the output is as unknown as the worst input.
    AbsVal acc = in[0];
    for (std::size_t i = 1; i < read; ++i) acc = taint_join(acc, in[i]);
    return acc;
  }

  /// Rank-max join that never produces Const (used when a cell combines
  /// non-constant operands: the result is Ext or X, never provably const).
  static AbsVal taint_join(const AbsVal& a, const AbsVal& b) {
    const AbsVal j = join(a, b);
    if (j.kind == Kind::kConst) return ext();
    return j;
  }

  /// Constant masking on partially-known LUT operands: AND with 0, OR with
  /// all-ones, a constant MUX select, and Truth6 tables insensitive to
  /// their unknown bits all fold to a definite value. Returns Bot when no
  /// mask applies.
  AbsVal lut_masks(const Cell& cell, const AbsVal* in, std::size_t read) const {
    const int w = cell.width;
    const std::uint64_t ones = mask_width(~0ULL, w);
    const auto is_const = [&](std::size_t i, std::uint64_t v) {
      return in[i].kind == Kind::kConst && in[i].value == v;
    };
    switch (cell.op) {
      case LutOp::kAnd:
        if (is_const(0, 0) || is_const(1, 0)) return constant(0, w);
        if (is_const(0, ones)) return in[1];
        if (is_const(1, ones)) return in[0];
        return bot();
      case LutOp::kOr:
        if (is_const(0, ones) || is_const(1, ones)) return constant(ones, w);
        if (is_const(0, 0)) return in[1];
        if (is_const(1, 0)) return in[0];
        return bot();
      case LutOp::kMux2:
        if (in[2].kind == Kind::kConst) return (in[2].value & 1) ? in[1] : in[0];
        if (in[0].kind == Kind::kConst && in[1].kind == Kind::kConst &&
            in[0].value == in[1].value) {
          return in[0];  // both arms equal: the select cannot matter
        }
        return bot();
      case LutOp::kPass:
        return in[0];
      case LutOp::kNot:
        return in[0].kind == Kind::kConst ? constant(~in[0].value, w) : in[0];
      case LutOp::kTruth6: {
        // Enumerate the unknown single-bit inputs; if the table's output is
        // the same under every assignment, the cell folds to a constant.
        std::uint64_t base = 0;
        std::vector<std::size_t> free_bits;
        for (std::size_t i = 0; i < read; ++i) {
          if (in[i].kind == Kind::kConst) {
            base |= (in[i].value & 1) << i;
          } else if (in[i].kind == Kind::kBot) {
            return bot();
          } else {
            free_bits.push_back(i);
          }
        }
        if (free_bits.size() >= 16) return bot();  // cannot happen (<= 6 pins)
        std::uint64_t first = 0;
        for (std::uint64_t m = 0; m < (1ULL << free_bits.size()); ++m) {
          std::uint64_t index = base;
          for (std::size_t b = 0; b < free_bits.size(); ++b) {
            if ((m >> b) & 1) index |= 1ULL << free_bits[b];
          }
          const std::uint64_t bit = (cell.init >> index) & 1;
          if (m == 0) {
            first = bit;
          } else if (bit != first) {
            return bot();
          }
        }
        return constant(first, 1);
      }
      default:
        return bot();
    }
  }

  const Netlist& nl_;
  const std::vector<AbsVal>& values_;
};

std::string origin_ref(const Netlist& nl, const AbsVal& v) {
  if (v.origin == kInvalidNet || v.origin >= nl.net_count()) {
    return "an unconnected required input";
  }
  const Net& net = nl.net(v.origin);
  std::string s = net_ref(nl, v.origin);
  if (net.driver != kInvalidCell && net.driver < nl.cell_count()) {
    const Cell& drv = nl.cell(net.driver);
    if (drv.type == CellType::kBram) {
      s = "uninitialized " + cell_ref(nl, net.driver) + " (no ROM contents, no write port) via " + s;
    } else {
      s = cell_ref(nl, net.driver) + " via " + s;
    }
  } else {
    s = "floating " + s;
  }
  return s;
}

}  // namespace

void analyze_values(const Netlist& nl, const LintOptions& opt, Emitter& out) {
  (void)opt;
  std::vector<AbsVal> values(nl.net_count());

  // Seeds: input ports are externally driven; driverless nets with readers
  // float (X); everything else starts Bot and is computed below.
  std::vector<bool> is_input_port(nl.net_count(), false);
  for (const Port& port : nl.ports()) {
    if (port.dir == PortDir::kInput && port.net < nl.net_count()) {
      is_input_port[port.net] = true;
      values[port.net] = ext();
    }
  }
  for (NetId n = 0; n < nl.net_count(); ++n) {
    const Net& net = nl.net(n);
    const bool driven = net.driver != kInvalidCell && net.driver < nl.cell_count();
    if (!driven && !is_input_port[n] && !net.sinks.empty()) {
      values[n] = unknown(n);  // floating net read by real sinks
    }
  }

  // Chaotic iteration to the fixpoint. Deterministic: the worklist is a
  // FIFO seeded in cell-id order, and every transfer is a pure function of
  // the current values.
  CellEval eval(nl, values);
  std::deque<CellId> worklist;
  std::vector<bool> queued(nl.cell_count(), false);
  for (CellId c = 0; c < nl.cell_count(); ++c) {
    worklist.push_back(c);
    queued[c] = true;
  }
  while (!worklist.empty()) {
    const CellId c = worklist.front();
    worklist.pop_front();
    queued[c] = false;
    const Cell& cell = nl.cell(c);
    if (cell.outputs.empty()) continue;
    const AbsVal next = eval.output(c);
    // Secondary outputs (rare) are conservatively external.
    for (std::size_t pin = 1; pin < cell.outputs.size(); ++pin) {
      const NetId o = cell.outputs[pin];
      if (o != kInvalidNet && o < nl.net_count() && values[o].kind == Kind::kBot) {
        values[o] = ext();
      }
    }
    const NetId o = cell.outputs[0];
    if (o == kInvalidNet || o >= nl.net_count()) continue;
    const AbsVal merged = join(values[o], next);
    if (merged == values[o]) continue;
    values[o] = merged;
    for (const auto& [sink, sink_pin] : nl.net(o).sinks) {
      (void)sink_pin;
      if (sink < nl.cell_count() && !queued[sink]) {
        worklist.push_back(sink);
        queued[sink] = true;
      }
    }
  }

  // Output-port bindings count as readers for the stuck-at report.
  std::vector<bool> output_bound(nl.net_count(), false);
  for (const Port& port : nl.ports()) {
    if (port.dir == PortDir::kOutput && port.net < nl.net_count()) {
      output_bound[port.net] = true;
    }
  }

  // A constant net is only a *finding* when the constancy comes from
  // masking — the driver reads at least one genuinely input-dependent (Ext
  // or X) operand yet always produces the same value. Constants that are
  // merely propagated from kConst cells (delayed, added, concatenated) are
  // the normal way generators materialize derived parameters; flagging
  // them would fail every clean design (false-positive contract).
  const auto masks_real_signal = [&](const Cell& driver) {
    for (const NetId in : driver.inputs) {
      if (in == kInvalidNet || in >= nl.net_count()) continue;
      if (values[in].kind == Kind::kExt || values[in].kind == Kind::kX) return true;
    }
    return false;
  };

  out.rule("lint-stuck-net");
  for (NetId n = 0; n < nl.net_count(); ++n) {
    const Net& net = nl.net(n);
    if (values[n].kind != Kind::kConst) continue;
    if (net.sinks.empty() && !output_bound[n]) continue;
    if (net.driver == kInvalidCell || net.driver >= nl.cell_count()) continue;
    const Cell& driver = nl.cell(net.driver);
    if (driver.type == CellType::kConst || driver.type == CellType::kLut) continue;
    if (!masks_real_signal(driver)) continue;
    out.emit(net_ref(nl, n) + " is stuck at constant " + std::to_string(values[n].value) +
                 " (driver " + cell_ref(nl, net.driver) + " masks a live signal)",
             net.driver, n);
  }

  out.rule("lint-const-lut");
  for (NetId n = 0; n < nl.net_count(); ++n) {
    const Net& net = nl.net(n);
    if (values[n].kind != Kind::kConst) continue;
    if (net.sinks.empty() && !output_bound[n]) continue;
    if (net.driver == kInvalidCell || net.driver >= nl.cell_count()) continue;
    const Cell& driver = nl.cell(net.driver);
    if (driver.type != CellType::kLut) continue;
    if (!masks_real_signal(driver)) continue;
    out.emit(cell_ref(nl, net.driver) + " always evaluates to " +
                 std::to_string(values[n].value) + "; foldable to a constant (drives " +
                 net_ref(nl, n) + ")",
             net.driver, n);
  }

  out.rule("lint-x-escape");
  for (const Port& port : nl.ports()) {
    if (port.dir != PortDir::kOutput || port.net >= nl.net_count()) continue;
    const AbsVal& v = values[port.net];
    if (v.kind != Kind::kX) continue;
    out.emit("output port '" + port.name +
                 "' can expose uninitialized state (X) originating at " + origin_ref(nl, v),
             kInvalidCell, port.net);
  }
}

}  // namespace detail
}  // namespace lint
}  // namespace fpgasim
