// fpgalint: whole-netlist static analyzer. Goes beyond the DRC's
// well-formedness rules with real dataflow reasoning over fpgasim::Netlist:
//
//   - combinational-loop detection (Tarjan SCC over the comb-edge graph;
//     registers break edges), each cycle reported as a named cell path;
//   - dead-logic detection (backward reachability from primary outputs),
//     flagging unreachable cells and unread nets;
//   - a forward 3-valued (0/1/X) constant- and X-propagation fixpoint that
//     finds stuck-at nets, LUTs foldable to constants, and uninitialized
//     state (X) escaping to primary outputs through registers whose reset
//     value never dominates;
//   - connectivity hygiene: driver/fanout conflicts, floating inputs and
//     bus-width mismatches at cell ports and stitch boundaries.
//
// All analyses are deterministic: single-threaded, iteration in index
// order, findings emitted in (rule registration, cell/net id) order — the
// report (and its JSON rendering) is byte-identical for any FPGASIM_THREADS
// width. Used as an opt-in gate by both flows and the checkpoint database,
// and standalone by tools/fpgalint.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace fpgasim {
namespace lint {

enum class Severity : std::uint8_t { kInfo = 0, kWarning = 1, kError = 2 };

const char* to_string(Severity severity);

/// One component instance inside a composed design (cell/net ranges from
/// merge()); lets the connectivity analysis attribute findings to stitch
/// boundaries between components. Optional — lint runs fine without.
struct Instance {
  std::string name;
  CellId cell_begin = 0;
  CellId cell_end = 0;
  NetId net_begin = 0;
  NetId net_end = 0;
};

struct Finding {
  std::string rule;  // rule id, e.g. "lint-comb-loop"
  Severity severity = Severity::kError;
  std::string message;
  CellId cell = kInvalidCell;  // offending cell when applicable
  NetId net = kInvalidNet;     // offending net when applicable
  bool waived = false;

  std::string to_string() const;
};

namespace detail {
class Emitter;
}  // namespace detail

struct LintOptions {
  /// Rule ids whose findings are recorded but excluded from error/warning
  /// counts (per-rule waivers).
  std::vector<std::string> waived_rules;
  /// Cap on recorded findings per rule; excess is counted in
  /// LintReport::suppressed but not stored.
  std::size_t max_findings_per_rule = 64;
  /// Component ranges of a composed design (see Instance).
  std::vector<Instance> instances;
};

class LintReport {
 public:
  void add(Finding finding);

  bool clean() const { return errors_ == 0; }
  bool empty() const { return findings_.empty(); }
  std::size_t errors() const { return errors_; }
  std::size_t warnings() const { return warnings_; }
  std::size_t infos() const { return infos_; }
  std::size_t waived() const { return waived_; }
  std::size_t suppressed() const { return suppressed_; }
  std::size_t rules_run() const { return rules_run_; }
  const std::vector<Finding>& findings() const { return findings_; }

  /// One-line "lint: 1 error, 2 warnings (9 rules)" digest.
  std::string summary() const;
  /// Full multi-line listing (summary + every recorded finding).
  std::string to_string() const;
  /// Findings recorded against `rule` (waived included).
  std::vector<const Finding*> by_rule(const std::string& rule) const;
  /// True when at least one (possibly waived) finding carries `rule`.
  bool has(const std::string& rule) const;

  /// Machine-readable report for CI consumption. Deterministic: contains
  /// only the design name, counts and findings — never timing — so reports
  /// are byte-identical across runs and FPGASIM_THREADS widths.
  std::string to_json() const;

  /// Analysis cost, reported by the flow gates next to their stage times.
  /// Excluded from to_json() by design (see above).
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;

 private:
  friend LintReport run(const Netlist&, const LintOptions&);
  friend class detail::Emitter;
  std::string design_;
  std::vector<Finding> findings_;
  std::size_t errors_ = 0;
  std::size_t warnings_ = 0;
  std::size_t infos_ = 0;
  std::size_t waived_ = 0;
  std::size_t suppressed_ = 0;
  std::size_t rules_run_ = 0;
};

/// Static description of one lint rule (for --list, docs and tests).
struct RuleInfo {
  const char* id;
  const char* what;
  Severity severity;
};

/// The rule table, in the order findings are emitted.
const std::vector<RuleInfo>& rules();

/// Runs every analysis over `netlist` and returns the findings.
LintReport run(const Netlist& netlist, const LintOptions& opt = {});

/// Throws std::runtime_error with the report listing when !report.clean().
void enforce(const LintReport& report, const std::string& where);

// -- analysis passes (each appends findings for its rules) ------------------
namespace detail {

/// A rule-scoped sink that applies waivers and per-rule caps.
class Emitter {
 public:
  Emitter(LintReport& report, const LintOptions& opt) : report_(report), opt_(opt) {}

  /// Enters `rule` scope: subsequent emit() calls carry its id/severity.
  void rule(const char* id);
  void emit(std::string message, CellId cell = kInvalidCell, NetId net = kInvalidNet);

 private:
  LintReport& report_;
  const LintOptions& opt_;
  const char* rule_ = nullptr;
  Severity severity_ = Severity::kError;
  bool waived_ = false;
  std::size_t emitted_ = 0;
};

std::string cell_ref(const Netlist& nl, CellId c);
std::string net_ref(const Netlist& nl, NetId n);

void analyze_loops(const Netlist& nl, const LintOptions& opt, Emitter& out);
void analyze_dead_logic(const Netlist& nl, const LintOptions& opt, Emitter& out);
void analyze_values(const Netlist& nl, const LintOptions& opt, Emitter& out);
void analyze_connectivity(const Netlist& nl, const LintOptions& opt, Emitter& out);

}  // namespace detail

}  // namespace lint
}  // namespace fpgasim
