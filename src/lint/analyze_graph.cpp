// Graph-shaped analyses: combinational-loop detection (Tarjan SCC over the
// comb-edge graph — registers break edges) and dead-logic detection
// (backward reachability from the primary outputs).
//
// Both are defensive about malformed netlists (out-of-range ids, dangling
// references): lint is run over fuzzed checkpoints and must never crash.
#include <algorithm>
#include <cstdint>
#include <vector>

#include "lint/lint.h"

namespace fpgasim {
namespace lint {
namespace detail {
namespace {

/// Combinational successor cells of `c` (through any of its output nets).
void comb_successors(const Netlist& nl, CellId c, std::vector<CellId>& succ) {
  succ.clear();
  for (NetId out : nl.cell(c).outputs) {
    if (out == kInvalidNet || out >= nl.net_count()) continue;
    for (const auto& [sink, pin] : nl.net(out).sinks) {
      (void)pin;
      if (sink < nl.cell_count() && is_combinational(nl.cell(sink))) succ.push_back(sink);
    }
  }
}

}  // namespace

// -- lint-comb-loop ---------------------------------------------------------
//
// Iterative Tarjan over the cell graph restricted to combinational cells.
// Every non-trivial SCC (size > 1, or a self-loop) is one finding whose
// message spells the cycle as a named cell path. Deterministic: roots are
// visited in ascending cell id, successor order follows net sink order.
void analyze_loops(const Netlist& nl, const LintOptions& opt, Emitter& out) {
  (void)opt;
  out.rule("lint-comb-loop");
  const std::size_t n = nl.cell_count();
  constexpr std::uint32_t kUnvisited = 0xFFFFFFFFu;
  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<CellId> stack;                    // Tarjan SCC stack
  std::vector<std::vector<CellId>> succ(n);     // cached per visited cell
  std::uint32_t next_index = 0;

  struct Frame {
    CellId cell;
    std::size_t next_succ;
  };
  std::vector<Frame> dfs;

  for (CellId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited || !is_combinational(nl.cell(root))) continue;
    dfs.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    comb_successors(nl, root, succ[root]);
    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      const CellId c = frame.cell;
      if (frame.next_succ < succ[c].size()) {
        const CellId s = succ[c][frame.next_succ++];
        if (index[s] == kUnvisited) {
          dfs.push_back({s, 0});
          index[s] = lowlink[s] = next_index++;
          stack.push_back(s);
          on_stack[s] = true;
          comb_successors(nl, s, succ[s]);
        } else if (on_stack[s]) {
          lowlink[c] = std::min(lowlink[c], index[s]);
        }
        continue;
      }
      // Frame exhausted: maybe an SCC root.
      if (lowlink[c] == index[c]) {
        std::vector<CellId> scc;
        for (;;) {
          const CellId m = stack.back();
          stack.pop_back();
          on_stack[m] = false;
          scc.push_back(m);
          if (m == c) break;
        }
        bool self_loop = false;
        if (scc.size() == 1) {
          self_loop = std::find(succ[c].begin(), succ[c].end(), c) != succ[c].end();
        }
        if (scc.size() > 1 || self_loop) {
          // Tarjan pops the SCC in reverse DFS order; reverse it so the
          // path reads source -> ... -> sink -> source.
          std::reverse(scc.begin(), scc.end());
          std::string path;
          for (const CellId m : scc) {
            if (!path.empty()) path += " -> ";
            path += cell_ref(nl, m);
          }
          path += " -> " + cell_ref(nl, scc.front());
          out.emit("combinational loop of " + std::to_string(scc.size()) + " cell" +
                       (scc.size() == 1 ? "" : "s") + ": " + path,
                   scc.front(), kInvalidNet);
        }
      }
      succ[c].clear();
      succ[c].shrink_to_fit();
      dfs.pop_back();
      if (!dfs.empty()) {
        lowlink[dfs.back().cell] = std::min(lowlink[dfs.back().cell], lowlink[c]);
      }
    }
  }
}

// -- lint-dead-cell / lint-unread-net ---------------------------------------
//
// Backward reachability from the primary outputs: a net is live when an
// output port exposes it or a live cell reads it; a cell is live when it
// drives a live net. Register state is traversed like any other cell —
// liveness flows from outputs through FF/SRL/BRAM/DSP state into the logic
// that feeds it (including BRAM write and enable pins). Anything left over
// is a dead cone the composed design can never observe.
void analyze_dead_logic(const Netlist& nl, const LintOptions& opt, Emitter& out) {
  (void)opt;
  std::vector<bool> net_live(nl.net_count(), false);
  std::vector<bool> cell_live(nl.cell_count(), false);
  std::vector<NetId> worklist;
  for (const Port& port : nl.ports()) {
    if (port.dir == PortDir::kOutput && port.net < nl.net_count() && !net_live[port.net]) {
      net_live[port.net] = true;
      worklist.push_back(port.net);
    }
  }
  while (!worklist.empty()) {
    const NetId n = worklist.back();
    worklist.pop_back();
    const Net& net = nl.net(n);
    if (net.driver == kInvalidCell || net.driver >= nl.cell_count()) continue;
    if (cell_live[net.driver]) continue;
    cell_live[net.driver] = true;
    for (NetId in : nl.cell(net.driver).inputs) {
      if (in != kInvalidNet && in < nl.net_count() && !net_live[in]) {
        net_live[in] = true;
        worklist.push_back(in);
      }
    }
  }

  // Input-port nets with no live reader are reported as unread, not dead.
  std::vector<bool> port_bound(nl.net_count(), false);
  for (const Port& port : nl.ports()) {
    if (port.net < nl.net_count()) port_bound[port.net] = true;
  }

  out.rule("lint-dead-cell");
  for (CellId c = 0; c < nl.cell_count(); ++c) {
    if (!cell_live[c]) {
      out.emit(cell_ref(nl, c) + " is unreachable backward from every primary output",
               c, kInvalidNet);
    }
  }

  out.rule("lint-unread-net");
  for (NetId n = 0; n < nl.net_count(); ++n) {
    const Net& net = nl.net(n);
    // A driven net nobody reads: no sinks and no output port exposing it.
    // (Nets with sinks that are merely dead are covered by lint-dead-cell
    // on their cone; driverless orphans are the DRC's net-dead.)
    if (net.driver != kInvalidCell && net.sinks.empty() && !port_bound[n]) {
      out.emit(net_ref(nl, n) + " is driven but read by no sink or port",
               net.driver < nl.cell_count() ? net.driver : kInvalidCell, n);
    }
  }
}

}  // namespace detail
}  // namespace lint
}  // namespace fpgasim
