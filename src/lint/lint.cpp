#include "lint/lint.h"

#include <algorithm>
#include <stdexcept>
#include <string_view>

#include "util/json.h"
#include "util/timer.h"

namespace fpgasim {
namespace lint {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::string Finding::to_string() const {
  std::string s = std::string(lint::to_string(severity)) + " [" + rule + "] " + message;
  if (waived) s += " (waived)";
  return s;
}

const std::vector<RuleInfo>& rules() {
  // Registration order == emission order (analyze_* call order in run()).
  static const std::vector<RuleInfo> table = {
      {"lint-comb-loop", "no combinational cycles (Tarjan SCC, registers break edges)",
       Severity::kError},
      {"lint-dead-cell", "every cell is backward-reachable from a primary output",
       Severity::kWarning},
      {"lint-unread-net", "every driven net is read by a sink or a port", Severity::kWarning},
      {"lint-stuck-net", "no net is stuck at a constant at the dataflow fixpoint",
       Severity::kWarning},
      {"lint-const-lut", "no LUT is foldable to a constant", Severity::kWarning},
      {"lint-x-escape", "uninitialized state (X) never reaches a primary output",
       Severity::kError},
      {"lint-multi-driver", "every net has at most one driver", Severity::kError},
      {"lint-floating-input", "no required input pin floats", Severity::kError},
      {"lint-width-mismatch", "bus widths agree at cell ports and stitch boundaries",
       Severity::kError},
  };
  return table;
}

void LintReport::add(Finding finding) {
  if (finding.waived) {
    ++waived_;
  } else {
    switch (finding.severity) {
      case Severity::kInfo: ++infos_; break;
      case Severity::kWarning: ++warnings_; break;
      case Severity::kError: ++errors_; break;
    }
  }
  findings_.push_back(std::move(finding));
}

std::string LintReport::summary() const {
  std::string s = "lint: " + std::to_string(errors_) + " error" + (errors_ == 1 ? "" : "s") +
                  ", " + std::to_string(warnings_) + " warning" + (warnings_ == 1 ? "" : "s");
  if (infos_ > 0) s += ", " + std::to_string(infos_) + " info";
  if (waived_ > 0) s += ", " + std::to_string(waived_) + " waived";
  if (suppressed_ > 0) s += ", " + std::to_string(suppressed_) + " suppressed";
  s += " (" + std::to_string(rules_run_) + " rules)";
  return s;
}

std::string LintReport::to_string() const {
  std::string s = summary();
  for (const Finding& f : findings_) {
    s += "\n  " + f.to_string();
  }
  return s;
}

std::vector<const Finding*> LintReport::by_rule(const std::string& rule) const {
  std::vector<const Finding*> out;
  for (const Finding& f : findings_) {
    if (f.rule == rule) out.push_back(&f);
  }
  return out;
}

bool LintReport::has(const std::string& rule) const {
  return std::any_of(findings_.begin(), findings_.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

std::string LintReport::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("design").value(design_);
  w.key("errors").value(errors_);
  w.key("warnings").value(warnings_);
  w.key("infos").value(infos_);
  w.key("waived").value(waived_);
  w.key("suppressed").value(suppressed_);
  w.key("rules_run").value(rules_run_);
  w.key("findings").begin_array();
  for (const Finding& f : findings_) {
    w.begin_object();
    w.key("rule").value(f.rule);
    w.key("severity").value(lint::to_string(f.severity));
    w.key("message").value(f.message);
    if (f.cell != kInvalidCell) w.key("cell").value(static_cast<std::size_t>(f.cell));
    if (f.net != kInvalidNet) w.key("net").value(static_cast<std::size_t>(f.net));
    if (f.waived) w.key("waived").value(true);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

namespace detail {

void Emitter::rule(const char* id) {
  rule_ = id;
  severity_ = Severity::kError;
  for (const RuleInfo& info : rules()) {
    if (std::string_view(info.id) == id) {
      severity_ = info.severity;
      break;
    }
  }
  waived_ = std::find(opt_.waived_rules.begin(), opt_.waived_rules.end(), id) !=
            opt_.waived_rules.end();
  emitted_ = 0;
}

void Emitter::emit(std::string message, CellId cell, NetId net) {
  if (rule_ == nullptr) throw std::logic_error("lint::Emitter: emit before rule()");
  if (emitted_ == opt_.max_findings_per_rule) {
    ++report_.suppressed_;
    return;
  }
  ++emitted_;
  report_.add({rule_, severity_, std::move(message), cell, net, waived_});
}

std::string net_ref(const Netlist& nl, NetId n) {
  std::string s = "net #" + std::to_string(n);
  if (!nl.net(n).name.empty()) s += " ('" + nl.net(n).name + "')";
  return s;
}

std::string cell_ref(const Netlist& nl, CellId c) {
  std::string s = std::string(fpgasim::to_string(nl.cell(c).type)) + " cell #" +
                  std::to_string(c);
  if (!nl.cell(c).name.empty()) s += " ('" + nl.cell(c).name + "')";
  return s;
}

}  // namespace detail

LintReport run(const Netlist& netlist, const LintOptions& opt) {
  Stopwatch wall;
  CpuStopwatch cpu;
  LintReport report;
  report.design_ = netlist.name();
  detail::Emitter out(report, opt);
  // Fixed pass order — findings come out grouped by rule in rules() order.
  detail::analyze_loops(netlist, opt, out);
  detail::analyze_dead_logic(netlist, opt, out);
  detail::analyze_values(netlist, opt, out);
  detail::analyze_connectivity(netlist, opt, out);
  report.rules_run_ = rules().size();
  report.wall_seconds = wall.seconds();
  report.cpu_seconds = cpu.seconds();
  return report;
}

void enforce(const LintReport& report, const std::string& where) {
  if (report.clean()) return;
  throw std::runtime_error("lint failed (" + where + "): " + report.to_string());
}

}  // namespace lint
}  // namespace fpgasim
