// CNN layer component generators ("synthesis").
//
// Every component follows the paper's source/sink architecture (Sec. IV-B3):
// a *source* memory controller loads the incoming feature-map stream into
// banked on-chip memory, the compute units (PE array per input feature map
// + adder tree, Fig. 4b) sweep the data, and a *sink* controller writes
// results to banked output memory and streams them out. Components talk
// through a valid/ready stream protocol (Fig. 5), canonical order
// channel-major: for c, for y, for x.
//
// Stream interface of every layer component:
//   in_data[16]  in_valid[1]  -> component;  component -> in_ready[1]
//   out_data[16] out_valid[1] -> downstream; downstream -> out_ready[1]
//
// Pipeline behaviour is image-granular: LOAD -> COMPUTE -> DRAIN -> LOAD.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"
#include "sim/fixed.h"

namespace fpgasim {

inline constexpr std::uint16_t kDataW = 16;  // fixed-16 datapath
inline constexpr std::uint16_t kAddrW = 24;  // address arithmetic width

struct ConvParams {
  std::string name = "conv";
  int in_c = 1;
  int out_c = 1;
  int kernel = 3;
  int in_h = 8;
  int in_w = 8;
  int stride = 1;
  int ic_par = 1;       // PEs: input feature maps processed in parallel
  int oc_par = 1;       // CU columns: output channels computed in parallel
  int dsp_stages = 1;   // MAC pipeline registers inside each DSP48
  bool fuse_relu = false;
  // Weight storage: true  -> weights hard-coded in ROM (LeNet style);
  //                 false -> weight *buffers* sized for `weight_buffer_ocg`
  //                          output groups (VGG style, coefficients come
  //                          from off-chip through the MMU). Functional
  //                          simulation requires materialized ROMs.
  bool materialize_roms = true;
  int weight_buffer_ocg = 0;  // 0 = all groups

  int out_h() const { return (in_h - kernel) / stride + 1; }
  int out_w() const { return (in_w - kernel) / stride + 1; }
  long macs() const {
    return static_cast<long>(out_c) * in_c * kernel * kernel * out_h() * out_w();
  }
  long weight_count() const { return static_cast<long>(out_c) * in_c * kernel * kernel; }
  /// COMPUTE-phase cycles (excluding LOAD/DRAIN), used by the latency model.
  long compute_cycles() const {
    return static_cast<long>(out_h()) * out_w() * kernel * kernel * (in_c / ic_par) *
           (out_c / oc_par);
  }
  long load_cycles() const { return static_cast<long>(in_c) * in_h * in_w; }
  long drain_cycles() const { return static_cast<long>(out_c) * out_h() * out_w(); }
};

/// Systolic-array style convolution layer engine. `weights` laid out
/// [oc][ic][ky][kx], `bias` per output channel; both in Q8.8.
Netlist make_conv_component(const ConvParams& params, const std::vector<Fixed16>& weights,
                            const std::vector<Fixed16>& bias);

/// Fully-connected layer as a convolution with kernel == input size
/// (paper Sec. V-B1). `inputs` is the flattened input count; weights
/// [out][in]. Parallelism: in_par over inputs.
Netlist make_fc_component(const std::string& name, int inputs, int outputs,
                          const std::vector<Fixed16>& weights,
                          const std::vector<Fixed16>& bias, int in_par = 1, int out_par = 1,
                          bool materialize_roms = true, int weight_buffer_ocg = 0,
                          bool fuse_relu = false);

struct DwConvParams {
  std::string name = "dwconv";
  int channels = 1;
  int kernel = 3;
  int stride = 1;
  int in_h = 8;
  int in_w = 8;
  int dsp_stages = 1;  // MAC pipeline registers inside the DSP48
  bool fuse_relu = false;

  int out_h() const { return (in_h - kernel) / stride + 1; }
  int out_w() const { return (in_w - kernel) / stride + 1; }
  long load_cycles() const { return static_cast<long>(channels) * in_h * in_w; }
  long compute_cycles() const {
    return static_cast<long>(channels) * out_h() * out_w() * kernel * kernel;
  }
  long drain_cycles() const { return static_cast<long>(channels) * out_h() * out_w(); }
};

/// Depthwise convolution engine: one k x k filter per channel, a single
/// DSP MAC sweeping the channels sequentially (MobileNet-style dw stages).
/// `weights` laid out [c][ky][kx], `bias` per channel; both Q8.8.
Netlist make_dwconv_component(const DwConvParams& params,
                              const std::vector<Fixed16>& weights,
                              const std::vector<Fixed16>& bias);

struct AvgPoolParams {
  std::string name = "avgpool";
  int channels = 1;
  int kernel_h = 2;  // == in_h for global average pooling
  int kernel_w = 2;
  int in_h = 8;
  int in_w = 8;
  bool fuse_relu = false;

  int out_h() const { return in_h / kernel_h; }
  int out_w() const { return in_w / kernel_w; }
};

/// Average-pooling engine: a 24-bit window accumulator (sign-extended Q8.8
/// terms) divided by the window size with round-to-nearest-even — the
/// window must be a power of two <= 256 so the divide is an arithmetic
/// shift plus remainder adjust, bit-exact with div_rne/golden_avgpool.
/// Global average pooling is the kernel_h == in_h, kernel_w == in_w case.
Netlist make_avgpool_component(const AvgPoolParams& params);

/// Nearest-neighbour upsampling engine: buffers the image, then drains
/// every input pixel `factor` times per row and every row `factor` times
/// (channel-major raster), matching golden_upsample_nn.
Netlist make_upsample_component(const std::string& name, int channels, int in_h, int in_w,
                                int factor, bool fuse_relu = false);

struct PoolParams {
  std::string name = "pool";
  int channels = 1;
  int kernel = 2;
  int in_h = 8;
  int in_w = 8;
  bool fuse_relu = false;  // paper's "Pool+ReLU" components

  int out_h() const { return in_h / kernel; }
  int out_w() const { return in_w / kernel; }
  long load_cycles() const { return static_cast<long>(channels) * in_h * in_w; }
  long compute_cycles() const {
    return static_cast<long>(channels) * out_h() * out_w() * kernel * kernel;
  }
  long drain_cycles() const { return static_cast<long>(channels) * out_h() * out_w(); }
};

/// Max-pooling engine: comparator + shift register + controller (Fig. 4c).
Netlist make_pool_component(const PoolParams& params);

/// Standalone streaming ReLU (registered, no memory controller; Sec. IV-B1).
Netlist make_relu_component(const std::string& name, int width = kDataW);

/// Single-source single-sink stream FIFO queue (Sec. IV-B1, Fig. 5).
Netlist make_stream_fifo(const std::string& name, int depth, int width = kDataW);

/// Input streamer: plays a fixed image (channel-major) out of ROM whenever
/// downstream is ready; models the top-level MMU source.
Netlist make_input_streamer(const std::string& name, const std::vector<Fixed16>& image);

/// Memory-management unit: double-buffered BRAM staging between off-chip
/// style bursts and the stream fabric (used by the VGG example).
Netlist make_mmu_component(const std::string& name, int buffer_words);

// -- branching-DFG components -----------------------------------------------

/// Canonical stream port name for multi-stream components. Index 0 keeps
/// the historical names ("in_data", "out_valid", ...); index k > 0 gets a
/// 1-based suffix on the direction ("in2_data", "out3_ready", ...).
/// `direction` is "in" or "out"; `field` is "data", "valid" or "ready".
std::string stream_port_name(const char* direction, int index, const char* field);

/// Element-wise saturating-add join of `n_inputs` identically-shaped
/// streams of `volume` words each (residual connections). Every input
/// stream loads concurrently into its own bank (so upstream branches of a
/// fork can never deadlock on arrival order), then the sums drain through
/// a saturating DSP chain — bit-exact with golden_add's Q8.8 fold.
Netlist make_add_component(const std::string& name, int volume, int n_inputs,
                           bool fuse_relu = false);

/// Channel-concatenation join: input k carries `volumes[k]` words; the
/// output drains the banks back to back in port order (channel-major
/// layout makes concat a pure reorder). Loads are concurrent as in
/// make_add_component.
Netlist make_concat_component(const std::string& name, const std::vector<int>& volumes,
                              bool fuse_relu = false);

/// 1-to-N stream fork: broadcasts the input stream to `branches` output
/// streams with a per-branch skid flag. A word is accepted only when every
/// branch is empty or popping that cycle, so slow branches backpressure
/// the source and no data is dropped or duplicated.
Netlist make_stream_fork(const std::string& name, int branches, int width = kDataW);

}  // namespace fpgasim
