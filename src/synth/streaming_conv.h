// Streaming convolution engine (paper Fig. 4a and Sec. III's second
// accelerator class): shift-register line buffers feed a K x K window of
// registers per input channel; a fully parallel MAC array computes every
// output channel each cycle. One input pixel in, one output pixel out
// (after warm-up) — the high-throughput architecture streaming
// accelerators tailor to the network, at a much higher DSP cost than the
// memory-based CLE of make_conv_component.
//
// Interface (differs from the CLE stream contract):
//   in_data_<c>[16] per input channel, in_valid[1]
//   out_data_<j>[16] per output channel, out_valid[1]
// Weights are hard-wired constants (the streaming engine is tailored to
// one network). Input must stream continuously within a frame (pixel-major
// x fastest, all channels in parallel); in_valid gates the whole pipeline.
#pragma once

#include "netlist/netlist.h"
#include "sim/fixed.h"

namespace fpgasim {

struct StreamingConvParams {
  std::string name = "sconv";
  int in_c = 1;
  int out_c = 1;
  int kernel = 3;
  int in_w = 8;        // line-buffer length; in_h only bounds the frame
  int dsp_stages = 1;  // MAC pipeline registers
  bool fuse_relu = false;

  long dsp_count() const {
    return static_cast<long>(out_c) * in_c * kernel * kernel;
  }
};

/// weights laid out [oc][ic][ky][kx]; bias per output channel (Q8.8).
Netlist make_streaming_conv_component(const StreamingConvParams& params,
                                      const std::vector<Fixed16>& weights,
                                      const std::vector<Fixed16>& bias);

}  // namespace fpgasim
