#include "synth/streaming_conv.h"

#include <cassert>
#include <stdexcept>

#include "synth/builder.h"
#include "synth/layers.h"

namespace fpgasim {

Netlist make_streaming_conv_component(const StreamingConvParams& p,
                                      const std::vector<Fixed16>& weights,
                                      const std::vector<Fixed16>& bias) {
  const int K = p.kernel, W = p.in_w;
  if (K < 1 || W < K) throw std::invalid_argument("streaming conv: kernel exceeds line width");
  assert(weights.size() == static_cast<std::size_t>(p.out_c) * p.in_c * K * K);
  assert(bias.size() == static_cast<std::size_t>(p.out_c));

  NetlistBuilder b(p.name);
  const NetId in_valid = b.in_port("in_valid", 1);
  std::vector<NetId> in_data(static_cast<std::size_t>(p.in_c));
  for (int c = 0; c < p.in_c; ++c) {
    in_data[static_cast<std::size_t>(c)] = b.in_port("in_data_" + std::to_string(c), kDataW);
  }

  // Window extraction (Fig. 4a): per channel, K-1 line buffers (SRL of
  // length W) stacked vertically, a K-deep register chain horizontally.
  // window[c][ky][kx] holds the input pixel (y - (K-1-ky), x - (K-1-kx))
  // when pixel (y, x) is on the input.
  std::vector<std::vector<std::vector<NetId>>> window(
      static_cast<std::size_t>(p.in_c),
      std::vector<std::vector<NetId>>(static_cast<std::size_t>(K),
                                      std::vector<NetId>(static_cast<std::size_t>(K))));
  for (int c = 0; c < p.in_c; ++c) {
    NetId row_tap = in_data[static_cast<std::size_t>(c)];
    for (int r = 0; r < K; ++r) {  // r rows ago
      // Horizontal shift registers: win[K-1] is the current column.
      std::vector<NetId>& row = window[static_cast<std::size_t>(c)]
                                      [static_cast<std::size_t>(K - 1 - r)];
      row[static_cast<std::size_t>(K - 1)] = row_tap;
      for (int i = K - 2; i >= 0; --i) {
        row[static_cast<std::size_t>(i)] =
            b.ff(row[static_cast<std::size_t>(i + 1)], in_valid, kDataW);
      }
      if (r + 1 < K) row_tap = b.srl(row_tap, in_valid, static_cast<std::uint16_t>(W), kDataW);
    }
  }

  // Window validity: the bottom-right corner has reached (K-1, K-1).
  const auto x_ctr = b.counter(static_cast<std::uint32_t>(W), in_valid, kAddrW, "x");
  // y is unbounded within a stream; a 24-bit saturating-ish counter is
  // plenty for any frame the tests drive (wraps at 2^24 pixels of rows).
  const auto y_ctr = b.counter(1u << 20, x_ctr.wrap, kAddrW, "y");
  const NetId x_ok = b.not1(b.ltu(x_ctr.value, b.constant(static_cast<std::uint64_t>(K - 1),
                                                          kAddrW)));
  const NetId y_ok = b.not1(b.ltu(y_ctr.value, b.constant(static_cast<std::uint64_t>(K - 1),
                                                          kAddrW)));
  const NetId window_valid = b.and2(in_valid, b.and2(x_ok, y_ok));

  // Fully parallel MAC array: out_c x in_c x K^2 DSPs with hard-wired
  // constant weights, adder tree, bias constant, optional fused ReLU.
  for (int j = 0; j < p.out_c; ++j) {
    std::vector<NetId> products;
    products.reserve(static_cast<std::size_t>(p.in_c) * K * K);
    for (int c = 0; c < p.in_c; ++c) {
      for (int ky = 0; ky < K; ++ky) {
        for (int kx = 0; kx < K; ++kx) {
          const Fixed16 w = weights[static_cast<std::size_t>(
              ((j * p.in_c + c) * K + ky) * K + kx)];
          const NetId w_net =
              b.constant(static_cast<std::uint16_t>(w.raw), kDataW);
          products.push_back(b.dsp(window[static_cast<std::size_t>(c)]
                                         [static_cast<std::size_t>(ky)]
                                         [static_cast<std::size_t>(kx)],
                                   w_net, kInvalidNet, kFixedFrac, p.dsp_stages, kDataW));
        }
      }
    }
    const NetId sum = b.adder_tree(std::move(products), kDataW);
    NetId result =
        b.add(sum, b.constant(static_cast<std::uint16_t>(bias[static_cast<std::size_t>(j)].raw),
                              kDataW),
              kDataW);
    if (p.fuse_relu) result = b.relu(result, kDataW);
    b.out_port("out_data_" + std::to_string(j), b.ff(result, kInvalidNet, kDataW));
  }
  // Align validity with the DSP pipeline plus the output register.
  b.out_port("out_valid", b.delay(window_valid, p.dsp_stages + 1, 1));
  return std::move(b).take();
}

}  // namespace fpgasim
