// Structural netlist construction helpers: the RTL-elaboration layer the
// layer generators are written against. Every method appends primitive
// macro-cells to the underlying netlist and returns the output net.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace fpgasim {

class NetlistBuilder {
 public:
  explicit NetlistBuilder(std::string name) : netlist_(std::move(name)) {}

  /// Finalizes the component: drops logic with no path to an output port
  /// (counters whose wrap is unused, degenerate-modulus residue, ...) so
  /// generated netlists come out lint-clean, then releases the netlist.
  Netlist take() && {
    netlist_.prune_dead();
    return std::move(netlist_);
  }
  Netlist& netlist() { return netlist_; }

  // -- ports ------------------------------------------------------------
  NetId in_port(const std::string& name, std::uint16_t width);
  void out_port(const std::string& name, NetId net);

  // -- combinational ------------------------------------------------------
  NetId constant(std::uint64_t value, std::uint16_t width);
  NetId zero(std::uint16_t width) { return constant(0, width); }
  NetId one() { return constant(1, 1); }

  NetId op2(LutOp op, NetId a, NetId b, std::uint16_t width, std::string name = {});
  NetId and2(NetId a, NetId b) { return op2(LutOp::kAnd, a, b, 1); }
  NetId or2(NetId a, NetId b) { return op2(LutOp::kOr, a, b, 1); }
  NetId xor2(NetId a, NetId b, std::uint16_t w = 1) { return op2(LutOp::kXor, a, b, w); }
  NetId not1(NetId a, std::uint16_t width = 1);
  NetId eq(NetId a, NetId b) { return op2(LutOp::kEq, a, b, 1); }
  NetId ltu(NetId a, NetId b) { return op2(LutOp::kLtU, a, b, 1); }
  NetId mux2(NetId a, NetId b, NetId sel, std::uint16_t width, std::string name = {});
  /// N-to-1 mux tree over equally wide inputs; sel is an index bus.
  NetId muxn(const std::vector<NetId>& inputs, NetId sel, std::uint16_t width);
  /// One-hot decode of sel into n single-bit enables.
  std::vector<NetId> decode(NetId sel, std::size_t n);
  /// Extracts bit `bit` of a bus as a 1-bit net (LUT pass + truth table).
  NetId bit(NetId bus, int bit_index);

  NetId add(NetId a, NetId b, std::uint16_t width, std::string name = {});
  NetId sub(NetId a, NetId b, std::uint16_t width);
  NetId smax(NetId a, NetId b, std::uint16_t width);
  NetId relu(NetId a, std::uint16_t width);
  /// Balanced adder tree; empty input returns constant 0.
  NetId adder_tree(std::vector<NetId> terms, std::uint16_t width);

  /// Multiply by a non-negative compile-time constant using the shift-add
  /// decomposition on the carry chain (no DSP); returns a + k*b staged as
  /// LUT/carry logic. Used for address arithmetic in control-dominated
  /// components like max-pool.
  NetId mul_const_add(NetId b_net, std::uint64_t k, NetId addend, std::uint16_t width);

  /// DSP48 multiply-add: out = clamp(clamp((a*b)>>shift) + c). stages>0
  /// inserts that many internal pipeline registers (sequential output).
  NetId dsp(NetId a, NetId b, NetId c, int shift, int stages, std::uint16_t width,
            std::string name = {});

  // -- sequential -----------------------------------------------------------
  NetId ff(NetId d, NetId ce, std::uint16_t width, std::string name = {});
  /// FF chain of length n (n == 0 returns d unchanged).
  NetId delay(NetId d, int n, std::uint16_t width);
  NetId srl(NetId d, NetId ce, std::uint16_t depth, std::uint16_t width);

  /// Synchronous-read memory. Pass kInvalidNet for wdata/we to build a ROM.
  /// When raddr is given the BRAM is dual-port: reads use raddr, writes
  /// use addr; otherwise both share addr.
  NetId bram(NetId addr, NetId wdata, NetId we, std::uint32_t depth, std::uint16_t width,
             std::int32_t rom_id = -1, std::string name = {}, NetId raddr = kInvalidNet);
  std::int32_t rom(std::vector<std::uint64_t> words) {
    return netlist_.add_rom(std::move(words));
  }

  /// Modulo counter: value in [0, modulus), incremented when enable is
  /// high; `wrap` pulses (combinationally) on the cycle the counter is at
  /// modulus-1 with enable high.
  struct Counter {
    NetId value = kInvalidNet;
    NetId wrap = kInvalidNet;
  };
  Counter counter(std::uint32_t modulus, NetId enable, std::uint16_t width,
                  std::string name = {});

  /// Accumulating register: value += step when enable; cleared to 0 when
  /// clear is high (clear wins).
  NetId accum(NetId step, NetId enable, NetId clear, std::uint16_t width,
              std::string name = {});

 private:
  NetId new_net(std::uint16_t width, std::string name = {}) {
    return netlist_.add_net(width, std::move(name));
  }

  Netlist netlist_;
};

/// Number of address bits needed for `depth` entries (>=1).
std::uint16_t addr_bits(std::uint32_t depth);

}  // namespace fpgasim
