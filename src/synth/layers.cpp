#include "synth/layers.h"

#include <cassert>
#include <stdexcept>

#include "synth/builder.h"

namespace fpgasim {
namespace {

// Component FSM states (Sec. IV-B3 execution schedule).
constexpr std::uint64_t kStLoad = 0;
constexpr std::uint64_t kStCompute = 1;
constexpr std::uint64_t kStDrain = 2;

/// Forward-declared state register: created first so the next-state logic
/// can reference the current state; wired up at the end.
struct StateReg {
  CellId reg = kInvalidCell;
  NetId value = kInvalidNet;
};

StateReg make_state_reg(NetlistBuilder& b) {
  Cell cell;
  cell.type = CellType::kFf;
  cell.width = 2;
  cell.name = "fsm_state";
  StateReg s;
  s.reg = b.netlist().add_cell(std::move(cell));
  s.value = b.netlist().add_net(2, "state");
  b.netlist().connect_output(s.reg, 0, s.value);
  return s;
}

void finish_state_reg(NetlistBuilder& b, const StateReg& s, NetId next) {
  b.netlist().connect_input(s.reg, 0, next);
  b.netlist().connect_input(s.reg, 1, b.one());
}

std::vector<std::uint64_t> to_rom_words(const std::vector<Fixed16>& values) {
  std::vector<std::uint64_t> words;
  words.reserve(values.size());
  for (Fixed16 v : values) {
    words.push_back(static_cast<std::uint64_t>(static_cast<std::uint16_t>(v.raw)));
  }
  return words;
}

}  // namespace

Netlist make_conv_component(const ConvParams& p, const std::vector<Fixed16>& weights,
                            const std::vector<Fixed16>& bias) {
  if (p.in_c % p.ic_par != 0 || p.out_c % p.oc_par != 0) {
    throw std::invalid_argument("conv: channel counts must divide parallelism");
  }
  if (p.materialize_roms) {
    assert(weights.size() ==
           static_cast<std::size_t>(p.out_c) * p.in_c * p.kernel * p.kernel);
    assert(bias.size() == static_cast<std::size_t>(p.out_c));
  }
  const int K = p.kernel, H = p.in_h, W = p.in_w, Ho = p.out_h(), Wo = p.out_w();
  const int icg_n = p.in_c / p.ic_par;
  const int ocg_n = p.out_c / p.oc_par;
  const int lat = 1 + p.dsp_stages;  // BRAM read + DSP pipeline

  NetlistBuilder b(p.name);
  const NetId in_data = b.in_port("in_data", kDataW);
  const NetId in_valid = b.in_port("in_valid", 1);
  const NetId out_ready = b.in_port("out_ready", 1);

  const StateReg st = make_state_reg(b);
  const NetId is_load = b.eq(st.value, b.constant(kStLoad, 2));
  const NetId is_compute = b.eq(st.value, b.constant(kStCompute, 2));
  const NetId is_drain = b.eq(st.value, b.constant(kStDrain, 2));

  // ---------------- source controller (LOAD) ----------------
  const NetId wr = b.and2(is_load, in_valid);
  const auto pix = b.counter(static_cast<std::uint32_t>(H) * W, wr, kAddrW, "ld_pix");
  const auto lane = b.counter(static_cast<std::uint32_t>(p.ic_par), pix.wrap, 8, "ld_lane");
  const auto grp = b.counter(static_cast<std::uint32_t>(icg_n), lane.wrap, 8, "ld_grp");
  const NetId load_addr =
      b.mul_const_add(grp.value, static_cast<std::uint64_t>(H) * W, pix.value, kAddrW);
  const std::vector<NetId> lane_sel = b.decode(lane.value, static_cast<std::size_t>(p.ic_par));
  const NetId load_done = grp.wrap;

  // ---------------- compute counters ----------------
  // The sweep freezes once the last term has issued (done_latch): the
  // MAC pipeline needs `lat` flush cycles before DRAIN, and the counters
  // must re-enter COMPUTE at zero for the next image.
  Cell done_cell;
  done_cell.type = CellType::kFf;
  done_cell.width = 1;
  done_cell.name = "done_latch";
  const CellId done_reg = b.netlist().add_cell(std::move(done_cell));
  const NetId done_latch = b.netlist().add_net(1);
  b.netlist().connect_output(done_reg, 0, done_latch);

  const NetId sweeping = b.and2(is_compute, b.not1(done_latch));
  const auto kx = b.counter(static_cast<std::uint32_t>(K), sweeping, 8, "kx");
  const auto ky = b.counter(static_cast<std::uint32_t>(K), kx.wrap, 8, "ky");
  const auto icg = b.counter(static_cast<std::uint32_t>(icg_n), ky.wrap, 8, "icg");
  const auto ox = b.counter(static_cast<std::uint32_t>(Wo), icg.wrap, kAddrW, "ox");
  const auto oy = b.counter(static_cast<std::uint32_t>(Ho), ox.wrap, kAddrW, "oy");
  const auto ocg = b.counter(static_cast<std::uint32_t>(ocg_n), oy.wrap, 8, "ocg");

  const NetId complete = icg.wrap;      // one output-pixel accumulation done
  const NetId compute_done = ocg.wrap;  // whole layer done
  b.netlist().connect_input(done_reg, 0,
                            b.and2(is_compute, b.or2(done_latch, compute_done)));
  b.netlist().connect_input(done_reg, 1, b.one());
  const NetId first_term = b.and2(b.and2(b.eq(kx.value, b.zero(8)), b.eq(ky.value, b.zero(8))),
                                  b.eq(icg.value, b.zero(8)));

  // Input addressing: the MMU "jogging around the input data". LUT/carry
  // shift-add arithmetic; its logic depth grows with the feature-map
  // dimensions, which is one of the things that makes bigger layers close
  // timing lower.
  const NetId iy =
      b.mul_const_add(oy.value, static_cast<std::uint64_t>(p.stride), ky.value, kAddrW);
  const NetId ix =
      b.mul_const_add(ox.value, static_cast<std::uint64_t>(p.stride), kx.value, kAddrW);
  const NetId row_addr = b.mul_const_add(iy, static_cast<std::uint64_t>(W), ix, kAddrW);
  const NetId in_addr =
      b.mul_const_add(icg.value, static_cast<std::uint64_t>(H) * W, row_addr, kAddrW);

  // Weight index; with a partial weight buffer the oc-group term is folded
  // away (the MMU refills the buffer per group in that configuration).
  const int wb_groups = (p.weight_buffer_ocg > 0 && p.weight_buffer_ocg < ocg_n)
                            ? p.weight_buffer_ocg
                            : ocg_n;
  NetId widx = kInvalidNet;
  if (wb_groups == ocg_n) {
    const NetId t1 = b.mul_const_add(ocg.value, static_cast<std::uint64_t>(icg_n), icg.value,
                                     kAddrW);
    const NetId t2 = b.mul_const_add(t1, static_cast<std::uint64_t>(K), ky.value, kAddrW);
    widx = b.mul_const_add(t2, static_cast<std::uint64_t>(K), kx.value, kAddrW);
  } else {
    const NetId t2 =
        b.mul_const_add(icg.value, static_cast<std::uint64_t>(K), ky.value, kAddrW);
    widx = b.mul_const_add(t2, static_cast<std::uint64_t>(K), kx.value, kAddrW);
  }
  const std::uint32_t weight_depth =
      static_cast<std::uint32_t>(wb_groups) * icg_n * K * K;

  // ---------------- input feature-map banks ----------------
  std::vector<NetId> x_lane(static_cast<std::size_t>(p.ic_par));
  for (int l = 0; l < p.ic_par; ++l) {
    const NetId we = b.and2(wr, lane_sel[static_cast<std::size_t>(l)]);
    x_lane[static_cast<std::size_t>(l)] =
        b.bram(load_addr, in_data, we, static_cast<std::uint32_t>(icg_n) * H * W, kDataW, -1,
               "ifm_bank" + std::to_string(l), in_addr);
  }

  // ---------------- compute units ----------------
  const NetId term_valid_dl = b.delay(is_compute, lat, 1);
  const NetId first_dl = b.delay(first_term, lat, 1);
  const NetId complete_dl = b.delay(b.and2(complete, is_compute), lat, 1);
  const NetId done_dl = b.delay(b.and2(compute_done, is_compute), lat, 1);
  const NetId bias_addr = b.delay(ocg.value, lat - 1, 8);

  // Sink-side output index, shared across CU columns.
  const auto out_idx = b.counter(static_cast<std::uint32_t>(ocg_n) * Ho * Wo, complete_dl,
                                 kAddrW, "out_idx");

  // Drain counters (declared before the banks so the read address exists).
  const NetId streaming = b.and2(is_drain, out_ready);
  const auto opix = b.counter(static_cast<std::uint32_t>(Ho) * Wo, streaming, kAddrW, "opix");
  const auto olane = b.counter(static_cast<std::uint32_t>(p.oc_par), opix.wrap, 8, "olane");
  const auto ogrp = b.counter(static_cast<std::uint32_t>(ocg_n), olane.wrap, 8, "ogrp");
  const NetId drain_raddr = b.mul_const_add(
      ogrp.value, static_cast<std::uint64_t>(Ho) * Wo, opix.value, kAddrW);

  std::vector<NetId> bank_out(static_cast<std::size_t>(p.oc_par));
  for (int j = 0; j < p.oc_par; ++j) {
    // One weight ROM / buffer and one DSP MAC per (CU column, PE lane).
    std::vector<NetId> products;
    products.reserve(static_cast<std::size_t>(p.ic_par));
    for (int l = 0; l < p.ic_par; ++l) {
      std::int32_t rom_id = -1;
      if (p.materialize_roms && wb_groups == ocg_n) {
        std::vector<std::uint64_t> words(weight_depth, 0);
        for (int og = 0; og < ocg_n; ++og) {
          for (int ig = 0; ig < icg_n; ++ig) {
            for (int kyy = 0; kyy < K; ++kyy) {
              for (int kxx = 0; kxx < K; ++kxx) {
                const int oc = og * p.oc_par + j;
                const int ic = ig * p.ic_par + l;
                const std::size_t src =
                    static_cast<std::size_t>(((oc * p.in_c + ic) * K + kyy) * K + kxx);
                const std::size_t dst =
                    static_cast<std::size_t>(((og * icg_n + ig) * K + kyy) * K + kxx);
                words[dst] = static_cast<std::uint16_t>(weights[src].raw);
              }
            }
          }
        }
        rom_id = b.rom(std::move(words));
      }
      const NetId w_net =
          b.bram(widx, kInvalidNet, kInvalidNet, weight_depth, kDataW, rom_id,
                 "wrom_" + std::to_string(j) + "_" + std::to_string(l));
      products.push_back(b.dsp(w_net, x_lane[static_cast<std::size_t>(l)], kInvalidNet,
                               kFixedFrac, p.dsp_stages, kDataW,
                               "mac_" + std::to_string(j) + "_" + std::to_string(l)));
    }
    const NetId partial = b.adder_tree(products, kDataW);

    // Accumulator: acc <- (first ? 0 : acc) + partial.
    Cell acc_cell;
    acc_cell.type = CellType::kFf;
    acc_cell.width = kDataW;
    acc_cell.name = "acc" + std::to_string(j);
    const CellId acc_reg = b.netlist().add_cell(std::move(acc_cell));
    const NetId acc = b.netlist().add_net(kDataW);
    b.netlist().connect_output(acc_reg, 0, acc);
    const NetId acc_base = b.mux2(acc, b.zero(kDataW), first_dl, kDataW);
    const NetId acc_next = b.add(acc_base, partial, kDataW);
    b.netlist().connect_input(acc_reg, 0, acc_next);
    b.netlist().connect_input(acc_reg, 1, term_valid_dl);

    // Bias ROM per CU column.
    std::int32_t bias_rom = -1;
    if (p.materialize_roms) {
      std::vector<std::uint64_t> words(static_cast<std::size_t>(ocg_n), 0);
      for (int og = 0; og < ocg_n; ++og) {
        words[static_cast<std::size_t>(og)] =
            static_cast<std::uint16_t>(bias[static_cast<std::size_t>(og * p.oc_par + j)].raw);
      }
      bias_rom = b.rom(std::move(words));
    }
    const NetId bias_net = b.bram(bias_addr, kInvalidNet, kInvalidNet,
                                  static_cast<std::uint32_t>(ocg_n), kDataW, bias_rom,
                                  "brom" + std::to_string(j));
    NetId result = b.add(acc_next, bias_net, kDataW);
    if (p.fuse_relu) result = b.relu(result, kDataW);

    // Sink: banked output feature-map memory.
    bank_out[static_cast<std::size_t>(j)] =
        b.bram(out_idx.value, result, complete_dl, static_cast<std::uint32_t>(ocg_n) * Ho * Wo,
               kDataW, -1, "ofm_bank" + std::to_string(j), drain_raddr);
  }

  // Output register at the stream boundary: breaks the BRAM->mux->wire
  // path before it leaves the component (interface timing, Sec. IV-A2).
  const NetId out_data =
      b.ff(b.muxn(bank_out, b.delay(olane.value, 1, 8), kDataW), kInvalidNet, kDataW, "ob_reg");
  const NetId out_valid = b.delay(streaming, 2, 1);
  const NetId drain_done = ogrp.wrap;

  // ---------------- FSM ----------------
  NetId next_state = st.value;
  next_state = b.mux2(next_state, b.constant(kStCompute, 2), b.and2(is_load, load_done), 2);
  next_state = b.mux2(next_state, b.constant(kStDrain, 2), done_dl, 2);
  next_state = b.mux2(next_state, b.constant(kStLoad, 2), b.and2(is_drain, drain_done), 2);
  finish_state_reg(b, st, next_state);

  b.out_port("in_ready", is_load);
  b.out_port("out_data", out_data);
  b.out_port("out_valid", out_valid);
  return std::move(b).take();
}

Netlist make_fc_component(const std::string& name, int inputs, int outputs,
                          const std::vector<Fixed16>& weights,
                          const std::vector<Fixed16>& bias, int in_par, int out_par,
                          bool materialize_roms, int weight_buffer_ocg, bool fuse_relu) {
  // FC == convolution whose kernel covers the whole (1x1) input of
  // `inputs` channels.
  ConvParams p;
  p.name = name;
  p.in_c = inputs;
  p.out_c = outputs;
  p.kernel = 1;
  p.in_h = 1;
  p.in_w = 1;
  p.ic_par = in_par;
  p.oc_par = out_par;
  p.fuse_relu = fuse_relu;
  p.materialize_roms = materialize_roms;
  p.weight_buffer_ocg = weight_buffer_ocg;
  return make_conv_component(p, weights, bias);
}

Netlist make_dwconv_component(const DwConvParams& p, const std::vector<Fixed16>& weights,
                              const std::vector<Fixed16>& bias) {
  const int K = p.kernel, H = p.in_h, W = p.in_w, Ho = p.out_h(), Wo = p.out_w();
  const int C = p.channels;
  const int lat = 1 + p.dsp_stages;  // BRAM read + DSP pipeline
  assert(weights.size() == static_cast<std::size_t>(C) * K * K);
  assert(bias.size() == static_cast<std::size_t>(C));

  NetlistBuilder b(p.name);
  const NetId in_data = b.in_port("in_data", kDataW);
  const NetId in_valid = b.in_port("in_valid", 1);
  const NetId out_ready = b.in_port("out_ready", 1);

  const StateReg st = make_state_reg(b);
  const NetId is_load = b.eq(st.value, b.constant(kStLoad, 2));
  const NetId is_compute = b.eq(st.value, b.constant(kStCompute, 2));
  const NetId is_drain = b.eq(st.value, b.constant(kStDrain, 2));

  // Source controller (single bank: channels are processed sequentially).
  const NetId wr = b.and2(is_load, in_valid);
  const auto pix = b.counter(static_cast<std::uint32_t>(H) * W, wr, kAddrW, "ld_pix");
  const auto ch = b.counter(static_cast<std::uint32_t>(C), pix.wrap, kAddrW, "ld_ch");
  const NetId load_addr =
      b.mul_const_add(ch.value, static_cast<std::uint64_t>(H) * W, pix.value, kAddrW);
  const NetId load_done = ch.wrap;

  // Window sweep, pool-style counters but with a stride-decoupled window;
  // the sweep freezes after the last term so the MAC pipeline can flush.
  Cell done_cell;
  done_cell.type = CellType::kFf;
  done_cell.width = 1;
  done_cell.name = "done_latch";
  const CellId done_reg = b.netlist().add_cell(std::move(done_cell));
  const NetId done_latch = b.netlist().add_net(1);
  b.netlist().connect_output(done_reg, 0, done_latch);
  const NetId sweeping = b.and2(is_compute, b.not1(done_latch));

  const auto kx = b.counter(static_cast<std::uint32_t>(K), sweeping, 8, "kx");
  const auto ky = b.counter(static_cast<std::uint32_t>(K), kx.wrap, 8, "ky");
  const auto ox = b.counter(static_cast<std::uint32_t>(Wo), ky.wrap, kAddrW, "ox");
  const auto oy = b.counter(static_cast<std::uint32_t>(Ho), ox.wrap, kAddrW, "oy");
  const auto c2 = b.counter(static_cast<std::uint32_t>(C), oy.wrap, kAddrW, "c2");
  const NetId complete = ky.wrap;      // one output-pixel accumulation done
  const NetId compute_done = c2.wrap;  // whole layer done
  b.netlist().connect_input(done_reg, 0,
                            b.and2(is_compute, b.or2(done_latch, compute_done)));
  b.netlist().connect_input(done_reg, 1, b.one());
  const NetId first = b.and2(b.eq(kx.value, b.zero(8)), b.eq(ky.value, b.zero(8)));

  const NetId iy =
      b.mul_const_add(oy.value, static_cast<std::uint64_t>(p.stride), ky.value, kAddrW);
  const NetId ix =
      b.mul_const_add(ox.value, static_cast<std::uint64_t>(p.stride), kx.value, kAddrW);
  const NetId row = b.mul_const_add(iy, static_cast<std::uint64_t>(W), ix, kAddrW);
  const NetId rd_addr =
      b.mul_const_add(c2.value, static_cast<std::uint64_t>(H) * W, row, kAddrW);
  const NetId ifm = b.bram(load_addr, in_data, wr, static_cast<std::uint32_t>(C) * H * W,
                           kDataW, -1, "ifm", rd_addr);

  // One weight ROM and one DSP MAC, shared by every channel.
  const NetId t1 = b.mul_const_add(c2.value, static_cast<std::uint64_t>(K), ky.value, kAddrW);
  const NetId widx = b.mul_const_add(t1, static_cast<std::uint64_t>(K), kx.value, kAddrW);
  const NetId w_net = b.bram(widx, kInvalidNet, kInvalidNet,
                             static_cast<std::uint32_t>(C) * K * K, kDataW,
                             b.rom(to_rom_words(weights)), "wrom");
  const NetId product =
      b.dsp(w_net, ifm, kInvalidNet, kFixedFrac, p.dsp_stages, kDataW, "mac");

  const NetId term_valid_dl = b.delay(is_compute, lat, 1);
  const NetId first_dl = b.delay(first, lat, 1);
  const NetId complete_dl = b.delay(b.and2(complete, is_compute), lat, 1);
  const NetId done_dl = b.delay(b.and2(compute_done, is_compute), lat, 1);
  const NetId bias_addr = b.delay(c2.value, lat - 1, kAddrW);

  // Accumulator: acc <- (first ? 0 : acc) + product (the conv-engine idiom).
  Cell acc_cell;
  acc_cell.type = CellType::kFf;
  acc_cell.width = kDataW;
  acc_cell.name = "acc";
  const CellId acc_reg = b.netlist().add_cell(std::move(acc_cell));
  const NetId acc = b.netlist().add_net(kDataW);
  b.netlist().connect_output(acc_reg, 0, acc);
  const NetId acc_base = b.mux2(acc, b.zero(kDataW), first_dl, kDataW);
  const NetId acc_next = b.add(acc_base, product, kDataW);
  b.netlist().connect_input(acc_reg, 0, acc_next);
  b.netlist().connect_input(acc_reg, 1, term_valid_dl);

  const NetId bias_net = b.bram(bias_addr, kInvalidNet, kInvalidNet,
                                static_cast<std::uint32_t>(C), kDataW,
                                b.rom(to_rom_words(bias)), "brom");
  NetId result = b.add(acc_next, bias_net, kDataW);
  if (p.fuse_relu) result = b.relu(result, kDataW);

  // Sink controller (single bank, pool-style drain).
  const auto out_idx =
      b.counter(static_cast<std::uint32_t>(C) * Ho * Wo, complete_dl, kAddrW, "out_idx");
  const NetId streaming = b.and2(is_drain, out_ready);
  const auto opix =
      b.counter(static_cast<std::uint32_t>(C) * Ho * Wo, streaming, kAddrW, "opix");
  const NetId ofm = b.bram(out_idx.value, result, complete_dl,
                           static_cast<std::uint32_t>(C) * Ho * Wo, kDataW, -1, "ofm",
                           opix.value);
  const NetId out_data = b.ff(ofm, kInvalidNet, kDataW, "ob_reg");
  const NetId out_valid = b.delay(streaming, 2, 1);
  const NetId drain_done = opix.wrap;

  NetId next_state = st.value;
  next_state = b.mux2(next_state, b.constant(kStCompute, 2), b.and2(is_load, load_done), 2);
  next_state = b.mux2(next_state, b.constant(kStDrain, 2), done_dl, 2);
  next_state = b.mux2(next_state, b.constant(kStLoad, 2), b.and2(is_drain, drain_done), 2);
  finish_state_reg(b, st, next_state);

  b.out_port("in_ready", is_load);
  b.out_port("out_data", out_data);
  b.out_port("out_valid", out_valid);
  return std::move(b).take();
}

Netlist make_avgpool_component(const AvgPoolParams& p) {
  const int Kh = p.kernel_h, Kw = p.kernel_w, H = p.in_h, W = p.in_w;
  const int Ho = p.out_h(), Wo = p.out_w();
  const int C = p.channels;
  const int count = Kh * Kw;
  if (Kh <= 0 || Kw <= 0 || H % Kh != 0 || W % Kw != 0) {
    throw std::invalid_argument("avgpool: window must tile the input");
  }
  if ((count & (count - 1)) != 0 || count > 256) {
    throw std::invalid_argument(
        "avgpool: window size must be a power of two <= 256 (shift divider)");
  }
  int shift = 0;
  while ((1 << shift) < count) ++shift;
  // Accumulator width: 256 terms of |raw| <= 2^15 peak at 2^23, the int24
  // boundary, so the window sum is exact (no wrap, no clamp).
  constexpr std::uint16_t kAccW = 24;

  NetlistBuilder b(p.name);
  const NetId in_data = b.in_port("in_data", kDataW);
  const NetId in_valid = b.in_port("in_valid", 1);
  const NetId out_ready = b.in_port("out_ready", 1);

  const StateReg st = make_state_reg(b);
  const NetId is_load = b.eq(st.value, b.constant(kStLoad, 2));
  const NetId is_compute = b.eq(st.value, b.constant(kStCompute, 2));
  const NetId is_drain = b.eq(st.value, b.constant(kStDrain, 2));

  // Source controller (the max-pool engine's, verbatim).
  const NetId wr = b.and2(is_load, in_valid);
  const auto pix = b.counter(static_cast<std::uint32_t>(H) * W, wr, kAddrW, "ld_pix");
  const auto ch = b.counter(static_cast<std::uint32_t>(C), pix.wrap, kAddrW, "ld_ch");
  const NetId load_addr =
      b.mul_const_add(ch.value, static_cast<std::uint64_t>(H) * W, pix.value, kAddrW);
  const NetId load_done = ch.wrap;

  Cell done_cell;
  done_cell.type = CellType::kFf;
  done_cell.width = 1;
  done_cell.name = "done_latch";
  const CellId done_reg = b.netlist().add_cell(std::move(done_cell));
  const NetId done_latch = b.netlist().add_net(1);
  b.netlist().connect_output(done_reg, 0, done_latch);
  const NetId sweeping = b.and2(is_compute, b.not1(done_latch));

  const auto kx = b.counter(static_cast<std::uint32_t>(Kw), sweeping, 8, "kx");
  const auto ky = b.counter(static_cast<std::uint32_t>(Kh), kx.wrap, 8, "ky");
  const auto ox = b.counter(static_cast<std::uint32_t>(Wo), ky.wrap, kAddrW, "ox");
  const auto oy = b.counter(static_cast<std::uint32_t>(Ho), ox.wrap, kAddrW, "oy");
  const auto c2 = b.counter(static_cast<std::uint32_t>(C), oy.wrap, kAddrW, "c2");
  const NetId complete = ky.wrap;
  const NetId compute_done = c2.wrap;
  b.netlist().connect_input(done_reg, 0,
                            b.and2(is_compute, b.or2(done_latch, compute_done)));
  b.netlist().connect_input(done_reg, 1, b.one());
  const NetId first = b.and2(b.eq(kx.value, b.zero(8)), b.eq(ky.value, b.zero(8)));

  const NetId iy = b.mul_const_add(oy.value, static_cast<std::uint64_t>(Kh), ky.value, kAddrW);
  const NetId ix = b.mul_const_add(ox.value, static_cast<std::uint64_t>(Kw), kx.value, kAddrW);
  const NetId row = b.mul_const_add(iy, static_cast<std::uint64_t>(W), ix, kAddrW);
  const NetId rd_addr =
      b.mul_const_add(c2.value, static_cast<std::uint64_t>(H) * W, row, kAddrW);
  const NetId ifm = b.bram(load_addr, in_data, wr, static_cast<std::uint32_t>(C) * H * W,
                           kDataW, -1, "ifm", rd_addr);

  // Window accumulator. Reading a 16-bit net into a 24-bit cell zero-pads,
  // so negative Q8.8 samples need an explicit sign-extension gadget before
  // they enter the adder.
  const NetId first_d1 = b.delay(first, 1, 1);
  const NetId complete_d1 = b.delay(b.and2(complete, is_compute), 1, 1);
  const NetId done_d1 = b.delay(b.and2(compute_done, is_compute), 1, 1);
  const NetId en_d1 = b.delay(is_compute, 1, 1);

  const NetId zext = b.op2(LutOp::kPass, ifm, ifm, kAccW);
  const NetId hi_mask = b.constant(0xFF0000, kAccW);
  const NetId ext = b.mux2(zext, b.op2(LutOp::kOr, zext, hi_mask, kAccW),
                           b.bit(ifm, kDataW - 1), kAccW, "sext");

  Cell acc_cell;
  acc_cell.type = CellType::kFf;
  acc_cell.width = kAccW;
  acc_cell.name = "acc";
  const CellId acc_reg = b.netlist().add_cell(std::move(acc_cell));
  const NetId acc = b.netlist().add_net(kAccW);
  b.netlist().connect_output(acc_reg, 0, acc);
  const NetId acc_base = b.mux2(acc, b.zero(kAccW), first_d1, kAccW);
  const NetId acc_next = b.add(acc_base, ext, kAccW);
  b.netlist().connect_input(acc_reg, 0, acc_next);
  b.netlist().connect_input(acc_reg, 1, en_d1);

  // Divide by the window size: floor via an arithmetic-shift DSP (b == 1,
  // shift == log2(count)), then adjust the floor quotient to
  // round-to-nearest-even on the masked-off remainder — bit-exact with
  // div_rne for power-of-two denominators.
  NetId quotient = acc_next;
  if (shift > 0) {
    const NetId q0 =
        b.dsp(acc_next, b.constant(1, kAccW), kInvalidNet, shift, 0, kAccW, "avg_shift");
    const NetId rem = b.op2(LutOp::kAnd, acc_next,
                            b.constant((1ULL << shift) - 1, kAccW), kAccW);
    const NetId half = b.constant(1ULL << (shift - 1), kAccW);
    const NetId above = b.ltu(half, rem);
    const NetId tie = b.and2(b.eq(rem, half), b.bit(q0, 0));
    const NetId bump = b.mux2(b.zero(kAccW), b.constant(1, kAccW),
                              b.or2(above, tie), kAccW);
    quotient = b.add(q0, bump, kAccW);
  }
  // The mean of Q8.8 samples is in Q8.8 range, so the low 16 bits are the
  // exact result.
  NetId result = b.op2(LutOp::kPass, quotient, quotient, kDataW);
  if (p.fuse_relu) result = b.relu(result, kDataW);

  // Sink controller (the max-pool engine's, verbatim).
  const auto out_idx =
      b.counter(static_cast<std::uint32_t>(C) * Ho * Wo, complete_d1, kAddrW, "out_idx");
  const NetId streaming = b.and2(is_drain, out_ready);
  const auto opix =
      b.counter(static_cast<std::uint32_t>(C) * Ho * Wo, streaming, kAddrW, "opix");
  const NetId ofm = b.bram(out_idx.value, result, complete_d1,
                           static_cast<std::uint32_t>(C) * Ho * Wo, kDataW, -1, "ofm",
                           opix.value);
  const NetId out_data = b.ff(ofm, kInvalidNet, kDataW, "ob_reg");
  const NetId out_valid = b.delay(streaming, 2, 1);
  const NetId drain_done = opix.wrap;

  NetId next_state = st.value;
  next_state = b.mux2(next_state, b.constant(kStCompute, 2), b.and2(is_load, load_done), 2);
  next_state = b.mux2(next_state, b.constant(kStDrain, 2), done_d1, 2);
  next_state = b.mux2(next_state, b.constant(kStLoad, 2), b.and2(is_drain, drain_done), 2);
  finish_state_reg(b, st, next_state);

  b.out_port("in_ready", is_load);
  b.out_port("out_data", out_data);
  b.out_port("out_valid", out_valid);
  return std::move(b).take();
}

Netlist make_upsample_component(const std::string& name, int channels, int in_h, int in_w,
                                int factor, bool fuse_relu) {
  if (factor <= 0) throw std::invalid_argument("upsample: factor must be positive");
  const int C = channels, H = in_h, W = in_w, F = factor;

  NetlistBuilder b(name);
  const NetId in_data = b.in_port("in_data", kDataW);
  const NetId in_valid = b.in_port("in_valid", 1);
  const NetId out_ready = b.in_port("out_ready", 1);

  // LOAD -> DRAIN store-and-forward (the MMU template): the drain replays
  // each pixel F times per output row and each source row F times.
  const StateReg st = make_state_reg(b);
  const NetId is_load = b.eq(st.value, b.constant(kStLoad, 2));
  const NetId is_drain = b.eq(st.value, b.constant(kStDrain, 2));

  const NetId wr = b.and2(is_load, in_valid);
  const auto wpix =
      b.counter(static_cast<std::uint32_t>(C) * H * W, wr, kAddrW, "wpix");
  const NetId load_done = wpix.wrap;

  // Output raster (c, y, x) with y = yb*F + ys, x = xb*F + xs: the x
  // replica is the fastest digit, then the source column, the y replica,
  // the source row, and the channel.
  const NetId streaming = b.and2(is_drain, out_ready);
  const auto xs = b.counter(static_cast<std::uint32_t>(F), streaming, 8, "xs");
  const auto xb = b.counter(static_cast<std::uint32_t>(W), xs.wrap, kAddrW, "xb");
  const auto ys = b.counter(static_cast<std::uint32_t>(F), xb.wrap, 8, "ys");
  const auto yb = b.counter(static_cast<std::uint32_t>(H), ys.wrap, kAddrW, "yb");
  const auto c2 = b.counter(static_cast<std::uint32_t>(C), yb.wrap, kAddrW, "c2");
  const NetId row = b.mul_const_add(yb.value, static_cast<std::uint64_t>(W), xb.value, kAddrW);
  const NetId raddr =
      b.mul_const_add(c2.value, static_cast<std::uint64_t>(H) * W, row, kAddrW);

  const NetId buf = b.bram(wpix.value, in_data, wr, static_cast<std::uint32_t>(C) * H * W,
                           kDataW, -1, "buf", raddr);
  NetId result = buf;
  if (fuse_relu) result = b.relu(result, kDataW);
  const NetId out_data = b.ff(result, kInvalidNet, kDataW, "ob_reg");
  const NetId drain_done = c2.wrap;

  NetId next_state = st.value;
  next_state = b.mux2(next_state, b.constant(kStDrain, 2), b.and2(is_load, load_done), 2);
  next_state = b.mux2(next_state, b.constant(kStLoad, 2), b.and2(is_drain, drain_done), 2);
  finish_state_reg(b, st, next_state);

  b.out_port("in_ready", is_load);
  b.out_port("out_data", out_data);
  b.out_port("out_valid", b.delay(streaming, 2, 1));
  return std::move(b).take();
}

Netlist make_pool_component(const PoolParams& p) {
  const int K = p.kernel, H = p.in_h, W = p.in_w, Ho = p.out_h(), Wo = p.out_w();
  const int C = p.channels;

  NetlistBuilder b(p.name);
  const NetId in_data = b.in_port("in_data", kDataW);
  const NetId in_valid = b.in_port("in_valid", 1);
  const NetId out_ready = b.in_port("out_ready", 1);

  const StateReg st = make_state_reg(b);
  const NetId is_load = b.eq(st.value, b.constant(kStLoad, 2));
  const NetId is_compute = b.eq(st.value, b.constant(kStCompute, 2));
  const NetId is_drain = b.eq(st.value, b.constant(kStDrain, 2));

  // Source controller.
  const NetId wr = b.and2(is_load, in_valid);
  const auto pix = b.counter(static_cast<std::uint32_t>(H) * W, wr, kAddrW, "ld_pix");
  const auto ch = b.counter(static_cast<std::uint32_t>(C), pix.wrap, kAddrW, "ld_ch");
  const NetId load_addr =
      b.mul_const_add(ch.value, static_cast<std::uint64_t>(H) * W, pix.value, kAddrW);
  const NetId load_done = ch.wrap;

  // Controller sweep: kx, ky within the window; ox, oy, c over outputs.
  // As in the conv engine, the sweep freezes after the last window so the
  // counters re-enter COMPUTE at zero (the BRAM pipeline flushes 1 cycle).
  Cell done_cell;
  done_cell.type = CellType::kFf;
  done_cell.width = 1;
  done_cell.name = "done_latch";
  const CellId done_reg = b.netlist().add_cell(std::move(done_cell));
  const NetId done_latch = b.netlist().add_net(1);
  b.netlist().connect_output(done_reg, 0, done_latch);
  const NetId sweeping = b.and2(is_compute, b.not1(done_latch));

  const auto kx = b.counter(static_cast<std::uint32_t>(K), sweeping, 8, "kx");
  const auto ky = b.counter(static_cast<std::uint32_t>(K), kx.wrap, 8, "ky");
  const auto ox = b.counter(static_cast<std::uint32_t>(Wo), ky.wrap, kAddrW, "ox");
  const auto oy = b.counter(static_cast<std::uint32_t>(Ho), ox.wrap, kAddrW, "oy");
  const auto c2 = b.counter(static_cast<std::uint32_t>(C), oy.wrap, kAddrW, "c2");
  const NetId complete = ky.wrap;
  const NetId compute_done = c2.wrap;
  b.netlist().connect_input(done_reg, 0,
                            b.and2(is_compute, b.or2(done_latch, compute_done)));
  b.netlist().connect_input(done_reg, 1, b.one());
  const NetId first = b.and2(b.eq(kx.value, b.zero(8)), b.eq(ky.value, b.zero(8)));

  const NetId iy = b.mul_const_add(oy.value, static_cast<std::uint64_t>(K), ky.value, kAddrW);
  const NetId ix = b.mul_const_add(ox.value, static_cast<std::uint64_t>(K), kx.value, kAddrW);
  const NetId row = b.mul_const_add(iy, static_cast<std::uint64_t>(W), ix, kAddrW);
  const NetId rd_addr =
      b.mul_const_add(c2.value, static_cast<std::uint64_t>(H) * W, row, kAddrW);

  const NetId ifm = b.bram(load_addr, in_data, wr, static_cast<std::uint32_t>(C) * H * W,
                           kDataW, -1, "ifm", rd_addr);

  // Comparator + shift register (Fig. 4c): running max over the window.
  const NetId first_d1 = b.delay(first, 1, 1);
  const NetId complete_d1 = b.delay(b.and2(complete, is_compute), 1, 1);
  const NetId done_d1 = b.delay(b.and2(compute_done, is_compute), 1, 1);
  const NetId en_d1 = b.delay(is_compute, 1, 1);

  Cell max_cell;
  max_cell.type = CellType::kFf;
  max_cell.width = kDataW;
  max_cell.name = "maxreg";
  const CellId max_reg = b.netlist().add_cell(std::move(max_cell));
  const NetId max_val = b.netlist().add_net(kDataW);
  b.netlist().connect_output(max_reg, 0, max_val);
  const NetId max_next = b.mux2(b.smax(max_val, ifm, kDataW), ifm, first_d1, kDataW);
  b.netlist().connect_input(max_reg, 0, max_next);
  b.netlist().connect_input(max_reg, 1, en_d1);

  NetId result = max_next;
  if (p.fuse_relu) result = b.relu(result, kDataW);

  // Sink controller.
  const auto out_idx =
      b.counter(static_cast<std::uint32_t>(C) * Ho * Wo, complete_d1, kAddrW, "out_idx");
  const NetId streaming = b.and2(is_drain, out_ready);
  const auto opix =
      b.counter(static_cast<std::uint32_t>(C) * Ho * Wo, streaming, kAddrW, "opix");
  const NetId ofm = b.bram(out_idx.value, result, complete_d1,
                           static_cast<std::uint32_t>(C) * Ho * Wo, kDataW, -1, "ofm",
                           opix.value);
  const NetId out_data = b.ff(ofm, kInvalidNet, kDataW, "ob_reg");
  const NetId out_valid = b.delay(streaming, 2, 1);
  const NetId drain_done = opix.wrap;

  NetId next_state = st.value;
  next_state = b.mux2(next_state, b.constant(kStCompute, 2), b.and2(is_load, load_done), 2);
  next_state = b.mux2(next_state, b.constant(kStDrain, 2), done_d1, 2);
  next_state = b.mux2(next_state, b.constant(kStLoad, 2), b.and2(is_drain, drain_done), 2);
  finish_state_reg(b, st, next_state);

  b.out_port("in_ready", is_load);
  b.out_port("out_data", out_data);
  b.out_port("out_valid", out_valid);
  return std::move(b).take();
}

Netlist make_relu_component(const std::string& name, int width) {
  NetlistBuilder b(name);
  const NetId in_data = b.in_port("in_data", static_cast<std::uint16_t>(width));
  const NetId in_valid = b.in_port("in_valid", 1);
  const NetId out_ready = b.in_port("out_ready", 1);
  const NetId rectified = b.relu(in_data, static_cast<std::uint16_t>(width));
  b.out_port("out_data", b.ff(rectified, in_valid, static_cast<std::uint16_t>(width)));
  b.out_port("out_valid", b.delay(in_valid, 1, 1));
  b.out_port("in_ready", out_ready);
  return std::move(b).take();
}

Netlist make_stream_fifo(const std::string& name, int depth, int width) {
  NetlistBuilder b(name);
  const std::uint16_t w = static_cast<std::uint16_t>(width);
  const NetId in_data = b.in_port("in_data", w);
  const NetId in_valid = b.in_port("in_valid", 1);
  const NetId out_ready = b.in_port("out_ready", 1);

  // Register-file FIFO with combinational read (single-source single-sink
  // unbounded-in-spirit queue from Sec. IV-B1; depth bounds it physically).
  Cell cnt_cell;
  cnt_cell.type = CellType::kFf;
  cnt_cell.width = 8;
  cnt_cell.name = "count";
  const CellId cnt_reg = b.netlist().add_cell(std::move(cnt_cell));
  const NetId count = b.netlist().add_net(8);
  b.netlist().connect_output(cnt_reg, 0, count);

  const NetId empty = b.eq(count, b.zero(8));
  const NetId full = b.eq(count, b.constant(static_cast<std::uint64_t>(depth), 8));
  const NetId in_ready = b.not1(full);
  const NetId out_valid = b.not1(empty);
  const NetId push = b.and2(in_valid, in_ready);
  const NetId pop = b.and2(out_ready, out_valid);

  const NetId inc = b.mux2(b.zero(8), b.constant(1, 8), push, 8);
  const NetId dec = b.mux2(b.zero(8), b.constant(1, 8), pop, 8);
  const NetId next_count = b.sub(b.add(count, inc, 8), dec, 8);
  b.netlist().connect_input(cnt_reg, 0, next_count);
  b.netlist().connect_input(cnt_reg, 1, b.one());

  const auto wptr = b.counter(static_cast<std::uint32_t>(depth), push, 8, "wptr");
  const auto rptr = b.counter(static_cast<std::uint32_t>(depth), pop, 8, "rptr");
  const std::vector<NetId> slot_en = b.decode(wptr.value, static_cast<std::size_t>(depth));
  std::vector<NetId> slots;
  slots.reserve(static_cast<std::size_t>(depth));
  for (int i = 0; i < depth; ++i) {
    slots.push_back(b.ff(in_data, b.and2(push, slot_en[static_cast<std::size_t>(i)]), w));
  }
  b.out_port("out_data", b.muxn(slots, rptr.value, w));
  b.out_port("out_valid", out_valid);
  b.out_port("in_ready", in_ready);
  return std::move(b).take();
}

Netlist make_input_streamer(const std::string& name, const std::vector<Fixed16>& image) {
  NetlistBuilder b(name);
  const NetId out_ready = b.in_port("out_ready", 1);
  const std::uint32_t n = static_cast<std::uint32_t>(image.size());

  // Valid goes (and stays) high one cycle in; the ROM is addressed with the
  // *next* index on transfer so out_data is always the word at the current
  // index (first-word-fall-through prefetch).
  const NetId vld = b.ff(b.one(), b.one(), 1, "vld");
  const NetId transfer = b.and2(out_ready, vld);

  Cell idx_cell;
  idx_cell.type = CellType::kFf;
  idx_cell.width = kAddrW;
  idx_cell.name = "idx";
  const CellId idx_reg = b.netlist().add_cell(std::move(idx_cell));
  const NetId idx = b.netlist().add_net(kAddrW);
  b.netlist().connect_output(idx_reg, 0, idx);
  const NetId at_top = b.eq(idx, b.constant(n - 1, kAddrW));
  const NetId idx_next = b.mux2(b.add(idx, b.constant(1, kAddrW), kAddrW), b.zero(kAddrW),
                                at_top, kAddrW);
  b.netlist().connect_input(idx_reg, 0, idx_next);
  b.netlist().connect_input(idx_reg, 1, transfer);

  const NetId addr = b.mux2(idx, idx_next, transfer, kAddrW);
  const std::int32_t rom_id = b.rom(to_rom_words(image));
  const NetId data = b.bram(addr, kInvalidNet, kInvalidNet, n, kDataW, rom_id, "img_rom");
  b.out_port("out_data", data);
  b.out_port("out_valid", vld);
  return std::move(b).take();
}

std::string stream_port_name(const char* direction, int index, const char* field) {
  std::string port = direction;
  if (index > 0) port += std::to_string(index + 1);
  port += "_";
  port += field;
  return port;
}

namespace {

/// Per-input source controller of a join component: accepts stream `k`
/// while LOADing until `volume` words arrived, holding a done latch (the
/// pool-controller idiom) so ports finishing early simply deassert ready.
struct JoinPort {
  NetId buf = kInvalidNet;   // BRAM read data (1-cycle latency)
  NetId done = kInvalidNet;  // done | wrapping this cycle
};

JoinPort make_join_port(NetlistBuilder& b, int k, int volume, NetId is_load,
                        NetId raddr) {
  JoinPort port;
  const NetId in_data = b.in_port(stream_port_name("in", k, "data"), kDataW);
  const NetId in_valid = b.in_port(stream_port_name("in", k, "valid"), 1);

  Cell done_cell;
  done_cell.type = CellType::kFf;
  done_cell.width = 1;
  done_cell.name = "ld_done" + std::to_string(k);
  const CellId done_reg = b.netlist().add_cell(std::move(done_cell));
  const NetId done_latch = b.netlist().add_net(1);
  b.netlist().connect_output(done_reg, 0, done_latch);

  const NetId accept = b.and2(is_load, b.not1(done_latch));
  const NetId wr = b.and2(accept, in_valid);
  const auto pix = b.counter(static_cast<std::uint32_t>(volume), wr, kAddrW,
                             "ld_pix" + std::to_string(k));
  b.netlist().connect_input(done_reg, 0,
                            b.and2(is_load, b.or2(done_latch, pix.wrap)));
  b.netlist().connect_input(done_reg, 1, b.one());

  port.buf = b.bram(pix.value, in_data, wr, static_cast<std::uint32_t>(volume), kDataW,
                    -1, "buf" + std::to_string(k), raddr);
  port.done = b.or2(done_latch, pix.wrap);
  b.out_port(stream_port_name("in", k, "ready"), accept);
  return port;
}

}  // namespace

Netlist make_add_component(const std::string& name, int volume, int n_inputs,
                           bool fuse_relu) {
  NetlistBuilder b(name);
  const NetId out_ready = b.in_port("out_ready", 1);

  const StateReg st = make_state_reg(b);
  const NetId is_load = b.eq(st.value, b.constant(kStLoad, 2));
  const NetId is_drain = b.eq(st.value, b.constant(kStDrain, 2));

  // Sink controller first: the shared read address feeds every bank.
  const NetId streaming = b.and2(is_drain, out_ready);
  const auto rpix = b.counter(static_cast<std::uint32_t>(volume), streaming, kAddrW, "rpix");

  NetId load_done = kInvalidNet;
  NetId sum = kInvalidNet;
  const NetId one_q88 = b.constant(256, kDataW);  // 1.0 in Q8.8
  for (int k = 0; k < n_inputs; ++k) {
    const JoinPort port = make_join_port(b, k, volume, is_load, rpix.value);
    load_done = k == 0 ? port.done : b.and2(load_done, port.done);
    // Saturating fold, matching golden_add: acc = sat(buf_k + acc). A
    // stage-0 DSP computes clamp(clamp((a*b)>>8) + c) = sat(a + c) for
    // b == 1.0, so every partial sum saturates exactly like Fixed16::+.
    sum = k == 0 ? port.buf : b.dsp(port.buf, one_q88, sum, 8, 0, kDataW);
  }
  NetId result = sum;
  if (fuse_relu) result = b.relu(result, kDataW);

  const NetId out_data = b.ff(result, kInvalidNet, kDataW, "ob_reg");
  const NetId out_valid = b.delay(streaming, 2, 1);
  const NetId drain_done = rpix.wrap;

  NetId next_state = st.value;
  next_state = b.mux2(next_state, b.constant(kStDrain, 2), b.and2(is_load, load_done), 2);
  next_state = b.mux2(next_state, b.constant(kStLoad, 2), b.and2(is_drain, drain_done), 2);
  finish_state_reg(b, st, next_state);

  b.out_port("out_data", out_data);
  b.out_port("out_valid", out_valid);
  return std::move(b).take();
}

Netlist make_concat_component(const std::string& name, const std::vector<int>& volumes,
                              bool fuse_relu) {
  NetlistBuilder b(name);
  const NetId out_ready = b.in_port("out_ready", 1);

  const StateReg st = make_state_reg(b);
  const NetId is_load = b.eq(st.value, b.constant(kStLoad, 2));
  const NetId is_drain = b.eq(st.value, b.constant(kStDrain, 2));

  long total = 0;
  for (int v : volumes) total += v;
  const NetId streaming = b.and2(is_drain, out_ready);
  const auto rpix = b.counter(static_cast<std::uint32_t>(total), streaming, kAddrW, "rpix");

  NetId load_done = kInvalidNet;
  NetId data = kInvalidNet;
  long offset = 0;
  for (std::size_t k = 0; k < volumes.size(); ++k) {
    const int volume = volumes[k];
    // Bank k owns output words [offset, offset + volume); clamp the read
    // address to 0 outside that window so the BRAM never sees an
    // out-of-range index.
    const NetId off = b.constant(static_cast<std::uint64_t>(offset), kAddrW);
    const NetId ge_off =
        k == 0 ? b.one() : b.not1(b.ltu(rpix.value, off));
    const NetId below_end =
        k + 1 == volumes.size()
            ? b.one()
            : b.ltu(rpix.value,
                    b.constant(static_cast<std::uint64_t>(offset + volume), kAddrW));
    const NetId in_range = b.and2(ge_off, below_end);
    const NetId raddr = b.mux2(b.zero(kAddrW), b.sub(rpix.value, off, kAddrW), in_range,
                               kAddrW);
    const JoinPort port = make_join_port(b, static_cast<int>(k), volume, is_load, raddr);
    load_done = k == 0 ? port.done : b.and2(load_done, port.done);
    // Bank select is aligned to the 1-cycle BRAM read latency.
    data = k == 0 ? port.buf : b.mux2(data, port.buf, b.delay(ge_off, 1, 1), kDataW);
    offset += volume;
  }
  NetId result = data;
  if (fuse_relu) result = b.relu(result, kDataW);

  const NetId out_data = b.ff(result, kInvalidNet, kDataW, "ob_reg");
  const NetId out_valid = b.delay(streaming, 2, 1);
  const NetId drain_done = rpix.wrap;

  NetId next_state = st.value;
  next_state = b.mux2(next_state, b.constant(kStDrain, 2), b.and2(is_load, load_done), 2);
  next_state = b.mux2(next_state, b.constant(kStLoad, 2), b.and2(is_drain, drain_done), 2);
  finish_state_reg(b, st, next_state);

  b.out_port("out_data", out_data);
  b.out_port("out_valid", out_valid);
  return std::move(b).take();
}

Netlist make_stream_fork(const std::string& name, int branches, int width) {
  NetlistBuilder b(name);
  const std::uint16_t w = static_cast<std::uint16_t>(width);
  const NetId in_data = b.in_port("in_data", w);
  const NetId in_valid = b.in_port("in_valid", 1);

  // One shared skid word, one full flag per branch. A new word is accepted
  // only when every branch is empty or popping this cycle, so the shared
  // register can never clobber an unconsumed word.
  std::vector<NetId> ready(static_cast<std::size_t>(branches));
  std::vector<NetId> full(static_cast<std::size_t>(branches));
  std::vector<CellId> full_reg(static_cast<std::size_t>(branches));
  NetId all_clear = kInvalidNet;
  for (int k = 0; k < branches; ++k) {
    ready[static_cast<std::size_t>(k)] =
        b.in_port(stream_port_name("out", k, "ready"), 1);
    Cell cell;
    cell.type = CellType::kFf;
    cell.width = 1;
    cell.name = "full" + std::to_string(k);
    full_reg[static_cast<std::size_t>(k)] = b.netlist().add_cell(std::move(cell));
    full[static_cast<std::size_t>(k)] = b.netlist().add_net(1);
    b.netlist().connect_output(full_reg[static_cast<std::size_t>(k)], 0,
                               full[static_cast<std::size_t>(k)]);
    const NetId clear = b.or2(b.not1(full[static_cast<std::size_t>(k)]),
                              ready[static_cast<std::size_t>(k)]);
    all_clear = k == 0 ? clear : b.and2(all_clear, clear);
  }
  const NetId push = b.and2(in_valid, all_clear);
  const NetId data = b.ff(in_data, push, w, "skid");
  for (int k = 0; k < branches; ++k) {
    const NetId hold = b.and2(full[static_cast<std::size_t>(k)],
                              b.not1(ready[static_cast<std::size_t>(k)]));
    b.netlist().connect_input(full_reg[static_cast<std::size_t>(k)], 0,
                              b.or2(push, hold));
    b.netlist().connect_input(full_reg[static_cast<std::size_t>(k)], 1, b.one());
    b.out_port(stream_port_name("out", k, "data"), data);
    b.out_port(stream_port_name("out", k, "valid"), full[static_cast<std::size_t>(k)]);
  }
  b.out_port("in_ready", all_clear);
  return std::move(b).take();
}

Netlist make_mmu_component(const std::string& name, int buffer_words) {
  NetlistBuilder b(name);
  const NetId in_data = b.in_port("in_data", kDataW);
  const NetId in_valid = b.in_port("in_valid", 1);
  const NetId out_ready = b.in_port("out_ready", 1);

  const StateReg st = make_state_reg(b);
  const NetId is_load = b.eq(st.value, b.constant(kStLoad, 2));
  const NetId is_drain = b.eq(st.value, b.constant(kStDrain, 2));

  const NetId wr = b.and2(is_load, in_valid);
  const auto wpix = b.counter(static_cast<std::uint32_t>(buffer_words), wr, kAddrW, "wpix");
  const NetId load_done = wpix.wrap;

  const NetId streaming = b.and2(is_drain, out_ready);
  const auto rpix =
      b.counter(static_cast<std::uint32_t>(buffer_words), streaming, kAddrW, "rpix");
  const NetId buf = b.bram(wpix.value, in_data, wr,
                           static_cast<std::uint32_t>(buffer_words), kDataW, -1, "buf",
                           rpix.value);
  const NetId out_data = b.ff(buf, kInvalidNet, kDataW, "ob_reg");
  const NetId drain_done = rpix.wrap;

  NetId next_state = st.value;
  next_state = b.mux2(next_state, b.constant(kStDrain, 2), b.and2(is_load, load_done), 2);
  next_state = b.mux2(next_state, b.constant(kStLoad, 2), b.and2(is_drain, drain_done), 2);
  finish_state_reg(b, st, next_state);

  b.out_port("in_ready", is_load);
  b.out_port("out_data", out_data);
  b.out_port("out_valid", b.delay(streaming, 2, 1));
  return std::move(b).take();
}

}  // namespace fpgasim
