#include "synth/builder.h"

#include <cassert>

namespace fpgasim {

std::uint16_t addr_bits(std::uint32_t depth) {
  std::uint16_t bits = 1;
  while ((1u << bits) < depth) ++bits;
  return bits;
}

NetId NetlistBuilder::in_port(const std::string& name, std::uint16_t width) {
  const NetId net = new_net(width, name);
  netlist_.add_port(Port{name, PortDir::kInput, width, net});
  return net;
}

void NetlistBuilder::out_port(const std::string& name, NetId net) {
  netlist_.add_port(Port{name, PortDir::kOutput, netlist_.net(net).width, net});
}

NetId NetlistBuilder::constant(std::uint64_t value, std::uint16_t width) {
  Cell cell;
  cell.type = CellType::kConst;
  cell.width = width;
  cell.init = value;
  const CellId id = netlist_.add_cell(std::move(cell));
  const NetId out = new_net(width);
  netlist_.connect_output(id, 0, out);
  return out;
}

NetId NetlistBuilder::op2(LutOp op, NetId a, NetId b, std::uint16_t width, std::string name) {
  Cell cell;
  cell.type = CellType::kLut;
  cell.op = op;
  cell.width = width;
  cell.name = std::move(name);
  const CellId id = netlist_.add_cell(std::move(cell));
  netlist_.connect_input(id, 0, a);
  netlist_.connect_input(id, 1, b);
  const NetId out = new_net(width);
  netlist_.connect_output(id, 0, out);
  return out;
}

NetId NetlistBuilder::not1(NetId a, std::uint16_t width) {
  Cell cell;
  cell.type = CellType::kLut;
  cell.op = LutOp::kNot;
  cell.width = width;
  const CellId id = netlist_.add_cell(std::move(cell));
  netlist_.connect_input(id, 0, a);
  const NetId out = new_net(width);
  netlist_.connect_output(id, 0, out);
  return out;
}

NetId NetlistBuilder::mux2(NetId a, NetId b, NetId sel, std::uint16_t width, std::string name) {
  Cell cell;
  cell.type = CellType::kLut;
  cell.op = LutOp::kMux2;
  cell.width = width;
  cell.name = std::move(name);
  const CellId id = netlist_.add_cell(std::move(cell));
  netlist_.connect_input(id, 0, a);
  netlist_.connect_input(id, 1, b);
  netlist_.connect_input(id, 2, sel);
  const NetId out = new_net(width);
  netlist_.connect_output(id, 0, out);
  return out;
}

NetId NetlistBuilder::muxn(const std::vector<NetId>& inputs, NetId sel, std::uint16_t width) {
  assert(!inputs.empty());
  std::vector<NetId> level = inputs;
  int bit_index = 0;
  while (level.size() > 1) {
    const NetId sel_bit = bit(sel, bit_index++);
    std::vector<NetId> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(mux2(level[i], level[i + 1], sel_bit, width));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  return level.front();
}

std::vector<NetId> NetlistBuilder::decode(NetId sel, std::size_t n) {
  std::vector<NetId> enables;
  enables.reserve(n);
  const std::uint16_t w = netlist_.net(sel).width;
  for (std::size_t i = 0; i < n; ++i) {
    enables.push_back(eq(sel, constant(i, w)));
  }
  return enables;
}

NetId NetlistBuilder::bit(NetId bus, int bit_index) {
  if (netlist_.net(bus).width == 1 && bit_index == 0) return bus;
  // Shift-and-mask through a truth-table LUT is overkill; model bit select
  // as a 1-bit EQ against the masked bus: cheaper is a dedicated pass with
  // truth table. We use LTU trick: ((bus >> k) & 1) via AND with a one-hot
  // constant then compare against zero.
  const std::uint16_t w = netlist_.net(bus).width;
  const NetId masked = op2(LutOp::kAnd, bus, constant(1ULL << bit_index, w), w);
  return not1(eq(masked, zero(w)));
}

NetId NetlistBuilder::add(NetId a, NetId b, std::uint16_t width, std::string name) {
  Cell cell;
  cell.type = CellType::kAdd;
  cell.width = width;
  cell.name = std::move(name);
  const CellId id = netlist_.add_cell(std::move(cell));
  netlist_.connect_input(id, 0, a);
  netlist_.connect_input(id, 1, b);
  const NetId out = new_net(width);
  netlist_.connect_output(id, 0, out);
  return out;
}

NetId NetlistBuilder::sub(NetId a, NetId b, std::uint16_t width) {
  Cell cell;
  cell.type = CellType::kAdd;
  cell.width = width;
  cell.init = 1;  // subtract
  const CellId id = netlist_.add_cell(std::move(cell));
  netlist_.connect_input(id, 0, a);
  netlist_.connect_input(id, 1, b);
  const NetId out = new_net(width);
  netlist_.connect_output(id, 0, out);
  return out;
}

NetId NetlistBuilder::smax(NetId a, NetId b, std::uint16_t width) {
  Cell cell;
  cell.type = CellType::kMax;
  cell.width = width;
  const CellId id = netlist_.add_cell(std::move(cell));
  netlist_.connect_input(id, 0, a);
  netlist_.connect_input(id, 1, b);
  const NetId out = new_net(width);
  netlist_.connect_output(id, 0, out);
  return out;
}

NetId NetlistBuilder::relu(NetId a, std::uint16_t width) {
  Cell cell;
  cell.type = CellType::kRelu;
  cell.width = width;
  const CellId id = netlist_.add_cell(std::move(cell));
  netlist_.connect_input(id, 0, a);
  const NetId out = new_net(width);
  netlist_.connect_output(id, 0, out);
  return out;
}

NetId NetlistBuilder::adder_tree(std::vector<NetId> terms, std::uint16_t width) {
  if (terms.empty()) return zero(width);
  while (terms.size() > 1) {
    std::vector<NetId> next;
    next.reserve((terms.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
      next.push_back(add(terms[i], terms[i + 1], width));
    }
    if (terms.size() % 2 == 1) next.push_back(terms.back());
    terms = std::move(next);
  }
  return terms.front();
}

NetId NetlistBuilder::mul_const_add(NetId b_net, std::uint64_t k, NetId addend,
                                    std::uint16_t width) {
  // Constant folding: a term driven by a constant-zero cell contributes
  // nothing (degenerate group counters fold away, as synthesis would do).
  const Net& b_info = netlist_.net(b_net);
  if (b_info.driver != kInvalidCell) {
    const Cell& driver = netlist_.cell(b_info.driver);
    if (driver.type == CellType::kConst && driver.init == 0) k = 0;
  }
  // Binary expansion: repeatedly double b_net, adding doubled terms where k
  // has a set bit. k == 0 degenerates to the addend alone.
  NetId acc = addend;
  NetId term = b_net;
  bool first_add = (addend == kInvalidNet);
  while (k != 0) {
    if (k & 1) {
      if (first_add) {
        acc = term;
        first_add = false;
      } else {
        acc = add(acc, term, width);
      }
    }
    k >>= 1;
    if (k != 0) term = add(term, term, width);  // double
  }
  if (first_add) return zero(width);
  return acc;
}

NetId NetlistBuilder::dsp(NetId a, NetId b, NetId c, int shift, int stages,
                          std::uint16_t width, std::string name) {
  Cell cell;
  cell.type = CellType::kDsp;
  cell.width = width;
  cell.init = static_cast<std::uint64_t>(shift);
  cell.stages = static_cast<std::uint8_t>(stages);
  cell.name = std::move(name);
  const CellId id = netlist_.add_cell(std::move(cell));
  netlist_.connect_input(id, 0, a);
  netlist_.connect_input(id, 1, b);
  if (c != kInvalidNet) netlist_.connect_input(id, 2, c);
  const NetId out = new_net(width);
  netlist_.connect_output(id, 0, out);
  return out;
}

NetId NetlistBuilder::ff(NetId d, NetId ce, std::uint16_t width, std::string name) {
  Cell cell;
  cell.type = CellType::kFf;
  cell.width = width;
  cell.name = std::move(name);
  const CellId id = netlist_.add_cell(std::move(cell));
  netlist_.connect_input(id, 0, d);
  if (ce != kInvalidNet) netlist_.connect_input(id, 1, ce);
  const NetId out = new_net(width);
  netlist_.connect_output(id, 0, out);
  return out;
}

NetId NetlistBuilder::delay(NetId d, int n, std::uint16_t width) {
  for (int i = 0; i < n; ++i) d = ff(d, kInvalidNet, width);
  return d;
}

NetId NetlistBuilder::srl(NetId d, NetId ce, std::uint16_t depth, std::uint16_t width) {
  Cell cell;
  cell.type = CellType::kSrl;
  cell.width = width;
  cell.depth = depth;
  const CellId id = netlist_.add_cell(std::move(cell));
  netlist_.connect_input(id, 0, d);
  if (ce != kInvalidNet) netlist_.connect_input(id, 1, ce);
  const NetId out = new_net(width);
  netlist_.connect_output(id, 0, out);
  return out;
}

NetId NetlistBuilder::bram(NetId addr, NetId wdata, NetId we, std::uint32_t depth,
                           std::uint16_t width, std::int32_t rom_id, std::string name,
                           NetId raddr) {
  Cell cell;
  cell.type = CellType::kBram;
  cell.width = width;
  cell.bram_depth = depth;
  cell.rom_id = rom_id;
  cell.name = std::move(name);
  const CellId id = netlist_.add_cell(std::move(cell));
  netlist_.connect_input(id, 0, addr);
  if (wdata != kInvalidNet) netlist_.connect_input(id, 1, wdata);
  if (we != kInvalidNet) netlist_.connect_input(id, 2, we);
  if (raddr != kInvalidNet) netlist_.connect_input(id, 3, raddr);
  const NetId out = new_net(width);
  netlist_.connect_output(id, 0, out);
  return out;
}

NetlistBuilder::Counter NetlistBuilder::counter(std::uint32_t modulus, NetId enable,
                                                std::uint16_t width, std::string name) {
  assert(modulus >= 1);
  if (modulus == 1) {
    // Degenerate counter: constant zero, wraps on every enabled cycle.
    return Counter{zero(width), enable};
  }
  // value FF; next = wrap ? 0 : value + 1, loaded when enable.
  Cell reg;
  reg.type = CellType::kFf;
  reg.width = width;
  reg.name = name.empty() ? std::string("ctr") : name;
  const CellId reg_id = netlist_.add_cell(std::move(reg));
  const NetId value = new_net(width, std::move(name));
  netlist_.connect_output(reg_id, 0, value);

  const NetId at_top = eq(value, constant(modulus - 1, width));
  const NetId wrap = and2(at_top, enable);
  const NetId incremented = add(value, constant(1, width), width);
  const NetId next = mux2(incremented, zero(width), at_top, width);
  netlist_.connect_input(reg_id, 0, next);
  netlist_.connect_input(reg_id, 1, enable);
  return Counter{value, wrap};
}

NetId NetlistBuilder::accum(NetId step, NetId enable, NetId clear, std::uint16_t width,
                            std::string name) {
  Cell reg;
  reg.type = CellType::kFf;
  reg.width = width;
  reg.name = std::move(name);
  const CellId reg_id = netlist_.add_cell(std::move(reg));
  const NetId value = new_net(width);
  netlist_.connect_output(reg_id, 0, value);

  const NetId sum = add(value, step, width);
  const NetId next = mux2(sum, zero(width), clear, width);
  netlist_.connect_input(reg_id, 0, next);
  netlist_.connect_input(reg_id, 1, or2(enable, clear));
  return value;
}

}  // namespace fpgasim
