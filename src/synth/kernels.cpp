#include "synth/kernels.h"

#include <functional>
#include <vector>

#include "synth/builder.h"
#include "synth/layers.h"

namespace fpgasim {

const char* to_string(KernelApp app) {
  switch (app) {
    case KernelApp::kMatrixMult: return "MM";
    case KernelApp::kOuterProduct: return "OP";
    case KernelApp::kRobertCross: return "RC";
    case KernelApp::kSmoothing: return "SM";
  }
  return "?";
}

namespace {

/// |x| built from two rectifiers: relu(x) + relu(-x).
NetId abs_net(NetlistBuilder& b, NetId x) {
  const NetId neg = b.sub(b.zero(kDataW), x, kDataW);
  return b.add(b.relu(x, kDataW), b.relu(neg, kDataW), kDataW);
}

/// Shared scaffold: LOAD n_in words into a register file, one COMPUTE
/// cycle capturing the combinational PE outputs, DRAIN the results.
Netlist make_pe_block(const std::string& name, int n_in,
                      const std::function<std::vector<NetId>(NetlistBuilder&,
                                                             const std::vector<NetId>&)>&
                          compute) {
  NetlistBuilder b(name);
  const NetId in_data = b.in_port("in_data", kDataW);
  const NetId in_valid = b.in_port("in_valid", 1);
  const NetId out_ready = b.in_port("out_ready", 1);

  // 2-bit FSM: 0 = LOAD, 1 = COMPUTE (single cycle), 2 = DRAIN.
  Cell st_cell;
  st_cell.type = CellType::kFf;
  st_cell.width = 2;
  const CellId st_reg = b.netlist().add_cell(std::move(st_cell));
  const NetId state = b.netlist().add_net(2, "state");
  b.netlist().connect_output(st_reg, 0, state);
  const NetId is_load = b.eq(state, b.constant(0, 2));
  const NetId is_compute = b.eq(state, b.constant(1, 2));
  const NetId is_drain = b.eq(state, b.constant(2, 2));

  // LOAD: register file.
  const NetId wr = b.and2(is_load, in_valid);
  const auto lcnt = b.counter(static_cast<std::uint32_t>(n_in), wr, 8, "lcnt");
  const std::vector<NetId> slot_en = b.decode(lcnt.value, static_cast<std::size_t>(n_in));
  std::vector<NetId> slots;
  slots.reserve(static_cast<std::size_t>(n_in));
  for (int i = 0; i < n_in; ++i) {
    slots.push_back(b.ff(in_data, b.and2(wr, slot_en[static_cast<std::size_t>(i)]), kDataW));
  }

  // COMPUTE: the 3x3 PE fabric, outputs captured in result registers.
  const std::vector<NetId> pe_out = compute(b, slots);
  std::vector<NetId> results;
  results.reserve(pe_out.size());
  for (NetId out : pe_out) results.push_back(b.ff(out, is_compute, kDataW));

  // DRAIN: combinational register-file read (no prefetch skew).
  const NetId streaming = b.and2(is_drain, out_ready);
  const auto dcnt =
      b.counter(static_cast<std::uint32_t>(results.size()), streaming, 8, "dcnt");
  const NetId out_data = b.muxn(results, dcnt.value, kDataW);

  NetId next_state = state;
  next_state = b.mux2(next_state, b.constant(1, 2), b.and2(is_load, lcnt.wrap), 2);
  next_state = b.mux2(next_state, b.constant(2, 2), is_compute, 2);
  next_state = b.mux2(next_state, b.constant(0, 2), b.and2(is_drain, dcnt.wrap), 2);
  b.netlist().connect_input(st_reg, 0, next_state);
  b.netlist().connect_input(st_reg, 1, b.one());

  b.out_port("in_ready", is_load);
  b.out_port("out_data", out_data);
  b.out_port("out_valid", streaming);
  return std::move(b).take();
}

}  // namespace

Netlist make_kernel_component(KernelApp app, const std::string& name) {
  switch (app) {
    case KernelApp::kMatrixMult:
      // Inputs: A row-major (9), then B row-major (9). PE(i,j) computes
      // the dot product of A row i and B column j on a DSP cascade.
      return make_pe_block(name, 18, [](NetlistBuilder& b, const std::vector<NetId>& s) {
        std::vector<NetId> out;
        for (int i = 0; i < 3; ++i) {
          for (int j = 0; j < 3; ++j) {
            NetId acc = kInvalidNet;
            for (int k = 0; k < 3; ++k) {
              const NetId a = s[static_cast<std::size_t>(3 * i + k)];
              const NetId bb = s[static_cast<std::size_t>(9 + 3 * k + j)];
              acc = b.dsp(a, bb, acc, kFixedFrac, 0, kDataW);
            }
            out.push_back(acc);
          }
        }
        return out;
      });
    case KernelApp::kOuterProduct:
      // Inputs: a (3), b (3); PE(i,j) = a_i * b_j.
      return make_pe_block(name, 6, [](NetlistBuilder& b, const std::vector<NetId>& s) {
        std::vector<NetId> out;
        for (int i = 0; i < 3; ++i) {
          for (int j = 0; j < 3; ++j) {
            out.push_back(b.dsp(s[static_cast<std::size_t>(i)],
                                s[static_cast<std::size_t>(3 + j)], kInvalidNet, kFixedFrac,
                                0, kDataW));
          }
        }
        return out;
      });
    case KernelApp::kRobertCross:
      // Inputs: 4x4 image tile; PE(i,j) applies the Roberts cross operator
      // |p(i,j)-p(i+1,j+1)| + |p(i+1,j)-p(i,j+1)| on its 2x2 window.
      return make_pe_block(name, 16, [](NetlistBuilder& b, const std::vector<NetId>& s) {
        auto px = [&](int y, int x) { return s[static_cast<std::size_t>(4 * y + x)]; };
        std::vector<NetId> out;
        for (int i = 0; i < 3; ++i) {
          for (int j = 0; j < 3; ++j) {
            const NetId gx = b.sub(px(i, j), px(i + 1, j + 1), kDataW);
            const NetId gy = b.sub(px(i + 1, j), px(i, j + 1), kDataW);
            out.push_back(b.add(abs_net(b, gx), abs_net(b, gy), kDataW));
          }
        }
        return out;
      });
    case KernelApp::kSmoothing:
      // Inputs: 5x5 tile; PE(i,j) = (sum of its 3x3 neighbourhood) / 8
      // (power-of-two smoothing kernel).
      return make_pe_block(name, 25, [](NetlistBuilder& b, const std::vector<NetId>& s) {
        auto px = [&](int y, int x) { return s[static_cast<std::size_t>(5 * y + x)]; };
        std::vector<NetId> out;
        for (int i = 0; i < 3; ++i) {
          for (int j = 0; j < 3; ++j) {
            std::vector<NetId> terms;
            for (int dy = 0; dy < 3; ++dy) {
              for (int dx = 0; dx < 3; ++dx) terms.push_back(px(i + dy, j + dx));
            }
            const NetId sum = b.adder_tree(std::move(terms), kDataW);
            out.push_back(b.dsp(sum, b.constant(1, kDataW), kInvalidNet, 3, 0, kDataW));
          }
        }
        return out;
      });
  }
  return Netlist{};
}

}  // namespace fpgasim
