// The four motivation-example kernels from Fig. 1 (after Mandebi et al.):
// a 3x3 processing-element block implementing Matrix Multiplication (MM),
// Outer Product (OP), Robert Cross (RC) and Smoothing (SM). Each component
// uses the same LOAD -> COMPUTE -> DRAIN stream contract as the CNN layers
// so they run through both design flows unchanged.
#pragma once

#include <string>

#include "netlist/netlist.h"

namespace fpgasim {

enum class KernelApp { kMatrixMult, kOuterProduct, kRobertCross, kSmoothing };

const char* to_string(KernelApp app);

/// Builds one 3x3 PE block for the given application.
Netlist make_kernel_component(KernelApp app, const std::string& name);

}  // namespace fpgasim
