#include <gtest/gtest.h>

#include "place/macro_placer.h"

namespace fpgasim {
namespace {

std::vector<MacroItem> make_chain_items(const Device& device, int count, int w, int h) {
  std::vector<MacroItem> items;
  for (int i = 0; i < count; ++i) {
    // All implemented at the same spot (the OOC flow reuses one pblock);
    // relocation must spread them out.
    items.push_back(MacroItem{"c" + std::to_string(i), Pblock{0, 0, w - 1, h - 1}});
  }
  (void)device;
  return items;
}

std::vector<MacroNet> make_chain_nets(int count) {
  std::vector<MacroNet> nets;
  for (int i = 0; i + 1 < count; ++i) nets.push_back(MacroNet{{i, i + 1}, 1.0});
  return nets;
}

TEST(MacroPlacer, PlacesChainWithoutOverlap) {
  const Device device = make_xcku5p_sim();
  const auto items = make_chain_items(device, 6, 12, 24);
  const auto nets = make_chain_nets(6);
  const MacroPlaceResult result = place_macros(device, items, nets);
  ASSERT_TRUE(result.success) << result.error;
  for (std::size_t i = 0; i < items.size(); ++i) {
    for (std::size_t j = i + 1; j < items.size(); ++j) {
      EXPECT_FALSE(result.placed[i].overlaps(result.placed[j])) << i << " vs " << j;
    }
  }
}

TEST(MacroPlacer, PlacementsAreColumnCompatible) {
  const Device device = make_xcku5p_sim();
  const auto items = make_chain_items(device, 4, 10, 20);
  const auto nets = make_chain_nets(4);
  const MacroPlaceResult result = place_macros(device, items, nets);
  ASSERT_TRUE(result.success);
  for (std::size_t i = 0; i < items.size(); ++i) {
    const Pblock& placed = result.placed[i];
    EXPECT_GE(placed.x0, 0);
    EXPECT_GE(placed.y0, 0);
    EXPECT_LT(placed.x1, device.width());
    EXPECT_LT(placed.y1, device.height());
    EXPECT_EQ(result.offsets[i].second % 2, 0);  // row parity preserved
    for (int dx = 0; dx < placed.width(); ++dx) {
      EXPECT_EQ(device.column_type(placed.x0 + dx),
                device.column_type(items[i].footprint.x0 + dx));
    }
  }
}

TEST(MacroPlacer, ConnectedComponentsLandNearEachOther) {
  const Device device = make_xcku5p_sim();
  const auto items = make_chain_items(device, 5, 12, 24);
  const auto nets = make_chain_nets(5);
  const MacroPlaceResult result = place_macros(device, items, nets);
  ASSERT_TRUE(result.success);
  for (std::size_t i = 0; i + 1 < items.size(); ++i) {
    const Pblock& a = result.placed[i];
    const Pblock& b = result.placed[i + 1];
    const int dist = std::abs((a.x0 + a.x1) / 2 - (b.x0 + b.x1) / 2) +
                     std::abs((a.y0 + a.y1) / 2 - (b.y0 + b.y1) / 2);
    EXPECT_LE(dist, 90) << "chain neighbours " << i << " placed far apart";
  }
  EXPECT_GT(result.timing_cost, 0.0);
}

TEST(MacroPlacer, EmptyInputSucceeds) {
  const Device device = make_tiny_device();
  const MacroPlaceResult result = place_macros(device, {}, {});
  EXPECT_TRUE(result.success);
}

TEST(MacroPlacer, SingleComponentPlacesAtZeroCost) {
  const Device device = make_xcku5p_sim();
  std::vector<MacroItem> items{MacroItem{"solo", Pblock{4, 0, 20, 30}}};
  const MacroPlaceResult result = place_macros(device, items, {});
  ASSERT_TRUE(result.success);
  EXPECT_DOUBLE_EQ(result.timing_cost, 0.0);
  EXPECT_DOUBLE_EQ(result.congestion_cost, 0.0);
}

TEST(MacroPlacer, FailsWhenComponentCannotFit) {
  const Device device = make_tiny_device();
  // Wider than the device: no anchor exists.
  std::vector<MacroItem> items{
      MacroItem{"huge", Pblock{0, 0, device.width() + 5, device.height() - 1}}};
  const MacroPlaceResult result = place_macros(device, items, {});
  EXPECT_FALSE(result.success);
  EXPECT_FALSE(result.error.empty());
}

TEST(MacroPlacer, PacksManyComponentsOnTinyDevice) {
  // Forces the unplace-and-retry path: 8 CLB-only 4x8 blocks on a 24x32
  // device leave little slack; the placer must backtrack, not fail.
  const Device device = make_tiny_device();
  std::vector<MacroItem> items;
  for (int i = 0; i < 8; ++i) {
    items.push_back(MacroItem{"b" + std::to_string(i), Pblock{0, 0, 3, 7}});
  }
  const auto nets = make_chain_nets(8);
  const MacroPlaceResult result = place_macros(device, items, nets);
  ASSERT_TRUE(result.success) << result.error;
  for (std::size_t i = 0; i < items.size(); ++i) {
    for (std::size_t j = i + 1; j < items.size(); ++j) {
      EXPECT_FALSE(result.placed[i].overlaps(result.placed[j]));
    }
  }
}

TEST(MacroPlacer, DeterministicForSeed) {
  const Device device = make_xcku5p_sim();
  const auto items = make_chain_items(device, 5, 10, 20);
  const auto nets = make_chain_nets(5);
  MacroPlaceOptions opt;
  opt.seed = 7;
  const auto a = place_macros(device, items, nets, opt);
  const auto b = place_macros(device, items, nets, opt);
  ASSERT_TRUE(a.success && b.success);
  EXPECT_EQ(a.offsets, b.offsets);
}

}  // namespace
}  // namespace fpgasim
