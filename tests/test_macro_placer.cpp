#include <gtest/gtest.h>

#include "place/macro_cost.h"
#include "place/macro_placer.h"
#include "util/rng.h"

namespace fpgasim {
namespace {

std::vector<MacroItem> make_chain_items(const Device& device, int count, int w, int h) {
  std::vector<MacroItem> items;
  for (int i = 0; i < count; ++i) {
    // All implemented at the same spot (the OOC flow reuses one pblock);
    // relocation must spread them out.
    items.push_back(MacroItem{"c" + std::to_string(i), Pblock{0, 0, w - 1, h - 1}});
  }
  (void)device;
  return items;
}

std::vector<MacroNet> make_chain_nets(int count) {
  std::vector<MacroNet> nets;
  for (int i = 0; i + 1 < count; ++i) nets.push_back(MacroNet{{i, i + 1}, 1.0});
  return nets;
}

TEST(MacroPlacer, PlacesChainWithoutOverlap) {
  const Device device = make_xcku5p_sim();
  const auto items = make_chain_items(device, 6, 12, 24);
  const auto nets = make_chain_nets(6);
  const MacroPlaceResult result = place_macros(device, items, nets);
  ASSERT_TRUE(result.success) << result.error;
  for (std::size_t i = 0; i < items.size(); ++i) {
    for (std::size_t j = i + 1; j < items.size(); ++j) {
      EXPECT_FALSE(result.placed[i].overlaps(result.placed[j])) << i << " vs " << j;
    }
  }
}

TEST(MacroPlacer, PlacementsAreColumnCompatible) {
  const Device device = make_xcku5p_sim();
  const auto items = make_chain_items(device, 4, 10, 20);
  const auto nets = make_chain_nets(4);
  const MacroPlaceResult result = place_macros(device, items, nets);
  ASSERT_TRUE(result.success);
  for (std::size_t i = 0; i < items.size(); ++i) {
    const Pblock& placed = result.placed[i];
    EXPECT_GE(placed.x0, 0);
    EXPECT_GE(placed.y0, 0);
    EXPECT_LT(placed.x1, device.width());
    EXPECT_LT(placed.y1, device.height());
    EXPECT_EQ(result.offsets[i].second % 2, 0);  // row parity preserved
    for (int dx = 0; dx < placed.width(); ++dx) {
      EXPECT_EQ(device.column_type(placed.x0 + dx),
                device.column_type(items[i].footprint.x0 + dx));
    }
  }
}

TEST(MacroPlacer, ConnectedComponentsLandNearEachOther) {
  const Device device = make_xcku5p_sim();
  const auto items = make_chain_items(device, 5, 12, 24);
  const auto nets = make_chain_nets(5);
  const MacroPlaceResult result = place_macros(device, items, nets);
  ASSERT_TRUE(result.success);
  for (std::size_t i = 0; i + 1 < items.size(); ++i) {
    const Pblock& a = result.placed[i];
    const Pblock& b = result.placed[i + 1];
    const int dist = std::abs((a.x0 + a.x1) / 2 - (b.x0 + b.x1) / 2) +
                     std::abs((a.y0 + a.y1) / 2 - (b.y0 + b.y1) / 2);
    EXPECT_LE(dist, 90) << "chain neighbours " << i << " placed far apart";
  }
  EXPECT_GT(result.timing_cost, 0.0);
}

TEST(MacroPlacer, EmptyInputSucceeds) {
  const Device device = make_tiny_device();
  const MacroPlaceResult result = place_macros(device, {}, {});
  EXPECT_TRUE(result.success);
}

TEST(MacroPlacer, SingleComponentPlacesAtZeroCost) {
  const Device device = make_xcku5p_sim();
  std::vector<MacroItem> items{MacroItem{"solo", Pblock{4, 0, 20, 30}}};
  const MacroPlaceResult result = place_macros(device, items, {});
  ASSERT_TRUE(result.success);
  EXPECT_DOUBLE_EQ(result.timing_cost, 0.0);
  EXPECT_DOUBLE_EQ(result.congestion_cost, 0.0);
}

TEST(MacroPlacer, FailsWhenComponentCannotFit) {
  const Device device = make_tiny_device();
  // Wider than the device: no anchor exists.
  std::vector<MacroItem> items{
      MacroItem{"huge", Pblock{0, 0, device.width() + 5, device.height() - 1}}};
  const MacroPlaceResult result = place_macros(device, items, {});
  EXPECT_FALSE(result.success);
  EXPECT_FALSE(result.error.empty());
}

TEST(MacroPlacer, PacksManyComponentsOnTinyDevice) {
  // Forces the unplace-and-retry path: 8 CLB-only 4x8 blocks on a 24x32
  // device leave little slack; the placer must backtrack, not fail.
  const Device device = make_tiny_device();
  std::vector<MacroItem> items;
  for (int i = 0; i < 8; ++i) {
    items.push_back(MacroItem{"b" + std::to_string(i), Pblock{0, 0, 3, 7}});
  }
  const auto nets = make_chain_nets(8);
  const MacroPlaceResult result = place_macros(device, items, nets);
  ASSERT_TRUE(result.success) << result.error;
  for (std::size_t i = 0; i < items.size(); ++i) {
    for (std::size_t j = i + 1; j < items.size(); ++j) {
      EXPECT_FALSE(result.placed[i].overlaps(result.placed[j]));
    }
  }
}

TEST(MacroCost, IncrementalMatchesFullOnRandomizedPlacements) {
  // Drive the incremental kernel through a random walk of place / move /
  // unplace operations; after every mutation its totals must equal the
  // full recompute on the same state.
  const Device device = make_xcku5p_sim();
  const std::size_t n = 10;
  std::vector<MacroItem> items;
  std::vector<std::vector<std::pair<int, int>>> anchors;
  for (std::size_t i = 0; i < n; ++i) {
    const int w = 6 + 2 * static_cast<int>(i % 5);
    const int h = 12 + 4 * static_cast<int>(i % 4);
    items.push_back(MacroItem{"r" + std::to_string(i), Pblock{0, 0, w - 1, h - 1}});
    anchors.push_back(relocation_offsets(device, items.back().footprint));
    ASSERT_FALSE(anchors.back().empty());
  }
  std::vector<MacroNet> nets = make_chain_nets(static_cast<int>(n));
  Rng rng(99);
  for (int e = 0; e < 12; ++e) {
    const auto a = static_cast<int>(rng.next_below(n));
    const auto b = static_cast<int>(rng.next_below(n));
    if (a != b) nets.push_back(MacroNet{{a, b}, 1.0});
  }
  nets.push_back(MacroNet{{0, 4, 8}, 2.0});  // a weighted fan-out net

  MacroCostModel kernel(device, nets, n, /*incremental=*/true);
  for (int step = 0; step < 400; ++step) {
    const auto i = static_cast<std::size_t>(rng.next_below(n));
    if (kernel.is_placed()[i] && rng.next_below(3) == 0) {
      kernel.unplace(i);
    } else {
      const auto& cand = anchors[i];
      const auto& offset = cand[rng.next_below(cand.size())];
      kernel.place(i, items[i].footprint.translated(offset.first, offset.second));
    }
    const MacroCostTotals inc = kernel.totals();
    const MacroCostTotals full =
        full_macro_costs(device, nets, kernel.placed(), kernel.is_placed());
    // Bit-identical by construction, which trivially satisfies 1e-9.
    EXPECT_EQ(inc.timing, full.timing) << "step " << step;
    EXPECT_EQ(inc.congestion, full.congestion) << "step " << step;
  }
  EXPECT_GT(kernel.cost_evals(), 0);
  EXPECT_GT(kernel.nets_touched(), 0);
}

TEST(MacroPlacer, BacktrackingUnplacesAndRetries) {
  // An acceptance threshold below any achievable per-component gate: every
  // start must exhaust the unplace-and-retry path, then relax the
  // threshold (x1.5 steps) until the placement is admitted. Success with
  // nonzero backtrack telemetry proves the retry path ran.
  const Device device = make_xcku5p_sim();
  const auto items = make_chain_items(device, 4, 10, 20);
  const auto nets = make_chain_nets(4);
  MacroPlaceOptions opt;
  opt.accept_threshold = 1.0;  // two adjacent centers are always further apart
  const MacroPlaceResult result = place_macros(device, items, nets, opt);
  ASSERT_TRUE(result.success) << result.error;
  EXPECT_GT(result.backtracks, 0) << "winner start should have backtracked";
  long total_backtracks = 0;
  for (const int b : result.stats.backtracks_per_start) total_backtracks += b;
  EXPECT_GT(total_backtracks, 0);
  for (std::size_t i = 0; i < items.size(); ++i) {
    for (std::size_t j = i + 1; j < items.size(); ++j) {
      EXPECT_FALSE(result.placed[i].overlaps(result.placed[j]));
    }
  }
}

TEST(MacroPlacer, ReportsPlacementStats) {
  const Device device = make_xcku5p_sim();
  const auto items = make_chain_items(device, 5, 10, 20);
  const auto nets = make_chain_nets(5);
  MacroPlaceOptions opt;
  const MacroPlaceResult result = place_macros(device, items, nets, opt);
  ASSERT_TRUE(result.success);
  const PlaceStats& stats = result.stats;
  EXPECT_EQ(stats.starts, 3 + opt.perturbed_starts);
  EXPECT_EQ(static_cast<int>(stats.backtracks_per_start.size()), stats.starts);
  EXPECT_GE(stats.winner_start, 0);
  EXPECT_LT(stats.winner_start, stats.starts);
  EXPECT_FALSE(stats.used_fallback);
  EXPECT_GT(stats.cost_evals, 0);
  EXPECT_GT(stats.nets_touched, 0);
  EXPECT_GT(stats.overlap_tests, 0);
  EXPECT_GE(stats.wall_seconds, 0.0);
  EXPECT_GE(stats.cpu_seconds, 0.0);
  EXPECT_NE(stats.summary().find("starts"), std::string::npos);
}

TEST(MacroPlacer, DeterministicForSeed) {
  const Device device = make_xcku5p_sim();
  const auto items = make_chain_items(device, 5, 10, 20);
  const auto nets = make_chain_nets(5);
  MacroPlaceOptions opt;
  opt.seed = 7;
  const auto a = place_macros(device, items, nets, opt);
  const auto b = place_macros(device, items, nets, opt);
  ASSERT_TRUE(a.success && b.success);
  EXPECT_EQ(a.offsets, b.offsets);
}

}  // namespace
}  // namespace fpgasim
