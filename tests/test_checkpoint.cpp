#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "netlist/checkpoint.h"
#include "synth/builder.h"

namespace fpgasim {
namespace {

Checkpoint make_sample() {
  NetlistBuilder b("sample");
  const NetId a = b.in_port("in_data", 16);
  const std::int32_t rom = b.rom({11, 22, 33, 44});
  const NetId data = b.bram(a, kInvalidNet, kInvalidNet, 4, 16, rom, "rom");
  b.out_port("out_data", b.ff(data, kInvalidNet, 16, "oreg"));
  Checkpoint cp;
  cp.netlist = std::move(b).take();
  cp.netlist.lock_all();
  cp.phys.resize_for(cp.netlist);
  cp.phys.cell_loc[0] = TileCoord{3, 4};
  cp.phys.cell_loc[1] = TileCoord{5, 6};
  cp.phys.routes[0].routed = true;
  cp.phys.routes[0].edges = {{TileCoord{3, 4}, TileCoord{4, 4}}};
  cp.phys.routes[0].sink_delays_ns = {0.42};
  cp.pblock = Pblock{2, 2, 8, 10};
  cp.meta.fmax_mhz = 512.5;
  cp.meta.critical_path_ns = 1.95;
  cp.meta.implement_seconds = 3.25;
  cp.meta.strategy = "aspect_1";
  cp.meta.device = "xcku5p_sim";
  return cp;
}

TEST(Checkpoint, SaveLoadRoundTrip) {
  const std::string path = testing::TempDir() + "/roundtrip.fdcp";
  const Checkpoint original = make_sample();
  save_checkpoint(path, original);
  const Checkpoint loaded = load_checkpoint(path);

  EXPECT_EQ(loaded.netlist.name(), original.netlist.name());
  ASSERT_EQ(loaded.netlist.cell_count(), original.netlist.cell_count());
  ASSERT_EQ(loaded.netlist.net_count(), original.netlist.net_count());
  for (CellId c = 0; c < original.netlist.cell_count(); ++c) {
    const Cell& a = original.netlist.cell(c);
    const Cell& b = loaded.netlist.cell(c);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.op, b.op);
    EXPECT_EQ(a.width, b.width);
    EXPECT_EQ(a.inputs, b.inputs);
    EXPECT_EQ(a.outputs, b.outputs);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.placement_locked, b.placement_locked);
    EXPECT_EQ(a.rom_id, b.rom_id);
  }
  for (NetId n = 0; n < original.netlist.net_count(); ++n) {
    EXPECT_EQ(loaded.netlist.net(n).driver, original.netlist.net(n).driver);
    EXPECT_EQ(loaded.netlist.net(n).sinks, original.netlist.net(n).sinks);
    EXPECT_EQ(loaded.netlist.net(n).routing_locked, original.netlist.net(n).routing_locked);
  }
  ASSERT_EQ(loaded.netlist.rom_count(), 1u);
  EXPECT_EQ(loaded.netlist.rom(0), original.netlist.rom(0));
  EXPECT_EQ(loaded.netlist.ports().size(), original.netlist.ports().size());

  EXPECT_EQ(loaded.phys.cell_loc, original.phys.cell_loc);
  ASSERT_EQ(loaded.phys.routes.size(), original.phys.routes.size());
  EXPECT_EQ(loaded.phys.routes[0].edges, original.phys.routes[0].edges);
  EXPECT_EQ(loaded.phys.routes[0].sink_delays_ns, original.phys.routes[0].sink_delays_ns);

  EXPECT_EQ(loaded.pblock, original.pblock);
  EXPECT_DOUBLE_EQ(loaded.meta.fmax_mhz, 512.5);
  EXPECT_EQ(loaded.meta.strategy, "aspect_1");
  EXPECT_EQ(loaded.meta.device, "xcku5p_sim");
}

TEST(Checkpoint, SimulatesIdenticallyAfterReload) {
  const std::string path = testing::TempDir() + "/sim.fdcp";
  save_checkpoint(path, make_sample());
  const Checkpoint loaded = load_checkpoint(path);
  EXPECT_TRUE(loaded.netlist.validate().empty());
}

TEST(Checkpoint, RejectsBadMagic) {
  const std::string path = testing::TempDir() + "/bad.fdcp";
  std::ofstream(path) << "this is not a checkpoint";
  EXPECT_THROW(load_checkpoint(path), std::runtime_error);
}

TEST(Checkpoint, RejectsTruncatedFile) {
  const std::string path = testing::TempDir() + "/trunc.fdcp";
  save_checkpoint(path, make_sample());
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW(load_checkpoint(path), std::runtime_error);
}

TEST(Checkpoint, RejectsMissingFile) {
  EXPECT_THROW(load_checkpoint("/nonexistent/nope.fdcp"), std::runtime_error);
}

TEST(PhysState, TranslateShiftsPlacementAndRoutes) {
  Checkpoint cp = make_sample();
  cp.phys.translate(10, -2);
  EXPECT_EQ(cp.phys.cell_loc[0], (TileCoord{13, 2}));
  EXPECT_EQ(cp.phys.routes[0].edges[0].first, (TileCoord{13, 2}));
  // Delays are translation-invariant and untouched.
  EXPECT_DOUBLE_EQ(cp.phys.routes[0].sink_delays_ns[0], 0.42);
}

TEST(PhysState, TranslateLeavesUnplacedCellsAlone) {
  PhysState phys;
  phys.cell_loc = {kUnplaced, TileCoord{1, 1}};
  phys.routes.resize(1);
  phys.translate(5, 5);
  EXPECT_EQ(phys.cell_loc[0], kUnplaced);
  EXPECT_EQ(phys.cell_loc[1], (TileCoord{6, 6}));
}

}  // namespace
}  // namespace fpgasim
