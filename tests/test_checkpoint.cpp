#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "lint/lint.h"
#include "netlist/checkpoint.h"
#include "synth/builder.h"

namespace fpgasim {
namespace {

Checkpoint make_sample() {
  NetlistBuilder b("sample");
  const NetId a = b.in_port("in_data", 16);
  const std::int32_t rom = b.rom({11, 22, 33, 44});
  const NetId data = b.bram(a, kInvalidNet, kInvalidNet, 4, 16, rom, "rom");
  b.out_port("out_data", b.ff(data, kInvalidNet, 16, "oreg"));
  Checkpoint cp;
  cp.netlist = std::move(b).take();
  cp.netlist.lock_all();
  cp.phys.resize_for(cp.netlist);
  cp.phys.cell_loc[0] = TileCoord{3, 4};
  cp.phys.cell_loc[1] = TileCoord{5, 6};
  cp.phys.routes[0].routed = true;
  cp.phys.routes[0].edges = {{TileCoord{3, 4}, TileCoord{4, 4}}};
  cp.phys.routes[0].sink_delays_ns = {0.42};
  cp.pblock = Pblock{2, 2, 8, 10};
  cp.meta.fmax_mhz = 512.5;
  cp.meta.critical_path_ns = 1.95;
  cp.meta.implement_seconds = 3.25;
  cp.meta.strategy = "aspect_1";
  cp.meta.device = "xcku5p_sim";
  return cp;
}

TEST(Checkpoint, SaveLoadRoundTrip) {
  const std::string path = testing::TempDir() + "/roundtrip.fdcp";
  const Checkpoint original = make_sample();
  save_checkpoint(path, original);
  const Checkpoint loaded = load_checkpoint(path);

  EXPECT_EQ(loaded.netlist.name(), original.netlist.name());
  ASSERT_EQ(loaded.netlist.cell_count(), original.netlist.cell_count());
  ASSERT_EQ(loaded.netlist.net_count(), original.netlist.net_count());
  for (CellId c = 0; c < original.netlist.cell_count(); ++c) {
    const Cell& a = original.netlist.cell(c);
    const Cell& b = loaded.netlist.cell(c);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.op, b.op);
    EXPECT_EQ(a.width, b.width);
    EXPECT_EQ(a.inputs, b.inputs);
    EXPECT_EQ(a.outputs, b.outputs);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.placement_locked, b.placement_locked);
    EXPECT_EQ(a.rom_id, b.rom_id);
  }
  for (NetId n = 0; n < original.netlist.net_count(); ++n) {
    EXPECT_EQ(loaded.netlist.net(n).driver, original.netlist.net(n).driver);
    EXPECT_EQ(loaded.netlist.net(n).sinks, original.netlist.net(n).sinks);
    EXPECT_EQ(loaded.netlist.net(n).routing_locked, original.netlist.net(n).routing_locked);
  }
  ASSERT_EQ(loaded.netlist.rom_count(), 1u);
  EXPECT_EQ(loaded.netlist.rom(0), original.netlist.rom(0));
  EXPECT_EQ(loaded.netlist.ports().size(), original.netlist.ports().size());

  EXPECT_EQ(loaded.phys.cell_loc, original.phys.cell_loc);
  ASSERT_EQ(loaded.phys.routes.size(), original.phys.routes.size());
  EXPECT_EQ(loaded.phys.routes[0].edges, original.phys.routes[0].edges);
  EXPECT_EQ(loaded.phys.routes[0].sink_delays_ns, original.phys.routes[0].sink_delays_ns);

  EXPECT_EQ(loaded.pblock, original.pblock);
  EXPECT_DOUBLE_EQ(loaded.meta.fmax_mhz, 512.5);
  EXPECT_EQ(loaded.meta.strategy, "aspect_1");
  EXPECT_EQ(loaded.meta.device, "xcku5p_sim");
}

TEST(Checkpoint, SimulatesIdenticallyAfterReload) {
  const std::string path = testing::TempDir() + "/sim.fdcp";
  save_checkpoint(path, make_sample());
  const Checkpoint loaded = load_checkpoint(path);
  EXPECT_TRUE(loaded.netlist.validate().empty());
}

TEST(Checkpoint, RejectsBadMagic) {
  const std::string path = testing::TempDir() + "/bad.fdcp";
  std::ofstream(path) << "this is not a checkpoint";
  EXPECT_THROW(load_checkpoint(path), std::runtime_error);
}

TEST(Checkpoint, RejectsTruncatedFile) {
  const std::string path = testing::TempDir() + "/trunc.fdcp";
  save_checkpoint(path, make_sample());
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW(load_checkpoint(path), std::runtime_error);
}

TEST(Checkpoint, RejectsMissingFile) {
  EXPECT_THROW(load_checkpoint("/nonexistent/nope.fdcp"), std::runtime_error);
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(Checkpoint, RejectsUnsupportedVersions) {
  const std::string path = testing::TempDir() + "/version.fdcp";
  save_checkpoint(path, make_sample());
  std::vector<char> bytes = slurp(path);
  for (const std::uint32_t version : {0u, 1u, 99u}) {
    std::memcpy(bytes.data() + 4, &version, sizeof(version));
    spit(path, bytes);
    EXPECT_THROW(load_checkpoint(path), std::runtime_error) << "version " << version;
  }
}

TEST(Checkpoint, RejectsTruncationAtEveryPrefix) {
  const std::string base = testing::TempDir() + "/prefix.fdcp";
  save_checkpoint(base, make_sample());
  const std::vector<char> bytes = slurp(base);
  ASSERT_GT(bytes.size(), 16u);
  // No strict prefix of a valid file may load: every length field is
  // bounds-checked and trailing truncation is caught by the final checks.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    spit(base, {bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(len)});
    EXPECT_THROW(load_checkpoint(base), std::runtime_error) << "prefix " << len;
  }
}

TEST(Checkpoint, RejectsHugeCountWithoutAllocating) {
  const std::string path = testing::TempDir() + "/huge.fdcp";
  save_checkpoint(path, make_sample());
  std::vector<char> bytes = slurp(path);
  // Netlist name is "sample": the cell count lives right after
  // magic(4) + version(4) + name length(4) + name(6).
  const std::size_t cell_count_at = 18;
  const std::uint32_t huge = 0xFFFFFFFFu;
  std::memcpy(bytes.data() + cell_count_at, &huge, sizeof(huge));
  spit(path, bytes);
  // Must reject via the bounds check, not by attempting a ~100 GB resize.
  EXPECT_THROW(load_checkpoint(path), std::runtime_error);
}

TEST(Checkpoint, RejectsHugeStringLength) {
  const std::string path = testing::TempDir() + "/hugestr.fdcp";
  save_checkpoint(path, make_sample());
  std::vector<char> bytes = slurp(path);
  const std::uint32_t huge = 0x7FFFFFFFu;
  std::memcpy(bytes.data() + 8, &huge, sizeof(huge));  // name length field
  spit(path, bytes);
  EXPECT_THROW(load_checkpoint(path), std::runtime_error);
}

TEST(Checkpoint, RejectsTrailingGarbage) {
  const std::string path = testing::TempDir() + "/trailing.fdcp";
  save_checkpoint(path, make_sample());
  std::vector<char> bytes = slurp(path);
  bytes.insert(bytes.end(), {'j', 'u', 'n', 'k'});
  spit(path, bytes);
  EXPECT_THROW(load_checkpoint(path), std::runtime_error);
}

TEST(Checkpoint, SingleByteCorruptionNeverYieldsInvalidNetlist) {
  const std::string path = testing::TempDir() + "/flip.fdcp";
  save_checkpoint(path, make_sample());
  const std::vector<char> pristine = slurp(path);
  // Deterministic fuzz sweep: flip one byte at a time across the file.
  // The loader must either reject the file or hand back a checkpoint
  // whose netlist still passes structural validation — never crash and
  // never return garbage.
  std::uint64_t lcg = 0x243F6A8885A308D3ull;
  for (std::size_t pos = 0; pos < pristine.size(); ++pos) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    std::vector<char> bytes = pristine;
    bytes[pos] = static_cast<char>(bytes[pos] ^ static_cast<char>(1u << (lcg >> 61)));
    spit(path, bytes);
    try {
      const Checkpoint loaded = load_checkpoint(path);
      EXPECT_TRUE(loaded.netlist.validate().empty()) << "flip at byte " << pos;
      EXPECT_EQ(loaded.phys.cell_loc.size(), loaded.netlist.cell_count());
      EXPECT_EQ(loaded.phys.routes.size(), loaded.netlist.net_count());
      // Whatever netlist survives loading, the analyzer must cope: lint is
      // a gate on load_dir, so a crash here is a denial of service on the
      // whole component database.
      const lint::LintReport report = lint::run(loaded.netlist);
      EXPECT_GE(report.rules_run(), 9u) << "flip at byte " << pos;
    } catch (const std::runtime_error&) {
      // Rejection is the expected outcome for most positions.
    }
  }
}

TEST(Checkpoint, PortPinsRoundTrip) {
  const std::string path = testing::TempDir() + "/pins.fdcp";
  Checkpoint cp = make_sample();
  cp.port_pins = {TileCoord{2, 5}, TileCoord{8, 7}};
  save_checkpoint(path, cp);
  const Checkpoint loaded = load_checkpoint(path);
  ASSERT_EQ(loaded.port_pins.size(), 2u);
  EXPECT_EQ(loaded.port_pins[0], (TileCoord{2, 5}));
  EXPECT_EQ(loaded.port_pins[1], (TileCoord{8, 7}));
}

TEST(Checkpoint, RejectsMisalignedPortPinPlan) {
  const std::string path = testing::TempDir() + "/badpins.fdcp";
  Checkpoint cp = make_sample();
  cp.port_pins = {TileCoord{2, 5}};  // two ports, one pin
  save_checkpoint(path, cp);
  EXPECT_THROW(load_checkpoint(path), std::runtime_error);
}

TEST(PhysState, TranslateShiftsPlacementAndRoutes) {
  Checkpoint cp = make_sample();
  cp.phys.translate(10, -2);
  EXPECT_EQ(cp.phys.cell_loc[0], (TileCoord{13, 2}));
  EXPECT_EQ(cp.phys.routes[0].edges[0].first, (TileCoord{13, 2}));
  // Delays are translation-invariant and untouched.
  EXPECT_DOUBLE_EQ(cp.phys.routes[0].sink_delays_ns[0], 0.42);
}

TEST(PhysState, TranslateLeavesUnplacedCellsAlone) {
  PhysState phys;
  phys.cell_loc = {kUnplaced, TileCoord{1, 1}};
  phys.routes.resize(1);
  phys.translate(5, 5);
  EXPECT_EQ(phys.cell_loc[0], kUnplaced);
  EXPECT_EQ(phys.cell_loc[1], (TileCoord{6, 6}));
}

}  // namespace
}  // namespace fpgasim
