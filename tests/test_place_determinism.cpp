// Determinism contract of the parallel multi-start macro placer: every
// thread pool width must produce byte-identical placements (offsets AND
// cost doubles), and the incremental cost kernel must be indistinguishable
// from the full-recompute evaluation path. Starts are keyed by index and
// the winner is selected by a (success, cost, start index) order, so
// scheduling cannot leak into the result (DESIGN.md section 11).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "place/macro_placer.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fpgasim {
namespace {

std::uint64_t bits(double v) {
  std::uint64_t u = 0;
  static_assert(sizeof(u) == sizeof(v));
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

struct Scenario {
  std::vector<MacroItem> items;
  std::vector<MacroNet> nets;
};

/// Dense synthetic scenario: mixed-size components, chain + skip + random
/// extra nets (fixed seed), the same shape bench_place stresses.
Scenario dense_scenario(int count) {
  Scenario s;
  const int widths[] = {6, 8, 10, 12, 14};
  const int heights[] = {12, 16, 20, 24};
  Rng rng(7);
  for (int i = 0; i < count; ++i) {
    const int w = widths[rng.next_below(5)];
    const int h = heights[rng.next_below(4)];
    s.items.push_back(MacroItem{"d" + std::to_string(i), Pblock{0, 0, w - 1, h - 1}});
    if (i > 0) s.nets.push_back(MacroNet{{i - 1, i}, 1.0});
    if (i >= 3 && i % 3 == 0) s.nets.push_back(MacroNet{{i - 3, i}, 1.0});
  }
  for (int e = 0; e < count; ++e) {
    const int a = static_cast<int>(rng.next_below(static_cast<std::uint32_t>(count)));
    const int b = static_cast<int>(rng.next_below(static_cast<std::uint32_t>(count)));
    if (a != b) s.nets.push_back(MacroNet{{a, b}, 1.0});
  }
  return s;
}

MacroPlaceResult place_with_pool(const Scenario& s, std::size_t width, bool incremental) {
  const Device device = make_xcku5p_sim();
  ThreadPool pool(width);
  MacroPlaceOptions opt;
  opt.pool = &pool;
  opt.incremental = incremental;
  return place_macros(device, s.items, s.nets, opt);
}

void expect_identical(const MacroPlaceResult& a, const MacroPlaceResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.success, b.success) << what;
  EXPECT_EQ(a.offsets, b.offsets) << what;
  EXPECT_EQ(bits(a.timing_cost), bits(b.timing_cost)) << what;
  EXPECT_EQ(bits(a.congestion_cost), bits(b.congestion_cost)) << what;
  EXPECT_EQ(a.stats.winner_start, b.stats.winner_start) << what;
}

TEST(PlaceDeterminism, ByteIdenticalAcrossPoolWidths) {
  const Scenario s = dense_scenario(24);
  const MacroPlaceResult serial = place_with_pool(s, 1, true);
  ASSERT_TRUE(serial.success) << serial.error;
  for (const std::size_t width : {std::size_t{2}, std::size_t{8}}) {
    const MacroPlaceResult wide = place_with_pool(s, width, true);
    expect_identical(serial, wide, "pool width " + std::to_string(width));
  }
}

TEST(PlaceDeterminism, GlobalPoolMatchesExplicitSerial) {
  // opt.pool == nullptr routes through ThreadPool::global(), whose width
  // follows FPGASIM_THREADS — the CI matrix runs this test at several
  // widths and every one must reproduce the explicit-serial placement.
  const Scenario s = dense_scenario(16);
  const Device device = make_xcku5p_sim();
  MacroPlaceOptions opt;
  const MacroPlaceResult global_pool = place_macros(device, s.items, s.nets, opt);
  const MacroPlaceResult serial = place_with_pool(s, 1, true);
  ASSERT_TRUE(global_pool.success) << global_pool.error;
  expect_identical(serial, global_pool, "global pool vs explicit width 1");
}

TEST(PlaceDeterminism, IncrementalMatchesFullRecompute) {
  const Scenario s = dense_scenario(24);
  const MacroPlaceResult incremental = place_with_pool(s, 1, true);
  const MacroPlaceResult full = place_with_pool(s, 1, false);
  ASSERT_TRUE(incremental.success) << incremental.error;
  expect_identical(incremental, full, "incremental vs full recompute");
  // The kernel's reason to exist: it must touch far fewer nets.
  EXPECT_LT(incremental.stats.nets_touched, full.stats.nets_touched / 4);
  EXPECT_EQ(incremental.stats.cost_evals, full.stats.cost_evals);
}

TEST(PlaceDeterminism, IncrementalMatchesFullAtEveryWidth) {
  const Scenario s = dense_scenario(16);
  const MacroPlaceResult reference = place_with_pool(s, 1, true);
  ASSERT_TRUE(reference.success) << reference.error;
  for (const std::size_t width : {std::size_t{2}, std::size_t{8}}) {
    const MacroPlaceResult full = place_with_pool(s, width, false);
    expect_identical(reference, full,
                     "full recompute at pool width " + std::to_string(width));
  }
}

}  // namespace
}  // namespace fpgasim
