#include <gtest/gtest.h>

#include "fabric/device.h"
#include "fabric/pblock.h"

namespace fpgasim {
namespace {

TEST(Device, Xcku5pCalibration) {
  const Device device = make_xcku5p_sim();
  // ~KU5P-class totals from the periodic 10-column fabric unit.
  EXPECT_EQ(device.total().lut, 171 * 240 * 8);
  EXPECT_EQ(device.total().ff, 171 * 240 * 16);
  EXPECT_EQ(device.total().dsp, 22 * 120);
  EXPECT_EQ(device.total().bram, 21 * 120);
  EXPECT_EQ(device.width(), 216);
  EXPECT_EQ(device.height(), 240);
  EXPECT_EQ(device.clock_region_rows(), 4);
}

TEST(Device, ColumnCounts) {
  const Device device = make_xcku5p_sim();
  int clb = 0, dsp = 0, bram = 0, io = 0;
  for (int x = 0; x < device.width(); ++x) {
    switch (device.column_type(x)) {
      case ColumnType::kClb: ++clb; break;
      case ColumnType::kDsp: ++dsp; break;
      case ColumnType::kBram: ++bram; break;
      case ColumnType::kIo: ++io; break;
    }
  }
  EXPECT_EQ(clb, 171);
  EXPECT_EQ(dsp, 22);
  EXPECT_EQ(bram, 21);
  EXPECT_EQ(io, 2);
}

TEST(Device, ColumnPatternIsPeriodic) {
  // Relocation depends on signatures repeating every fabric unit.
  const Device device = make_xcku5p_sim();
  int matching_units = 0;
  for (int unit = 1; unit < 21; ++unit) {
    bool same = true;
    for (int i = 0; i < 10; ++i) {
      same &= device.column_type(unit * 10 + i) == device.column_type(i);
    }
    matching_units += same;
  }
  EXPECT_GE(matching_units, 18);  // all but the two IO-bearing units
}

TEST(Device, TileCapacityByColumnType) {
  const Device device = make_tiny_device();
  for (int x = 0; x < device.width(); ++x) {
    for (int y = 0; y < device.height(); ++y) {
      const ResourceVec cap = device.tile_capacity(x, y);
      switch (device.column_type(x)) {
        case ColumnType::kClb:
          EXPECT_EQ(cap.lut, 8);
          EXPECT_EQ(cap.ff, 16);
          EXPECT_EQ(cap.carry, 1);
          break;
        case ColumnType::kDsp:
          EXPECT_EQ(cap.dsp, y % 2 == 0 ? 1 : 0);
          EXPECT_EQ(cap.lut, 0);
          break;
        case ColumnType::kBram:
          EXPECT_EQ(cap.bram, y % 2 == 0 ? 1 : 0);
          break;
        case ColumnType::kIo:
          EXPECT_TRUE(cap.is_zero());
          break;
      }
    }
  }
}

TEST(Device, DiscontinuityCounting) {
  const Device device = make_xcku5p_sim();  // IO columns at x = 75 and 145
  EXPECT_EQ(device.discontinuities_between(0, device.width()), 2);
  EXPECT_EQ(device.discontinuities_between(0, 75), 0);
  EXPECT_EQ(device.discontinuities_between(0, 76), 1);
  EXPECT_EQ(device.discontinuities_between(76, 145), 0);
  EXPECT_EQ(device.discontinuities_between(146, 76), 1);  // order-insensitive
}

TEST(Device, CompatibleOffsetsIncludeIdentityAndPreserveSignature) {
  const Device device = make_xcku5p_sim();
  const int x0 = 10, w = 9;
  const auto offsets = device.compatible_column_offsets(x0, w);
  ASSERT_FALSE(offsets.empty());
  EXPECT_NE(std::find(offsets.begin(), offsets.end(), 0), offsets.end());
  for (int dx : offsets) {
    for (int i = 0; i < w; ++i) {
      EXPECT_EQ(device.column_type(x0 + dx + i), device.column_type(x0 + i));
    }
  }
}

TEST(Device, ResourceVecArithmetic) {
  ResourceVec a{1, 2, 3, 4, 5}, b{10, 20, 30, 40, 50};
  EXPECT_TRUE(a.fits_in(b));
  EXPECT_FALSE(b.fits_in(a));
  EXPECT_EQ((a + b).lut, 11);
  EXPECT_EQ((b - a).dsp, 36);
  EXPECT_EQ((a * 3).bram, 15);
  EXPECT_FALSE(a.is_zero());
  EXPECT_TRUE(ResourceVec{}.is_zero());
}

TEST(Pblock, ResourcesMatchBruteForce) {
  const Device device = make_tiny_device();
  const Pblock block{2, 3, 9, 14};
  ResourceVec expected;
  for (int x = block.x0; x <= block.x1; ++x) {
    for (int y = block.y0; y <= block.y1; ++y) expected += device.tile_capacity(x, y);
  }
  EXPECT_EQ(pblock_resources(device, block), expected);
}

TEST(Pblock, GeometryHelpers) {
  const Pblock block{2, 4, 5, 9};
  EXPECT_EQ(block.width(), 4);
  EXPECT_EQ(block.height(), 6);
  EXPECT_EQ(block.area(), 24);
  EXPECT_TRUE(block.contains(2, 4));
  EXPECT_FALSE(block.contains(6, 4));
  EXPECT_TRUE(block.overlaps(Pblock{5, 9, 7, 12}));
  EXPECT_FALSE(block.overlaps(Pblock{6, 4, 8, 9}));
  EXPECT_EQ(block.translated(1, -1), (Pblock{3, 3, 6, 8}));
}

TEST(Pblock, FindMinPblockSatisfiesNeed) {
  const Device device = make_xcku5p_sim();
  const ResourceVec need{.lut = 500, .ff = 900, .carry = 60, .dsp = 8, .bram = 12};
  const auto block = find_min_pblock(device, need);
  ASSERT_TRUE(block.has_value());
  EXPECT_TRUE(need.fits_in(pblock_resources(device, *block)));
}

TEST(Pblock, FindMinPblockPrefersSmallArea) {
  const Device device = make_xcku5p_sim();
  const ResourceVec tiny_need{.lut = 16, .ff = 16};
  const auto block = find_min_pblock(device, tiny_need);
  ASSERT_TRUE(block.has_value());
  EXPECT_LE(block->area(), 64);  // a couple of CLB tiles suffice
}

TEST(Pblock, FindMinPblockRejectsImpossibleNeed) {
  const Device device = make_tiny_device();
  const ResourceVec need{.dsp = 1000000};
  EXPECT_FALSE(find_min_pblock(device, need).has_value());
}

TEST(Pblock, RelocationOffsetsStayLegal) {
  const Device device = make_xcku5p_sim();
  const ResourceVec need{.lut = 200, .ff = 300, .dsp = 4, .bram = 4};
  const auto block = find_min_pblock(device, need);
  ASSERT_TRUE(block.has_value());
  const auto anchors = relocation_offsets(device, *block);
  EXPECT_GT(anchors.size(), 10u);  // columnar replication gives many sites
  for (const auto& [dx, dy] : anchors) {
    EXPECT_EQ(dy % 2, 0);  // site parity preserved
    const Pblock moved = block->translated(dx, dy);
    EXPECT_GE(moved.x0, 0);
    EXPECT_GE(moved.y0, 0);
    EXPECT_LT(moved.x1, device.width());
    EXPECT_LT(moved.y1, device.height());
    // Relocated pblock has identical capacity (column compatibility).
    EXPECT_EQ(pblock_resources(device, moved), pblock_resources(device, *block));
  }
}

}  // namespace
}  // namespace fpgasim
