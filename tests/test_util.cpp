#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <thread>

#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace fpgasim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextIntCoversInclusiveRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // roughly uniform
}

TEST(Rng, ReseedRestartsSequence) {
  Rng rng(5);
  const auto first = rng();
  rng.reseed(5);
  EXPECT_EQ(rng(), first);
}

TEST(Table, RendersHeaderAndRows) {
  Table t("demo");
  t.set_header({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t("csv");
  t.set_header({"x"});
  t.add_row({"a,b\"c"});
  EXPECT_EQ(t.to_csv(), "x\n\"a,b\"\"c\"\n");
}

TEST(Table, DropsCellsBeyondHeader) {
  Table t("wide");
  t.set_header({"only"});
  t.add_row({"kept", "dropped"});
  EXPECT_EQ(t.to_string().find("dropped"), std::string::npos);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(Table::fmt(1.2345, 2), "1.23");
  EXPECT_EQ(Table::pct(0.695, 1), "69.5%");
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, EnvVariableControlsAutomaticWidth) {
  setenv("FPGASIM_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::default_width(), 3u);
  ThreadPool pool{ThreadPoolOptions{}};
  EXPECT_EQ(pool.size(), 3u);
  setenv("FPGASIM_THREADS", "garbage", 1);
  EXPECT_GE(ThreadPool::default_width(), 1u);  // unparsable: fall back
  unsetenv("FPGASIM_THREADS");
}

TEST(ThreadPool, ExplicitWidthBeatsEnvironment) {
  setenv("FPGASIM_THREADS", "7", 1);
  ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  unsetenv("FPGASIM_THREADS");
}

TEST(ThreadPool, IdleWorkerStealsFromBusyWorkerQueue) {
  // External submits round-robin across the two deques, so some quick
  // tasks land behind the blocker. They can only run if the other worker
  // steals them — and the blocker is only released once they all ran.
  ThreadPool pool(2);
  std::promise<void> unblock;
  std::shared_future<void> gate = unblock.get_future().share();
  std::vector<std::future<void>> futures;
  futures.push_back(pool.submit([gate] { gate.wait(); }));
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.submit([&done] { done.fetch_add(1); }));
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (done.load() < 16 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(done.load(), 16) << "quick tasks stuck behind the blocked worker";
  unblock.set_value();
  for (auto& f : futures) f.get();
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(500);
  parallel_for(0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  parallel_for(5, 5, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ParallelFor, WidthOnePoolRunsInOrderOnCallingThread) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  const std::thread::id caller = std::this_thread::get_id();
  parallel_for(
      3, 9,
      [&](std::size_t i) {
        order.push_back(i);
        EXPECT_EQ(std::this_thread::get_id(), caller);
      },
      &pool);
  EXPECT_EQ(order, (std::vector<std::size_t>{3, 4, 5, 6, 7, 8}));
}

TEST(ParallelFor, NestedCallFromWorkerRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  parallel_for(
      0, 4,
      [&](std::size_t) {
        parallel_for(0, 8, [&](std::size_t) { total.fetch_add(1); }, &pool);
      },
      &pool);
  EXPECT_EQ(total.load(), 32);
}

TEST(ParallelFor, RethrowsWorkerException) {
  EXPECT_THROW(parallel_for(0, 16,
                            [](std::size_t i) {
                              if (i == 7) throw std::runtime_error("bad");
                            }),
               std::runtime_error);
}

TEST(Stopwatch, MeasuresElapsedNonNegative) {
  Stopwatch sw;
  EXPECT_GE(sw.seconds(), 0.0);
  sw.restart();
  EXPECT_GE(sw.milliseconds(), 0.0);
}

}  // namespace
}  // namespace fpgasim
