#include <gtest/gtest.h>

#include <vector>

#include "sim/eval.h"
#include "sim/fixed.h"
#include "sim/simulator.h"
#include "synth/builder.h"
#include "util/rng.h"

namespace fpgasim {
namespace {

struct Op2Case {
  LutOp op;
  std::uint64_t a, b, expected;
  std::uint16_t width;
};

class LutOps : public ::testing::TestWithParam<Op2Case> {};

TEST_P(LutOps, Evaluates) {
  const Op2Case& tc = GetParam();
  NetlistBuilder b("lut");
  const NetId a = b.in_port("a", tc.width);
  const NetId c = b.in_port("b", tc.width);
  b.out_port("q", b.op2(tc.op, a, c, tc.op == LutOp::kEq || tc.op == LutOp::kLtU ? 1 : tc.width));
  const Netlist nl = std::move(b).take();
  Simulator sim(nl);
  sim.set_input("a", tc.a);
  sim.set_input("b", tc.b);
  EXPECT_EQ(sim.get_output("q"), tc.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Table, LutOps,
    ::testing::Values(Op2Case{LutOp::kAnd, 0b1100, 0b1010, 0b1000, 4},
                      Op2Case{LutOp::kOr, 0b1100, 0b1010, 0b1110, 4},
                      Op2Case{LutOp::kXor, 0b1100, 0b1010, 0b0110, 4},
                      Op2Case{LutOp::kEq, 7, 7, 1, 8}, Op2Case{LutOp::kEq, 7, 8, 0, 8},
                      Op2Case{LutOp::kLtU, 3, 9, 1, 8}, Op2Case{LutOp::kLtU, 9, 3, 0, 8},
                      Op2Case{LutOp::kPass, 0x5A, 0, 0x5A, 8}));

TEST(Simulator, NotAndMux) {
  NetlistBuilder b("m");
  const NetId a = b.in_port("a", 4);
  const NetId c = b.in_port("b", 4);
  const NetId sel = b.in_port("sel", 1);
  b.out_port("mux", b.mux2(a, c, sel, 4));
  b.out_port("inv", b.not1(a, 4));
  const Netlist nl = std::move(b).take();
  Simulator sim(nl);
  sim.set_input("a", 3);
  sim.set_input("b", 12);
  sim.set_input("sel", 0);
  EXPECT_EQ(sim.get_output("mux"), 3u);
  EXPECT_EQ(sim.get_output("inv"), 12u);  // ~3 masked to 4 bits
  sim.set_input("sel", 1);
  EXPECT_EQ(sim.get_output("mux"), 12u);
}

TEST(Simulator, AddWrapsSubWorks) {
  NetlistBuilder b("a");
  const NetId a = b.in_port("a", 8);
  const NetId c = b.in_port("b", 8);
  b.out_port("sum", b.add(a, c, 8));
  b.out_port("diff", b.sub(a, c, 8));
  const Netlist nl = std::move(b).take();
  Simulator sim(nl);
  sim.set_input("a", 250);
  sim.set_input("b", 10);
  EXPECT_EQ(sim.get_output("sum"), 4u);  // wraps mod 256
  EXPECT_EQ(sim.get_output("diff"), 240u);
}

TEST(Simulator, SignedMaxAndRelu) {
  NetlistBuilder b("mr");
  const NetId a = b.in_port("a", 16);
  const NetId c = b.in_port("b", 16);
  b.out_port("max", b.smax(a, c, 16));
  b.out_port("relu", b.relu(a, 16));
  const Netlist nl = std::move(b).take();
  Simulator sim(nl);
  sim.set_input("a", static_cast<std::uint16_t>(-5));
  sim.set_input("b", 3);
  EXPECT_EQ(sim.get_output("max"), 3u);
  EXPECT_EQ(sim.get_output("relu"), 0u);
  sim.set_input("a", 7);
  EXPECT_EQ(sim.get_output("max"), 7u);
  EXPECT_EQ(sim.get_output("relu"), 7u);
}

TEST(Simulator, DspMultiplyShiftSaturate) {
  NetlistBuilder b("d");
  const NetId a = b.in_port("a", 16);
  const NetId c = b.in_port("b", 16);
  const NetId acc = b.in_port("c", 16);
  b.out_port("p", b.dsp(a, c, acc, kFixedFrac, 0, 16));
  const Netlist nl = std::move(b).take();
  Simulator sim(nl);
  auto drive = [&](double x, double y, double z) {
    sim.set_input("a", static_cast<std::uint16_t>(Fixed16::from_double(x).raw));
    sim.set_input("b", static_cast<std::uint16_t>(Fixed16::from_double(y).raw));
    sim.set_input("c", static_cast<std::uint16_t>(Fixed16::from_double(z).raw));
    return Fixed16{static_cast<std::int16_t>(
        static_cast<std::uint16_t>(sim.get_output("p")))};
  };
  EXPECT_DOUBLE_EQ(drive(2.0, 3.0, 1.0).to_double(), 7.0);
  EXPECT_DOUBLE_EQ(drive(-2.0, 3.0, 0.0).to_double(), -6.0);
  EXPECT_EQ(drive(120.0, 120.0, 0.0).raw, INT16_MAX);  // saturation
}

TEST(Simulator, DspPipelineStagesDelayOutput) {
  NetlistBuilder b("dp");
  const NetId a = b.in_port("a", 16);
  b.out_port("p", b.dsp(a, b.constant(1 << kFixedFrac, 16), kInvalidNet, kFixedFrac, 2, 16));
  const Netlist nl = std::move(b).take();
  Simulator sim(nl);
  sim.set_input("a", 55);
  EXPECT_EQ(sim.get_output("p"), 0u);  // not yet through the pipe
  sim.step();
  EXPECT_EQ(sim.get_output("p"), 0u);
  sim.step();
  EXPECT_EQ(sim.get_output("p"), 55u);
}

TEST(Simulator, FfRespectsClockEnable) {
  NetlistBuilder b("ff");
  const NetId d = b.in_port("d", 8);
  const NetId ce = b.in_port("ce", 1);
  b.out_port("q", b.ff(d, ce, 8));
  const Netlist nl = std::move(b).take();
  Simulator sim(nl);
  sim.set_input("d", 42);
  sim.set_input("ce", 0);
  sim.step();
  EXPECT_EQ(sim.get_output("q"), 0u);  // held
  sim.set_input("ce", 1);
  sim.step();
  EXPECT_EQ(sim.get_output("q"), 42u);
  sim.set_input("d", 17);
  sim.set_input("ce", 0);
  sim.step();
  EXPECT_EQ(sim.get_output("q"), 42u);  // still held
}

TEST(Simulator, SrlDelaysByDepth) {
  NetlistBuilder b("srl");
  const NetId d = b.in_port("d", 8);
  b.out_port("q", b.srl(d, kInvalidNet, 5, 8));
  const Netlist nl = std::move(b).take();
  Simulator sim(nl);
  for (int i = 1; i <= 12; ++i) {
    sim.set_input("d", static_cast<std::uint64_t>(i));
    sim.step();
    const std::uint64_t expected = i >= 5 ? static_cast<std::uint64_t>(i - 4) : 0u;
    EXPECT_EQ(sim.get_output("q"), expected) << "cycle " << i;
  }
}

TEST(Simulator, BramRomSyncRead) {
  NetlistBuilder b("rom");
  const NetId addr = b.in_port("addr", 8);
  const std::int32_t rom = b.rom({10, 20, 30, 40});
  b.out_port("q", b.bram(addr, kInvalidNet, kInvalidNet, 4, 16, rom));
  const Netlist nl = std::move(b).take();
  Simulator sim(nl);
  sim.set_input("addr", 2);
  EXPECT_EQ(sim.get_output("q"), 0u);  // synchronous: not yet
  sim.step();
  EXPECT_EQ(sim.get_output("q"), 30u);
  sim.set_input("addr", 0);
  sim.step();
  EXPECT_EQ(sim.get_output("q"), 10u);
}

TEST(Simulator, BramDualPortReadWrite) {
  NetlistBuilder b("ram");
  const NetId waddr = b.in_port("waddr", 8);
  const NetId wdata = b.in_port("wdata", 16);
  const NetId we = b.in_port("we", 1);
  const NetId raddr = b.in_port("raddr", 8);
  b.out_port("q", b.bram(waddr, wdata, we, 8, 16, -1, "ram", raddr));
  const Netlist nl = std::move(b).take();
  Simulator sim(nl);
  sim.set_input("waddr", 3);
  sim.set_input("wdata", 777);
  sim.set_input("we", 1);
  sim.set_input("raddr", 3);
  sim.step();  // write lands; read-first returns the old value this cycle
  EXPECT_EQ(sim.get_output("q"), 0u);
  sim.set_input("we", 0);
  sim.step();
  EXPECT_EQ(sim.get_output("q"), 777u);
}

TEST(Simulator, CounterWrapsAtModulus) {
  NetlistBuilder b("ctr");
  const NetId en = b.in_port("en", 1);
  const auto ctr = b.counter(5, en, 8);
  b.out_port("v", ctr.value);
  b.out_port("w", ctr.wrap);
  const Netlist nl = std::move(b).take();
  Simulator sim(nl);
  sim.set_input("en", 1);
  for (int cycle = 0; cycle < 12; ++cycle) {
    EXPECT_EQ(sim.get_output("v"), static_cast<std::uint64_t>(cycle % 5));
    EXPECT_EQ(sim.get_output("w"), cycle % 5 == 4 ? 1u : 0u);
    sim.step();
  }
}

TEST(Simulator, AccumAddsAndClears) {
  NetlistBuilder b("acc");
  const NetId step = b.in_port("step", 8);
  const NetId en = b.in_port("en", 1);
  const NetId clear = b.in_port("clr", 1);
  b.out_port("v", b.accum(step, en, clear, 8));
  const Netlist nl = std::move(b).take();
  Simulator sim(nl);
  sim.set_input("step", 3);
  sim.set_input("en", 1);
  sim.set_input("clr", 0);
  sim.run(4);
  EXPECT_EQ(sim.get_output("v"), 12u);
  sim.set_input("clr", 1);
  sim.step();
  EXPECT_EQ(sim.get_output("v"), 0u);
}

TEST(Simulator, MuxnSelectsAcrossTree) {
  NetlistBuilder b("muxn");
  const NetId sel = b.in_port("sel", 3);
  std::vector<NetId> inputs;
  for (int i = 0; i < 5; ++i) inputs.push_back(b.constant(100 + i, 16));
  b.out_port("q", b.muxn(inputs, sel, 16));
  const Netlist nl = std::move(b).take();
  Simulator sim(nl);
  for (int i = 0; i < 5; ++i) {
    sim.set_input("sel", static_cast<std::uint64_t>(i));
    EXPECT_EQ(sim.get_output("q"), static_cast<std::uint64_t>(100 + i)) << i;
  }
}

class MulConstAdd : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MulConstAdd, MatchesArithmetic) {
  const std::uint64_t k = GetParam();
  NetlistBuilder b("mca");
  const NetId x = b.in_port("x", 24);
  const NetId addend = b.in_port("a", 24);
  b.out_port("q", b.mul_const_add(x, k, addend, 24));
  const Netlist nl = std::move(b).take();
  Simulator sim(nl);
  for (std::uint64_t x_val : {0ULL, 1ULL, 7ULL, 100ULL, 4095ULL}) {
    sim.set_input("x", x_val);
    sim.set_input("a", 13);
    EXPECT_EQ(sim.get_output("q"), mask_width(x_val * k + 13, 24)) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Constants, MulConstAdd,
                         ::testing::Values(0, 1, 2, 3, 5, 28, 64, 196, 784, 1024));

TEST(Simulator, MultiOutputCombCellDrivesEveryOutput) {
  // Regression: settle() used to write only outputs[0], so any further
  // output pin of a multi-output cell stayed stuck at 0 forever (the
  // simulator sibling of the STA multi-output bug). Semantics: every
  // connected output pin carries the cell's single evaluated value.
  Netlist nl("mo");
  const NetId a = nl.add_net(8, "a");
  nl.add_port({"a", PortDir::kInput, 8, a});
  const NetId q0 = nl.add_net(8, "q0");
  const NetId q1 = nl.add_net(8, "q1");
  Cell pass;
  pass.type = CellType::kLut;
  pass.op = LutOp::kPass;
  pass.width = 8;
  const CellId c = nl.add_cell(std::move(pass));
  nl.connect_input(c, 0, a);
  nl.connect_output(c, 0, q0);
  nl.connect_output(c, 1, q1);
  nl.add_port({"q0", PortDir::kOutput, 8, q0});
  nl.add_port({"q1", PortDir::kOutput, 8, q1});
  ASSERT_TRUE(nl.validate().empty());

  Simulator sim(nl);
  sim.set_input("a", 0x5c);
  EXPECT_EQ(sim.get_output("q0"), 0x5cu);
  EXPECT_EQ(sim.get_output("q1"), 0x5cu);  // was stuck at 0
}

TEST(Simulator, MultiOutputSequentialCellDrivesEveryOutput) {
  // step() phase 2 had the same outputs[0]-only commit for FF/SRL/BRAM/DSP.
  Netlist nl("mos");
  const NetId d = nl.add_net(8, "d");
  nl.add_port({"d", PortDir::kInput, 8, d});
  const NetId q0 = nl.add_net(8, "q0");
  const NetId q1 = nl.add_net(8, "q1");
  Cell ff;
  ff.type = CellType::kFf;
  ff.width = 8;
  const CellId c = nl.add_cell(std::move(ff));
  nl.connect_input(c, 0, d);
  nl.connect_output(c, 0, q0);
  nl.connect_output(c, 1, q1);
  nl.add_port({"q0", PortDir::kOutput, 8, q0});
  nl.add_port({"q1", PortDir::kOutput, 8, q1});
  ASSERT_TRUE(nl.validate().empty());

  Simulator sim(nl);
  sim.set_input("d", 99);
  sim.step();
  EXPECT_EQ(sim.get_output("q0"), 99u);
  EXPECT_EQ(sim.get_output("q1"), 99u);  // was stuck at 0
}

TEST(Simulator, SetInputSettlesLazily) {
  // Regression: set_input() used to re-settle the whole combinational
  // fabric on every call, so driving a k-port interface cost O(k * cells)
  // per cycle. Settling is now deferred to the first observation.
  NetlistBuilder b("lazy");
  const NetId a = b.in_port("a", 16);
  const NetId c = b.in_port("b", 16);
  const NetId s = b.in_port("sel", 1);
  b.out_port("q", b.mux2(b.add(a, c, 16), b.sub(a, c, 16), s, 16));
  const Netlist nl = std::move(b).take();
  Simulator sim(nl);
  const std::size_t settles_before = sim.settles();
  for (int i = 0; i < 100; ++i) sim.set_input("a", static_cast<std::uint64_t>(i));
  sim.set_input("b", 7);
  sim.set_input("sel", 0);
  // 102 set_input calls, no observation yet: not a single settle.
  EXPECT_EQ(sim.settles(), settles_before);
  EXPECT_EQ(sim.get_output("q"), 106u);  // settled exactly once, on read
  EXPECT_EQ(sim.settles(), settles_before + 1);
  EXPECT_EQ(sim.get_output("q"), 106u);  // clean: no re-settle
  EXPECT_EQ(sim.settles(), settles_before + 1);
  sim.set_input("sel", 1);
  EXPECT_EQ(sim.get_output("q"), 92u);  // observable semantics unchanged
}

TEST(Simulator, LazySettleTraceMatchesStepByStepObservation) {
  // The lazy path must produce the identical trace whether outputs are
  // observed every cycle (forcing a settle each time, as the eager
  // simulator did) or only at the end.
  const auto build = [] {
    NetlistBuilder b("trace");
    const NetId d = b.in_port("d", 8);
    const NetId en = b.in_port("en", 1);
    b.out_port("acc", b.accum(d, en, b.zero(1), 8));
    b.out_port("dly", b.srl(d, kInvalidNet, 3, 8));
    return std::move(b).take();
  };
  const Netlist nl_a = build();
  const Netlist nl_b = build();
  Simulator observed(nl_a);
  Simulator lazy(nl_b);
  std::vector<std::uint64_t> trace;
  Rng rng(404);
  for (int cycle = 0; cycle < 50; ++cycle) {
    const std::uint64_t d = rng.next_below(256);
    const std::uint64_t en = rng.next_below(2);
    observed.set_input("d", d);
    observed.set_input("en", en);
    trace.push_back(observed.get_output("acc"));  // observe pre-edge
    observed.step();
    trace.push_back(observed.get_output("acc"));
    trace.push_back(observed.get_output("dly"));

    lazy.set_input("d", d);
    lazy.set_input("en", en);
    EXPECT_EQ(lazy.get_output("acc"), trace[trace.size() - 3]) << "cycle " << cycle;
    lazy.step();
  }
  // Final state identical even though `lazy` was only observed pre-edge.
  EXPECT_EQ(lazy.get_output("acc"), trace[trace.size() - 2]);
  EXPECT_EQ(lazy.get_output("dly"), trace.back());
}

TEST(Simulator, ClampSignedIsDefinedAtWideWidths) {
  // Regression: clamp_signed computed 1LL << 63 at width 64 (UB, caught by
  // UBSan) and its `lo` negation overflowed. Widths >= 64 saturate to the
  // full int64 range, i.e. pass through.
  using sim_detail::clamp_signed;
  EXPECT_EQ(clamp_signed(0, 64), 0);
  EXPECT_EQ(clamp_signed(INT64_MAX, 64), INT64_MAX);
  EXPECT_EQ(clamp_signed(INT64_MIN, 64), INT64_MIN);
  const std::int64_t hi63 = (1LL << 62) - 1;
  EXPECT_EQ(clamp_signed(INT64_MAX, 63), hi63);
  EXPECT_EQ(clamp_signed(INT64_MIN, 63), -hi63 - 1);
  EXPECT_EQ(clamp_signed(-5, 63), -5);
  EXPECT_EQ(clamp_signed(127, 8), 127);
  EXPECT_EQ(clamp_signed(128, 8), 127);
  EXPECT_EQ(clamp_signed(-129, 8), -128);
}

TEST(Simulator, DspAtWidth63And64IsDefined) {
  for (const std::uint16_t width : {std::uint16_t{63}, std::uint16_t{64}}) {
    NetlistBuilder b("dw");
    const NetId a = b.in_port("a", width);
    const NetId c = b.in_port("b", width);
    b.out_port("p", b.dsp(a, c, kInvalidNet, 0, 0, width));
    const Netlist nl = std::move(b).take();
    Simulator sim(nl);
    sim.set_input("a", 3);
    sim.set_input("b", 5);
    EXPECT_EQ(sim.get_output("p"), 15u) << "width " << width;
  }
}

TEST(Simulator, DetectsCombinationalLoop) {
  Netlist nl("loop");
  const NetId n1 = nl.add_net(1);
  const NetId n2 = nl.add_net(1);
  Cell c1;
  c1.type = CellType::kLut;
  c1.op = LutOp::kNot;
  const CellId a = nl.add_cell(std::move(c1));
  Cell c2;
  c2.type = CellType::kLut;
  c2.op = LutOp::kNot;
  const CellId b2 = nl.add_cell(std::move(c2));
  nl.connect_input(a, 0, n2);
  nl.connect_output(a, 0, n1);
  nl.connect_input(b2, 0, n1);
  nl.connect_output(b2, 0, n2);
  EXPECT_THROW(Simulator sim(nl), std::runtime_error);
}

TEST(Simulator, UnknownPortThrows) {
  NetlistBuilder b("p");
  b.out_port("q", b.constant(1, 1));
  const Netlist nl = std::move(b).take();
  Simulator sim(nl);
  EXPECT_THROW(sim.set_input("nope", 1), std::runtime_error);
  EXPECT_THROW(sim.get_output("nope"), std::runtime_error);
}

}  // namespace
}  // namespace fpgasim
