// FIFO, input streamer and MMU components: the Fig. 5 communication
// interface pieces.
#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "stream_harness.h"
#include "synth/layers.h"

namespace fpgasim {
namespace {

using testhelpers::random_params;

TEST(StreamFifo, PreservesOrderThroughFillAndDrain) {
  const Netlist nl = make_stream_fifo("fifo_t", 4);
  Simulator sim(nl);
  // Fill completely with downstream blocked.
  sim.set_input("out_ready", 0);
  sim.set_input("in_valid", 1);
  for (int i = 1; i <= 4; ++i) {
    EXPECT_EQ(sim.get_output("in_ready"), 1u);
    sim.set_input("in_data", static_cast<std::uint64_t>(i * 11));
    sim.step();
  }
  EXPECT_EQ(sim.get_output("in_ready"), 0u);  // full
  sim.set_input("in_valid", 0);
  // Drain.
  sim.set_input("out_ready", 1);
  for (int i = 1; i <= 4; ++i) {
    EXPECT_EQ(sim.get_output("out_valid"), 1u);
    EXPECT_EQ(sim.get_output("out_data"), static_cast<std::uint64_t>(i * 11));
    sim.step();
  }
  EXPECT_EQ(sim.get_output("out_valid"), 0u);  // empty
}

TEST(StreamFifo, SimultaneousPushPopKeepsCount) {
  const Netlist nl = make_stream_fifo("fifo_t", 4);
  Simulator sim(nl);
  sim.set_input("in_valid", 1);
  sim.set_input("out_ready", 1);
  // Prime one element.
  sim.set_input("in_data", 5);
  sim.step();
  // Now push and pop every cycle: out should track input with 1 lag.
  for (int i = 0; i < 20; ++i) {
    sim.set_input("in_data", static_cast<std::uint64_t>(100 + i));
    ASSERT_EQ(sim.get_output("out_valid"), 1u);
    const std::uint64_t head = sim.get_output("out_data");
    if (i == 0) {
      EXPECT_EQ(head, 5u);
    } else {
      EXPECT_EQ(head, static_cast<std::uint64_t>(100 + i - 1));
    }
    sim.step();
  }
}

TEST(StreamFifo, EmptyFifoHasNoValidOutput) {
  const Netlist nl = make_stream_fifo("fifo_t", 2);
  Simulator sim(nl);
  sim.set_input("out_ready", 1);
  sim.set_input("in_valid", 0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(sim.get_output("out_valid"), 0u);
    sim.step();
  }
}

TEST(InputStreamer, PlaysImageInOrder) {
  const auto image = random_params(10, 7);
  const Netlist nl = make_input_streamer("src", image);
  Simulator sim(nl);
  sim.set_input("out_ready", 1);
  std::vector<std::int16_t> got;
  for (int cycle = 0; cycle < 12 && got.size() < image.size(); ++cycle) {
    sim.step();
    if (sim.get_output("out_valid") == 1) {
      got.push_back(static_cast<std::int16_t>(
          static_cast<std::uint16_t>(sim.get_output("out_data"))));
    }
  }
  ASSERT_EQ(got.size(), image.size());
  for (std::size_t i = 0; i < image.size(); ++i) EXPECT_EQ(got[i], image[i].raw);
}

TEST(InputStreamer, DoesNotDropWordsAcrossBackpressure) {
  // The prefetch register must hold the current word while ready is low.
  const auto image = random_params(6, 9);
  const Netlist nl = make_input_streamer("src", image);
  Simulator sim(nl);
  std::vector<std::int16_t> got;
  int cycle = 0;
  while (got.size() < image.size() && cycle < 100) {
    // Toggle ready on and off to stress the handshake.
    const bool ready = (cycle / 3) % 2 == 0;
    sim.set_input("out_ready", ready ? 1 : 0);
    const bool valid = sim.get_output("out_valid") == 1;
    if (ready && valid) {
      got.push_back(static_cast<std::int16_t>(
          static_cast<std::uint16_t>(sim.get_output("out_data"))));
    }
    sim.step();
    ++cycle;
  }
  ASSERT_EQ(got.size(), image.size());
  for (std::size_t i = 0; i < image.size(); ++i) {
    EXPECT_EQ(got[i], image[i].raw) << "word " << i;
  }
}

TEST(InputStreamer, LoopsAfterOneImage) {
  const auto image = random_params(4, 10);
  const Netlist nl = make_input_streamer("src", image);
  Simulator sim(nl);
  sim.set_input("out_ready", 1);
  std::vector<std::int16_t> got;
  for (int cycle = 0; cycle < 10; ++cycle) {
    sim.step();
    if (sim.get_output("out_valid") == 1) {
      got.push_back(static_cast<std::int16_t>(
          static_cast<std::uint16_t>(sim.get_output("out_data"))));
    }
  }
  ASSERT_GE(got.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(got[i], image[i % 4].raw);
}

TEST(MmuComponent, BuffersAndForwardsBurst) {
  const int words = 12;
  const Netlist nl = make_mmu_component("mmu", words);
  ASSERT_TRUE(nl.validate().empty());
  Simulator sim(nl);
  const auto burst = random_params(static_cast<std::size_t>(words), 14);
  sim.set_input("out_ready", 1);
  sim.set_input("in_valid", 1);
  for (const Fixed16& v : burst) {
    ASSERT_EQ(sim.get_output("in_ready"), 1u);
    sim.set_input("in_data", static_cast<std::uint16_t>(v.raw));
    sim.step();
  }
  sim.set_input("in_valid", 0);
  std::vector<std::int16_t> got;
  for (int cycle = 0; cycle < 40 && got.size() < burst.size(); ++cycle) {
    sim.step();
    if (sim.get_output("out_valid") == 1) {
      got.push_back(static_cast<std::int16_t>(
          static_cast<std::uint16_t>(sim.get_output("out_data"))));
    }
  }
  ASSERT_EQ(got.size(), burst.size());
  for (std::size_t i = 0; i < burst.size(); ++i) EXPECT_EQ(got[i], burst[i].raw);
}

TEST(MmuComponent, NotReadyWhileDraining) {
  const Netlist nl = make_mmu_component("mmu", 4);
  Simulator sim(nl);
  sim.set_input("out_ready", 0);
  sim.set_input("in_valid", 1);
  sim.set_input("in_data", 1);
  for (int i = 0; i < 4; ++i) sim.step();
  sim.set_input("in_valid", 0);
  sim.step();
  EXPECT_EQ(sim.get_output("in_ready"), 0u);  // in DRAIN, waiting for ready
}

/// Drives all input streams of a multi-input component concurrently
/// (run_stream only knows the single-stream interface) and collects
/// `expected_outputs` words.
std::vector<Fixed16> run_multi_stream(Simulator& sim,
                                      const std::vector<std::vector<Fixed16>>& inputs,
                                      std::size_t expected_outputs) {
  sim.set_input("out_ready", 1);
  std::vector<std::size_t> pos(inputs.size(), 0);
  std::vector<Fixed16> out;
  long guard = 0;
  while (out.size() < expected_outputs && guard++ < 500000) {
    std::vector<bool> offered(inputs.size(), false);
    for (std::size_t k = 0; k < inputs.size(); ++k) {
      const bool have = pos[k] < inputs[k].size();
      sim.set_input(stream_port_name("in", static_cast<int>(k), "valid"), have ? 1 : 0);
      if (have) {
        sim.set_input(stream_port_name("in", static_cast<int>(k), "data"),
                      static_cast<std::uint16_t>(inputs[k][pos[k]].raw));
      }
      offered[k] = have;
    }
    std::vector<bool> accepted(inputs.size(), false);
    for (std::size_t k = 0; k < inputs.size(); ++k) {
      accepted[k] =
          offered[k] &&
          sim.get_output(stream_port_name("in", static_cast<int>(k), "ready")) == 1;
    }
    sim.step();
    for (std::size_t k = 0; k < inputs.size(); ++k) {
      if (accepted[k]) ++pos[k];
    }
    if (sim.get_output("out_valid") == 1) {
      out.push_back(Fixed16{static_cast<std::int16_t>(
          static_cast<std::uint16_t>(sim.get_output("out_data")))});
    }
  }
  EXPECT_EQ(out.size(), expected_outputs) << "timed out after " << guard << " cycles";
  return out;
}

TEST(AddComponent, MatchesGoldenSaturatingAdd) {
  const int volume = 2 * 3 * 3;
  const Netlist nl = make_add_component("add_t", volume, 2);
  ASSERT_TRUE(nl.validate().empty());
  // Large magnitudes so Q8.8 saturation is actually exercised.
  const Tensor a = testhelpers::random_tensor(2, 3, 3, 21, 30000);
  const Tensor b = testhelpers::random_tensor(2, 3, 3, 22, 30000);
  const Tensor expected = golden_add({&a, &b});
  Simulator sim(nl);
  const auto out = run_multi_stream(sim, {a.data, b.data},
                                    static_cast<std::size_t>(volume));
  testhelpers::expect_tensor_eq(out, expected.data);
}

TEST(AddComponent, ThreeWayJoinAndFusedRelu) {
  const int volume = 6;
  const Netlist nl = make_add_component("add3_t", volume, 3, /*fuse_relu=*/true);
  ASSERT_TRUE(nl.validate().empty());
  const Tensor a = testhelpers::random_tensor(1, 2, 3, 31);
  const Tensor b = testhelpers::random_tensor(1, 2, 3, 32);
  const Tensor c = testhelpers::random_tensor(1, 2, 3, 33);
  const Tensor expected = golden_relu(golden_add({&a, &b, &c}));
  Simulator sim(nl);
  const auto out =
      run_multi_stream(sim, {a.data, b.data, c.data}, static_cast<std::size_t>(volume));
  testhelpers::expect_tensor_eq(out, expected.data);
}

TEST(ConcatComponent, AppendsStreamsInPortOrder) {
  // Unequal channel counts: 2x2x2 ++ 1x2x2 -> 3 channels.
  const Netlist nl = make_concat_component("cat_t", {8, 4});
  ASSERT_TRUE(nl.validate().empty());
  const Tensor a = testhelpers::random_tensor(2, 2, 2, 41);
  const Tensor b = testhelpers::random_tensor(1, 2, 2, 42);
  const Tensor expected = golden_concat({&a, &b});
  Simulator sim(nl);
  const auto out = run_multi_stream(sim, {a.data, b.data}, expected.data.size());
  testhelpers::expect_tensor_eq(out, expected.data);
}

TEST(StreamFork, BroadcastsToAllBranchesUnderSkewedBackpressure) {
  const Netlist nl = make_stream_fork("fork_t", 2);
  ASSERT_TRUE(nl.validate().empty());
  const auto words = random_params(16, 51);
  Simulator sim(nl);
  std::vector<std::int16_t> got0, got1;
  std::size_t pos = 0;
  int cycle = 0;
  while ((got0.size() < words.size() || got1.size() < words.size()) && cycle < 400) {
    // Branch 1 accepts only every third cycle: the skid flags must hold the
    // word for it while branch 0 races ahead by at most one.
    const bool r0 = true;
    const bool r1 = cycle % 3 == 0;
    sim.set_input("out_ready", r0 ? 1 : 0);
    sim.set_input("out2_ready", r1 ? 1 : 0);
    const bool have = pos < words.size();
    sim.set_input("in_valid", have ? 1 : 0);
    if (have) sim.set_input("in_data", static_cast<std::uint16_t>(words[pos].raw));
    const bool accepted = have && sim.get_output("in_ready") == 1;
    if (r0 && sim.get_output("out_valid") == 1) {
      got0.push_back(static_cast<std::int16_t>(
          static_cast<std::uint16_t>(sim.get_output("out_data"))));
    }
    if (r1 && sim.get_output("out2_valid") == 1) {
      got1.push_back(static_cast<std::int16_t>(
          static_cast<std::uint16_t>(sim.get_output("out2_data"))));
    }
    sim.step();
    if (accepted) ++pos;
    ++cycle;
  }
  ASSERT_EQ(got0.size(), words.size());
  ASSERT_EQ(got1.size(), words.size());
  for (std::size_t i = 0; i < words.size(); ++i) {
    EXPECT_EQ(got0[i], words[i].raw) << "branch 0 word " << i;
    EXPECT_EQ(got1[i], words[i].raw) << "branch 1 word " << i;
  }
}

TEST(StreamPortName, FollowsConvention) {
  EXPECT_EQ(stream_port_name("in", 0, "data"), "in_data");
  EXPECT_EQ(stream_port_name("out", 0, "valid"), "out_valid");
  EXPECT_EQ(stream_port_name("in", 1, "data"), "in2_data");
  EXPECT_EQ(stream_port_name("out", 2, "ready"), "out3_ready");
}

}  // namespace
}  // namespace fpgasim
