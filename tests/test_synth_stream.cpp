// FIFO, input streamer and MMU components: the Fig. 5 communication
// interface pieces.
#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "stream_harness.h"
#include "synth/layers.h"

namespace fpgasim {
namespace {

using testhelpers::random_params;

TEST(StreamFifo, PreservesOrderThroughFillAndDrain) {
  const Netlist nl = make_stream_fifo("fifo_t", 4);
  Simulator sim(nl);
  // Fill completely with downstream blocked.
  sim.set_input("out_ready", 0);
  sim.set_input("in_valid", 1);
  for (int i = 1; i <= 4; ++i) {
    EXPECT_EQ(sim.get_output("in_ready"), 1u);
    sim.set_input("in_data", static_cast<std::uint64_t>(i * 11));
    sim.step();
  }
  EXPECT_EQ(sim.get_output("in_ready"), 0u);  // full
  sim.set_input("in_valid", 0);
  // Drain.
  sim.set_input("out_ready", 1);
  for (int i = 1; i <= 4; ++i) {
    EXPECT_EQ(sim.get_output("out_valid"), 1u);
    EXPECT_EQ(sim.get_output("out_data"), static_cast<std::uint64_t>(i * 11));
    sim.step();
  }
  EXPECT_EQ(sim.get_output("out_valid"), 0u);  // empty
}

TEST(StreamFifo, SimultaneousPushPopKeepsCount) {
  const Netlist nl = make_stream_fifo("fifo_t", 4);
  Simulator sim(nl);
  sim.set_input("in_valid", 1);
  sim.set_input("out_ready", 1);
  // Prime one element.
  sim.set_input("in_data", 5);
  sim.step();
  // Now push and pop every cycle: out should track input with 1 lag.
  for (int i = 0; i < 20; ++i) {
    sim.set_input("in_data", static_cast<std::uint64_t>(100 + i));
    ASSERT_EQ(sim.get_output("out_valid"), 1u);
    const std::uint64_t head = sim.get_output("out_data");
    if (i == 0) {
      EXPECT_EQ(head, 5u);
    } else {
      EXPECT_EQ(head, static_cast<std::uint64_t>(100 + i - 1));
    }
    sim.step();
  }
}

TEST(StreamFifo, EmptyFifoHasNoValidOutput) {
  const Netlist nl = make_stream_fifo("fifo_t", 2);
  Simulator sim(nl);
  sim.set_input("out_ready", 1);
  sim.set_input("in_valid", 0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(sim.get_output("out_valid"), 0u);
    sim.step();
  }
}

TEST(InputStreamer, PlaysImageInOrder) {
  const auto image = random_params(10, 7);
  const Netlist nl = make_input_streamer("src", image);
  Simulator sim(nl);
  sim.set_input("out_ready", 1);
  std::vector<std::int16_t> got;
  for (int cycle = 0; cycle < 12 && got.size() < image.size(); ++cycle) {
    sim.step();
    if (sim.get_output("out_valid") == 1) {
      got.push_back(static_cast<std::int16_t>(
          static_cast<std::uint16_t>(sim.get_output("out_data"))));
    }
  }
  ASSERT_EQ(got.size(), image.size());
  for (std::size_t i = 0; i < image.size(); ++i) EXPECT_EQ(got[i], image[i].raw);
}

TEST(InputStreamer, DoesNotDropWordsAcrossBackpressure) {
  // The prefetch register must hold the current word while ready is low.
  const auto image = random_params(6, 9);
  const Netlist nl = make_input_streamer("src", image);
  Simulator sim(nl);
  std::vector<std::int16_t> got;
  int cycle = 0;
  while (got.size() < image.size() && cycle < 100) {
    // Toggle ready on and off to stress the handshake.
    const bool ready = (cycle / 3) % 2 == 0;
    sim.set_input("out_ready", ready ? 1 : 0);
    const bool valid = sim.get_output("out_valid") == 1;
    if (ready && valid) {
      got.push_back(static_cast<std::int16_t>(
          static_cast<std::uint16_t>(sim.get_output("out_data"))));
    }
    sim.step();
    ++cycle;
  }
  ASSERT_EQ(got.size(), image.size());
  for (std::size_t i = 0; i < image.size(); ++i) {
    EXPECT_EQ(got[i], image[i].raw) << "word " << i;
  }
}

TEST(InputStreamer, LoopsAfterOneImage) {
  const auto image = random_params(4, 10);
  const Netlist nl = make_input_streamer("src", image);
  Simulator sim(nl);
  sim.set_input("out_ready", 1);
  std::vector<std::int16_t> got;
  for (int cycle = 0; cycle < 10; ++cycle) {
    sim.step();
    if (sim.get_output("out_valid") == 1) {
      got.push_back(static_cast<std::int16_t>(
          static_cast<std::uint16_t>(sim.get_output("out_data"))));
    }
  }
  ASSERT_GE(got.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(got[i], image[i % 4].raw);
}

TEST(MmuComponent, BuffersAndForwardsBurst) {
  const int words = 12;
  const Netlist nl = make_mmu_component("mmu", words);
  ASSERT_TRUE(nl.validate().empty());
  Simulator sim(nl);
  const auto burst = random_params(static_cast<std::size_t>(words), 14);
  sim.set_input("out_ready", 1);
  sim.set_input("in_valid", 1);
  for (const Fixed16& v : burst) {
    ASSERT_EQ(sim.get_output("in_ready"), 1u);
    sim.set_input("in_data", static_cast<std::uint16_t>(v.raw));
    sim.step();
  }
  sim.set_input("in_valid", 0);
  std::vector<std::int16_t> got;
  for (int cycle = 0; cycle < 40 && got.size() < burst.size(); ++cycle) {
    sim.step();
    if (sim.get_output("out_valid") == 1) {
      got.push_back(static_cast<std::int16_t>(
          static_cast<std::uint16_t>(sim.get_output("out_data"))));
    }
  }
  ASSERT_EQ(got.size(), burst.size());
  for (std::size_t i = 0; i < burst.size(); ++i) EXPECT_EQ(got[i], burst[i].raw);
}

TEST(MmuComponent, NotReadyWhileDraining) {
  const Netlist nl = make_mmu_component("mmu", 4);
  Simulator sim(nl);
  sim.set_input("out_ready", 0);
  sim.set_input("in_valid", 1);
  sim.set_input("in_data", 1);
  for (int i = 0; i < 4; ++i) sim.step();
  sim.set_input("in_valid", 0);
  sim.step();
  EXPECT_EQ(sim.get_output("in_ready"), 0u);  // in DRAIN, waiting for ready
}

}  // namespace
}  // namespace fpgasim
