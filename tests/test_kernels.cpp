#include <gtest/gtest.h>

#include "sim/fixed.h"
#include "sim/simulator.h"
#include "stream_harness.h"
#include "synth/kernels.h"

namespace fpgasim {
namespace {

using testhelpers::random_params;
using testhelpers::run_stream;

TEST(Kernels, MatrixMultiplyMatchesReference) {
  const auto a = random_params(9, 201);
  const auto b = random_params(9, 202);
  std::vector<Fixed16> input = a;
  input.insert(input.end(), b.begin(), b.end());

  std::vector<Fixed16> expected(9);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      Fixed16 acc{0};
      for (int k = 0; k < 3; ++k) {
        acc = acc + a[static_cast<std::size_t>(3 * i + k)] * b[static_cast<std::size_t>(3 * k + j)];
      }
      expected[static_cast<std::size_t>(3 * i + j)] = acc;
    }
  }

  const Netlist nl = make_kernel_component(KernelApp::kMatrixMult, "mm");
  ASSERT_TRUE(nl.validate().empty());
  Simulator sim(nl);
  const auto out = run_stream(sim, input, 9);
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)].raw, expected[static_cast<std::size_t>(i)].raw)
        << "PE " << i;
  }
}

TEST(Kernels, OuterProductMatchesReference) {
  const auto a = random_params(3, 203);
  const auto b = random_params(3, 204);
  std::vector<Fixed16> input = a;
  input.insert(input.end(), b.begin(), b.end());

  const Netlist nl = make_kernel_component(KernelApp::kOuterProduct, "op");
  Simulator sim(nl);
  const auto out = run_stream(sim, input, 9);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_EQ(out[static_cast<std::size_t>(3 * i + j)],
                a[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(j)]);
    }
  }
}

TEST(Kernels, RobertCrossMatchesReference) {
  const auto tile = random_params(16, 205);
  auto px = [&](int y, int x) { return tile[static_cast<std::size_t>(4 * y + x)]; };

  const Netlist nl = make_kernel_component(KernelApp::kRobertCross, "rc");
  Simulator sim(nl);
  const auto out = run_stream(sim, tile, 9);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      const int gx = px(i, j).raw - px(i + 1, j + 1).raw;
      const int gy = px(i + 1, j).raw - px(i, j + 1).raw;
      const int expected = std::abs(gx) + std::abs(gy);
      EXPECT_EQ(out[static_cast<std::size_t>(3 * i + j)].raw, expected)
          << "PE " << i << "," << j;
    }
  }
}

TEST(Kernels, SmoothingMatchesReference) {
  const auto tile = random_params(25, 206);
  auto px = [&](int y, int x) { return tile[static_cast<std::size_t>(5 * y + x)].raw; };

  const Netlist nl = make_kernel_component(KernelApp::kSmoothing, "sm");
  Simulator sim(nl);
  const auto out = run_stream(sim, tile, 9);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      std::int64_t sum = 0;
      for (int dy = 0; dy < 3; ++dy) {
        for (int dx = 0; dx < 3; ++dx) sum += px(i + dy, j + dx);
      }
      EXPECT_EQ(out[static_cast<std::size_t>(3 * i + j)].raw,
                static_cast<std::int16_t>(sum >> 3))
          << "PE " << i << "," << j;
    }
  }
}

class KernelStructure : public ::testing::TestWithParam<KernelApp> {};

TEST_P(KernelStructure, ValidatesAndUsesExpectedDsp) {
  const KernelApp app = GetParam();
  const Netlist nl = make_kernel_component(app, "k");
  EXPECT_TRUE(nl.validate().empty());
  const ResourceVec res = nl.stats().resources;
  switch (app) {
    case KernelApp::kMatrixMult: EXPECT_EQ(res.dsp, 27); break;   // 9 PEs x 3 MACs
    case KernelApp::kOuterProduct: EXPECT_EQ(res.dsp, 9); break;  // 9 multipliers
    case KernelApp::kRobertCross: EXPECT_EQ(res.dsp, 0); break;   // adders only
    case KernelApp::kSmoothing: EXPECT_EQ(res.dsp, 9); break;     // scale stage
  }
  EXPECT_GT(res.lut, 0);
  EXPECT_GT(res.ff, 0);
}

INSTANTIATE_TEST_SUITE_P(AllApps, KernelStructure,
                         ::testing::Values(KernelApp::kMatrixMult, KernelApp::kOuterProduct,
                                           KernelApp::kRobertCross, KernelApp::kSmoothing));

TEST(Kernels, RepeatsAcrossRounds) {
  // The PE block must return to LOAD and accept a second problem.
  const Netlist nl = make_kernel_component(KernelApp::kOuterProduct, "op");
  Simulator sim(nl);
  for (int round = 0; round < 2; ++round) {
    const auto a = random_params(3, 210 + static_cast<std::uint64_t>(round));
    const auto b = random_params(3, 220 + static_cast<std::uint64_t>(round));
    std::vector<Fixed16> input = a;
    input.insert(input.end(), b.begin(), b.end());
    const auto out = run_stream(sim, input, 9);
    EXPECT_EQ(out[0], a[0] * b[0]);
    EXPECT_EQ(out[8], a[2] * b[2]);
  }
}

}  // namespace
}  // namespace fpgasim
