#include <gtest/gtest.h>

#include "sim/golden.h"
#include "util/rng.h"

namespace fpgasim {
namespace {

Tensor random_tensor(int c, int h, int w, std::uint64_t seed, int magnitude = 60) {
  Tensor t = Tensor::zeros(c, h, w);
  Rng rng(seed);
  for (Fixed16& v : t.data) {
    v = Fixed16::from_raw(static_cast<std::int32_t>(rng.next_int(-magnitude, magnitude)));
  }
  return t;
}

TEST(Golden, ConvIdentityKernel) {
  // 1x1 kernel with weight 1.0 and zero bias is the identity.
  Tensor in = random_tensor(2, 4, 4, 5);
  const std::vector<Fixed16> w{Fixed16::from_double(1.0), Fixed16{0}, Fixed16{0},
                               Fixed16::from_double(1.0)};
  const std::vector<Fixed16> bias{Fixed16{0}, Fixed16{0}};
  const Tensor out = golden_conv2d(in, w, bias, 2, 1);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      EXPECT_EQ(out.at(0, y, x), in.at(0, y, x));
      EXPECT_EQ(out.at(1, y, x), in.at(1, y, x));
    }
  }
}

TEST(Golden, ConvKnownAnswer) {
  // 2x2 all-ones kernel over a ramp: output = sum of the window + bias.
  Tensor in = Tensor::zeros(1, 3, 3);
  for (int i = 0; i < 9; ++i) in.data[static_cast<std::size_t>(i)] = Fixed16::from_double(i);
  const std::vector<Fixed16> w(4, Fixed16::from_double(1.0));
  const Tensor out = golden_conv2d(in, w, {Fixed16::from_double(0.5)}, 1, 2);
  EXPECT_EQ(out.height, 2);
  EXPECT_EQ(out.width, 2);
  EXPECT_DOUBLE_EQ(out.at(0, 0, 0).to_double(), 0 + 1 + 3 + 4 + 0.5);
  EXPECT_DOUBLE_EQ(out.at(0, 1, 1).to_double(), 4 + 5 + 7 + 8 + 0.5);
}

TEST(Golden, ConvStride) {
  Tensor in = random_tensor(1, 6, 6, 6);
  const std::vector<Fixed16> w{Fixed16::from_double(1.0)};
  const Tensor out = golden_conv2d(in, w, {Fixed16{0}}, 1, 1, 2);
  EXPECT_EQ(out.height, 3);
  EXPECT_EQ(out.width, 3);
  EXPECT_EQ(out.at(0, 1, 2), in.at(0, 2, 4));
}

TEST(Golden, MaxPoolPicksWindowMax) {
  Tensor in = Tensor::zeros(1, 4, 4);
  for (int i = 0; i < 16; ++i) {
    in.data[static_cast<std::size_t>(i)] = Fixed16::from_double(i % 7 - 3);
  }
  const Tensor out = golden_maxpool(in, 2);
  EXPECT_EQ(out.height, 2);
  for (int oy = 0; oy < 2; ++oy) {
    for (int ox = 0; ox < 2; ++ox) {
      Fixed16 expected = in.at(0, oy * 2, ox * 2);
      for (int ky = 0; ky < 2; ++ky) {
        for (int kx = 0; kx < 2; ++kx) {
          expected = fixed_max(expected, in.at(0, oy * 2 + ky, ox * 2 + kx));
        }
      }
      EXPECT_EQ(out.at(0, oy, ox), expected);
    }
  }
}

TEST(Golden, PoolOutputDominatesInputs) {
  // Property: each pooled value is >= every value in its window.
  const Tensor in = random_tensor(3, 8, 8, 7);
  const Tensor out = golden_maxpool(in, 2);
  for (int c = 0; c < 3; ++c) {
    for (int oy = 0; oy < 4; ++oy) {
      for (int ox = 0; ox < 4; ++ox) {
        for (int ky = 0; ky < 2; ++ky) {
          for (int kx = 0; kx < 2; ++kx) {
            EXPECT_GE(out.at(c, oy, ox).raw, in.at(c, oy * 2 + ky, ox * 2 + kx).raw);
          }
        }
      }
    }
  }
}

TEST(Golden, ReluClampsNegativesOnly) {
  const Tensor in = random_tensor(2, 5, 5, 11);
  const Tensor out = golden_relu(in);
  for (std::size_t i = 0; i < in.data.size(); ++i) {
    if (in.data[i].raw > 0) {
      EXPECT_EQ(out.data[i], in.data[i]);
    } else {
      EXPECT_EQ(out.data[i].raw, 0);
    }
  }
}

TEST(Golden, ReluIsIdempotent) {
  const Tensor in = random_tensor(2, 5, 5, 13);
  const Tensor once = golden_relu(in);
  const Tensor twice = golden_relu(once);
  EXPECT_EQ(once.data, twice.data);
}

TEST(Golden, FcKnownAnswer) {
  const std::vector<Fixed16> in{Fixed16::from_double(1.0), Fixed16::from_double(2.0)};
  const std::vector<Fixed16> w{Fixed16::from_double(0.5), Fixed16::from_double(0.25),
                               Fixed16::from_double(-1.0), Fixed16::from_double(1.0)};
  const std::vector<Fixed16> bias{Fixed16::from_double(0.125), Fixed16{0}};
  const auto out = golden_fc(in, w, bias, 2);
  EXPECT_DOUBLE_EQ(out[0].to_double(), 0.5 + 0.5 + 0.125);
  EXPECT_DOUBLE_EQ(out[1].to_double(), -1.0 + 2.0);
}

TEST(Golden, FcEqualsConvWithFullKernel) {
  // The paper implements FC as convolution with kernel == input size; the
  // two golden paths must agree.
  const Tensor in = random_tensor(3, 2, 2, 17, 40);
  Rng rng(21);
  std::vector<Fixed16> w(static_cast<std::size_t>(4) * 3 * 2 * 2);
  for (Fixed16& v : w) v = Fixed16::from_raw(static_cast<std::int32_t>(rng.next_int(-40, 40)));
  std::vector<Fixed16> bias(4);
  for (Fixed16& v : bias) v = Fixed16::from_raw(static_cast<std::int32_t>(rng.next_int(-40, 40)));

  const Tensor conv_out = golden_conv2d(in, w, bias, 4, 2);
  ASSERT_EQ(conv_out.data.size(), 4u);
  const auto fc_out = golden_fc(in.data, w, bias, 4);
  for (int o = 0; o < 4; ++o) {
    EXPECT_EQ(conv_out.data[static_cast<std::size_t>(o)], fc_out[static_cast<std::size_t>(o)])
        << "output " << o;
  }
}

}  // namespace
}  // namespace fpgasim
