#include <gtest/gtest.h>

#include "sim/golden.h"
#include "util/rng.h"

namespace fpgasim {
namespace {

Tensor random_tensor(int c, int h, int w, std::uint64_t seed, int magnitude = 60) {
  Tensor t = Tensor::zeros(c, h, w);
  Rng rng(seed);
  for (Fixed16& v : t.data) {
    v = Fixed16::from_raw(static_cast<std::int32_t>(rng.next_int(-magnitude, magnitude)));
  }
  return t;
}

TEST(Golden, ConvIdentityKernel) {
  // 1x1 kernel with weight 1.0 and zero bias is the identity.
  Tensor in = random_tensor(2, 4, 4, 5);
  const std::vector<Fixed16> w{Fixed16::from_double(1.0), Fixed16{0}, Fixed16{0},
                               Fixed16::from_double(1.0)};
  const std::vector<Fixed16> bias{Fixed16{0}, Fixed16{0}};
  const Tensor out = golden_conv2d(in, w, bias, 2, 1);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      EXPECT_EQ(out.at(0, y, x), in.at(0, y, x));
      EXPECT_EQ(out.at(1, y, x), in.at(1, y, x));
    }
  }
}

TEST(Golden, ConvKnownAnswer) {
  // 2x2 all-ones kernel over a ramp: output = sum of the window + bias.
  Tensor in = Tensor::zeros(1, 3, 3);
  for (int i = 0; i < 9; ++i) in.data[static_cast<std::size_t>(i)] = Fixed16::from_double(i);
  const std::vector<Fixed16> w(4, Fixed16::from_double(1.0));
  const Tensor out = golden_conv2d(in, w, {Fixed16::from_double(0.5)}, 1, 2);
  EXPECT_EQ(out.height, 2);
  EXPECT_EQ(out.width, 2);
  EXPECT_DOUBLE_EQ(out.at(0, 0, 0).to_double(), 0 + 1 + 3 + 4 + 0.5);
  EXPECT_DOUBLE_EQ(out.at(0, 1, 1).to_double(), 4 + 5 + 7 + 8 + 0.5);
}

TEST(Golden, ConvStride) {
  Tensor in = random_tensor(1, 6, 6, 6);
  const std::vector<Fixed16> w{Fixed16::from_double(1.0)};
  const Tensor out = golden_conv2d(in, w, {Fixed16{0}}, 1, 1, 2);
  EXPECT_EQ(out.height, 3);
  EXPECT_EQ(out.width, 3);
  EXPECT_EQ(out.at(0, 1, 2), in.at(0, 2, 4));
}

TEST(Golden, MaxPoolPicksWindowMax) {
  Tensor in = Tensor::zeros(1, 4, 4);
  for (int i = 0; i < 16; ++i) {
    in.data[static_cast<std::size_t>(i)] = Fixed16::from_double(i % 7 - 3);
  }
  const Tensor out = golden_maxpool(in, 2);
  EXPECT_EQ(out.height, 2);
  for (int oy = 0; oy < 2; ++oy) {
    for (int ox = 0; ox < 2; ++ox) {
      Fixed16 expected = in.at(0, oy * 2, ox * 2);
      for (int ky = 0; ky < 2; ++ky) {
        for (int kx = 0; kx < 2; ++kx) {
          expected = fixed_max(expected, in.at(0, oy * 2 + ky, ox * 2 + kx));
        }
      }
      EXPECT_EQ(out.at(0, oy, ox), expected);
    }
  }
}

TEST(Golden, PoolOutputDominatesInputs) {
  // Property: each pooled value is >= every value in its window.
  const Tensor in = random_tensor(3, 8, 8, 7);
  const Tensor out = golden_maxpool(in, 2);
  for (int c = 0; c < 3; ++c) {
    for (int oy = 0; oy < 4; ++oy) {
      for (int ox = 0; ox < 4; ++ox) {
        for (int ky = 0; ky < 2; ++ky) {
          for (int kx = 0; kx < 2; ++kx) {
            EXPECT_GE(out.at(c, oy, ox).raw, in.at(c, oy * 2 + ky, ox * 2 + kx).raw);
          }
        }
      }
    }
  }
}

TEST(Golden, ReluClampsNegativesOnly) {
  const Tensor in = random_tensor(2, 5, 5, 11);
  const Tensor out = golden_relu(in);
  for (std::size_t i = 0; i < in.data.size(); ++i) {
    if (in.data[i].raw > 0) {
      EXPECT_EQ(out.data[i], in.data[i]);
    } else {
      EXPECT_EQ(out.data[i].raw, 0);
    }
  }
}

TEST(Golden, ReluIsIdempotent) {
  const Tensor in = random_tensor(2, 5, 5, 13);
  const Tensor once = golden_relu(in);
  const Tensor twice = golden_relu(once);
  EXPECT_EQ(once.data, twice.data);
}

TEST(Golden, FcKnownAnswer) {
  const std::vector<Fixed16> in{Fixed16::from_double(1.0), Fixed16::from_double(2.0)};
  const std::vector<Fixed16> w{Fixed16::from_double(0.5), Fixed16::from_double(0.25),
                               Fixed16::from_double(-1.0), Fixed16::from_double(1.0)};
  const std::vector<Fixed16> bias{Fixed16::from_double(0.125), Fixed16{0}};
  const auto out = golden_fc(in, w, bias, 2);
  EXPECT_DOUBLE_EQ(out[0].to_double(), 0.5 + 0.5 + 0.125);
  EXPECT_DOUBLE_EQ(out[1].to_double(), -1.0 + 2.0);
}

TEST(Golden, FcEqualsConvWithFullKernel) {
  // The paper implements FC as convolution with kernel == input size; the
  // two golden paths must agree.
  const Tensor in = random_tensor(3, 2, 2, 17, 40);
  Rng rng(21);
  std::vector<Fixed16> w(static_cast<std::size_t>(4) * 3 * 2 * 2);
  for (Fixed16& v : w) v = Fixed16::from_raw(static_cast<std::int32_t>(rng.next_int(-40, 40)));
  std::vector<Fixed16> bias(4);
  for (Fixed16& v : bias) v = Fixed16::from_raw(static_cast<std::int32_t>(rng.next_int(-40, 40)));

  const Tensor conv_out = golden_conv2d(in, w, bias, 4, 2);
  ASSERT_EQ(conv_out.data.size(), 4u);
  const auto fc_out = golden_fc(in.data, w, bias, 4);
  for (int o = 0; o < 4; ++o) {
    EXPECT_EQ(conv_out.data[static_cast<std::size_t>(o)], fc_out[static_cast<std::size_t>(o)])
        << "output " << o;
  }
}

TEST(Golden, AvgPoolKnownAnswerWithRneTies) {
  // 2x2 windows over raw Q8.8 values; the window mean uses
  // round-to-nearest-even on the raw sum (den = 4).
  Tensor in = Tensor::zeros(1, 2, 4);
  in.at(0, 0, 0) = Fixed16::from_raw(1);
  in.at(0, 0, 1) = Fixed16::from_raw(2);
  in.at(0, 1, 0) = Fixed16::from_raw(3);
  in.at(0, 1, 1) = Fixed16::from_raw(4);  // sum 10 -> 2.5 -> 2 (even)
  in.at(0, 0, 2) = Fixed16::from_raw(3);
  in.at(0, 0, 3) = Fixed16::from_raw(3);
  in.at(0, 1, 2) = Fixed16::from_raw(4);
  in.at(0, 1, 3) = Fixed16::from_raw(4);  // sum 14 -> 3.5 -> 4 (even)
  const Tensor out = golden_avgpool(in, 2);
  EXPECT_EQ(out.height, 1);
  EXPECT_EQ(out.width, 2);
  EXPECT_EQ(out.at(0, 0, 0).raw, 2);
  EXPECT_EQ(out.at(0, 0, 1).raw, 4);
}

TEST(Golden, AvgPoolNegativeTiesRoundToEven) {
  Tensor in = Tensor::zeros(1, 2, 2);
  in.at(0, 0, 0) = Fixed16::from_raw(-1);
  in.at(0, 0, 1) = Fixed16::from_raw(-2);
  in.at(0, 1, 0) = Fixed16::from_raw(-3);
  in.at(0, 1, 1) = Fixed16::from_raw(-4);  // sum -10 -> -2.5 -> -2 (even)
  EXPECT_EQ(golden_avgpool(in, 2).at(0, 0, 0).raw, -2);
  in.at(0, 1, 1) = Fixed16::from_raw(-8);  // sum -14 -> -3.5 -> -4 (even)
  EXPECT_EQ(golden_avgpool(in, 2).at(0, 0, 0).raw, -4);
}

TEST(Golden, GlobalAvgPoolIsFullWindowAvgPool) {
  const Tensor in = random_tensor(3, 4, 4, 23);
  const Tensor global = golden_global_avgpool(in);
  const Tensor full = golden_avgpool(in, 4);
  ASSERT_EQ(global.height, 1);
  ASSERT_EQ(global.width, 1);
  for (int c = 0; c < 3; ++c) EXPECT_EQ(global.at(c, 0, 0), full.at(c, 0, 0));
}

TEST(Golden, DwConvMatchesPerChannelConv) {
  // Depthwise convolution is definitionally one single-channel conv per
  // channel; the decomposition must agree bit for bit, strides included.
  for (const int stride : {1, 2}) {
    const Tensor in = random_tensor(3, 6, 6, 31, 40);
    Rng rng(37);
    std::vector<Fixed16> w(static_cast<std::size_t>(3) * 3 * 3);
    for (Fixed16& v : w) {
      v = Fixed16::from_raw(static_cast<std::int32_t>(rng.next_int(-40, 40)));
    }
    std::vector<Fixed16> bias(3);
    for (Fixed16& v : bias) {
      v = Fixed16::from_raw(static_cast<std::int32_t>(rng.next_int(-40, 40)));
    }
    const Tensor out = golden_dwconv2d(in, w, bias, 3, stride);
    for (int c = 0; c < 3; ++c) {
      Tensor channel = Tensor::zeros(1, 6, 6);
      for (int y = 0; y < 6; ++y) {
        for (int x = 0; x < 6; ++x) channel.at(0, y, x) = in.at(c, y, x);
      }
      const std::vector<Fixed16> wc(w.begin() + c * 9, w.begin() + (c + 1) * 9);
      const Tensor ref = golden_conv2d(channel, wc, {bias[static_cast<std::size_t>(c)]},
                                       1, 3, stride);
      ASSERT_EQ(out.height, ref.height);
      for (int y = 0; y < out.height; ++y) {
        for (int x = 0; x < out.width; ++x) {
          EXPECT_EQ(out.at(c, y, x), ref.at(0, y, x)) << c << "," << y << "," << x;
        }
      }
    }
  }
}

TEST(Golden, UpsampleReplicatesBlocks) {
  const Tensor in = random_tensor(2, 3, 3, 41);
  const Tensor out = golden_upsample_nn(in, 3);
  EXPECT_EQ(out.channels, 2);
  EXPECT_EQ(out.height, 9);
  EXPECT_EQ(out.width, 9);
  for (int c = 0; c < 2; ++c) {
    for (int y = 0; y < 9; ++y) {
      for (int x = 0; x < 9; ++x) {
        EXPECT_EQ(out.at(c, y, x), in.at(c, y / 3, x / 3));
      }
    }
  }
}

TEST(Golden, UpsampleFactorOneIsIdentity) {
  const Tensor in = random_tensor(2, 4, 5, 43);
  const Tensor out = golden_upsample_nn(in, 1);
  EXPECT_EQ(out.data, in.data);
}

}  // namespace
}  // namespace fpgasim
