#include <gtest/gtest.h>

#include "flow/build.h"
#include "flow/compose.h"
#include "sim/simulator.h"
#include "stream_harness.h"
#include "synth/layers.h"

namespace fpgasim {
namespace {

using testhelpers::expect_tensor_eq;
using testhelpers::random_params;
using testhelpers::random_tensor;
using testhelpers::run_stream;

TEST(AliasNet, RewiresSinksOntoDrivenNet) {
  Netlist nl("a");
  const NetId driven = nl.add_net(8);
  const NetId dead = nl.add_net(8);
  Cell drv;
  drv.type = CellType::kFf;
  drv.width = 8;
  const CellId d = nl.add_cell(std::move(drv));
  nl.connect_output(d, 0, driven);
  Cell snk;
  snk.type = CellType::kFf;
  snk.width = 8;
  const CellId s = nl.add_cell(std::move(snk));
  nl.connect_input(s, 0, dead);

  alias_net(nl, dead, driven);
  EXPECT_EQ(nl.cell(s).inputs[0], driven);
  ASSERT_EQ(nl.net(driven).sinks.size(), 1u);
  EXPECT_TRUE(nl.net(dead).sinks.empty());
}

TEST(AliasNet, RefusesDrivenSource) {
  Netlist nl("a");
  const NetId n1 = nl.add_net(1);
  const NetId n2 = nl.add_net(1);
  Cell drv;
  drv.type = CellType::kFf;
  const CellId d = nl.add_cell(std::move(drv));
  nl.connect_output(d, 0, n1);
  EXPECT_THROW(alias_net(nl, n1, n2), std::runtime_error);
}

TEST(AliasNet, MergesFanOutOntoOneDrivenNet) {
  // Two driverless nets collapsed onto one driven net: the driven net must
  // accumulate every sink (stream fan-out after stitching a fork), and the
  // merged design must stay DRC-clean for channel capacity and routing.
  Netlist nl("fanout");
  const NetId driven = nl.add_net(8);
  const NetId dead_a = nl.add_net(8);
  const NetId dead_b = nl.add_net(8);
  Cell drv;
  drv.type = CellType::kFf;
  drv.width = 8;
  const CellId d = nl.add_cell(std::move(drv));
  nl.connect_output(d, 0, driven);
  std::vector<CellId> sinks;
  for (int i = 0; i < 4; ++i) {
    Cell snk;
    snk.type = CellType::kFf;
    snk.width = 8;
    sinks.push_back(nl.add_cell(std::move(snk)));
  }
  nl.connect_input(sinks[0], 0, dead_a);
  nl.connect_input(sinks[1], 0, dead_a);
  nl.connect_input(sinks[2], 0, dead_b);
  nl.connect_input(sinks[3], 0, driven);

  PhysState phys;
  phys.resize_for(nl);
  // Stale routes on the dead nets must be dropped by the phys overload.
  phys.routes[dead_a].edges.push_back({TileCoord{0, 0}, TileCoord{1, 0}});
  phys.routes[dead_b].edges.push_back({TileCoord{0, 1}, TileCoord{1, 1}});

  alias_net(nl, phys, dead_a, driven);
  alias_net(nl, phys, dead_b, driven);

  ASSERT_EQ(nl.net(driven).sinks.size(), 4u);
  for (const CellId s : sinks) EXPECT_EQ(nl.cell(s).inputs[0], driven);
  EXPECT_TRUE(nl.net(dead_a).sinks.empty());
  EXPECT_TRUE(nl.net(dead_b).sinks.empty());
  EXPECT_TRUE(phys.routes[dead_a].edges.empty());
  EXPECT_TRUE(phys.routes[dead_b].edges.empty());

  // Place the 5 cells and route the merged net: a 1-driver 4-sink net must
  // be legal for both the routing and channel-capacity DRC stages.
  const Device device = make_xcku5p_sim();
  phys.cell_loc[d] = TileCoord{2, 2};
  phys.cell_loc[sinks[0]] = TileCoord{4, 2};
  phys.cell_loc[sinks[1]] = TileCoord{2, 4};
  phys.cell_loc[sinks[2]] = TileCoord{5, 5};
  phys.cell_loc[sinks[3]] = TileCoord{1, 1};
  RouteOptions ropt;
  const RouteResult routed = route_design(device, nl, phys, ropt);
  ASSERT_TRUE(routed.success) << routed.error;

  DrcContext ctx;
  ctx.netlist = &nl;
  ctx.phys = &phys;
  ctx.device = &device;
  ctx.channel_capacity = ropt.channel_capacity;
  DrcOptions dopt;
  dopt.waived_rules = {"net-dangling"};  // top-level stream ports stay open
  const DrcReport report = run_drc(ctx, kDrcStructural | kDrcPlacement | kDrcRouting, dopt);
  EXPECT_TRUE(report.clean()) << report.to_string();
}

TEST(StitchGraph, ForkedDiamondSimulatesBitExact) {
  // in -> fork -> {relu, relu} -> add: the stitched diamond must behave as
  // the identity under non-negative data doubled by the join.
  const Netlist fork = make_stream_fork("fk", 2);
  const Netlist left = make_relu_component("rl");
  const Netlist right = make_relu_component("rr");
  const Netlist join = make_add_component("j", 16, 2);
  const std::vector<StreamEdge> edges = {
      {0, 1, 0, 0},  // fork branch 0 -> left
      {0, 2, 1, 0},  // fork branch 1 -> right
      {1, 3, 0, 0},  // left -> join port 0
      {2, 3, 0, 1},  // right -> join port 1
  };
  const Netlist top = stitch_graph({&fork, &left, &right, &join}, edges, 0, 3, "diamond");
  EXPECT_TRUE(top.validate().empty());

  const Tensor input = random_tensor(1, 4, 4, 515);
  std::vector<Fixed16> expected;
  for (const Fixed16& v : input.data) {
    const Fixed16 r = v.raw > 0 ? v : Fixed16::from_raw(0);
    expected.push_back(r + r);
  }
  Simulator sim(top);
  const auto out = run_stream(sim, input.data, expected.size());
  expect_tensor_eq(out, expected);
}

TEST(StitchChain, FunctionallyEquivalentToSeparateComponents) {
  // conv -> pool stitched into one netlist must equal running the golden
  // layers in sequence.
  ConvParams cp;
  cp.in_c = 2;
  cp.out_c = 2;
  cp.kernel = 3;
  cp.in_h = 6;
  cp.in_w = 6;
  const auto weights = random_params(static_cast<std::size_t>(2) * 2 * 9, 301);
  const auto bias = random_params(2, 302);
  const Netlist conv = make_conv_component(cp, weights, bias);
  PoolParams pp;
  pp.channels = 2;
  pp.kernel = 2;
  pp.in_h = 4;
  pp.in_w = 4;
  pp.fuse_relu = true;
  const Netlist pool = make_pool_component(pp);

  const Netlist chain = stitch_chain({&conv, &pool}, "conv_pool");
  EXPECT_TRUE(chain.validate().empty());
  EXPECT_EQ(chain.cell_count(), conv.cell_count() + pool.cell_count());

  const Tensor input = random_tensor(2, 6, 6, 303);
  const Tensor expected = golden_relu(
      golden_maxpool(golden_conv2d(input, weights, bias, 2, 3, 1), 2));
  Simulator sim(chain);
  const auto out = run_stream(sim, input.data, expected.data.size());
  expect_tensor_eq(out, expected.data);
}

TEST(StitchChain, SingleStagePassesThrough) {
  const Netlist relu = make_relu_component("r");
  const Netlist chain = stitch_chain({&relu}, "solo");
  EXPECT_TRUE(chain.validate().empty());
  EXPECT_NE(chain.find_port("in_data"), nullptr);
  EXPECT_NE(chain.find_port("out_valid"), nullptr);
}

Checkpoint make_fake_checkpoint(const std::string& name, int width_tiles) {
  ConvParams p;
  p.name = name;
  p.in_c = 1;
  p.out_c = 1;
  p.kernel = 2;
  p.in_h = 4;
  p.in_w = 4;
  Checkpoint cp;
  cp.netlist = make_conv_component(p, random_params(4, 401), random_params(1, 402));
  cp.phys.resize_for(cp.netlist);
  for (CellId c = 0; c < cp.netlist.cell_count(); ++c) {
    cp.phys.cell_loc[c] = TileCoord{static_cast<int>(c) % width_tiles, 2};
  }
  cp.pblock = Pblock{0, 0, width_tiles - 1, 7};
  cp.meta.fmax_mhz = 300.0;
  return cp;
}

TEST(Composer, TracksInstanceRangesAndMacroNets) {
  const Checkpoint a = make_fake_checkpoint("a", 4);
  const Checkpoint b = make_fake_checkpoint("b", 4);
  Composer composer("top");
  const int ia = composer.add_instance(a, "a0");
  const int ib = composer.add_instance(b, "b0");
  composer.connect(ia, ib);
  composer.expose_input(ia);
  composer.expose_output(ib);
  const ComposedDesign design = std::move(composer).finish();

  ASSERT_EQ(design.instances.size(), 2u);
  EXPECT_EQ(design.instances[0].cell_offset, 0u);
  EXPECT_EQ(design.instances[0].cell_end, a.netlist.cell_count());
  EXPECT_EQ(design.instances[1].cell_offset, a.netlist.cell_count());
  EXPECT_EQ(design.netlist.cell_count(), a.netlist.cell_count() + b.netlist.cell_count());
  ASSERT_EQ(design.macro_nets.size(), 1u);
  EXPECT_EQ(design.macro_nets[0].items, (std::vector<std::int32_t>{0, 1}));
  EXPECT_TRUE(design.netlist.validate().empty());
  EXPECT_NE(design.netlist.find_port("in_data"), nullptr);
  EXPECT_NE(design.netlist.find_port("out_data"), nullptr);
}

TEST(Composer, TranslateInstanceMovesOnlyThatInstance) {
  const Checkpoint a = make_fake_checkpoint("a", 4);
  const Checkpoint b = make_fake_checkpoint("b", 4);
  Composer composer("top");
  composer.add_instance(a, "a0");
  composer.add_instance(b, "b0");
  ComposedDesign design = std::move(composer).finish();

  const TileCoord before_a = design.phys.cell_loc[0];
  const TileCoord before_b = design.phys.cell_loc[design.instances[1].cell_offset];
  design.translate_instance(1, 10, 6);
  EXPECT_EQ(design.phys.cell_loc[0], before_a);  // instance 0 untouched
  const TileCoord after_b = design.phys.cell_loc[design.instances[1].cell_offset];
  EXPECT_EQ(after_b.x, before_b.x + 10);
  EXPECT_EQ(after_b.y, before_b.y + 6);
  EXPECT_EQ(design.instances[1].footprint.x0, 10);
}

TEST(Composer, MacroItemsMirrorFootprints) {
  const Checkpoint a = make_fake_checkpoint("a", 6);
  Composer composer("top");
  composer.add_instance(a, "solo");
  const ComposedDesign design = std::move(composer).finish();
  const auto items = design.macro_items();
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].name, "solo");
  EXPECT_EQ(items[0].footprint, a.pblock);
}

TEST(Composer, FinishRunsStructuralDrcGate) {
  // A checkpoint whose netlist records an inconsistent driver pin must be
  // caught by the compose-stage DRC gate inside finish().
  Checkpoint broken = make_fake_checkpoint("bad", 4);
  for (NetId n = 0; n < broken.netlist.net_count(); ++n) {
    if (broken.netlist.net(n).driver != kInvalidCell) {
      broken.netlist.net(n).driver_pin = 99;
      break;
    }
  }
  Composer composer("top");
  composer.add_instance(broken, "bad0");
  EXPECT_THROW(std::move(composer).finish(), std::runtime_error);
}

TEST(Composer, FinishedDesignPassesStructuralDrc) {
  const Checkpoint a = make_fake_checkpoint("a", 4);
  const Checkpoint b = make_fake_checkpoint("b", 4);
  Composer composer("top");
  const int ia = composer.add_instance(a, "a0");
  const int ib = composer.add_instance(b, "b0");
  composer.connect(ia, ib);
  composer.expose_input(ia);
  composer.expose_output(ib);
  const ComposedDesign design = std::move(composer).finish();

  const DrcReport report = run_structural_drc(design.netlist);
  EXPECT_TRUE(report.clean()) << report.to_string();

  const std::vector<DrcInstance> instances = design.drc_instances();
  ASSERT_EQ(instances.size(), 2u);
  EXPECT_EQ(instances[0].name, "a0");
  EXPECT_EQ(instances[0].cell_begin, design.instances[0].cell_offset);
  EXPECT_EQ(instances[0].cell_end, design.instances[0].cell_end);
  EXPECT_EQ(instances[1].net_begin, design.instances[1].net_offset);
  EXPECT_EQ(instances[1].footprint, design.instances[1].footprint);
}

TEST(Composer, ConnectRefusesImplicitStreamFanOut) {
  const Checkpoint a = make_fake_checkpoint("a", 4);
  const Checkpoint b = make_fake_checkpoint("b", 4);
  const Checkpoint c = make_fake_checkpoint("c", 4);
  Composer composer("top");
  const int ia = composer.add_instance(a, "a0");
  const int ib = composer.add_instance(b, "b0");
  const int ic = composer.add_instance(c, "c0");
  composer.connect(ia, ib);
  try {
    composer.connect(ia, ic);
    FAIL() << "expected implicit fan-out to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("make_stream_fork"), std::string::npos);
  }
  // Two producers on one input port are equally illegal.
  EXPECT_THROW(composer.connect(ic, ib), std::runtime_error);
}

TEST(Composer, MissingPortThrows) {
  Checkpoint broken = make_fake_checkpoint("x", 4);
  broken.netlist.ports().clear();
  Composer composer("top");
  const int i0 = composer.add_instance(broken, "x0");
  EXPECT_THROW(composer.expose_input(i0), std::runtime_error);
}

TEST(BuildGroup, FusedGroupNamesAndSignatures) {
  const CnnModel model = make_lenet5();
  const ModelImpl impl = choose_implementation(model, 64);
  const auto groups = default_grouping(model);
  const std::string sig0 = group_signature(model, impl, groups[0]);
  const std::string sig1 = group_signature(model, impl, groups[1]);
  EXPECT_NE(sig0, sig1);
  EXPECT_NE(sig0.find("conv"), std::string::npos);
  EXPECT_NE(sig1.find("pool"), std::string::npos);
  EXPECT_NE(sig1.find("_r"), std::string::npos);  // fused relu marker
  // Deterministic.
  EXPECT_EQ(sig0, group_signature(model, impl, groups[0]));
}

TEST(BuildGroup, FlatNetlistMatchesReferenceInference) {
  // Whole mini-CNN synthesized flat and simulated against the golden path.
  const std::string text = R"(network mini
input 2 6 6
conv c1 out=2 k=3
pool p1 k=2 relu
)";
  const CnnModel model = parse_arch_def(text);
  const ModelImpl impl = choose_implementation(model, 8);
  const auto groups = default_grouping(model);
  const Netlist flat = build_flat_netlist(model, impl, groups);
  EXPECT_TRUE(flat.validate().empty());

  const Tensor input = random_tensor(2, 6, 6, 777);
  const auto expected = reference_inference(model, input);
  Simulator sim(flat);
  const auto out = run_stream(sim, input.data, expected.size());
  expect_tensor_eq(out, expected);
}

}  // namespace
}  // namespace fpgasim
