#include <gtest/gtest.h>

#include "sim/golden.h"
#include "sim/simulator.h"
#include "stream_harness.h"
#include "synth/layers.h"

namespace fpgasim {
namespace {

using testhelpers::expect_tensor_eq;
using testhelpers::random_params;
using testhelpers::random_tensor;
using testhelpers::run_stream;

struct ConvCase {
  int in_c, out_c, kernel, h, w, stride, ic_par, oc_par, dsp_stages;
};

std::ostream& operator<<(std::ostream& os, const ConvCase& c) {
  return os << "i" << c.in_c << "_o" << c.out_c << "_k" << c.kernel << "_" << c.h << "x"
            << c.w << "_s" << c.stride << "_p" << c.ic_par << "x" << c.oc_par << "_d"
            << c.dsp_stages;
}

class ConvComponent : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvComponent, MatchesGoldenModel) {
  const ConvCase& tc = GetParam();
  ConvParams p;
  p.name = "conv_t";
  p.in_c = tc.in_c;
  p.out_c = tc.out_c;
  p.kernel = tc.kernel;
  p.in_h = tc.h;
  p.in_w = tc.w;
  p.stride = tc.stride;
  p.ic_par = tc.ic_par;
  p.oc_par = tc.oc_par;
  p.dsp_stages = tc.dsp_stages;

  const auto weights =
      random_params(static_cast<std::size_t>(tc.out_c) * tc.in_c * tc.kernel * tc.kernel, 11);
  const auto bias = random_params(static_cast<std::size_t>(tc.out_c), 12);
  const Tensor input = random_tensor(tc.in_c, tc.h, tc.w, 13);
  const Tensor expected = golden_conv2d(input, weights, bias, tc.out_c, tc.kernel, tc.stride);

  const Netlist nl = make_conv_component(p, weights, bias);
  ASSERT_TRUE(nl.validate().empty());
  Simulator sim(nl);
  const auto out = run_stream(sim, input.data, expected.data.size());
  expect_tensor_eq(out, expected.data);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConvComponent,
    ::testing::Values(ConvCase{1, 1, 3, 6, 6, 1, 1, 1, 1},   // minimal
                      ConvCase{1, 4, 3, 6, 6, 1, 1, 4, 1},   // CU columns
                      ConvCase{4, 1, 3, 6, 6, 1, 4, 1, 1},   // PE lanes
                      ConvCase{2, 4, 3, 6, 6, 1, 2, 2, 1},   // both
                      ConvCase{4, 4, 3, 8, 8, 1, 2, 2, 1},   // folded groups
                      ConvCase{1, 2, 5, 8, 8, 1, 1, 2, 1},   // 5x5 kernel (LeNet)
                      ConvCase{2, 2, 3, 7, 7, 2, 1, 1, 1},   // stride 2
                      ConvCase{1, 1, 1, 4, 4, 1, 1, 1, 1},   // pointwise
                      ConvCase{2, 4, 3, 6, 6, 1, 2, 2, 0},   // combinational DSP
                      ConvCase{2, 4, 3, 6, 6, 1, 2, 2, 2},   // deep DSP pipeline
                      ConvCase{3, 6, 3, 6, 6, 1, 3, 3, 1},   // non-power-of-two
                      ConvCase{2, 3, 4, 9, 9, 1, 1, 3, 1},   // even kernel
                      ConvCase{6, 4, 3, 5, 5, 2, 2, 2, 1},   // deep input folding
                      ConvCase{1, 8, 3, 6, 6, 1, 1, 8, 1})); // wide CU fan

TEST(ConvComponent, FusedReluClampsOutputs) {
  ConvParams p;
  p.in_c = 1;
  p.out_c = 2;
  p.kernel = 3;
  p.in_h = 5;
  p.in_w = 5;
  p.fuse_relu = true;
  const auto weights = random_params(static_cast<std::size_t>(2) * 9, 31);
  const auto bias = random_params(2, 32);
  const Tensor input = random_tensor(1, 5, 5, 33);
  const Tensor expected =
      golden_relu(golden_conv2d(input, weights, bias, 2, 3, 1));

  const Netlist nl = make_conv_component(p, weights, bias);
  Simulator sim(nl);
  const auto out = run_stream(sim, input.data, expected.data.size());
  expect_tensor_eq(out, expected.data);
}

TEST(ConvComponent, ProcessesBackToBackImages) {
  ConvParams p;
  p.in_c = 2;
  p.out_c = 2;
  p.kernel = 3;
  p.in_h = 5;
  p.in_w = 5;
  p.ic_par = 2;
  p.oc_par = 2;
  const auto weights = random_params(static_cast<std::size_t>(2) * 2 * 9, 41);
  const auto bias = random_params(2, 42);
  const Netlist nl = make_conv_component(p, weights, bias);
  Simulator sim(nl);
  for (int image = 0; image < 2; ++image) {
    const Tensor input = random_tensor(2, 5, 5, 50 + static_cast<std::uint64_t>(image));
    const Tensor expected = golden_conv2d(input, weights, bias, 2, 3, 1);
    const auto out = run_stream(sim, input.data, expected.data.size());
    expect_tensor_eq(out, expected.data);
  }
}

TEST(ConvComponent, RejectsIndivisibleParallelism) {
  ConvParams p;
  p.in_c = 3;
  p.ic_par = 2;
  EXPECT_THROW(make_conv_component(p, {}, {}), std::invalid_argument);
}

TEST(ConvComponent, ResourceFootprintScalesWithParallelism) {
  auto build = [](int ic_par, int oc_par) {
    ConvParams p;
    p.in_c = 4;
    p.out_c = 4;
    p.kernel = 3;
    p.in_h = 6;
    p.in_w = 6;
    p.ic_par = ic_par;
    p.oc_par = oc_par;
    p.materialize_roms = false;
    return make_conv_component(p, {}, {}).stats().resources;
  };
  const ResourceVec small = build(1, 1);
  const ResourceVec big = build(4, 4);
  EXPECT_EQ(small.dsp, 1);
  EXPECT_EQ(big.dsp, 16);  // exactly the MAC array
  EXPECT_GT(big.bram, small.bram);  // banked memories
  // LUTs do NOT necessarily grow: full parallelism folds the group
  // counters (icg/ocg become constants), removing address adder chains.
}

TEST(ConvComponent, WeightBufferShrinksBramFootprint) {
  ConvParams p;
  p.in_c = 8;
  p.out_c = 16;
  p.kernel = 3;
  p.in_h = 12;
  p.in_w = 12;
  p.ic_par = 2;
  p.oc_par = 2;
  p.materialize_roms = false;
  ConvParams buffered = p;
  buffered.weight_buffer_ocg = 1;
  const auto full = make_conv_component(p, {}, {}).stats().resources;
  const auto small = make_conv_component(buffered, {}, {}).stats().resources;
  EXPECT_LE(small.bram, full.bram);
  EXPECT_EQ(small.dsp, full.dsp);
}

TEST(FcComponent, MatchesGoldenFc) {
  const int inputs = 12, outputs = 6;
  const auto weights = random_params(static_cast<std::size_t>(outputs) * inputs, 61);
  const auto bias = random_params(static_cast<std::size_t>(outputs), 62);
  const auto input = random_params(static_cast<std::size_t>(inputs), 63);
  const auto expected = golden_fc(input, weights, bias, outputs);

  const Netlist nl = make_fc_component("fc_t", inputs, outputs, weights, bias, 4, 2);
  ASSERT_TRUE(nl.validate().empty());
  Simulator sim(nl);
  const auto out = run_stream(sim, input, expected.size());
  expect_tensor_eq(out, expected);
}

TEST(FcComponent, SingleOutputNeuron) {
  const auto weights = random_params(8, 71);
  const auto bias = random_params(1, 72);
  const auto input = random_params(8, 73);
  const auto expected = golden_fc(input, weights, bias, 1);
  const Netlist nl_sim = make_fc_component("fc1", 8, 1, weights, bias);
  Simulator sim(nl_sim);
  const auto out = run_stream(sim, input, 1);
  expect_tensor_eq(out, expected);
}

TEST(ConvComponent, CycleCountMatchesAnalyticModel) {
  // The latency model in cnn/impl.h assumes LOAD + COMPUTE + DRAIN phases;
  // the generated hardware must be within a small pipeline epsilon.
  ConvParams p;
  p.in_c = 2;
  p.out_c = 2;
  p.kernel = 3;
  p.in_h = 6;
  p.in_w = 6;
  p.ic_par = 1;
  p.oc_par = 1;
  const auto weights = random_params(static_cast<std::size_t>(2) * 2 * 9, 81);
  const auto bias = random_params(2, 82);
  const Tensor input = random_tensor(2, 6, 6, 83);
  const Netlist nl_sim = make_conv_component(p, weights, bias);
  Simulator sim(nl_sim);
  sim.set_input("out_ready", 1);
  sim.set_input("in_valid", 1);
  for (const Fixed16& v : input.data) {
    sim.set_input("in_data", static_cast<std::uint16_t>(v.raw));
    sim.step();
  }
  sim.set_input("in_valid", 0);
  const std::size_t want = static_cast<std::size_t>(p.out_c) * p.out_h() * p.out_w();
  std::size_t got = 0;
  long cycles = 0;
  while (got < want && cycles < 100000) {
    sim.step();
    ++cycles;
    if (sim.get_output("out_valid") == 1) ++got;
  }
  const long model = p.compute_cycles() + p.drain_cycles();
  EXPECT_NEAR(static_cast<double>(cycles), static_cast<double>(model), 16.0);
}

}  // namespace
}  // namespace fpgasim
