#include <gtest/gtest.h>

#include "flow/ooc.h"
#include "stream_harness.h"
#include "synth/layers.h"

namespace fpgasim {
namespace {

using testhelpers::random_params;

Netlist small_conv(bool materialize = true) {
  ConvParams p;
  p.name = "conv_ooc";
  p.in_c = 2;
  p.out_c = 2;
  p.kernel = 3;
  p.in_h = 6;
  p.in_w = 6;
  p.ic_par = 2;
  p.materialize_roms = materialize;
  return make_conv_component(p, materialize ? random_params(36, 501) : std::vector<Fixed16>{},
                             materialize ? random_params(2, 502) : std::vector<Fixed16>{});
}

TEST(OocFlow, ProducesLockedPlacedRoutedCheckpoint) {
  const Device device = make_xcku5p_sim();
  const OocResult result = implement_ooc(device, small_conv());
  const Checkpoint& cp = result.checkpoint;

  EXPECT_GT(result.timing.fmax_mhz, 50.0);
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_EQ(cp.meta.device, "xcku5p_sim");
  EXPECT_DOUBLE_EQ(cp.meta.fmax_mhz, result.timing.fmax_mhz);

  // Logic locking: everything locked after function optimization.
  for (CellId c = 0; c < cp.netlist.cell_count(); ++c) {
    EXPECT_TRUE(cp.netlist.cell(c).placement_locked);
  }
  // Every cell placed inside the pblock.
  for (CellId c = 0; c < cp.netlist.cell_count(); ++c) {
    const TileCoord loc = cp.phys.cell_loc[c];
    EXPECT_TRUE(cp.pblock.contains(loc.x, loc.y))
        << cp.netlist.cell(c).name << " at " << loc.x << "," << loc.y << " outside "
        << cp.pblock.to_string();
  }
  // Every routed edge stays inside the pblock (relocation legality).
  for (const RouteInfo& route : cp.phys.routes) {
    for (const auto& [a, b] : route.edges) {
      EXPECT_TRUE(cp.pblock.contains(a.x, a.y));
      EXPECT_TRUE(cp.pblock.contains(b.x, b.y));
    }
  }
  // The pblock provides enough resources for the component.
  EXPECT_TRUE(
      cp.netlist.stats().resources.fits_in(pblock_resources(device, cp.pblock)));
}

TEST(OocFlow, StrategiesPickTheBest) {
  const Device device = make_xcku5p_sim();
  OocOptions one;
  one.strategies = 1;
  one.seed = 3;
  OocOptions many;
  many.strategies = 4;
  many.seed = 3;
  const double single = implement_ooc(device, small_conv(), one).timing.fmax_mhz;
  const double best = implement_ooc(device, small_conv(), many).timing.fmax_mhz;
  EXPECT_GE(best, single - 1e-9);  // exploration can only help
}

TEST(OocFlow, PortPlanningBeatsRandomPins) {
  const Device device = make_xcku5p_sim();
  OocOptions planned;
  planned.seed = 5;
  OocOptions unplanned = planned;
  unplanned.port_planning = false;
  const auto with = implement_ooc(device, small_conv(), planned);
  const auto without = implement_ooc(device, small_conv(), unplanned);
  // Random interior pins should not be better; usually strictly worse.
  EXPECT_GE(with.timing.fmax_mhz, without.timing.fmax_mhz * 0.9);
}

TEST(OocFlow, UnlockedOptionLeavesNetlistOpen) {
  const Device device = make_xcku5p_sim();
  OocOptions opt;
  opt.lock = false;
  const OocResult result = implement_ooc(device, small_conv(), opt);
  bool any_locked = false;
  for (CellId c = 0; c < result.checkpoint.netlist.cell_count(); ++c) {
    any_locked |= result.checkpoint.netlist.cell(c).placement_locked;
  }
  EXPECT_FALSE(any_locked);
}

TEST(OocFlow, ThrowsWhenComponentCannotFitDevice) {
  const Device device = make_tiny_device();  // only 3 DSP columns x 16 sites
  ConvParams p;
  p.in_c = 16;
  p.out_c = 16;
  p.kernel = 3;
  p.in_h = 8;
  p.in_w = 8;
  p.ic_par = 16;
  p.oc_par = 16;  // 256 DSPs: cannot fit
  p.materialize_roms = false;
  Netlist big = make_conv_component(p, {}, {});
  EXPECT_THROW(implement_ooc(device, std::move(big)), std::runtime_error);
}

TEST(OocFlow, CheckpointStillSimulatesCorrectly) {
  // Function optimization must not alter logic: the locked checkpoint
  // still computes the convolution.
  const Device device = make_xcku5p_sim();
  ConvParams p;
  p.in_c = 1;
  p.out_c = 2;
  p.kernel = 3;
  p.in_h = 5;
  p.in_w = 5;
  const auto weights = random_params(18, 601);
  const auto bias = random_params(2, 602);
  const OocResult result =
      implement_ooc(device, make_conv_component(p, weights, bias));

  const Tensor input = testhelpers::random_tensor(1, 5, 5, 603);
  const Tensor expected = golden_conv2d(input, weights, bias, 2, 3, 1);
  Simulator sim(result.checkpoint.netlist);
  const auto out = testhelpers::run_stream(sim, input.data, expected.data.size());
  testhelpers::expect_tensor_eq(out, expected.data);
}

}  // namespace
}  // namespace fpgasim
