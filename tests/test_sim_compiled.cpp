// Compiled-vs-interpreter A/B equivalence: the interpreter is the oracle
// (sim/eval.h semantics contract), the compiled bit-parallel simulator
// must be bit-identical on every output, every cycle, every lane — on
// hand-built corner netlists, randomized synthetic netlists, and the real
// LeNet / VGG-16 / resblock designs through both flows.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "flow/build.h"
#include "flow/monolithic.h"
#include "flow/preimpl.h"
#include "sim/compiled.h"
#include "stream_harness.h"
#include "synth/builder.h"
#include "util/rng.h"

namespace fpgasim {
namespace {

using testhelpers::random_tensor;
using testhelpers::run_stream;
using testhelpers::run_stream_batch;

// ---------------------------------------------------------------------------
// Randomized synthetic netlists: every primitive kind, random widths,
// random connectivity.

Netlist random_netlist(std::uint64_t seed) {
  Rng rng(seed);
  NetlistBuilder b("fuzz" + std::to_string(seed));
  std::vector<NetId> pool;

  const int n_inputs = 2 + static_cast<int>(rng.next_below(4));
  for (int i = 0; i < n_inputs; ++i) {
    const auto width = static_cast<std::uint16_t>(1 + rng.next_below(24));
    pool.push_back(b.in_port("in" + std::to_string(i), width));
  }
  const auto pick = [&] { return pool[rng.next_below(pool.size())]; };
  const auto rand_width = [&] { return static_cast<std::uint16_t>(1 + rng.next_below(24)); };

  const int n_ops = 24 + static_cast<int>(rng.next_below(40));
  for (int i = 0; i < n_ops; ++i) {
    const std::uint16_t w = rand_width();
    NetId out = kInvalidNet;
    switch (rng.next_below(16)) {
      case 0: out = b.op2(LutOp::kAnd, pick(), pick(), w); break;
      case 1: out = b.op2(LutOp::kOr, pick(), pick(), w); break;
      case 2: out = b.op2(LutOp::kXor, pick(), pick(), w); break;
      case 3: out = b.not1(pick(), w); break;
      case 4: out = b.mux2(pick(), pick(), b.bit(pick(), 0), w); break;
      case 5: out = rng.next_below(2) != 0 ? b.eq(pick(), pick()) : b.ltu(pick(), pick()); break;
      case 6: out = rng.next_below(2) != 0 ? b.add(pick(), pick(), w) : b.sub(pick(), pick(), w); break;
      case 7: out = b.smax(pick(), pick(), w); break;
      case 8: out = b.relu(pick(), w); break;
      case 9:
        // DSP widths stay <= 24 so sext(a)*sext(b) cannot overflow int64.
        out = b.dsp(pick(), pick(), rng.next_below(2) != 0 ? pick() : kInvalidNet,
                    static_cast<int>(rng.next_below(9)), static_cast<int>(rng.next_below(4)),
                    w);
        break;
      case 10:
        out = b.ff(pick(), rng.next_below(2) != 0 ? b.bit(pick(), 0) : kInvalidNet, w);
        break;
      case 11:
        out = b.srl(pick(), rng.next_below(2) != 0 ? b.bit(pick(), 0) : kInvalidNet,
                    static_cast<std::uint16_t>(1 + rng.next_below(6)), w);
        break;
      case 12: {
        const std::uint32_t depth = 4 + static_cast<std::uint32_t>(rng.next_below(12));
        if (rng.next_below(2) != 0) {
          std::vector<std::uint64_t> words(depth);
          for (auto& word : words) word = rng();
          out = b.bram(pick(), kInvalidNet, kInvalidNet, depth, w, b.rom(std::move(words)));
        } else {
          out = b.bram(pick(), pick(), b.bit(pick(), 0), depth, w, -1, {},
                       rng.next_below(2) != 0 ? pick() : kInvalidNet);
        }
        break;
      }
      case 13: {
        const auto ctr =
            b.counter(1 + static_cast<std::uint32_t>(rng.next_below(9)), b.bit(pick(), 0), w);
        out = rng.next_below(2) != 0 ? ctr.value : ctr.wrap;
        break;
      }
      case 14: out = b.accum(pick(), b.bit(pick(), 0), b.bit(pick(), 0), w); break;
      case 15: {
        std::vector<NetId> choices;
        const std::size_t n = 3 + rng.next_below(3);
        for (std::size_t j = 0; j < n; ++j) choices.push_back(pick());
        out = b.muxn(choices, pick(), w);
        break;
      }
    }
    pool.push_back(out);
  }

  const int n_outputs = 3 + static_cast<int>(rng.next_below(3));
  for (int i = 0; i < n_outputs; ++i) {
    // Bias toward recent nets so deep logic stays observable.
    const NetId net = pool[pool.size() - 1 - rng.next_below(pool.size() / 2)];
    b.out_port("out" + std::to_string(i), net);
  }
  return std::move(b).take();
}

TEST(CompiledSim, RandomNetlistFuzzMatchesInterpreter) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const Netlist nl = random_netlist(seed);
    ASSERT_TRUE(nl.validate().empty()) << "seed " << seed;
    const std::string diff = compare_compiled_vs_interpreter(nl, 48, 7000 + seed);
    EXPECT_EQ(diff, "") << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Hand-built corners the generators never produce.

TEST(CompiledSim, MultiOutputCellsFanOutInBothSimulators) {
  Netlist nl("mo");
  const NetId a = nl.add_net(8, "a");
  nl.add_port({"a", PortDir::kInput, 8, a});
  const NetId q0 = nl.add_net(8, "q0");
  const NetId q1 = nl.add_net(8, "q1");
  Cell pass;
  pass.type = CellType::kLut;
  pass.op = LutOp::kPass;
  pass.width = 8;
  const CellId c = nl.add_cell(std::move(pass));
  nl.connect_input(c, 0, a);
  nl.connect_output(c, 0, q0);
  nl.connect_output(c, 1, q1);
  const NetId f0 = nl.add_net(8, "f0");
  const NetId f1 = nl.add_net(8, "f1");
  Cell ff;
  ff.type = CellType::kFf;
  ff.width = 8;
  const CellId fc = nl.add_cell(std::move(ff));
  nl.connect_input(fc, 0, q1);
  nl.connect_output(fc, 0, f0);
  nl.connect_output(fc, 1, f1);
  nl.add_port({"q0", PortDir::kOutput, 8, q0});
  nl.add_port({"q1", PortDir::kOutput, 8, q1});
  nl.add_port({"f0", PortDir::kOutput, 8, f0});
  nl.add_port({"f1", PortDir::kOutput, 8, f1});
  ASSERT_TRUE(nl.validate().empty());
  EXPECT_EQ(compare_compiled_vs_interpreter(nl, 16, 42), "");
}

TEST(CompiledSim, WideWidthCellsAreDefinedAndMatch) {
  // Widths 63/64 exercise the clamp_signed / mask_width guards under the
  // sanitizer jobs in both evaluators.
  NetlistBuilder b("wide");
  const NetId a = b.in_port("a", 64);
  const NetId c = b.in_port("b", 63);
  b.out_port("p", b.dsp(a, c, kInvalidNet, 0, 1, 64));
  b.out_port("s", b.add(a, c, 64));
  b.out_port("m", b.smax(a, c, 63));
  const Netlist nl = std::move(b).take();
  EXPECT_EQ(compare_compiled_vs_interpreter(nl, 16, 43), "");
}

TEST(CompiledSim, BatchApiDrivesLanesIndependently) {
  NetlistBuilder b("lanes");
  const NetId x = b.in_port("x", 16);
  const NetId en = b.in_port("en", 1);
  b.out_port("acc", b.accum(x, en, b.zero(1), 16));
  const Netlist nl = std::move(b).take();
  CompiledSim sim(nl);
  const int x_in = sim.input_index("x");
  const int en_in = sim.input_index("en");
  const int acc_out = sim.output_index("acc");

  std::uint64_t xs[CompiledSim::kLanes];
  std::uint64_t ens[CompiledSim::kLanes];
  for (std::size_t l = 0; l < CompiledSim::kLanes; ++l) {
    xs[l] = l + 1;
    ens[l] = l % 2;  // odd lanes accumulate, even lanes hold
  }
  sim.set_inputs(x_in, xs);
  sim.set_inputs(en_in, ens);
  sim.run(5);
  std::uint64_t acc[CompiledSim::kLanes];
  sim.get_outputs(acc_out, acc);
  for (std::size_t l = 0; l < CompiledSim::kLanes; ++l) {
    EXPECT_EQ(acc[l], l % 2 == 1 ? 5 * (l + 1) : 0u) << "lane " << l;
  }
  EXPECT_EQ(sim.cycle(), 5u);
  EXPECT_GT(sim.comb_ops(), 0u);
  EXPECT_GT(sim.levels(), 0u);
}

TEST(CompiledSim, DetectsCombinationalLoop) {
  Netlist nl("loop");
  const NetId n1 = nl.add_net(1);
  const NetId n2 = nl.add_net(1);
  Cell c1;
  c1.type = CellType::kLut;
  c1.op = LutOp::kNot;
  const CellId a = nl.add_cell(std::move(c1));
  Cell c2;
  c2.type = CellType::kLut;
  c2.op = LutOp::kNot;
  const CellId b2 = nl.add_cell(std::move(c2));
  nl.connect_input(a, 0, n2);
  nl.connect_output(a, 0, n1);
  nl.connect_input(b2, 0, n1);
  nl.connect_output(b2, 0, n2);
  EXPECT_THROW(CompiledSim sim(nl), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Real networks through both flows.

struct FlowPair {
  Device device = make_xcku5p_sim();
  CnnModel model;
  ModelImpl impl;
  std::vector<std::vector<int>> groups;
  CheckpointDb db;
  ComposedDesign composed;
  Netlist flat;

  explicit FlowPair(CnnModel m, long dsp_budget, int max_tile = 28) : model(std::move(m)) {
    impl = choose_implementation(model, dsp_budget, max_tile);
    groups = default_grouping(model);
    prepare_component_db(device, model, impl, groups, db);
    run_preimpl_cnn(device, model, impl, groups, db, composed);
    flat = build_flat_netlist(model, impl, groups);
    PhysState phys;
    run_monolithic_flow(device, flat, phys);
  }
};

TEST(CompiledSim, LeNetBothFlowsMatchInterpreter) {
  FlowPair f(make_lenet5(), 16);
  EXPECT_EQ(compare_compiled_vs_interpreter(f.composed.netlist, 32, 1001), "");
  EXPECT_EQ(compare_compiled_vs_interpreter(f.flat, 32, 1002), "");
}

TEST(CompiledSim, ResblockBothFlowsMatchInterpreter) {
  FlowPair f(make_resblock_net(), 16);
  EXPECT_EQ(compare_compiled_vs_interpreter(f.composed.netlist, 32, 1003), "");
  EXPECT_EQ(compare_compiled_vs_interpreter(f.flat, 32, 1004), "");
}

TEST(CompiledSim, Vgg16BothFlowsMatchInterpreter) {
  // Bounded random stimulus, sampled lanes: the full interpreter replay of
  // all 64 lanes on VGG is exactly the cost this simulator exists to avoid.
  FlowPair f(make_vgg16(), 384, 14);
  const std::vector<int> lanes{0, 13, 37, 63};
  EXPECT_EQ(compare_compiled_vs_interpreter(f.composed.netlist, 12, 1005, lanes), "");
  EXPECT_EQ(compare_compiled_vs_interpreter(f.flat, 12, 1006, lanes), "");
}

TEST(CompiledSim, ResblockBatchInferenceBitMatchesGoldenAndInterpreter) {
  // 64 different input tensors at once through the composed resblock; every
  // lane must reproduce the golden DFG reference, and lane 17 is replayed
  // through the interpreter's stream harness as the oracle spot-check.
  FlowPair f(make_resblock_net(), 16);
  std::vector<std::vector<Fixed16>> inputs(CompiledSim::kLanes);
  std::vector<std::vector<Fixed16>> expected(CompiledSim::kLanes);
  for (std::size_t l = 0; l < CompiledSim::kLanes; ++l) {
    const Tensor t = random_tensor(2, 8, 8, 2000 + l);
    inputs[l] = t.data;
    expected[l] = reference_inference(f.model, t);
  }
  CompiledSim cs(f.composed.netlist);
  const auto out = run_stream_batch(cs, inputs, expected[0].size());
  for (std::size_t l = 0; l < CompiledSim::kLanes; ++l) {
    ASSERT_EQ(out[l].size(), expected[l].size());
    for (std::size_t i = 0; i < out[l].size(); ++i) {
      ASSERT_EQ(out[l][i].raw, expected[l][i].raw) << "lane " << l << " word " << i;
    }
  }

  Simulator sim(f.composed.netlist);
  const Tensor t17 = random_tensor(2, 8, 8, 2000 + 17);
  const auto interp = run_stream(sim, t17.data, expected[17].size());
  testhelpers::expect_tensor_eq(interp, out[17]);
}

TEST(CompiledSim, MiniChainBatchInferenceMatchesGolden) {
  // The small conv->pool+relu->conv chain from the flow tests, flat
  // (monolithic) this time, full inference on all 64 lanes.
  const CnnModel model = parse_arch_def(R"(network mini
input 2 8 8
conv c1 out=4 k=3
pool p1 k=2 relu
conv c2 out=2 k=3
)");
  const ModelImpl impl = choose_implementation(model, 12);
  const auto groups = default_grouping(model);
  Netlist flat = build_flat_netlist(model, impl, groups);
  PhysState phys;
  const Device device = make_xcku5p_sim();
  run_monolithic_flow(device, flat, phys);

  std::vector<std::vector<Fixed16>> inputs(CompiledSim::kLanes);
  std::vector<std::vector<Fixed16>> expected(CompiledSim::kLanes);
  for (std::size_t l = 0; l < CompiledSim::kLanes; ++l) {
    const Tensor t = random_tensor(2, 8, 8, 3000 + l);
    inputs[l] = t.data;
    expected[l] = reference_inference(model, t);
  }
  CompiledSim cs(flat);
  const auto out = run_stream_batch(cs, inputs, expected[0].size());
  for (std::size_t l = 0; l < CompiledSim::kLanes; ++l) {
    ASSERT_EQ(out[l].size(), expected[l].size());
    for (std::size_t i = 0; i < out[l].size(); ++i) {
      ASSERT_EQ(out[l][i].raw, expected[l][i].raw) << "lane " << l << " word " << i;
    }
  }
}

}  // namespace
}  // namespace fpgasim
