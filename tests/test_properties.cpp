// Cross-module property tests: determinism of every CAD stage under a
// fixed seed, and end-to-end integrity of the checkpoint database when it
// round-trips through disk before composition.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "flow/build.h"
#include "flow/monolithic.h"
#include "flow/preimpl.h"
#include "stream_harness.h"

namespace fpgasim {
namespace {

using testhelpers::expect_tensor_eq;
using testhelpers::random_tensor;
using testhelpers::run_stream;

CnnModel tiny_model() {
  return parse_arch_def(R"(network prop
input 2 8 8
conv c1 out=4 k=3
pool p1 k=2 relu
)");
}

TEST(Determinism, OocFlowIsSeedStable) {
  const Device device = make_xcku5p_sim();
  const CnnModel model = tiny_model();
  const ModelImpl impl = choose_implementation(model, 8);
  const auto groups = default_grouping(model);
  OocOptions opt;
  opt.seed = 77;
  Netlist a = build_group_netlist(model, impl, groups[0]);
  Netlist b = build_group_netlist(model, impl, groups[0]);
  const OocResult ra = implement_ooc(device, std::move(a), opt);
  const OocResult rb = implement_ooc(device, std::move(b), opt);
  EXPECT_DOUBLE_EQ(ra.timing.fmax_mhz, rb.timing.fmax_mhz);
  EXPECT_EQ(ra.checkpoint.pblock, rb.checkpoint.pblock);
  EXPECT_EQ(ra.checkpoint.phys.cell_loc, rb.checkpoint.phys.cell_loc);
}

TEST(Determinism, PreImplFlowIsSeedStable) {
  const Device device = make_xcku5p_sim();
  const CnnModel model = tiny_model();
  const ModelImpl impl = choose_implementation(model, 8);
  const auto groups = default_grouping(model);
  CheckpointDb db;
  prepare_component_db(device, model, impl, groups, db);
  ComposedDesign d1, d2;
  const PreImplReport r1 = run_preimpl_cnn(device, model, impl, groups, db, d1);
  const PreImplReport r2 = run_preimpl_cnn(device, model, impl, groups, db, d2);
  EXPECT_DOUBLE_EQ(r1.timing.fmax_mhz, r2.timing.fmax_mhz);
  EXPECT_EQ(r1.macro.offsets, r2.macro.offsets);
}

TEST(Determinism, MonolithicFlowIsSeedStable) {
  const Device device = make_xcku5p_sim();
  const CnnModel model = tiny_model();
  const ModelImpl impl = choose_implementation(model, 8);
  const auto groups = default_grouping(model);
  Netlist f1 = build_flat_netlist(model, impl, groups);
  Netlist f2 = build_flat_netlist(model, impl, groups);
  PhysState p1, p2;
  const MonoReport r1 = run_monolithic_flow(device, f1, p1);
  const MonoReport r2 = run_monolithic_flow(device, f2, p2);
  EXPECT_DOUBLE_EQ(r1.timing.fmax_mhz, r2.timing.fmax_mhz);
  EXPECT_EQ(p1.cell_loc, p2.cell_loc);
}

TEST(Integration, DatabaseDiskRoundTripComposesAndSimulates) {
  // Save the component database to disk, reload it into a fresh database,
  // run the architecture optimization from the reloaded checkpoints, and
  // prove the composed accelerator still computes the network bit-exactly.
  const std::string dir = testing::TempDir() + "/prop_db";
  std::filesystem::remove_all(dir);
  const Device device = make_xcku5p_sim();
  const CnnModel model = tiny_model();
  const ModelImpl impl = choose_implementation(model, 8);
  const auto groups = default_grouping(model);

  {
    CheckpointDb db;
    prepare_component_db(device, model, impl, groups, db);
    db.save_dir(dir);
  }
  CheckpointDb reloaded;
  ASSERT_EQ(reloaded.load_dir(dir), groups.size());

  ComposedDesign composed;
  const PreImplReport report =
      run_preimpl_cnn(device, model, impl, groups, reloaded, composed);
  ASSERT_TRUE(report.route.success);
  ASSERT_TRUE(composed.netlist.validate().empty());

  const Tensor input = random_tensor(2, 8, 8, 555);
  const auto expected = reference_inference(model, input);
  Simulator sim(composed.netlist);
  const auto out = run_stream(sim, input.data, expected.size());
  expect_tensor_eq(out, expected);
}

TEST(Property, ArchDefRoundTripIsIdentity) {
  // parse_arch_def(to_arch_def(m)) == m for every model we can build —
  // linear chains, branching DFGs with explicit from= edges, and models
  // that already went through one round trip (idempotence).
  const std::vector<CnnModel> models = {
      make_lenet5(),
      make_resblock_net(),
      tiny_model(),
      parse_arch_def(R"(network inception
input 3 8 8
conv stem out=4 k=3
conv b1 out=2 k=1 from=stem
conv b2 out=6 k=1 from=stem
concat cat from=b1,b2 relu
fc head out=4
)"),
  };
  for (const CnnModel& model : models) {
    const std::string text = to_arch_def(model);
    CnnModel again = parse_arch_def(text);
    again.infer_shapes();
    EXPECT_EQ(again, model) << "round trip changed '" << model.name() << "':\n" << text;
    // Idempotence: a second trip emits byte-identical text.
    EXPECT_EQ(to_arch_def(again), text) << model.name();
  }
}

/// Randomized legal-construction model generator covering every layer
/// kind: linear stretches of conv / dwconv / pool / avgpool / gavgpool /
/// upsample / relu / fc interleaved with branch-and-join motifs (add on
/// matching 1x1-conv branches, concat on mismatched ones). Moves are
/// drawn only from the kinds legal for the current shape, so every
/// generated model passes infer_shapes.
CnnModel random_model(std::uint64_t seed) {
  Rng rng(seed);
  const auto pick = [&rng](int lo, int hi) {
    return static_cast<int>(rng.next_int(lo, hi));
  };
  const auto coin = [&rng] { return rng.next_below(2) == 0; };
  CnnModel model("rand" + std::to_string(seed));
  int c = pick(1, 4);
  int h = pick(4, 12);
  int w = pick(4, 12);
  model.add(Layer{.kind = LayerKind::kInput, .name = "in", .out_shape = Shape{c, h, w}});
  int next_id = 0;
  const auto fresh = [&next_id] {
    std::string name = std::to_string(next_id++);
    name.insert(0, "l");
    return name;
  };
  const auto pow2 = [](int v) { return v > 0 && (v & (v - 1)) == 0; };

  const int steps = pick(3, 8);
  for (int step = 0; step < steps; ++step) {
    std::vector<int> moves = {0, 7};                   // conv and fc always apply
    if (std::min(h, w) >= 1) moves.push_back(1);       // dwconv (k >= 1)
    if (h % 2 == 0 && w % 2 == 0) moves.push_back(2);  // pool k=2
    if (h % 2 == 0 && w % 2 == 0) moves.push_back(3);  // avgpool k=2 (window 4)
    if (pow2(h * w) && h * w <= 256) moves.push_back(4);  // gavgpool
    if (h * 2 <= 16 && w * 2 <= 16) moves.push_back(5);   // upsample
    moves.push_back(6);                                   // standalone relu
    if (h >= 1 && w >= 1) moves.push_back(8);             // branch + join
    const int move = moves[static_cast<std::size_t>(pick(0, static_cast<int>(moves.size()) - 1))];
    const bool relu = coin();
    switch (move) {
      case 0: {  // conv
        const int k = pick(1, std::min(3, std::min(h, w)));
        const int s = (h - k >= 1 && w - k >= 1 && coin()) ? 2 : 1;
        const int out = pick(1, 6);
        model.add(Layer{.kind = LayerKind::kConv, .name = fresh(), .kernel = k,
                        .stride = s, .out_c = out, .fuse_relu = relu});
        c = out;
        h = (h - k) / s + 1;
        w = (w - k) / s + 1;
        break;
      }
      case 1: {  // dwconv
        const int k = pick(1, std::min(3, std::min(h, w)));
        const int s = (h - k >= 1 && w - k >= 1 && coin()) ? 2 : 1;
        model.add(Layer{.kind = LayerKind::kDwConv, .name = fresh(), .kernel = k,
                        .stride = s, .fuse_relu = relu});
        h = (h - k) / s + 1;
        w = (w - k) / s + 1;
        break;
      }
      case 2:  // max pool
        model.add(Layer{.kind = LayerKind::kPool, .name = fresh(), .kernel = 2,
                        .fuse_relu = relu});
        h /= 2;
        w /= 2;
        break;
      case 3:  // average pool
        model.add(Layer{.kind = LayerKind::kAvgPool, .name = fresh(), .kernel = 2,
                        .fuse_relu = relu});
        h /= 2;
        w /= 2;
        break;
      case 4:  // global average pool
        model.add(Layer{.kind = LayerKind::kGlobalAvgPool, .name = fresh(),
                        .fuse_relu = relu});
        h = w = 1;
        break;
      case 5:  // nearest-neighbour upsample
        model.add(Layer{.kind = LayerKind::kUpsample, .name = fresh(), .kernel = 2,
                        .fuse_relu = relu});
        h *= 2;
        w *= 2;
        break;
      case 6:  // standalone activation
        model.add(Layer{.kind = LayerKind::kRelu, .name = fresh()});
        break;
      case 7: {  // fully connected (flattens)
        const int out = pick(1, 8);
        model.add(Layer{.kind = LayerKind::kFc, .name = fresh(), .out_c = out,
                        .fuse_relu = relu});
        c = out;
        h = w = 1;
        break;
      }
      case 8: {  // branch from the current tail, re-join with add or concat
        const int base = static_cast<int>(model.layers().size()) - 1;
        const bool use_add = coin();
        const int c1 = pick(1, 6);
        const int c2 = use_add ? c1 : pick(1, 6);
        const int b1 = model.add(Layer{.kind = LayerKind::kConv, .name = fresh(),
                                       .kernel = 1, .out_c = c1, .fuse_relu = coin(),
                                       .inputs = {base}});
        const int b2 = model.add(Layer{.kind = LayerKind::kConv, .name = fresh(),
                                       .kernel = 1, .out_c = c2, .inputs = {base}});
        model.add(Layer{.kind = use_add ? LayerKind::kAdd : LayerKind::kConcat,
                        .name = fresh(), .fuse_relu = relu, .inputs = {b1, b2}});
        c = use_add ? c1 : c1 + c2;
        break;
      }
    }
  }
  model.infer_shapes();
  return model;
}

TEST(Property, RandomizedAllKindDfgRoundTripIsIdentity) {
  // parse_arch_def(to_arch_def(m)) == m over randomized DFGs drawn from
  // every registered layer kind (the registry's emit and parse_check
  // functors are exact inverses), plus emission idempotence.
  std::set<int> kinds_seen;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const CnnModel model = random_model(seed);
    for (const Layer& layer : model.layers()) {
      kinds_seen.insert(static_cast<int>(layer.kind));
    }
    const std::string text = to_arch_def(model);
    CnnModel again = parse_arch_def(text);
    again.infer_shapes();
    EXPECT_EQ(again, model) << "seed " << seed << " round trip changed:\n" << text;
    EXPECT_EQ(to_arch_def(again), text) << "seed " << seed;
  }
  // 30 seeds must exercise the whole registry, or the property is weaker
  // than it claims.
  EXPECT_EQ(kinds_seen.size(), static_cast<std::size_t>(kLayerKindCount));
}

TEST(Property, ArchDefErrorsCarryLineNumbers) {
  struct Case {
    const char* text;
    const char* needle;  // expected fragment of the message
  };
  const std::vector<Case> cases = {
      {"network x\ninput 1 4 4\nwarp w\n", "line 3"},             // unknown keyword
      {"network x\ninput 1 4 4\nconv c out=1 k=1 from=no\n", "line 3"},  // bad from=
      {"network x\ninput 1 4 4\nconv c out=1 k=1\nconv c out=1 k=1\n",
       "line 4"},                                                 // duplicate name
      {"network x\ninput 1 4 4\nadd j from=in\n", "line 3"},      // 1-input join
  };
  for (const Case& c : cases) {
    try {
      parse_arch_def(c.text);
      FAIL() << "expected parse error for:\n" << c.text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(c.needle), std::string::npos)
          << "message '" << e.what() << "' lacks '" << c.needle << "'";
    }
  }
}

TEST(Integration, ArchDefDrivesIdenticalResultToProgrammaticModel) {
  // The textual architecture definition and a programmatic model of the
  // same network must produce identical component signatures (and thus
  // share the checkpoint database).
  CnnModel programmatic("prop");
  programmatic.add(
      Layer{.kind = LayerKind::kInput, .name = "in", .out_shape = Shape{2, 8, 8}});
  programmatic.add(Layer{.kind = LayerKind::kConv, .name = "c1", .kernel = 3, .out_c = 4});
  programmatic.add(
      Layer{.kind = LayerKind::kPool, .name = "p1", .kernel = 2, .fuse_relu = true});
  programmatic.infer_shapes();

  const CnnModel parsed = tiny_model();
  const ModelImpl ia = choose_implementation(programmatic, 8);
  const ModelImpl ib = choose_implementation(parsed, 8);
  const auto ga = default_grouping(programmatic);
  const auto gb = default_grouping(parsed);
  ASSERT_EQ(ga.size(), gb.size());
  for (std::size_t i = 0; i < ga.size(); ++i) {
    EXPECT_EQ(group_signature(programmatic, ia, ga[i]),
              group_signature(parsed, ib, gb[i]));
  }
}

TEST(Integration, RelocatedCheckpointStaysWithinDevice) {
  const Device device = make_xcku5p_sim();
  const CnnModel model = tiny_model();
  const ModelImpl impl = choose_implementation(model, 8);
  const auto groups = default_grouping(model);
  CheckpointDb db;
  prepare_component_db(device, model, impl, groups, db);
  ComposedDesign composed;
  run_preimpl_cnn(device, model, impl, groups, db, composed);
  for (const auto& inst : composed.instances) {
    EXPECT_GE(inst.footprint.x0, 0);
    EXPECT_LT(inst.footprint.x1, device.width());
    EXPECT_GE(inst.footprint.y0, 0);
    EXPECT_LT(inst.footprint.y1, device.height());
    for (CellId c = inst.cell_offset; c < inst.cell_end; ++c) {
      const TileCoord loc = composed.phys.cell_loc[c];
      EXPECT_TRUE(inst.footprint.contains(loc.x, loc.y));
    }
  }
  // Instances never overlap after relocation.
  for (std::size_t i = 0; i < composed.instances.size(); ++i) {
    for (std::size_t j = i + 1; j < composed.instances.size(); ++j) {
      EXPECT_FALSE(
          composed.instances[i].footprint.overlaps(composed.instances[j].footprint));
    }
  }
}

TEST(Integration, RouterRespectsCapacityOnComposedDesign) {
  const Device device = make_xcku5p_sim();
  const CnnModel model = tiny_model();
  const ModelImpl impl = choose_implementation(model, 8);
  const auto groups = default_grouping(model);
  CheckpointDb db;
  prepare_component_db(device, model, impl, groups, db);
  ComposedDesign composed;
  const PreImplReport report = run_preimpl_cnn(device, model, impl, groups, db, composed);
  EXPECT_EQ(report.route.max_overuse, 0) << "composed design left overused channels";
}

}  // namespace
}  // namespace fpgasim
