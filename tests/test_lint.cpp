// fpgalint: injected-defect netlists must trip exactly the intended rule,
// clean generated designs must produce zero findings of any severity
// (false-positive contract), and reports must be deterministic.
#include <gtest/gtest.h>

#include <algorithm>

#include "cnn/model.h"
#include "flow/build.h"
#include "flow/monolithic.h"
#include "flow/preimpl.h"
#include "lint/lint.h"
#include "synth/builder.h"

namespace fpgasim {
namespace {

std::vector<std::string> rule_ids(const lint::LintReport& report) {
  std::vector<std::string> ids;
  for (const lint::Finding& f : report.findings()) ids.push_back(f.rule);
  return ids;
}

// -- injected defects --------------------------------------------------------

TEST(Lint, CombinationalLoopDetected) {
  // a = NOT(b); b = PASS(a): a 2-cell combinational cycle.
  Netlist nl("loop");
  const NetId a = nl.add_net(1, "a");
  const NetId b = nl.add_net(1, "b");
  Cell inv;
  inv.type = CellType::kLut;
  inv.op = LutOp::kNot;
  inv.name = "inv";
  const CellId inv_id = nl.add_cell(std::move(inv));
  nl.connect_input(inv_id, 0, b);
  nl.connect_output(inv_id, 0, a);
  Cell pass;
  pass.type = CellType::kLut;
  pass.op = LutOp::kPass;
  pass.name = "fwd";
  const CellId pass_id = nl.add_cell(std::move(pass));
  nl.connect_input(pass_id, 0, a);
  nl.connect_output(pass_id, 0, b);
  nl.add_port({"o", PortDir::kOutput, 1, b});

  const lint::LintReport report = lint::run(nl);
  ASSERT_TRUE(report.has("lint-comb-loop"));
  EXPECT_FALSE(report.clean());
  const auto loops = report.by_rule("lint-comb-loop");
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0]->severity, lint::Severity::kError);
  // The path names both cells and returns to its anchor.
  EXPECT_NE(loops[0]->message.find("'inv'"), std::string::npos) << loops[0]->message;
  EXPECT_NE(loops[0]->message.find("'fwd'"), std::string::npos) << loops[0]->message;
  EXPECT_THROW(lint::enforce(report, "test"), std::runtime_error);
}

TEST(Lint, RegistersBreakCombinationalCycles) {
  // The classic counter structure: FF -> add -> back to FF. Sequential
  // feedback is not a combinational loop.
  NetlistBuilder b("counter");
  const NetId en = b.in_port("en", 1);
  const auto ctr = b.counter(5, en, 8, "ctr");
  b.out_port("value", ctr.value);
  const Netlist nl = std::move(b).take();

  const lint::LintReport report = lint::run(nl);
  EXPECT_FALSE(report.has("lint-comb-loop")) << report.to_string();
  EXPECT_TRUE(report.empty()) << report.to_string();
}

TEST(Lint, DeadConeFlagged) {
  // Live path: x -> FF -> out. Dead cone: AND(x, x) -> FF (read by nothing).
  NetlistBuilder b("dead");
  const NetId x = b.in_port("x", 1);
  b.out_port("out", b.ff(x, kInvalidNet, 1));
  const NetId cone = b.and2(x, x);
  b.ff(cone, kInvalidNet, 1);  // dead: output net has no readers
  Netlist nl = b.netlist();    // bypass take(): keep the dead logic

  const lint::LintReport report = lint::run(nl);
  ASSERT_TRUE(report.has("lint-dead-cell")) << report.to_string();
  ASSERT_TRUE(report.has("lint-unread-net")) << report.to_string();
  // Both cells of the cone are dead; every finding is warning-severity,
  // so the report is "clean" for gating purposes but not empty.
  EXPECT_EQ(report.by_rule("lint-dead-cell").size(), 2u) << report.to_string();
  EXPECT_TRUE(report.clean());
  EXPECT_FALSE(report.empty());

  // prune_dead() removes exactly the cone and the lint goes quiet.
  EXPECT_EQ(nl.prune_dead(), 2u);
  EXPECT_TRUE(lint::run(nl).empty());
}

TEST(Lint, StuckAtLutFoldable) {
  // AND with a constant-zero operand masks the live input x.
  NetlistBuilder b("stuck");
  const NetId x = b.in_port("x", 8);
  const NetId masked = b.op2(LutOp::kAnd, x, b.zero(8), 8);
  b.out_port("out", masked);
  const Netlist nl = b.netlist();

  const lint::LintReport report = lint::run(nl);
  ASSERT_TRUE(report.has("lint-const-lut")) << report.to_string();
  const auto findings = report.by_rule("lint-const-lut");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0]->severity, lint::Severity::kWarning);
  EXPECT_NE(findings[0]->message.find("always evaluates to 0"), std::string::npos)
      << findings[0]->message;
}

TEST(Lint, StuckNetThroughRegister) {
  // A MUX whose select is stuck picks the constant arm; the FF behind it
  // then drives a constant net. The non-LUT driver variant of stuck-at.
  NetlistBuilder b("stuckreg");
  const NetId x = b.in_port("x", 8);
  const NetId picked = b.mux2(b.constant(7, 8), x, b.zero(1), 8);  // sel=0 -> 7
  b.out_port("out", b.ff(picked, kInvalidNet, 8));
  const Netlist nl = b.netlist();

  const lint::LintReport report = lint::run(nl);
  // The mux is reported as a foldable LUT; the FF output joins
  // Const(7) with reset Const(0) and is not constant -- exactly one finding.
  ASSERT_TRUE(report.has("lint-const-lut")) << report.to_string();
}

TEST(Lint, XEscapesThroughRegisterToOutput) {
  // BRAM with neither ROM contents nor a write port: reads return power-up
  // garbage. The register's reset value does not dominate (X wins the
  // join), so the X escapes to the output port.
  NetlistBuilder b("xescape");
  const NetId addr = b.in_port("addr", 4);
  const NetId data = b.bram(addr, kInvalidNet, kInvalidNet, 16, 8, -1, "uninit");
  b.out_port("out", b.ff(data, kInvalidNet, 8));
  const Netlist nl = b.netlist();

  const lint::LintReport report = lint::run(nl);
  ASSERT_TRUE(report.has("lint-x-escape")) << report.to_string();
  const auto findings = report.by_rule("lint-x-escape");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0]->severity, lint::Severity::kError);
  EXPECT_NE(findings[0]->message.find("uninitialized"), std::string::npos);
  EXPECT_NE(findings[0]->message.find("'uninit'"), std::string::npos)
      << findings[0]->message;
  EXPECT_FALSE(report.clean());
}

TEST(Lint, RomBramDoesNotLeakX) {
  NetlistBuilder b("rom");
  const NetId addr = b.in_port("addr", 4);
  const std::int32_t rom = b.rom({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
  const NetId data = b.bram(addr, kInvalidNet, kInvalidNet, 16, 8, rom, "coeffs");
  b.out_port("out", b.ff(data, kInvalidNet, 8));
  const lint::LintReport report = lint::run(b.netlist());
  EXPECT_TRUE(report.empty()) << report.to_string();
}

TEST(Lint, WidthMismatchAtCellPort) {
  // 16-bit adder output squeezed onto an 8-bit net.
  Netlist nl("widths");
  const NetId a = nl.add_net(16, "a");
  const NetId bnet = nl.add_net(16, "b");
  const NetId narrow = nl.add_net(8, "narrow");
  nl.add_port({"a", PortDir::kInput, 16, a});
  nl.add_port({"b", PortDir::kInput, 16, bnet});
  Cell add;
  add.type = CellType::kAdd;
  add.width = 16;
  add.name = "sum";
  const CellId add_id = nl.add_cell(std::move(add));
  nl.connect_input(add_id, 0, a);
  nl.connect_input(add_id, 1, bnet);
  nl.connect_output(add_id, 0, narrow);
  nl.add_port({"out", PortDir::kOutput, 8, narrow});

  const lint::LintReport report = lint::run(nl);
  ASSERT_TRUE(report.has("lint-width-mismatch")) << report.to_string();
  EXPECT_FALSE(report.clean());
}

TEST(Lint, FloatingRequiredInputFlagged) {
  // An adder with only one operand connected.
  Netlist nl("floating");
  const NetId a = nl.add_net(8, "a");
  const NetId out = nl.add_net(8, "out");
  nl.add_port({"a", PortDir::kInput, 8, a});
  Cell add;
  add.type = CellType::kAdd;
  add.width = 8;
  add.name = "sum";
  const CellId add_id = nl.add_cell(std::move(add));
  nl.connect_input(add_id, 0, a);
  nl.connect_output(add_id, 0, out);
  nl.add_port({"out", PortDir::kOutput, 8, out});

  const lint::LintReport report = lint::run(nl);
  ASSERT_TRUE(report.has("lint-floating-input")) << report.to_string();
  // The missing operand also makes the output X at the port.
  EXPECT_TRUE(report.has("lint-x-escape")) << report.to_string();
  EXPECT_FALSE(report.clean());
}

TEST(Lint, MultipleDriversFlagged) {
  Netlist nl("multidrv");
  const NetId shared = nl.add_net(1, "shared");
  for (int i = 0; i < 2; ++i) {
    Cell c;
    c.type = CellType::kConst;
    c.width = 1;
    c.init = static_cast<std::uint64_t>(i);
    const CellId id = nl.add_cell(std::move(c));
    nl.connect_output(id, 0, shared);
  }
  nl.add_port({"out", PortDir::kOutput, 1, shared});

  const lint::LintReport report = lint::run(nl);
  ASSERT_TRUE(report.has("lint-multi-driver")) << report.to_string();
  EXPECT_FALSE(report.clean());
}

// -- waivers and caps --------------------------------------------------------

TEST(Lint, WaiversKeepFindingsButNotCounts) {
  NetlistBuilder b("waived");
  const NetId addr = b.in_port("addr", 4);
  const NetId data = b.bram(addr, kInvalidNet, kInvalidNet, 16, 8, -1, "uninit");
  b.out_port("out", data);

  lint::LintOptions opt;
  opt.waived_rules = {"lint-x-escape"};
  const lint::LintReport report = lint::run(b.netlist(), opt);
  EXPECT_TRUE(report.has("lint-x-escape"));
  EXPECT_EQ(report.errors(), 0u);
  EXPECT_EQ(report.waived(), 1u);
  EXPECT_TRUE(report.clean());
  EXPECT_NO_THROW(lint::enforce(report, "test"));
}

TEST(Lint, PerRuleFindingCap) {
  NetlistBuilder b("capped");
  const NetId x = b.in_port("x", 1);
  b.out_port("out", b.ff(x, kInvalidNet, 1));
  for (int i = 0; i < 8; ++i) b.and2(x, x);  // eight dead cells
  lint::LintOptions opt;
  opt.max_findings_per_rule = 3;
  const lint::LintReport report = lint::run(b.netlist(), opt);
  EXPECT_EQ(report.by_rule("lint-dead-cell").size(), 3u);
  EXPECT_GT(report.suppressed(), 0u);
}

// -- stitch boundaries -------------------------------------------------------

TEST(Lint, StitchBoundaryWidthMismatchNamesInstances) {
  // An 8-bit producer register feeding a 16-bit consumer register. Inside
  // one component a narrower operand is legal (the fabric zero-extends),
  // so without instance info the netlist lints clean — but across a stitch
  // boundary the stream buses must agree exactly, and the finding names
  // both instances.
  Netlist whole("stitched");
  const NetId in = whole.add_net(8, "in");
  const NetId mid = whole.add_net(8, "stitch");
  const NetId out = whole.add_net(16, "out");
  whole.add_port({"in", PortDir::kInput, 8, in});
  Cell producer;
  producer.type = CellType::kFf;
  producer.width = 8;
  producer.name = "prod_ff";
  const CellId prod = whole.add_cell(std::move(producer));
  whole.connect_input(prod, 0, in);
  whole.connect_output(prod, 0, mid);
  Cell consumer;
  consumer.type = CellType::kFf;
  consumer.width = 16;
  consumer.name = "cons_ff";
  const CellId cons = whole.add_cell(std::move(consumer));
  whole.connect_input(cons, 0, mid);
  whole.connect_output(cons, 0, out);
  whole.add_port({"out", PortDir::kOutput, 16, out});

  EXPECT_TRUE(lint::run(whole).empty()) << "no instances: in-component widening is legal";

  lint::LintOptions opt;
  opt.instances = {{"producer", prod, prod + 1, in, out},
                   {"consumer", cons, cons + 1, out, out + 1}};
  const lint::LintReport report = lint::run(whole, opt);
  ASSERT_TRUE(report.has("lint-width-mismatch")) << report.to_string();
  const auto findings = report.by_rule("lint-width-mismatch");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0]->message.find("stitch boundary 'producer' -> 'consumer'"),
            std::string::npos)
      << findings[0]->message;
}

// -- the false-positive contract ---------------------------------------------

struct CleanFlow {
  Device device = make_xcku5p_sim();
  CnnModel model;
  ModelImpl impl;
  std::vector<std::vector<int>> groups;
  CheckpointDb db;

  explicit CleanFlow(CnnModel m, long dsp_budget, int max_tile = 32) : model(std::move(m)) {
    impl = choose_implementation(model, dsp_budget, max_tile);
    groups = default_grouping(model);
    // The OOC lint gate runs over every checkpoint as it is built.
    OocOptions ooc;
    ooc.lint = true;
    prepare_component_db(device, model, impl, groups, db, ooc);
  }
};

TEST(LintClean, LeNetPreImplAndMonolithic) {
  CleanFlow f(make_lenet5(), 64);
  ComposedDesign composed;
  PreImplOptions opt;
  opt.lint = true;  // gate throws on error findings
  const PreImplReport pre =
      run_preimpl_cnn(f.device, f.model, f.impl, f.groups, f.db, composed, opt);
  EXPECT_TRUE(pre.lint.empty()) << pre.lint.to_string();
  EXPECT_GE(pre.lint.rules_run(), 9u);

  Netlist flat = build_flat_netlist(f.model, f.impl, f.groups);
  PhysState phys;
  MonoOptions mono_opt;
  mono_opt.lint = true;
  const MonoReport mono = run_monolithic_flow(f.device, flat, phys, mono_opt);
  EXPECT_TRUE(mono.lint.empty()) << mono.lint.to_string();
}

TEST(LintClean, ResblockPreImpl) {
  CleanFlow f(make_resblock_net(), 64);
  ComposedDesign composed;
  PreImplOptions opt;
  opt.lint = true;
  const PreImplReport pre =
      run_preimpl_cnn(f.device, f.model, f.impl, f.groups, f.db, composed, opt);
  EXPECT_TRUE(pre.lint.empty()) << pre.lint.to_string();
}

TEST(LintClean, Vgg16PreImpl) {
  // The VGG example's quick configuration (small tiles, streamed weights).
  CleanFlow f(make_vgg16(), 384, 14);
  ComposedDesign composed;
  PreImplOptions opt;
  opt.lint = true;
  const PreImplReport pre =
      run_preimpl_cnn(f.device, f.model, f.impl, f.groups, f.db, composed, opt);
  EXPECT_TRUE(pre.lint.empty()) << pre.lint.to_string();
}

// -- determinism -------------------------------------------------------------

TEST(Lint, JsonReportIsDeterministic) {
  CleanFlow f(parse_arch_def(R"(network mini
input 2 8 8
conv c1 out=4 k=3
pool p1 k=2 relu
conv c2 out=2 k=3
)"),
              12);
  ComposedDesign first, second;
  run_preimpl_cnn(f.device, f.model, f.impl, f.groups, f.db, first);
  run_preimpl_cnn(f.device, f.model, f.impl, f.groups, f.db, second);
  const std::string json_a = lint::run(first.netlist).to_json();
  const std::string json_b = lint::run(second.netlist).to_json();
  EXPECT_EQ(json_a, json_b);
  EXPECT_EQ(json_a.find("seconds"), std::string::npos) << "timing must stay out of JSON";
}

TEST(Lint, FindingOrderFollowsRuleRegistration) {
  // A netlist tripping several rules reports them grouped in rules() order.
  NetlistBuilder b("ordered");
  const NetId x = b.in_port("x", 8);
  b.and2(x, x);  // dead cell
  const NetId masked = b.op2(LutOp::kAnd, x, b.zero(8), 8);  // const lut
  b.out_port("out", masked);
  const lint::LintReport report = lint::run(b.netlist());
  const std::vector<std::string> ids = rule_ids(report);
  ASSERT_GE(ids.size(), 2u);
  std::vector<std::size_t> ranks;
  for (const std::string& id : ids) {
    const auto& table = lint::rules();
    for (std::size_t i = 0; i < table.size(); ++i) {
      if (id == table[i].id) ranks.push_back(i);
    }
  }
  EXPECT_TRUE(std::is_sorted(ranks.begin(), ranks.end()));
}

}  // namespace
}  // namespace fpgasim
