// Determinism contract of the parallel incremental router: every thread
// pool width must produce byte-identical routes, delays and iteration
// telemetry. Batches hold nets with pairwise-disjoint search boxes and
// usage commits happen serially in net-index order, so scheduling cannot
// leak into the result (DESIGN.md section 9). Also locks in the quality
// contract of incremental rip-up against the full rip-up baseline.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "flow/build.h"
#include "flow/preimpl.h"
#include "route/router.h"
#include "synth/builder.h"

namespace fpgasim {
namespace {

void append_bits(std::string* out, double v) {
  unsigned long long bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  *out += std::to_string(bits);
  *out += ' ';
}

/// Exact byte-level fingerprint of everything the router produced:
/// route trees, per-sink delays (double bit patterns, not approximate
/// comparisons) and the result/telemetry counters. Wall/CPU seconds are
/// measurements, not results, and are excluded.
std::string fingerprint(const PhysState& phys, const RouteResult& result) {
  std::string fp;
  for (std::size_t n = 0; n < phys.routes.size(); ++n) {
    const RouteInfo& route = phys.routes[n];
    fp += "net " + std::to_string(n) + (route.routed ? " R " : " - ");
    for (const auto& [a, b] : route.edges) {
      fp += std::to_string(a.x) + "," + std::to_string(a.y) + "-" + std::to_string(b.x) +
            "," + std::to_string(b.y) + ";";
    }
    fp += " d:";
    for (double d : route.sink_delays_ns) append_bits(&fp, d);
    fp += '\n';
  }
  fp += "result " + std::to_string(result.success) + " " + std::to_string(result.iterations) +
        " " + std::to_string(result.nets_routed) + " " + std::to_string(result.edges_used) +
        " " + std::to_string(result.max_overuse) + " ";
  append_bits(&fp, result.total_wirelength);
  for (const RouteIterationStats& s : result.iteration_stats) {
    fp += "\niter " + std::to_string(s.nets_rerouted) + " " +
          std::to_string(s.overused_edges) + " " + std::to_string(s.max_overuse) + " " +
          std::to_string(s.batches);
  }
  return fp;
}

/// Congested synthetic fabric: a corridor of parallel nets over capacity
/// (forces multi-iteration negotiation), vertical crossers (overlapping
/// boxes that must serialize into later batches) and wide-fanout nets
/// (exercises the BFS nearest-target heuristic grid).
struct CongestedFixture {
  Device device = make_tiny_device();
  Netlist netlist{"congested"};
  PhysState phys;
  RouteOptions opt;

  CellId cell_at(TileCoord loc) {
    Cell c;
    c.type = CellType::kFf;
    c.width = 1;
    const CellId id = netlist.add_cell(std::move(c));
    phys.resize_for(netlist);
    phys.cell_loc[id] = loc;
    return id;
  }

  void add_net(TileCoord from, const std::vector<TileCoord>& tos) {
    const CellId d = cell_at(from);
    const NetId n = netlist.add_net(1);
    netlist.connect_output(d, 0, n);
    for (const TileCoord& to : tos) netlist.connect_input(cell_at(to), 0, n);
  }

  CongestedFixture() {
    for (int i = 0; i < 24; ++i) {
      add_net(TileCoord{2, 10 + i % 4}, {TileCoord{20, 10 + i % 4}});
    }
    for (int i = 0; i < 6; ++i) {
      add_net(TileCoord{4 + 2 * i, 4}, {TileCoord{4 + 2 * i, 24}});
    }
    // Two 12-sink nets (> 8 targets: grid heuristic path).
    for (int f = 0; f < 2; ++f) {
      std::vector<TileCoord> sinks;
      for (int i = 0; i < 12; ++i) {
        sinks.push_back(TileCoord{3 + (i % 6) * 3, 6 + 18 * f + (i / 6) * 3});
      }
      add_net(TileCoord{11, 8 + 14 * f}, sinks);
    }
    opt.channel_capacity = 3;
    opt.max_iterations = 80;
    opt.history_factor = 0.8;
  }
};

TEST(RouteDeterminism, CongestedFabricIsByteIdenticalAcrossWidths) {
  CongestedFixture fixture;
  std::string serial_fp;
  for (const std::size_t width : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(width);
    RouteOptions opt = fixture.opt;
    opt.pool = &pool;
    PhysState phys = fixture.phys;
    const RouteResult result = route_design(fixture.device, fixture.netlist, phys, opt);
    ASSERT_TRUE(result.success) << "width " << width;
    EXPECT_EQ(result.max_overuse, 0) << "width " << width;
    EXPECT_GT(result.iterations, 1) << "width " << width;
    const std::string fp = fingerprint(phys, result);
    if (width == 1) {
      serial_fp = fp;
    } else {
      EXPECT_EQ(fp, serial_fp) << "routes differ from serial at width " << width;
    }
  }
}

TEST(RouteDeterminism, LenetPreImplRoutingIsByteIdenticalAcrossWidths) {
  // Compose and place LeNet once (deterministic already, see
  // test_parallel_build), snapshot the pre-route state, then run only the
  // inter-component routing stage at every width.
  const Device device = make_xcku5p_sim();
  const CnnModel model = make_lenet5();
  const ModelImpl impl = choose_implementation(model, 200);
  const auto groups = default_grouping(model);
  CheckpointDb db;
  prepare_component_db(device, model, impl, groups, db);

  Composer composer("det_lenet");
  std::vector<const Checkpoint*> chain;
  for (const auto& group : groups) {
    const Checkpoint* cp = db.get(group_signature(model, impl, group));
    ASSERT_NE(cp, nullptr);
    chain.push_back(cp);
  }
  for (std::size_t i = 0; i < chain.size(); ++i) {
    composer.add_instance(*chain[i], "inst" + std::to_string(i), i);
  }
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    composer.connect(static_cast<int>(i), static_cast<int>(i + 1));
  }
  composer.expose_input(0);
  composer.expose_output(static_cast<int>(chain.size()) - 1);
  ComposedDesign composed = std::move(composer).finish();
  const MacroPlaceResult macro =
      place_macros(device, composed.macro_items(), composed.macro_nets, MacroPlaceOptions{});
  ASSERT_TRUE(macro.success);
  for (std::size_t i = 0; i < composed.instances.size(); ++i) {
    composed.translate_instance(i, macro.offsets[i].first, macro.offsets[i].second);
  }

  std::string serial_fp;
  for (const std::size_t width : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(width);
    RouteOptions opt;
    opt.pool = &pool;
    PhysState phys = composed.phys;
    const RouteResult result = route_design(device, composed.netlist, phys, opt);
    ASSERT_TRUE(result.success) << "width " << width;
    EXPECT_EQ(result.max_overuse, 0) << "width " << width;
    const std::string fp = fingerprint(phys, result);
    if (width == 1) {
      serial_fp = fp;
    } else {
      EXPECT_EQ(fp, serial_fp) << "LeNet routes differ from serial at width " << width;
    }
  }
}

TEST(RouteDeterminism, IncrementalMatchesFullRipUpQuality) {
  CongestedFixture fixture;

  PhysState incremental_phys = fixture.phys;
  RouteOptions opt = fixture.opt;
  opt.incremental = true;
  const RouteResult incremental =
      route_design(fixture.device, fixture.netlist, incremental_phys, opt);

  PhysState full_phys = fixture.phys;
  opt.incremental = false;
  const RouteResult full = route_design(fixture.device, fixture.netlist, full_phys, opt);

  // Both negotiate all overuse away.
  ASSERT_TRUE(incremental.success);
  ASSERT_TRUE(full.success);
  EXPECT_EQ(incremental.max_overuse, 0);
  EXPECT_EQ(full.max_overuse, 0);
  EXPECT_EQ(incremental.nets_routed, full.nets_routed);

  // Incremental rip-up shrinks the worklist: the first round routes every
  // net, later rounds only the congestion-involved ones — the count must
  // drop below the full net count as negotiation spreads the nets out
  // (full rip-up, by contrast, reroutes everything every round).
  ASSERT_GT(incremental.iterations, 1);
  const int first = incremental.iteration_stats[0].nets_rerouted;
  EXPECT_EQ(first, static_cast<int>(incremental.nets_routed));
  int min_later = first;
  for (std::size_t i = 1; i < incremental.iteration_stats.size(); ++i) {
    min_later = std::min(min_later, incremental.iteration_stats[i].nets_rerouted);
  }
  EXPECT_LT(min_later, first);
  for (const RouteIterationStats& s : full.iteration_stats) {
    EXPECT_EQ(s.nets_rerouted, static_cast<int>(full.nets_routed));
  }

  // Quality bound: the settled critical sink delay stays within 1% of the
  // full rip-up baseline.
  auto max_delay = [](const PhysState& phys) {
    double worst = 0.0;
    for (const RouteInfo& route : phys.routes) {
      if (!route.routed) continue;
      for (double d : route.sink_delays_ns) worst = std::max(worst, d);
    }
    return worst;
  };
  const double inc_delay = max_delay(incremental_phys);
  const double full_delay = max_delay(full_phys);
  ASSERT_GT(full_delay, 0.0);
  EXPECT_LE(inc_delay, full_delay * 1.01)
      << "incremental critical delay " << inc_delay << " vs full " << full_delay;
}

}  // namespace
}  // namespace fpgasim
