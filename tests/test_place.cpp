#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "place/place.h"
#include "synth/builder.h"
#include "synth/layers.h"

namespace fpgasim {
namespace {

/// Two cliques of items; the annealer should pull each clique together.
TEST(PlaceSa, ConnectedItemsEndUpClose) {
  const Device device = make_tiny_device();
  std::vector<PlaceItem> items(8);
  for (auto& item : items) item.res = ResourceVec{.lut = 4, .ff = 4};
  std::vector<PlaceNet> nets;
  nets.push_back(PlaceNet{{0, 1, 2, 3}, 1.0});
  nets.push_back(PlaceNet{{4, 5, 6, 7}, 1.0});

  SaOptions opt;
  opt.region = Pblock{0, 0, device.width() - 1, device.height() - 1};
  opt.bin_tiles = 2;
  opt.moves_per_item = 500;
  const SaResult result = place_sa(device, items, nets, opt);

  auto span = [&](std::initializer_list<int> group) {
    int min_x = 1 << 30, max_x = 0, min_y = 1 << 30, max_y = 0;
    for (int i : group) {
      const TileCoord c = result.bin_center(opt, result.item_bin[static_cast<std::size_t>(i)]);
      min_x = std::min(min_x, c.x);
      max_x = std::max(max_x, c.x);
      min_y = std::min(min_y, c.y);
      max_y = std::max(max_y, c.y);
    }
    return (max_x - min_x) + (max_y - min_y);
  };
  EXPECT_LE(span({0, 1, 2, 3}), 8);
  EXPECT_LE(span({4, 5, 6, 7}), 8);
  EXPECT_LE(result.final_hpwl, 16.0);
}

TEST(PlaceSa, FixedItemsStayPut) {
  const Device device = make_tiny_device();
  std::vector<PlaceItem> items(3);
  items[0].res = ResourceVec{.lut = 1};
  items[1].res = ResourceVec{.lut = 1};
  items[2].fixed = true;
  items[2].fixed_x = 20;
  items[2].fixed_y = 28;
  std::vector<PlaceNet> nets{PlaceNet{{0, 1, 2}, 1.0}};

  SaOptions opt;
  opt.region = Pblock{0, 0, device.width() - 1, device.height() - 1};
  opt.bin_tiles = 4;
  const SaResult result = place_sa(device, items, nets, opt);
  const TileCoord c = result.bin_center(opt, result.item_bin[2]);
  EXPECT_EQ(result.item_bin[2], (28 / 4) * result.bins_x + 20 / 4);
  // The movable items gravitate toward the fixed terminal.
  const TileCoord c0 = result.bin_center(opt, result.item_bin[0]);
  EXPECT_LE(std::abs(c0.x - c.x) + std::abs(c0.y - c.y), 12);
}

TEST(PlaceSa, ThrowsOnFixedItemOutsideRegion) {
  const Device device = make_tiny_device();
  std::vector<PlaceItem> items(2);
  items[0].res = ResourceVec{.lut = 1};
  items[1].fixed = true;
  items[1].fixed_x = 1;  // left of and below the region: used to produce a
  items[1].fixed_y = 2;  // negative bin index and out-of-bounds writes
  SaOptions opt;
  opt.region = Pblock{4, 4, 20, 28};
  opt.bin_tiles = 4;
  EXPECT_THROW(place_sa(device, items, {}, opt), std::runtime_error);

  items[1].fixed_x = 22;  // right of / above the region is just as illegal
  items[1].fixed_y = 30;
  EXPECT_THROW(place_sa(device, items, {}, opt), std::runtime_error);
}

TEST(PlaceSa, ClampsDegenerateInitialAccept) {
  const Device device = make_tiny_device();
  std::vector<PlaceItem> items(12);
  for (auto& item : items) item.res = ResourceVec{.lut = 2, .ff = 2};
  std::vector<PlaceNet> nets;
  for (int i = 0; i + 1 < 12; ++i) nets.push_back(PlaceNet{{i, i + 1}, 1.0});
  SaOptions opt;
  opt.region = Pblock{0, 0, device.width() - 1, device.height() - 1};
  opt.bin_tiles = 4;
  opt.initial_accept = 1.0;  // -log(1) == 0: infinite start temperature
  const SaResult degenerate = place_sa(device, items, nets, opt);
  EXPECT_TRUE(std::isfinite(degenerate.final_cost));
  EXPECT_TRUE(std::isfinite(degenerate.final_hpwl));
  // Clamping must make 1.0 behave exactly like the clamp target, instead
  // of the accept-everything random walk an infinite temperature causes.
  SaOptions clamped = opt;
  clamped.initial_accept = 0.999;
  EXPECT_EQ(degenerate.item_bin, place_sa(device, items, nets, clamped).item_bin);
}

TEST(PlaceSa, ThrowsWhenDemandExceedsRegion) {
  const Device device = make_tiny_device();
  std::vector<PlaceItem> items(1);
  items[0].res = ResourceVec{.dsp = 10000};
  SaOptions opt;
  opt.region = Pblock{0, 0, device.width() - 1, device.height() - 1};
  EXPECT_THROW(place_sa(device, items, {}, opt), std::runtime_error);
}

TEST(PlaceSa, DeterministicForSameSeed) {
  const Device device = make_tiny_device();
  std::vector<PlaceItem> items(20);
  for (auto& item : items) item.res = ResourceVec{.lut = 2, .ff = 2};
  std::vector<PlaceNet> nets;
  for (int i = 0; i + 1 < 20; ++i) nets.push_back(PlaceNet{{i, i + 1}, 1.0});
  SaOptions opt;
  opt.region = Pblock{0, 0, device.width() - 1, device.height() - 1};
  opt.seed = 99;
  const SaResult a = place_sa(device, items, nets, opt);
  const SaResult b = place_sa(device, items, nets, opt);
  EXPECT_EQ(a.item_bin, b.item_bin);
}

TEST(Clusterer, IdentityClusteringForTargetOne) {
  ConvParams p;
  p.in_c = 1;
  p.out_c = 1;
  p.kernel = 3;
  p.in_h = 4;
  p.in_w = 4;
  p.materialize_roms = false;
  const Netlist nl = make_conv_component(p, {}, {});
  const Clustering clustering = cluster_netlist(nl, 1);
  EXPECT_EQ(clustering.num_clusters, nl.cell_count());
}

TEST(Clusterer, CoversEveryCellOnce) {
  ConvParams p;
  p.in_c = 2;
  p.out_c = 4;
  p.kernel = 3;
  p.in_h = 6;
  p.in_w = 6;
  p.ic_par = 2;
  p.oc_par = 2;
  p.materialize_roms = false;
  const Netlist nl = make_conv_component(p, {}, {});
  const Clustering clustering = cluster_netlist(nl, 16);
  EXPECT_GT(clustering.num_clusters, 0u);
  EXPECT_LT(clustering.num_clusters, nl.cell_count());
  for (CellId c = 0; c < nl.cell_count(); ++c) {
    ASSERT_GE(clustering.cell_cluster[c], 0);
    ASSERT_LT(static_cast<std::size_t>(clustering.cell_cluster[c]), clustering.num_clusters);
  }
}

TEST(Clusterer, LargerTargetGivesFewerClusters) {
  ConvParams p;
  p.in_c = 2;
  p.out_c = 2;
  p.kernel = 3;
  p.in_h = 8;
  p.in_w = 8;
  p.materialize_roms = false;
  const Netlist nl = make_conv_component(p, {}, {});
  const auto small = cluster_netlist(nl, 4);
  const auto large = cluster_netlist(nl, 64);
  EXPECT_GT(small.num_clusters, large.num_clusters);
}

TEST(PlaceModel, SkipsSingleClusterNets) {
  ConvParams p;
  p.in_c = 1;
  p.out_c = 1;
  p.kernel = 2;
  p.in_h = 4;
  p.in_w = 4;
  p.materialize_roms = false;
  const Netlist nl = make_conv_component(p, {}, {});
  // One giant cluster: every net is internal, so no placement nets remain.
  const Clustering clustering = cluster_netlist(nl, 100000);
  std::vector<PlaceItem> items;
  std::vector<PlaceNet> nets;
  build_place_model(nl, clustering, items, nets);
  EXPECT_EQ(items.size(), clustering.num_clusters);
  if (clustering.num_clusters == 1) {
    EXPECT_TRUE(nets.empty());
  }
  ResourceVec total;
  for (const auto& item : items) total += item.res;
  EXPECT_EQ(total, nl.stats().resources);
}

TEST(AssignCells, RespectsTileCapacities) {
  const Device device = make_tiny_device();
  ConvParams p;
  p.in_c = 2;
  p.out_c = 2;
  p.kernel = 3;
  p.in_h = 6;
  p.in_w = 6;
  p.ic_par = 2;
  p.oc_par = 2;
  p.materialize_roms = false;
  const Netlist nl = make_conv_component(p, {}, {});
  const Clustering clustering = cluster_netlist(nl, 1);
  std::vector<PlaceItem> items;
  std::vector<PlaceNet> nets;
  build_place_model(nl, clustering, items, nets);
  SaOptions opt;
  opt.region = Pblock{0, 0, device.width() - 1, device.height() - 1};
  opt.moves_per_item = 60;
  const SaResult placement = place_sa(device, items, nets, opt);
  PhysState phys;
  assign_cells_to_tiles(device, nl, clustering, placement, opt, phys);

  // Every cell with a footprint is placed in bounds; per-tile usage,
  // accounting for multi-tile spill, never exceeds the device total.
  ResourceVec used;
  for (CellId c = 0; c < nl.cell_count(); ++c) {
    const TileCoord loc = phys.cell_loc[c];
    ASSERT_TRUE(device.in_bounds(loc.x, loc.y)) << nl.cell(c).name;
    used += Netlist::cell_footprint(nl.cell(c));
  }
  EXPECT_TRUE(used.fits_in(device.total()));
}

TEST(AssignCells, DspCellsAnchorInDspColumns) {
  const Device device = make_tiny_device();
  NetlistBuilder b("d");
  const NetId a = b.in_port("a", 16);
  b.out_port("p", b.dsp(a, a, kInvalidNet, 8, 1, 16));
  const Netlist nl = std::move(b).take();
  const Clustering clustering = cluster_netlist(nl, 1);
  std::vector<PlaceItem> items;
  std::vector<PlaceNet> nets;
  build_place_model(nl, clustering, items, nets);
  SaOptions opt;
  opt.region = Pblock{0, 0, device.width() - 1, device.height() - 1};
  const SaResult placement = place_sa(device, items, nets, opt);
  PhysState phys;
  assign_cells_to_tiles(device, nl, clustering, placement, opt, phys);
  for (CellId c = 0; c < nl.cell_count(); ++c) {
    if (nl.cell(c).type == CellType::kDsp) {
      EXPECT_EQ(device.column_type(phys.cell_loc[c].x), ColumnType::kDsp);
    }
  }
}

}  // namespace
}  // namespace fpgasim
