// Compile-as-a-service (flow/store + flow/service): the content-addressed
// checkpoint store round-trips through disk and restarts, the LRU honors
// its byte budget, and concurrent deduplicating sessions build each
// component signature exactly once while composing byte-identical designs
// at any build-pool width.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cnn/impl.h"
#include "cnn/model.h"
#include "flow/build.h"
#include "flow/service.h"
#include "flow/store.h"
#include "util/latch.h"

namespace fpgasim {
namespace {

std::string fresh_dir(const std::string& tag) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / ("fpgasim_svc_" + tag);
  std::filesystem::remove_all(dir);
  return dir.string();
}

struct ServiceFixture {
  Device device = make_xcku5p_sim();

  struct Spec {
    CnnModel model;
    ModelImpl impl;
    std::vector<std::vector<int>> groups;
  };
  // Two small networks with disjoint component sets: a linear chain and a
  // branching resblock (adds a stream fork), so concurrent sessions mix
  // shared and unique signatures.
  Spec chain, branch;

  ServiceFixture() {
    chain.model = parse_arch_def(R"(network chain
input 2 14 14
conv c1 out=4 k=3
pool p1 k=2 relu
conv c2 out=4 k=3
pool p2 k=2
)");
    chain.impl = choose_implementation(chain.model, 12);
    chain.groups = default_grouping(chain.model);
    branch.model = make_resblock_net();
    branch.impl = choose_implementation(branch.model, 16);
    branch.groups = default_grouping(branch.model);
  }

  /// Unique component signatures across the given specs.
  std::size_t unique_components(const std::vector<const Spec*>& specs) const {
    std::set<std::string> keys;
    for (const Spec* spec : specs) {
      for (const ComponentRequest& request :
           component_requests(spec->model, spec->impl, spec->groups)) {
        keys.insert(request.key);
      }
    }
    return keys.size();
  }

  /// Runs one latch-aligned concurrent session per entry of `picks`
  /// (indexing {chain, branch}) and returns the per-session results.
  std::vector<CompileService::SessionResult> run_sessions(
      CompileService& service, const std::vector<int>& picks) {
    std::vector<CompileService::SessionResult> results(picks.size());
    std::vector<std::string> errors(picks.size());
    Latch start(picks.size() + 1);
    std::vector<std::thread> threads;
    threads.reserve(picks.size());
    for (std::size_t s = 0; s < picks.size(); ++s) {
      threads.emplace_back([&, s] {
        start.arrive_and_wait();
        const Spec& spec = picks[s] == 0 ? chain : branch;
        try {
          results[s] = service.compile(spec.model, spec.impl, spec.groups);
        } catch (const std::exception& e) {
          errors[s] = e.what();
        }
      });
    }
    start.arrive_and_wait();
    for (std::thread& t : threads) t.join();
    for (std::size_t s = 0; s < picks.size(); ++s) {
      EXPECT_EQ(errors[s], "") << "session " << s;
    }
    return results;
  }
};

TEST(CheckpointStore, RoundTripsThroughDiskAndRestart) {
  ServiceFixture fixture;
  const std::string dir = fresh_dir("roundtrip");
  StoreOptions opt;
  opt.dir = dir;
  const auto requests = component_requests(fixture.chain.model, fixture.chain.impl,
                                           fixture.chain.groups);
  ASSERT_FALSE(requests.empty());
  const std::string key = requests[0].key;
  {
    CheckpointStore store(opt);
    EXPECT_FALSE(store.contains(key, fixture.device));
    EXPECT_EQ(store.get(key, fixture.device), nullptr);
    Netlist netlist = build_component_netlist(fixture.chain.model, fixture.chain.impl,
                                              requests[0]);
    OocResult built = implement_ooc(fixture.device, std::move(netlist), {});
    auto put = store.put(key, fixture.device, std::move(built.checkpoint));
    ASSERT_NE(put, nullptr);
    EXPECT_TRUE(store.contains(key, fixture.device));
    auto got = store.get(key, fixture.device);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got.get(), put.get());  // served from the cache, same object
    const StoreStats stats = store.stats();
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.puts, 1u);
    EXPECT_GE(stats.hits, 1u);
  }
  {
    // Restart: a fresh store over the same directory replays the index and
    // deserializes the entry from disk.
    CheckpointStore store(opt);
    EXPECT_TRUE(store.contains(key, fixture.device));
    auto got = store.get(key, fixture.device);
    ASSERT_NE(got, nullptr);
    EXPECT_FALSE(got->netlist.name().empty());
    const StoreStats stats = store.stats();
    EXPECT_EQ(stats.disk_loads, 1u);
    // A second get is a pure cache hit.
    EXPECT_NE(store.get(key, fixture.device), nullptr);
    EXPECT_EQ(store.stats().disk_loads, 1u);
  }
  std::filesystem::remove_all(dir);
}

TEST(CheckpointStore, EvictsToByteBudgetAndReloadsFromDisk) {
  ServiceFixture fixture;
  const std::string dir = fresh_dir("evict");
  StoreOptions opt;
  opt.dir = dir;
  opt.cache_bytes = 1;  // every insert evicts the previous entry
  opt.shards = 1;       // one LRU, so the eviction order is deterministic
  CheckpointStore store(opt);
  const auto requests = component_requests(fixture.chain.model, fixture.chain.impl,
                                           fixture.chain.groups);
  ASSERT_GE(requests.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    Netlist netlist =
        build_component_netlist(fixture.chain.model, fixture.chain.impl, requests[i]);
    OocResult built = implement_ooc(fixture.device, std::move(netlist), {});
    ASSERT_NE(store.put(requests[i].key, fixture.device, std::move(built.checkpoint)),
              nullptr);
  }
  // Both entries stay reachable; the cold one comes back via a disk load.
  EXPECT_NE(store.get(requests[0].key, fixture.device), nullptr);
  EXPECT_NE(store.get(requests[1].key, fixture.device), nullptr);
  const StoreStats stats = store.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.disk_loads, 0u);
  EXPECT_LE(stats.cache_entries, 1u);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointStore, RemoveUnreferencedDropsExactlyTheUnreachable) {
  ServiceFixture fixture;
  const std::string dir = fresh_dir("gc");
  StoreOptions opt;
  opt.dir = dir;
  CheckpointStore store(opt);
  const std::string fabric = fabric_signature(fixture.device);
  const auto requests = component_requests(fixture.chain.model, fixture.chain.impl,
                                           fixture.chain.groups);
  ASSERT_GE(requests.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    Netlist netlist =
        build_component_netlist(fixture.chain.model, fixture.chain.impl, requests[i]);
    OocResult built = implement_ooc(fixture.device, std::move(netlist), {});
    store.put(requests[i].key, fixture.device, std::move(built.checkpoint));
  }
  const std::size_t removed = store.remove_unreferenced(
      {CheckpointStore::content_hash(requests[0].key, fabric)});
  EXPECT_EQ(removed, 1u);
  EXPECT_TRUE(store.contains(requests[0].key, fixture.device));
  EXPECT_FALSE(store.contains(requests[1].key, fixture.device));
  // The index rewrite survives a restart.
  CheckpointStore reopened(opt);
  EXPECT_TRUE(reopened.contains(requests[0].key, fixture.device));
  EXPECT_FALSE(reopened.contains(requests[1].key, fixture.device));
  std::filesystem::remove_all(dir);
}

TEST(CompileService, ConcurrentSessionsBuildEachSignatureOnce) {
  ServiceFixture fixture;
  // 8 concurrent sessions, mixed networks, at build-pool widths 1 and 4.
  const std::vector<int> picks{0, 1, 0, 1, 0, 1, 0, 1};
  const std::size_t unique =
      fixture.unique_components({&fixture.chain, &fixture.branch});
  for (const std::size_t width : {std::size_t{1}, std::size_t{4}}) {
    const std::string dir = fresh_dir("dedup_w" + std::to_string(width));
    StoreOptions store_opt;
    store_opt.dir = dir;
    CheckpointStore store(store_opt);
    ThreadPool pool(width);
    ServiceOptions service_opt;
    service_opt.pool = &pool;
    CompileService service(fixture.device, store, service_opt);
    const auto results = fixture.run_sessions(service, picks);

    const CompileService::Stats stats = service.stats();
    EXPECT_EQ(stats.sessions, picks.size());
    // The dedup invariant: every signature is built exactly once no matter
    // how many sessions raced for it; everything else was a store hit or a
    // wait on the in-flight build.
    EXPECT_EQ(stats.built, unique) << "width " << width;
    EXPECT_EQ(store.stats().entries, unique);
    EXPECT_EQ(stats.store_hits + stats.built + stats.dedup_waits,
              stats.components_resolved);
    for (const auto& result : results) {
      EXPECT_EQ(result.components,
                result.store_hits + result.built + result.dedup_waits);
    }
    std::filesystem::remove_all(dir);
  }
}

TEST(CompileService, ConcurrentSessionsMatchSerialByteForByte) {
  ServiceFixture fixture;
  // Serial reference: one session per network on a private store.
  std::string serial_chain, serial_branch;
  {
    const std::string dir = fresh_dir("serial");
    StoreOptions opt;
    opt.dir = dir;
    CheckpointStore store(opt);
    CompileService service(fixture.device, store);
    serial_chain = design_fingerprint(
        service.compile(fixture.chain.model, fixture.chain.impl, fixture.chain.groups)
            .design);
    serial_branch = design_fingerprint(
        service.compile(fixture.branch.model, fixture.branch.impl, fixture.branch.groups)
            .design);
    std::filesystem::remove_all(dir);
  }
  EXPECT_NE(serial_chain, serial_branch);

  const std::vector<int> picks{0, 1, 1, 0, 0, 1, 0, 1};
  for (const std::size_t width : {std::size_t{1}, std::size_t{4}}) {
    const std::string dir = fresh_dir("concurrent_w" + std::to_string(width));
    StoreOptions store_opt;
    store_opt.dir = dir;
    CheckpointStore store(store_opt);
    ThreadPool pool(width);
    ServiceOptions service_opt;
    service_opt.pool = &pool;
    CompileService service(fixture.device, store, service_opt);
    const auto results = fixture.run_sessions(service, picks);
    for (std::size_t s = 0; s < picks.size(); ++s) {
      EXPECT_EQ(design_fingerprint(results[s].design),
                picks[s] == 0 ? serial_chain : serial_branch)
          << "session " << s << " at width " << width;
    }
    std::filesystem::remove_all(dir);
  }
}

TEST(CompileService, RestartResolvesEverythingFromTheStore) {
  ServiceFixture fixture;
  const std::string dir = fresh_dir("restart");
  StoreOptions opt;
  opt.dir = dir;
  std::string first_print;
  {
    CheckpointStore store(opt);
    CompileService service(fixture.device, store);
    const auto result =
        service.compile(fixture.chain.model, fixture.chain.impl, fixture.chain.groups);
    EXPECT_EQ(result.built, result.components);
    first_print = design_fingerprint(result.design);
  }
  {
    // Simulated restart: new store, new service, same directory. Nothing
    // is rebuilt and the composed design is byte-identical.
    CheckpointStore store(opt);
    CompileService service(fixture.device, store);
    const auto result =
        service.compile(fixture.chain.model, fixture.chain.impl, fixture.chain.groups);
    EXPECT_EQ(result.built, 0u);
    EXPECT_EQ(result.store_hits, result.components);
    EXPECT_EQ(design_fingerprint(result.design), first_print);
  }
  std::filesystem::remove_all(dir);
}

TEST(CompileService, MemoryOnlyStoreStillDedupes) {
  ServiceFixture fixture;
  StoreOptions opt;  // no directory: the cache is authoritative
  opt.dir.clear();
  CheckpointStore store(opt);
  EXPECT_FALSE(store.persistent());
  CompileService service(fixture.device, store);
  const auto first =
      service.compile(fixture.chain.model, fixture.chain.impl, fixture.chain.groups);
  EXPECT_EQ(first.built, first.components);
  const auto second =
      service.compile(fixture.chain.model, fixture.chain.impl, fixture.chain.groups);
  EXPECT_EQ(second.built, 0u);
  EXPECT_EQ(second.store_hits, second.components);
  EXPECT_EQ(design_fingerprint(first.design), design_fingerprint(second.design));
}

}  // namespace
}  // namespace fpgasim
