// Multi-context inference engine (sim/engine): the determinism contract
// and the statistical golden-model audit, tested on a small sequential
// fixture so the TSan CI job can afford the width sweep.
//
//  - byte-identity of the merged EngineStats across thread-pool widths
//    {1, 2, 8} (the FPGASIM_THREADS sweep) and context counts;
//  - the shard-order stat merge is reproducible from outside the engine:
//    a serial single-context replay using engine_shard_seed() folds to
//    the exact same checksum;
//  - the interpreter A/B audit actually bites: corrupt_oracle must turn
//    every audited shard into a reported failure;
//  - plan reuse: engines and contexts share one SimPlan compilation.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "sim/compiled.h"
#include "sim/engine/engine.h"
#include "synth/builder.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fpgasim {
namespace {

// Small but representative fixture: combinational mix, an enabled
// accumulator, a shift-register pipeline, a plan-shared ROM and a
// per-context writable memory — every arena section of the plan/state
// split is exercised on each shard.
Netlist engine_fixture() {
  NetlistBuilder b("engine_fixture");
  const NetId x = b.in_port("x", 16);
  const NetId y = b.in_port("y", 16);
  const NetId en = b.in_port("en", 1);

  std::vector<std::uint64_t> words;
  for (std::uint64_t i = 0; i < 16; ++i) words.push_back((i * 2654435761ULL) & 0xffff);
  const NetId romv = b.bram(x, kInvalidNet, kInvalidNet, 16, 16, b.rom(std::move(words)));
  const NetId memv = b.bram(x, y, b.bit(en, 0), 16, 16);

  b.out_port("acc", b.accum(b.op2(LutOp::kXor, x, romv, 16), en, b.zero(1), 24));
  b.out_port("pipe", b.srl(b.add(x, y, 16), kInvalidNet, 4, 16));
  b.out_port("mem", memv);
  b.out_port("mix", b.op2(LutOp::kXor, b.add(x, y, 16), romv, 16));
  return std::move(b).take();
}

// run_shard's checksum fold constant (engine.cpp); the merge-determinism
// test re-derives the served checksum from scratch with it.
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

}  // namespace

TEST(Engine, MultiContextByteIdentityAcrossWidths) {
  const Netlist nl = engine_fixture();
  const auto plan = SimPlan::compile(nl);

  EngineOptions opt;
  opt.seed = 7;
  opt.check_every = 4;
  const std::uint64_t vectors = 10 * 32 * InferenceEngine::kLanes;  // 10 batches

  std::vector<EngineStats> runs;
  for (const std::size_t width : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(width);
    opt.contexts = width;
    InferenceEngine engine(nl, plan, opt, &pool);
    EXPECT_EQ(engine.context_count(), width);
    runs.push_back(engine.serve(vectors));
  }

  for (const EngineStats& s : runs) {
    EXPECT_EQ(s.batches, 10u);
    EXPECT_EQ(s.vectors, vectors);
    EXPECT_EQ(s.lane_cycles, vectors);
    EXPECT_EQ(s.oracle_checks, 3u);  // shards 0, 4, 8
    EXPECT_EQ(s.oracle_failures, 0u);
    EXPECT_TRUE(s.first_failure.empty());
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(s.checksum, runs[0].checksum);
    EXPECT_EQ(s.fingerprint(), runs[0].fingerprint());
  }
  EXPECT_NE(runs[0].checksum, 0u);

  // A different seed must change the stream (the fingerprint is a real
  // function of the served data, not a constant).
  ThreadPool pool(2);
  opt.contexts = 2;
  opt.seed = 8;
  InferenceEngine other(nl, plan, opt, &pool);
  EXPECT_NE(other.serve(vectors).fingerprint(), runs[0].fingerprint());
}

TEST(Engine, ShardOrderMergeMatchesSerialReplay) {
  const Netlist nl = engine_fixture();
  const auto plan = SimPlan::compile(nl);

  EngineOptions opt;
  opt.seed = 11;
  opt.check_every = 0;  // pure serving path
  opt.contexts = 4;
  const int cycles = opt.cycles_per_batch;
  const std::uint64_t batches = 6;

  ThreadPool pool(8);
  InferenceEngine engine(nl, plan, opt, &pool);
  const EngineStats stats = engine.serve(batches * cycles * InferenceEngine::kLanes);
  ASSERT_EQ(stats.batches, batches);
  EXPECT_EQ(stats.oracle_checks, 0u);

  // Reproduce the merged checksum with one context, serially, from the
  // published shard-seed derivation: per shard fold every output frame
  // word then the full state digest, then hash the per-shard checksums in
  // shard order.
  SimContext ctx(plan);
  std::vector<std::uint64_t> in_frame(plan->input_count() * SimPlan::kLanes);
  std::vector<std::uint64_t> out_frame(plan->output_count() * SimPlan::kLanes);
  Hasher merged;
  for (std::uint64_t shard = 0; shard < batches; ++shard) {
    ctx.reset();
    Rng rng(engine_shard_seed(opt.seed, shard));
    std::uint64_t checksum = 0;
    for (int cycle = 0; cycle < cycles; ++cycle) {
      for (std::uint64_t& v : in_frame) v = rng();
      ctx.set_input_frame(in_frame);
      ctx.step();
      ctx.get_output_frame(out_frame);
      for (const std::uint64_t v : out_frame) checksum = (checksum ^ v) * kFnvPrime;
    }
    checksum = (checksum ^ ctx.state_digest()) * kFnvPrime;
    merged.u64(checksum);
  }
  const Hash128 folded = merged.digest();
  EXPECT_EQ(stats.checksum, folded.hi ^ folded.lo);
}

TEST(Engine, CorruptOracleInjectionReportsEveryAuditedShard) {
  const Netlist nl = engine_fixture();

  EngineOptions opt;
  opt.seed = 3;
  opt.check_every = 1;  // audit every shard
  opt.contexts = 2;
  opt.corrupt_oracle = true;

  ThreadPool pool(2);
  InferenceEngine engine(nl, opt, &pool);
  const std::uint64_t batches = 5;
  const EngineStats stats =
      engine.serve(batches * static_cast<std::uint64_t>(opt.cycles_per_batch) *
                   InferenceEngine::kLanes);

  EXPECT_EQ(stats.batches, batches);
  EXPECT_EQ(stats.oracle_checks, batches);
  EXPECT_EQ(stats.oracle_failures, batches);
  EXPECT_FALSE(stats.ok());
  // first_failure is pinned to shard order, not completion order.
  EXPECT_EQ(stats.first_failure.rfind("shard 0 ", 0), 0u) << stats.first_failure;

  // Control: the same configuration without the corruption hook is clean.
  opt.corrupt_oracle = false;
  InferenceEngine clean(nl, opt, &pool);
  const EngineStats ok = clean.serve(batches * static_cast<std::uint64_t>(opt.cycles_per_batch) *
                                     InferenceEngine::kLanes);
  EXPECT_EQ(ok.oracle_checks, batches);
  EXPECT_EQ(ok.oracle_failures, 0u);
  EXPECT_TRUE(ok.ok());
}

TEST(Engine, PlanCompiledOnceAndSharedAcrossContexts) {
  const Netlist nl = engine_fixture();

  const std::uint64_t before = SimPlan::plans_compiled();
  const auto plan = SimPlan::compile(nl);
  EXPECT_EQ(SimPlan::plans_compiled() - before, 1u);

  // Adopting a pre-compiled plan must not compile again — not at engine
  // construction (any context count) and not across serve().
  EngineOptions opt;
  opt.contexts = 8;
  opt.check_every = 2;
  ThreadPool pool(4);
  InferenceEngine engine(nl, plan, opt, &pool);
  EXPECT_EQ(engine.context_count(), 8u);
  const EngineStats stats = engine.serve(8 * 32 * InferenceEngine::kLanes);
  EXPECT_EQ(SimPlan::plans_compiled() - before, 1u);
  EXPECT_TRUE(stats.ok());
  // Context-reset telemetry: every batch resets exactly one context.
  EXPECT_EQ(stats.resets, stats.batches);

  // Compiling from the netlist directly is exactly one more plan.
  InferenceEngine from_netlist(nl, opt, &pool);
  EXPECT_EQ(SimPlan::plans_compiled() - before, 2u);
}

TEST(Engine, ContextCountFromEnvironmentKnob) {
  const Netlist nl = engine_fixture();
  const auto plan = SimPlan::compile(nl);
  ThreadPool pool(2);

  ASSERT_EQ(::setenv("FPGASIM_ENGINE_CONTEXTS", "3", 1), 0);
  InferenceEngine engine(nl, plan, EngineOptions{}, &pool);
  EXPECT_EQ(engine.context_count(), 3u);
  ::unsetenv("FPGASIM_ENGINE_CONTEXTS");

  // Explicit option wins over the environment; absent both, pool width.
  EngineOptions opt;
  opt.contexts = 5;
  InferenceEngine explicit_ctx(nl, plan, opt, &pool);
  EXPECT_EQ(explicit_ctx.context_count(), 5u);
  InferenceEngine pool_width(nl, plan, EngineOptions{}, &pool);
  EXPECT_EQ(pool_width.context_count(), 2u);
}

TEST(Engine, FrameApiMatchesPerPortApi) {
  const Netlist nl = engine_fixture();
  const auto plan = SimPlan::compile(nl);
  SimContext frame_ctx(plan);
  SimContext port_ctx(plan);

  const std::size_t in_count = plan->input_count();
  const std::size_t out_count = plan->output_count();
  std::vector<std::uint64_t> frame(in_count * SimPlan::kLanes);
  Rng rng(99);
  for (int cycle = 0; cycle < 12; ++cycle) {
    for (std::uint64_t& v : frame) v = rng();
    frame_ctx.set_input_frame(frame);
    for (std::size_t i = 0; i < in_count; ++i) {
      port_ctx.set_inputs(static_cast<int>(i), {frame.data() + i * SimPlan::kLanes,
                                                SimPlan::kLanes});
    }
    frame_ctx.step();
    port_ctx.step();

    std::vector<std::uint64_t> out_a(out_count * SimPlan::kLanes);
    frame_ctx.get_output_frame(out_a);
    for (std::size_t o = 0; o < out_count; ++o) {
      std::uint64_t lanes[SimPlan::kLanes];
      port_ctx.get_outputs(static_cast<int>(o), lanes);
      for (std::size_t l = 0; l < SimPlan::kLanes; ++l) {
        ASSERT_EQ(out_a[o * SimPlan::kLanes + l], lanes[l])
            << "cycle " << cycle << " port " << plan->output_name(o) << " lane " << l;
      }
    }
  }
  EXPECT_EQ(frame_ctx.state_digest(), port_ctx.state_digest());
}

}  // namespace fpgasim
