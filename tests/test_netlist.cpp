#include <gtest/gtest.h>

#include "netlist/netlist.h"
#include "synth/builder.h"

namespace fpgasim {
namespace {

TEST(Netlist, BuilderProducesConsistentConnectivity) {
  NetlistBuilder b("t");
  const NetId a = b.in_port("a", 8);
  const NetId c = b.in_port("b", 8);
  const NetId sum = b.add(a, c, 8);
  b.out_port("sum", sum);
  const Netlist nl = std::move(b).take();
  EXPECT_TRUE(nl.validate().empty());
  EXPECT_EQ(nl.ports().size(), 3u);
  ASSERT_NE(nl.find_port("sum"), nullptr);
  EXPECT_EQ(nl.find_port("sum")->dir, PortDir::kOutput);
  EXPECT_EQ(nl.find_port("missing"), nullptr);
}

TEST(Netlist, ValidateCatchesDanglingDriver) {
  Netlist nl("bad");
  const NetId n = nl.add_net(4);
  Cell cell;
  cell.type = CellType::kLut;
  const CellId c = nl.add_cell(std::move(cell));
  nl.connect_input(c, 0, n);  // sink on an undriven, non-port net
  EXPECT_FALSE(nl.validate().empty());
}

TEST(Netlist, ValidateCatchesPortWidthMismatch) {
  Netlist nl("bad");
  const NetId n = nl.add_net(4);
  nl.add_port(Port{"p", PortDir::kInput, 8, n});
  EXPECT_FALSE(nl.validate().empty());
}

struct FootprintCase {
  CellType type;
  std::uint16_t width;
  std::uint16_t depth;
  std::uint32_t bram_depth;
  ResourceVec expected;
};

class CellFootprint : public ::testing::TestWithParam<FootprintCase> {};

TEST_P(CellFootprint, MatchesCalibration) {
  const FootprintCase& tc = GetParam();
  Cell cell;
  cell.type = tc.type;
  cell.width = tc.width;
  cell.depth = tc.depth;
  cell.bram_depth = tc.bram_depth;
  EXPECT_EQ(Netlist::cell_footprint(cell), tc.expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, CellFootprint,
    ::testing::Values(
        FootprintCase{CellType::kConst, 16, 0, 0, ResourceVec{}},
        FootprintCase{CellType::kLut, 16, 0, 0, ResourceVec{.lut = 16}},
        FootprintCase{CellType::kFf, 24, 0, 0, ResourceVec{.ff = 24}},
        FootprintCase{CellType::kSrl, 16, 16, 0, ResourceVec{.lut = 16}},
        FootprintCase{CellType::kSrl, 16, 17, 0, ResourceVec{.lut = 32}},
        FootprintCase{CellType::kAdd, 16, 0, 0, ResourceVec{.lut = 16, .carry = 2}},
        FootprintCase{CellType::kAdd, 24, 0, 0, ResourceVec{.lut = 24, .carry = 3}},
        FootprintCase{CellType::kMax, 16, 0, 0, ResourceVec{.lut = 32, .carry = 2}},
        FootprintCase{CellType::kRelu, 16, 0, 0, ResourceVec{.lut = 16}},
        FootprintCase{CellType::kDsp, 16, 0, 0, ResourceVec{.dsp = 1}},
        // 1024 x 16b = 16 Kb -> one BRAM36; 4096 x 16b = 64 Kb -> two.
        FootprintCase{CellType::kBram, 16, 0, 1024, ResourceVec{.bram = 1}},
        FootprintCase{CellType::kBram, 16, 0, 4096, ResourceVec{.bram = 2}}));

TEST(Netlist, StatsAggregateFootprints) {
  NetlistBuilder b("s");
  const NetId a = b.in_port("a", 16);
  b.out_port("q", b.ff(b.add(a, a, 16), kInvalidNet, 16));
  const Netlist nl = std::move(b).take();
  const NetlistStats stats = nl.stats();
  EXPECT_EQ(stats.resources.lut, 16);
  EXPECT_EQ(stats.resources.ff, 16);
  EXPECT_EQ(stats.resources.carry, 2);
  EXPECT_EQ(stats.cells, 2u);
}

TEST(Netlist, LockAllSetsFlags) {
  NetlistBuilder b("l");
  const NetId a = b.in_port("a", 8);
  b.out_port("q", b.ff(a, kInvalidNet, 8));
  Netlist nl = std::move(b).take();
  nl.lock_all();
  for (CellId c = 0; c < nl.cell_count(); ++c) EXPECT_TRUE(nl.cell(c).placement_locked);
  for (NetId n = 0; n < nl.net_count(); ++n) EXPECT_TRUE(nl.net(n).routing_locked);
}

TEST(Netlist, MergeOffsetsAndRemapsEverything) {
  NetlistBuilder b1("one");
  const NetId a = b1.in_port("a", 8);
  b1.out_port("q", b1.not1(a, 8));
  Netlist first = std::move(b1).take();

  NetlistBuilder b2("two");
  const NetId x = b2.in_port("x", 8);
  const std::int32_t rom = b2.rom({1, 2, 3});
  b2.out_port("y", b2.bram(x, kInvalidNet, kInvalidNet, 4, 8, rom));
  const Netlist second = std::move(b2).take();

  const std::size_t cells_before = first.cell_count();
  const std::size_t nets_before = first.net_count();
  const auto [cell_off, net_off] = first.merge(second);
  EXPECT_EQ(cell_off, cells_before);
  EXPECT_EQ(net_off, nets_before);
  EXPECT_EQ(first.cell_count(), cells_before + second.cell_count());
  // Copied BRAM keeps functioning rom reference.
  const Cell& bram = first.cell(static_cast<CellId>(first.cell_count() - 1));
  EXPECT_EQ(bram.type, CellType::kBram);
  ASSERT_GE(bram.rom_id, 0);
  EXPECT_EQ(first.rom(bram.rom_id).size(), 3u);
  // Net references inside copied cells are offset into valid range.
  for (CellId c = cell_off; c < first.cell_count(); ++c) {
    for (NetId in : first.cell(c).inputs) {
      if (in != kInvalidNet) {
        EXPECT_GE(in, net_off);
      }
    }
  }
}

TEST(Netlist, RomStorageRoundTrips) {
  Netlist nl("r");
  const std::int32_t id = nl.add_rom({5, 6, 7});
  EXPECT_EQ(nl.rom_count(), 1u);
  EXPECT_EQ(nl.rom(id)[2], 7u);
}

}  // namespace
}  // namespace fpgasim
