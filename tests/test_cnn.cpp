#include <gtest/gtest.h>

#include "cnn/impl.h"
#include "cnn/model.h"

namespace fpgasim {
namespace {

TEST(CnnModel, LeNetShapesAndParamCounts) {
  const CnnModel model = make_lenet5();
  const auto& layers = model.layers();
  ASSERT_EQ(layers.size(), 7u);
  // conv1: 6 filters of 5x5 on one channel + bias = 156 params (the value
  // the paper quotes in Sec. V-E), producing 6@28x28.
  EXPECT_EQ(layers[1].weights(), 156);
  EXPECT_EQ(layers[1].out_shape, (Shape{6, 28, 28}));
  EXPECT_EQ(layers[1].macs(), 117600);  // paper: "117600 multiplications"
  // conv2: 16 x (6x5x5) + 16 = 2416 params (paper: "2416 in conv2").
  EXPECT_EQ(layers[3].weights(), 2416);
  EXPECT_EQ(layers[3].macs(), 240000);  // paper: "240000"
  EXPECT_EQ(layers[3].out_shape, (Shape{16, 10, 10}));
  EXPECT_EQ(layers[4].out_shape, (Shape{16, 5, 5}));
  EXPECT_EQ(layers[5].in_shape.volume(), 400);
  const auto stats = model.stats();
  EXPECT_EQ(stats.conv_layers, 2);
  EXPECT_EQ(stats.fc_layers, 2);
  EXPECT_EQ(stats.conv_weights, 2572);
  EXPECT_EQ(stats.fc_weights, 400 * 120 + 120 + 120 * 10 + 10);
}

TEST(CnnModel, Vgg16MatchesTableOne) {
  const CnnModel model = make_vgg16();
  const auto stats = model.stats();
  EXPECT_EQ(stats.conv_layers, 13);
  EXPECT_EQ(stats.fc_layers, 3);
  // Table I: ~14.7M conv weights, ~124M FC weights, ~138M total,
  // 15.3G conv MACs, ~15.5G total.
  EXPECT_NEAR(static_cast<double>(stats.conv_weights), 14.7e6, 0.2e6);
  EXPECT_NEAR(static_cast<double>(stats.fc_weights), 124e6, 1.0e6);
  EXPECT_NEAR(static_cast<double>(stats.total_weights()), 138e6, 1.5e6);
  EXPECT_NEAR(static_cast<double>(stats.conv_macs), 15.3e9, 0.2e9);
  EXPECT_NEAR(static_cast<double>(stats.total_macs()), 15.5e9, 0.2e9);
}

TEST(CnnModel, ShapeInferenceRejectsBadGraphs) {
  CnnModel model("bad");
  model.add(Layer{.kind = LayerKind::kConv, .name = "c", .kernel = 3, .out_c = 4});
  EXPECT_THROW(model.infer_shapes(), std::runtime_error);

  CnnModel model2("bad2");
  model2.add(Layer{.kind = LayerKind::kInput, .name = "in", .out_shape = Shape{1, 4, 4}});
  model2.add(Layer{.kind = LayerKind::kConv, .name = "c", .kernel = 9, .out_c = 2});
  EXPECT_THROW(model2.infer_shapes(), std::runtime_error);
}

TEST(CnnModel, JoinShapeInference) {
  const CnnModel model = make_resblock_net();
  const int add_idx = model.find_layer("add1");
  ASSERT_GE(add_idx, 0);
  const Layer& add = model.layers()[static_cast<std::size_t>(add_idx)];
  EXPECT_EQ(add.kind, LayerKind::kAdd);
  ASSERT_EQ(add.inputs.size(), 2u);
  // Residual add preserves the branch shape.
  EXPECT_EQ(add.out_shape, (Shape{4, 6, 6}));
  // c1 feeds both the skip edge and the c2a branch.
  const auto consumers = model.consumer_counts();
  EXPECT_EQ(consumers[1], 2);  // c1
  EXPECT_EQ(consumers[4], 1);  // add1 -> p1

  CnnModel concat("cat");
  concat.add(Layer{.kind = LayerKind::kInput, .name = "in", .out_shape = Shape{2, 4, 4}});
  concat.add(Layer{.kind = LayerKind::kConv, .name = "a", .kernel = 1, .out_c = 3});
  concat.add(
      Layer{.kind = LayerKind::kConv, .name = "b", .kernel = 1, .out_c = 5, .inputs = {0}});
  concat.add(Layer{.kind = LayerKind::kConcat, .name = "cat", .inputs = {1, 2}});
  concat.infer_shapes();
  EXPECT_EQ(concat.layers()[3].out_shape, (Shape{8, 4, 4}));
}

TEST(CnnModel, JoinShapeInferenceRejectsMismatches) {
  // Add with disagreeing input shapes.
  CnnModel bad("bad");
  bad.add(Layer{.kind = LayerKind::kInput, .name = "in", .out_shape = Shape{2, 4, 4}});
  bad.add(Layer{.kind = LayerKind::kConv, .name = "a", .kernel = 1, .out_c = 3});
  bad.add(
      Layer{.kind = LayerKind::kConv, .name = "b", .kernel = 1, .out_c = 5, .inputs = {0}});
  bad.add(Layer{.kind = LayerKind::kAdd, .name = "j", .inputs = {1, 2}});
  EXPECT_THROW(bad.infer_shapes(), std::runtime_error);

  // Join with fewer than two inputs.
  CnnModel lone("lone");
  lone.add(Layer{.kind = LayerKind::kInput, .name = "in", .out_shape = Shape{2, 4, 4}});
  lone.add(Layer{.kind = LayerKind::kAdd, .name = "j", .inputs = {0}});
  EXPECT_THROW(lone.infer_shapes(), std::runtime_error);

  // Non-join with multiple inputs.
  CnnModel multi("multi");
  multi.add(Layer{.kind = LayerKind::kInput, .name = "in", .out_shape = Shape{2, 4, 4}});
  multi.add(Layer{.kind = LayerKind::kConv, .name = "a", .kernel = 1, .out_c = 3});
  multi.add(
      Layer{.kind = LayerKind::kPool, .name = "p", .kernel = 2, .inputs = {0, 1}});
  EXPECT_THROW(multi.infer_shapes(), std::runtime_error);
}

TEST(Grouping, ResblockGraphHasForkAndJoin) {
  const CnnModel model = make_resblock_net();
  const auto groups = default_grouping(model);
  // c1, c2a, c2b, add1, p1(+relu), f1 — joins never share a group.
  ASSERT_EQ(groups.size(), 6u);
  const GroupGraph graph = build_group_graph(model, groups);
  EXPECT_EQ(graph.input_group, 0);
  EXPECT_EQ(graph.output_group, 5);
  // c1 fans out to two groups; everything else is single-consumer.
  EXPECT_EQ(graph.fanout[0], 2);
  ASSERT_EQ(graph.edges.size(), 6u);
  // add1 (group 3) receives port 0 from c1 and port 1 from c2b.
  EXPECT_EQ(graph.edges[2], (GroupEdge{0, 3, 0}));
  EXPECT_EQ(graph.edges[3], (GroupEdge{2, 3, 1}));
}

TEST(Grouping, RejectsGroupThatSplitsABranch) {
  const CnnModel model = make_resblock_net();
  // Grouping c1 with c2a is illegal: c1's output also feeds add1, so the
  // edge would have to leave the middle of the group.
  std::vector<std::vector<int>> groups = {{1, 2}, {3}, {4}, {5}, {6}};
  EXPECT_THROW(build_group_graph(model, groups), std::runtime_error);
}

TEST(Grouping, ReluAfterForkPointStaysUnfused) {
  // relu after a layer with two consumers must get its own group: fusing
  // it would change what the second consumer sees.
  CnnModel model("forked_relu");
  model.add(Layer{.kind = LayerKind::kInput, .name = "in", .out_shape = Shape{2, 4, 4}});
  model.add(Layer{.kind = LayerKind::kConv, .name = "c1", .kernel = 1, .out_c = 2});
  model.add(Layer{.kind = LayerKind::kRelu, .name = "r1"});
  model.add(Layer{.kind = LayerKind::kConv, .name = "c2", .kernel = 1, .out_c = 2});
  model.add(Layer{.kind = LayerKind::kAdd, .name = "j", .inputs = {1, 3}});
  model.infer_shapes();
  const auto groups = default_grouping(model);
  ASSERT_EQ(groups.size(), 4u);
  EXPECT_EQ(groups[0], (std::vector<int>{1}));  // c1 keeps relu out
  EXPECT_EQ(groups[1], (std::vector<int>{2}));  // r1 alone
}

TEST(ArchDef, ParsesFromClausesAndJoins) {
  const std::string text = R"(network res
input 2 8 8
conv c1 out=4 k=3
conv c2a out=4 k=1 from=c1
conv c2b out=4 k=1
add add1 from=c1,c2b
pool p1 k=2 relu
fc f1 out=8
)";
  CnnModel model = parse_arch_def(text);
  model.infer_shapes();
  const int join_idx = model.find_layer("add1");
  ASSERT_GE(join_idx, 0);
  const Layer& join = model.layers()[static_cast<std::size_t>(join_idx)];
  EXPECT_EQ(join.inputs, (std::vector<int>{1, 3}));
  const int c2a_idx = model.find_layer("c2a");
  ASSERT_GE(c2a_idx, 0);
  EXPECT_EQ(model.layers()[static_cast<std::size_t>(c2a_idx)].inputs,
            (std::vector<int>{1}));
  // Round-trip equality is covered property-style in test_properties.cpp;
  // here just check the textual form keeps the explicit edges.
  const std::string again = to_arch_def(model);
  EXPECT_NE(again.find("from=c1,c2b"), std::string::npos);
  EXPECT_NE(again.find("from=c1"), std::string::npos);
}

TEST(ArchDef, ReportsLinesForBadFromClauses) {
  try {
    parse_arch_def("network x\ninput 1 4 4\nconv c out=1 k=1 from=ghost\n");
    FAIL() << "expected unknown from= target to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("ghost"), std::string::npos);
  }
  // Joins need at least two producers.
  EXPECT_THROW(parse_arch_def("network x\ninput 1 4 4\nadd j from=in\n"),
               std::runtime_error);
  // Duplicate layer names make from= ambiguous.
  try {
    parse_arch_def("network x\ninput 1 4 4\nconv c out=1 k=1\nconv c out=1 k=1\n");
    FAIL() << "expected duplicate layer name to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos);
  }
}

TEST(ReferenceInference, ResblockDfgWalkIsDeterministic) {
  const CnnModel model = make_resblock_net();
  Tensor input = Tensor::zeros(2, 8, 8);
  for (std::size_t i = 0; i < input.data.size(); ++i) {
    input.data[i] = Fixed16::from_raw(static_cast<std::int16_t>((i * 7) % 61) - 30);
  }
  const auto a = reference_inference(model, input);
  const auto b = reference_inference(model, input);
  EXPECT_EQ(a.size(), 8u);
  EXPECT_EQ(a, b);
}

TEST(ArchDef, ParsesAndRoundTrips) {
  const std::string text = R"(# test network
network tiny
input 2 8 8
conv c1 out=4 k=3 s=1 relu
pool p1 k=2
fc f1 out=10
)";
  const CnnModel model = parse_arch_def(text);
  EXPECT_EQ(model.name(), "tiny");
  ASSERT_EQ(model.layers().size(), 4u);
  EXPECT_EQ(model.layers()[1].out_c, 4);
  EXPECT_TRUE(model.layers()[1].fuse_relu);
  EXPECT_EQ(model.layers()[2].kind, LayerKind::kPool);
  EXPECT_EQ(model.layers()[3].out_shape, (Shape{10, 1, 1}));

  // Round trip: serialize and reparse must produce identical structure.
  const CnnModel again = parse_arch_def(to_arch_def(model));
  ASSERT_EQ(again.layers().size(), model.layers().size());
  for (std::size_t i = 0; i < model.layers().size(); ++i) {
    EXPECT_EQ(again.layers()[i].kind, model.layers()[i].kind);
    EXPECT_EQ(again.layers()[i].out_shape, model.layers()[i].out_shape);
  }
}

TEST(ArchDef, ReportsLineNumbersOnErrors) {
  try {
    parse_arch_def("network x\ninput 1 4 4\nconv c1 k=3\n");  // missing out=
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
  EXPECT_THROW(parse_arch_def("conv c out=1 k=1\n"), std::runtime_error);  // no input
  EXPECT_THROW(parse_arch_def("network x\ninput 1 4 4\nwarp w\n"), std::runtime_error);
}

TEST(Grouping, FusesReluIntoPredecessor) {
  const std::string text = R"(network g
input 1 8 8
conv c1 out=2 k=3
relu r1
pool p1 k=2
relu r2
fc f1 out=4
)";
  const CnnModel model = parse_arch_def(text);
  const auto groups = default_grouping(model);
  ASSERT_EQ(groups.size(), 3u);                      // conv+relu, pool+relu, fc
  EXPECT_EQ(groups[0], (std::vector<int>{1, 2}));    // conv absorbs relu
  EXPECT_EQ(groups[1], (std::vector<int>{3, 4}));    // pool absorbs relu
  EXPECT_EQ(groups[2], (std::vector<int>{5}));
}

TEST(Grouping, LeNetHasSixComponents) {
  // Table III component structure: conv1, pool1+relu, conv2, pool2+relu,
  // fc1, fc2 (relus are fused via Layer::fuse_relu here).
  const auto groups = default_grouping(make_lenet5());
  EXPECT_EQ(groups.size(), 6u);
}

TEST(ChooseImplementation, RespectsDivisibilityAndBudget) {
  const CnnModel model = make_lenet5();
  for (long budget : {8L, 64L, 144L, 512L}) {
    const ModelImpl impl = choose_implementation(model, budget);
    long total_dsp = 0;
    for (std::size_t i = 0; i < model.layers().size(); ++i) {
      const Layer& layer = model.layers()[i];
      const LayerImpl& li = impl.layers[i];
      if (layer.kind == LayerKind::kConv) {
        EXPECT_EQ(layer.in_shape.c % li.ic_par, 0);
        EXPECT_EQ(layer.out_c % li.oc_par, 0);
        total_dsp += li.dsp_count();
      } else if (layer.kind == LayerKind::kFc) {
        EXPECT_EQ(layer.in_shape.volume() % li.ic_par, 0);
        total_dsp += li.dsp_count();
      }
    }
    EXPECT_LE(total_dsp, 3 * budget) << "budget " << budget;  // loose cap
    EXPECT_GE(total_dsp, 4);
  }
}

TEST(ChooseImplementation, BigLayersGetStreamedWeights) {
  const CnnModel model = make_vgg16();
  const ModelImpl impl = choose_implementation(model, 2000);
  for (std::size_t i = 0; i < model.layers().size(); ++i) {
    const Layer& layer = model.layers()[i];
    if (layer.kind != LayerKind::kConv && layer.kind != LayerKind::kFc) continue;
    if (layer.weights() > 70000) {
      EXPECT_FALSE(impl.layers[i].materialize) << layer.name;
    }
  }
  // Large feature maps get tiled down.
  EXPECT_GT(impl.layers[1].tile_h, 0);
  EXPECT_LE(impl.layers[1].tile_h, 32);
}

TEST(LatencyModel, CyclesShrinkWithParallelism) {
  const CnnModel model = make_lenet5();
  const Layer& conv2 = model.layers()[3];
  LayerImpl serial;   // 1x1
  LayerImpl parallel; // 2x4
  parallel.ic_par = 2;
  parallel.oc_par = 4;
  const long serial_cycles = layer_cycles(conv2, serial).compute;
  const long parallel_cycles = layer_cycles(conv2, parallel).compute;
  EXPECT_EQ(serial_cycles, 8 * parallel_cycles);
  // LOAD/DRAIN are parallelism-independent stream transfers.
  EXPECT_EQ(layer_cycles(conv2, serial).load, conv2.in_shape.volume());
  EXPECT_EQ(layer_cycles(conv2, serial).drain, conv2.out_shape.volume());
}

TEST(LatencyModel, GroupLatencySumsMembers) {
  const CnnModel model = make_lenet5();
  const ModelImpl impl = choose_implementation(model, 64);
  const auto groups = default_grouping(model);
  long sum = 0;
  for (int idx : groups[0]) {
    sum += layer_cycles(model.layers()[static_cast<std::size_t>(idx)],
                        impl.layers[static_cast<std::size_t>(idx)])
               .total();
  }
  const ComponentLatency latency = group_latency(model, impl, groups[0], 200.0);
  EXPECT_EQ(latency.cycles, sum);
  EXPECT_DOUBLE_EQ(latency.latency_us(), static_cast<double>(sum) / 200.0);
}

TEST(ReferenceInference, DeterministicAndShaped) {
  const CnnModel model = make_lenet5();
  Tensor input = Tensor::zeros(1, 32, 32);
  for (std::size_t i = 0; i < input.data.size(); ++i) {
    input.data[i] = Fixed16::from_raw(static_cast<std::int16_t>(i % 37) - 18);
  }
  const auto a = reference_inference(model, input);
  const auto b = reference_inference(model, input);
  EXPECT_EQ(a.size(), 10u);
  EXPECT_EQ(a, b);
}

TEST(SynthParams, SeededAndBounded) {
  const auto a = synth_params(64, 5);
  const auto b = synth_params(64, 5);
  const auto c = synth_params(64, 6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  for (const Fixed16& v : a) EXPECT_LE(std::abs(v.raw), 48);
}

}  // namespace
}  // namespace fpgasim
