// Router fuzzing: random FF point-to-multipoint netlists with random
// placements must always route with a connected tree per net, monotone
// per-sink delays and non-negative wirelength — across seeds and loads.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "route/router.h"
#include "synth/builder.h"
#include "util/rng.h"

namespace fpgasim {
namespace {

struct FuzzDesign {
  Netlist netlist{"fuzz"};
  PhysState phys;
};

FuzzDesign make_random_design(const Device& device, int nets, int max_fanout,
                              std::uint64_t seed) {
  FuzzDesign design;
  Rng rng(seed);
  auto random_tile = [&] {
    return TileCoord{static_cast<int>(rng.next_below(static_cast<std::uint64_t>(device.width()))),
                     static_cast<int>(rng.next_below(static_cast<std::uint64_t>(device.height())))};
  };
  for (int n = 0; n < nets; ++n) {
    Cell drv;
    drv.type = CellType::kFf;
    const CellId d = design.netlist.add_cell(std::move(drv));
    const NetId net = design.netlist.add_net(1);
    design.netlist.connect_output(d, 0, net);
    const int fanout = 1 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(max_fanout)));
    std::vector<CellId> sinks;
    for (int s = 0; s < fanout; ++s) {
      Cell snk;
      snk.type = CellType::kFf;
      const CellId c = design.netlist.add_cell(std::move(snk));
      design.netlist.connect_input(c, 0, net);
      sinks.push_back(c);
    }
    design.phys.resize_for(design.netlist);
    design.phys.cell_loc[d] = random_tile();
    for (CellId c : sinks) design.phys.cell_loc[c] = random_tile();
  }
  return design;
}

/// Tree-connectivity check over a route's edges.
bool connects(const RouteInfo& route, TileCoord from, TileCoord to) {
  if (from == to) return true;
  std::map<std::pair<int, int>, std::vector<std::pair<int, int>>> adjacency;
  for (const auto& [a, b] : route.edges) {
    adjacency[{a.x, a.y}].push_back({b.x, b.y});
    adjacency[{b.x, b.y}].push_back({a.x, a.y});
  }
  std::vector<std::pair<int, int>> stack{{from.x, from.y}};
  std::set<std::pair<int, int>> seen{{from.x, from.y}};
  while (!stack.empty()) {
    auto v = stack.back();
    stack.pop_back();
    if (v == std::pair(to.x, to.y)) return true;
    for (auto& u : adjacency[v]) {
      if (seen.insert(u).second) stack.push_back(u);
    }
  }
  return false;
}

class RouterFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RouterFuzz, AlwaysProducesConnectedTrees) {
  const Device device = make_tiny_device();
  FuzzDesign design = make_random_design(device, 60, 4, GetParam());
  const RouteResult result = route_design(device, design.netlist, design.phys);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.nets_routed, 60u);

  for (NetId n = 0; n < design.netlist.net_count(); ++n) {
    const Net& net = design.netlist.net(n);
    if (net.sinks.empty()) continue;
    const RouteInfo& route = design.phys.routes[n];
    ASSERT_TRUE(route.routed) << "net " << n;
    ASSERT_EQ(route.sink_delays_ns.size(), net.sinks.size());
    const TileCoord from = design.phys.cell_loc[net.driver];
    for (std::size_t s = 0; s < net.sinks.size(); ++s) {
      const TileCoord to = design.phys.cell_loc[net.sinks[s].first];
      EXPECT_TRUE(connects(route, from, to)) << "net " << n << " sink " << s;
      EXPECT_GT(route.sink_delays_ns[s], 0.0);
      // Delay grows at least linearly-ish with distance (wire model).
      const int manhattan = std::abs(from.x - to.x) + std::abs(from.y - to.y);
      EXPECT_GE(route.sink_delays_ns[s], 0.9 * 0.042 * manhattan);
    }
    // No duplicate edges in a route tree. (Note: build the key from
    // values, not std::minmax of temporaries, which dangles.)
    std::set<std::pair<std::pair<int, int>, std::pair<int, int>>> unique_edges;
    for (const auto& [a, b] : route.edges) {
      const std::pair<int, int> pa{a.x, a.y}, pb{b.x, b.y};
      const auto key = pa < pb ? std::pair(pa, pb) : std::pair(pb, pa);
      EXPECT_TRUE(unique_edges.insert(key).second) << "duplicate edge on net " << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterFuzz,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u, 31415u));

TEST(RouterFuzz, WideFanoutNetsRouteCorrectly) {
  // Fanouts beyond 8 take the BFS nearest-target heuristic grid instead of
  // the per-node min-scan; the route contract must not change.
  const Device device = make_tiny_device();
  FuzzDesign design = make_random_design(device, 20, 16, 777);
  const RouteResult result = route_design(device, design.netlist, design.phys);
  ASSERT_TRUE(result.success);
  for (NetId n = 0; n < design.netlist.net_count(); ++n) {
    const Net& net = design.netlist.net(n);
    if (net.sinks.empty()) continue;
    const RouteInfo& route = design.phys.routes[n];
    ASSERT_TRUE(route.routed) << "net " << n;
    const TileCoord from = design.phys.cell_loc[net.driver];
    for (std::size_t s = 0; s < net.sinks.size(); ++s) {
      const TileCoord to = design.phys.cell_loc[net.sinks[s].first];
      EXPECT_TRUE(connects(route, from, to)) << "net " << n << " sink " << s;
      const int manhattan = std::abs(from.x - to.x) + std::abs(from.y - to.y);
      EXPECT_GE(route.sink_delays_ns[s], 0.9 * 0.042 * manhattan);
    }
  }
}

TEST(RouterFuzz, HeavyLoadStillResolvesOnRealisticDevice) {
  const Device device = make_xcku5p_sim();
  FuzzDesign design = make_random_design(device, 400, 3, 2026);
  const RouteResult result = route_design(device, design.netlist, design.phys);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.max_overuse, 0);
  EXPECT_GT(result.total_wirelength, 0.0);
}

}  // namespace
}  // namespace fpgasim
