// Shared test harness: drives a layer component's stream interface with a
// tensor (channel-major) and collects its output stream — one vector at a
// time through the interpreter, or CompiledSim::kLanes tensors at once
// through the compiled bit-parallel simulator.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/compiled.h"
#include "sim/golden.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace fpgasim::testhelpers {

inline Tensor random_tensor(int c, int h, int w, std::uint64_t seed, int magnitude = 50) {
  Tensor t = Tensor::zeros(c, h, w);
  Rng rng(seed);
  for (Fixed16& v : t.data) {
    v = Fixed16::from_raw(static_cast<std::int32_t>(rng.next_int(-magnitude, magnitude)));
  }
  return t;
}

inline std::vector<Fixed16> random_params(std::size_t n, std::uint64_t seed,
                                          int magnitude = 50) {
  std::vector<Fixed16> params(n);
  Rng rng(seed);
  for (Fixed16& v : params) {
    v = Fixed16::from_raw(static_cast<std::int32_t>(rng.next_int(-magnitude, magnitude)));
  }
  return params;
}

/// Streams `input` into the component and collects `expected_outputs`
/// words. Fails the test if the component does not accept the whole input
/// or does not produce enough outputs within the cycle guard.
inline std::vector<Fixed16> run_stream(Simulator& sim, const std::vector<Fixed16>& input,
                                       std::size_t expected_outputs,
                                       long guard_cycles = 500000) {
  sim.set_input("out_ready", 1);
  sim.set_input("in_valid", 1);
  // Allow a component mid-transition (e.g. finishing a previous DRAIN) to
  // reach its LOAD state before data is offered.
  for (int spin = 0; spin < 64 && sim.get_output("in_ready") != 1; ++spin) sim.step();
  for (std::size_t i = 0; i < input.size(); ++i) {
    EXPECT_EQ(sim.get_output("in_ready"), 1u) << "component stalled at input word " << i;
    sim.set_input("in_data", static_cast<std::uint16_t>(input[i].raw));
    sim.step();
  }
  sim.set_input("in_valid", 0);

  std::vector<Fixed16> out;
  long guard = 0;
  while (out.size() < expected_outputs && guard++ < guard_cycles) {
    sim.step();
    if (sim.get_output("out_valid") == 1) {
      out.push_back(Fixed16{static_cast<std::int16_t>(
          static_cast<std::uint16_t>(sim.get_output("out_data")))});
    }
  }
  EXPECT_EQ(out.size(), expected_outputs) << "timed out after " << guard << " cycles";
  return out;
}

/// Streams one input tensor per lane (all the same length) through the
/// compiled simulator's batch interface and collects `expected_outputs`
/// words per lane. The stream handshake of these components is
/// data-independent, so every lane advances in lock-step; the harness
/// asserts that (in_ready/out_valid identical across lanes) as it goes.
inline std::vector<std::vector<Fixed16>> run_stream_batch(
    CompiledSim& sim, const std::vector<std::vector<Fixed16>>& inputs,
    std::size_t expected_outputs, long guard_cycles = 500000) {
  constexpr std::size_t kLanes = CompiledSim::kLanes;
  EXPECT_EQ(inputs.size(), kLanes);
  const int in_data = sim.input_index("in_data");
  const int in_valid = sim.input_index("in_valid");
  const int out_ready = sim.input_index("out_ready");
  const int in_ready = sim.output_index("in_ready");
  const int out_valid = sim.output_index("out_valid");
  const int out_data = sim.output_index("out_data");

  const auto all_lanes_equal = [&](int output) {
    std::uint64_t lanes[kLanes];
    sim.get_outputs(output, lanes);
    for (std::size_t l = 1; l < kLanes; ++l) {
      if (lanes[l] != lanes[0]) return false;
    }
    return true;
  };

  sim.set_inputs(out_ready, std::uint64_t{1});
  sim.set_inputs(in_valid, std::uint64_t{1});
  for (int spin = 0; spin < 64 && sim.get_output(in_ready, 0) != 1; ++spin) sim.step();
  std::uint64_t words[kLanes];
  for (std::size_t i = 0; i < inputs[0].size(); ++i) {
    EXPECT_EQ(sim.get_output(in_ready, 0), 1u) << "batch stalled at input word " << i;
    EXPECT_TRUE(all_lanes_equal(in_ready)) << "lanes diverged at input word " << i;
    for (std::size_t l = 0; l < kLanes; ++l) {
      words[l] = static_cast<std::uint16_t>(inputs[l][i].raw);
    }
    sim.set_inputs(in_data, words);
    sim.step();
  }
  sim.set_inputs(in_valid, std::uint64_t{0});

  std::vector<std::vector<Fixed16>> out(kLanes);
  long guard = 0;
  while (out[0].size() < expected_outputs && guard++ < guard_cycles) {
    sim.step();
    if (sim.get_output(out_valid, 0) == 1) {
      EXPECT_TRUE(all_lanes_equal(out_valid)) << "out_valid diverged across lanes";
      sim.get_outputs(out_data, words);
      for (std::size_t l = 0; l < kLanes; ++l) {
        out[l].push_back(Fixed16{static_cast<std::int16_t>(
            static_cast<std::uint16_t>(words[l]))});
      }
    }
  }
  EXPECT_EQ(out[0].size(), expected_outputs) << "timed out after " << guard << " cycles";
  return out;
}

inline void expect_tensor_eq(const std::vector<Fixed16>& got, const std::vector<Fixed16>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].raw, want[i].raw) << "word " << i;
  }
}

}  // namespace fpgasim::testhelpers
