// Shared test harness: drives a layer component's stream interface with a
// tensor (channel-major) and collects its output stream.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "sim/golden.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace fpgasim::testhelpers {

inline Tensor random_tensor(int c, int h, int w, std::uint64_t seed, int magnitude = 50) {
  Tensor t = Tensor::zeros(c, h, w);
  Rng rng(seed);
  for (Fixed16& v : t.data) {
    v = Fixed16::from_raw(static_cast<std::int32_t>(rng.next_int(-magnitude, magnitude)));
  }
  return t;
}

inline std::vector<Fixed16> random_params(std::size_t n, std::uint64_t seed,
                                          int magnitude = 50) {
  std::vector<Fixed16> params(n);
  Rng rng(seed);
  for (Fixed16& v : params) {
    v = Fixed16::from_raw(static_cast<std::int32_t>(rng.next_int(-magnitude, magnitude)));
  }
  return params;
}

/// Streams `input` into the component and collects `expected_outputs`
/// words. Fails the test if the component does not accept the whole input
/// or does not produce enough outputs within the cycle guard.
inline std::vector<Fixed16> run_stream(Simulator& sim, const std::vector<Fixed16>& input,
                                       std::size_t expected_outputs,
                                       long guard_cycles = 500000) {
  sim.set_input("out_ready", 1);
  sim.set_input("in_valid", 1);
  // Allow a component mid-transition (e.g. finishing a previous DRAIN) to
  // reach its LOAD state before data is offered.
  for (int spin = 0; spin < 64 && sim.get_output("in_ready") != 1; ++spin) sim.step();
  for (std::size_t i = 0; i < input.size(); ++i) {
    EXPECT_EQ(sim.get_output("in_ready"), 1u) << "component stalled at input word " << i;
    sim.set_input("in_data", static_cast<std::uint16_t>(input[i].raw));
    sim.step();
  }
  sim.set_input("in_valid", 0);

  std::vector<Fixed16> out;
  long guard = 0;
  while (out.size() < expected_outputs && guard++ < guard_cycles) {
    sim.step();
    if (sim.get_output("out_valid") == 1) {
      out.push_back(Fixed16{static_cast<std::int16_t>(
          static_cast<std::uint16_t>(sim.get_output("out_data")))});
    }
  }
  EXPECT_EQ(out.size(), expected_outputs) << "timed out after " << guard << " cycles";
  return out;
}

inline void expect_tensor_eq(const std::vector<Fixed16>& got, const std::vector<Fixed16>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].raw, want[i].raw) << "word " << i;
  }
}

}  // namespace fpgasim::testhelpers
