#include <gtest/gtest.h>

#include "sim/golden.h"
#include "sim/simulator.h"
#include "stream_harness.h"
#include "synth/layers.h"

namespace fpgasim {
namespace {

using testhelpers::expect_tensor_eq;
using testhelpers::random_tensor;
using testhelpers::run_stream;

struct PoolCase {
  int channels, kernel, h, w;
  bool fuse_relu;
};

class PoolComponent : public ::testing::TestWithParam<PoolCase> {};

TEST_P(PoolComponent, MatchesGoldenModel) {
  const PoolCase& tc = GetParam();
  PoolParams p;
  p.name = "pool_t";
  p.channels = tc.channels;
  p.kernel = tc.kernel;
  p.in_h = tc.h;
  p.in_w = tc.w;
  p.fuse_relu = tc.fuse_relu;

  const Tensor input = random_tensor(tc.channels, tc.h, tc.w, 91, 100);
  Tensor expected = golden_maxpool(input, tc.kernel);
  if (tc.fuse_relu) expected = golden_relu(expected);

  const Netlist nl = make_pool_component(p);
  ASSERT_TRUE(nl.validate().empty());
  Simulator sim(nl);
  const auto out = run_stream(sim, input.data, expected.data.size());
  expect_tensor_eq(out, expected.data);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PoolComponent,
                         ::testing::Values(PoolCase{1, 2, 4, 4, false},
                                           PoolCase{1, 2, 4, 4, true},
                                           PoolCase{3, 2, 6, 6, true},
                                           PoolCase{2, 3, 9, 9, false},
                                           PoolCase{4, 2, 8, 8, true},
                                           PoolCase{6, 2, 10, 10, true},
                                           PoolCase{1, 4, 8, 8, false},
                                           PoolCase{5, 2, 6, 4, true}));

TEST(PoolComponent, ProcessesBackToBackImages) {
  PoolParams p;
  p.channels = 2;
  p.kernel = 2;
  p.in_h = 4;
  p.in_w = 4;
  const Netlist nl = make_pool_component(p);
  Simulator sim(nl);
  for (int image = 0; image < 3; ++image) {
    const Tensor input = random_tensor(2, 4, 4, 100 + static_cast<std::uint64_t>(image));
    const Tensor expected = golden_maxpool(input, 2);
    const auto out = run_stream(sim, input.data, expected.data.size());
    expect_tensor_eq(out, expected.data);
  }
}

TEST(PoolComponent, UsesNoDspBlocks) {
  PoolParams p;
  p.channels = 8;
  p.kernel = 2;
  p.in_h = 16;
  p.in_w = 16;
  const Netlist nl = make_pool_component(p);
  EXPECT_EQ(nl.stats().resources.dsp, 0);  // pure LUT/carry controller
}

TEST(ReluComponent, RectifiesStream) {
  const Netlist nl = make_relu_component("relu_t");
  Simulator sim(nl);
  sim.set_input("out_ready", 1);
  sim.set_input("in_valid", 1);
  const std::int16_t values[] = {-300, -1, 0, 1, 250};
  std::vector<std::int16_t> got;
  for (std::int16_t v : values) {
    sim.set_input("in_data", static_cast<std::uint16_t>(v));
    sim.step();
    if (sim.get_output("out_valid") == 1) {
      got.push_back(static_cast<std::int16_t>(
          static_cast<std::uint16_t>(sim.get_output("out_data"))));
    }
  }
  sim.set_input("in_valid", 0);
  sim.step();
  if (sim.get_output("out_valid") == 1) {
    got.push_back(static_cast<std::int16_t>(
        static_cast<std::uint16_t>(sim.get_output("out_data"))));
  }
  ASSERT_EQ(got.size(), 5u);
  EXPECT_EQ(got[0], 0);
  EXPECT_EQ(got[1], 0);
  EXPECT_EQ(got[2], 0);
  EXPECT_EQ(got[3], 1);
  EXPECT_EQ(got[4], 250);
}

}  // namespace
}  // namespace fpgasim
